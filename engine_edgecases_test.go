package gpm

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// edgeGraphs builds the degenerate data graphs every entry point must
// survive: the zero-node graph, a single attributed node, and a minimal
// two-node graph with one edge.
func edgeGraphs() map[string]*Graph {
	g0 := NewGraph(0)
	g1 := NewGraph(1)
	g1.SetAttr(0, Attrs{"label": Str("A")})
	g2 := NewGraph(2)
	g2.SetAttr(0, Attrs{"label": Str("A")})
	g2.SetAttr(1, Attrs{"label": Str("B")})
	g2.AddEdge(0, 1)
	return map[string]*Graph{"empty": g0, "single": g1, "pair": g2}
}

// TestEngineRejectsEmptyPattern pins the empty-pattern contract across
// every Engine entry point: the zero-node pattern is a validation error
// ("pattern: no nodes"), never a panic and never a vacuous match. Before
// this audit Enumerate was the one inconsistent entry point — it searched
// the empty pattern and returned a single empty embedding while every
// other semantics rejected it; a server routing untrusted queries to all
// six endpoints needs them to agree.
func TestEngineRejectsEmptyPattern(t *testing.T) {
	ctx := context.Background()
	empty := NewPattern()
	for gname, g := range edgeGraphs() {
		t.Run(gname, func(t *testing.T) {
			eng := NewEngine(g.Clone())
			calls := map[string]func() error{
				"Match":    func() error { _, err := eng.Match(ctx, empty); return err },
				"Simulate": func() error { _, err := eng.Simulate(ctx, empty); return err },
				"Dual":     func() error { _, err := eng.DualSimulate(ctx, empty); return err },
				"Strong":   func() error { _, err := eng.StrongSimulate(ctx, empty); return err },
				"Enumerate": func() error {
					_, err := eng.Enumerate(ctx, empty, IsoOptions{})
					return err
				},
				"MatchBatch": func() error {
					_, err := eng.MatchBatch(ctx, []*Pattern{empty})
					return err
				},
				"Watch":       func() error { _, err := eng.Watch(empty); return err },
				"WatchSim":    func() error { _, err := eng.WatchSim(empty); return err },
				"WatchDual":   func() error { _, err := eng.WatchDual(empty); return err },
				"WatchStrong": func() error { _, err := eng.WatchStrong(empty); return err },
			}
			for name, call := range calls {
				err := call()
				if err == nil {
					t.Errorf("%s accepted the empty pattern", name)
				} else if !strings.Contains(err.Error(), "no nodes") {
					t.Errorf("%s rejected the empty pattern with %q, want the validation error", name, err)
				}
			}
		})
	}
}

// TestEngineEdgeCases audits every query entry point against the
// zero-node graph and minimal graphs, under every oracle strategy
// (the auto heuristic resolves |V|=0 to a matrix, so |V|=0 oracle and
// index builds are on this audit's hot path). Contract: no panics;
// a pattern node with no candidates yields OK == false with an empty
// relation; result graphs materialise everywhere.
func TestEngineEdgeCases(t *testing.T) {
	ctx := context.Background()
	p := NewPattern()
	a := p.AddNode(Label("A"))
	b := p.AddNode(Label("B"))
	p.MustAddEdge(a, b, 1)

	for gname, g := range edgeGraphs() {
		for _, kind := range []OracleKind{OracleMatrix, OracleBFS, OracleTwoHop, OracleAuto} {
			t.Run(fmt.Sprintf("%s/%s", gname, kind), func(t *testing.T) {
				g := g.Clone()
				eng := NewEngine(g, WithOracle(kind))
				wantOK := gname == "pair" // needs A -> B

				res, err := eng.Match(ctx, p)
				if err != nil {
					t.Fatalf("Match: %v", err)
				}
				if res.OK() != wantOK {
					t.Errorf("Match OK = %v, want %v", res.OK(), wantOK)
				}
				if !wantOK && res.Pairs() != 0 {
					t.Errorf("failed Match still holds %d pairs", res.Pairs())
				}
				if rg := eng.ResultGraph(res); rg == nil {
					t.Error("ResultGraph returned nil")
				}

				batch, err := eng.MatchBatch(ctx, []*Pattern{p, p})
				if err != nil {
					t.Fatalf("MatchBatch: %v", err)
				}
				for i, r := range batch {
					if r.OK() != wantOK {
						t.Errorf("MatchBatch[%d] OK = %v, want %v", i, r.OK(), wantOK)
					}
				}
				if _, err := eng.MatchBatch(ctx, nil); err != nil {
					t.Errorf("MatchBatch(nil): %v", err)
				}

				sim, err := eng.Simulate(ctx, p)
				if err != nil {
					t.Fatalf("Simulate: %v", err)
				}
				if sim.OK != wantOK {
					t.Errorf("Simulate OK = %v, want %v", sim.OK, wantOK)
				}

				dual, err := eng.DualSimulate(ctx, p)
				if err != nil {
					t.Fatalf("DualSimulate: %v", err)
				}
				if dual.OK() != wantOK {
					t.Errorf("DualSimulate OK = %v, want %v", dual.OK(), wantOK)
				}
				if rg := eng.ResultGraphOf(dual.Result); rg == nil {
					t.Error("ResultGraphOf(dual) returned nil")
				}

				strong, err := eng.StrongSimulate(ctx, p)
				if err != nil {
					t.Fatalf("StrongSimulate: %v", err)
				}
				if strong.OK() != wantOK {
					t.Errorf("StrongSimulate OK = %v, want %v", strong.OK(), wantOK)
				}

				enum, err := eng.Enumerate(ctx, p, IsoOptions{MaxEmbeddings: 4})
				if err != nil {
					t.Fatalf("Enumerate: %v", err)
				}
				wantEmb := 0
				if wantOK {
					wantEmb = 1
				}
				if len(enum.Embeddings) != wantEmb {
					t.Errorf("Enumerate found %d embeddings, want %d", len(enum.Embeddings), wantEmb)
				}
			})
		}
	}
}

// TestEngineEdgeCaseWatchers pins watcher behavior on degenerate graphs
// and after Close: every watch semantics binds to the zero-node graph
// without panicking, a closed watcher still answers reads from its last
// maintained state but receives no further deltas, and Close is
// idempotent.
func TestEngineEdgeCaseWatchers(t *testing.T) {
	p := NewPattern()
	p.AddNode(Label("A"))

	for gname, g := range edgeGraphs() {
		t.Run(gname, func(t *testing.T) {
			g := g.Clone()
			eng := NewEngine(g)
			watchers := map[string]*Watcher{}
			var err error
			if watchers["match"], err = eng.Watch(p); err != nil {
				t.Fatalf("Watch: %v", err)
			}
			if watchers["sim"], err = eng.WatchSim(p); err != nil {
				t.Fatalf("WatchSim: %v", err)
			}
			if watchers["dual"], err = eng.WatchDual(p); err != nil {
				t.Fatalf("WatchDual: %v", err)
			}
			if watchers["strong"], err = eng.WatchStrong(p); err != nil {
				t.Fatalf("WatchStrong: %v", err)
			}
			wantOK := gname != "empty" // any graph with an A node
			for sem, w := range watchers {
				if w.OK() != wantOK {
					t.Errorf("%s watcher OK = %v, want %v", sem, w.OK(), wantOK)
				}
				w.Relation()
				w.Mat(0)
			}

			// An empty update batch is a no-op that still reports one
			// delta per open watcher.
			deltas, err := eng.Update()
			if err != nil {
				t.Fatalf("Update(): %v", err)
			}
			if len(deltas) != len(watchers) {
				t.Errorf("Update(): %d deltas, want %d", len(deltas), len(watchers))
			}

			// Out-of-range updates are validation errors, not panics, and
			// leave the graph unchanged — the server feeds untrusted update
			// streams straight into this path.
			if _, err := eng.Update(InsertEdge(g.N()+3, 0)); err == nil {
				t.Error("Update accepted an out-of-range insertion")
			}
			if _, err := eng.Update(DeleteEdge(-1, 0)); err == nil {
				t.Error("Update accepted a negative endpoint")
			}

			// Close one watcher: reads still answer, deltas stop, and a
			// second Close is a no-op.
			w := watchers["sim"]
			w.Close()
			w.Close()
			if w.OK() != wantOK {
				t.Errorf("closed watcher OK = %v, want %v", w.OK(), wantOK)
			}
			w.Pairs()
			w.Mat(0)
			w.Relation()
			deltas, err = eng.Update()
			if err != nil {
				t.Fatalf("Update() after Close: %v", err)
			}
			if len(deltas) != len(watchers)-1 {
				t.Errorf("Update() after Close: %d deltas, want %d", len(deltas), len(watchers)-1)
			}
			for _, d := range deltas {
				if d.Watcher == w {
					t.Error("closed watcher still receives deltas")
				}
			}
			for _, o := range watchers {
				o.Close()
			}
		})
	}
}
