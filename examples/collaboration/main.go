// Collaboration reproduces Fig. 2's P2/G2 and Fig. 3(a): a CS researcher
// looking for collaborators in biology, sociology and medicine under hop
// bounds, where subgraph isomorphism finds nothing but bounded simulation
// returns an informative result graph. It also shows the negative case
// G3 (Example 2.2(3)): dropping one edge destroys the whole match.
//
// Run with: go run ./examples/collaboration
package main

import (
	"context"
	"fmt"
	"log"

	"gpm"
)

func dept(d string) gpm.Predicate {
	return gpm.Predicate{{Attr: "dept", Op: gpm.OpEQ, Val: gpm.Str(d)}}
}

func main() {
	// Pattern P2: collaborators in Bio (<=2 hops), Soc (<=3), Med
	// (mutually connected by unbounded chains); Bio must reach Soc (<=2)
	// and Med (<=3).
	p := gpm.NewPattern()
	cs := p.AddNode(dept("CS"))
	bio := p.AddNode(dept("Bio"))
	soc := p.AddNode(dept("Soc"))
	med := p.AddNode(dept("Med"))
	p.MustAddEdge(cs, bio, 2)
	p.MustAddEdge(cs, soc, 3)
	p.MustAddEdge(cs, med, gpm.Unbounded)
	p.MustAddEdge(med, cs, gpm.Unbounded)
	p.MustAddEdge(bio, soc, 2)
	p.MustAddEdge(bio, med, 3)

	// Data graph G2.
	g := gpm.NewGraph(0)
	names := []string{"DB", "AI", "Gen", "Eco", "Chem", "Soc", "Med"}
	depts := []string{"CS", "CS", "Bio", "Bio", "Chem", "Soc", "Med"}
	for i, n := range names {
		g.AddNode(gpm.Attrs{"dept": gpm.Str(depts[i]), "name": gpm.Str(n)})
	}
	name2id := map[string]int{}
	for i, n := range names {
		name2id[n] = i
	}
	edges := [][2]string{
		{"DB", "Gen"}, {"Gen", "Chem"}, {"Chem", "Soc"},
		{"Eco", "Soc"}, {"Soc", "Med"}, {"Med", "DB"}, {"AI", "Med"},
	}
	for _, e := range edges {
		g.AddEdge(name2id[e[0]], name2id[e[1]])
	}

	eng := gpm.NewEngine(g)
	ctx := context.Background()
	res, err := eng.Match(ctx, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P2 matches G2: %v\n", res.OK())
	for u, label := range []string{"CS ", "Bio", "Soc", "Med"} {
		fmt.Printf("  %s -> ", label)
		for _, x := range res.Mat(u) {
			fmt.Printf("%s ", names[x])
		}
		fmt.Println()
	}
	fmt.Println("\nnote: AI is excluded — it cannot reach Soc within 3 hops (Example 2.2).")

	// Fig. 3(a): the result graph, with witness path lengths.
	fmt.Println("\nresult graph (Fig. 3(a)); DB -> Soc denotes a path of length 3:")
	rg := eng.ResultGraph(res)
	fmt.Print(rg.Render(func(x int32) string { return names[x] }))

	// Subgraph isomorphism finds no embedding at all.
	if iso, err := eng.Enumerate(ctx, p, gpm.IsoOptions{}); err == nil && len(iso.Embeddings) == 0 {
		fmt.Println("\nVF2 finds no isomorphic subgraph (P2 is not isomorphic to any subgraph of G2)")
	}

	// G3 = G2 without (DB, Gen): the match collapses entirely. Updates go
	// through the engine, which keeps its cached oracle consistent.
	if _, err := eng.Update(gpm.DeleteEdge(name2id["DB"], name2id["Gen"])); err != nil {
		log.Fatal(err)
	}
	res3, err := eng.Match(ctx, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter dropping DB -> Gen (G3): match = %v — one edge was load-bearing\n", res3.OK())
}
