// Relationships demonstrates the paper's §6 extension, implemented here:
// edge colors. Data edges carry a relationship type, pattern edges may
// demand one, and bounded simulation then requires a monochromatic
// witness path — "friend-of-friend within 3 hops" stops being satisfied
// by a path that detours over a work relationship.
//
// Run with: go run ./examples/relationships
package main

import (
	"context"
	"fmt"
	"log"

	"gpm"
)

func main() {
	g := gpm.NewGraph(0)
	role := func(r string) gpm.Attrs { return gpm.Attrs{"role": gpm.Str(r)} }
	alice := g.AddNode(role("founder"))
	bob := g.AddNode(role("friend"))
	carol := g.AddNode(role("investor"))
	dave := g.AddNode(role("colleague"))
	erin := g.AddNode(role("investor"))
	names := []string{"alice", "bob", "carol", "dave", "erin"}

	// Two routes from alice to an investor: a pure friend chain
	// alice -> bob -> carol, and a mixed chain alice -> dave (work) ->
	// erin (friend).
	g.AddColoredEdge(alice, bob, "friend")
	g.AddColoredEdge(bob, carol, "friend")
	g.AddColoredEdge(alice, dave, "work")
	g.AddColoredEdge(dave, erin, "friend")

	// Pattern: a founder connected to an investor by friends only, within
	// 3 hops.
	p := gpm.NewPattern()
	founder := p.AddNode(gpm.Predicate{{Attr: "role", Op: gpm.OpEQ, Val: gpm.Str("founder")}})
	investor := p.AddNode(gpm.Predicate{{Attr: "role", Op: gpm.OpEQ, Val: gpm.Str("investor")}})
	if _, err := p.AddColoredEdge(founder, investor, 3, "friend"); err != nil {
		log.Fatal(err)
	}

	eng := gpm.NewEngine(g)
	ctx := context.Background()
	res, err := eng.Match(ctx, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("friend-only pattern matches: %v\n", res.OK())

	// mat(investor) lists every investor (the node has no outgoing
	// constraints); the color constraint shows in the result graph, whose
	// founder -> investor edges exist only where a monochromatic friend
	// path witnesses them.
	fmt.Println("result graph under the friend-only edge:")
	rg := eng.ResultGraph(res)
	for _, e := range rg.Edges {
		fmt.Printf("  %s -> %s (friend path of length %d)\n", names[e.From], names[e.To], e.Dist)
	}
	fmt.Println("  (no edge to erin: her chain passes through a work edge)")

	// The same pattern without a color constraint connects both.
	q := gpm.NewPattern()
	qf := q.AddNode(gpm.Predicate{{Attr: "role", Op: gpm.OpEQ, Val: gpm.Str("founder")}})
	qi := q.AddNode(gpm.Predicate{{Attr: "role", Op: gpm.OpEQ, Val: gpm.Str("investor")}})
	q.MustAddEdge(qf, qi, 3)
	res2, err := eng.Match(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nresult graph without the color constraint:")
	rg2 := eng.ResultGraph(res2)
	for _, e := range rg2.Edges {
		fmt.Printf("  %s -> %s (any-color path of length %d)\n", names[e.From], names[e.To], e.Dist)
	}
	_ = carol
	_ = investor
	_ = qf
}
