// Youtube runs the paper's Example 2.3 / Fig. 3(b) pattern P′ against the
// synthetic YouTube recommendation network: long, old videos recommending
// popular low-comment videos, leading to neil010's uploads and onward to
// highly-rated People videos and sparsely-rated Travel & Places videos.
//
// On the synthetic stand-in the strict 1-hop version of P′ is usually too
// selective — which demonstrates the paper's central point: sweeping the
// hop bound k turns an empty answer into a community (appendix Fig. 9).
//
// Run with: go run ./examples/youtube [-scale 0.15]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"gpm"
)

func main() {
	scale := flag.Float64("scale", 0.15, "dataset scale factor (1.0 = paper-size: 14829 nodes)")
	flag.Parse()

	g, err := gpm.Dataset("youtube", 42, *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("YouTube stand-in: %s\n", gpm.Stats(g))

	eng := gpm.NewEngine(g)
	ctx := context.Background()

	pred := func(s string) gpm.Predicate {
		p, err := gpm.ParsePredicate(s)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}

	// P′ of Example 2.3, parameterised by the hop bound k on every edge.
	build := func(k int) *gpm.Pattern {
		p := gpm.NewPattern()
		p3 := p.AddNode(pred("length > 120 && age > 365"))
		p2 := p.AddNode(pred("comments < 16 && views >= 700"))
		p4 := p.AddNode(pred("uploader = neil010"))
		p1 := p.AddNode(pred("category = People && rate > 4.5"))
		p5 := p.AddNode(pred(`category = "Travel & Places" && ratings < 30`))
		p.MustAddEdge(p3, p2, k)
		p.MustAddEdge(p2, p4, k)
		p.MustAddEdge(p4, p1, k)
		p.MustAddEdge(p4, p5, k)
		return p
	}

	fmt.Printf("%-6s %-8s %-8s %-12s %s\n", "k", "match", "|S|", "time", "result graph")
	for k := 1; k <= 5; k++ {
		p := build(k)
		res, err := eng.Match(ctx, p)
		if err != nil {
			log.Fatal(err)
		}
		if res.Stats.OracleBuild > 0 {
			fmt.Printf("(distance matrix built in %v on the first query; later queries share it)\n", res.Stats.OracleBuild)
		}
		rgInfo := "-"
		if res.OK() {
			rg := eng.ResultGraph(res)
			n, e := rg.Size()
			rgInfo = fmt.Sprintf("%d nodes, %d edges", n, e)
		}
		fmt.Printf("%-6d %-8v %-8d %-12v %s\n", k, res.OK(), res.Pairs(), res.Stats.MatchTime, rgInfo)
	}
	fmt.Println("\nas the paper's Fig. 9 shows, matches appear past a bound threshold and then saturate.")

	// Breakdown at the first matching bound.
	for k := 1; k <= 6; k++ {
		res, err := eng.Match(ctx, build(k))
		if err != nil {
			log.Fatal(err)
		}
		if !res.OK() {
			continue
		}
		labels := []string{"p3 (long+old)", "p2 (popular)", "p4 (neil010)", "p1 (People)", "p5 (Travel)"}
		fmt.Printf("\ncommunity found at k=%d:\n", k)
		for u, l := range labels {
			fmt.Printf("  %-14s -> %d videos\n", l, len(res.Mat(u)))
		}
		break
	}
}
