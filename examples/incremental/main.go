// Incremental demonstrates §4 of the paper: maintaining a match over a
// stream of edge updates with IncMatch instead of recomputing. It
// streams batches of insertions and deletions over the YouTube stand-in
// and compares the incremental cost against a from-scratch Match (whose
// distance-matrix rebuild is charged to it, as in the paper's Exp-3).
//
// Run with: go run ./examples/incremental [-scale 0.08] [-batches 6] [-delta 40]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"gpm"
)

func main() {
	scale := flag.Float64("scale", 0.08, "dataset scale factor")
	batches := flag.Int("batches", 6, "number of update batches")
	delta := flag.Int("delta", 40, "updates per batch")
	flag.Parse()

	g, err := gpm.Dataset("youtube", 7, *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.N(), g.M())

	// A DAG pattern (the class with the paper's performance guarantee):
	// well-viewed music videos recommending comedy within 2 hops, which
	// recommend People videos within 3.
	pred := func(s string) gpm.Predicate {
		p, err := gpm.ParsePredicate(s)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	p := gpm.NewPattern()
	music := p.AddNode(pred("category = Music && views >= 1000"))
	comedy := p.AddNode(pred("category = Comedy"))
	people := p.AddNode(pred("category = People"))
	p.MustAddEdge(music, comedy, 2)
	p.MustAddEdge(comedy, people, 3)

	eng := gpm.NewEngine(g)
	start := time.Now()
	w, err := eng.Watch(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial match: ok=%v |S|=%d (matrix+match in %v)\n\n", w.OK(), w.Pairs(), time.Since(start))
	fmt.Printf("%-8s %-12s %-12s %8s %8s %8s\n", "batch", "IncMatch", "recompute", "|AFF1|", "|AFF2|", "|S|")

	for b := 0; b < *batches; b++ {
		ups := gpm.GenerateUpdates(gpm.UpdateGenConfig{
			Insertions: *delta / 2, Deletions: *delta - *delta/2, Seed: int64(100 + b),
		}, eng.Graph())

		t0 := time.Now()
		deltas, err := eng.Update(ups...)
		if err != nil {
			log.Fatal(err)
		}
		incTime := time.Since(t0)
		d := deltas[0].Delta

		// The competitor: recompute from scratch on a copy via a fresh
		// engine (oracle rebuild included, as the paper charges it).
		scratch := gpm.NewEngine(eng.Graph().Clone())
		t1 := time.Now()
		res, err := scratch.Match(context.Background(), p)
		if err != nil {
			log.Fatal(err)
		}
		batchTime := time.Since(t1)
		if res.Pairs() != w.Pairs() {
			log.Fatalf("divergence: incremental |S|=%d, batch |S|=%d", w.Pairs(), res.Pairs())
		}
		fmt.Printf("%-8d %-12v %-12v %8d %8d %8d\n", b, incTime, batchTime, d.Aff1, d.Aff2, w.Pairs())
	}
	fmt.Println("\nincremental wins while the affected area stays small (paper Fig. 6(i)-(k)).")
	_ = music
}
