// Serving demonstrates the gpmd service layer end to end without
// leaving one process: it binds the YouTube stand-in into an
// internal/server instance on a loopback listener, then drives it
// through the typed gpm/client — a query per semantics, a watch
// session maintained through edge updates with streamed deltas, and
// the daemon's aggregate stats. Everything the example does over HTTP,
// a remote caller can do against a real `gpmd -dataset
// tube=youtube:0.05` daemon.
//
// Run with: go run ./examples/serving [-scale 0.05]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"gpm"
	"gpm/client"
	"gpm/internal/server"
)

func main() {
	scale := flag.Float64("scale", 0.05, "dataset scale factor")
	flag.Parse()
	ctx := context.Background()

	g, err := gpm.Dataset("youtube", 7, *scale)
	if err != nil {
		log.Fatal(err)
	}

	// The daemon side: bind the graph, listen on a loopback port.
	srv := server.New(server.Config{DefaultTimeout: 30 * time.Second})
	if err := srv.Bind("tube", g); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	// The remote side: a typed client over the wire.
	c := client.New("http://" + ln.Addr().String())
	infos, err := c.Graphs(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, info := range infos {
		fmt.Printf("serving %q: %d nodes, %d edges, oracle %s\n",
			info.Name, info.Nodes, info.Edges, info.Oracle)
	}

	// Music videos recommending Comedy within 2 hops.
	pred := func(s string) gpm.Predicate {
		p, perr := gpm.ParsePredicate(s)
		if perr != nil {
			log.Fatal(perr)
		}
		return p
	}
	p := gpm.NewPattern()
	music := p.AddNode(pred("category = Music && views > 1000"))
	comedy := p.AddNode(pred("category = Comedy"))
	p.MustAddEdge(music, comedy, 2)

	rel, err := c.Match(ctx, "tube", p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bounded simulation over the wire: ok=%v, %d pairs, %v matching Music nodes\n",
		rel.OK, rel.Pairs, len(rel.Matches[music]))

	// The same pattern with all bounds 1 serves the whole lattice.
	p1 := gpm.NewPattern()
	m1 := p1.AddNode(pred("category = Music"))
	c1 := p1.AddNode(pred("category = Comedy"))
	p1.MustAddEdge(m1, c1, 1)
	for _, sem := range []string{"sim", "dual", "strong"} {
		var r *client.Relation
		switch sem {
		case "sim":
			r, err = c.Simulate(ctx, "tube", p1)
		case "dual":
			r, err = c.DualSimulate(ctx, "tube", p1)
		case "strong":
			r, err = c.StrongSimulate(ctx, "tube", p1)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s over the wire: ok=%v, %d pairs\n", sem, r.OK, r.Pairs)
	}

	// A watch session: incremental maintenance reachable over HTTP.
	st, err := c.Watch(ctx, "tube", p1, "dual")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("watch %d (%s): ok=%v, %d pairs\n", st.ID, st.Semantics, st.OK, st.Pairs)

	ups := gpm.GenerateUpdates(gpm.UpdateGenConfig{Insertions: 5, Deletions: 5, Seed: 42}, g)
	header, err := c.UpdateStream(ctx, "tube", ups, func(d client.WatchDelta) error {
		fmt.Printf("  delta for watch %d: ok=%v, %d pairs (+%d/-%d pairs changed)\n",
			d.WatchID, d.OK, d.Pairs, len(d.Added), len(d.Removed))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("applied %d updates, %d watcher(s) cascaded\n", header.Applied, header.Watchers)
	if err := c.CloseWatch(ctx, st.ID); err != nil {
		log.Fatal(err)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("daemon served %d match, %d sim, %d dual, %d strong queries; %d update batch(es)\n",
		stats.Queries["match"], stats.Queries["sim"], stats.Queries["dual"],
		stats.Queries["strong"], stats.Updates)
}
