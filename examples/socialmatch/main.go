// Socialmatch reproduces Fig. 2's P1/G1 (Example 2.1): a founder (A)
// looking for a software engineer and an HR expert within two hops, plus
// golf-playing sales managers close to both and connected back to A by an
// unbounded friend chain. It then deletes one edge and maintains the
// match incrementally, replaying the appendix's Match⁻ walk-through.
//
// Run with: go run ./examples/socialmatch
package main

import (
	"fmt"
	"log"

	"gpm"
)

func main() {
	flagPred := func(name string) gpm.Predicate {
		return gpm.Predicate{{Attr: name, Op: gpm.OpEQ, Val: gpm.Int(1)}}
	}

	// Pattern P1.
	p := gpm.NewPattern()
	a := p.AddNode(flagPred("isA"))
	se := p.AddNode(flagPred("isSE"))
	hr := p.AddNode(flagPred("isHR"))
	dm := p.AddNode(gpm.Predicate{
		{Attr: "isDM", Op: gpm.OpEQ, Val: gpm.Int(1)},
		{Attr: "hobby", Op: gpm.OpEQ, Val: gpm.Str("golf")},
	})
	p.MustAddEdge(a, se, 2)
	p.MustAddEdge(a, hr, 2)
	p.MustAddEdge(se, dm, 1)
	p.MustAddEdge(hr, dm, 2)
	p.MustAddEdge(dm, a, gpm.Unbounded)

	// Data graph G1. Node 3 is both an HR expert and a software engineer.
	g := gpm.NewGraph(0)
	nA := g.AddNode(gpm.Attrs{"isA": gpm.Int(1)})
	nSE := g.AddNode(gpm.Attrs{"isSE": gpm.Int(1)})
	nHR := g.AddNode(gpm.Attrs{"isHR": gpm.Int(1)})
	nHRSE := g.AddNode(gpm.Attrs{"isHR": gpm.Int(1), "isSE": gpm.Int(1)})
	nDMl := g.AddNode(gpm.Attrs{"isDM": gpm.Int(1), "hobby": gpm.Str("golf")})
	nDMr := g.AddNode(gpm.Attrs{"isDM": gpm.Int(1), "hobby": gpm.Str("golf")})
	names := []string{"A", "SE", "HR", "(HR,SE)", "DM_l", "DM_r"}
	g.AddEdge(nA, nHR)
	g.AddEdge(nHR, nHRSE)
	g.AddEdge(nSE, nDMl)
	g.AddEdge(nSE, nHRSE)
	g.AddEdge(nHRSE, nDMr)
	g.AddEdge(nHRSE, nA)
	g.AddEdge(nDMr, nA)
	g.AddEdge(nDMl, nSE)

	// Engine watcher: matrix plus match maintained under updates fed
	// through the engine.
	eng := gpm.NewEngine(g)
	w, err := eng.Watch(p)
	if err != nil {
		log.Fatal(err)
	}
	show := func() {
		for u, label := range []string{"A ", "SE", "HR", "DM"} {
			fmt.Printf("  %s -> ", label)
			for _, x := range w.Mat(u) {
				fmt.Printf("%s ", names[x])
			}
			fmt.Println()
		}
	}
	fmt.Println("initial maximum match (Example 2.2's S1):")
	show()

	// The appendix Match⁻ example: remove (SE, (HR,SE)).
	fmt.Println("\ndeleting edge SE -> (HR,SE) ...")
	deltas, err := eng.Update(gpm.DeleteEdge(nSE, nHRSE))
	if err != nil {
		log.Fatal(err)
	}
	delta := deltas[0].Delta
	fmt.Printf("removed pairs: %d, added: %d, |AFF1|=%d (distance pairs touched)\n",
		len(delta.Removed), len(delta.Added), delta.Aff1)
	fmt.Println("match after deletion (DM_l and the lone SE drop out):")
	show()

	// Putting the edge back restores S1 (the pattern is cyclic, so the
	// matcher transparently falls back to the batch algorithm and says so).
	fmt.Println("\nre-inserting the edge ...")
	deltas, err = eng.Update(gpm.InsertEdge(nSE, nHRSE))
	if err != nil {
		log.Fatal(err)
	}
	delta = deltas[0].Delta
	fmt.Printf("restored %d pairs (batch fallback used: %v)\n", len(delta.Added), delta.Recomputed)
	show()
	_ = se
	_ = hr
	_ = dm
	_ = a
}
