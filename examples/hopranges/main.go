// Hopranges demonstrates the §6 "ranges on hops" extension: pattern
// edges with a lower and an upper walk-length bound. The scenario is
// fraud screening: flag accounts that send money to a mule account
// *indirectly* — through 2 to 4 intermediaries — while accounts paying
// the same destination directly are fine.
//
// Run with: go run ./examples/hopranges
package main

import (
	"context"
	"fmt"
	"log"

	"gpm"
)

func main() {
	role := func(r string) gpm.Attrs { return gpm.Attrs{"role": gpm.Str(r)} }
	g := gpm.NewGraph(0)
	direct := g.AddNode(role("account")) // pays the mule directly
	layered := g.AddNode(role("account"))
	shell1 := g.AddNode(role("shell"))
	shell2 := g.AddNode(role("shell"))
	mule := g.AddNode(role("mule"))
	names := []string{"direct-payer", "layered-payer", "shell-1", "shell-2", "mule"}

	g.AddEdge(direct, mule)    // a single transfer: ordinary behaviour
	g.AddEdge(layered, shell1) // layering chain of length 3
	g.AddEdge(shell1, shell2)
	g.AddEdge(shell2, mule)

	// Pattern: an account connected to a mule by a walk of length 2..4 —
	// "indirectly, but not too far to be coincidence".
	p := gpm.NewPattern()
	acct := p.AddNode(gpm.Predicate{{Attr: "role", Op: gpm.OpEQ, Val: gpm.Str("account")}})
	ml := p.AddNode(gpm.Predicate{{Attr: "role", Op: gpm.OpEQ, Val: gpm.Str("mule")}})
	if _, err := p.AddRangeEdge(acct, ml, 2, 4, ""); err != nil {
		log.Fatal(err)
	}

	eng := gpm.NewEngine(g)
	ctx := context.Background()
	res, err := eng.Match(ctx, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suspicious accounts (mule reachable in 2..4 hops):\n")
	for _, x := range res.Mat(acct) {
		fmt.Printf("  %s\n", names[x])
	}
	fmt.Println("the direct payer is NOT flagged: its only walk to the mule has length 1")

	rg := eng.ResultGraph(res)
	for _, e := range rg.Edges {
		fmt.Printf("evidence: %s -> %s via a %d-hop layering chain\n", names[e.From], names[e.To], e.Dist)
	}

	// Contrast: a plain <=4 bound flags both payers.
	q := gpm.NewPattern()
	qa := q.AddNode(gpm.Predicate{{Attr: "role", Op: gpm.OpEQ, Val: gpm.Str("account")}})
	qm := q.AddNode(gpm.Predicate{{Attr: "role", Op: gpm.OpEQ, Val: gpm.Str("mule")}})
	q.MustAddEdge(qa, qm, 4)
	res2, err := eng.Match(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith a plain <=4 bound (no lower bound), %d accounts are flagged — the range is what isolates layering\n",
		len(res2.Mat(qa)))
}
