// Quickstart: build a small attributed graph, write a pattern with
// predicates and hop bounds, bind the graph to an engine, compute the
// maximum bounded-simulation match, and print the result graph.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"gpm"
)

func main() {
	// A tiny org chart: a director, two managers, three engineers.
	g := gpm.NewGraph(0)
	director := g.AddNode(gpm.Attrs{"role": gpm.Str("director"), "years": gpm.Int(12)})
	mgrA := g.AddNode(gpm.Attrs{"role": gpm.Str("manager"), "years": gpm.Int(7)})
	mgrB := g.AddNode(gpm.Attrs{"role": gpm.Str("manager"), "years": gpm.Int(2)})
	eng1 := g.AddNode(gpm.Attrs{"role": gpm.Str("engineer"), "years": gpm.Int(3)})
	eng2 := g.AddNode(gpm.Attrs{"role": gpm.Str("engineer"), "years": gpm.Int(1)})
	eng3 := g.AddNode(gpm.Attrs{"role": gpm.Str("engineer"), "years": gpm.Int(5)})
	g.AddEdge(director, mgrA)
	g.AddEdge(director, mgrB)
	g.AddEdge(mgrA, eng1)
	g.AddEdge(eng1, eng2) // eng1 mentors eng2: two hops from the manager
	g.AddEdge(mgrB, eng3)
	g.AddEdge(eng3, mgrB) // engineers report back

	// Pattern: an experienced director overseeing, within 2 hops, an
	// engineer — where the parse-based predicate syntax keeps patterns
	// readable.
	pred := func(s string) gpm.Predicate {
		p, err := gpm.ParsePredicate(s)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	p := gpm.NewPattern()
	boss := p.AddNode(pred("role = director && years >= 10"))
	eng := p.AddNode(pred("role = engineer"))
	p.MustAddEdge(boss, eng, 3)

	// The engine binds the graph once: it builds and caches the distance
	// oracle on the first query, and later queries (and goroutines)
	// share it.
	engine := gpm.NewEngine(g)
	ctx := context.Background()
	res, err := engine.Match(ctx, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("match found: %v, %d pairs\n", res.OK(), res.Pairs())
	fmt.Printf("  boss candidates:     %v\n", res.Mat(boss))
	fmt.Printf("  engineer candidates: %v\n", res.Mat(eng))

	// The result graph records which pattern edge each connection
	// realises and the witness path length.
	fmt.Println(engine.ResultGraph(res))

	// Contrast with subgraph isomorphism: edge-to-edge semantics only
	// reaches eng1, never the mentee two hops away.
	iso, err := engine.Enumerate(ctx, p, gpm.IsoOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VF2 (edge-to-edge) embeddings: %d\n", len(iso.Embeddings))
}
