// Drugring reproduces Example 1.1 / Fig. 1 of the paper: detecting a
// drug-trafficking organization in a contact network. The pattern — a
// boss, assistant managers, a secretary, and field workers supervised
// within 3 levels — cannot be found by subgraph isomorphism at all (the
// secretary is also an AM, and supervision spans up to 3 hops), while
// bounded simulation identifies every suspect.
//
// Run with: go run ./examples/drugring
package main

import (
	"context"
	"fmt"
	"log"

	"gpm"
)

func flag(name string) gpm.Predicate {
	return gpm.Predicate{{Attr: name, Op: gpm.OpEQ, Val: gpm.Int(1)}}
}

func main() {
	// Pattern P0 (Fig. 1 left).
	p := gpm.NewPattern()
	b := p.AddNode(flag("isB"))
	am := p.AddNode(flag("isAM"))
	s := p.AddNode(flag("isS"))
	fw := p.AddNode(flag("isFW"))
	p.MustAddEdge(b, am, 1)  // boss -> AMs directly
	p.MustAddEdge(am, b, 1)  // AMs report to the boss
	p.MustAddEdge(am, fw, 3) // AMs supervise field workers within 3 levels
	p.MustAddEdge(fw, am, 3) // workers report back within 3 hops
	p.MustAddEdge(b, s, 1)   // boss -> secretary
	p.MustAddEdge(s, fw, 1)  // secretary -> top-level workers

	// Data graph G0 (Fig. 1 right): boss, three AMs (the last doubling as
	// the secretary), and a 3-deep chain of workers under each AM.
	g := gpm.NewGraph(0)
	boss := g.AddNode(gpm.Attrs{"isB": gpm.Int(1)})
	names := map[int]string{boss: "Boss"}
	var workers []int
	for i := 0; i < 3; i++ {
		attrs := gpm.Attrs{"isAM": gpm.Int(1)}
		if i == 2 {
			attrs["isS"] = gpm.Int(1) // A3 is both AM and secretary
		}
		a := g.AddNode(attrs)
		names[a] = fmt.Sprintf("A%d", i+1)
		g.AddEdge(boss, a)
		g.AddEdge(a, boss)
		prev := a
		for lvl := 1; lvl <= 3; lvl++ {
			w := g.AddNode(gpm.Attrs{"isFW": gpm.Int(1)})
			names[w] = fmt.Sprintf("W%d%d", i+1, lvl)
			g.AddEdge(prev, w)
			g.AddEdge(w, prev)
			workers = append(workers, w)
			prev = w
		}
	}

	eng := gpm.NewEngine(g)
	ctx := context.Background()
	res, err := eng.Match(ctx, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drug ring detected: %v\n", res.OK())
	for u, label := range []string{"B", "AM", "S", "FW"} {
		fmt.Printf("  %-3s -> ", label)
		for _, x := range res.Mat(u) {
			fmt.Printf("%s ", names[int(x)])
		}
		fmt.Println()
	}

	// The three observations of Example 1.1:
	sec := res.Mat(s)[0]
	fmt.Printf("\n(1) AM and S map to the same node %s (no bijection can do this)\n", names[int(sec)])
	fmt.Printf("(2) AM maps to %d nodes (a relation, not a function)\n", len(res.Mat(am)))
	fmt.Printf("(3) FW captures all %d workers via <=3-hop supervision paths\n", len(res.Mat(fw)))

	if iso, err := eng.Enumerate(ctx, p, gpm.IsoOptions{}); err == nil && len(iso.Embeddings) == 0 {
		fmt.Println("\nsubgraph isomorphism (VF2) finds nothing, as the paper predicts")
	}
	_ = workers
}
