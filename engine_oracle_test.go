package gpm_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"gpm"
	"gpm/internal/pll"
)

// TestEnginePLLSingleFlight: many goroutines issue the FIRST query
// against a PLL engine concurrently; the lazy oracle build must run
// exactly once (the others wait on buildMu and reuse the cached index).
// Under -race this also proves the build/publish handoff is clean.
// Not parallel: it installs the global build hook.
func TestEnginePLLSingleFlight(t *testing.T) {
	g := engineTestGraph(t, 600, 2400, 21)
	p := gpm.GeneratePattern(gpm.PatternGenConfig{Nodes: 4, Edges: 4, K: 3, Seed: 7}, g)

	var builds atomic.Int64
	gpm.SetTestHookPLLBuild(func() { builds.Add(1) })
	defer gpm.SetTestHookPLLBuild(nil)

	eng := gpm.NewEngine(g, gpm.WithOracle(gpm.OraclePLL))
	want, err := gpm.Match(p, g)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := eng.Match(context.Background(), p)
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(res.Relation(), want.Relation()) {
				errs <- errors.New("concurrent first query: relation mismatch")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("concurrent first queries ran %d PLL builds, want 1", n)
	}
}

// TestEnginePLLBuildCancellation: cancelling the query context while the
// lazy PLL build is in flight aborts the build with the context's error
// — and the NEXT query retries the build and succeeds, so one caller's
// deadline cannot wedge the engine forever. The hook cancels at the
// exact moment the build starts, which makes the mid-build timing
// deterministic (a plain short deadline could also trip Match's
// entry-point check and never reach the build).
// Not parallel: it installs the global build hook.
func TestEnginePLLBuildCancellation(t *testing.T) {
	g := engineTestGraph(t, 1500, 6000, 22)
	p := gpm.GeneratePattern(gpm.PatternGenConfig{Nodes: 4, Edges: 4, K: 3, Seed: 9}, g)

	eng := gpm.NewEngine(g, gpm.WithOracle(gpm.OraclePLL))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var builds atomic.Int64
	gpm.SetTestHookPLLBuild(func() {
		builds.Add(1)
		cancel()
	})
	defer gpm.SetTestHookPLLBuild(nil)

	if _, err := eng.Match(ctx, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled mid-build: err = %v, want context.Canceled", err)
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("build hook ran %d times, want 1", n)
	}

	// The aborted build must not be cached: a fresh context retries it.
	gpm.SetTestHookPLLBuild(func() { builds.Add(1) })
	res, err := eng.Match(context.Background(), p)
	if err != nil {
		t.Fatalf("retry after cancelled build: %v", err)
	}
	if n := builds.Load(); n != 2 {
		t.Fatalf("retry did not rebuild (hook ran %d times, want 2)", n)
	}
	want, err := gpm.Match(p, g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Relation(), want.Relation()) {
		t.Fatal("retry after cancelled build: relation mismatch")
	}
}

// TestEngineOraclePLLTooLarge: forcing OraclePLL onto a graph past the
// labelling's 24-bit addressing limit must not panic at bind time (the
// old behavior) — the engine binds, and oracle-backed queries fail with
// ErrGraphTooLarge. OracleAuto on the same graph falls back to BFS and
// keeps working. MaxNodes is a variable precisely so this test does not
// need a 16M-node graph.
func TestEngineOraclePLLTooLarge(t *testing.T) {
	saved := pll.MaxNodes
	pll.MaxNodes = 64
	defer func() { pll.MaxNodes = saved }()

	g := engineTestGraph(t, 100, 300, 23)
	p := gpm.GeneratePattern(gpm.PatternGenConfig{Nodes: 3, Edges: 3, K: 2, Seed: 3}, g)

	eng := gpm.NewEngine(g, gpm.WithOracle(gpm.OraclePLL)) // must not panic
	if _, err := eng.Match(context.Background(), p); !errors.Is(err, gpm.ErrGraphTooLarge) {
		t.Fatalf("Match on oversized PLL engine: err = %v, want ErrGraphTooLarge", err)
	}
	if _, err := eng.MatchBatch(context.Background(), []*gpm.Pattern{p, p}); !errors.Is(err, gpm.ErrGraphTooLarge) {
		t.Fatalf("MatchBatch on oversized PLL engine: err = %v, want ErrGraphTooLarge", err)
	}
	// Oracle-less semantics stay usable on the same engine.
	if _, err := eng.Simulate(context.Background(), boundOnePattern()); err != nil {
		t.Fatalf("Simulate on oversized PLL engine: %v", err)
	}

	// Auto on the same oversized graph falls back to BFS instead of
	// erroring. The graph must also clear the auto matrix threshold, or
	// auto would resolve to OracleMatrix before PLL is even considered.
	big := gpm.NewGraph(4200)
	for i := 0; i < 4199; i++ {
		big.AddEdge(i, i+1)
	}
	auto := gpm.NewEngine(big, gpm.WithAutoOracle())
	if k := auto.OracleKind(); k != gpm.OracleBFS {
		t.Fatalf("auto on an over-MaxNodes graph resolved %v, want bfs fallback", k)
	}
	if _, err := auto.Match(context.Background(), p); err != nil {
		t.Fatalf("auto fallback Match: %v", err)
	}
}
