// Benchmarks regenerating the core operation behind every table and
// figure of the paper's evaluation. Dataset scale is kept small so the
// whole suite runs in seconds; cmd/gpmbench produces the full tables
// (and -scale 1 the paper-sized runs). Mapping to paper artefacts:
//
//	BenchmarkTableDatasets  – §5 dataset table (stand-in construction)
//	BenchmarkFig6a*         – Exp-1 effectiveness (Match vs SubIso)
//	BenchmarkFig6b*         – Fig 6(b) efficiency (Match vs VF2)
//	BenchmarkFig6c*         – Fig 6(c) match counting
//	BenchmarkFig6d*         – Fig 6(d) extra pattern edges
//	BenchmarkFig6e*         – Fig 6(e) Match/2-hop/BFS on real-life data
//	BenchmarkFig6fgh*       – Figs 6(f)-(h) scalability in |E|
//	BenchmarkFig6i*         – Fig 6(i) IncMatch vs Match, mixed batches
//	BenchmarkFig6j*         – Fig 6(j) deletions
//	BenchmarkFig6k*         – Fig 6(k) insertions
//	BenchmarkFig9*          – appendix Fig 9 bound sweep
//	BenchmarkGr*            – appendix |Gr| result-graph statistics
//	BenchmarkAblation*      – DESIGN.md ablations (naive fixpoint, matrix build)
package gpm_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"gpm"
)

// Shared fixtures, built once.
var (
	fixOnce    sync.Once
	ytGraph    *gpm.Graph     // scaled YouTube stand-in
	ytOracle   gpm.DistOracle // matrix oracle over ytGraph
	ytPattern  *gpm.Pattern   // P(4,4,3) walk pattern
	ytPatterns map[int]*gpm.Pattern
	synGraph   *gpm.Graph
	synOracle  gpm.DistOracle
)

func setup() {
	fixOnce.Do(func() {
		var err error
		ytGraph, err = gpm.Dataset("youtube", 20100913, 0.05)
		if err != nil {
			panic(err)
		}
		ytOracle = gpm.NewMatrixOracle(ytGraph)
		ytPatterns = map[int]*gpm.Pattern{}
		for size := 3; size <= 8; size++ {
			ytPatterns[size] = gpm.GeneratePattern(gpm.PatternGenConfig{
				Nodes: size, Edges: size, K: 3, C: 2, PredAttrs: 2, Seed: int64(100 + size),
			}, ytGraph)
		}
		ytPattern = ytPatterns[4]
		synGraph = gpm.GenerateGraph(gpm.GraphGenConfig{
			Nodes: 1000, Edges: 2000, Attrs: 100, Model: gpm.ModelER, Seed: 7,
		})
		synOracle = gpm.NewMatrixOracle(synGraph)
	})
}

func BenchmarkTableDatasets(b *testing.B) {
	for _, name := range []string{"matter", "pblog", "youtube"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gpm.Dataset(name, 1, 0.02); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig6aMatch(b *testing.B) {
	setup()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gpm.MatchWithOracle(ytPattern, ytGraph, ytOracle); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6aSubIso(b *testing.B) {
	setup()
	b.ResetTimer()
	opts := gpm.IsoOptions{MaxEmbeddings: 1000, MaxSteps: 2_000_000}
	for i := 0; i < b.N; i++ {
		gpm.Ullmann(ytPattern, ytGraph, opts)
	}
}

func BenchmarkFig6bMatchProcess(b *testing.B) {
	setup()
	b.ResetTimer()
	for size := 3; size <= 8; size++ {
		b.Run(fmt.Sprintf("P(%d,%d,3)", size, size), func(b *testing.B) {
			p := ytPatterns[size]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gpm.MatchWithOracle(p, ytGraph, ytOracle); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig6bMatchTotal(b *testing.B) {
	setup()
	b.ResetTimer()
	// Includes the distance-matrix construction, the paper's Match(Total).
	for i := 0; i < b.N; i++ {
		if _, err := gpm.Match(ytPattern, ytGraph); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6bVF2(b *testing.B) {
	setup()
	b.ResetTimer()
	opts := gpm.IsoOptions{MaxEmbeddings: 1000, MaxSteps: 2_000_000}
	for size := 3; size <= 8; size++ {
		b.Run(fmt.Sprintf("P(%d,%d,3)", size, size), func(b *testing.B) {
			p := ytPatterns[size]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gpm.VF2(p, ytGraph, opts)
			}
		})
	}
}

func BenchmarkFig6cCountMatches(b *testing.B) {
	setup()
	b.ResetTimer()
	var pairs int
	for i := 0; i < b.N; i++ {
		res, err := gpm.MatchWithOracle(ytPattern, ytGraph, ytOracle)
		if err != nil {
			b.Fatal(err)
		}
		pairs = res.Pairs()
	}
	_ = pairs
}

func BenchmarkFig6dExtraEdges(b *testing.B) {
	setup()
	b.ResetTimer()
	for _, extra := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("x=%d", extra), func(b *testing.B) {
			p := gpm.GeneratePattern(gpm.PatternGenConfig{
				Nodes: 6, Edges: 5 + extra, K: 9, C: 2, Seed: 11,
			}, synGraph)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gpm.MatchWithOracle(p, synGraph, synOracle); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig6eVariants(b *testing.B) {
	setup()
	b.ResetTimer()
	hop := gpm.NewTwoHopOracle(ytGraph)
	b.Run("Match", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gpm.MatchWithOracle(ytPattern, ytGraph, ytOracle)
		}
	})
	b.Run("2hop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gpm.MatchWithOracle(ytPattern, ytGraph, hop)
		}
	})
	b.Run("BFS", func(b *testing.B) {
		// One oracle for the loop: constructing per iteration would
		// re-pay the O(|V|+|E|) freeze inside the timed region.
		bo := gpm.NewBFSOracle(ytGraph)
		for i := 0; i < b.N; i++ {
			gpm.MatchWithOracle(ytPattern, ytGraph, bo)
		}
	})
}

func BenchmarkFig6fghEdgeScaling(b *testing.B) {
	for _, factor := range []int{1, 2, 3} {
		g := gpm.GenerateGraph(gpm.GraphGenConfig{
			Nodes: 1000, Edges: factor * 1000, Attrs: 100, Model: gpm.ModelER, Seed: 7,
		})
		o := gpm.NewMatrixOracle(g)
		p := gpm.GeneratePattern(gpm.PatternGenConfig{Nodes: 6, Edges: 6, K: 3, Seed: 5}, g)
		b.Run(fmt.Sprintf("E=%dx", factor), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gpm.MatchWithOracle(p, g, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// incrementalRoundTrip benches one Apply of ups followed by its inverse,
// returning the matcher to its starting state so iterations compose.
func incrementalRoundTrip(b *testing.B, ins, del int) {
	setup()
	b.ResetTimer()
	g := ytGraph.Clone()
	dm := gpm.NewDynamicMatrix(g)
	m, err := gpm.NewIncrementalMatcher(ytPattern, dm)
	if err != nil {
		b.Fatal(err)
	}
	ups := gpm.GenerateUpdates(gpm.UpdateGenConfig{Insertions: ins, Deletions: del, Seed: 99}, g)
	inverse := make([]gpm.Update, len(ups))
	for i, u := range ups {
		j := len(ups) - 1 - i
		if u.Insert {
			inverse[j] = gpm.DeleteEdge(u.U, u.V)
		} else {
			inverse[j] = gpm.InsertEdge(u.U, u.V)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Apply(ups); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Apply(inverse); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6iIncMatchMixed(b *testing.B)     { incrementalRoundTrip(b, 16, 16) }
func BenchmarkFig6jIncMatchDeletions(b *testing.B) { incrementalRoundTrip(b, 0, 32) }
func BenchmarkFig6kIncMatchInsertions(b *testing.B) {
	incrementalRoundTrip(b, 32, 0)
}

func BenchmarkFig6iBatchMatchCompetitor(b *testing.B) {
	setup()
	b.ResetTimer()
	// The batch side of Fig 6(i): recompute matrix + match from scratch.
	for i := 0; i < b.N; i++ {
		if _, err := gpm.Match(ytPattern, ytGraph); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9BoundSweep(b *testing.B) {
	setup()
	b.ResetTimer()
	for _, k := range []int{4, 8, 13} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			p := gpm.GeneratePattern(gpm.PatternGenConfig{Nodes: 6, Edges: 5, K: k, C: 2, Seed: 23}, synGraph)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gpm.MatchWithOracle(p, synGraph, synOracle); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGrResultGraph(b *testing.B) {
	setup()
	b.ResetTimer()
	res, err := gpm.MatchWithOracle(ytPattern, ytGraph, ytOracle)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gpm.ResultGraphOf(res, ytOracle)
	}
}

func BenchmarkAblationMatrixBuild(b *testing.B) {
	setup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gpm.NewMatrixOracle(ytGraph)
	}
}

func BenchmarkAblationTwoHopBuild(b *testing.B) {
	setup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gpm.NewTwoHopOracle(ytGraph)
	}
}

func BenchmarkAblationPlainSimulation(b *testing.B) {
	setup()
	b.ResetTimer()
	// Plain simulation (all bounds 1) as the lower-bound baseline.
	p := gpm.NewPattern()
	a := p.AddNode(gpm.Predicate{{Attr: "category", Op: gpm.OpEQ, Val: gpm.Str("Music")}})
	c := p.AddNode(gpm.Predicate{{Attr: "category", Op: gpm.OpEQ, Val: gpm.Str("Comedy")}})
	p.MustAddEdge(a, c, 1)
	for i := 0; i < b.N; i++ {
		if _, _, err := gpm.Simulate(p, ytGraph); err != nil {
			b.Fatal(err)
		}
	}
}

// Topology-preserving semantics (Ma et al., VLDB 2012) on the YouTube
// stand-in: dual simulation is the whole-graph fixpoint, strong
// simulation adds one ball-local fixpoint per candidate center. The
// all-bounds-one pattern is IsoBias-backed so it actually matches.
func topoPattern() *gpm.Pattern {
	return gpm.GeneratePattern(gpm.PatternGenConfig{
		Nodes: 4, Edges: 5, K: 1, IsoBias: true, PredAttrs: 1, Seed: 404,
	}, ytGraph)
}

func BenchmarkDualSim(b *testing.B) {
	setup()
	p := topoPattern()
	eng := gpm.NewEngine(ytGraph)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.DualSimulate(context.Background(), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrongSim(b *testing.B) {
	setup()
	p := topoPattern()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := gpm.NewEngine(ytGraph, gpm.WithWorkers(workers))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.StrongSimulate(context.Background(), p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
