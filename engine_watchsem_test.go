package gpm_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"gpm"
)

// watchSemGraph is a labeled graph with enough structure for the three
// semantics to differ: a 6-cycle dual-matches a triangle pattern that it
// does not strongly match, plus a genuine triangle.
func watchSemGraph() *gpm.Graph {
	g := gpm.NewGraph(9)
	labels := []string{"A", "B", "C"}
	for i := 0; i < 9; i++ {
		g.SetAttr(i, gpm.Attrs{"label": gpm.Str(labels[i%3])})
	}
	for i := 0; i < 6; i++ {
		g.AddEdge(i, (i+1)%6)
	}
	g.AddEdge(6, 7)
	g.AddEdge(7, 8)
	g.AddEdge(8, 6)
	return g
}

func trianglePattern() *gpm.Pattern {
	p := gpm.NewPattern()
	a := p.AddNode(gpm.Label("A"))
	b := p.AddNode(gpm.Label("B"))
	c := p.AddNode(gpm.Label("C"))
	p.MustAddEdge(a, b, 1)
	p.MustAddEdge(b, c, 1)
	p.MustAddEdge(c, a, 1)
	return p
}

// Every semantics watcher must track its recompute counterpart exactly
// through a stream of updates that breaks and re-forms both the cycle
// and the triangle.
func TestWatchSemanticsTrackRecompute(t *testing.T) {
	ctx := context.Background()
	g := watchSemGraph()
	p := trianglePattern()
	eng := gpm.NewEngine(g, gpm.WithWorkers(2))

	ws, err := eng.WatchSim(p)
	if err != nil {
		t.Fatal(err)
	}
	wd, err := eng.WatchDual(p)
	if err != nil {
		t.Fatal(err)
	}
	wst, err := eng.WatchStrong(p)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	defer wd.Close()
	defer wst.Close()

	batches := [][]gpm.Update{
		{gpm.DeleteEdge(5, 0)},                       // break the 6-cycle
		{gpm.DeleteEdge(8, 6)},                       // break the triangle
		{gpm.InsertEdge(8, 6), gpm.InsertEdge(5, 0)}, // restore both
		{gpm.InsertEdge(2, 0)},                       // chord: a second triangle 0-1-2
		{gpm.DeleteEdge(2, 0), gpm.DeleteEdge(0, 1)},
	}
	check := func(step int) {
		t.Helper()
		sim, err := eng.Simulate(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		dual, err := eng.DualSimulate(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		strong, err := eng.StrongSimulate(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := fmt.Sprint(ws.Relation()), fmt.Sprint(sim.Relation); got != want {
			t.Errorf("step %d: sim watcher diverged: %s vs %s", step, got, want)
		}
		if got, want := fmt.Sprint(wd.Relation()), fmt.Sprint(dual.Relation()); got != want {
			t.Errorf("step %d: dual watcher diverged: %s vs %s", step, got, want)
		}
		if got, want := fmt.Sprint(wst.Relation()), fmt.Sprint(strong.Relation()); got != want {
			t.Errorf("step %d: strong watcher diverged: %s vs %s", step, got, want)
		}
		if ws.OK() != sim.OK || wd.OK() != dual.OK() || wst.OK() != strong.OK() {
			t.Errorf("step %d: watcher OK flags diverged", step)
		}
	}
	check(-1)
	for i, batch := range batches {
		deltas, err := eng.Update(batch...)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if len(deltas) != 3 {
			t.Fatalf("batch %d: got %d watcher deltas, want 3", i, len(deltas))
		}
		check(i)
	}
}

// Semantics watchers must not force (or pin) the O(|V|²) dynamic matrix,
// and watcher reads must be safe concurrently with queries and updates.
func TestWatchSemanticsConcurrent(t *testing.T) {
	g := watchSemGraph()
	p := trianglePattern()
	eng := gpm.NewEngine(g)
	w, err := eng.WatchDual(p)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				w.Relation()
				w.OK()
				w.Pairs()
				if _, err := eng.Simulate(context.Background(), p); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 25; i++ {
		if _, err := eng.Update(gpm.DeleteEdge(5, 0)); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Update(gpm.InsertEdge(5, 0)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	w.Close()
}

// Bounds-carrying and colored patterns must be rejected by the
// edge-to-edge watchers with a clear error.
func TestWatchSemanticsRejectsBounds(t *testing.T) {
	g := watchSemGraph()
	p := gpm.NewPattern()
	a := p.AddNode(gpm.Label("A"))
	b := p.AddNode(gpm.Label("B"))
	p.MustAddEdge(a, b, 2)
	eng := gpm.NewEngine(g)
	if _, err := eng.WatchSim(p); err == nil {
		t.Error("WatchSim accepted a bound-2 pattern")
	}
	if _, err := eng.WatchDual(p); err == nil {
		t.Error("WatchDual accepted a bound-2 pattern")
	}
	if _, err := eng.WatchStrong(p); err == nil {
		t.Error("WatchStrong accepted a bound-2 pattern")
	}
}

// Mixed registries: a bounded watcher and a dual watcher share one
// Update write path; closing the bounded watcher while the dual watcher
// stays open must keep maintaining the dual relation.
func TestWatchMixedRegistry(t *testing.T) {
	ctx := context.Background()
	g := watchSemGraph()
	p := trianglePattern()
	eng := gpm.NewEngine(g)
	wb, err := eng.Watch(p)
	if err != nil {
		t.Fatal(err)
	}
	wd, err := eng.WatchDual(p)
	if err != nil {
		t.Fatal(err)
	}
	defer wd.Close()
	if deltas, err := eng.Update(gpm.DeleteEdge(5, 0)); err != nil || len(deltas) != 2 {
		t.Fatalf("Update with mixed watchers: deltas=%d err=%v", len(deltas), err)
	}
	wb.Close()
	if _, err := eng.Update(gpm.InsertEdge(5, 0)); err != nil {
		t.Fatal(err)
	}
	dual, err := eng.DualSimulate(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(wd.Relation()), fmt.Sprint(dual.Relation()); got != want {
		t.Errorf("dual watcher diverged after bounded watcher closed: %s vs %s", got, want)
	}
}
