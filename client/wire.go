// Package client is the typed Go client for gpmd, the graph pattern
// matching daemon (cmd/gpmd). It speaks the HTTP/JSON wire schema
// defined in this file; the server (internal/server) imports the same
// declarations, so client and daemon cannot drift apart.
//
// Patterns travel in the .pattern text format of the command-line tools
// (see README "Text formats"); relations come back as the same
// per-pattern-node sorted data-node lists every in-process Engine call
// returns.
package client

// QueryRequest is the body of POST /match, /simulate, /dual, /strong,
// /enumerate and /count.
type QueryRequest struct {
	// Graph names a graph bound at daemon startup (see GET /graphs).
	Graph string `json:"graph"`
	// Pattern is the pattern in .pattern text format.
	Pattern string `json:"pattern"`
	// TimeoutMS bounds this request's matching time; the server maps it
	// to a context deadline on the fixpoint or enumeration. 0 means the
	// daemon's default (its -timeout flag).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Enumerate/count-only options.
	Algo          string `json:"algo,omitempty"` // "vf2" (default) | "ullmann"
	MaxEmbeddings int    `json:"max_embeddings,omitempty"`
	MaxSteps      int64  `json:"max_steps,omitempty"`
	NoPlan        bool   `json:"no_plan,omitempty"` // skip the query planner
}

// BatchRequest is the body of POST /batch: one bounded-simulation match
// per pattern, fanned across the engine's workers server-side.
type BatchRequest struct {
	Graph     string   `json:"graph"`
	Patterns  []string `json:"patterns"` // .pattern text format each
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
}

// Stats mirrors gpm.MatchStats on the wire. Durations are nanoseconds.
type Stats struct {
	Oracle        string `json:"oracle"`
	OracleBuildNS int64  `json:"oracle_build_ns"`
	MatchTimeNS   int64  `json:"match_time_ns"`
	OracleQueries int64  `json:"oracle_queries"`
	Removals      int64  `json:"removals"`
	InitialPairs  int64  `json:"initial_pairs"`
	// Cache marks how the daemon's result cache served this relation:
	// "hit" (returned verbatim from the cache), "containment" (computed
	// by seeding the fixpoint from a containing pattern's cached
	// relation), or empty for an uncached computation. Either way the
	// Matches rows are identical to a cold computation.
	Cache string `json:"cache,omitempty"`
}

// Relation is the response of the four relation-valued semantics
// (/match, /simulate, /dual, /strong) and each element of a /batch
// response.
type Relation struct {
	Graph     string    `json:"graph"`
	Semantics string    `json:"semantics"` // match | sim | dual | strong
	OK        bool      `json:"ok"`
	Pairs     int       `json:"pairs"`
	Matches   [][]int32 `json:"matches"` // per pattern node, sorted data nodes
	Stats     Stats     `json:"stats"`
}

// BatchResponse is the response of POST /batch; Results aligns
// positionally with the request's Patterns.
type BatchResponse struct {
	Graph   string     `json:"graph"`
	Results []Relation `json:"results"`
}

// Enumeration is the response of POST /enumerate. The partial-
// enumeration contract survives the wire: when the request deadline
// expires mid-search the server still returns HTTP 200 with the
// embeddings found so far, Complete == false and Truncated holding the
// context error.
type Enumeration struct {
	Graph      string    `json:"graph"`
	Embeddings [][]int32 `json:"embeddings"` // each: pattern node -> data node
	Steps      int64     `json:"steps"`
	Complete   bool      `json:"complete"`
	Truncated  string    `json:"truncated,omitempty"` // context error when deadline hit
	Stats      Stats     `json:"stats"`
}

// Count is the response of POST /count: the embedding count computed
// without materialising embeddings, using the query planner's symmetry
// breaking unless the request opted out. The partial contract matches
// /enumerate: a mid-search deadline still returns HTTP 200 with the
// count found so far, Complete == false and Truncated set.
type Count struct {
	Graph         string `json:"graph"`
	Count         int64  `json:"count"`
	Steps         int64  `json:"steps"`
	Complete      bool   `json:"complete"`
	Automorphisms int    `json:"automorphisms"`
	Truncated     string `json:"truncated,omitempty"` // context error when deadline hit
	Stats         Stats  `json:"stats"`
}

// WatchRequest is the body of POST /watch: start incremental
// maintenance of one pattern on one graph.
type WatchRequest struct {
	Graph     string `json:"graph"`
	Pattern   string `json:"pattern"`
	Semantics string `json:"semantics"` // match | sim | dual | strong
}

// WatchState describes one watch session; returned by POST /watch and
// GET /watch/{id}.
type WatchState struct {
	ID        int64     `json:"id"`
	Graph     string    `json:"graph"`
	Semantics string    `json:"semantics"`
	OK        bool      `json:"ok"`
	Pairs     int       `json:"pairs"`
	Matches   [][]int32 `json:"matches"`
}

// UpdateOp is one edge insertion ("+") or deletion ("-").
type UpdateOp struct {
	Op string `json:"op"` // "+" | "-"
	U  int    `json:"u"`
	V  int    `json:"v"`
}

// UpdateRequest is the body of POST /update: apply a batch of edge
// updates to a named graph and cascade every watch session on it.
type UpdateRequest struct {
	Graph   string     `json:"graph"`
	Updates []UpdateOp `json:"updates"`
}

// UpdateHeader is the first line of the POST /update NDJSON response:
// the batch was applied, and Watchers delta lines follow.
type UpdateHeader struct {
	Graph    string `json:"graph"`
	Applied  int    `json:"applied"`
	Watchers int    `json:"watchers"`
}

// MatchPair is one (pattern node, data node) element of a delta.
type MatchPair struct {
	U int32 `json:"u"`
	X int32 `json:"x"`
}

// WatchDelta is one per-watcher line of the POST /update NDJSON
// response: the effect the batch had on that session's maintained match.
type WatchDelta struct {
	WatchID    int64       `json:"watch_id"`
	Semantics  string      `json:"semantics"`
	OK         bool        `json:"ok"`
	Pairs      int         `json:"pairs"`
	Added      []MatchPair `json:"added,omitempty"`
	Removed    []MatchPair `json:"removed,omitempty"`
	Recomputed bool        `json:"recomputed,omitempty"`
}

// GraphInfo describes one bound graph; GET /graphs returns the list
// sorted by name.
type GraphInfo struct {
	Name    string `json:"name"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	Oracle  string `json:"oracle"`
	Workers int    `json:"workers"`
	Watches int    `json:"watches"`
}

// ServerStats is the GET /stats response: aggregate MatchStats across
// every query the daemon served, per semantics, plus request counters.
type ServerStats struct {
	Queries       map[string]int64 `json:"queries"` // semantics -> served count
	Errors        int64            `json:"errors"`  // 4xx/5xx responses
	InFlight      int64            `json:"in_flight"`
	Updates       int64            `json:"updates"`        // update batches applied
	UpdateEdges   int64            `json:"update_edges"`   // edge updates applied
	WatchesOpened int64            `json:"watches_opened"` // sessions ever opened
	MatchTimeNS   int64            `json:"match_time_ns"`  // summed across queries
	OracleBuildNS int64            `json:"oracle_build_ns"`
	OracleQueries int64            `json:"oracle_queries"`
	Removals      int64            `json:"removals"`
	InitialPairs  int64            `json:"initial_pairs"`
	// WAL reports durability state; nil when the daemon runs without -wal.
	WAL *WALStats `json:"wal,omitempty"`
	// Cache reports the relation-result cache; nil when the daemon runs
	// with -cache-bytes=0.
	Cache *CacheStats `json:"cache,omitempty"`
}

// WALStats is the durability block of GET /stats: the write-ahead log's
// position and what the last crash recovery replayed (zeroes when the
// process started from a clean shutdown or an empty WAL directory).
type WALStats struct {
	Generation        uint64  `json:"generation"`     // snapshot generation in use
	SyncPolicy        string  `json:"sync_policy"`    // "always" | "none"
	LoggedBatches     int64   `json:"logged_batches"` // batches replay would redo
	Snapshots         int64   `json:"snapshots"`      // snapshots taken this process
	RecoveredGraphs   int64   `json:"recovered_graphs"`
	RecoveredSessions int64   `json:"recovered_sessions"` // watch sessions re-opened
	RecoveredBatches  int64   `json:"recovered_batches"`  // batches replayed at startup
	ReplayMS          float64 `json:"replay_ms"`          // total startup replay time
	TruncatedTail     bool    `json:"truncated_tail"`     // a torn final record was dropped
}

// CacheStats is the result-cache block of GET /stats: how the daemon's
// canonical-pattern relation cache (keyed by graph, update generation,
// semantics and canonical pattern digest) behaved this process.
type CacheStats struct {
	Hits            int64 `json:"hits"`             // exact canonical-digest hits
	Misses          int64 `json:"misses"`           // lookups with no exact entry
	ContainmentHits int64 `json:"containment_hits"` // misses answered via a containing pattern
	Evictions       int64 `json:"evictions"`        // entries dropped for the byte budget
	Entries         int64 `json:"entries"`          // live entries
	Bytes           int64 `json:"bytes"`            // live payload bytes (approximate)
	MaxBytes        int64 `json:"max_bytes"`        // -cache-bytes budget
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
