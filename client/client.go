package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"gpm"
)

// Client is a typed gpmd client. The zero value is not usable; construct
// with New. A Client is safe for concurrent use (it holds only an
// http.Client).
type Client struct {
	base string
	hc   *http.Client
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (custom
// transports, test servers).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the daemon at base, e.g.
// "http://127.0.0.1:8474".
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Error is a non-2xx daemon response.
type Error struct {
	StatusCode int
	Message    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("gpmd: %d: %s", e.StatusCode, e.Message)
}

// patternText serialises p in the wire's .pattern text format.
func patternText(p *gpm.Pattern) (string, error) {
	var buf bytes.Buffer
	if err := gpm.WritePattern(&buf, p); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// timeoutMS derives the wire deadline from ctx so the server-side
// fixpoint is bounded by the same deadline the caller holds locally.
func timeoutMS(ctx context.Context) int64 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// drainClose reads the body to EOF before closing so the transport can
// reuse the keep-alive connection (a body closed with bytes unread —
// the encoder's trailing newline at minimum — forces a new TCP
// connection per request).
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, body)
	body.Close()
}

// post sends one JSON request and decodes a JSON response into out.
func (c *Client) post(ctx context.Context, path string, in, out interface{}) error {
	resp, err := c.send(ctx, http.MethodPost, path, in)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	return json.NewDecoder(resp.Body).Decode(out)
}

// send issues one request and returns the response with a 2xx status,
// converting error responses to *Error.
func (c *Client) send(ctx context.Context, method, path string, in interface{}) (*http.Response, error) {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return nil, err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		defer drainClose(resp.Body)
		var er ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
			er.Error = resp.Status
		}
		return nil, &Error{StatusCode: resp.StatusCode, Message: er.Error}
	}
	return resp, nil
}

// relation runs one relation-valued semantics.
func (c *Client) relation(ctx context.Context, path, graph string, p *gpm.Pattern) (*Relation, error) {
	text, err := patternText(p)
	if err != nil {
		return nil, err
	}
	var rel Relation
	err = c.post(ctx, path, QueryRequest{Graph: graph, Pattern: text, TimeoutMS: timeoutMS(ctx)}, &rel)
	if err != nil {
		return nil, err
	}
	return &rel, nil
}

// Match computes the maximum bounded-simulation match of p against the
// named graph — the remote [gpm.Engine.Match].
func (c *Client) Match(ctx context.Context, graph string, p *gpm.Pattern) (*Relation, error) {
	return c.relation(ctx, "/match", graph, p)
}

// Simulate computes plain graph simulation.
func (c *Client) Simulate(ctx context.Context, graph string, p *gpm.Pattern) (*Relation, error) {
	return c.relation(ctx, "/simulate", graph, p)
}

// DualSimulate computes the maximum dual simulation.
func (c *Client) DualSimulate(ctx context.Context, graph string, p *gpm.Pattern) (*Relation, error) {
	return c.relation(ctx, "/dual", graph, p)
}

// StrongSimulate computes strong simulation.
func (c *Client) StrongSimulate(ctx context.Context, graph string, p *gpm.Pattern) (*Relation, error) {
	return c.relation(ctx, "/strong", graph, p)
}

// EnumerateOptions bounds a remote enumeration or count.
type EnumerateOptions struct {
	Algo          string // "vf2" (default) | "ullmann"
	MaxEmbeddings int
	MaxSteps      int64
	NoPlan        bool // skip the server-side query planner
}

// Enumerate lists subgraph-isomorphism embeddings. A ctx deadline that
// expires mid-search still returns the partial enumeration (Complete ==
// false, Truncated set) — the same contract as [gpm.Engine.Enumerate].
func (c *Client) Enumerate(ctx context.Context, graph string, p *gpm.Pattern, opts EnumerateOptions) (*Enumeration, error) {
	text, err := patternText(p)
	if err != nil {
		return nil, err
	}
	var enum Enumeration
	err = c.post(ctx, "/enumerate", QueryRequest{
		Graph:         graph,
		Pattern:       text,
		TimeoutMS:     timeoutMS(ctx),
		Algo:          opts.Algo,
		MaxEmbeddings: opts.MaxEmbeddings,
		MaxSteps:      opts.MaxSteps,
		NoPlan:        opts.NoPlan,
	}, &enum)
	if err != nil {
		return nil, err
	}
	return &enum, nil
}

// Count reports the number of subgraph-isomorphism embeddings without
// materialising them, using the server's query planner (symmetry
// breaking and inclusion-exclusion counting) unless opts.NoPlan. The
// partial contract matches Enumerate: a ctx deadline that expires
// mid-search still returns the count found so far with Complete ==
// false and Truncated set. MaxEmbeddings is ignored — counting is
// always exhaustive.
func (c *Client) Count(ctx context.Context, graph string, p *gpm.Pattern, opts EnumerateOptions) (*Count, error) {
	text, err := patternText(p)
	if err != nil {
		return nil, err
	}
	var cnt Count
	err = c.post(ctx, "/count", QueryRequest{
		Graph:     graph,
		Pattern:   text,
		TimeoutMS: timeoutMS(ctx),
		Algo:      opts.Algo,
		MaxSteps:  opts.MaxSteps,
		NoPlan:    opts.NoPlan,
	}, &cnt)
	if err != nil {
		return nil, err
	}
	return &cnt, nil
}

// MatchBatch computes one bounded-simulation match per pattern, fanned
// across the server engine's workers. Results align positionally.
func (c *Client) MatchBatch(ctx context.Context, graph string, ps []*gpm.Pattern) ([]Relation, error) {
	texts := make([]string, len(ps))
	for i, p := range ps {
		text, err := patternText(p)
		if err != nil {
			return nil, err
		}
		texts[i] = text
	}
	var resp BatchResponse
	err := c.post(ctx, "/batch", BatchRequest{Graph: graph, Patterns: texts, TimeoutMS: timeoutMS(ctx)}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// Watch opens an incremental watch session (semantics: "match", "sim",
// "dual" or "strong") and returns its initial state. The session lives
// server-side until closed with [Client.CloseWatch].
func (c *Client) Watch(ctx context.Context, graph string, p *gpm.Pattern, semantics string) (*WatchState, error) {
	text, err := patternText(p)
	if err != nil {
		return nil, err
	}
	var st WatchState
	err = c.post(ctx, "/watch", WatchRequest{Graph: graph, Pattern: text, Semantics: semantics}, &st)
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// WatchSnapshot reads a session's current maintained relation.
func (c *Client) WatchSnapshot(ctx context.Context, id int64) (*WatchState, error) {
	resp, err := c.send(ctx, http.MethodGet, fmt.Sprintf("/watch/%d", id), nil)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	var st WatchState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// CloseWatch closes a watch session.
func (c *Client) CloseWatch(ctx context.Context, id int64) error {
	resp, err := c.send(ctx, http.MethodDelete, fmt.Sprintf("/watch/%d", id), nil)
	if err != nil {
		return err
	}
	drainClose(resp.Body)
	return nil
}

// Update applies edge updates to the named graph and returns the header
// plus one delta per watch session open on it, in session-open order,
// decoded from the server's NDJSON stream.
func (c *Client) Update(ctx context.Context, graph string, ups []gpm.Update) (*UpdateHeader, []WatchDelta, error) {
	var deltas []WatchDelta
	header, err := c.UpdateStream(ctx, graph, ups, func(d WatchDelta) error {
		deltas = append(deltas, d)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return header, deltas, nil
}

// UpdateStream is Update delivering each per-watcher delta to fn as it
// is decoded from the server's NDJSON stream, so a caller maintaining
// many sessions processes deltas as they arrive instead of buffering
// the whole response. A non-nil error from fn aborts the stream.
func (c *Client) UpdateStream(ctx context.Context, graph string, ups []gpm.Update, fn func(WatchDelta) error) (*UpdateHeader, error) {
	ops := make([]UpdateOp, len(ups))
	for i, u := range ups {
		op := "-"
		if u.Insert {
			op = "+"
		}
		ops[i] = UpdateOp{Op: op, U: u.U, V: u.V}
	}
	resp, err := c.send(ctx, http.MethodPost, "/update", UpdateRequest{Graph: graph, Updates: ops})
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 256<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.ErrUnexpectedEOF
	}
	var header UpdateHeader
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil {
		return nil, err
	}
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var d WatchDelta
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			return nil, err
		}
		if err := fn(d); err != nil {
			return &header, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &header, nil
}

// Graphs lists the graphs the daemon serves.
func (c *Client) Graphs(ctx context.Context) ([]GraphInfo, error) {
	resp, err := c.send(ctx, http.MethodGet, "/graphs", nil)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	var infos []GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// Stats reads the daemon's aggregate query counters.
func (c *Client) Stats(ctx context.Context) (*ServerStats, error) {
	resp, err := c.send(ctx, http.MethodGet, "/stats", nil)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Healthy reports whether the daemon answers /healthz.
func (c *Client) Healthy(ctx context.Context) bool {
	resp, err := c.send(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return false
	}
	drainClose(resp.Body)
	return true
}
