package gpm

// SetTestHookPLLBuild installs fn as the hook run at the start of every
// lazy PLL index construction the engine performs (nil uninstalls).
// Tests count builds through it to prove the lazy oracle path is
// single-flight, and cancel build contexts through it to pin the
// retry-after-cancellation contract. Tests that install it must not run
// in parallel.
func SetTestHookPLLBuild(fn func()) { testHookPLLBuild = fn }
