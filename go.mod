module gpm

go 1.24
