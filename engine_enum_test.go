package gpm_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"gpm"
)

// wildTriangle is the fully symmetric triangle pattern: three wildcard
// nodes, bidirectional bound-1 edges (|Aut| = 6).
func wildTriangle(tb testing.TB) *gpm.Pattern {
	tb.Helper()
	p := gpm.NewPattern()
	for i := 0; i < 3; i++ {
		p.AddNode(nil)
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if _, err := p.AddEdge(e[0], e[1], 1); err != nil {
			tb.Fatal(err)
		}
		if _, err := p.AddEdge(e[1], e[0], 1); err != nil {
			tb.Fatal(err)
		}
	}
	return p
}

// completeGraph builds the complete digraph on n unlabeled nodes.
func completeGraph(n int) *gpm.Graph {
	g := gpm.NewGraph(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// A bounded in-flight enumeration must not starve Engine.Update: the
// engine snapshots the frozen CSR under its read lock and releases it
// before searching. With the lock held across the search (the old
// behavior) this test times out on Update.
func TestUpdateDuringEnumerate(t *testing.T) {
	g := completeGraph(60)
	eng := gpm.NewEngine(g)
	// 6-clique count, unplanned: a search far too large to finish — it
	// runs until the context is cancelled.
	p := gpm.NewPattern()
	for i := 0; i < 6; i++ {
		p.AddNode(nil)
	}
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			p.AddEdge(i, j, 1)
			p.AddEdge(j, i, 1)
		}
	}
	ctx, cancelSearch := context.WithCancel(context.Background())
	defer cancelSearch()
	searchDone := make(chan error, 1)
	go func() {
		res, err := eng.CountEmbeddings(ctx, p, gpm.IsoOptions{NoPlan: true})
		if err == nil {
			err = fmt.Errorf("count finished before cancellation (complete=%v)", res.Complete)
		}
		searchDone <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the search get going
	updateDone := make(chan error, 1)
	go func() {
		// A real mutation: the search must keep reading its snapshot.
		_, err := eng.Update(gpm.DeleteEdge(0, 1))
		updateDone <- err
	}()
	select {
	case <-updateDone:
		// Update returned while the enumeration is still running: the
		// write lock was not starved.
	case <-time.After(10 * time.Second):
		t.Fatal("Update blocked behind an in-flight enumeration")
	}
	cancelSearch()
	if err := <-searchDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("search ended with %v, want context.Canceled", err)
	}
}

// A graph holding exactly MaxEmbeddings embeddings must report
// Complete=true — the budget being reached is not the same as the search
// being truncated. One fewer budget slot must still report truncation.
func TestEnumerateExactBudgetComplete(t *testing.T) {
	// Two disjoint labeled directed triangles: exactly 2 embeddings of
	// the labeled triangle pattern (|Aut| = 1).
	g := gpm.NewGraph(0)
	for i := 0; i < 2; i++ {
		a := g.AddNode(gpm.Attrs{"label": gpm.Str("A")})
		b := g.AddNode(gpm.Attrs{"label": gpm.Str("B")})
		c := g.AddNode(gpm.Attrs{"label": gpm.Str("C")})
		g.AddEdge(a, b)
		g.AddEdge(b, c)
		g.AddEdge(c, a)
	}
	p := gpm.NewPattern()
	p.AddNode(gpm.Label("A"))
	p.AddNode(gpm.Label("B"))
	p.AddNode(gpm.Label("C"))
	p.AddEdge(0, 1, 1)
	p.AddEdge(1, 2, 1)
	p.AddEdge(2, 0, 1)

	eng := gpm.NewEngine(g)
	ctx := context.Background()
	for _, algo := range []gpm.EnumAlgo{gpm.AlgoVF2, gpm.AlgoUllmann} {
		for _, noplan := range []bool{false, true} {
			name := fmt.Sprintf("algo=%v/noplan=%v", algo, noplan)
			exact, err := eng.Enumerate(ctx, p, gpm.IsoOptions{MaxEmbeddings: 2, Algo: algo, NoPlan: noplan})
			if err != nil {
				t.Fatal(err)
			}
			if len(exact.Embeddings) != 2 || !exact.Complete {
				t.Errorf("%s: exact budget: %d embeddings complete=%v, want 2 and true",
					name, len(exact.Embeddings), exact.Complete)
			}
			short, err := eng.Enumerate(ctx, p, gpm.IsoOptions{MaxEmbeddings: 1, Algo: algo, NoPlan: noplan})
			if err != nil {
				t.Fatal(err)
			}
			if len(short.Embeddings) != 1 || short.Complete {
				t.Errorf("%s: short budget: %d embeddings complete=%v, want 1 and false",
					name, len(short.Embeddings), short.Complete)
			}
		}
	}
}

// The same exact-budget contract must hold when the planner's
// automorphism expansion produces the final embedding count.
func TestEnumerateExactBudgetWithExpansion(t *testing.T) {
	// One bidirectional triangle: the symmetric triangle pattern has
	// exactly 6 embeddings (3! orderings), all from one canonical one.
	g := gpm.NewGraph(3)
	for _, e := range [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}, {2, 0}} {
		g.AddEdge(e[0], e[1])
	}
	eng := gpm.NewEngine(g)
	p := wildTriangle(t)
	ctx := context.Background()
	exact, err := eng.Enumerate(ctx, p, gpm.IsoOptions{MaxEmbeddings: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Embeddings) != 6 || !exact.Complete {
		t.Fatalf("exact budget with |Aut|=6: %d embeddings complete=%v, want 6 and true",
			len(exact.Embeddings), exact.Complete)
	}
	short, err := eng.Enumerate(ctx, p, gpm.IsoOptions{MaxEmbeddings: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(short.Embeddings) != 5 || short.Complete {
		t.Fatalf("short budget with |Aut|=6: %d embeddings complete=%v, want 5 and false",
			len(short.Embeddings), short.Complete)
	}
	cnt, err := eng.CountEmbeddings(ctx, p, gpm.IsoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Count != 6 || !cnt.Complete || cnt.Automorphisms != 6 {
		t.Fatalf("count = %+v, want 6 complete via |Aut|=6", cnt)
	}
}

// Planned and unplanned enumeration agree as multisets, and the count
// agrees with the enumeration length, on generated workloads.
func TestEnginePlannedVsUnplanned(t *testing.T) {
	g := engineTestGraph(t, 150, 700, 23)
	eng := gpm.NewEngine(g)
	ctx := context.Background()
	pats := engineTestPatterns(t, g, 5)
	pats = append(pats, wildTriangle(t))
	for i, p := range pats {
		plain, err := eng.Enumerate(ctx, p, gpm.IsoOptions{NoPlan: true})
		if err != nil {
			t.Fatal(err)
		}
		planned, err := eng.Enumerate(ctx, p, gpm.IsoOptions{})
		if err != nil {
			t.Fatal(err)
		}
		a, b := embKeys(plain.Embeddings), embKeys(planned.Embeddings)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("pattern %d: planned multiset (%d) != unplanned (%d)", i, len(b), len(a))
		}
		cnt, err := eng.CountEmbeddings(ctx, p, gpm.IsoOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if cnt.Count != int64(len(plain.Embeddings)) {
			t.Fatalf("pattern %d: count %d != %d embeddings", i, cnt.Count, len(plain.Embeddings))
		}
		if planned.Count != int64(len(planned.Embeddings)) {
			t.Fatalf("pattern %d: result Count %d != len %d", i, planned.Count, len(planned.Embeddings))
		}
	}
}

func embKeys(embs [][]int32) []string {
	out := make([]string, len(embs))
	for i, e := range embs {
		out[i] = fmt.Sprint(e)
	}
	sort.Strings(out)
	return out
}
