package gpm

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// relQueryGraph builds a graph with enough attribute and edge variety
// that the four semantics produce different relations.
func relQueryGraph() *Graph {
	g := NewGraph(10)
	for i := 0; i < 10; i++ {
		label := "A"
		if i%3 == 1 {
			label = "B"
		}
		g.SetAttr(i, Attrs{"label": Str(label), "rank": Int(int64(i))})
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddColoredEdge(4, 5, "c")
	g.AddEdge(5, 6)
	g.AddEdge(6, 0)
	g.AddEdge(2, 7)
	g.AddEdge(7, 8)
	g.AddEdge(8, 9)
	g.AddEdge(9, 2)
	g.AddEdge(1, 4)
	return g
}

// relQueryPattern is an all-bounds-one pattern valid under every
// semantics.
func relQueryPattern() *Pattern {
	p := NewPattern()
	a := p.AddNode(Label("A"))
	b := p.AddNode(Label("B"))
	c := p.AddNode(Label("A"))
	p.MustAddEdge(a, b, 1)
	p.MustAddEdge(b, c, 1)
	return p
}

// TestGenerationCountsEffectiveUpdates pins the Generation contract that
// the server cache keys on: fresh engines start at zero, net-no-op
// batches leave the token alone (same conservatism as the snapshot
// caches, see TestUpdateNoopKeepsCaches), and every effective batch bumps
// it exactly once.
func TestGenerationCountsEffectiveUpdates(t *testing.T) {
	e, _ := noopTestEngine(t)
	if got := e.Generation(); got != 0 {
		t.Fatalf("fresh engine Generation() = %d, want 0", got)
	}
	if _, err := e.Update(); err != nil {
		t.Fatal(err)
	}
	if got := e.Generation(); got != 0 {
		t.Errorf("empty Update batch bumped Generation to %d", got)
	}
	if _, err := e.Update(InsertEdge(0, 2), DeleteEdge(0, 2)); err != nil {
		t.Fatal(err)
	}
	if got := e.Generation(); got != 0 {
		t.Errorf("insert-then-delete Update batch bumped Generation to %d", got)
	}
	if _, err := e.Update(InsertEdge(0, 3)); err != nil {
		t.Fatal(err)
	}
	if got := e.Generation(); got != 1 {
		t.Errorf("effective Update batch left Generation at %d, want 1", got)
	}
	// Delete-then-reinsert is conservatively a change (colors may differ),
	// matching the snapshot invalidation path.
	if _, err := e.Update(DeleteEdge(0, 1), InsertEdge(0, 1)); err != nil {
		t.Fatal(err)
	}
	if got := e.Generation(); got != 2 {
		t.Errorf("delete-then-reinsert batch left Generation at %d, want 2", got)
	}
}

// TestRelationQueryMatchesPublicMethods pins that the unified dispatch
// returns exactly what the four public wrappers return, semantics by
// semantics, including the observed generation.
func TestRelationQueryMatchesPublicMethods(t *testing.T) {
	ctx := context.Background()
	e := NewEngine(relQueryGraph())
	p := relQueryPattern()
	if _, err := e.Update(InsertEdge(0, 5)); err != nil { // non-zero generation
		t.Fatal(err)
	}

	type viaMethod func() ([][]int32, bool, error)
	cases := []struct {
		sem RelSemantics
		via viaMethod
	}{
		{RelMatch, func() ([][]int32, bool, error) {
			r, err := e.Match(ctx, p)
			if err != nil {
				return nil, false, err
			}
			return matRows(r, p.N()), r.OK(), nil
		}},
		{RelSim, func() ([][]int32, bool, error) {
			r, err := e.Simulate(ctx, p)
			if err != nil {
				return nil, false, err
			}
			return r.Relation, r.OK, nil
		}},
		{RelDual, func() ([][]int32, bool, error) {
			r, err := e.DualSimulate(ctx, p)
			if err != nil {
				return nil, false, err
			}
			return matRows(r.Result, p.N()), r.OK(), nil
		}},
		{RelStrong, func() ([][]int32, bool, error) {
			r, err := e.StrongSimulate(ctx, p)
			if err != nil {
				return nil, false, err
			}
			return matRows(r.Result, p.N()), r.OK(), nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.sem.String(), func(t *testing.T) {
			got, err := e.RelationQuery(ctx, RelationQuery{Semantics: tc.sem, Pattern: p})
			if err != nil {
				t.Fatal(err)
			}
			if got.Generation != e.Generation() {
				t.Errorf("RelationQuery observed generation %d, engine reports %d", got.Generation, e.Generation())
			}
			wantRel, wantOK, err := tc.via()
			if err != nil {
				t.Fatal(err)
			}
			if got.OK != wantOK {
				t.Fatalf("OK = %v via RelationQuery, %v via public method", got.OK, wantOK)
			}
			if err := relationsEqual(got.Relation, wantRel); err != nil {
				t.Fatalf("relation diverged from public method: %v", err)
			}
		})
	}
}

// TestRelationQuerySeededEquivalence: seeding with any superset of the
// true relation — the exact relation itself, the full vertex set, or the
// relation plus random noise — must return bit-identical answers to the
// unseeded query, for every seedable semantics.
func TestRelationQuerySeededEquivalence(t *testing.T) {
	ctx := context.Background()
	e := NewEngine(relQueryGraph())
	p := relQueryPattern()
	n := relQueryGraph().N()
	rng := rand.New(rand.NewSource(7))

	for _, sem := range []RelSemantics{RelMatch, RelSim, RelDual} {
		t.Run(sem.String(), func(t *testing.T) {
			base, err := e.RelationQuery(ctx, RelationQuery{Semantics: sem, Pattern: p})
			if err != nil {
				t.Fatal(err)
			}
			full := make([][]int32, p.N())
			for u := range full {
				for x := 0; x < n; x++ {
					full[u] = append(full[u], int32(x))
				}
			}
			noisy := make([][]int32, p.N())
			for u := range noisy {
				noisy[u] = append(noisy[u], base.Relation[u]...)
				for k := 0; k < 5; k++ {
					// Duplicates, out-of-range and unsorted entries must all
					// be absorbed by seed normalisation.
					noisy[u] = append(noisy[u], int32(rng.Intn(n+4)-2))
				}
			}
			for name, seed := range map[string][][]int32{
				"exact": base.Relation,
				"full":  full,
				"noisy": noisy,
			} {
				got, err := e.RelationQuery(ctx, RelationQuery{Semantics: sem, Pattern: p, Seed: seed})
				if err != nil {
					t.Fatalf("%s seed: %v", name, err)
				}
				if got.OK != base.OK {
					t.Errorf("%s seed: OK = %v, unseeded %v", name, got.OK, base.OK)
				}
				if err := relationsEqual(got.Relation, base.Relation); err != nil {
					t.Errorf("%s seed diverged from unseeded answer: %v", name, err)
				}
			}
		})
	}
}

// TestRelationQuerySeedErrors pins the two rejection paths: strong
// simulation refuses seeds, and a seed must have one row per pattern
// node.
func TestRelationQuerySeedErrors(t *testing.T) {
	ctx := context.Background()
	e := NewEngine(relQueryGraph())
	p := relQueryPattern()
	seed := make([][]int32, p.N())
	if _, err := e.RelationQuery(ctx, RelationQuery{Semantics: RelStrong, Pattern: p, Seed: seed}); err == nil {
		t.Error("strong simulation accepted a seeded query")
	}
	for _, sem := range []RelSemantics{RelMatch, RelSim, RelDual} {
		if _, err := e.RelationQuery(ctx, RelationQuery{Semantics: sem, Pattern: p, Seed: make([][]int32, p.N()+1)}); err == nil {
			t.Errorf("%v accepted a seed with the wrong row count", sem)
		}
	}
}

// matRows extracts the relation rows of a result exposing Mat.
func matRows(r interface{ Mat(u int) []int32 }, np int) [][]int32 {
	rows := make([][]int32, np)
	for u := 0; u < np; u++ {
		rows[u] = r.Mat(u)
	}
	return rows
}

func relationsEqual(a, b [][]int32) error {
	if len(a) != len(b) {
		return fmt.Errorf("row counts %d vs %d", len(a), len(b))
	}
	for u := range a {
		if len(a[u]) != len(b[u]) {
			return fmt.Errorf("node %d: %d vs %d matches", u, len(a[u]), len(b[u]))
		}
		for i := range a[u] {
			if a[u][i] != b[u][i] {
				return fmt.Errorf("node %d: entry %d is %d vs %d", u, i, a[u][i], b[u][i])
			}
		}
	}
	return nil
}
