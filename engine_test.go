package gpm_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"gpm"
)

func engineTestGraph(tb testing.TB, nodes, edges int, seed int64) *gpm.Graph {
	tb.Helper()
	return gpm.GenerateGraph(gpm.GraphGenConfig{
		Nodes: nodes, Edges: edges, Attrs: 20, Model: gpm.ModelER, Seed: seed,
	})
}

func engineTestPatterns(tb testing.TB, g *gpm.Graph, n int) []*gpm.Pattern {
	tb.Helper()
	ps := make([]*gpm.Pattern, 0, n)
	for i := 0; i < n; i++ {
		ps = append(ps, gpm.GeneratePattern(gpm.PatternGenConfig{
			Nodes: 4, Edges: 4, K: 3, Seed: int64(1000 + i),
		}, g))
	}
	return ps
}

// TestEngineMatchEquivalence: every oracle kind produces the same
// relation as the deprecated per-call entry points.
func TestEngineMatchEquivalence(t *testing.T) {
	g := engineTestGraph(t, 300, 1200, 11)
	patterns := engineTestPatterns(t, g, 6)
	kinds := []gpm.OracleKind{gpm.OracleMatrix, gpm.OracleBFS, gpm.OracleTwoHop, gpm.OraclePLL, gpm.OracleAuto}
	for _, kind := range kinds {
		eng := gpm.NewEngine(g, gpm.WithOracle(kind))
		for i, p := range patterns {
			want, err := gpm.Match(p, g)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Match(context.Background(), p)
			if err != nil {
				t.Fatalf("kind %v pattern %d: %v", kind, i, err)
			}
			if got.OK() != want.OK() || !reflect.DeepEqual(got.Relation(), want.Relation()) {
				t.Fatalf("kind %v pattern %d: engine relation differs from Match", kind, i)
			}
			if got.Stats.Oracle == gpm.OracleAuto {
				t.Fatalf("kind %v: stats report an unresolved oracle kind", kind)
			}
		}
	}
}

// TestEngineConcurrentMatch hammers one shared engine from many
// goroutines; run under -race this is the concurrency-safety check. The
// colored patterns force the lazily built color submatrices to race.
func TestEngineConcurrentMatch(t *testing.T) {
	g := gpm.NewGraph(0)
	const n = 120
	for i := 0; i < n; i++ {
		g.AddNode(gpm.Attrs{"label": gpm.Str(fmt.Sprintf("L%d", i%4))})
	}
	for i := 0; i < n; i++ {
		g.AddColoredEdge(i, (i+1)%n, "ring")
		g.AddEdge(i, (i+7)%n)
	}

	plain := gpm.NewPattern()
	pa := plain.AddNode(gpm.Label("L0"))
	pb := plain.AddNode(gpm.Label("L2"))
	plain.MustAddEdge(pa, pb, 3)

	colored := gpm.NewPattern()
	ca := colored.AddNode(gpm.Label("L1"))
	cb := colored.AddNode(gpm.Label("L3"))
	if _, err := colored.AddColoredEdge(ca, cb, 4, "ring"); err != nil {
		t.Fatal(err)
	}

	for _, kind := range []gpm.OracleKind{gpm.OracleMatrix, gpm.OracleBFS, gpm.OracleTwoHop, gpm.OraclePLL} {
		eng := gpm.NewEngine(g, gpm.WithOracle(kind))
		wantPlain, err := eng.Match(context.Background(), plain)
		if err != nil {
			t.Fatal(err)
		}
		wantColored, err := eng.Match(context.Background(), colored)
		if err != nil {
			t.Fatal(err)
		}
		// Fresh engine so goroutines also race on the lazy oracle build.
		eng = gpm.NewEngine(g, gpm.WithOracle(kind))

		const workers = 8
		var wg sync.WaitGroup
		errs := make(chan error, workers*8)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for it := 0; it < 4; it++ {
					p, want := plain, wantPlain
					if (w+it)%2 == 1 {
						p, want = colored, wantColored
					}
					res, err := eng.Match(context.Background(), p)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(res.Relation(), want.Relation()) {
						errs <- fmt.Errorf("kind %v worker %d: relation mismatch", kind, w)
						return
					}
					if _, err := eng.Simulate(context.Background(), boundOnePattern()); err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}

func boundOnePattern() *gpm.Pattern {
	p := gpm.NewPattern()
	a := p.AddNode(gpm.Label("L0"))
	b := p.AddNode(gpm.Label("L1"))
	p.MustAddEdge(a, b, 1)
	return p
}

// TestEngineAutoOracle checks the WithAutoOracle |V|/|E| heuristics at
// the documented thresholds.
func TestEngineAutoOracle(t *testing.T) {
	small := gpm.NewGraph(100)
	if k := gpm.NewEngine(small, gpm.WithAutoOracle()).OracleKind(); k != gpm.OracleMatrix {
		t.Errorf("small |V|: auto picked %v, want matrix", k)
	}

	largeSparse := gpm.NewGraph(5000)
	for i := 0; i < 4999; i++ {
		largeSparse.AddEdge(i, i+1)
	}
	if k := gpm.NewEngine(largeSparse, gpm.WithAutoOracle()).OracleKind(); k != gpm.OraclePLL {
		t.Errorf("large sparse: auto picked %v, want pll", k)
	}

	largeDense := gpm.NewGraph(5000)
	for off := 1; off <= 3; off++ {
		for i := 0; i < 5000; i++ {
			largeDense.AddEdge(i, (i+off)%5000)
		}
	}
	if k := gpm.NewEngine(largeDense, gpm.WithAutoOracle()).OracleKind(); k != gpm.OraclePLL {
		t.Errorf("large dense: auto picked %v, want pll", k)
	}

	// The default (no options) is the paper's matrix configuration.
	if k := gpm.NewEngine(largeDense).OracleKind(); k != gpm.OracleMatrix {
		t.Errorf("default: picked %v, want matrix", k)
	}
}

// TestNewEngineRejectsInvalidOracle: OracleNone is a stats marker, not
// a strategy — binding with it must panic instead of silently building
// a matrix.
func TestNewEngineRejectsInvalidOracle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEngine(WithOracle(OracleNone)) did not panic")
		}
	}()
	gpm.NewEngine(gpm.NewGraph(10), gpm.WithOracle(gpm.OracleNone))
}

// TestEngineMatchCancellation: a cancelled context aborts Match with
// ctx.Err() — both when cancelled up front and when the deadline expires
// during the fixpoint.
func TestEngineMatchCancellation(t *testing.T) {
	g := engineTestGraph(t, 2000, 8000, 3)
	p := gpm.GeneratePattern(gpm.PatternGenConfig{Nodes: 4, Edges: 4, K: 3, Seed: 5}, g)

	eng := gpm.NewEngine(g, gpm.WithOracle(gpm.OracleBFS))
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Match(cancelled, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v, want context.Canceled", err)
	}

	ctx, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	time.Sleep(2 * time.Millisecond) // let the deadline pass mid-setup
	if _, err := eng.Match(ctx, p); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline: err = %v, want context.DeadlineExceeded", err)
	}

	// Enumerate and Simulate honour cancellation too.
	if _, err := eng.Enumerate(cancelled, p, gpm.IsoOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("enumerate: err = %v, want context.Canceled", err)
	}
	if _, err := eng.Simulate(cancelled, boundOnePattern()); !errors.Is(err, context.Canceled) {
		t.Fatalf("simulate: err = %v, want context.Canceled", err)
	}
}

// TestEngineWatchUpdate: two watchers share the engine's maintained
// matrix; after every update batch each agrees with a from-scratch
// Match, and so does a fresh engine query.
func TestEngineWatchUpdate(t *testing.T) {
	g := engineTestGraph(t, 200, 800, 17)
	eng := gpm.NewEngine(g)
	p1 := gpm.GeneratePattern(gpm.PatternGenConfig{Nodes: 3, Edges: 2, K: 2, Seed: 21}, g)
	p2 := gpm.GeneratePattern(gpm.PatternGenConfig{Nodes: 4, Edges: 3, K: 3, Seed: 22}, g)

	w1, err := eng.Watch(p1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := eng.Watch(p2)
	if err != nil {
		t.Fatal(err)
	}

	for batch := 0; batch < 4; batch++ {
		ups := gpm.GenerateUpdates(gpm.UpdateGenConfig{
			Insertions: 15, Deletions: 15, Seed: int64(300 + batch),
		}, eng.Graph())
		deltas, err := eng.Update(ups...)
		if err != nil {
			t.Fatal(err)
		}
		if len(deltas) != 2 {
			t.Fatalf("batch %d: %d deltas, want 2", batch, len(deltas))
		}
		for i, w := range []*gpm.Watcher{w1, w2} {
			scratch, err := gpm.Match(w.Pattern(), eng.Graph())
			if err != nil {
				t.Fatal(err)
			}
			if w.OK() != scratch.OK() || w.Pairs() != scratch.Pairs() {
				t.Fatalf("batch %d watcher %d: |S|=%d ok=%v, scratch |S|=%d ok=%v",
					batch, i, w.Pairs(), w.OK(), scratch.Pairs(), scratch.OK())
			}
		}
		// A fresh engine query sees the maintained (post-update) matrix.
		res, err := eng.Match(context.Background(), p1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Pairs() != w1.Pairs() {
			t.Fatalf("batch %d: engine.Match |S|=%d, watcher |S|=%d", batch, res.Pairs(), w1.Pairs())
		}
	}

	w2.Close()
	ups := gpm.GenerateUpdates(gpm.UpdateGenConfig{Insertions: 5, Deletions: 5, Seed: 999}, eng.Graph())
	deltas, err := eng.Update(ups...)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || deltas[0].Watcher != w1 {
		t.Fatalf("after Close: got %d deltas, want only w1's", len(deltas))
	}
}

// TestEngineUpdateWithoutWatchers: with no maintained state, Update is a
// structural change and later queries observe it.
func TestEngineUpdateWithoutWatchers(t *testing.T) {
	g := gpm.NewGraph(3)
	g.SetAttr(0, gpm.Attrs{"label": gpm.Str("A")})
	g.SetAttr(1, gpm.Attrs{"label": gpm.Str("B")})
	g.SetAttr(2, gpm.Attrs{"label": gpm.Str("C")})
	g.AddEdge(0, 1)

	p := gpm.NewPattern()
	a := p.AddNode(gpm.Label("A"))
	c := p.AddNode(gpm.Label("C"))
	p.MustAddEdge(a, c, 2)

	eng := gpm.NewEngine(g, gpm.WithOracle(gpm.OracleBFS))
	res, err := eng.Match(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("should not match before inserting 1->2")
	}
	if _, err := eng.Update(gpm.InsertEdge(1, 2)); err != nil {
		t.Fatal(err)
	}
	res, err = eng.Match(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatal("should match after inserting 1->2")
	}

	// Invalid updates leave the graph untouched.
	if _, err := eng.Update(gpm.InsertEdge(0, 1)); err == nil {
		t.Fatal("inserting an existing edge should fail")
	}
}

// TestEngineStatsAndResultGraph: the first matrix query pays the oracle
// build, later ones hit the cache; the result graph comes out of the
// engine's cached oracle.
func TestEngineStatsAndResultGraph(t *testing.T) {
	g := engineTestGraph(t, 400, 1600, 29)
	eng := gpm.NewEngine(g) // matrix
	var p *gpm.Pattern
	for seed := int64(40); ; seed++ {
		p = gpm.GeneratePattern(gpm.PatternGenConfig{Nodes: 3, Edges: 2, K: 2, Seed: seed}, g)
		if res, err := gpm.Match(p, g); err == nil && res.OK() {
			break
		}
	}

	first, err := eng.Match(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.OracleBuild <= 0 {
		t.Error("first query: OracleBuild should be > 0")
	}
	if first.Stats.Oracle != gpm.OracleMatrix {
		t.Errorf("stats oracle = %v, want matrix", first.Stats.Oracle)
	}
	if first.Stats.OracleQueries == 0 || first.Stats.InitialPairs == 0 {
		t.Errorf("work counters empty: %+v", first.Stats)
	}

	second, err := eng.Match(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.OracleBuild != 0 {
		t.Errorf("second query: OracleBuild = %v, want 0 (cache hit)", second.Stats.OracleBuild)
	}

	rg := eng.ResultGraph(first)
	if n, _ := rg.Size(); n == 0 {
		t.Error("result graph of an OK match should be nonempty")
	}
}

// TestEngineSimulateEnumerate: parity with the deprecated entry points
// plus algorithm selection through IsoOptions.Algo.
func TestEngineSimulateEnumerate(t *testing.T) {
	g := engineTestGraph(t, 150, 600, 31)
	eng := gpm.NewEngine(g)

	simP := gpm.GeneratePattern(gpm.PatternGenConfig{Nodes: 3, Edges: 2, K: 1, Seed: 51}, g)
	wantRel, wantOK, err := gpm.Simulate(simP, g)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := eng.Simulate(context.Background(), simP)
	if err != nil {
		t.Fatal(err)
	}
	if sim.OK != wantOK || !reflect.DeepEqual(sim.Relation, wantRel) {
		t.Fatal("engine.Simulate differs from Simulate")
	}

	isoP := gpm.GeneratePattern(gpm.PatternGenConfig{Nodes: 3, Edges: 3, K: 1, Seed: 52}, g)
	opts := gpm.IsoOptions{MaxEmbeddings: 50}
	wantVF2 := gpm.VF2(isoP, g, opts)
	gotVF2, err := eng.Enumerate(context.Background(), isoP, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotVF2.Embeddings) != len(wantVF2.Embeddings) {
		t.Fatalf("VF2 embeddings: engine %d, direct %d", len(gotVF2.Embeddings), len(wantVF2.Embeddings))
	}

	opts.Algo = gpm.AlgoUllmann
	wantUll := gpm.Ullmann(isoP, g, gpm.IsoOptions{MaxEmbeddings: 50})
	gotUll, err := eng.Enumerate(context.Background(), isoP, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotUll.Embeddings) != len(wantUll.Embeddings) {
		t.Fatalf("Ullmann embeddings: engine %d, direct %d", len(gotUll.Embeddings), len(wantUll.Embeddings))
	}
}

// Engine.DualSimulate / StrongSimulate agree with the one-shot top-level
// wrappers, observe Updates (the frozen snapshot is invalidated), and
// stay safe under concurrent queries.
func TestEngineTopoSemantics(t *testing.T) {
	g := engineTestGraph(t, 60, 180, 17)
	p := gpm.GeneratePattern(gpm.PatternGenConfig{
		Nodes: 3, Edges: 3, K: 1, IsoBias: true, Seed: 99,
	}, g)
	eng := gpm.NewEngine(g)

	dual, err := eng.DualSimulate(context.Background(), p)
	if err != nil {
		t.Fatalf("DualSimulate: %v", err)
	}
	wantDual, wantOK, err := gpm.DualSimulate(p, g.Clone())
	if err != nil {
		t.Fatalf("gpm.DualSimulate: %v", err)
	}
	if dual.OK() != wantOK || !reflect.DeepEqual(dual.Relation(), relCopy(wantDual)) {
		t.Errorf("engine dual diverges from one-shot wrapper")
	}
	strong, err := eng.StrongSimulate(context.Background(), p)
	if err != nil {
		t.Fatalf("StrongSimulate: %v", err)
	}
	wantStrong, wantSOK, err := gpm.StrongSimulate(p, g.Clone())
	if err != nil {
		t.Fatalf("gpm.StrongSimulate: %v", err)
	}
	if strong.OK() != wantSOK || !reflect.DeepEqual(strong.Relation(), relCopy(wantStrong)) {
		t.Errorf("engine strong diverges from one-shot wrapper")
	}

	// Stats carry no oracle: these semantics never probe distances.
	if dual.Stats.Oracle != gpm.OracleNone || strong.Stats.Oracle != gpm.OracleNone {
		t.Errorf("topo stats report an oracle: %v / %v", dual.Stats.Oracle, strong.Stats.Oracle)
	}

	// After an Update the engine must re-freeze and recompute.
	ups := gpm.GenerateUpdates(gpm.UpdateGenConfig{Insertions: 6, Deletions: 6, Seed: 5}, g)
	if _, err := eng.Update(ups...); err != nil {
		t.Fatalf("Update: %v", err)
	}
	dual2, err := eng.DualSimulate(context.Background(), p)
	if err != nil {
		t.Fatalf("DualSimulate after update: %v", err)
	}
	wantDual2, _, err := gpm.DualSimulate(p, g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dual2.Relation(), relCopy(wantDual2)) {
		t.Errorf("post-update dual does not match recompute on the mutated graph")
	}

	// Cancellation propagates.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.DualSimulate(ctx, p); err == nil {
		t.Errorf("DualSimulate ignored cancelled context")
	}
	if _, err := eng.StrongSimulate(ctx, p); err == nil {
		t.Errorf("StrongSimulate ignored cancelled context")
	}
}

// Concurrent topo queries against one engine must be race-free and
// consistent (run under -race in CI).
func TestEngineTopoConcurrent(t *testing.T) {
	g := engineTestGraph(t, 50, 150, 23)
	p := gpm.GeneratePattern(gpm.PatternGenConfig{
		Nodes: 3, Edges: 3, K: 1, IsoBias: true, Seed: 7,
	}, g)
	eng := gpm.NewEngine(g, gpm.WithWorkers(4))
	ref, err := eng.StrongSimulate(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for q := 0; q < 8; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if q%2 == 0 {
					res, err := eng.StrongSimulate(context.Background(), p)
					if err != nil {
						errCh <- err
						return
					}
					if !reflect.DeepEqual(res.Relation(), ref.Relation()) {
						errCh <- fmt.Errorf("concurrent strong diverged")
						return
					}
				} else {
					if _, err := eng.DualSimulate(context.Background(), p); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(q)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// relCopy maps a raw relation into the append-allocated form
// Result.Relation returns, for DeepEqual comparisons.
func relCopy(rel [][]int32) [][]int32 {
	out := make([][]int32, len(rel))
	for i, l := range rel {
		out[i] = append([]int32(nil), l...)
	}
	return out
}
