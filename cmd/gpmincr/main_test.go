package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// durations scrubs wall-clock readings ("33.845µs", "1.2ms", "566ns")
// out of the CLI output; everything else — chunk boundaries, deltas, AFF
// sizes, pair counts and relation checksums — is deterministic in the
// fixture and pinned by the goldens. The checksums also pin that the
// incremental relations themselves do not drift.
// The trailing-space run is scrubbed with the reading because the CLI
// pads durations to a fixed column (%-12v), so the padding width varies
// with the reading's length.
var durations = regexp.MustCompile(`[0-9]+(\.[0-9]+)?(ns|µs|us|ms|s|m|h)+ *`)

func scrub(b []byte) []byte {
	return durations.ReplaceAll(b, []byte("T "))
}

// Golden-file coverage of every -semantics value over the tiny fixture:
// the update stream breaks the 6-cycle and the genuine triangle and then
// restores them, so dual survives throughout while strong loses and
// regains its pairs — each semantics shows its own delta trajectory.
func TestGoldenSemantics(t *testing.T) {
	for _, semantics := range []string{"match", "sim", "dual", "strong"} {
		t.Run(semantics, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(&buf, filepath.Join("testdata", "tiny.graph"), filepath.Join("testdata", "tiny.pattern"),
				filepath.Join("testdata", "tiny.updates"), semantics, 3, true)
			if err != nil {
				t.Fatalf("run(%s): %v", semantics, err)
			}
			got := scrub(buf.Bytes())
			goldenPath := filepath.Join("testdata", "golden", semantics+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("output diverges from %s\n--- got ---\n%s\n--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// Unknown semantics must error before any maintenance starts.
func TestUnknownSemantics(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, filepath.Join("testdata", "tiny.graph"), filepath.Join("testdata", "tiny.pattern"),
		filepath.Join("testdata", "tiny.updates"), "nonsense", 3, false)
	if err == nil {
		t.Fatal("run accepted unknown semantics")
	}
}

// The bounded-simulation watcher rejects nothing here (the fixture is
// all-bounds-one), but -verify must catch an actual divergence channel:
// run every semantics without -verify too, so the plain path stays
// covered.
func TestRunWithoutVerify(t *testing.T) {
	for _, semantics := range []string{"match", "sim", "dual", "strong"} {
		var buf bytes.Buffer
		err := run(&buf, filepath.Join("testdata", "tiny.graph"), filepath.Join("testdata", "tiny.pattern"),
			filepath.Join("testdata", "tiny.updates"), semantics, 0, false)
		if err != nil {
			t.Fatalf("run(%s, no verify): %v", semantics, err)
		}
	}
}
