// Command gpmincr demonstrates incremental matching: it loads a graph, a
// pattern and an update stream, maintains the maximum match through the
// updates with an engine watcher (the paper's IncMatch), and compares
// against recomputing from scratch.
//
// Usage:
//
//	gpmincr -graph g.graph -pattern p.pattern -updates u.updates [-chunk 100] [-verify]
//
// Updates are applied in chunks; for each chunk the tool reports the
// incremental time, the batch (full recompute) time, and the AFF sizes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"gpm"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "data graph file (required)")
		patternPath = flag.String("pattern", "", "pattern file (required)")
		updatesPath = flag.String("updates", "", "update stream file (required)")
		chunk       = flag.Int("chunk", 100, "updates per batch")
		verify      = flag.Bool("verify", false, "cross-check each chunk against a from-scratch Match")
	)
	flag.Parse()
	if *graphPath == "" || *patternPath == "" || *updatesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*graphPath, *patternPath, *updatesPath, *chunk, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "gpmincr:", err)
		os.Exit(1)
	}
}

func run(graphPath, patternPath, updatesPath string, chunk int, verify bool) error {
	g, err := gpm.LoadGraphFile(graphPath)
	if err != nil {
		return err
	}
	p, err := gpm.LoadPatternFile(patternPath)
	if err != nil {
		return err
	}
	f, err := os.Open(updatesPath)
	if err != nil {
		return err
	}
	ups, err := gpm.ReadUpdates(f)
	f.Close()
	if err != nil {
		return err
	}

	eng := gpm.NewEngine(g)
	start := time.Now()
	w, err := eng.Watch(p)
	if err != nil {
		return err
	}
	fmt.Printf("initial match: ok=%v, |S|=%d (built in %v)\n", w.OK(), w.Pairs(), time.Since(start))

	if chunk <= 0 {
		chunk = len(ups)
	}
	for off := 0; off < len(ups); off += chunk {
		end := off + chunk
		if end > len(ups) {
			end = len(ups)
		}
		batch := ups[off:end]
		t0 := time.Now()
		deltas, err := eng.Update(batch...)
		if err != nil {
			return fmt.Errorf("chunk at %d: %w", off, err)
		}
		incTime := time.Since(t0)
		delta := deltas[0].Delta
		fmt.Printf("chunk %4d..%-4d  inc: %-12v +%d -%d pairs  |AFF1|=%d |AFF2|=%d recomputed=%v\n",
			off, end-1, incTime, len(delta.Added), len(delta.Removed), delta.Aff1, delta.Aff2, delta.Recomputed)
		if verify {
			// A throwaway engine over the live graph: the scratch Match is
			// read-only, and its oracle rebuild is charged to the scratch
			// time as the paper does.
			res, err := gpm.NewEngine(eng.Graph()).Match(context.Background(), p)
			if err != nil {
				return err
			}
			fmt.Printf("    scratch: %-12v ok=%v |S|=%d\n",
				res.Stats.OracleBuild+res.Stats.MatchTime, res.OK(), res.Pairs())
			if res.OK() != w.OK() || res.Pairs() != w.Pairs() {
				return fmt.Errorf("divergence after chunk at %d: inc |S|=%d, scratch |S|=%d", off, w.Pairs(), res.Pairs())
			}
		}
	}
	fmt.Printf("final match: ok=%v, |S|=%d\n", w.OK(), w.Pairs())
	return nil
}
