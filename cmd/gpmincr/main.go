// Command gpmincr demonstrates incremental matching: it loads a graph, a
// pattern and an update stream, maintains a match through the updates
// with an engine watcher, and compares against recomputing from scratch.
//
// Usage:
//
//	gpmincr -graph g.graph -pattern p.pattern -updates u.updates
//	        [-semantics match|sim|dual|strong] [-chunk 100] [-verify]
//
// -semantics selects the maintained relation: "match" is the paper's
// bounded-simulation IncMatch (the default); "sim", "dual" and "strong"
// maintain the edge-to-edge semantics lattice incrementally (Ma et al.,
// VLDB 2012) and require an all-bounds-one pattern. Updates are applied
// in chunks; for each chunk the tool reports the incremental time and
// the relation delta, and -verify cross-checks the maintained relation
// against a from-scratch recompute of the same semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"gpm"
	"gpm/internal/difftest"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "data graph file (required)")
		patternPath = flag.String("pattern", "", "pattern file (required)")
		updatesPath = flag.String("updates", "", "update stream file (required)")
		semantics   = flag.String("semantics", "match", "maintained semantics: match, sim, dual or strong")
		chunk       = flag.Int("chunk", 100, "updates per batch")
		verify      = flag.Bool("verify", false, "cross-check each chunk against a from-scratch recompute")
	)
	flag.Parse()
	if *graphPath == "" || *patternPath == "" || *updatesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *graphPath, *patternPath, *updatesPath, *semantics, *chunk, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "gpmincr:", err)
		os.Exit(1)
	}
}

// watchFor starts the watcher matching the -semantics flag.
func watchFor(eng *gpm.Engine, p *gpm.Pattern, semantics string) (*gpm.Watcher, error) {
	switch semantics {
	case "match":
		return eng.Watch(p)
	case "sim":
		return eng.WatchSim(p)
	case "dual":
		return eng.WatchDual(p)
	case "strong":
		return eng.WatchStrong(p)
	default:
		return nil, fmt.Errorf("unknown semantics %q (want match, sim, dual or strong)", semantics)
	}
}

// recompute runs the from-scratch query matching the -semantics flag on
// the engine's current graph and returns its relation.
func recompute(eng *gpm.Engine, p *gpm.Pattern, semantics string) ([][]int32, bool, error) {
	ctx := context.Background()
	// A throwaway engine over the live graph: the scratch query is
	// read-only, and its oracle/snapshot rebuild is charged to the
	// scratch time the way the paper charges recomputation.
	scratch := gpm.NewEngine(eng.Graph())
	switch semantics {
	case "match":
		res, err := scratch.Match(ctx, p)
		if err != nil {
			return nil, false, err
		}
		return res.Relation(), res.OK(), nil
	case "sim":
		res, err := scratch.Simulate(ctx, p)
		if err != nil {
			return nil, false, err
		}
		return res.Relation, res.OK, nil
	case "dual":
		res, err := scratch.DualSimulate(ctx, p)
		if err != nil {
			return nil, false, err
		}
		return res.Relation(), res.OK(), nil
	case "strong":
		res, err := scratch.StrongSimulate(ctx, p)
		if err != nil {
			return nil, false, err
		}
		return res.Relation(), res.OK(), nil
	}
	return nil, false, fmt.Errorf("unknown semantics %q", semantics)
}

func run(out io.Writer, graphPath, patternPath, updatesPath, semantics string, chunk int, verify bool) error {
	g, err := gpm.LoadGraphFile(graphPath)
	if err != nil {
		return err
	}
	p, err := gpm.LoadPatternFile(patternPath)
	if err != nil {
		return err
	}
	f, err := os.Open(updatesPath)
	if err != nil {
		return err
	}
	ups, err := gpm.ReadUpdates(f)
	f.Close()
	if err != nil {
		return err
	}

	eng := gpm.NewEngine(g)
	start := time.Now()
	w, err := watchFor(eng, p, semantics)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "initial %s watch: ok=%v |S|=%d (built in %v)\n", semantics, w.OK(), w.Pairs(), time.Since(start))

	if chunk <= 0 {
		chunk = len(ups)
	}
	for off := 0; off < len(ups); off += chunk {
		end := off + chunk
		if end > len(ups) {
			end = len(ups)
		}
		batch := ups[off:end]
		t0 := time.Now()
		deltas, err := eng.Update(batch...)
		if err != nil {
			return fmt.Errorf("chunk at %d: %w", off, err)
		}
		incTime := time.Since(t0)
		delta := deltas[0].Delta
		fmt.Fprintf(out, "chunk %4d..%-4d  inc: %-12v +%d -%d pairs  |AFF1|=%d |AFF2|=%d recomputed=%v\n",
			off, end-1, incTime, len(delta.Added), len(delta.Removed), delta.Aff1, delta.Aff2, delta.Recomputed)
		if verify {
			t1 := time.Now()
			rel, ok, err := recompute(eng, p, semantics)
			if err != nil {
				return err
			}
			scratchTime := time.Since(t1)
			wantSum, gotSum := difftest.Checksum(rel), difftest.Checksum(w.Relation())
			fmt.Fprintf(out, "    scratch: %-12v ok=%v |S|=%d checksum=%016x\n", scratchTime, ok, countPairs(rel), wantSum)
			if ok != w.OK() || gotSum != wantSum {
				return fmt.Errorf("divergence after chunk at %d: inc checksum %016x, scratch %016x", off, gotSum, wantSum)
			}
		}
	}
	fmt.Fprintf(out, "final: ok=%v |S|=%d checksum=%016x\n", w.OK(), w.Pairs(), difftest.Checksum(w.Relation()))
	return nil
}

func countPairs(rel [][]int32) int {
	total := 0
	for _, row := range rel {
		total += len(row)
	}
	return total
}
