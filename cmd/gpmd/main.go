// Command gpmd is the graph pattern matching daemon: it binds named
// data graphs into gpm.Engines and serves every matching semantics the
// module implements over HTTP/JSON — bounded simulation, plain/dual/
// strong simulation, subgraph-isomorphism enumeration and counting
// (/enumerate and /count, planner-backed by default), pattern batches,
// and stateful watch sessions fed by streamed edge updates. See
// internal/server for the endpoint list and gpm/client for the typed Go
// client.
//
// Usage:
//
//	gpmd -listen :8474
//	     -graph social=social.graph -graph cites=cites.graph
//	     -dataset tube=youtube:0.1:7
//	     [-oracle auto|matrix|bfs|2hop|pll] [-workers N] [-timeout 30s]
//	     [-cache-bytes N]
//	     [-wal DIR [-wal-sync always|none] [-snapshot-every N]] [-v]
//
// -graph binds a graph file in the .graph text format under a name;
// -dataset binds a synthetic dataset stand-in ("matter", "pblog" or
// "youtube", optionally :scale and :seed). Both repeat. Every request
// names the graph it queries, so one daemon serves many graphs, each
// behind its own engine with its own cached oracle. -timeout is the
// default per-request deadline; requests may lower it via timeout_ms.
//
// -cache-bytes budgets the relation-result cache: responses to /match,
// /simulate, /dual and /strong are cached under the pattern's canonical
// form (invariant under node renaming, so isomorphic patterns share an
// entry) and the graph's update generation, and near-misses are
// answered by seeding the fixpoint from a cached containing pattern's
// relation. Cached answers are byte-identical to cold ones; 0 disables
// the cache.
//
// -wal makes the daemon durable: update batches and watch sessions are
// written to a write-ahead log in DIR before they take effect, a
// snapshot of every graph is taken at startup and then after every
// -snapshot-every update batches, and a restart pointed at the same DIR
// recovers — graphs, watch sessions (same ids), maintained relations —
// to exactly the state of a process that never crashed. -wal-sync
// chooses whether every append reaches disk before the HTTP response
// ("always", the default) or rides the page cache ("none").
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"gpm"
	"gpm/internal/server"
	"gpm/internal/wal"
)

// multiFlag collects a repeatable name=spec flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

// options is the parsed command line.
type options struct {
	listen    string
	graphs    multiFlag
	datasets  multiFlag
	oracle    string
	workers   int
	timeout   time.Duration
	cacheB    int64
	walDir    string
	walSync   string
	snapEvery int
	verbose   bool
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintln(os.Stderr, "gpmd:", err)
		}
		os.Exit(2)
	}
}

// parseFlags parses args into options; usage and errors go to stderr.
func parseFlags(args []string, stderr io.Writer) (*options, error) {
	opts := &options{}
	fs := flag.NewFlagSet("gpmd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&opts.listen, "listen", ":8474", "listen address")
	fs.Var(&opts.graphs, "graph", "bind a graph file: name=path (repeatable)")
	fs.Var(&opts.datasets, "dataset", "bind a dataset stand-in: name=matter|pblog|youtube[:scale[:seed]] (repeatable)")
	fs.StringVar(&opts.oracle, "oracle", "auto", "distance oracle: auto | matrix | bfs | 2hop | pll")
	fs.IntVar(&opts.workers, "workers", 0, "matching and oracle-build parallelism per engine (0 = GOMAXPROCS)")
	fs.DurationVar(&opts.timeout, "timeout", 30*time.Second, "default per-request deadline (0 = none)")
	fs.Int64Var(&opts.cacheB, "cache-bytes", 64<<20, "relation-result cache budget in bytes (0 = no caching)")
	fs.StringVar(&opts.walDir, "wal", "", "write-ahead log directory; enables crash recovery (empty = in-memory only)")
	fs.StringVar(&opts.walSync, "wal-sync", "always", "WAL append durability: always (fsync per batch) | none (page cache)")
	fs.IntVar(&opts.snapEvery, "snapshot-every", 256, "WAL snapshot cadence in update batches (0 = only at startup and shutdown)")
	fs.BoolVar(&opts.verbose, "v", false, "log requests and lifecycle to stderr")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	return opts, nil
}

// oracleKind maps the -oracle flag to an engine option.
func oracleKind(name string) (gpm.OracleKind, error) {
	switch name {
	case "auto":
		return gpm.OracleAuto, nil
	case "matrix":
		return gpm.OracleMatrix, nil
	case "bfs":
		return gpm.OracleBFS, nil
	case "2hop":
		return gpm.OracleTwoHop, nil
	case "pll":
		return gpm.OraclePLL, nil
	default:
		return 0, fmt.Errorf("unknown oracle %q (want auto, matrix, bfs, 2hop or pll)", name)
	}
}

// splitBinding splits one "name=spec" flag value.
func splitBinding(flagName, v string) (name, spec string, err error) {
	eq := strings.IndexByte(v, '=')
	if eq <= 0 || eq == len(v)-1 {
		return "", "", fmt.Errorf("-%s %q: want name=%s", flagName, v, map[string]string{"graph": "path", "dataset": "spec"}[flagName])
	}
	return v[:eq], v[eq+1:], nil
}

// loadDataset parses a dataset spec "ds[:scale[:seed]]" and builds the
// stand-in graph.
func loadDataset(spec string) (*gpm.Graph, error) {
	parts := strings.Split(spec, ":")
	if len(parts) > 3 {
		return nil, fmt.Errorf("dataset spec %q: want ds[:scale[:seed]]", spec)
	}
	scale := 0.1
	var seed int64 = 1
	if len(parts) >= 2 && parts[1] != "" {
		f, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || f <= 0 || f > 1 {
			return nil, fmt.Errorf("dataset spec %q: bad scale %q (want a float in (0,1])", spec, parts[1])
		}
		scale = f
	}
	if len(parts) == 3 && parts[2] != "" {
		n, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset spec %q: bad seed %q", spec, parts[2])
		}
		seed = n
	}
	return gpm.Dataset(parts[0], seed, scale)
}

// buildServer loads every graph and binds it into a fresh server. With
// -wal it first opens (and recovers) the log, so every Bind restores
// that graph's pre-crash state, then checkpoints so the initial graphs
// are always snapshotted. Progress lines go to logw when verbose. The
// returned WAL is nil without -wal; the caller owns closing it.
func buildServer(opts *options, logw io.Writer) (*server.Server, *wal.WAL, error) {
	if len(opts.graphs)+len(opts.datasets) == 0 {
		return nil, nil, fmt.Errorf("no graphs bound: pass at least one -graph or -dataset")
	}
	kind, err := oracleKind(opts.oracle)
	if err != nil {
		return nil, nil, err
	}
	if opts.snapEvery < 0 {
		return nil, nil, fmt.Errorf("-snapshot-every must be >= 0 (got %d)", opts.snapEvery)
	}
	sync, err := wal.ParseSyncPolicy(opts.walSync)
	if err != nil {
		return nil, nil, fmt.Errorf("-wal-sync: %v", err)
	}
	engOpts := []gpm.EngineOption{gpm.WithOracle(kind)}
	if opts.workers > 0 {
		engOpts = append(engOpts, gpm.WithWorkers(opts.workers))
	}
	if opts.cacheB < 0 {
		return nil, nil, fmt.Errorf("-cache-bytes must be >= 0 (got %d)", opts.cacheB)
	}
	cfg := server.Config{DefaultTimeout: opts.timeout, CacheBytes: opts.cacheB}
	var w *wal.WAL
	if opts.walDir != "" {
		var rec *wal.Recovery
		w, rec, err = wal.Open(opts.walDir, wal.Options{Sync: sync})
		if err != nil {
			return nil, nil, fmt.Errorf("-wal: %v", err)
		}
		if rec.Batches > 0 || rec.Sessions > 0 || len(rec.Graphs) > 0 {
			fmt.Fprintf(logw, "gpmd: wal %s: recovering generation %d (%d graphs, %d sessions, %d batches%s)\n",
				opts.walDir, rec.Generation, len(rec.Graphs), rec.Sessions, rec.Batches,
				map[bool]string{true: ", torn tail truncated"}[rec.Truncated])
		}
		cfg.WAL, cfg.Recovery, cfg.SnapshotEvery = w, rec, opts.snapEvery
	}
	srv := server.New(cfg)
	closeOnErr := func(err error) (*server.Server, *wal.WAL, error) {
		if w != nil {
			w.Close()
		}
		return nil, nil, err
	}
	for _, v := range opts.graphs {
		name, path, err := splitBinding("graph", v)
		if err != nil {
			return closeOnErr(err)
		}
		g, err := gpm.LoadGraphFile(path)
		if err != nil {
			return closeOnErr(fmt.Errorf("-graph %s: %v", name, err))
		}
		if err := srv.Bind(name, g, engOpts...); err != nil {
			return closeOnErr(err)
		}
		fmt.Fprintf(logw, "gpmd: bound %s from %s (%d nodes, %d edges)\n", name, path, g.N(), g.M())
	}
	for _, v := range opts.datasets {
		name, spec, err := splitBinding("dataset", v)
		if err != nil {
			return closeOnErr(err)
		}
		g, err := loadDataset(spec)
		if err != nil {
			return closeOnErr(fmt.Errorf("-dataset %s: %v", name, err))
		}
		if err := srv.Bind(name, g, engOpts...); err != nil {
			return closeOnErr(err)
		}
		fmt.Fprintf(logw, "gpmd: bound %s from dataset %s (%d nodes, %d edges)\n", name, spec, g.N(), g.M())
	}
	if w != nil {
		// Snapshot the recovered (or initial) state: from here on replay
		// starts at this generation instead of the binding flags.
		if err := srv.Checkpoint(); err != nil {
			return closeOnErr(fmt.Errorf("-wal: initial snapshot: %v", err))
		}
	}
	return srv, w, nil
}

// run is main, testable: parse, build, listen, serve until a signal or
// until ready (when non-nil) returns after being told the bound address
// — the hook the CLI tests use to drive a live daemon and stop it.
func run(args []string, stdout, stderr io.Writer, ready func(addr string)) error {
	opts, err := parseFlags(args, stderr)
	if err != nil {
		return err
	}
	logw := io.Discard
	if opts.verbose {
		logw = stderr
	}
	srv, w, err := buildServer(opts, logw)
	if err != nil {
		return err
	}
	if w != nil {
		defer w.Close()
	}
	publishExpvar(srv)

	ln, err := net.Listen("tcp", opts.listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "gpmd: serving %s on %s\n", strings.Join(srv.GraphNames(), ", "), ln.Addr())

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.Handle("/debug/vars", expvar.Handler())
	httpSrv := &http.Server{Handler: mux}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	if ready != nil {
		go func() {
			ready(ln.Addr().String())
			cancel()
		}()
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: cancel in-flight fixpoints (they poll their
	// contexts), then drain connections.
	fmt.Fprintf(logw, "gpmd: shutting down\n")
	srv.Close()
	shutdownCtx, stop := context.WithTimeout(context.Background(), 10*time.Second)
	defer stop()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if w != nil {
		// A parting snapshot makes the next start replay-free; failure is
		// not fatal, the log already holds everything.
		if err := srv.Checkpoint(); err != nil {
			fmt.Fprintf(logw, "gpmd: shutdown snapshot: %v\n", err)
		}
	}
	fmt.Fprintf(stdout, "gpmd: drained\n")
	return nil
}

// publishExpvar exposes the server's aggregate stats at /debug/vars
// under "gpmd". Re-publishing (tests boot several daemons per process)
// swaps the snapshot source instead of panicking on the duplicate name.
var expvarSrv struct {
	once sync.Once
	mu   sync.Mutex
	cur  *server.Server
}

func publishExpvar(srv *server.Server) {
	expvarSrv.mu.Lock()
	expvarSrv.cur = srv
	expvarSrv.mu.Unlock()
	expvarSrv.once.Do(func() {
		expvar.Publish("gpmd", expvar.Func(func() interface{} {
			expvarSrv.mu.Lock()
			cur := expvarSrv.cur
			expvarSrv.mu.Unlock()
			return cur.StatsSnapshot()
		}))
	})
}
