package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"gpm"
	"gpm/client"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	goldenPath := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output diverges from %s\n--- got ---\n%s\n--- want ---\n%s", goldenPath, got, want)
	}
}

// TestGoldenUsage pins the flag surface: -h prints the usage text.
func TestGoldenUsage(t *testing.T) {
	var stderr bytes.Buffer
	_, err := parseFlags([]string{"-h"}, &stderr)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: %v, want flag.ErrHelp", err)
	}
	checkGolden(t, "usage.golden", stderr.Bytes())
}

// TestGoldenStartup pins the startup log lines for file and dataset
// bindings (sizes are deterministic: the file fixture and a seeded
// stand-in).
func TestGoldenStartup(t *testing.T) {
	opts, err := parseFlags([]string{
		"-graph", "tiny=" + filepath.Join("testdata", "tiny.graph"),
		"-dataset", "m=matter:0.01:3",
		"-v",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	srv, _, err := buildServer(opts, &log)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.GraphNames(); len(got) != 2 || got[0] != "m" || got[1] != "tiny" {
		t.Fatalf("graph names = %v", got)
	}
	// The path separator is the only platform-dependent byte.
	out := strings.ReplaceAll(log.String(), string(filepath.Separator), "/")
	checkGolden(t, "startup.golden", []byte(out))
}

// TestFlagErrors sweeps the rejection surface of the command line.
func TestFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		frag string // expected error fragment
	}{
		{"no graphs", nil, "no graphs bound"},
		{"positional args", []string{"-graph", "t=testdata/tiny.graph", "serve"}, "unexpected arguments"},
		{"bad graph spec", []string{"-graph", "justapath.graph"}, "want name=path"},
		{"empty graph name", []string{"-graph", "=p.graph"}, "want name=path"},
		{"missing graph file", []string{"-graph", "t=testdata/nope.graph"}, "no such file"},
		{"bad oracle", []string{"-graph", "t=testdata/tiny.graph", "-oracle", "psychic"}, "unknown oracle"},
		{"bad dataset name", []string{"-dataset", "d=imdb"}, "unknown dataset"},
		{"bad dataset scale", []string{"-dataset", "d=matter:7"}, "bad scale"},
		{"bad dataset seed", []string{"-dataset", "d=matter:0.01:x"}, "bad seed"},
		{"bad dataset spec", []string{"-dataset", "d=matter:0.01:1:extra"}, "want ds[:scale[:seed]]"},
		{"bad wal sync", []string{"-graph", "t=testdata/tiny.graph", "-wal-sync", "fsync-sometimes"}, "unknown sync policy"},
		{"negative snapshot cadence", []string{"-graph", "t=testdata/tiny.graph", "-snapshot-every", "-1"}, "-snapshot-every must be >= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts, err := parseFlags(tc.args, io.Discard)
			if err == nil {
				_, _, err = buildServer(opts, io.Discard)
			}
			if err == nil {
				t.Fatalf("%v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

// TestServeLifecycle boots the daemon on an ephemeral port, drives it
// over the wire with the typed client, and exits through the graceful
// drain path.
func TestServeLifecycle(t *testing.T) {
	var stdout, stderr bytes.Buffer
	errCh := make(chan error, 1)
	probed := make(chan error, 1)
	go func() {
		errCh <- run([]string{
			"-listen", "127.0.0.1:0",
			"-graph", "tiny=" + filepath.Join("testdata", "tiny.graph"),
			"-timeout", "5s",
		}, &stdout, &stderr, func(addr string) {
			probed <- probe(addr)
		})
	}()
	if err := <-probed; err != nil {
		t.Error(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain after ready returned")
	}
	out := stdout.String()
	if !strings.Contains(out, "serving tiny on 127.0.0.1:") {
		t.Errorf("stdout lacks serving line: %q", out)
	}
	if !strings.Contains(out, "gpmd: drained") {
		t.Errorf("stdout lacks drain line: %q", out)
	}
	// The bound port is the one dynamic token; scrubbed, the lifecycle
	// output is golden.
	port := regexp.MustCompile(`127\.0\.0\.1:\d+`)
	checkGolden(t, "lifecycle.golden", port.ReplaceAll(stdout.Bytes(), []byte("127.0.0.1:PORT")))
}

// TestWALLifecycle runs the daemon twice against one WAL directory: the
// first run opens a watch and applies an update, the second must recover
// the session under the same id with the updated relation — the full
// durability loop through flags, server and log.
func TestWALLifecycle(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-listen", "127.0.0.1:0",
		"-graph", "tiny=" + filepath.Join("testdata", "tiny.graph"),
		"-timeout", "5s",
		"-wal", dir,
		"-wal-sync", "none",
	}
	boot := func(probeFn func(addr string) error) error {
		var stdout, stderr bytes.Buffer
		errCh := make(chan error, 1)
		probed := make(chan error, 1)
		go func() {
			errCh <- run(args, &stdout, &stderr, func(addr string) { probed <- probeFn(addr) })
		}()
		if err := <-probed; err != nil {
			return err
		}
		select {
		case err := <-errCh:
			return err
		case <-time.After(15 * time.Second):
			return errors.New("daemon did not drain")
		}
	}

	var watchID int64
	var pairsAfterUpdate int
	if err := boot(func(addr string) error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		c := client.New("http://" + addr)
		p, err := gpm.LoadPatternFile(filepath.Join("testdata", "tiny.pattern"))
		if err != nil {
			return err
		}
		st, err := c.Watch(ctx, "tiny", p, "dual")
		if err != nil {
			return err
		}
		watchID = st.ID
		if _, _, err := c.Update(ctx, "tiny", []gpm.Update{gpm.DeleteEdge(0, 1)}); err != nil {
			return err
		}
		after, err := c.WatchSnapshot(ctx, st.ID)
		if err != nil {
			return err
		}
		pairsAfterUpdate = after.Pairs
		return nil
	}); err != nil {
		t.Fatalf("first run: %v", err)
	}

	if err := boot(func(addr string) error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		c := client.New("http://" + addr)
		st, err := c.WatchSnapshot(ctx, watchID)
		if err != nil {
			return errors.New("watch session did not survive the restart: " + err.Error())
		}
		if st.Pairs != pairsAfterUpdate {
			return errors.New("recovered relation differs from pre-restart state")
		}
		stats, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		if stats.WAL == nil || stats.WAL.RecoveredSessions != 1 {
			return errors.New("stats lack the recovery block")
		}
		return nil
	}); err != nil {
		t.Fatalf("second run: %v", err)
	}
}

// probe exercises a live daemon end to end: health, graph listing, one
// query per semantics family, and a watch/update round.
func probe(addr string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := client.New("http://" + addr)
	if !c.Healthy(ctx) {
		return errors.New("daemon not healthy")
	}
	infos, err := c.Graphs(ctx)
	if err != nil {
		return err
	}
	if len(infos) != 1 || infos[0].Name != "tiny" || infos[0].Nodes != 6 {
		return errors.New("unexpected graph listing")
	}
	p, err := gpm.LoadPatternFile(filepath.Join("testdata", "tiny.pattern"))
	if err != nil {
		return err
	}
	rel, err := c.Match(ctx, "tiny", p)
	if err != nil {
		return err
	}
	if !rel.OK {
		return errors.New("tiny pattern should match tiny graph")
	}
	st, err := c.Watch(ctx, "tiny", p, "dual")
	if err != nil {
		return err
	}
	if _, _, err := c.Update(ctx, "tiny", []gpm.Update{gpm.DeleteEdge(0, 1)}); err != nil {
		return err
	}
	return c.CloseWatch(ctx, st.ID)
}
