// Command gpmbench regenerates the paper's tables and figures against the
// synthetic dataset stand-ins.
//
// Usage:
//
//	gpmbench [-exp all|datasets|6a|6b|6c|6d|6e|6f|6g|6h|6i|6j|6k|fig9|gr|aff|2hop|oracle|oracle-parallel|million|ablation|engine|parallel|topo|plan|incsim|serve|cache]
//	         [-scale 0.15] [-seed N] [-patterns 5] [-nodes N] [-workers N] [-json] [-v]
//
// -scale 1.0 reproduces the paper's exact dataset sizes; distance
// matrices over the memory budget are transparently replaced by the PLL
// labelling (tables note the substitution), so full scale stays under
// 1 GB. -exp million generates a 1M-node/10M-edge Barabási–Albert graph
// at -scale 1.0 and matches it on the PLL oracle against a BFS-reference
// checksum; -exp oracle compares build time and memory across all
// oracles and measures the batched-parallel PLL build per worker count
// (CI stores its -json form as bench_oracle.json); -exp plan measures
// the subgraph-isomorphism query planner (symmetry breaking plus
// counting) against unplanned VF2 (CI stores bench_plan.json); -exp
// cache replays a repeated workload against gpmd's containment-aware
// result cache, asserting hit responses byte-identical to cold ones and
// a >= 50x hit-latency reduction (CI stores bench_cache.json). -workers
// sets the
// parallel-build concurrency for experiments that build indexes
// (0 = GOMAXPROCS). -json emits one machine-readable document instead
// of aligned tables, so successive runs can accumulate a perf
// trajectory (BENCH_*.json). EXPERIMENTS.md records reference output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"gpm/internal/bench"
)

// jsonReport is the -json output document: enough run metadata to make
// one run comparable with the next, plus the raw tables.
type jsonReport struct {
	Exp       string         `json:"exp"`
	Scale     float64        `json:"scale"`
	Seed      int64          `json:"seed"`
	Patterns  int            `json:"patterns"`
	Nodes     int            `json:"nodes"`
	Workers   int            `json:"workers"`
	GoVersion string         `json:"go_version"`
	GOOS      string         `json:"goos"`
	GOARCH    string         `json:"goarch"`
	CPUs      int            `json:"cpus"`
	Timestamp string         `json:"timestamp"`
	Elapsed   string         `json:"elapsed"`
	Tables    []*bench.Table `json:"tables"`
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (see DESIGN.md per-experiment index)")
		scale    = flag.Float64("scale", 0.15, "dataset scale factor in (0,1]; 1.0 = paper-exact sizes")
		seed     = flag.Int64("seed", 0, "base RNG seed (0 = built-in default)")
		patterns = flag.Int("patterns", 0, "patterns averaged per data point (0 = default 5; paper used 20)")
		nodes    = flag.Int("nodes", 0, "synthetic graph node count (0 = 20000*scale; paper used 20000)")
		workers  = flag.Int("workers", 0, "parallel-build worker count (0 = GOMAXPROCS)")
		asJSON   = flag.Bool("json", false, "emit machine-readable JSON instead of aligned tables")
		verbose  = flag.Bool("v", false, "log progress to stderr")
	)
	flag.Parse()

	cfg := bench.Config{
		Scale:      *scale,
		Seed:       *seed,
		Patterns:   *patterns,
		SynthNodes: *nodes,
		Workers:    *workers,
	}
	if *verbose {
		cfg.Progress = os.Stderr
	}
	start := time.Now()
	tables, err := bench.ByID(*exp, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *asJSON {
		report := makeReport(*exp, cfg, start, time.Since(start), tables)
		if err := writeJSON(os.Stdout, report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for _, t := range tables {
		t.Fprint(os.Stdout)
	}
}

// makeReport assembles the -json document for one run.
func makeReport(exp string, cfg bench.Config, start time.Time, elapsed time.Duration, tables []*bench.Table) jsonReport {
	resolved := cfg.Resolved()
	return jsonReport{
		Exp:       exp,
		Scale:     resolved.Scale,
		Seed:      resolved.Seed,
		Patterns:  resolved.Patterns,
		Nodes:     resolved.SynthNodes,
		Workers:   resolved.Workers,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.GOMAXPROCS(0),
		Timestamp: start.UTC().Format(time.RFC3339),
		Elapsed:   elapsed.String(),
		Tables:    tables,
	}
}

// writeJSON encodes one report in the BENCH_*.json trajectory schema.
func writeJSON(w io.Writer, report jsonReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
