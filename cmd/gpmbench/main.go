// Command gpmbench regenerates the paper's tables and figures against the
// synthetic dataset stand-ins.
//
// Usage:
//
//	gpmbench [-exp all|datasets|6a|6b|6c|6d|6e|6f|6g|6h|6i|6j|6k|fig9|gr|aff|2hop|ablation]
//	         [-scale 0.15] [-seed N] [-patterns 5] [-nodes N] [-v]
//
// -scale 1.0 reproduces the paper's exact dataset sizes; the default keeps
// the distance matrices laptop-sized. EXPERIMENTS.md records reference
// output.
package main

import (
	"flag"
	"fmt"
	"os"

	"gpm/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (see DESIGN.md per-experiment index)")
		scale    = flag.Float64("scale", 0.15, "dataset scale factor in (0,1]; 1.0 = paper-exact sizes")
		seed     = flag.Int64("seed", 0, "base RNG seed (0 = built-in default)")
		patterns = flag.Int("patterns", 0, "patterns averaged per data point (0 = default 5; paper used 20)")
		nodes    = flag.Int("nodes", 0, "synthetic graph node count (0 = 20000*scale; paper used 20000)")
		verbose  = flag.Bool("v", false, "log progress to stderr")
	)
	flag.Parse()

	cfg := bench.Config{
		Scale:      *scale,
		Seed:       *seed,
		Patterns:   *patterns,
		SynthNodes: *nodes,
	}
	if *verbose {
		cfg.Progress = os.Stderr
	}
	tables, err := bench.ByID(*exp, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, t := range tables {
		t.Fprint(os.Stdout)
	}
}
