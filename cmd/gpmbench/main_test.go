package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gpm/internal/bench"
)

var update = flag.Bool("update", false, "rewrite golden files")

// volatileColumns are table cells that vary run to run (wall-clock
// readings and their derivatives); the golden comparison replaces them
// with a placeholder. Relation checksums deliberately stay: they are
// deterministic in the seed, so the golden also pins cross-run (and
// cross-platform) determinism of the topo relations themselves.
var volatileColumns = map[string]bool{
	"elapsed (ms)":         true,
	"speedup":              true,
	"inc (ms/batch)":       true,
	"recompute (ms/batch)": true,
	"unplanned (ms)":       true,
	"planned (ms)":         true,
	"count (ms)":           true,
}

// scrub replaces run-dependent report fields and table cells with fixed
// placeholders, leaving the deterministic structure — experiment id,
// resolved config, column sets, worker counts, checksums — intact.
func scrub(r *jsonReport) {
	r.GoVersion = "go"
	r.GOOS = "linux"
	r.GOARCH = "any"
	r.CPUs = 0
	r.Workers = 0 // defaults to GOMAXPROCS, so it varies by machine
	r.Timestamp = "TIMESTAMP"
	r.Elapsed = "ELAPSED"
	for _, t := range r.Tables {
		for _, row := range t.Rows {
			for i, col := range t.Columns {
				if volatileColumns[col] && i < len(row) {
					row[i] = "X"
				}
			}
		}
	}
}

// Golden-file pin of the `gpmbench -exp topo -json` document: the
// trajectory schema, the topo table's shape and the relation checksums
// must not drift silently.
func TestGoldenTopoJSON(t *testing.T) {
	cfg := bench.Config{Scale: 0.15, Patterns: 2, SynthNodes: 600}
	tables, err := bench.ByID("topo", cfg)
	if err != nil {
		t.Fatalf("ByID(topo): %v", err)
	}
	report := makeReport("topo", cfg, time.Time{}, 0, tables)
	scrub(&report)
	var buf bytes.Buffer
	if err := writeJSON(&buf, report); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}

	goldenPath := filepath.Join("testdata", "golden", "topo_json.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-exp topo -json diverges from %s\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, buf.String(), want)
	}
}

// Golden-file pin of the `gpmbench -exp incsim -json` document: the
// trajectory schema, the incremental-vs-recompute table's shape and the
// relation checksums must not drift. The checksums double as a
// determinism pin: the incremental watcher's final relation is seeded,
// so a maintenance bug that drifts the relation fails here even though
// the timings are scrubbed.
func TestGoldenIncsimJSON(t *testing.T) {
	cfg := bench.Config{Scale: 0.15, Patterns: 2, SynthNodes: 400}
	tables, err := bench.ByID("incsim", cfg)
	if err != nil {
		t.Fatalf("ByID(incsim): %v", err)
	}
	report := makeReport("incsim", cfg, time.Time{}, 0, tables)
	scrub(&report)
	var buf bytes.Buffer
	if err := writeJSON(&buf, report); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}

	goldenPath := filepath.Join("testdata", "golden", "incsim_json.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-exp incsim -json diverges from %s\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, buf.String(), want)
	}
}

// Unknown experiment ids must keep erroring with the full id list (the
// topo id rides on it).
func TestByIDUnknown(t *testing.T) {
	if _, err := bench.ByID("no-such-exp", bench.Config{}); err == nil {
		t.Fatal("ByID accepted an unknown experiment")
	}
}

// Golden-file pin of the `gpmbench -exp plan -json` document: the
// trajectory schema, the planner table's shape, and the deterministic
// cells — |Aut|, restriction counts and embedding counts per shape —
// must not drift. The embedding counts double as a correctness pin: the
// experiment asserts in-run that planned, unplanned and counting paths
// agree, so this golden freezes what they agree on.
func TestGoldenPlanJSON(t *testing.T) {
	cfg := bench.Config{Scale: 0.15, Patterns: 2, SynthNodes: 600}
	tables, err := bench.ByID("plan", cfg)
	if err != nil {
		t.Fatalf("ByID(plan): %v", err)
	}
	report := makeReport("plan", cfg, time.Time{}, 0, tables)
	scrub(&report)
	var buf bytes.Buffer
	if err := writeJSON(&buf, report); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}

	goldenPath := filepath.Join("testdata", "golden", "plan_json.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-exp plan -json diverges from %s\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, buf.String(), want)
	}
}
