package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// Golden coverage of the graph subcommand: the -powerlaw flag must keep
// producing byte-identical Barabási–Albert graphs per seed — the
// million-node benchmark graph is reproduced from exactly this CLI path,
// so its topology is a contract, not an implementation detail.
func TestGoldenGraph(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"powerlaw", []string{"-nodes", "16", "-powerlaw", "2", "-attrs", "4", "-seed", "1"}},
		{"ba_model", []string{"-nodes", "16", "-model", "ba", "-attrs", "4", "-seed", "1"}},
		{"er", []string{"-nodes", "12", "-edges", "20", "-attrs", "4", "-seed", "1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := filepath.Join(t.TempDir(), "out.graph")
			if err := genGraph(append(tc.args, "-o", out)); err != nil {
				t.Fatalf("genGraph(%v): %v", tc.args, err)
			}
			got, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			goldenPath := filepath.Join("testdata", "golden", tc.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("output diverges from %s\n--- got ---\n%s\n--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// -powerlaw M with the default -model must equal -model ba with the same
// out-degree when M matches the BA default path: the flag is an override,
// not a separate generator.
func TestPowerlawFlagOverridesModel(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.graph")
	b := filepath.Join(dir, "b.graph")
	if err := genGraph([]string{"-nodes", "30", "-model", "er", "-powerlaw", "3", "-seed", "9", "-o", a}); err != nil {
		t.Fatal(err)
	}
	if err := genGraph([]string{"-nodes", "30", "-model", "communities", "-powerlaw", "3", "-seed", "9", "-o", b}); err != nil {
		t.Fatal(err)
	}
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Error("-powerlaw did not override -model: outputs differ")
	}
}
