// Command gpmgen generates synthetic data graphs, pattern graphs and
// update streams in the text formats of package gio.
//
// Usage:
//
//	gpmgen graph   -nodes 1000 -edges 4000 [-attrs 100] [-model er|powerlaw|communities|ba] [-powerlaw m] [-seed 1] [-o out.graph]
//	gpmgen dataset -name youtube [-scale 0.15] [-seed 1] [-o out.graph]
//	gpmgen pattern -graph g.graph -nodes 4 -edges 4 -k 3 [-star 0.1] [-seed 1] [-check] [-o out.pattern]
//	gpmgen updates -graph g.graph -ins 100 -del 100 [-seed 1] [-o out.updates]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"gpm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "graph":
		err = genGraph(os.Args[2:])
	case "dataset":
		err = genDataset(os.Args[2:])
	case "pattern":
		err = genPattern(os.Args[2:])
	case "updates":
		err = genUpdates(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpmgen:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gpmgen graph|dataset|pattern|updates [flags] (see -h of each subcommand)")
	os.Exit(2)
}

func outWriter(path string) (io.WriteCloser, error) {
	if path == "" || path == "-" {
		return os.Stdout, nil
	}
	return os.Create(path)
}

func closeOut(w io.WriteCloser) {
	if w != os.Stdout {
		w.Close()
	}
}

func genGraph(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	nodes := fs.Int("nodes", 1000, "node count")
	edges := fs.Int("edges", 4000, "edge count")
	attrs := fs.Int("attrs", 100, "attribute alphabet size")
	model := fs.String("model", "er", "er | powerlaw | communities | ba")
	powerlaw := fs.Int("powerlaw", 0, "Barabási–Albert growth with this out-degree per node (overrides -model and -edges)")
	seed := fs.Int64("seed", 1, "rng seed")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)

	m := map[string]gpm.GraphModel{
		"er": gpm.ModelER, "powerlaw": gpm.ModelPowerLaw,
		"communities": gpm.ModelCommunities, "ba": gpm.ModelBarabasiAlbert,
	}[*model]
	cfg := gpm.GraphGenConfig{Nodes: *nodes, Edges: *edges, Attrs: *attrs, Model: m, Seed: *seed}
	if *powerlaw > 0 {
		cfg.Model = gpm.ModelBarabasiAlbert
		cfg.MOut = *powerlaw
	}
	g := gpm.GenerateGraph(cfg)
	w, err := outWriter(*out)
	if err != nil {
		return err
	}
	defer closeOut(w)
	return gpm.WriteGraph(w, g)
}

func genDataset(args []string) error {
	fs := flag.NewFlagSet("dataset", flag.ExitOnError)
	name := fs.String("name", "youtube", "matter | pblog | youtube")
	scale := fs.Float64("scale", 0.15, "scale factor (1.0 = paper-exact size)")
	seed := fs.Int64("seed", 1, "rng seed")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)

	g, err := gpm.Dataset(*name, *seed, *scale)
	if err != nil {
		return err
	}
	w, err := outWriter(*out)
	if err != nil {
		return err
	}
	defer closeOut(w)
	return gpm.WriteGraph(w, g)
}

func genPattern(args []string) error {
	fs := flag.NewFlagSet("pattern", flag.ExitOnError)
	graphPath := fs.String("graph", "", "data graph file (required)")
	nodes := fs.Int("nodes", 4, "pattern nodes")
	edges := fs.Int("edges", 4, "pattern edges")
	k := fs.Int("k", 3, "bound upper limit")
	star := fs.Float64("star", 0, "probability of an unbounded (*) edge")
	seed := fs.Int64("seed", 1, "rng seed")
	check := fs.Bool("check", false, "match the generated pattern against the graph and report the outcome on stderr")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)

	if *graphPath == "" {
		return fmt.Errorf("pattern: -graph is required")
	}
	g, err := gpm.LoadGraphFile(*graphPath)
	if err != nil {
		return err
	}
	p := gpm.GeneratePattern(gpm.PatternGenConfig{
		Nodes: *nodes, Edges: *edges, K: *k, StarProb: *star, Seed: *seed,
	}, g)
	if *check {
		res, err := gpm.NewEngine(g, gpm.WithAutoOracle()).Match(context.Background(), p)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "check: ok=%v |S|=%d (oracle %s, build %v, match %v)\n",
			res.OK(), res.Pairs(), res.Stats.Oracle, res.Stats.OracleBuild, res.Stats.MatchTime)
	}
	w, err := outWriter(*out)
	if err != nil {
		return err
	}
	defer closeOut(w)
	return gpm.WritePattern(w, p)
}

func genUpdates(args []string) error {
	fs := flag.NewFlagSet("updates", flag.ExitOnError)
	graphPath := fs.String("graph", "", "data graph file (required)")
	ins := fs.Int("ins", 0, "insertions")
	del := fs.Int("del", 0, "deletions")
	seed := fs.Int64("seed", 1, "rng seed")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)

	if *graphPath == "" {
		return fmt.Errorf("updates: -graph is required")
	}
	g, err := gpm.LoadGraphFile(*graphPath)
	if err != nil {
		return err
	}
	ups := gpm.GenerateUpdates(gpm.UpdateGenConfig{Insertions: *ins, Deletions: *del, Seed: *seed}, g)
	w, err := outWriter(*out)
	if err != nil {
		return err
	}
	defer closeOut(w)
	return gpm.WriteUpdates(w, ups)
}
