// Command gpmatch matches a pattern file against a data graph file.
//
// Usage:
//
//	gpmatch -graph g.graph -pattern p.pattern [-algo match|bfs|2hop|auto|sim|vf2|ullmann]
//	        [-result] [-limit 100] [-time]
//
// The default algorithm is the paper's cubic-time Match (bounded
// simulation over a distance matrix); auto lets the engine pick the
// oracle from the graph's size and density. -result additionally prints
// the result graph; vf2/ullmann print embeddings under the traditional
// subgraph-isomorphism semantics (-limit caps them). -time reports the
// oracle preprocessing and the matching fixpoint separately.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"gpm"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "data graph file (required)")
		patternPath = flag.String("pattern", "", "pattern file (required)")
		algo        = flag.String("algo", "match", "match | bfs | 2hop | auto | sim | vf2 | ullmann")
		showResult  = flag.Bool("result", false, "print the result graph (bounded simulation only)")
		limit       = flag.Int("limit", 100, "embedding cap for vf2/ullmann")
		showTime    = flag.Bool("time", false, "print oracle-build and match time separately")
	)
	flag.Parse()
	if *graphPath == "" || *patternPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*graphPath, *patternPath, *algo, *showResult, *limit, *showTime); err != nil {
		fmt.Fprintln(os.Stderr, "gpmatch:", err)
		os.Exit(1)
	}
}

func run(graphPath, patternPath, algo string, showResult bool, limit int, showTime bool) error {
	g, err := gpm.LoadGraphFile(graphPath)
	if err != nil {
		return err
	}
	p, err := gpm.LoadPatternFile(patternPath)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d nodes, %d edges; pattern: %d nodes, %d edges\n",
		g.N(), g.M(), p.N(), p.EdgeCount())
	ctx := context.Background()

	switch algo {
	case "match", "bfs", "2hop", "auto":
		kind := map[string]gpm.OracleKind{
			"match": gpm.OracleMatrix,
			"bfs":   gpm.OracleBFS,
			"2hop":  gpm.OracleTwoHop,
			"auto":  gpm.OracleAuto,
		}[algo]
		eng := gpm.NewEngine(g, gpm.WithOracle(kind))
		res, err := eng.Match(ctx, p)
		if err != nil {
			return err
		}
		printMatch(res)
		if showTime {
			printTime(res.Stats)
		}
		if showResult {
			fmt.Print(eng.ResultGraph(res).String())
		}
	case "sim":
		eng := gpm.NewEngine(g)
		sim, err := eng.Simulate(ctx, p)
		if err != nil {
			return err
		}
		fmt.Printf("plain simulation: ok=%v\n", sim.OK)
		for u, l := range sim.Relation {
			fmt.Printf("  sim(%d): %d nodes\n", u, len(l))
		}
		if showTime {
			printTime(sim.Stats)
		}
	case "vf2", "ullmann":
		opts := gpm.IsoOptions{MaxEmbeddings: limit}
		if algo == "ullmann" {
			opts.Algo = gpm.AlgoUllmann
		}
		eng := gpm.NewEngine(g)
		enum, err := eng.Enumerate(ctx, p, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d embeddings (complete=%v, steps=%d)\n",
			algo, len(enum.Embeddings), enum.Complete, enum.Steps)
		for i, emb := range enum.Embeddings {
			if i >= 10 {
				fmt.Printf("  ... %d more\n", len(enum.Embeddings)-10)
				break
			}
			fmt.Printf("  %v\n", emb)
		}
		if showTime {
			printTime(enum.Stats)
		}
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	return nil
}

func printTime(s gpm.MatchStats) {
	if s.Oracle != gpm.OracleNone {
		fmt.Printf("oracle: %s, build %v (%d queries)\n", s.Oracle, s.OracleBuild, s.OracleQueries)
	}
	fmt.Printf("match: %v\n", s.MatchTime)
}

func printMatch(res *gpm.MatchResult) {
	fmt.Printf("bounded simulation: ok=%v, |S|=%d pairs\n", res.OK(), res.Pairs())
	for u := 0; u < res.Pattern().N(); u++ {
		mat := res.Mat(u)
		fmt.Printf("  mat(%d) [%s]: %d nodes", u, res.Pattern().Pred(u), len(mat))
		if len(mat) <= 12 {
			fmt.Printf(" %v", mat)
		}
		fmt.Println()
	}
}
