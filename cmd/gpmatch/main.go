// Command gpmatch matches a pattern file against a data graph file.
//
// Usage:
//
//	gpmatch -graph g.graph -pattern p.pattern [-algo match|bfs|2hop|sim|vf2|ullmann]
//	        [-result] [-limit 100] [-time]
//
// The default algorithm is the paper's cubic-time Match (bounded
// simulation over a distance matrix). -result additionally prints the
// result graph; vf2/ullmann print embeddings under the traditional
// subgraph-isomorphism semantics (-limit caps them).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gpm"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "data graph file (required)")
		patternPath = flag.String("pattern", "", "pattern file (required)")
		algo        = flag.String("algo", "match", "match | bfs | 2hop | sim | vf2 | ullmann")
		showResult  = flag.Bool("result", false, "print the result graph (bounded simulation only)")
		limit       = flag.Int("limit", 100, "embedding cap for vf2/ullmann")
		showTime    = flag.Bool("time", false, "print elapsed time")
	)
	flag.Parse()
	if *graphPath == "" || *patternPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*graphPath, *patternPath, *algo, *showResult, *limit, *showTime); err != nil {
		fmt.Fprintln(os.Stderr, "gpmatch:", err)
		os.Exit(1)
	}
}

func run(graphPath, patternPath, algo string, showResult bool, limit int, showTime bool) error {
	g, err := gpm.LoadGraphFile(graphPath)
	if err != nil {
		return err
	}
	p, err := gpm.LoadPatternFile(patternPath)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d nodes, %d edges; pattern: %d nodes, %d edges\n",
		g.N(), g.M(), p.N(), p.EdgeCount())
	start := time.Now()
	defer func() {
		if showTime {
			fmt.Printf("elapsed: %v\n", time.Since(start))
		}
	}()

	switch algo {
	case "match", "bfs", "2hop":
		var o gpm.DistOracle
		switch algo {
		case "match":
			o = gpm.NewMatrixOracle(g)
		case "bfs":
			o = gpm.NewBFSOracle(g)
		default:
			o = gpm.NewTwoHopOracle(g)
		}
		res, err := gpm.MatchWithOracle(p, g, o)
		if err != nil {
			return err
		}
		printMatch(res)
		if showResult {
			fmt.Print(gpm.ResultGraphOf(res, o).String())
		}
	case "sim":
		rel, ok, err := gpm.Simulate(p, g)
		if err != nil {
			return err
		}
		fmt.Printf("plain simulation: ok=%v\n", ok)
		for u, l := range rel {
			fmt.Printf("  sim(%d): %d nodes\n", u, len(l))
		}
	case "vf2", "ullmann":
		opts := gpm.IsoOptions{MaxEmbeddings: limit}
		var enum *gpm.Enumeration
		if algo == "vf2" {
			enum = gpm.VF2(p, g, opts)
		} else {
			enum = gpm.Ullmann(p, g, opts)
		}
		fmt.Printf("%s: %d embeddings (complete=%v, steps=%d)\n",
			algo, len(enum.Embeddings), enum.Complete, enum.Steps)
		for i, emb := range enum.Embeddings {
			if i >= 10 {
				fmt.Printf("  ... %d more\n", len(enum.Embeddings)-10)
				break
			}
			fmt.Printf("  %v\n", emb)
		}
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	return nil
}

func printMatch(res *gpm.Result) {
	fmt.Printf("bounded simulation: ok=%v, |S|=%d pairs\n", res.OK(), res.Pairs())
	for u := 0; u < res.Pattern().N(); u++ {
		mat := res.Mat(u)
		fmt.Printf("  mat(%d) [%s]: %d nodes", u, res.Pattern().Pred(u), len(mat))
		if len(mat) <= 12 {
			fmt.Printf(" %v", mat)
		}
		fmt.Println()
	}
}
