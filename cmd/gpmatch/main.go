// Command gpmatch matches a pattern file against a data graph file.
//
// Usage:
//
//	gpmatch -graph g.graph -pattern p.pattern
//	        [-semantics match|bfs|2hop|pll|auto|sim|dual|strong|iso|vf2|ullmann]
//	        [-workers N] [-result] [-limit 100] [-time] [-plan] [-count] [-noplan]
//
// The default semantics is the paper's cubic-time Match (bounded
// simulation over a distance matrix); bfs/2hop/pll/auto select the oracle
// (auto lets the engine pick from the graph's size and density). sim is
// plain graph simulation; dual and strong are the topology-preserving
// semantics of Ma et al. (VLDB 2012), requiring all edge bounds to be 1;
// iso/vf2/ullmann print embeddings under the traditional subgraph-
// isomorphism semantics (-limit caps them; iso is VF2 under the query
// planner's matching order and symmetry breaking, the engine default).
// For those semantics -plan prints the chosen plan, -count prints the
// embedding count (computed without materialising embeddings) instead of
// listing them, and -noplan opts out of the planner. -result additionally
// prints the result graph (bounded, dual and strong simulation). -time
// reports the oracle preprocessing and the matching time separately.
// -workers sets the matching parallelism and the PLL oracle's
// batched-parallel build width (0 = GOMAXPROCS); every worker count
// returns identical output. -algo is the deprecated spelling of
// -semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"gpm"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "data graph file (required)")
		patternPath = flag.String("pattern", "", "pattern file (required)")
		algo        = flag.String("algo", "", "deprecated alias for -semantics")
		semantics   = flag.String("semantics", "", "match | bfs | 2hop | pll | auto | sim | dual | strong | iso | vf2 | ullmann")
		showResult  = flag.Bool("result", false, "print the result graph (bounded/dual/strong simulation)")
		limit       = flag.Int("limit", 100, "embedding cap for iso/vf2/ullmann")
		showTime    = flag.Bool("time", false, "print oracle-build and match time separately")
		workers     = flag.Int("workers", 0, "matching and oracle-build parallelism (0 = GOMAXPROCS)")
		showPlan    = flag.Bool("plan", false, "print the enumeration plan (iso/vf2/ullmann)")
		count       = flag.Bool("count", false, "print the embedding count instead of embeddings (iso/vf2/ullmann)")
		noPlan      = flag.Bool("noplan", false, "skip the query planner (iso/vf2/ullmann)")
	)
	flag.Parse()
	if *graphPath == "" || *patternPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	sem := *semantics
	if sem == "" {
		sem = *algo
	}
	if sem == "" {
		sem = "match"
	}
	if err := run(os.Stdout, *graphPath, *patternPath, sem, *showResult, *limit, *showTime, *workers, *showPlan, *count, *noPlan); err != nil {
		fmt.Fprintln(os.Stderr, "gpmatch:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, graphPath, patternPath, semantics string, showResult bool, limit int, showTime bool, workers int, showPlan, count, noPlan bool) error {
	isEnum := semantics == "iso" || semantics == "vf2" || semantics == "ullmann"
	if (showPlan || count || noPlan) && !isEnum {
		return fmt.Errorf("-plan/-count/-noplan apply to -semantics iso|vf2|ullmann, not %q", semantics)
	}
	g, err := gpm.LoadGraphFile(graphPath)
	if err != nil {
		return err
	}
	p, err := gpm.LoadPatternFile(patternPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "graph: %d nodes, %d edges; pattern: %d nodes, %d edges\n",
		g.N(), g.M(), p.N(), p.EdgeCount())
	ctx := context.Background()
	var engOpts []gpm.EngineOption
	if workers > 0 {
		engOpts = append(engOpts, gpm.WithWorkers(workers))
	}

	switch semantics {
	case "match", "bfs", "2hop", "pll", "auto":
		kind := map[string]gpm.OracleKind{
			"match": gpm.OracleMatrix,
			"bfs":   gpm.OracleBFS,
			"2hop":  gpm.OracleTwoHop,
			"pll":   gpm.OraclePLL,
			"auto":  gpm.OracleAuto,
		}[semantics]
		eng := gpm.NewEngine(g, append(engOpts, gpm.WithOracle(kind))...)
		res, err := eng.Match(ctx, p)
		if err != nil {
			return err
		}
		printRelation(w, "bounded simulation", res.Result, p)
		if showTime {
			printTime(w, res.Stats)
		}
		if showResult {
			fmt.Fprint(w, eng.ResultGraph(res).String())
		}
	case "sim":
		eng := gpm.NewEngine(g, engOpts...)
		sim, err := eng.Simulate(ctx, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "plain simulation: ok=%v\n", sim.OK)
		for u, l := range sim.Relation {
			fmt.Fprintf(w, "  sim(%d): %d nodes\n", u, len(l))
		}
		if showTime {
			printTime(w, sim.Stats)
		}
	case "dual", "strong":
		eng := gpm.NewEngine(g, engOpts...)
		var res *gpm.TopoResult
		var err error
		if semantics == "dual" {
			res, err = eng.DualSimulate(ctx, p)
		} else {
			res, err = eng.StrongSimulate(ctx, p)
		}
		if err != nil {
			return err
		}
		printRelation(w, semantics+" simulation", res.Result, p)
		if showTime {
			printTime(w, res.Stats)
		}
		if showResult {
			fmt.Fprint(w, eng.ResultGraphOf(res.Result).String())
		}
	case "iso", "vf2", "ullmann":
		opts := gpm.IsoOptions{MaxEmbeddings: limit, NoPlan: noPlan}
		if semantics == "ullmann" {
			opts.Algo = gpm.AlgoUllmann
		}
		eng := gpm.NewEngine(g, engOpts...)
		if showPlan {
			pl, err := eng.EnumerationPlan(p)
			if err != nil {
				return err
			}
			fmt.Fprint(w, pl.String())
		}
		if count {
			cnt, err := eng.CountEmbeddings(ctx, p, opts)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s: count=%d (complete=%v, steps=%d, |Aut|=%d)\n",
				semantics, cnt.Count, cnt.Complete, cnt.Steps, cnt.Automorphisms)
			if showTime {
				printTime(w, cnt.Stats)
			}
			return nil
		}
		enum, err := eng.Enumerate(ctx, p, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: %d embeddings (complete=%v, steps=%d)\n",
			semantics, len(enum.Embeddings), enum.Complete, enum.Steps)
		for i, emb := range enum.Embeddings {
			if i >= 10 {
				fmt.Fprintf(w, "  ... %d more\n", len(enum.Embeddings)-10)
				break
			}
			fmt.Fprintf(w, "  %v\n", emb)
		}
		if showTime {
			printTime(w, enum.Stats)
		}
	default:
		return fmt.Errorf("unknown semantics %q", semantics)
	}
	return nil
}

func printTime(w io.Writer, s gpm.MatchStats) {
	if s.Oracle != gpm.OracleNone {
		fmt.Fprintf(w, "oracle: %s, build %v (%d queries)\n", s.Oracle, s.OracleBuild, s.OracleQueries)
	}
	fmt.Fprintf(w, "match: %v\n", s.MatchTime)
}

func printRelation(w io.Writer, name string, res *gpm.Result, p *gpm.Pattern) {
	fmt.Fprintf(w, "%s: ok=%v, |S|=%d pairs\n", name, res.OK(), res.Pairs())
	for u := 0; u < p.N(); u++ {
		mat := res.Mat(u)
		fmt.Fprintf(w, "  mat(%d) [%s]: %d nodes", u, p.Pred(u), len(mat))
		if len(mat) <= 12 {
			fmt.Fprintf(w, " %v", mat)
		}
		fmt.Fprintln(w)
	}
}
