package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// Golden-file coverage of every -semantics value against the tiny
// fixture: a 6-cycle that dual-matches a triangle pattern but strongly
// does not, plus a genuine triangle every semantics accepts. The output
// format is CLI contract — regressions fail here instead of silently
// breaking downstream consumers.
func TestGoldenSemantics(t *testing.T) {
	cases := []struct {
		name       string
		semantics  string
		showResult bool
	}{
		{"match", "match", true},
		{"bfs", "bfs", false},
		{"2hop", "2hop", false},
		{"pll", "pll", false},
		{"auto", "auto", false},
		{"sim", "sim", false},
		{"dual", "dual", true},
		{"strong", "strong", true},
		{"vf2", "vf2", false},
		{"ullmann", "ullmann", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(&buf, filepath.Join("testdata", "tiny.graph"), filepath.Join("testdata", "tiny.pattern"),
				tc.semantics, tc.showResult, 100, false, 0)
			if err != nil {
				t.Fatalf("run(%s): %v", tc.semantics, err)
			}
			goldenPath := filepath.Join("testdata", "golden", tc.name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output diverges from %s\n--- got ---\n%s\n--- want ---\n%s", goldenPath, buf.String(), want)
			}
		})
	}
}

// Unknown semantics must error, not fall through to a default.
func TestUnknownSemantics(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, filepath.Join("testdata", "tiny.graph"), filepath.Join("testdata", "tiny.pattern"),
		"nonsense", false, 100, false, 0)
	if err == nil {
		t.Fatal("run accepted unknown semantics")
	}
}
