package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// Golden-file coverage of every -semantics value against the tiny
// fixture: a 6-cycle that dual-matches a triangle pattern but strongly
// does not, plus a genuine triangle every semantics accepts. The output
// format is CLI contract — regressions fail here instead of silently
// breaking downstream consumers.
func TestGoldenSemantics(t *testing.T) {
	cases := []struct {
		name       string
		semantics  string
		showResult bool
		showPlan   bool
		count      bool
		noPlan     bool
	}{
		{name: "match", semantics: "match", showResult: true},
		{name: "bfs", semantics: "bfs"},
		{name: "2hop", semantics: "2hop"},
		{name: "pll", semantics: "pll"},
		{name: "auto", semantics: "auto"},
		{name: "sim", semantics: "sim"},
		{name: "dual", semantics: "dual", showResult: true},
		{name: "strong", semantics: "strong", showResult: true},
		{name: "vf2", semantics: "vf2"},
		{name: "ullmann", semantics: "ullmann"},
		{name: "iso", semantics: "iso"},
		{name: "iso-plan", semantics: "iso", showPlan: true},
		{name: "iso-count", semantics: "iso", count: true},
		{name: "iso-noplan", semantics: "iso", noPlan: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(&buf, filepath.Join("testdata", "tiny.graph"), filepath.Join("testdata", "tiny.pattern"),
				tc.semantics, tc.showResult, 100, false, 0, tc.showPlan, tc.count, tc.noPlan)
			if err != nil {
				t.Fatalf("run(%s): %v", tc.semantics, err)
			}
			goldenPath := filepath.Join("testdata", "golden", tc.name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output diverges from %s\n--- got ---\n%s\n--- want ---\n%s", goldenPath, buf.String(), want)
			}
		})
	}
}

// Unknown semantics must error, not fall through to a default.
func TestUnknownSemantics(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, filepath.Join("testdata", "tiny.graph"), filepath.Join("testdata", "tiny.pattern"),
		"nonsense", false, 100, false, 0, false, false, false)
	if err == nil {
		t.Fatal("run accepted unknown semantics")
	}
}

// -plan/-count/-noplan are enumeration-only flags.
func TestEnumFlagsRejectedElsewhere(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, filepath.Join("testdata", "tiny.graph"), filepath.Join("testdata", "tiny.pattern"),
		"match", false, 100, false, 0, false, true, false)
	if err == nil {
		t.Fatal("run accepted -count with -semantics match")
	}
}
