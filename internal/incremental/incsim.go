package incremental

import (
	"fmt"

	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// SimMatcher maintains the maximum plain- or dual-simulation relation of
// an all-bounds-one pattern over a mutating data graph. It is the
// edge-to-edge counterpart of the bounded-simulation Matcher: instead of
// a distance matrix it keeps the child/parent witness counters of the
// fixpoint alive between updates and propagates update deltas through
// them, so a small batch touches only the affected area of the relation
// instead of re-running the whole fixpoint.
//
// State per pattern edge e = (u, u′): fwd[e][x] counts the out-witnesses
// of candidate x of u — data edges (x, y) with (u′, y) in the relation —
// and, unless childOnly, back[e][y] counts the in-witnesses of candidate
// y of u′. The invariant between updates is that every counter of a
// member pair equals its witness count over the CURRENT graph and
// relation; a member dies exactly when one of its counters reaches zero.
//
// Deletions only shrink the relation: each net-deleted edge decrements
// the counters it witnessed and the standard removal cascade runs from
// the zeros (the new greatest fixpoint is the greatest fixpoint below
// the old relation, which is what the cascade computes). Insertions only
// grow it: the affected area — the closure of candidate pairs whose
// membership could transitively depend on a net-inserted edge — is
// re-seeded optimistically, its counters recounted, and the same cascade
// prunes the candidates that do not survive. When the closure exceeds
// its cap the matcher falls back to a full rebuild (still bit-identical,
// reported via Delta.Recomputed).
type SimMatcher struct {
	p         *pattern.Pattern
	g         *graph.Graph
	childOnly bool // plain simulation: no parent constraints

	predOK [][]bool // static: predicate of u holds at x
	sim    [][]bool // current membership
	size   []int    // members per pattern node
	fwd    [][]int32
	back   [][]int32 // nil rows when childOnly

	maxAffected int // insertion-closure cap before the rebuild fallback

	// Reusable scratch, so the steady-state Apply path does not allocate.
	work    []MatchPair // removal worklist
	inA     [][]bool    // affected-candidate marks
	apairs  []MatchPair // affected pairs in discovery order
	removed []MatchPair // cascade output buffer
	insBuf  []Update
	delBuf  []Update
}

// NewSimMatcher computes the initial maximum simulation (childOnly) or
// dual simulation of p over g and retains the counter state for
// incremental maintenance. The graph must be mutated only through Apply
// (or an engine's Update) from then on. Patterns must have every edge
// bound equal to 1 and carry no edge colors: a deleted data edge's color
// is unrecoverable after the structural change has been applied, so
// colored witness counts cannot be maintained.
func NewSimMatcher(p *pattern.Pattern, g *graph.Graph, childOnly bool) (*SimMatcher, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.AllBoundsOne() {
		return nil, fmt.Errorf("incremental: pattern has a bound != 1; sim/dual watchers are edge-to-edge semantics (use Watch for hop bounds)")
	}
	if p.Colored() {
		return nil, fmt.Errorf("incremental: colored pattern edges are not supported by sim/dual watchers")
	}
	m := &SimMatcher{p: p, g: g, childOnly: childOnly}
	np, n := p.N(), g.N()
	m.maxAffected = np * n / 2
	if m.maxAffected < 64 {
		m.maxAffected = 64
	}
	m.predOK = make([][]bool, np)
	m.inA = make([][]bool, np)
	for u := 0; u < np; u++ {
		m.predOK[u] = make([]bool, n)
		m.inA[u] = make([]bool, n)
		pred := p.Pred(u)
		for x := 0; x < n; x++ {
			m.predOK[u][x] = pred.Match(g.Attr(x))
		}
	}
	m.rebuild()
	return m, nil
}

// Pattern returns the maintained pattern.
func (m *SimMatcher) Pattern() *pattern.Pattern { return m.p }

// ChildOnly reports whether the matcher maintains plain simulation
// (true) or dual simulation (false).
func (m *SimMatcher) ChildOnly() bool { return m.childOnly }

// OK reports whether every pattern node currently has a match.
func (m *SimMatcher) OK() bool {
	for _, s := range m.size {
		if s == 0 {
			return false
		}
	}
	return true
}

// Pairs returns |S|, the current size of the maintained relation.
func (m *SimMatcher) Pairs() int {
	total := 0
	for _, s := range m.size {
		total += s
	}
	return total
}

// Mat returns the sorted data nodes currently matching pattern node u.
func (m *SimMatcher) Mat(u int) []int32 {
	var out []int32
	for x, in := range m.sim[u] {
		if in {
			out = append(out, int32(x))
		}
	}
	return out
}

// Relation snapshots the whole maintained relation.
func (m *SimMatcher) Relation() [][]int32 {
	out := make([][]int32, m.p.N())
	for u := range out {
		out[u] = m.Mat(u)
	}
	return out
}

// rebuild recomputes candidacy, counters and the relation from scratch —
// the batch fixpoint run in place over the live graph. It backs both the
// initial build and the insertion-closure fallback.
func (m *SimMatcher) rebuild() {
	np, n := m.p.N(), m.g.N()
	if m.sim == nil {
		m.sim = make([][]bool, np)
		m.size = make([]int, np)
		m.fwd = make([][]int32, m.p.EdgeCount())
		m.back = make([][]int32, m.p.EdgeCount())
		for u := 0; u < np; u++ {
			m.sim[u] = make([]bool, n)
		}
		for eid := range m.fwd {
			m.fwd[eid] = make([]int32, n)
			if !m.childOnly {
				m.back[eid] = make([]int32, n)
			}
		}
	}
	for u := 0; u < np; u++ {
		copy(m.sim[u], m.predOK[u])
		m.size[u] = 0
		for _, in := range m.sim[u] {
			if in {
				m.size[u]++
			}
		}
	}
	m.work = m.work[:0]
	for eid := 0; eid < m.p.EdgeCount(); eid++ {
		e := m.p.EdgeAt(eid)
		fw := m.fwd[eid]
		for x := 0; x < n; x++ {
			fw[x] = 0
			if !m.sim[e.From][x] {
				continue
			}
			for _, y := range m.g.Out(x) {
				if m.sim[e.To][y] {
					fw[x]++
				}
			}
			if fw[x] == 0 {
				m.work = append(m.work, MatchPair{int32(e.From), int32(x)})
			}
		}
		if m.childOnly {
			continue
		}
		bk := m.back[eid]
		for y := 0; y < n; y++ {
			bk[y] = 0
			if !m.sim[e.To][y] {
				continue
			}
			for _, z := range m.g.In(y) {
				if m.sim[e.From][z] {
					bk[y]++
				}
			}
			if bk[y] == 0 {
				m.work = append(m.work, MatchPair{int32(e.To), int32(y)})
			}
		}
	}
	m.removed = m.removed[:0]
	m.drain()
}

// alive reports whether every counter of member (u, x) is positive.
func (m *SimMatcher) alive(u, x int) bool {
	for _, eid := range m.p.Out(u) {
		if m.fwd[eid][x] == 0 {
			return false
		}
	}
	if m.childOnly {
		return true
	}
	for _, eid := range m.p.In(u) {
		if m.back[eid][x] == 0 {
			return false
		}
	}
	return true
}

// drain runs the removal cascade: pop a queued pair, re-validate its
// support (within one batch a counter can hit zero on a deletion and
// recover on an insertion or an affected-area admission, so popping
// blindly would evict a live pair), remove it, and decrement the
// counters of its graph neighbors. Removed pairs accumulate in
// m.removed.
func (m *SimMatcher) drain() {
	for len(m.work) > 0 {
		it := m.work[len(m.work)-1]
		m.work = m.work[:len(m.work)-1]
		u, x := int(it.U), int(it.X)
		if !m.sim[u][x] {
			continue
		}
		if m.alive(u, x) {
			continue // stale: support recovered before the pop
		}
		m.sim[u][x] = false
		m.size[u]--
		m.removed = append(m.removed, it)
		for _, eid := range m.p.In(u) {
			e := m.p.EdgeAt(int(eid))
			c := m.fwd[eid]
			for _, z := range m.g.In(x) {
				if !m.sim[e.From][z] {
					continue
				}
				c[z]--
				if c[z] == 0 {
					m.work = append(m.work, MatchPair{int32(e.From), z})
				}
			}
		}
		if m.childOnly {
			continue
		}
		for _, eid := range m.p.Out(u) {
			e := m.p.EdgeAt(int(eid))
			c := m.back[eid]
			for _, y := range m.g.Out(x) {
				if !m.sim[e.To][y] {
					continue
				}
				c[y]--
				if c[y] == 0 {
					m.work = append(m.work, MatchPair{int32(e.To), y})
				}
			}
		}
	}
}

// Apply performs one batch of edge updates: it applies the structural
// changes to the graph and cascades the relation deltas. On a validation
// error the graph and the relation are unchanged.
func (m *SimMatcher) Apply(updates []Update) (Delta, error) {
	if err := ApplyToGraph(m.g, updates); err != nil {
		return Delta{}, err
	}
	return m.ApplyPrecomputed(nil, updates), nil
}

// ApplyPrecomputed cascades a batch whose structural changes were
// already applied to the graph (the engine applies one batch and feeds
// every watcher). The aff argument exists to satisfy the shared
// Maintainer contract; sim/dual maintenance reads adjacency, not
// distances, so it is ignored. Delta.Aff1 reports the size of the
// insertion-affected candidate area.
func (m *SimMatcher) ApplyPrecomputed(_ []Pair, updates []Update) Delta {
	var delta Delta
	ins, dels := netEffectsInto(updates, &m.insBuf, &m.delBuf)
	if len(ins) == 0 && len(dels) == 0 {
		return delta
	}
	m.work = m.work[:0]
	m.removed = m.removed[:0]

	// Phase 1: deletion decrements against the pre-batch relation. A
	// net-deleted edge (a, b) was a counted witness exactly when both
	// endpoint pairs were members.
	for _, up := range dels {
		a, b := up.U, up.V
		for eid := 0; eid < m.p.EdgeCount(); eid++ {
			e := m.p.EdgeAt(eid)
			if !m.sim[e.From][a] || !m.sim[e.To][b] {
				continue
			}
			m.fwd[eid][a]--
			if m.fwd[eid][a] == 0 {
				m.work = append(m.work, MatchPair{int32(e.From), int32(a)})
			}
			if !m.childOnly {
				m.back[eid][b]--
				if m.back[eid][b] == 0 {
					m.work = append(m.work, MatchPair{int32(e.To), int32(b)})
				}
			}
		}
	}

	// Phase 2: insertion increments for witnesses both sides of which
	// are already members. New witnesses involving affected candidates
	// are counted by the recount/adjacency passes below.
	for _, up := range ins {
		a, b := up.U, up.V
		for eid := 0; eid < m.p.EdgeCount(); eid++ {
			e := m.p.EdgeAt(eid)
			if !m.sim[e.From][a] || !m.sim[e.To][b] {
				continue
			}
			m.fwd[eid][a]++
			if !m.childOnly {
				m.back[eid][b]++
			}
		}
	}

	// Phase 3: affected-area closure. A pair outside the relation can
	// only (re)enter if its membership transitively depends on a
	// net-inserted edge: the seeds are the candidate pairs that could
	// use a new edge as a direct witness, and the closure follows the
	// reverse dependencies — (w, z) depends on (u, x) via a pattern edge
	// (w, u) and data edge (z, x) (child constraint), and in dual mode
	// via a pattern edge (u, w) and data edge (x, z) (parent
	// constraint). Anything the closure cannot reach keeps its
	// membership, so re-seeding only this area is exact.
	m.apairs = m.apairs[:0]
	overflow := false
	seed := func(u int, x int32) {
		if !overflow && m.predOK[u][x] && !m.sim[u][x] && !m.inA[u][x] {
			m.inA[u][x] = true
			m.apairs = append(m.apairs, MatchPair{int32(u), x})
		}
	}
	for _, up := range ins {
		for eid := 0; eid < m.p.EdgeCount(); eid++ {
			e := m.p.EdgeAt(eid)
			seed(e.From, int32(up.U))
			if !m.childOnly {
				seed(e.To, int32(up.V))
			}
		}
	}
	for i := 0; i < len(m.apairs) && !overflow; i++ {
		pr := m.apairs[i]
		u, x := int(pr.U), int(pr.X)
		for _, eid := range m.p.In(u) {
			e := m.p.EdgeAt(int(eid))
			for _, z := range m.g.In(x) {
				seed(e.From, z)
			}
		}
		if !m.childOnly {
			for _, eid := range m.p.Out(u) {
				e := m.p.EdgeAt(int(eid))
				for _, y := range m.g.Out(x) {
					seed(e.To, y)
				}
			}
		}
		if len(m.apairs) > m.maxAffected {
			overflow = true
		}
	}
	if overflow {
		// The affected area rivals the whole candidate space: rebuilding
		// is cheaper than bookkeeping. Still bit-identical — the batch
		// fixpoint and the delta path compute the same unique greatest
		// fixpoint.
		return m.recomputeFallback()
	}

	// Phase 4: admit the affected candidates optimistically and recount
	// their counters against the admitted set and the current graph.
	for _, pr := range m.apairs {
		m.sim[pr.U][pr.X] = true
		m.size[pr.U]++
	}
	for _, pr := range m.apairs {
		u, x := int(pr.U), int(pr.X)
		for _, eid := range m.p.Out(u) {
			e := m.p.EdgeAt(int(eid))
			c := int32(0)
			for _, y := range m.g.Out(x) {
				if m.sim[e.To][y] {
					c++
				}
			}
			m.fwd[eid][x] = c
			if c == 0 {
				m.work = append(m.work, pr)
			}
		}
		if m.childOnly {
			continue
		}
		for _, eid := range m.p.In(u) {
			e := m.p.EdgeAt(int(eid))
			c := int32(0)
			for _, z := range m.g.In(x) {
				if m.sim[e.From][z] {
					c++
				}
			}
			m.back[eid][x] = c
			if c == 0 {
				m.work = append(m.work, pr)
			}
		}
	}

	// Phase 5: each admitted candidate is a new witness for its
	// unaffected graph neighbors (affected ones were fully recounted).
	for _, pr := range m.apairs {
		u, x := int(pr.U), int(pr.X)
		for _, eid := range m.p.In(u) {
			e := m.p.EdgeAt(int(eid))
			c := m.fwd[eid]
			for _, z := range m.g.In(x) {
				if m.sim[e.From][z] && !m.inA[e.From][z] {
					c[z]++
				}
			}
		}
		if m.childOnly {
			continue
		}
		for _, eid := range m.p.Out(u) {
			e := m.p.EdgeAt(int(eid))
			c := m.back[eid]
			for _, y := range m.g.Out(x) {
				if m.sim[e.To][y] && !m.inA[e.To][y] {
					c[y]++
				}
			}
		}
	}

	// Phase 6: one cascade prunes both the candidates that do not
	// survive and the members the deletions killed.
	m.drain()

	delta.Aff1 = len(m.apairs)
	for _, pr := range m.removed {
		if !m.inA[pr.U][pr.X] {
			delta.Removed = append(delta.Removed, pr)
		}
	}
	for _, pr := range m.apairs {
		if m.sim[pr.U][pr.X] {
			delta.Added = append(delta.Added, pr)
		}
		m.inA[pr.U][pr.X] = false
	}
	delta.Aff2 = len(delta.Added) + len(delta.Removed)
	return delta
}

// recomputeFallback rebuilds the relation from scratch and reports the
// net difference. Phases 1–3 may already have dirtied counters and the
// worklist; rebuild overwrites all of them. The affected marks must be
// cleared here because the closure aborted mid-walk.
func (m *SimMatcher) recomputeFallback() Delta {
	delta := Delta{Recomputed: true, Aff1: len(m.apairs)}
	for _, pr := range m.apairs {
		m.inA[pr.U][pr.X] = false
	}
	before := m.Relation()
	m.rebuild()
	for u := range before {
		old := make(map[int32]bool, len(before[u]))
		for _, x := range before[u] {
			old[x] = true
		}
		for x, in := range m.sim[u] {
			if in && !old[int32(x)] {
				delta.Added = append(delta.Added, MatchPair{int32(u), int32(x)})
			}
			if !in && old[int32(x)] {
				delta.Removed = append(delta.Removed, MatchPair{int32(u), int32(x)})
			}
		}
	}
	delta.Aff2 = len(delta.Added) + len(delta.Removed)
	return delta
}

// CheckInvariants verifies internal consistency: membership implies the
// predicate, counters are exact witness counts over the current graph
// and relation, and every member has full support. Tests call it after
// update batches.
func (m *SimMatcher) CheckInvariants() error {
	np, n := m.p.N(), m.g.N()
	for u := 0; u < np; u++ {
		count := 0
		for x := 0; x < n; x++ {
			if m.sim[u][x] {
				count++
				if !m.predOK[u][x] {
					return fmt.Errorf("member (%d,%d) violates its predicate", u, x)
				}
				if !m.alive(u, x) {
					return fmt.Errorf("member (%d,%d) has a zero counter", u, x)
				}
			}
			if m.inA[u][x] {
				return fmt.Errorf("stale affected mark at (%d,%d)", u, x)
			}
		}
		if count != m.size[u] {
			return fmt.Errorf("size[%d] = %d, want %d", u, m.size[u], count)
		}
	}
	for eid := 0; eid < m.p.EdgeCount(); eid++ {
		e := m.p.EdgeAt(eid)
		for x := 0; x < n; x++ {
			if m.sim[e.From][x] {
				want := int32(0)
				for _, y := range m.g.Out(x) {
					if m.sim[e.To][y] {
						want++
					}
				}
				if m.fwd[eid][x] != want {
					return fmt.Errorf("fwd counter edge %d node %d: got %d want %d", eid, x, m.fwd[eid][x], want)
				}
			}
			if !m.childOnly && m.sim[e.To][x] {
				want := int32(0)
				for _, z := range m.g.In(x) {
					if m.sim[e.From][z] {
						want++
					}
				}
				if m.back[eid][x] != want {
					return fmt.Errorf("back counter edge %d node %d: got %d want %d", eid, x, m.back[eid][x], want)
				}
			}
		}
	}
	return nil
}

// NetEffects reduces a valid, sequentially applied update batch to its
// net edge effects. For each edge the first operation in the batch
// reveals its pre-state and the last its post-state: an edge first
// inserted and last deleted is a net no-op, an edge first deleted and
// last inserted is reported in BOTH lists (a decrement/increment pair
// that cancels for uncolored maintenance, and a conservative "changed"
// signal for cache invalidation — the re-inserted edge lost any color
// the original carried). The engine uses an empty result to keep its
// derived caches across no-op batches.
func NetEffects(updates []Update) (ins, dels []Update) {
	return netEffectsInto(updates, &ins, &dels)
}

// netEffectsInto is NetEffects appending into caller-owned buffers
// (reset to length zero first), so steady-state callers do not allocate.
// It scans quadratically over the batch — batches are small, and a map
// would allocate.
func netEffectsInto(updates []Update, insBuf, delBuf *[]Update) (ins, dels []Update) {
	*insBuf, *delBuf = (*insBuf)[:0], (*delBuf)[:0]
	for i, up := range updates {
		dup := false
		for j := 0; j < i; j++ {
			if updates[j].U == up.U && updates[j].V == up.V {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		last := up
		for j := i + 1; j < len(updates); j++ {
			if updates[j].U == up.U && updates[j].V == up.V {
				last = updates[j]
			}
		}
		switch {
		case up.Insert && last.Insert:
			*insBuf = append(*insBuf, Ins(up.U, up.V))
		case !up.Insert && !last.Insert:
			*delBuf = append(*delBuf, Del(up.U, up.V))
		case !up.Insert && last.Insert:
			*delBuf = append(*delBuf, Del(up.U, up.V))
			*insBuf = append(*insBuf, Ins(up.U, up.V))
		}
	}
	return *insBuf, *delBuf
}
