package incremental

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/simulation"
	"gpm/internal/topo"
	"gpm/internal/value"
)

// decodeIncCase deterministically builds a small labeled graph, an
// all-bounds-one pattern, an update stream and a batch size from fuzz
// bytes: node and pattern-node counts, one label byte per node,
// alternating edge wiring, then the remaining bytes as update endpoints
// (each pair toggles the edge's presence, so every decoded stream is
// valid). Every byte string decodes to a valid case, so the fuzzer
// explores the maintenance semantics, not input rejection. batchSize >
// 1 exercises the mixed-batch interplay of the delta phases — a counter
// can hit zero on a deletion and recover via an insertion within one
// batch.
func decodeIncCase(data []byte) (*pattern.Pattern, *graph.Graph, []Update, int) {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	n := 2 + int(next())%8  // 2..9 data nodes
	np := 1 + int(next())%3 // 1..3 pattern nodes
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.SetAttr(i, graph.Attrs{"label": value.Str(fmt.Sprintf("L%d", next()%4))})
	}
	p := pattern.New()
	for i := 0; i < np; i++ {
		p.AddNode(pattern.Label(fmt.Sprintf("L%d", next()%4)))
	}
	wired := 0
	for len(data) > 8 && wired < 3*n {
		a, b := int(next()), int(next())
		wired++
		if wired%3 == 0 {
			from, to := a%np, b%np
			if from != to && !p.HasEdge(from, to) {
				p.MustAddEdge(from, to, 1)
			}
		} else if a%n != b%n {
			g.AddEdge(a%n, b%n)
		}
	}
	if p.EdgeCount() == 0 && np > 1 {
		p.MustAddEdge(0, 1, 1)
	}
	batchSize := 1 + int(next())%4
	// The tail is the update stream: each byte pair toggles one edge,
	// tracked against the evolving graph so the stream stays valid (an
	// edge toggled twice inside one batch is a valid delete-then-insert
	// or insert-then-delete sequence).
	present := map[[2]int]bool{}
	g.Edges(func(u, v int) { present[[2]int{u, v}] = true })
	var ups []Update
	for len(data) >= 2 && len(ups) < 24 {
		u, v := int(next())%n, int(next())%n
		if u == v {
			continue
		}
		key := [2]int{u, v}
		if present[key] {
			ups = append(ups, Del(u, v))
		} else {
			ups = append(ups, Ins(u, v))
		}
		present[key] = !present[key]
	}
	return p, g, ups, batchSize
}

// invert reverses an update stream: applying ups then invert(ups)
// returns the graph to its starting state.
func invert(ups []Update) []Update {
	inv := make([]Update, len(ups))
	for i, up := range ups {
		inv[len(ups)-1-i] = Update{Insert: !up.Insert, U: up.U, V: up.V}
	}
	return inv
}

// FuzzIncDualSim drives the incremental dual-simulation (and plain-
// simulation and strong-simulation) watchers with random graph, pattern
// and update streams. After every update the maintained relations must
// be bit-identical to a full recompute, verified by the independent
// checkers, and respect strong ⊆ dual ⊆ sim; applying the inverse
// stream must return every relation to its initial state, and re-
// applying an empty batch must change nothing (idempotence).
func FuzzIncDualSim(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 1, 0, 1, 0, 1, 0, 1, 1, 0, 0, 1, 1, 0})
	f.Add([]byte{5, 2, 0, 1, 2, 3, 0, 1, 1, 2, 2, 0, 0, 1, 1, 0, 2, 1, 3, 4, 0, 2, 4, 1})
	f.Add([]byte{7, 2, 1, 1, 2, 2, 3, 3, 0, 4, 1, 5, 2, 0, 0, 1, 1, 2, 2, 0, 3, 4, 4, 5, 5, 3, 0, 3, 3, 0, 1, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, g, ups, batchSize := decodeIncCase(data)
		ctx := context.Background()

		dual, err := NewSimMatcher(p, g, false)
		if err != nil {
			t.Fatalf("NewSimMatcher(dual): %v", err)
		}
		sim, err := NewSimMatcher(p, g, true)
		if err != nil {
			t.Fatalf("NewSimMatcher(sim): %v", err)
		}
		strong, err := NewStrongMatcher(p, g, 2)
		if err != nil {
			t.Fatalf("NewStrongMatcher: %v", err)
		}
		initial := [3][][]int32{dual.Relation(), sim.Relation(), strong.Relation()}

		step := func(batch []Update) {
			// One maintainer applies the structural change; the others
			// absorb it the way engine watchers do.
			if _, err := dual.Apply(batch); err != nil {
				t.Fatalf("dual.Apply(%v): %v", batch, err)
			}
			sim.ApplyPrecomputed(nil, batch)
			strong.ApplyPrecomputed(nil, batch)

			fz := g.Freeze()
			wantDual, _, err := topo.DualSim(ctx, p, fz, topo.Options{})
			if err != nil {
				t.Fatal(err)
			}
			gotDual := dual.Relation()
			if !reflect.DeepEqual(gotDual, wantDual) {
				t.Fatalf("dual watcher ≠ recompute after %v\ngot:  %v\nwant: %v", batch, gotDual, wantDual)
			}
			if !topo.IsDualSim(p, fz, gotDual) {
				t.Fatalf("dual watcher relation rejected by IsDualSim: %v", gotDual)
			}
			wantSim, _, err := topo.DualSim(ctx, p, fz, topo.Options{ChildOnly: true})
			if err != nil {
				t.Fatal(err)
			}
			gotSim := sim.Relation()
			if !reflect.DeepEqual(gotSim, wantSim) {
				t.Fatalf("sim watcher ≠ recompute after %v\ngot:  %v\nwant: %v", batch, gotSim, wantSim)
			}
			if !simulation.IsSimulation(p, fz, gotSim) {
				t.Fatalf("sim watcher relation rejected by IsSimulation: %v", gotSim)
			}
			wantStrong, _, err := topo.StrongSim(ctx, p, fz, topo.Options{})
			if err != nil {
				t.Fatal(err)
			}
			gotStrong := strong.Relation()
			if !reflect.DeepEqual(gotStrong, wantStrong) {
				t.Fatalf("strong watcher ≠ recompute after %v\ngot:  %v\nwant: %v", batch, gotStrong, wantStrong)
			}
			if !contained(gotStrong, gotDual) || !contained(gotDual, gotSim) {
				t.Fatalf("lattice violated after %v: strong %v dual %v sim %v", batch, gotStrong, gotDual, gotSim)
			}
			if err := dual.CheckInvariants(); err != nil {
				t.Fatalf("dual invariants after %v: %v", batch, err)
			}
			if err := strong.CheckInvariants(); err != nil {
				t.Fatalf("strong invariants after %v: %v", batch, err)
			}
		}

		// The stream forward in decoded-size batches, then the inverse
		// stream back the same way (the inverse of a valid sequential
		// stream is valid sequentially, so any chunking of it is too).
		for off := 0; off < len(ups); off += batchSize {
			end := off + batchSize
			if end > len(ups) {
				end = len(ups)
			}
			step(ups[off:end])
		}
		inv := invert(ups)
		for off := 0; off < len(inv); off += batchSize {
			end := off + batchSize
			if end > len(inv) {
				end = len(inv)
			}
			step(inv[off:end])
		}
		final := [3][][]int32{dual.Relation(), sim.Relation(), strong.Relation()}
		if !reflect.DeepEqual(initial, final) {
			t.Fatalf("inverse stream did not restore the initial relations\ninitial: %v\nfinal:   %v", initial, final)
		}

		// Idempotence: an empty batch (and a no-op batch) changes nothing.
		if d, err := dual.Apply(nil); err != nil || d.Aff2 != 0 {
			t.Fatalf("empty batch changed the relation: %+v err=%v", d, err)
		}
		if len(ups) > 0 {
			up := ups[0]
			noop := []Update{up, {Insert: !up.Insert, U: up.U, V: up.V}}
			if d, err := dual.Apply(noop); err != nil || len(d.Added) != 0 || len(d.Removed) != 0 {
				t.Fatalf("no-op batch %v changed the relation: %+v err=%v", noop, d, err)
			}
		}
		if !reflect.DeepEqual(dual.Relation(), final[0]) {
			t.Fatal("idempotent re-apply mutated the dual relation")
		}
	})
}

// contained reports rel ⊆ sup, row by row (both sorted).
func contained(rel, sup [][]int32) bool {
	if len(rel) != len(sup) {
		return false
	}
	for u := range rel {
		j := 0
		for _, x := range rel[u] {
			for j < len(sup[u]) && sup[u][j] < x {
				j++
			}
			if j >= len(sup[u]) || sup[u][j] != x {
				return false
			}
		}
	}
	return true
}
