package incremental

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/topo"
	"gpm/internal/value"
)

// randomCase builds a small random labeled graph and an all-bounds-one
// pattern, deterministic in seed. Kept local (instead of using
// internal/generator) because generator imports this package.
func randomCase(seed int64, n, edges, np, pe int) (*pattern.Pattern, *graph.Graph, *rand.Rand) {
	r := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	labels := 4
	for i := 0; i < n; i++ {
		g.SetAttr(i, graph.Attrs{"label": value.Str(fmt.Sprintf("L%d", r.Intn(labels)))})
	}
	for g.M() < edges {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	p := pattern.New()
	for i := 0; i < np; i++ {
		p.AddNode(pattern.Label(fmt.Sprintf("L%d", r.Intn(labels))))
	}
	for i := 0; i < pe; i++ {
		from, to := r.Intn(np), r.Intn(np)
		if from != to && !p.HasEdge(from, to) {
			p.MustAddEdge(from, to, 1)
		}
	}
	if p.EdgeCount() == 0 && np > 1 {
		p.MustAddEdge(0, 1, 1)
	}
	return p, g, r
}

func relationsEqual(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for u := range a {
		if len(a[u]) != len(b[u]) {
			return false
		}
		for i := range a[u] {
			if a[u][i] != b[u][i] {
				return false
			}
		}
	}
	return true
}

// The incremental sim/dual relations must stay bit-identical to a full
// recompute after every random update batch, and the counter invariants
// must hold.
func TestSimMatcherMatchesRecompute(t *testing.T) {
	ctx := context.Background()
	for _, childOnly := range []bool{true, false} {
		mode := "dual"
		if childOnly {
			mode = "sim"
		}
		t.Run(mode, func(t *testing.T) {
			for seed := int64(1); seed <= 10; seed++ {
				p, g, r := randomCase(seed, 30, 70, 3, 4)
				m, err := NewSimMatcher(p, g, childOnly)
				if err != nil {
					t.Fatalf("seed %d: NewSimMatcher: %v", seed, err)
				}
				for batch := 0; batch < 8; batch++ {
					ups := randomBatch(r, g, 1+r.Intn(5))
					if _, err := m.Apply(ups); err != nil {
						t.Fatalf("seed %d batch %d: Apply: %v", seed, batch, err)
					}
					if err := m.CheckInvariants(); err != nil {
						t.Fatalf("seed %d batch %d: invariants: %v", seed, batch, err)
					}
					want, _, err := topo.DualSim(ctx, p, g.Freeze(), topo.Options{ChildOnly: childOnly})
					if err != nil {
						t.Fatalf("seed %d batch %d: DualSim: %v", seed, batch, err)
					}
					if got := m.Relation(); !relationsEqual(got, want) {
						t.Fatalf("seed %d batch %d (%s): incremental diverged\ngot:  %v\nwant: %v\nupdates: %v",
							seed, batch, mode, got, want, ups)
					}
				}
			}
		})
	}
}

// Forcing the insertion-closure cap to 1 makes every insertion take the
// rebuild fallback; the relation must stay identical and the delta must
// flag the recompute.
func TestSimMatcherFallback(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 5; seed++ {
		p, g, r := randomCase(seed, 25, 60, 3, 4)
		m, err := NewSimMatcher(p, g, false)
		if err != nil {
			t.Fatal(err)
		}
		m.maxAffected = 1
		sawRecompute := false
		for batch := 0; batch < 8; batch++ {
			ups := randomBatch(r, g, 2)
			delta, err := m.Apply(ups)
			if err != nil {
				t.Fatal(err)
			}
			sawRecompute = sawRecompute || delta.Recomputed
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("seed %d batch %d: invariants after fallback: %v", seed, batch, err)
			}
			want, _, err := topo.DualSim(ctx, p, g.Freeze(), topo.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got := m.Relation(); !relationsEqual(got, want) {
				t.Fatalf("seed %d batch %d: fallback diverged\ngot:  %v\nwant: %v", seed, batch, got, want)
			}
		}
		_ = sawRecompute // some seeds may never grow the closure past 1
	}
}

// The incremental Delta must report exactly the net membership changes.
func TestSimMatcherDelta(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		p, g, r := randomCase(seed, 25, 60, 3, 4)
		m, err := NewSimMatcher(p, g, false)
		if err != nil {
			t.Fatal(err)
		}
		for batch := 0; batch < 6; batch++ {
			before := m.Relation()
			delta, err := m.Apply(randomBatch(r, g, 1+r.Intn(4)))
			if err != nil {
				t.Fatal(err)
			}
			member := map[MatchPair]bool{}
			for u, row := range before {
				for _, x := range row {
					member[MatchPair{int32(u), x}] = true
				}
			}
			for _, pr := range delta.Removed {
				if !member[pr] {
					t.Fatalf("seed %d batch %d: removed pair %v was not a member", seed, batch, pr)
				}
				delete(member, pr)
			}
			for _, pr := range delta.Added {
				if member[pr] {
					t.Fatalf("seed %d batch %d: added pair %v was already a member", seed, batch, pr)
				}
				member[pr] = true
			}
			after := map[MatchPair]bool{}
			for u, row := range m.Relation() {
				for _, x := range row {
					after[MatchPair{int32(u), x}] = true
				}
			}
			if len(after) != len(member) {
				t.Fatalf("seed %d batch %d: delta does not reconcile: %d vs %d pairs", seed, batch, len(member), len(after))
			}
			for pr := range after {
				if !member[pr] {
					t.Fatalf("seed %d batch %d: pair %v missing from reconciled delta", seed, batch, pr)
				}
			}
		}
	}
}

// The incremental strong relation must stay bit-identical to a full
// topo.StrongSim recompute after every batch, at several worker counts.
func TestStrongMatcherMatchesRecompute(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				p, g, r := randomCase(seed, 30, 70, 3, 4)
				m, err := NewStrongMatcher(p, g, workers)
				if err != nil {
					t.Fatalf("seed %d: NewStrongMatcher: %v", seed, err)
				}
				for batch := 0; batch < 6; batch++ {
					ups := randomBatch(r, g, 1+r.Intn(4))
					if _, err := m.Apply(ups); err != nil {
						t.Fatalf("seed %d batch %d: Apply: %v", seed, batch, err)
					}
					if err := m.CheckInvariants(); err != nil {
						t.Fatalf("seed %d batch %d: invariants: %v", seed, batch, err)
					}
					want, _, err := topo.StrongSim(ctx, p, g.Freeze(), topo.Options{})
					if err != nil {
						t.Fatalf("seed %d batch %d: StrongSim: %v", seed, batch, err)
					}
					if got := m.Relation(); !relationsEqual(got, want) {
						t.Fatalf("seed %d batch %d: incremental strong diverged\ngot:  %v\nwant: %v\nupdates: %v",
							seed, batch, got, want, ups)
					}
				}
			}
		})
	}
}

// Invalid update batches must leave both graph and relation untouched.
func TestSimMatcherInvalidBatch(t *testing.T) {
	p, g, _ := randomCase(3, 15, 30, 2, 2)
	m, err := NewSimMatcher(p, g, false)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Relation()
	edges := g.EdgeList()
	e := edges[0]
	// Second delete of the same (now missing) edge fails; the first must
	// be rolled back.
	if _, err := m.Apply([]Update{Del(int(e[0]), int(e[1])), Del(int(e[0]), int(e[1]))}); err == nil {
		t.Fatal("Apply accepted a double-delete batch")
	}
	if !g.HasEdge(int(e[0]), int(e[1])) {
		t.Fatal("failed batch mutated the graph")
	}
	if !relationsEqual(m.Relation(), before) {
		t.Fatal("failed batch mutated the relation")
	}
}

// Pattern restrictions: hop bounds and colored edges are rejected.
func TestSimMatcherRejectsUnsupportedPatterns(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)

	bounded := pattern.New()
	bounded.AddNode(pattern.Predicate{})
	bounded.AddNode(pattern.Predicate{})
	bounded.MustAddEdge(0, 1, 2)
	if _, err := NewSimMatcher(bounded, g, false); err == nil {
		t.Error("NewSimMatcher accepted a bound-2 pattern")
	}
	if _, err := NewStrongMatcher(bounded, g, 1); err == nil {
		t.Error("NewStrongMatcher accepted a bound-2 pattern")
	}

	colored := pattern.New()
	colored.AddNode(pattern.Predicate{})
	colored.AddNode(pattern.Predicate{})
	if _, err := colored.AddColoredEdge(0, 1, 1, "red"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSimMatcher(colored, g, false); err == nil {
		t.Error("NewSimMatcher accepted a colored pattern")
	}
}

func TestNetEffects(t *testing.T) {
	cases := []struct {
		name     string
		in       []Update
		wantIns  int
		wantDels int
	}{
		{"empty", nil, 0, 0},
		{"plain insert", []Update{Ins(0, 1)}, 1, 0},
		{"plain delete", []Update{Del(0, 1)}, 0, 1},
		{"insert then delete", []Update{Ins(0, 1), Del(0, 1)}, 0, 0},
		{"delete then insert", []Update{Del(0, 1), Ins(0, 1)}, 1, 1},
		{"insert delete insert", []Update{Ins(0, 1), Del(0, 1), Ins(0, 1)}, 1, 0},
		{"delete insert delete", []Update{Del(0, 1), Ins(0, 1), Del(0, 1)}, 0, 1},
		{"mixed edges", []Update{Ins(0, 1), Del(2, 3), Del(0, 1)}, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ins, dels := NetEffects(tc.in)
			if len(ins) != tc.wantIns || len(dels) != tc.wantDels {
				t.Errorf("NetEffects(%v) = %v ins, %v dels; want %d, %d", tc.in, ins, dels, tc.wantIns, tc.wantDels)
			}
		})
	}
}
