package incremental

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpm/internal/graph"
	"gpm/internal/matrix"
)

func chain(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestUpdateString(t *testing.T) {
	if Ins(1, 2).String() != "+1->2" || Del(3, 4).String() != "-3->4" {
		t.Error("Update.String wrong")
	}
}

func TestDeleteBreaksPath(t *testing.T) {
	g := chain(4)
	dm := NewDynMatrix(g)
	aff, err := dm.DeleteEdge(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dm.Matrix().Dist(0, 3) != -1 || dm.Matrix().Dist(0, 1) != 1 {
		t.Errorf("distances after delete: %d %d", dm.Matrix().Dist(0, 3), dm.Matrix().Dist(0, 1))
	}
	// Changed pairs: (0,2),(0,3),(1,2),(1,3).
	if len(aff) != 4 {
		t.Errorf("AFF1 = %d pairs: %v", len(aff), aff)
	}
	for _, p := range aff {
		if p.New != -1 || p.Old < 0 {
			t.Errorf("pair %v should go finite->unreachable", p)
		}
	}
}

func TestInsertCreatesShortcut(t *testing.T) {
	g := chain(5)
	dm := NewDynMatrix(g)
	aff, err := dm.InsertEdge(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dm.Matrix().Dist(0, 3) != 1 || dm.Matrix().Dist(0, 4) != 2 {
		t.Error("shortcut not applied")
	}
	if len(aff) != 2 {
		t.Errorf("AFF1 = %v", aff)
	}
}

func TestInsertCreatesCycle(t *testing.T) {
	g := chain(3)
	dm := NewDynMatrix(g)
	aff, err := dm.InsertEdge(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := dm.Matrix()
	if m.Dist(2, 0) != 1 || m.Dist(1, 0) != 2 {
		t.Error("cycle distances wrong")
	}
	for v := 0; v < 3; v++ {
		if m.Cycle(v) != 3 {
			t.Errorf("Cycle(%d) = %d, want 3", v, m.Cycle(v))
		}
	}
	// Cycle changes must be reported as (x,x) pairs.
	cycPairs := 0
	for _, p := range aff {
		if p.Src == p.Dst {
			cycPairs++
			if p.Old != -1 || p.New != 3 {
				t.Errorf("cycle pair %v", p)
			}
		}
	}
	if cycPairs != 3 {
		t.Errorf("cycle pairs = %d, want 3", cycPairs)
	}
}

func TestSelfLoopUpdates(t *testing.T) {
	g := chain(2)
	dm := NewDynMatrix(g)
	aff, err := dm.InsertEdge(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dm.Matrix().Cycle(0) != 1 {
		t.Error("self loop cycle missing")
	}
	found := false
	for _, p := range aff {
		if p.Src == 0 && p.Dst == 0 && p.New == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("self-loop cycle pair missing: %v", aff)
	}
	if _, err := dm.DeleteEdge(0, 0); err != nil {
		t.Fatal(err)
	}
	if dm.Matrix().Cycle(0) != -1 {
		t.Error("cycle not cleared")
	}
}

func TestApplyValidation(t *testing.T) {
	g := chain(3)
	dm := NewDynMatrix(g)
	cases := [][]Update{
		{Del(0, 2)},            // edge absent
		{Ins(0, 1)},            // edge present
		{Ins(0, 9)},            // out of range
		{Ins(0, 2), Del(2, 0)}, // second update invalid
	}
	for _, ups := range cases {
		if _, err := dm.Apply(ups); err == nil {
			t.Errorf("Apply(%v) should fail", ups)
		}
	}
	// Rollback left the graph intact.
	if g.M() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Error("failed Apply mutated the graph")
	}
	if !dm.Matrix().Equal(matrix.New(g)) {
		t.Error("failed Apply mutated the matrix")
	}
}

func TestBatchInsertThenDeleteSameEdge(t *testing.T) {
	g := chain(3)
	dm := NewDynMatrix(g)
	aff, err := dm.Apply([]Update{Ins(0, 2), Del(0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(aff) != 0 {
		t.Errorf("no net change expected, got %v", aff)
	}
	if !dm.Matrix().Equal(matrix.New(g)) {
		t.Error("matrix drifted")
	}
}

func randomGraph(r *rand.Rand, n, m int) *graph.Graph {
	if m > n*n {
		m = n * n
	}
	g := graph.New(n)
	for g.M() < m {
		g.AddEdge(r.Intn(n), r.Intn(n))
	}
	return g
}

// Property: after arbitrary mixed batches, the maintained matrix equals a
// recomputed one, and AFF1 is exactly the set of changed entries.
func TestApplyAgainstRecompute(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		g := randomGraph(r, n, r.Intn(2*n))
		dm := NewDynMatrix(g)
		for round := 0; round < 4; round++ {
			before := dm.Matrix().Clone()
			var ups []Update
			batch := 1 + r.Intn(4)
			for len(ups) < batch {
				u, v := r.Intn(n), r.Intn(n)
				// Track the net edge state across the batch being built.
				has := g.HasEdge(u, v)
				for _, q := range ups {
					if q.U == u && q.V == v {
						has = q.Insert
					}
				}
				if has {
					ups = append(ups, Del(u, v))
				} else {
					ups = append(ups, Ins(u, v))
				}
			}
			aff, err := dm.Apply(ups)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			want := matrix.New(g)
			if !dm.Matrix().Equal(want) {
				t.Logf("seed %d round %d ups %v: matrix diverged: %v", seed, round, ups, dm.Matrix().Diff(want, 5))
				return false
			}
			// AFF1 must list exactly the changed entries.
			changed := map[[2]int32]bool{}
			for _, p := range aff {
				k := [2]int32{p.Src, p.Dst}
				if changed[k] {
					t.Logf("seed %d: duplicate pair %v", seed, p)
					return false
				}
				changed[k] = true
				var oldVal, newVal int32
				if p.Src == p.Dst {
					oldVal, newVal = int32(before.Cycle(int(p.Src))), int32(want.Cycle(int(p.Src)))
				} else {
					oldVal, newVal = int32(before.Dist(int(p.Src), int(p.Dst))), int32(want.Dist(int(p.Src), int(p.Dst)))
				}
				if p.Old != oldVal || p.New != newVal {
					t.Logf("seed %d: pair %v vs old %d new %d", seed, p, oldVal, newVal)
					return false
				}
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					var was, is int32
					if i == j {
						was, is = int32(before.Cycle(i)), int32(want.Cycle(i))
					} else {
						was, is = int32(before.Dist(i, j)), int32(want.Dist(i, j))
					}
					if was != is && !changed[[2]int32{int32(i), int32(j)}] {
						t.Logf("seed %d: missing AFF pair (%d,%d) %d->%d", seed, i, j, was, is)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: unit updates keep the matrix exact over long random walks.
func TestUnitUpdateWalk(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		g := randomGraph(r, n, r.Intn(n))
		dm := NewDynMatrix(g)
		for step := 0; step < 30; step++ {
			u, v := r.Intn(n), r.Intn(n)
			var err error
			if g.HasEdge(u, v) {
				_, err = dm.DeleteEdge(u, v)
			} else {
				_, err = dm.InsertEdge(u, v)
			}
			if err != nil {
				return false
			}
		}
		return dm.Matrix().Equal(matrix.New(g))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
