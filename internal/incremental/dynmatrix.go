// Package incremental implements the paper's §4: incremental maintenance
// of the distance matrix under edge insertions and deletions (procedures
// UpdateM and UpdateBM, built on Ramalingam–Reps SWSF-FP), and on top of
// it the incremental matching algorithms Match⁻, Match⁺ and IncMatch with
// the O(|AFF1|·|AFF2|²) guarantee for DAG patterns.
package incremental

import (
	"container/heap"
	"fmt"

	"gpm/internal/graph"
	"gpm/internal/matrix"
)

// Update is a single edge insertion or deletion.
type Update struct {
	Insert bool
	U, V   int
}

// Ins returns an edge-insertion update.
func Ins(u, v int) Update { return Update{Insert: true, U: u, V: v} }

// Del returns an edge-deletion update.
func Del(u, v int) Update { return Update{Insert: false, U: u, V: v} }

// String renders the update as "+u->v" or "-u->v".
func (u Update) String() string {
	sign := "-"
	if u.Insert {
		sign = "+"
	}
	return fmt.Sprintf("%s%d->%d", sign, u.U, u.V)
}

// Pair records one AFF1 element: the distance from Src to Dst changed
// from Old to New (-1 = unreachable). A pair with Src == Dst reports a
// change of the shortest-cycle length through that node, which is what
// "nonempty self-distance" means for bounded simulation.
type Pair struct {
	Src, Dst int32
	Old, New int32
}

const inf = int32(1) << 30

// DynMatrix couples a data graph with its distance matrix and keeps the
// two consistent under updates. It is the paper's maintained M: "besides
// S_i, one needs to maintain a distance matrix M" (§4.1). Apply returns
// AFF1, the set of source–sink pairs whose distance changed.
type DynMatrix struct {
	g *graph.Graph
	m *matrix.Matrix

	// Per-sink SWSF-FP scratch. Epoch stamps make per-sink reset O(1):
	// an entry is live only when its stamp equals the current epoch, and
	// stale reads fall back to the matrix column. This keeps each sink's
	// cost proportional to the nodes actually touched (the Ramalingam–
	// Reps boundedness), not to |V|.
	d       []int32
	rhs     []int32
	stamp   []int32
	epoch   int32
	touched []int32
	pq      pairHeap
}

// NewDynMatrix computes the matrix of g and wraps both. The graph must be
// mutated only through Apply/InsertEdge/DeleteEdge from then on.
func NewDynMatrix(g *graph.Graph) *DynMatrix {
	return &DynMatrix{g: g, m: matrix.New(g)}
}

// Graph returns the underlying (live) data graph.
func (dm *DynMatrix) Graph() *graph.Graph { return dm.g }

// Matrix returns the maintained distance matrix.
func (dm *DynMatrix) Matrix() *matrix.Matrix { return dm.m }

// InsertEdge applies a single insertion (the unit case behind Match⁺).
func (dm *DynMatrix) InsertEdge(u, v int) ([]Pair, error) {
	return dm.Apply([]Update{Ins(u, v)})
}

// DeleteEdge applies a single deletion (the unit case behind Match⁻,
// procedure UpdateM).
func (dm *DynMatrix) DeleteEdge(u, v int) ([]Pair, error) {
	return dm.Apply([]Update{Del(u, v)})
}

// Apply applies a batch of updates (procedure UpdateBM): it validates and
// performs the structural changes, then runs one SWSF-FP pass per
// potentially dirty sink, touching only nodes whose distance to that sink
// is affected. It returns every changed pair, including cycle-length
// changes as (x, x) pairs. On a validation error the graph is unchanged.
func (dm *DynMatrix) Apply(updates []Update) ([]Pair, error) {
	if err := dm.applyStructural(updates); err != nil {
		return nil, err
	}

	// Dirty sink candidates. For a deletion (u,v): sinks reachable from v
	// under OLD distances with d(u,y) == 1 + d(v,y) (the edge lay on a
	// shortest path). For an insertion (u,v): sinks reachable from v in
	// the NEW graph with d(u,y) > 1 + d(v,y) (the edge creates a shortcut).
	sinkSet := make(map[int32]struct{})
	for _, up := range updates {
		if up.Insert {
			// Any decrease routes its new shortest path through some
			// inserted edge (u,v), so the sink is reachable from v in the
			// new graph. fixColumn's seed check rejects the rest cheaply.
			s := graph.GetScratch(dm.g.N())
			dm.g.BFSDistInto(up.V, -1, s.Dist, &s.Queue)
			for y := 0; y < dm.g.N(); y++ {
				if s.Dist[y] >= 0 {
					sinkSet[int32(y)] = struct{}{}
				}
			}
			s.Put()
		} else {
			row := dm.m.Row(up.V) // old distances from v
			for y, dvy := range row {
				if dvy < 0 {
					continue
				}
				duy := dm.m.Dist(up.U, y)
				if duy >= 0 && int32(duy) == dvy+1 {
					sinkSet[int32(y)] = struct{}{}
				}
			}
		}
	}

	var aff []Pair
	for y := range sinkSet {
		aff = dm.fixColumn(int(y), updates, aff)
	}

	aff = dm.refreshCycles(updates, aff)
	return aff, nil
}

// applyStructural validates and applies edge changes, rolling back on the
// first error so the graph is untouched on failure.
func (dm *DynMatrix) applyStructural(updates []Update) error {
	return ApplyToGraph(dm.g, updates)
}

// ApplyToGraph validates and applies a batch of edge updates directly to
// g, rolling back on the first error so the graph is untouched on
// failure. The engine layer uses it when no distance matrix is being
// maintained; DynMatrix.Apply uses it as its structural step.
func ApplyToGraph(g *graph.Graph, updates []Update) error {
	var err error
	for i, up := range updates {
		if up.U < 0 || up.U >= g.N() || up.V < 0 || up.V >= g.N() {
			err = fmt.Errorf("incremental: update %v out of range", up)
		} else if up.Insert {
			if !g.AddEdge(up.U, up.V) {
				err = fmt.Errorf("incremental: inserting existing edge %d->%d", up.U, up.V)
			}
		} else {
			if !g.RemoveEdge(up.U, up.V) {
				err = fmt.Errorf("incremental: deleting missing edge %d->%d", up.U, up.V)
			}
		}
		if err != nil {
			for j := i - 1; j >= 0; j-- { // roll back in reverse
				if updates[j].Insert {
					g.RemoveEdge(updates[j].U, updates[j].V)
				} else {
					g.AddEdge(updates[j].U, updates[j].V)
				}
			}
			return err
		}
	}
	return nil
}

// touch brings x into the current epoch, initialising d and rhs from the
// matrix column of y.
func (dm *DynMatrix) touch(x, y int) {
	if dm.stamp[x] == dm.epoch {
		return
	}
	dm.stamp[x] = dm.epoch
	dm.touched = append(dm.touched, int32(x))
	dx := dm.m.Dist(x, y)
	if dx < 0 {
		dm.d[x] = inf
		dm.rhs[x] = inf
	} else {
		dm.d[x] = int32(dx)
		dm.rhs[x] = int32(dx)
	}
}

// fixColumn runs SWSF-FP for the single-sink problem "distance to y" over
// the updated graph, seeded with the old column of the matrix. Only nodes
// whose value changes (plus their immediate frontier) are touched — the
// boundedness property of Ramalingam–Reps. Changed pairs are appended to
// aff, and the matrix column is updated in place.
func (dm *DynMatrix) fixColumn(y int, updates []Update, aff []Pair) []Pair {
	// Cheap seed check first: only sources of changed edges can be locally
	// inconsistent at the start.
	inconsistent := false
	for _, up := range updates {
		if dm.rhsOf(up.U, y) != dm.curD(up.U, y) {
			inconsistent = true
			break
		}
	}
	if !inconsistent {
		return aff
	}

	n := dm.g.N()
	if dm.d == nil || len(dm.d) != n {
		dm.d = make([]int32, n)
		dm.rhs = make([]int32, n)
		dm.stamp = make([]int32, n)
		for i := range dm.stamp {
			dm.stamp[i] = -1
		}
		dm.epoch = 0
	}
	dm.epoch++
	dm.touched = dm.touched[:0]
	dm.pq = dm.pq[:0]

	push := func(x int) {
		k := dm.d[x]
		if dm.rhs[x] < k {
			k = dm.rhs[x]
		}
		heap.Push(&dm.pq, pqItem{key: k, node: int32(x)})
	}
	recomputeRhs := func(x int) {
		dm.touch(x, y)
		if x == y {
			dm.rhs[x] = 0
			return
		}
		best := inf
		for _, w := range dm.g.Out(x) {
			dm.touch(int(w), y)
			if dw := dm.d[w]; dw+1 < best {
				best = dw + 1
			}
		}
		if best > inf {
			best = inf
		}
		dm.rhs[x] = best
	}

	for _, up := range updates {
		if up.U == y {
			continue
		}
		recomputeRhs(up.U)
		if dm.rhs[up.U] != dm.d[up.U] {
			push(up.U)
		}
	}

	for len(dm.pq) > 0 {
		it := heap.Pop(&dm.pq).(pqItem)
		x := int(it.node)
		if dm.d[x] == dm.rhs[x] {
			continue // already consistent; stale queue entry
		}
		key := dm.d[x]
		if dm.rhs[x] < key {
			key = dm.rhs[x]
		}
		if it.key != key {
			continue // stale
		}
		if dm.rhs[x] < dm.d[x] {
			// Overconsistent: settle downward.
			dm.d[x] = dm.rhs[x]
			for _, p := range dm.g.In(x) {
				if int(p) == y {
					continue
				}
				dm.touch(int(p), y)
				if dm.d[x]+1 < dm.rhs[p] {
					dm.rhs[p] = dm.d[x] + 1
					if dm.rhs[p] != dm.d[p] {
						push(int(p))
					}
				}
			}
		} else {
			// Underconsistent: raise, then re-evaluate x and predecessors.
			dm.d[x] = inf
			for _, p := range dm.g.In(x) {
				if int(p) == y {
					continue
				}
				recomputeRhs(int(p))
				if dm.rhs[p] != dm.d[p] {
					push(int(p))
				}
			}
			recomputeRhs(x)
			if dm.rhs[x] != dm.d[x] {
				push(x)
			}
		}
	}

	for _, xi := range dm.touched {
		x := int(xi)
		newD := dm.d[x]
		old := dm.m.Dist(x, y)
		newOut := int32(-1)
		if newD < inf {
			newOut = newD
		}
		if int32(old) != newOut {
			dm.m.Set(x, y, newOut)
			aff = append(aff, Pair{Src: int32(x), Dst: int32(y), Old: int32(old), New: newOut})
		}
	}
	return aff
}

// curD reads the current matrix entry as an SWSF value (inf for -1).
func (dm *DynMatrix) curD(x, y int) int32 {
	d := dm.m.Dist(x, y)
	if d < 0 {
		return inf
	}
	return int32(d)
}

// rhsOf computes the one-step lookahead of x toward sink y over the
// current graph and matrix, without scratch state.
func (dm *DynMatrix) rhsOf(x, y int) int32 {
	if x == y {
		return 0
	}
	best := inf
	for _, w := range dm.g.Out(x) {
		dw := dm.curD(int(w), y)
		if dw+1 < best {
			best = dw + 1
		}
	}
	if best > inf {
		best = inf
	}
	return best
}

// refreshCycles recomputes the shortest-cycle entries invalidated by the
// batch: nodes whose out-edges changed, and nodes b with a changed pair
// (a, b) where the edge (b, a) exists. Changes surface as (x, x) pairs.
func (dm *DynMatrix) refreshCycles(updates []Update, aff []Pair) []Pair {
	dirty := make(map[int32]struct{})
	for _, up := range updates {
		dirty[int32(up.U)] = struct{}{}
	}
	for _, p := range aff {
		if dm.g.HasEdge(int(p.Dst), int(p.Src)) {
			dirty[p.Dst] = struct{}{}
		}
	}
	for x := range dirty {
		old := int32(dm.m.Cycle(int(x)))
		if nw := dm.m.RecomputeCycle(dm.g, int(x)); nw != old {
			aff = append(aff, Pair{Src: x, Dst: x, Old: old, New: nw})
		}
	}
	return aff
}

// pqItem / pairHeap implement the SWSF-FP priority queue with lazy stale
// entries.
type pqItem struct {
	key  int32
	node int32
}

type pairHeap []pqItem

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(pqItem)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
