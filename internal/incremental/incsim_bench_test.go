package incremental

import (
	"testing"

	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/value"
)

// benchBatches pre-builds toggle pairs (forward batch + inverse batch)
// so a benchmark can apply updates forever without drifting the graph.
func benchBatches(g *graph.Graph, size, count int) [][]Update {
	var out [][]Update
	edges := g.EdgeList()
	for i := 0; i < count; i++ {
		var fwd, inv []Update
		for j := 0; j < size; j++ {
			e := edges[(i*size+j)%len(edges)]
			fwd = append(fwd, Del(int(e[0]), int(e[1])))
			inv = append(inv, Ins(int(e[0]), int(e[1])))
		}
		// Reverse the inverse so the pair is a true undo.
		for l, r := 0, len(inv)-1; l < r; l, r = l+1, r-1 {
			inv[l], inv[r] = inv[r], inv[l]
		}
		out = append(out, fwd, inv)
	}
	return out
}

// BenchmarkIncDualSim measures the steady-state incremental dual-
// simulation delta path: single-edge and batch updates against a
// maintained 400-node relation.
func BenchmarkIncDualSim(b *testing.B) {
	for _, size := range []int{1, 16} {
		name := "single-edge"
		if size > 1 {
			name = "batch-16"
		}
		b.Run(name, func(b *testing.B) {
			p, g, _ := randomCase(7, 400, 1200, 4, 5)
			m, err := NewSimMatcher(p, g, false)
			if err != nil {
				b.Fatal(err)
			}
			batches := benchBatches(g, size, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Apply(batches[i%len(batches)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIncStrongSim measures incremental strong-simulation
// maintenance: affected-ball re-evaluation against a maintained
// 400-node relation.
func BenchmarkIncStrongSim(b *testing.B) {
	for _, size := range []int{1, 16} {
		name := "single-edge"
		if size > 1 {
			name = "batch-16"
		}
		b.Run(name, func(b *testing.B) {
			p, g, _ := randomCase(7, 400, 1200, 4, 5)
			m, err := NewStrongMatcher(p, g, 4)
			if err != nil {
				b.Fatal(err)
			}
			batches := benchBatches(g, size, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Apply(batches[i%len(batches)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The steady-state sim/dual delta path must not allocate: counters,
// worklists, closure marks and net-effect buffers are all retained
// between batches. The fixture keeps every membership stable across the
// toggle (b2 keeps a second witness), so the deltas are empty and the
// whole Apply runs on reused scratch.
func TestIncSimApplyZeroAllocs(t *testing.T) {
	g := graph.New(4)
	g.SetAttr(0, graph.Attrs{"label": value.Str("A")}) // a
	g.SetAttr(1, graph.Attrs{"label": value.Str("B")}) // b1
	g.SetAttr(2, graph.Attrs{"label": value.Str("B")}) // b2
	g.SetAttr(3, graph.Attrs{"label": value.Str("A")}) // c
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(3, 2)
	g.AddEdge(3, 1)
	p := pattern.New()
	a := p.AddNode(pattern.Label("A"))
	bn := p.AddNode(pattern.Label("B"))
	p.MustAddEdge(a, bn, 1)

	m, err := NewSimMatcher(p, g, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Pairs() != 4 {
		t.Fatalf("fixture relation has %d pairs, want 4", m.Pairs())
	}
	del := []Update{Del(0, 2)}
	ins := []Update{Ins(0, 2)}
	// Warm up once so lazily grown scratch reaches steady state.
	if _, err := m.Apply(del); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(ins); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := m.Apply(del); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Apply(ins); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state SimMatcher.Apply allocates %.1f times per toggle, want 0", allocs)
	}
	if m.Pairs() != 4 {
		t.Fatalf("toggles drifted the relation to %d pairs", m.Pairs())
	}
}
