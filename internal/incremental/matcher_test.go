package incremental

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpm/internal/core"
	"gpm/internal/fixtures"
	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/value"
)

func relEqual(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestAppendixMatchMinus replays the appendix's Match⁻ running example:
// deleting (SE, (HR,SE)) from Fig. 2's G1 removes exactly (DM, DM_l) and
// (SE, SE) from the match, leaving the rest untouched.
func TestAppendixMatchMinus(t *testing.T) {
	c := fixtures.SocialMatching()
	dm := NewDynMatrix(c.G)
	m, err := NewMatcher(c.P, dm)
	if err != nil {
		t.Fatal(err)
	}
	if !relEqual(m.Relation(), c.Want) {
		t.Fatalf("initial relation: %v", m.Relation())
	}
	delta, err := m.Apply([]Update{Del(fixtures.G1SE, fixtures.G1HRSE)})
	if err != nil {
		t.Fatal(err)
	}
	if delta.Recomputed {
		t.Error("deletion-only batch must not trigger the cyclic fallback")
	}
	if len(delta.Added) != 0 {
		t.Errorf("deletion added pairs: %v", delta.Added)
	}
	removed := map[MatchPair]bool{}
	for _, p := range delta.Removed {
		removed[p] = true
	}
	wantRemoved := []MatchPair{
		{int32(fixtures.P1DM), int32(fixtures.G1DMl)},
		{int32(fixtures.P1SE), int32(fixtures.G1SE)},
	}
	if len(removed) != len(wantRemoved) {
		t.Fatalf("Removed = %v, want %v", delta.Removed, wantRemoved)
	}
	for _, w := range wantRemoved {
		if !removed[w] {
			t.Errorf("missing removed pair %v", w)
		}
	}
	if !relEqual(m.Relation(), fixtures.SocialMatchingAfterDeletion()) {
		t.Errorf("relation after deletion: %v", m.Relation())
	}
	if !m.OK() {
		t.Error("match should still hold")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestInsertRestores: re-inserting the deleted edge restores the original
// match. P1 is cyclic, so the insertion goes through the flagged
// fallback, still producing the exact relation.
func TestInsertRestores(t *testing.T) {
	c := fixtures.SocialMatching()
	dm := NewDynMatrix(c.G)
	m, _ := NewMatcher(c.P, dm)
	if _, err := m.Apply([]Update{Del(fixtures.G1SE, fixtures.G1HRSE)}); err != nil {
		t.Fatal(err)
	}
	delta, err := m.Apply([]Update{Ins(fixtures.G1SE, fixtures.G1HRSE)})
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Recomputed {
		t.Error("cyclic pattern + insertion should fall back")
	}
	if !relEqual(m.Relation(), c.Want) {
		t.Errorf("relation not restored: %v", m.Relation())
	}
	if len(delta.Added) != 2 || len(delta.Removed) != 0 {
		t.Errorf("delta = +%v -%v", delta.Added, delta.Removed)
	}
}

// dagFixture builds a DAG pattern (chain with bounds) and a data graph
// where insertions genuinely add matches, exercising Match⁺ without the
// fallback.
func dagFixture() (*pattern.Pattern, *graph.Graph) {
	p := pattern.New()
	a := p.AddNode(pattern.Label("A"))
	b := p.AddNode(pattern.Label("B"))
	c := p.AddNode(pattern.Label("C"))
	p.MustAddEdge(a, b, 2)
	p.MustAddEdge(b, c, 2)
	g := graph.New(0)
	for _, l := range []string{"A", "B", "C", "A", "B"} {
		g.AddNode(graph.Attrs{"label": value.Str(l)})
	}
	g.AddEdge(0, 1) // A0 -> B1
	g.AddEdge(1, 2) // B1 -> C2
	// A3 and B4 dangle: no edges yet.
	return p, g
}

func TestMatchPlusOnDAG(t *testing.T) {
	p, g := dagFixture()
	dm := NewDynMatrix(g)
	m, err := NewMatcher(p, dm)
	if err != nil {
		t.Fatal(err)
	}
	if m.Pairs() != 3 {
		t.Fatalf("initial pairs = %d, want 3", m.Pairs())
	}
	// B4 -> C2 makes B4 a match for b; A3 -> B4 then adds A3 for a.
	delta, err := m.Apply([]Update{Ins(4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if delta.Recomputed {
		t.Error("DAG insertion must not fall back")
	}
	if len(delta.Added) != 1 || delta.Added[0] != (MatchPair{1, 4}) {
		t.Errorf("Added = %v, want [(1,4)]", delta.Added)
	}
	delta, err = m.Apply([]Update{Ins(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Added) != 1 || delta.Added[0] != (MatchPair{0, 3}) {
		t.Errorf("Added = %v, want [(0,3)]", delta.Added)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Out-degree transition: deleting B4's only out-edge kills candidacy
	// of B4 (b needs an out-edge) and cascades to A3.
	delta, err = m.Apply([]Update{Del(4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Removed) != 2 {
		t.Errorf("Removed = %v, want (1,4) and (0,3)", delta.Removed)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestMatcherRejectsColored(t *testing.T) {
	p := pattern.New()
	p.AddNode(nil)
	p.AddNode(nil)
	if _, err := p.AddColoredEdge(0, 1, 1, "c"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMatcher(p, NewDynMatrix(graph.New(2))); err == nil {
		t.Error("colored pattern accepted")
	}
}

func TestMatcherInvalidUpdateLeavesStateIntact(t *testing.T) {
	c := fixtures.Collaboration()
	dm := NewDynMatrix(c.G)
	m, _ := NewMatcher(c.P, dm)
	before := m.Relation()
	if _, err := m.Apply([]Update{Del(0, 5)}); err == nil {
		t.Fatal("deleting missing edge should fail")
	}
	if !relEqual(m.Relation(), before) {
		t.Error("failed update changed the relation")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func randomLabeledGraph(r *rand.Rand, n, m, labels int) *graph.Graph {
	if m > n*n {
		m = n * n
	}
	g := graph.New(0)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Attrs{"label": value.Str(string(rune('A' + r.Intn(labels))))})
	}
	for g.M() < m {
		g.AddEdge(r.Intn(n), r.Intn(n))
	}
	return g
}

func randomDAGPattern(r *rand.Rand, np, me, labels, maxBound int) *pattern.Pattern {
	p := pattern.New()
	for i := 0; i < np; i++ {
		p.AddNode(pattern.Label(string(rune('A' + r.Intn(labels)))))
	}
	for tries := 0; tries < 4*me && p.EdgeCount() < me; tries++ {
		from, to := r.Intn(np), r.Intn(np)
		if from >= to {
			continue // ascending edges keep it a DAG
		}
		b := 1 + r.Intn(maxBound)
		if r.Intn(5) == 0 {
			b = pattern.Unbounded
		}
		p.AddEdge(from, to, b)
	}
	return p
}

func randomCyclicPattern(r *rand.Rand, np, me, labels, maxBound int) *pattern.Pattern {
	p := pattern.New()
	for i := 0; i < np; i++ {
		p.AddNode(pattern.Label(string(rune('A' + r.Intn(labels)))))
	}
	for tries := 0; tries < 4*me && p.EdgeCount() < me; tries++ {
		p.AddEdge(r.Intn(np), r.Intn(np), 1+r.Intn(maxBound))
	}
	return p
}

func randomBatch(r *rand.Rand, g *graph.Graph, size int) []Update {
	n := g.N()
	state := map[[2]int]bool{}
	var ups []Update
	for len(ups) < size {
		u, v := r.Intn(n), r.Intn(n)
		key := [2]int{u, v}
		has, tracked := state[key]
		if !tracked {
			has = g.HasEdge(u, v)
		}
		if has {
			ups = append(ups, Del(u, v))
		} else {
			ups = append(ups, Ins(u, v))
		}
		state[key] = !has
	}
	return ups
}

// Property: over random mixed batches, the incremental matcher stays
// exactly equal to a from-scratch core.Match — for DAG patterns (pure
// incremental path) and cyclic patterns (fallback path) alike.
func TestMatcherAgainstBatch(t *testing.T) {
	run := func(seed int64, cyclic bool) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		g := randomLabeledGraph(r, n, r.Intn(2*n), 3)
		var p *pattern.Pattern
		if cyclic {
			p = randomCyclicPattern(r, 1+r.Intn(4), 1+r.Intn(5), 3, 3)
		} else {
			p = randomDAGPattern(r, 1+r.Intn(4), 1+r.Intn(5), 3, 3)
		}
		dm := NewDynMatrix(g)
		m, err := NewMatcher(p, dm)
		if err != nil {
			return false
		}
		for round := 0; round < 5; round++ {
			ups := randomBatch(r, g, 1+r.Intn(4))
			delta, err := m.Apply(ups)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			want, err := core.Match(p, g)
			if err != nil {
				return false
			}
			if m.OK() != want.OK() || !relEqual(m.Relation(), want.Relation()) {
				t.Logf("seed %d round %d cyclic=%v ups=%v:\n inc %v (ok=%v)\n bat %v (ok=%v)",
					seed, round, cyclic, ups, m.Relation(), m.OK(), want.Relation(), want.OK())
				return false
			}
			if err := m.CheckInvariants(); err != nil {
				t.Logf("seed %d: invariants: %v", seed, err)
				return false
			}
			if delta.Aff2 != len(delta.Added)+len(delta.Removed) {
				return false
			}
		}
		return true
	}
	t.Run("dag", func(t *testing.T) {
		if err := quick.Check(func(seed int64) bool { return run(seed, false) },
			&quick.Config{MaxCount: 60}); err != nil {
			t.Error(err)
		}
	})
	t.Run("cyclic", func(t *testing.T) {
		if err := quick.Check(func(seed int64) bool { return run(seed, true) },
			&quick.Config{MaxCount: 60}); err != nil {
			t.Error(err)
		}
	})
}

// Property: deletion-only batches never add pairs and never fall back,
// even for cyclic patterns (Lemma 4.3 applies to general patterns).
func TestDeletionOnlyNeverFallsBack(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		g := randomLabeledGraph(r, n, n+r.Intn(2*n), 3)
		p := randomCyclicPattern(r, 1+r.Intn(4), 1+r.Intn(5), 3, 3)
		dm := NewDynMatrix(g)
		m, err := NewMatcher(p, dm)
		if err != nil {
			return false
		}
		for g.M() > 0 {
			es := g.EdgeList()
			e := es[r.Intn(len(es))]
			delta, err := m.Apply([]Update{Del(int(e[0]), int(e[1]))})
			if err != nil || delta.Recomputed || len(delta.Added) != 0 {
				t.Logf("seed %d: err=%v recomputed=%v added=%v", seed, err, delta.Recomputed, delta.Added)
				return false
			}
			want, _ := core.Match(p, g)
			if !relEqual(m.Relation(), want.Relation()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: insertion-only batches never remove pairs on DAG patterns.
func TestInsertionOnlyMonotone(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		g := randomLabeledGraph(r, n, r.Intn(n), 2)
		p := randomDAGPattern(r, 1+r.Intn(3), 1+r.Intn(4), 2, 2)
		dm := NewDynMatrix(g)
		m, err := NewMatcher(p, dm)
		if err != nil {
			return false
		}
		for round := 0; round < 6; round++ {
			u, v := r.Intn(n), r.Intn(n)
			if g.HasEdge(u, v) {
				continue
			}
			delta, err := m.Apply([]Update{Ins(u, v)})
			if err != nil || delta.Recomputed || len(delta.Removed) != 0 {
				return false
			}
			want, _ := core.Match(p, g)
			if !relEqual(m.Relation(), want.Relation()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestStaleRemovalResurrection is the regression test for a worklist bug:
// within one batch, a pair's only support moves out of bound while new
// support moves in. Depending on AFF1 processing order the support
// counter dips to zero (queuing a removal) and recovers; the queued
// removal must be discarded at pop time, not applied. Repeated runs vary
// map iteration order.
func TestStaleRemovalResurrection(t *testing.T) {
	for i := 0; i < 40; i++ {
		g := graph.New(0)
		a := g.AddNode(graph.Attrs{"label": value.Str("A")})
		b1 := g.AddNode(graph.Attrs{"label": value.Str("B")})
		b2 := g.AddNode(graph.Attrs{"label": value.Str("B")})
		g.AddEdge(a, b1)
		g.AddEdge(b1, a) // keep b1's out-degree nonzero (irrelevant to pattern)
		g.AddEdge(b2, a)
		p := pattern.New()
		pa := p.AddNode(pattern.Label("A"))
		pb := p.AddNode(pattern.Label("B"))
		p.MustAddEdge(pa, pb, 1)

		dm := NewDynMatrix(g)
		m, err := NewMatcher(p, dm)
		if err != nil {
			t.Fatal(err)
		}
		if !m.OK() || m.Pairs() != 3 {
			t.Fatalf("initial: ok=%v pairs=%d", m.OK(), m.Pairs())
		}
		// One batch: A loses its edge to b1 but gains one to b2. (pa, a)
		// must survive — its support merely moved.
		delta, err := m.Apply([]Update{Del(a, b1), Ins(a, b2)})
		if err != nil {
			t.Fatal(err)
		}
		if !m.OK() {
			t.Fatalf("iteration %d: pair (pa,a) was wrongly evicted; delta=%+v", i, delta)
		}
		want, _ := core.Match(p, g)
		if !relEqual(m.Relation(), want.Relation()) {
			t.Fatalf("iteration %d: relation diverged", i)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// Property: Delta.Added/Removed is exactly the set difference between the
// relation before and after the batch — no duplicates, no misses — on
// both the incremental path (DAG) and the fallback path (cyclic).
func TestDeltaExactness(t *testing.T) {
	run := func(seed int64, cyclic bool) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(9)
		g := randomLabeledGraph(r, n, r.Intn(2*n), 3)
		var p *pattern.Pattern
		if cyclic {
			p = randomCyclicPattern(r, 1+r.Intn(3), 1+r.Intn(4), 3, 3)
		} else {
			p = randomDAGPattern(r, 1+r.Intn(3), 1+r.Intn(4), 3, 3)
		}
		dm := NewDynMatrix(g)
		m, err := NewMatcher(p, dm)
		if err != nil {
			return false
		}
		for round := 0; round < 4; round++ {
			before := map[MatchPair]bool{}
			for u, l := range m.Relation() {
				for _, x := range l {
					before[MatchPair{int32(u), x}] = true
				}
			}
			delta, err := m.Apply(randomBatch(r, g, 1+r.Intn(4)))
			if err != nil {
				return false
			}
			after := map[MatchPair]bool{}
			for u, l := range m.Relation() {
				for _, x := range l {
					after[MatchPair{int32(u), x}] = true
				}
			}
			seenAdd := map[MatchPair]bool{}
			for _, pr := range delta.Added {
				if seenAdd[pr] || before[pr] || !after[pr] {
					t.Logf("seed %d: bogus Added %v", seed, pr)
					return false
				}
				seenAdd[pr] = true
			}
			seenRem := map[MatchPair]bool{}
			for _, pr := range delta.Removed {
				if seenRem[pr] || !before[pr] || after[pr] {
					t.Logf("seed %d: bogus Removed %v", seed, pr)
					return false
				}
				seenRem[pr] = true
			}
			for pr := range after {
				if !before[pr] && !seenAdd[pr] {
					t.Logf("seed %d: missed Added %v", seed, pr)
					return false
				}
			}
			for pr := range before {
				if !after[pr] && !seenRem[pr] {
					t.Logf("seed %d: missed Removed %v", seed, pr)
					return false
				}
			}
			if delta.Aff2 != len(delta.Added)+len(delta.Removed) {
				return false
			}
		}
		return true
	}
	t.Run("dag", func(t *testing.T) {
		if err := quick.Check(func(s int64) bool { return run(s, false) }, &quick.Config{MaxCount: 40}); err != nil {
			t.Error(err)
		}
	})
	t.Run("cyclic", func(t *testing.T) {
		if err := quick.Check(func(s int64) bool { return run(s, true) }, &quick.Config{MaxCount: 40}); err != nil {
			t.Error(err)
		}
	})
}
