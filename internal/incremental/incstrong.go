package incremental

import (
	"context"
	"fmt"
	"sort"

	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/topo"
)

// StrongMatcher maintains the strong-simulation relation of an
// all-bounds-one pattern over a mutating data graph. Strong simulation
// is a union over accepted balls (topo.StrongSim), and balls are local:
// the ball of center w with radius r (the pattern component's undirected
// diameter) can only change if some node the batch touched — an endpoint
// of a net-inserted or net-deleted edge, or a data node whose dual-
// simulation membership changed — lies within undirected distance r of
// w. Every deleted edge's endpoints are themselves touched, so one
// bounded multi-source BFS over the post-update graph finds every center
// whose ball could differ in either the old or the new graph.
//
// The matcher keeps, per accepted ball, its contributed (pattern node,
// data node) pairs, and a per-pair count of contributing balls; the
// relation is the pairs with positive counts. An update batch drives the
// embedded dual SimMatcher first (the prefilter and center source), then
// drops the contributions of every affected ball, re-evaluates the
// affected balls that are still candidate centers on a worker pool, and
// merges the new contributions back into the counts. Untouched balls
// keep their stored contributions, and counting is order-independent, so
// the maintained relation is bit-identical to a full topo.StrongSim
// recompute at every worker count.
type StrongMatcher struct {
	p       *pattern.Pattern
	g       *graph.Graph
	dual    *SimMatcher
	workers int

	comps []topo.Component
	maxR  int

	counts  [][]int32             // contributing-ball count per (u, x)
	size    []int                 // per pattern node: data nodes with count > 0
	contrib map[uint64][][2]int32 // (comp, center) -> accepted-ball pairs

	dist           []int32 // multi-source BFS scratch; -1-filled between batches
	queue          []int32
	insBuf, delBuf []Update
}

// ballTask is one (component, center) ball to evaluate.
type ballTask struct {
	comp   int
	center int32
}

func ballKey(comp int, center int32) uint64 {
	return uint64(uint32(comp))<<32 | uint64(uint32(center))
}

// NewStrongMatcher computes the initial strong simulation of p over g
// and retains the per-ball contributions for incremental maintenance.
// The graph must be mutated only through Apply (or an engine's Update)
// from then on. workers bounds the ball-evaluation parallelism; values
// <= 1 evaluate sequentially. The same pattern restrictions as
// NewSimMatcher apply (all bounds 1, no edge colors).
func NewStrongMatcher(p *pattern.Pattern, g *graph.Graph, workers int) (*StrongMatcher, error) {
	dual, err := NewSimMatcher(p, g, false)
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	np, n := p.N(), g.N()
	m := &StrongMatcher{
		p:       p,
		g:       g,
		dual:    dual,
		workers: workers,
		comps:   topo.Components(p),
		counts:  make([][]int32, np),
		size:    make([]int, np),
		contrib: make(map[uint64][][2]int32),
		dist:    make([]int32, n),
	}
	for _, c := range m.comps {
		if c.Radius > m.maxR {
			m.maxR = c.Radius
		}
	}
	for u := 0; u < np; u++ {
		m.counts[u] = make([]int32, n)
	}
	for i := range m.dist {
		m.dist[i] = -1
	}
	// Initial sweep: every candidate center of every component.
	f := g.Freeze()
	var tasks []ballTask
	for ci := range m.comps {
		for x := 0; x < n; x++ {
			if m.isCenter(ci, x) {
				tasks = append(tasks, ballTask{ci, int32(x)})
			}
		}
	}
	m.evalTasks(f, tasks, nil)
	return m, nil
}

// Pattern returns the maintained pattern.
func (m *StrongMatcher) Pattern() *pattern.Pattern { return m.p }

// OK reports whether every pattern node currently has a match.
func (m *StrongMatcher) OK() bool {
	for _, s := range m.size {
		if s == 0 {
			return false
		}
	}
	return true
}

// Pairs returns |S|, the current size of the maintained relation.
func (m *StrongMatcher) Pairs() int {
	total := 0
	for _, s := range m.size {
		total += s
	}
	return total
}

// Mat returns the sorted data nodes currently matching pattern node u.
func (m *StrongMatcher) Mat(u int) []int32 {
	var out []int32
	for x, c := range m.counts[u] {
		if c > 0 {
			out = append(out, int32(x))
		}
	}
	return out
}

// Relation snapshots the whole maintained relation.
func (m *StrongMatcher) Relation() [][]int32 {
	out := make([][]int32, m.p.N())
	for u := range out {
		out[u] = m.Mat(u)
	}
	return out
}

// isCenter reports whether x is a candidate center for component ci: a
// member of the dual image of some pattern node of the component.
func (m *StrongMatcher) isCenter(ci, x int) bool {
	for _, u := range m.comps[ci].Nodes {
		if m.dual.sim[u][x] {
			return true
		}
	}
	return false
}

// touch records the pre-batch membership of (u, x) the first time the
// batch touches it, then applies the count delta.
func (m *StrongMatcher) bump(u, x int32, by int32, oldState map[MatchPair]bool) {
	if oldState != nil {
		pr := MatchPair{u, x}
		if _, seen := oldState[pr]; !seen {
			oldState[pr] = m.counts[u][x] > 0
		}
	}
	was := m.counts[u][x] > 0
	m.counts[u][x] += by
	now := m.counts[u][x] > 0
	switch {
	case !was && now:
		m.size[u]++
	case was && !now:
		m.size[u]--
	}
}

// evalTasks evaluates the given balls across the worker pool against
// snapshot f and merges the accepted contributions. Results are stored
// per task and merged sequentially, so the outcome is independent of the
// worker count and scheduling.
func (m *StrongMatcher) evalTasks(f *graph.Frozen, tasks []ballTask, oldState map[MatchPair]bool) {
	if len(tasks) == 0 {
		return
	}
	workers := m.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	evs := make([]*topo.BallEvaluator, workers)
	for w := range evs {
		evs[w] = topo.NewBallEvaluator(context.Background(), m.p, f, m.dual.sim)
	}
	defer func() {
		for _, ev := range evs {
			ev.Close()
		}
	}()
	results := make([][][2]int32, len(tasks))
	err := topo.RunShards(workers, len(tasks), func(w, t int) error {
		out, err := evs[w].Eval(&m.comps[tasks[t].comp], int(tasks[t].center), nil)
		results[t] = out
		return err
	})
	if err != nil {
		// The evaluators only fail on context cancellation, and the
		// maintenance path runs on context.Background.
		panic(fmt.Sprintf("incremental: ball evaluation failed: %v", err))
	}
	for t, pairs := range results {
		if len(pairs) == 0 {
			continue
		}
		m.contrib[ballKey(tasks[t].comp, tasks[t].center)] = pairs
		for _, pr := range pairs {
			m.bump(pr[0], pr[1], 1, oldState)
		}
	}
}

// Apply performs one batch of edge updates: it applies the structural
// changes to the graph and cascades the relation deltas. On a validation
// error the graph and the relation are unchanged.
func (m *StrongMatcher) Apply(updates []Update) (Delta, error) {
	if err := ApplyToGraph(m.g, updates); err != nil {
		return Delta{}, err
	}
	return m.ApplyPrecomputed(nil, updates), nil
}

// ApplyPrecomputed cascades a batch whose structural changes were
// already applied to the graph. Delta.Aff1 reports the number of balls
// re-evaluated; Delta.Added/Removed are the net relation changes.
func (m *StrongMatcher) ApplyPrecomputed(_ []Pair, updates []Update) Delta {
	var delta Delta
	ins, dels := netEffectsInto(updates, &m.insBuf, &m.delBuf)
	if len(ins) == 0 && len(dels) == 0 {
		return delta
	}
	dd := m.dual.ApplyPrecomputed(nil, updates)

	// Touched nodes: net-changed edge endpoints plus every data node
	// whose dual membership changed. Deleted-edge endpoints are seeds,
	// so a bounded multi-source BFS over the post-update graph reaches
	// every node within radius of the touch set in the old graph too
	// (the prefix of any old path before its first deleted edge survives
	// and already ends at a seed).
	m.queue = m.queue[:0]
	seed := func(x int32) {
		if m.dist[x] < 0 {
			m.dist[x] = 0
			m.queue = append(m.queue, x)
		}
	}
	for _, up := range ins {
		seed(int32(up.U))
		seed(int32(up.V))
	}
	for _, up := range dels {
		seed(int32(up.U))
		seed(int32(up.V))
	}
	for _, pr := range dd.Added {
		seed(pr.X)
	}
	for _, pr := range dd.Removed {
		seed(pr.X)
	}
	for head := 0; head < len(m.queue); head++ {
		x := m.queue[head]
		dx := m.dist[x]
		if int(dx) >= m.maxR {
			continue
		}
		for _, y := range m.g.Out(int(x)) {
			if m.dist[y] < 0 {
				m.dist[y] = dx + 1
				m.queue = append(m.queue, y)
			}
		}
		for _, z := range m.g.In(int(x)) {
			if m.dist[z] < 0 {
				m.dist[z] = dx + 1
				m.queue = append(m.queue, z)
			}
		}
	}

	// Drop every affected ball's contribution, then re-evaluate the
	// affected balls that still have candidate centers. Untouched balls
	// keep their stored contributions — the merge is a count update, so
	// it is deterministic at every worker count.
	oldState := make(map[MatchPair]bool)
	var tasks []ballTask
	for ci, c := range m.comps {
		for _, x := range m.queue {
			if int(m.dist[x]) > c.Radius {
				continue
			}
			key := ballKey(ci, x)
			if pairs, ok := m.contrib[key]; ok {
				for _, pr := range pairs {
					m.bump(pr[0], pr[1], -1, oldState)
				}
				delete(m.contrib, key)
			}
			if m.isCenter(ci, int(x)) {
				tasks = append(tasks, ballTask{ci, x})
			}
		}
	}
	for _, x := range m.queue {
		m.dist[x] = -1
	}

	if len(tasks) > 0 {
		m.evalTasks(m.g.Freeze(), tasks, oldState)
	}

	delta.Aff1 = len(tasks)
	for pr, was := range oldState {
		now := m.counts[pr.U][pr.X] > 0
		switch {
		case !was && now:
			delta.Added = append(delta.Added, pr)
		case was && !now:
			delta.Removed = append(delta.Removed, pr)
		}
	}
	// oldState is a map, so sort the lists: watcher deltas stay
	// deterministic run to run like every other relation artefact.
	sortPairs(delta.Added)
	sortPairs(delta.Removed)
	delta.Aff2 = len(delta.Added) + len(delta.Removed)
	return delta
}

func sortPairs(ps []MatchPair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].U != ps[j].U {
			return ps[i].U < ps[j].U
		}
		return ps[i].X < ps[j].X
	})
}

// CheckInvariants verifies that the refcounted union is consistent with
// the stored per-ball contributions; tests call it after update batches.
func (m *StrongMatcher) CheckInvariants() error {
	np, n := m.p.N(), m.g.N()
	want := make([][]int32, np)
	for u := range want {
		want[u] = make([]int32, n)
	}
	for _, pairs := range m.contrib {
		for _, pr := range pairs {
			want[pr[0]][pr[1]]++
		}
	}
	for u := 0; u < np; u++ {
		count := 0
		for x := 0; x < n; x++ {
			if m.counts[u][x] != want[u][x] {
				return fmt.Errorf("count (%d,%d): got %d want %d", u, x, m.counts[u][x], want[u][x])
			}
			if m.counts[u][x] > 0 {
				count++
			}
		}
		if count != m.size[u] {
			return fmt.Errorf("size[%d] = %d, want %d", u, m.size[u], count)
		}
	}
	for i, d := range m.dist {
		if d != -1 {
			return fmt.Errorf("stale BFS distance at node %d", i)
		}
	}
	return m.dual.CheckInvariants()
}
