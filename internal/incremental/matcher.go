package incremental

import (
	"fmt"

	"gpm/internal/pattern"
)

// MatchPair is one element of AFF2: pattern node U gained or lost data
// node X.
type MatchPair struct {
	U int32
	X int32
}

// Delta reports what one batch of updates did to the maximum match.
type Delta struct {
	Added      []MatchPair // pairs that joined the relation
	Removed    []MatchPair // pairs that left the relation
	Aff1       int         // |AFF1|: distance/cycle pairs changed
	Aff2       int         // |AFF2|: len(Added) + len(Removed)
	Recomputed bool        // true when the cyclic-pattern fallback re-ran the batch algorithm
}

// Maintainer is the engine-facing contract of every incrementally
// maintained match: the bounded-simulation Matcher and the sim/dual/
// strong watch states (SimMatcher, StrongMatcher) all implement it, so
// one watcher registry and one Update write path drive the whole
// semantics lattice.
type Maintainer interface {
	Pattern() *pattern.Pattern
	OK() bool
	Pairs() int
	Mat(u int) []int32
	Relation() [][]int32
	// ApplyPrecomputed absorbs a batch whose structural (and, for
	// matrix-backed maintainers, distance) effects were already applied
	// to the shared graph. aff is the AFF1 set DynMatrix.Apply returned,
	// or nil when no distance matrix is maintained; adjacency-based
	// maintainers ignore it.
	ApplyPrecomputed(aff []Pair, updates []Update) Delta
}

// Matcher maintains the maximum bounded-simulation match of one pattern
// over a mutating data graph — the paper's IncMatch (Fig. 8). Distance
// increases flow through the Match⁻ removal cascade (Fig. 5, sound and
// complete for arbitrary patterns); distance decreases flow through the
// Match⁺ addition cascade (Fig. 7), which is complete for DAG patterns.
// For cyclic patterns with decreases the matcher falls back to the batch
// fixpoint (reusing the incrementally-updated matrix) and flags it,
// mirroring the paper's scope (Theorem 4.1 / Lemma 4.4).
//
// State: per pattern edge e = (u, u′) and candidate x of u, cnt[e][x]
// counts mat(u′) members within bound of x under the CURRENT distances.
// This realises the paper's desc(...) ∩ mat(...) emptiness tests in O(1).
type Matcher struct {
	p  *pattern.Pattern
	dm *DynMatrix

	predOK   [][]bool // static: fv(u) holds at x
	needsOut []bool   // pattern node has out-edges
	inCand   [][]bool // predOK && out-degree condition
	inMat    [][]bool
	matSize  []int
	cnt      [][]int32
	isDAG    bool

	removeQ []MatchPair
	addQ    []MatchPair
}

// NewMatcher computes the initial maximum match of p over dm's graph and
// retains the counter state for incremental maintenance.
func NewMatcher(p *pattern.Pattern, dm *DynMatrix) (*Matcher, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Colored() {
		return nil, fmt.Errorf("incremental: colored pattern edges are not supported; use core.Match after each change")
	}
	if p.Ranged() {
		return nil, fmt.Errorf("incremental: ranged pattern edges are not supported; use core.Match after each change")
	}
	m := &Matcher{p: p, dm: dm, isDAG: p.IsDAG()}
	m.initPredicates()
	m.rebuild()
	return m, nil
}

// Pattern returns the maintained pattern.
func (m *Matcher) Pattern() *pattern.Pattern { return m.p }

// DynMatrix returns the maintained graph+matrix pair.
func (m *Matcher) DynMatrix() *DynMatrix { return m.dm }

// OK reports whether P ⊴ G currently holds.
func (m *Matcher) OK() bool {
	for _, s := range m.matSize {
		if s == 0 {
			return false
		}
	}
	return true
}

// Mat returns the sorted data nodes currently matching pattern node u.
func (m *Matcher) Mat(u int) []int32 {
	var out []int32
	for x, in := range m.inMat[u] {
		if in {
			out = append(out, int32(x))
		}
	}
	return out
}

// Relation snapshots the whole relation.
func (m *Matcher) Relation() [][]int32 {
	out := make([][]int32, m.p.N())
	for u := range out {
		out[u] = m.Mat(u)
	}
	return out
}

// Pairs returns |S|.
func (m *Matcher) Pairs() int {
	total := 0
	for _, s := range m.matSize {
		total += s
	}
	return total
}

// ndist is the nonempty-path distance under the maintained matrix.
func (m *Matcher) ndist(x, z int) int { return m.dm.Matrix().NonemptyDist(x, z) }

func (m *Matcher) withinBound(x, z int, e pattern.Edge) bool {
	d := m.ndist(x, z)
	return d >= 0 && (e.Bound == pattern.Unbounded || d <= e.Bound)
}

func wasWithinBound(old int32, e pattern.Edge) bool {
	return old >= 0 && (e.Bound == pattern.Unbounded || int(old) <= e.Bound)
}

func nowWithinBound(nw int32, e pattern.Edge) bool {
	return nw >= 0 && (e.Bound == pattern.Unbounded || int(nw) <= e.Bound)
}

// initPredicates evaluates every predicate once; attribute values are
// immutable under edge updates.
func (m *Matcher) initPredicates() {
	np, n := m.p.N(), m.dm.Graph().N()
	m.predOK = make([][]bool, np)
	m.needsOut = make([]bool, np)
	for u := 0; u < np; u++ {
		m.predOK[u] = make([]bool, n)
		m.needsOut[u] = m.p.OutDegree(u) > 0
		pred := m.p.Pred(u)
		for x := 0; x < n; x++ {
			m.predOK[u][x] = pred.Match(m.dm.Graph().Attr(x))
		}
	}
}

// rebuild recomputes candidacy, counters and the relation from scratch
// against the current matrix — the batch algorithm of §3 run in place.
func (m *Matcher) rebuild() {
	np, n := m.p.N(), m.dm.Graph().N()
	g := m.dm.Graph()
	m.inCand = make([][]bool, np)
	m.inMat = make([][]bool, np)
	m.matSize = make([]int, np)
	for u := 0; u < np; u++ {
		m.inCand[u] = make([]bool, n)
		m.inMat[u] = make([]bool, n)
		for x := 0; x < n; x++ {
			if !m.predOK[u][x] {
				continue
			}
			if m.needsOut[u] && g.OutDegree(x) == 0 {
				continue
			}
			m.inCand[u][x] = true
			m.inMat[u][x] = true
			m.matSize[u]++
		}
	}
	m.cnt = make([][]int32, m.p.EdgeCount())
	m.removeQ = m.removeQ[:0]
	m.addQ = m.addQ[:0]
	for eid := 0; eid < m.p.EdgeCount(); eid++ {
		e := m.p.EdgeAt(eid)
		c := make([]int32, n)
		m.cnt[eid] = c
		for x := 0; x < n; x++ {
			if !m.inCand[e.From][x] {
				continue
			}
			for z := 0; z < n; z++ {
				if m.inMat[e.To][z] && m.withinBound(x, z, e) {
					c[x]++
				}
			}
			if c[x] == 0 {
				m.removeQ = append(m.removeQ, MatchPair{int32(e.From), int32(x)})
			}
		}
	}
	var sink []MatchPair
	m.drainRemovals(&sink)
}

// Apply performs one batch of edge updates (the paper's IncMatch): it
// updates the distance matrix (UpdateBM), converts AFF1 into counter
// deltas, cascades removals and additions, and reports AFF2.
func (m *Matcher) Apply(updates []Update) (Delta, error) {
	aff, err := m.dm.Apply(updates)
	if err != nil {
		return Delta{}, err
	}
	return m.ApplyPrecomputed(aff, updates), nil
}

// ApplyPrecomputed cascades a batch whose structural and matrix effects
// were already applied to the shared DynMatrix (aff is the AFF1 set its
// Apply returned). This is how several matchers share one DynMatrix: one
// party applies the updates, every matcher absorbs the same AFF1. The
// engine layer drives its watchers through this.
func (m *Matcher) ApplyPrecomputed(aff []Pair, updates []Update) Delta {
	delta := Delta{Aff1: len(aff)}

	// Cyclic patterns: additions need a global check (Lemma 4.4 is
	// DAG-only), so any distance decrease or candidacy gain triggers the
	// batch fallback, still reusing the incrementally-updated matrix.
	if !m.isDAG && m.needsFallback(aff, updates) {
		before := m.Relation()
		m.rebuild()
		delta.Recomputed = true
		m.diffInto(before, &delta)
		delta.Aff2 = len(delta.Added) + len(delta.Removed)
		return delta
	}

	// Counter deltas from AFF1 threshold crossings.
	for _, pr := range aff {
		for eid := 0; eid < m.p.EdgeCount(); eid++ {
			e := m.p.EdgeAt(eid)
			if e.Color != "" {
				// Colored bounds are not maintained incrementally.
				continue
			}
			x, z := int(pr.Src), int(pr.Dst)
			if !m.inCand[e.From][x] || !m.inMat[e.To][z] {
				continue
			}
			was, now := wasWithinBound(pr.Old, e), nowWithinBound(pr.New, e)
			switch {
			case was && !now:
				m.cnt[eid][x]--
				if m.cnt[eid][x] == 0 && m.inMat[e.From][x] {
					m.removeQ = append(m.removeQ, MatchPair{int32(e.From), int32(x)})
				}
			case !was && now:
				m.cnt[eid][x]++
				if !m.inMat[e.From][x] {
					m.addQ = append(m.addQ, MatchPair{int32(e.From), int32(x)})
				}
			}
		}
	}

	// Candidacy transitions from out-degree changes.
	m.applyDegreeTransitions(updates)

	m.drainRemovals(&delta.Removed)
	m.drainAdditions(&delta.Added, &delta.Removed)
	cancelNetNoops(&delta)
	delta.Aff2 = len(delta.Added) + len(delta.Removed)
	return delta
}

// cancelNetNoops drops pairs that were removed and re-added within one
// batch (the addition cascade can restore a pair whose support merely
// moved); Delta reports net changes only.
func cancelNetNoops(d *Delta) {
	if len(d.Added) == 0 || len(d.Removed) == 0 {
		return
	}
	added := make(map[MatchPair]struct{}, len(d.Added))
	for _, p := range d.Added {
		added[p] = struct{}{}
	}
	both := map[MatchPair]struct{}{}
	keepRemoved := d.Removed[:0]
	for _, p := range d.Removed {
		if _, ok := added[p]; ok {
			both[p] = struct{}{}
			continue
		}
		keepRemoved = append(keepRemoved, p)
	}
	d.Removed = keepRemoved
	if len(both) == 0 {
		return
	}
	keepAdded := d.Added[:0]
	for _, p := range d.Added {
		if _, ok := both[p]; ok {
			continue
		}
		keepAdded = append(keepAdded, p)
	}
	d.Added = keepAdded
}

// needsFallback reports whether the batch can add pairs, which a cyclic
// pattern cannot absorb incrementally.
func (m *Matcher) needsFallback(aff []Pair, updates []Update) bool {
	for _, pr := range aff {
		if decreased(pr) {
			return true
		}
	}
	for _, up := range updates {
		if up.Insert && m.dm.Graph().OutDegree(up.U) == 1 {
			return true // out-degree 0 -> 1: candidacy may be gained
		}
	}
	return false
}

func decreased(p Pair) bool {
	if p.Old < 0 {
		return p.New >= 0
	}
	return p.New >= 0 && p.New < p.Old
}

// applyDegreeTransitions adjusts candidacy when a node's out-degree
// crosses zero (Match line 5's side condition).
func (m *Matcher) applyDegreeTransitions(updates []Update) {
	g := m.dm.Graph()
	seen := map[int]struct{}{}
	for _, up := range updates {
		x := up.U
		if _, dup := seen[x]; dup {
			continue
		}
		seen[x] = struct{}{}
		if g.OutDegree(x) == 0 {
			// Lost its last out-edge: drop candidacy wherever required.
			for u := 0; u < m.p.N(); u++ {
				if m.needsOut[u] && m.inCand[u][x] {
					m.inCand[u][x] = false
					if m.inMat[u][x] {
						m.removeQ = append(m.removeQ, MatchPair{int32(u), int32(x)})
					}
				}
			}
		} else {
			// Has out-edges: (re)gain candidacy where the predicate holds.
			for u := 0; u < m.p.N(); u++ {
				if !m.predOK[u][x] || m.inCand[u][x] {
					continue
				}
				m.inCand[u][x] = true
				m.recountNode(u, x)
				if m.eligible(u, x) {
					m.addQ = append(m.addQ, MatchPair{int32(u), int32(x)})
				}
			}
		}
	}
}

// recountNode refreshes every out-edge counter of candidate (u, x) from
// current distances and mats.
func (m *Matcher) recountNode(u, x int) {
	for _, eid := range m.p.Out(u) {
		e := m.p.EdgeAt(int(eid))
		c := int32(0)
		for z, in := range m.inMat[e.To] {
			if in && m.withinBound(x, z, e) {
				c++
			}
		}
		m.cnt[eid][x] = c
	}
}

// eligible reports whether candidate (u, x) currently satisfies every
// out-edge (all counters positive).
func (m *Matcher) eligible(u, x int) bool {
	if !m.inCand[u][x] || m.inMat[u][x] {
		return false
	}
	for _, eid := range m.p.Out(u) {
		if m.cnt[eid][x] == 0 {
			return false
		}
	}
	return true
}

// countersAlive reports whether every out-edge counter of (u, x) is
// positive, i.e. the pair currently has full support.
func (m *Matcher) countersAlive(u, x int) bool {
	for _, eid := range m.p.Out(u) {
		if m.cnt[eid][x] == 0 {
			return false
		}
	}
	return true
}

// drainRemovals cascades the removal queue (Match⁻ lines 6–12), appending
// removed pairs to out. A queued removal may be stale: within one batch a
// counter can hit zero on a distance increase and recover on a later
// distance decrease, so support is re-validated at pop time — popping
// blindly would evict a live pair that nothing re-adds.
func (m *Matcher) drainRemovals(out *[]MatchPair) {
	for len(m.removeQ) > 0 {
		it := m.removeQ[len(m.removeQ)-1]
		m.removeQ = m.removeQ[:len(m.removeQ)-1]
		u, x := int(it.U), int(it.X)
		if !m.inMat[u][x] {
			continue
		}
		if m.inCand[u][x] && m.countersAlive(u, x) {
			continue // stale: the pair regained support before the pop
		}
		m.inMat[u][x] = false
		m.matSize[u]--
		*out = append(*out, it)
		for _, eid := range m.p.In(u) {
			e := m.p.EdgeAt(int(eid))
			c := m.cnt[eid]
			for xp := 0; xp < len(m.inCand[e.From]); xp++ {
				if !m.inCand[e.From][xp] || !m.withinBound(xp, x, e) {
					continue
				}
				c[xp]--
				if c[xp] == 0 && m.inMat[e.From][xp] {
					m.removeQ = append(m.removeQ, MatchPair{int32(e.From), int32(xp)})
				}
			}
		}
	}
}

// drainAdditions cascades the addition queue (Match⁺ lines 7–15). An
// addition can never zero a counter, so removals and additions commute;
// removed is re-drained only because a pair popped here may have been
// re-removed while queued.
func (m *Matcher) drainAdditions(added *[]MatchPair, removed *[]MatchPair) {
	for len(m.addQ) > 0 {
		it := m.addQ[len(m.addQ)-1]
		m.addQ = m.addQ[:len(m.addQ)-1]
		u, x := int(it.U), int(it.X)
		if !m.eligible(u, x) {
			continue
		}
		m.inMat[u][x] = true
		m.matSize[u]++
		*added = append(*added, it)
		for _, eid := range m.p.In(u) {
			e := m.p.EdgeAt(int(eid))
			c := m.cnt[eid]
			for xp := 0; xp < len(m.inCand[e.From]); xp++ {
				if !m.inCand[e.From][xp] || !m.withinBound(xp, x, e) {
					continue
				}
				c[xp]++
				if !m.inMat[e.From][xp] && m.eligible(e.From, xp) {
					m.addQ = append(m.addQ, MatchPair{int32(e.From), int32(xp)})
				}
			}
		}
	}
}

// diffInto records the pairwise difference between a previous relation
// snapshot and the current state (used by the fallback path).
func (m *Matcher) diffInto(before [][]int32, delta *Delta) {
	for u := range before {
		old := make(map[int32]bool, len(before[u]))
		for _, x := range before[u] {
			old[x] = true
		}
		for x, in := range m.inMat[u] {
			if in && !old[int32(x)] {
				delta.Added = append(delta.Added, MatchPair{int32(u), int32(x)})
			}
			if !in && old[int32(x)] {
				delta.Removed = append(delta.Removed, MatchPair{int32(u), int32(x)})
			}
		}
	}
}

// CheckInvariants verifies internal consistency (counter exactness and
// candidacy conditions); tests call it after update batches.
func (m *Matcher) CheckInvariants() error {
	g := m.dm.Graph()
	for u := 0; u < m.p.N(); u++ {
		for x := 0; x < g.N(); x++ {
			wantCand := m.predOK[u][x] && (!m.needsOut[u] || g.OutDegree(x) > 0)
			if m.inCand[u][x] != wantCand {
				return fmt.Errorf("candidacy (%d,%d): got %v want %v", u, x, m.inCand[u][x], wantCand)
			}
			if m.inMat[u][x] && !m.inCand[u][x] {
				return fmt.Errorf("match outside candidacy (%d,%d)", u, x)
			}
		}
	}
	for eid := 0; eid < m.p.EdgeCount(); eid++ {
		e := m.p.EdgeAt(eid)
		if e.Color != "" {
			continue
		}
		for x := 0; x < g.N(); x++ {
			if !m.inCand[e.From][x] {
				continue
			}
			want := int32(0)
			for z := 0; z < g.N(); z++ {
				if m.inMat[e.To][z] && m.withinBound(x, z, e) {
					want++
				}
			}
			if m.cnt[eid][x] != want {
				return fmt.Errorf("counter edge %d node %d: got %d want %d", eid, x, m.cnt[eid][x], want)
			}
		}
	}
	return nil
}
