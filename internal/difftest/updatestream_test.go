package difftest

import (
	"context"
	"testing"

	"gpm"
)

// streamWorkers are the worker counts every incremental relation is
// pinned at; watcher relations must be bit-identical (equal checksums)
// across all of them after every batch.
var streamWorkers = []int{1, 2, 4, 8}

// streamState is one engine (at one worker count) with its three
// semantics watchers, bound to its own clone of the workload graph so
// the same update stream can be replayed against every worker count.
type streamState struct {
	eng    *gpm.Engine
	sim    *gpm.Watcher
	dual   *gpm.Watcher
	strong *gpm.Watcher
}

func newStreamState(t *testing.T, g *gpm.Graph, p *gpm.Pattern, workers int) *streamState {
	t.Helper()
	s := &streamState{eng: gpm.NewEngine(g, gpm.WithWorkers(workers))}
	var err error
	if s.sim, err = s.eng.WatchSim(p); err != nil {
		t.Fatalf("WatchSim: %v", err)
	}
	if s.dual, err = s.eng.WatchDual(p); err != nil {
		t.Fatalf("WatchDual: %v", err)
	}
	if s.strong, err = s.eng.WatchStrong(p); err != nil {
		t.Fatalf("WatchStrong: %v", err)
	}
	return s
}

// TestIncrementalUpdateStream is the metamorphic update-stream harness:
// random insert/delete batches over generator graphs, asserting after
// EVERY batch that
//
//   - each incremental watcher relation is bit-identical to a full
//     recompute of its semantics on the post-update graph,
//   - the relations are checksum-identical across worker counts 1/2/4/8
//     (the strong watcher re-evaluates affected balls on the worker
//     pool; the merge must not depend on scheduling), and
//   - the containment lattice subiso ⊆ strong ⊆ dual ⊆ sim still holds.
func TestIncrementalUpdateStream(t *testing.T) {
	ctx := context.Background()
	isoOpts := gpm.IsoOptions{MaxEmbeddings: 100, MaxSteps: 100_000}
	const seeds = 4
	const batches = 5
	for seed := int64(1); seed <= seeds; seed++ {
		w := NewWorkload(seed, Config{Nodes: 50, Edges: 130, K: 1, Patterns: 2, IsoBias: seed%2 == 0})
		for pi, p := range w.Patterns {
			states := make([]*streamState, len(streamWorkers))
			for i, workers := range streamWorkers {
				states[i] = newStreamState(t, w.G.Clone(), p, workers)
			}
			for batch := 0; batch < batches; batch++ {
				// Generate the batch against the first clone's current
				// state; all clones evolve identically, so it is valid
				// for every engine.
				ups := gpm.GenerateUpdates(gpm.UpdateGenConfig{
					Insertions: 2 + int(seed)%3,
					Deletions:  2,
					Seed:       seed*1000 + int64(pi)*100 + int64(batch),
				}, states[0].eng.Graph())
				var pin [3]uint64 // sim, dual, strong checksums of workers[0]
				for i, s := range states {
					if _, err := s.eng.Update(ups...); err != nil {
						t.Fatalf("seed %d pattern %d batch %d workers %d: Update: %v",
							seed, pi, batch, streamWorkers[i], err)
					}
					simRel := s.sim.Relation()
					dualRel := s.dual.Relation()
					strongRel := s.strong.Relation()

					// Incremental ≡ recompute, per semantics.
					simRe, err := s.eng.Simulate(ctx, p)
					if err != nil {
						t.Fatal(err)
					}
					dualRe, err := s.eng.DualSimulate(ctx, p)
					if err != nil {
						t.Fatal(err)
					}
					strongRe, err := s.eng.StrongSimulate(ctx, p)
					if err != nil {
						t.Fatal(err)
					}
					if !RelationsEqual(simRel, simRe.Relation) {
						t.Errorf("seed %d pattern %d batch %d workers %d: sim watcher ≠ recompute: %s",
							seed, pi, batch, streamWorkers[i], DiffRelations(simRel, simRe.Relation))
					}
					if !RelationsEqual(dualRel, dualRe.Relation()) {
						t.Errorf("seed %d pattern %d batch %d workers %d: dual watcher ≠ recompute: %s",
							seed, pi, batch, streamWorkers[i], DiffRelations(dualRel, dualRe.Relation()))
					}
					if !RelationsEqual(strongRel, strongRe.Relation()) {
						t.Errorf("seed %d pattern %d batch %d workers %d: strong watcher ≠ recompute: %s",
							seed, pi, batch, streamWorkers[i], DiffRelations(strongRel, strongRe.Relation()))
					}

					// Checksum-pinned across worker counts.
					sums := [3]uint64{Checksum(simRel), Checksum(dualRel), Checksum(strongRel)}
					if i == 0 {
						pin = sums
					} else if sums != pin {
						t.Errorf("seed %d pattern %d batch %d: checksums diverge at %d workers: %x vs %x",
							seed, pi, batch, streamWorkers[i], sums, pin)
					}

					// Containment lattice after every batch (the subiso
					// link only on the first engine; enumeration is the
					// expensive leg and identical graphs enumerate
					// identically).
					if i == 0 {
						enum, err := s.eng.Enumerate(ctx, p, isoOpts)
						if err != nil {
							t.Fatal(err)
						}
						iso := enum.PairsPerNode(p.N())
						if !Contained(iso, strongRel) {
							t.Errorf("seed %d pattern %d batch %d: subiso pairs ⊄ strong", seed, pi, batch)
						}
					}
					if !Contained(strongRel, dualRel) {
						t.Errorf("seed %d pattern %d batch %d workers %d: strong ⊄ dual",
							seed, pi, batch, streamWorkers[i])
					}
					if !Contained(dualRel, simRel) {
						t.Errorf("seed %d pattern %d batch %d workers %d: dual ⊄ sim",
							seed, pi, batch, streamWorkers[i])
					}
				}
			}
			for _, s := range states {
				s.sim.Close()
				s.dual.Close()
				s.strong.Close()
			}
		}
	}
}

// The bounded watcher (IncMatch) and the sim watcher must agree on
// all-bounds-one patterns after every batch: plain simulation is bounded
// simulation with every bound fixed to 1, and both incremental paths
// must preserve the equality the batch algorithms have.
func TestIncrementalSimEqualsBoundedAtOne(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		w := NewWorkload(seed, Config{Nodes: 40, Edges: 100, K: 1, Patterns: 2})
		for pi, p := range w.Patterns {
			eng := gpm.NewEngine(w.G.Clone())
			bounded, err := eng.Watch(p)
			if err != nil {
				t.Fatalf("Watch: %v", err)
			}
			sim, err := eng.WatchSim(p)
			if err != nil {
				t.Fatalf("WatchSim: %v", err)
			}
			for batch := 0; batch < 4; batch++ {
				ups := gpm.GenerateUpdates(gpm.UpdateGenConfig{
					Insertions: 2, Deletions: 2, Seed: seed*71 + int64(pi)*13 + int64(batch),
				}, eng.Graph())
				if _, err := eng.Update(ups...); err != nil {
					t.Fatal(err)
				}
				if !RelationsEqual(bounded.Relation(), sim.Relation()) {
					t.Errorf("seed %d pattern %d batch %d: bounded@1 watcher ≠ sim watcher: %s",
						seed, pi, batch, DiffRelations(bounded.Relation(), sim.Relation()))
				}
			}
			bounded.Close()
			sim.Close()
		}
	}
}
