package difftest

import (
	"context"
	"fmt"
	"testing"

	"gpm"
	"gpm/internal/pattern"
)

// stripPreds returns p with every node predicate removed: a pattern that
// contains p under both the child and the dual mode (identical edges,
// weaker predicates).
func stripPreds(p *gpm.Pattern) *gpm.Pattern {
	q := p.Clone()
	for u := 0; u < q.N(); u++ {
		q.SetPred(u, nil)
	}
	return q
}

// The containment transfer law the result cache's seeding relies on:
// Contains(p', p) implies relation(p) ⊆ relation(p') on every graph, for
// match and plain simulation via child witnesses and for dual simulation
// via child+parent witnesses — checked on random workloads against a
// predicate-stripped containing pattern, at worker counts 1/2/4/8, with
// each relation pinned bit-identical across worker counts by checksum.
func TestContainmentTransfersToRelations(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= workloads; seed++ {
		w := NewWorkload(seed, Config{K: 1})
		for pi, p := range w.Patterns {
			loose := stripPreds(p)
			if !pattern.Contains(loose, p) {
				t.Fatalf("seed %d pattern %d: predicate-stripped pattern does not contain the original", seed, pi)
			}
			if _, ok := pattern.Containment(loose, p, pattern.ContainDual); !ok {
				t.Fatalf("seed %d pattern %d: dual-mode containment rejected the stripped pattern", seed, pi)
			}
			// rels[semantics][0] = relation of p, [1] = relation of loose;
			// recomputed per worker count and pinned by checksum.
			var want map[string][2]uint64
			for _, workers := range latticeWorkers {
				eng := gpm.NewEngine(w.G, gpm.WithWorkers(workers))
				sums := make(map[string][2]uint64)
				for sem, run := range map[string]func(*gpm.Pattern) ([][]int32, error){
					"match": func(q *gpm.Pattern) ([][]int32, error) {
						r, err := eng.Match(ctx, q)
						if err != nil {
							return nil, err
						}
						return r.Relation(), nil
					},
					"sim": func(q *gpm.Pattern) ([][]int32, error) {
						r, err := eng.Simulate(ctx, q)
						if err != nil {
							return nil, err
						}
						return r.Relation, nil
					},
					"dual": func(q *gpm.Pattern) ([][]int32, error) {
						r, err := eng.DualSimulate(ctx, q)
						if err != nil {
							return nil, err
						}
						return r.Relation(), nil
					},
				} {
					strictRel, err := run(p)
					if err != nil {
						t.Fatalf("seed %d pattern %d %s (workers %d): %v", seed, pi, sem, workers, err)
					}
					looseRel, err := run(loose)
					if err != nil {
						t.Fatalf("seed %d pattern %d %s loose (workers %d): %v", seed, pi, sem, workers, err)
					}
					if !Contained(strictRel, looseRel) {
						t.Errorf("seed %d pattern %d %s (workers %d): relation(p) ⊄ relation(p') despite Contains(p', p)\n%s",
							seed, pi, sem, workers, DiffRelations(strictRel, looseRel))
					}
					sums[sem] = [2]uint64{Checksum(strictRel), Checksum(looseRel)}
				}
				if want == nil {
					want = sums
				} else if fmt.Sprint(sums) != fmt.Sprint(want) {
					t.Errorf("seed %d pattern %d: relations diverged at %d workers: %v vs %v",
						seed, pi, workers, sums, want)
				}
			}
		}
	}
}
