package difftest

import (
	"context"
	"testing"

	"gpm"
	"gpm/internal/topo"
)

// latticeWorkers are the worker counts every lattice property is pinned
// at; relations must be bit-identical across all of them.
var latticeWorkers = []int{1, 2, 4, 8}

// The four-level semantics lattice (Ma et al., VLDB 2012): on
// all-bounds-one patterns, subgraph-isomorphism pairs are contained in
// strong simulation, strong in dual, dual in plain simulation, and
// plain simulation in bounded simulation at any k >= 1 — every link
// checked as relation containment on random workloads, with dual and
// strong recomputed at worker counts 1/2/4/8 and pinned bit-identical
// by relation checksum.
func TestSemanticsLattice(t *testing.T) {
	isoOpts := gpm.IsoOptions{MaxEmbeddings: 200, MaxSteps: 200_000}
	ctx := context.Background()
	for seed := int64(1); seed <= workloads; seed++ {
		w := NewWorkload(seed, Config{K: 1, IsoBias: seed%2 == 0})
		eng := gpm.NewEngine(w.G, gpm.WithWorkers(1))
		for pi, p := range w.Patterns {
			enum, err := eng.Enumerate(ctx, p, isoOpts)
			if err != nil {
				t.Fatalf("seed %d pattern %d: Enumerate: %v", seed, pi, err)
			}
			iso := enum.PairsPerNode(p.N())
			strong, err := eng.StrongSimulate(ctx, p)
			if err != nil {
				t.Fatalf("seed %d pattern %d: StrongSimulate: %v", seed, pi, err)
			}
			dual, err := eng.DualSimulate(ctx, p)
			if err != nil {
				t.Fatalf("seed %d pattern %d: DualSimulate: %v", seed, pi, err)
			}
			sim, err := eng.Simulate(ctx, p)
			if err != nil {
				t.Fatalf("seed %d pattern %d: Simulate: %v", seed, pi, err)
			}
			const k = 3
			bounded, err := eng.Match(ctx, RaiseBounds(p, k))
			if err != nil {
				t.Fatalf("seed %d pattern %d: Match(k=%d): %v", seed, pi, k, err)
			}

			strongRel, dualRel := strong.Relation(), dual.Relation()
			if !Contained(iso, strongRel) {
				t.Errorf("seed %d pattern %d: subiso pairs ⊄ strong\niso:    %v\nstrong: %v",
					seed, pi, iso, strongRel)
			}
			if !Contained(strongRel, dualRel) {
				t.Errorf("seed %d pattern %d: strong ⊄ dual\nstrong: %v\ndual:   %v",
					seed, pi, strongRel, dualRel)
			}
			if !Contained(dualRel, sim.Relation) {
				t.Errorf("seed %d pattern %d: dual ⊄ simulate\ndual: %v\nsim:  %v",
					seed, pi, dualRel, sim.Relation)
			}
			if !Contained(sim.Relation, bounded.Relation()) {
				t.Errorf("seed %d pattern %d: simulate ⊄ match(k=%d)\nsim:   %v\nmatch: %v",
					seed, pi, k, sim.Relation, bounded.Relation())
			}

			// Bit-identity across worker counts, as relation checksums.
			wantStrong, wantDual := Checksum(strongRel), Checksum(dualRel)
			for _, workers := range latticeWorkers[1:] {
				engW := gpm.NewEngine(w.G, gpm.WithWorkers(workers))
				s, err := engW.StrongSimulate(ctx, p)
				if err != nil {
					t.Fatalf("seed %d pattern %d workers %d: StrongSimulate: %v", seed, pi, workers, err)
				}
				if got := Checksum(s.Relation()); got != wantStrong {
					t.Errorf("seed %d pattern %d: strong checksum at %d workers %016x != %016x: %s",
						seed, pi, workers, got, wantStrong, DiffRelations(s.Relation(), strongRel))
				}
				d, err := engW.DualSimulate(ctx, p)
				if err != nil {
					t.Fatalf("seed %d pattern %d workers %d: DualSimulate: %v", seed, pi, workers, err)
				}
				if got := Checksum(d.Relation()); got != wantDual {
					t.Errorf("seed %d pattern %d: dual checksum at %d workers %016x != %016x: %s",
						seed, pi, workers, got, wantDual, DiffRelations(d.Relation(), dualRel))
				}
			}
		}
	}
}

// First collapse point: dropping the parent constraints from dual
// simulation (topo's ChildOnly mode) must reproduce plain simulation
// exactly, which in turn equals bounded simulation at k=1 (paper §2.2,
// remark 2) — the "dual ≡ bounded-sim@k=1 when restricted to child
// constraints" edge of the lattice.
func TestDualChildOnlyEqualsSimulateAndMatchK1(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= workloads; seed++ {
		w := NewWorkload(seed, Config{K: 1})
		eng := gpm.NewEngine(w.G)
		f := w.G.Freeze()
		for pi, p := range w.Patterns {
			childOnly, coOK, err := topo.DualSim(ctx, p, f, topo.Options{ChildOnly: true})
			if err != nil {
				t.Fatalf("seed %d pattern %d: child-only DualSim: %v", seed, pi, err)
			}
			sim, err := eng.Simulate(ctx, p)
			if err != nil {
				t.Fatalf("seed %d pattern %d: Simulate: %v", seed, pi, err)
			}
			if coOK != sim.OK || !RelationsEqual(childOnly, sim.Relation) {
				t.Errorf("seed %d pattern %d: child-only dual != plain simulation: %s",
					seed, pi, DiffRelations(childOnly, sim.Relation))
			}
			m, err := eng.Match(ctx, p)
			if err != nil {
				t.Fatalf("seed %d pattern %d: Match: %v", seed, pi, err)
			}
			if coOK != m.OK() || !RelationsEqual(childOnly, m.Relation()) {
				t.Errorf("seed %d pattern %d: child-only dual != bounded sim at k=1: %s",
					seed, pi, DiffRelations(childOnly, m.Relation()))
			}
		}
	}
}

// Second collapse point: on out-tree patterns, strong simulation equals
// dual simulation — every dual pair extends to a tree homomorphism
// (climb parent witnesses to the root, descend child witnesses), whose
// image lies inside the ball around the root witness and is connected
// in the match graph, so locality filters nothing.
//
// (The issue's stronger claim "strong ≡ subiso on trees" does not hold
// under injective embedding semantics: a pattern A→B, A→C with equal
// child predicates strongly matches a data graph a→b where the single b
// must serve both B and C, but no injective embedding exists. The
// subiso direction that does hold — embedding pairs ⊆ strong — is
// asserted here and in TestSemanticsLattice.)
func TestStrongEqualsDualOnTreePatterns(t *testing.T) {
	ctx := context.Background()
	isoOpts := gpm.IsoOptions{MaxEmbeddings: 200, MaxSteps: 200_000}
	for seed := int64(1); seed <= workloads; seed++ {
		w := NewWorkload(seed, Config{K: 1, Patterns: 1})
		eng := gpm.NewEngine(w.G)
		for pn := 3; pn <= 5; pn++ {
			p := TreePattern(seed*977+int64(pn), w.G, pn)
			strong, err := eng.StrongSimulate(ctx, p)
			if err != nil {
				t.Fatalf("seed %d: StrongSimulate: %v", seed, err)
			}
			dual, err := eng.DualSimulate(ctx, p)
			if err != nil {
				t.Fatalf("seed %d: DualSimulate: %v", seed, err)
			}
			if strong.OK() != dual.OK() || !RelationsEqual(strong.Relation(), dual.Relation()) {
				t.Errorf("seed %d tree(%d): strong != dual on a tree pattern: %s\npattern:\n%s",
					seed, pn, DiffRelations(strong.Relation(), dual.Relation()), p)
			}
			enum, err := eng.Enumerate(ctx, p, isoOpts)
			if err != nil {
				t.Fatalf("seed %d: Enumerate: %v", seed, err)
			}
			if iso := enum.PairsPerNode(p.N()); !Contained(iso, strong.Relation()) {
				t.Errorf("seed %d tree(%d): subiso pairs ⊄ strong", seed, pn)
			}
		}
	}
}

// TopoResults are result-graph-capable: the result graph of a strong
// match must contain exactly the matched nodes, and its edges must be
// single-hop (bounds are 1), each present in the data graph.
func TestTopoResultGraph(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 4; seed++ {
		w := NewWorkload(seed, Config{K: 1})
		eng := gpm.NewEngine(w.G)
		for pi, p := range w.Patterns {
			strong, err := eng.StrongSimulate(ctx, p)
			if err != nil {
				t.Fatalf("seed %d pattern %d: %v", seed, pi, err)
			}
			rg := eng.ResultGraphOf(strong.Result)
			if !strong.OK() {
				if len(rg.Nodes) != 0 {
					t.Errorf("seed %d pattern %d: failed match has %d result-graph nodes", seed, pi, len(rg.Nodes))
				}
				continue
			}
			want := map[int32]bool{}
			for u := 0; u < p.N(); u++ {
				for _, x := range strong.Mat(u) {
					want[x] = true
				}
			}
			if len(rg.Nodes) != len(want) {
				t.Errorf("seed %d pattern %d: result graph has %d nodes, match %d", seed, pi, len(rg.Nodes), len(want))
			}
			for _, e := range rg.Edges {
				if e.Dist != 1 {
					t.Errorf("seed %d pattern %d: result edge (%d,%d) dist %d on a bounds-one pattern",
						seed, pi, e.From, e.To, e.Dist)
				}
				if !w.G.HasEdge(int(e.From), int(e.To)) {
					t.Errorf("seed %d pattern %d: result edge (%d,%d) missing from data graph", seed, pi, e.From, e.To)
				}
			}
		}
	}
}
