package difftest

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"gpm"
	"gpm/internal/core"
	"gpm/internal/generator"
	"gpm/internal/pll"
)

const workloads = 12 // random workloads per differential property

// Property (a): plain simulation is the all-bounds-one special case of
// bounded simulation (paper §2.2, remark 2), so on K=1 patterns
// Engine.Match and Engine.Simulate must compute the same relation and the
// same OK verdict.
func TestMatchBoundsOneEqualsSimulate(t *testing.T) {
	for seed := int64(1); seed <= workloads; seed++ {
		w := NewWorkload(seed, Config{K: 1})
		eng := gpm.NewEngine(w.G)
		for pi, p := range w.Patterns {
			m, err := eng.Match(context.Background(), p)
			if err != nil {
				t.Fatalf("seed %d pattern %d: Match: %v", seed, pi, err)
			}
			s, err := eng.Simulate(context.Background(), p)
			if err != nil {
				t.Fatalf("seed %d pattern %d: Simulate: %v", seed, pi, err)
			}
			if m.OK() != s.OK {
				t.Errorf("seed %d pattern %d: Match OK=%v, Simulate OK=%v", seed, pi, m.OK(), s.OK)
			}
			if !RelationsEqual(m.Relation(), s.Relation) {
				t.Errorf("seed %d pattern %d: relations differ: %s",
					seed, pi, DiffRelations(m.Relation(), s.Relation))
			}
		}
	}
}

// Property (b): every VF2/Ullmann embedding maps each pattern edge to a
// data edge, so its pairs form a bounded simulation and must be contained
// in the unique maximum bounded-simulation relation.
func TestIsoEmbeddingsContainedInMatch(t *testing.T) {
	opts := gpm.IsoOptions{MaxEmbeddings: 200, MaxSteps: 200_000}
	for seed := int64(1); seed <= workloads; seed++ {
		w := NewWorkload(seed, Config{IsoBias: true, K: 2, PEdges: 4})
		eng := gpm.NewEngine(w.G)
		checked := 0
		for pi, p := range w.Patterns {
			m, err := eng.Match(context.Background(), p)
			if err != nil {
				t.Fatalf("seed %d pattern %d: Match: %v", seed, pi, err)
			}
			for _, algo := range []gpm.EnumAlgo{gpm.AlgoVF2, gpm.AlgoUllmann} {
				o := opts
				o.Algo = algo
				enum, err := eng.Enumerate(context.Background(), p, o)
				if err != nil {
					t.Fatalf("seed %d pattern %d algo %v: Enumerate: %v", seed, pi, algo, err)
				}
				for ei, emb := range enum.Embeddings {
					for u, x := range emb {
						checked++
						if !m.Contains(u, x) {
							t.Errorf("seed %d pattern %d algo %v embedding %d: pair (%d,%d) not in max bounded-simulation relation",
								seed, pi, algo, ei, u, x)
						}
					}
				}
			}
		}
		if checked == 0 && seed == workloads {
			t.Log("warning: no embeddings produced by any workload; containment property unexercised")
		}
	}
}

// Property (c): the matrix, BFS and 2-hop oracles answer the same
// distance queries, so Match through any of them must produce identical
// results.
func TestOraclesProduceIdenticalMatches(t *testing.T) {
	kinds := []gpm.OracleKind{gpm.OracleMatrix, gpm.OracleBFS, gpm.OracleTwoHop, gpm.OraclePLL}
	for seed := int64(1); seed <= workloads; seed++ {
		w := NewWorkload(seed, Config{StarProb: 0.2})
		engines := make([]*gpm.Engine, len(kinds))
		for i, k := range kinds {
			engines[i] = gpm.NewEngine(w.G, gpm.WithOracle(k))
		}
		for pi, p := range w.Patterns {
			ref, err := engines[0].Match(context.Background(), p)
			if err != nil {
				t.Fatalf("seed %d pattern %d: matrix Match: %v", seed, pi, err)
			}
			for i, k := range kinds[1:] {
				got, err := engines[i+1].Match(context.Background(), p)
				if err != nil {
					t.Fatalf("seed %d pattern %d: %v Match: %v", seed, pi, k, err)
				}
				if got.OK() != ref.OK() || !RelationsEqual(got.Relation(), ref.Relation()) {
					t.Errorf("seed %d pattern %d: %v oracle diverges from matrix: %s",
						seed, pi, k, DiffRelations(got.Relation(), ref.Relation()))
				}
			}
		}
	}
}

// Property (c'): below Match, the oracles must agree on the raw
// distance queries themselves — every (u, v, bound, color) triple on
// random colored graphs, bounded and unbounded. This pins the PLL
// labelling (including its lazily built per-color sub-labelings and its
// saturated-distance overflow path) against the exact matrix, BFS and
// 2-hop answers directly, with no fixpoint in between to mask an
// off-by-one.
func TestOracleDistancesAgree(t *testing.T) {
	for seed := int64(1); seed <= workloads; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(30)
		g := gpm.NewGraph(n)
		colors := []string{"", "", "c", "d"}
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			if c := colors[r.Intn(len(colors))]; c == "" {
				g.AddEdge(u, v)
			} else {
				g.AddColoredEdge(u, v, c)
			}
		}
		ref := core.BuildMatrixOracle(g)
		pllO, err := core.BuildPLLOracle(context.Background(), g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The parallel and bit-parallel build flavors must serve the
		// exact same distances through the oracle layer — including the
		// bit-parallel root candidates the probe scans fold in, and the
		// lazily built per-color sub-labelings.
		fz := g.Freeze()
		parIdx, err := pll.Build(context.Background(), fz, pll.Options{Workers: 4})
		if err != nil {
			t.Fatalf("seed %d: parallel build: %v", seed, err)
		}
		bpIdx, err := pll.Build(context.Background(), fz, pll.Options{Workers: 2, BitParallel: 1})
		if err != nil {
			t.Fatalf("seed %d: bit-parallel build: %v", seed, err)
		}
		others := map[string]core.DistOracle{
			"bfs":          core.NewBFSOracle(g),
			"2hop":         core.BuildTwoHopOracle(g),
			"pll":          pllO,
			"pll-parallel": core.NewPLLOracleFrozen(fz, parIdx),
			"pll-bp":       core.NewPLLOracleFrozen(fz, bpIdx),
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				for _, bound := range []int{-1, 0, 1, 2, 3, 7} {
					for _, color := range []string{"", "c", "d"} {
						want := ref.NonemptyDistWithin(u, v, bound, color)
						for name, o := range others {
							if got := o.NonemptyDistWithin(u, v, bound, color); got != want {
								t.Fatalf("seed %d: %s(%d,%d,bound=%d,color=%q) = %d, matrix says %d",
									seed, name, u, v, bound, color, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// Property (d): the greatest fixpoint is unique, and the parallel
// initialisation computes the same candidates and counters, so
// WithWorkers(N) must be bit-identical to WithWorkers(1) on every seed —
// for every oracle kind, since each parallelises differently.
func TestParallelEqualsSequential(t *testing.T) {
	for seed := int64(1); seed <= workloads; seed++ {
		w := NewWorkload(seed, Config{StarProb: 0.1})
		for _, kind := range []gpm.OracleKind{gpm.OracleMatrix, gpm.OracleBFS, gpm.OracleTwoHop, gpm.OraclePLL} {
			seq := gpm.NewEngine(w.G, gpm.WithOracle(kind), gpm.WithWorkers(1))
			for _, workers := range []int{2, 4, 8} {
				par := gpm.NewEngine(w.G, gpm.WithOracle(kind), gpm.WithWorkers(workers))
				for pi, p := range w.Patterns {
					want, err := seq.Match(context.Background(), p)
					if err != nil {
						t.Fatalf("seed %d pattern %d: sequential: %v", seed, pi, err)
					}
					got, err := par.Match(context.Background(), p)
					if err != nil {
						t.Fatalf("seed %d pattern %d: %d workers: %v", seed, pi, workers, err)
					}
					if got.OK() != want.OK() || !RelationsEqual(got.Relation(), want.Relation()) {
						t.Errorf("seed %d pattern %d oracle %v: %d workers diverge: %s",
							seed, pi, kind, workers, DiffRelations(got.Relation(), want.Relation()))
					}
					if Checksum(got.Relation()) != Checksum(want.Relation()) {
						t.Errorf("seed %d pattern %d oracle %v: %d-worker checksum diverges",
							seed, pi, kind, workers)
					}
				}
			}
		}
	}
}

// MatchBatch is the fan-out form of Match: its results must equal
// one-at-a-time Match on the same engine, position by position.
func TestMatchBatchEqualsSequentialMatch(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		w := NewWorkload(seed, Config{Patterns: 8})
		eng := gpm.NewEngine(w.G, gpm.WithWorkers(4))
		batch, err := eng.MatchBatch(context.Background(), w.Patterns)
		if err != nil {
			t.Fatalf("seed %d: MatchBatch: %v", seed, err)
		}
		if len(batch) != len(w.Patterns) {
			t.Fatalf("seed %d: %d results for %d patterns", seed, len(batch), len(w.Patterns))
		}
		for pi, p := range w.Patterns {
			want, err := eng.Match(context.Background(), p)
			if err != nil {
				t.Fatalf("seed %d pattern %d: Match: %v", seed, pi, err)
			}
			if batch[pi].OK() != want.OK() || !RelationsEqual(batch[pi].Relation(), want.Relation()) {
				t.Errorf("seed %d pattern %d: batch result diverges: %s",
					seed, pi, DiffRelations(batch[pi].Relation(), want.Relation()))
			}
		}
	}
}

// Property test: after random update batches, the incrementally
// maintained match (Engine.Update driving IncMatch) must equal a
// from-scratch recompute by a fresh engine bound to the mutated graph.
func TestIncrementalMatchesRecompute(t *testing.T) {
	const rounds = 4
	for seed := int64(1); seed <= 8; seed++ {
		w := NewWorkload(seed, Config{Nodes: 50, Edges: 120, Patterns: 1, PNodes: 3, PEdges: 3, K: 2})
		p := w.Patterns[0]
		eng := gpm.NewEngine(w.G)
		watch, err := eng.Watch(p)
		if err != nil {
			t.Fatalf("seed %d: Watch: %v", seed, err)
		}
		for round := 0; round < rounds; round++ {
			ups := generator.Updates(generator.UpdatesConfig{
				Insertions: 4,
				Deletions:  4,
				Seed:       seed*131 + int64(round),
			}, w.G)
			if _, err := eng.Update(ups...); err != nil {
				t.Fatalf("seed %d round %d: Update: %v", seed, round, err)
			}
			fresh := gpm.NewEngine(w.G.Clone())
			want, err := fresh.Match(context.Background(), p)
			if err != nil {
				t.Fatalf("seed %d round %d: recompute: %v", seed, round, err)
			}
			if watch.OK() != want.OK() || !RelationsEqual(watch.Relation(), want.Relation()) {
				t.Errorf("seed %d round %d: incremental diverges from recompute: %s",
					seed, round, DiffRelations(watch.Relation(), want.Relation()))
			}
		}
		watch.Close()
	}
}

// MatchBatch must stay correct and race-free while Update mutates the
// graph between batches (run under -race in CI): queries hold the read
// lock, updates the write lock, and every batch must see a consistent
// snapshot.
func TestMatchBatchUnderConcurrentUpdate(t *testing.T) {
	w := NewWorkload(99, Config{Nodes: 60, Edges: 150, Patterns: 6})
	eng := gpm.NewEngine(w.G, gpm.WithWorkers(4))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 8)
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.MatchBatch(context.Background(), w.Patterns); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			ups := generator.Updates(generator.UpdatesConfig{
				Insertions: 2, Deletions: 2, Seed: int64(1000 + i),
			}, w.G)
			if _, err := eng.Update(ups...); err != nil {
				errCh <- err
				return
			}
		}
		close(stop)
	}()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("concurrent MatchBatch/Update: %v", err)
	default:
	}
}
