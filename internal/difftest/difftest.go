// Package difftest is the cross-semantics differential test harness: on
// generator-produced random graph/pattern pairs it checks the precise
// containment and equivalence relationships between the five matching
// semantics the engine serves, and uses them as oracles for the parallel
// matching core:
//
//   - plain simulation is bounded simulation with every bound fixed to 1
//     (paper §2.2, remark 2), so Match and Simulate must agree exactly on
//     all-bounds-one patterns;
//
//   - every subgraph-isomorphism embedding is itself a bounded simulation,
//     so each VF2/Ullmann match pair must be contained in the maximum
//     bounded-simulation relation;
//
//   - the matrix, BFS and 2-hop oracles answer the same distance queries,
//     so Match results must be identical across them;
//
//   - the greatest fixpoint is unique (Proposition 2.1), so parallel
//     matching (WithWorkers(N)) must be bit-identical to sequential
//     (WithWorkers(1)) on every seed;
//
//   - the semantics form a containment lattice on all-bounds-one
//     patterns (Ma et al., "Capturing Topology in Graph Pattern
//     Matching", VLDB 2012):
//
//     subiso pairs ⊆ StrongSimulate ⊆ DualSimulate ⊆ Simulate ⊆ Match(k)
//
//     with two collapse points: child-only dual simulation equals plain
//     simulation equals bounded simulation at k=1, and on out-tree
//     patterns strong simulation equals dual simulation (topology
//     preservation is free on trees);
//
//   - dual and strong relations are unions/fixpoints independent of
//     evaluation order, so every worker count must produce bit-identical
//     relations (equal checksums);
//
//   - incremental maintenance computes the same unique fixpoints the
//     batch algorithms do, so after every batch of a random update
//     stream each watcher (bounded, sim, dual, strong) must be
//     bit-identical to a full recompute of its semantics, checksum-
//     pinned across worker counts, with the containment lattice intact
//     (the metamorphic update-stream harness).
//
// The helpers here generate the random workloads and compare relations;
// the assertions live in the package's tests.
package difftest

import (
	"fmt"
	"hash/fnv"

	"gpm"
	"gpm/internal/generator"
)

// Workload is one generated data graph with a batch of patterns.
type Workload struct {
	Seed     int64
	G        *gpm.Graph
	Patterns []*gpm.Pattern
}

// Config shapes NewWorkload's output.
type Config struct {
	Nodes    int     // data graph nodes (default 80)
	Edges    int     // data graph edges (default 3×Nodes)
	Attrs    int     // attribute alphabet (default Nodes/8)
	Patterns int     // patterns per workload (default 4)
	PNodes   int     // pattern nodes (default 4)
	PEdges   int     // pattern edges (default 5)
	K        int     // hop-bound upper limit; 1 forces all-bounds-one (default 3)
	StarProb float64 // probability of an unbounded edge
	IsoBias  bool    // bias patterns toward isomorphic embeddability
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 80
	}
	if c.Edges <= 0 {
		c.Edges = 3 * c.Nodes
	}
	if c.Attrs <= 0 {
		c.Attrs = c.Nodes / 8
		if c.Attrs < 2 {
			c.Attrs = 2
		}
	}
	if c.Patterns <= 0 {
		c.Patterns = 4
	}
	if c.PNodes <= 0 {
		c.PNodes = 4
	}
	if c.PEdges <= 0 {
		c.PEdges = 5
	}
	if c.K <= 0 {
		c.K = 3
	}
	return c
}

// NewWorkload generates a random graph and pattern batch, deterministic
// in seed.
func NewWorkload(seed int64, cfg Config) *Workload {
	cfg = cfg.withDefaults()
	models := []generator.Model{generator.ER, generator.PowerLaw, generator.Communities}
	pick := int(seed % int64(len(models)))
	if pick < 0 {
		pick += len(models)
	}
	g := generator.Graph(generator.GraphConfig{
		Nodes: cfg.Nodes,
		Edges: cfg.Edges,
		Attrs: cfg.Attrs,
		Model: models[pick],
		Seed:  seed,
	})
	w := &Workload{Seed: seed, G: g}
	for i := 0; i < cfg.Patterns; i++ {
		w.Patterns = append(w.Patterns, generator.Pattern(generator.PatternConfig{
			Nodes:     cfg.PNodes,
			Edges:     cfg.PEdges,
			K:         cfg.K,
			C:         cfg.K - 1,
			StarProb:  cfg.StarProb,
			PredAttrs: 1 + int(seed)%2,
			IsoBias:   cfg.IsoBias,
			Seed:      seed*1009 + int64(i)*31,
		}, g))
	}
	return w
}

// RelationsEqual reports whether two relations are identical: same number
// of pattern nodes and the same sorted data-node list for each.
func RelationsEqual(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for u := range a {
		if len(a[u]) != len(b[u]) {
			return false
		}
		for i := range a[u] {
			if a[u][i] != b[u][i] {
				return false
			}
		}
	}
	return true
}

// Contained reports whether sub ⊆ sup as relations: same number of
// pattern nodes, and every data node of each sub row present in the
// corresponding sup row (rows sorted ascending, as every matcher in the
// module returns them).
func Contained(sub, sup [][]int32) bool {
	if len(sub) != len(sup) {
		return false
	}
	for u := range sub {
		j := 0
		for _, x := range sub[u] {
			for j < len(sup[u]) && sup[u][j] < x {
				j++
			}
			if j >= len(sup[u]) || sup[u][j] != x {
				return false
			}
		}
	}
	return true
}

// Checksum folds every (pattern node, data node) pair of a relation into
// one FNV-1a hash, so bit-identity across worker counts can be asserted
// (and reported) as checksum equality.
func Checksum(rel [][]int32) uint64 {
	h := fnv.New64a()
	var buf [6]byte
	for u, l := range rel {
		for _, x := range l {
			buf[0] = byte(u)
			buf[1] = byte(u >> 8)
			buf[2] = byte(x)
			buf[3] = byte(x >> 8)
			buf[4] = byte(x >> 16)
			buf[5] = byte(x >> 24)
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// RaiseBounds clones p with every edge bound replaced by k, keeping
// nodes, predicates and colors: the pattern Match(k) runs in the lattice
// tests, where the all-bounds-one relations must be contained in the
// bounded-simulation relation at any k >= 1 (a single-edge witness is a
// path of length 1 <= k).
func RaiseBounds(p *gpm.Pattern, k int) *gpm.Pattern {
	q := gpm.NewPattern()
	for u := 0; u < p.N(); u++ {
		q.AddNode(p.Pred(u))
	}
	for _, e := range p.Edges() {
		if _, err := q.AddColoredEdge(e.From, e.To, k, e.Color); err != nil {
			panic(err) // cannot happen: source pattern was consistent
		}
	}
	return q
}

// TreePattern generates a random out-tree pattern against g: node 0 is
// the root and every other node has exactly one incoming edge, all
// bounds 1. Tree patterns are the lattice's second collapse point —
// strong simulation equals dual simulation on them.
func TreePattern(seed int64, g *gpm.Graph, nodes int) *gpm.Pattern {
	return generator.Pattern(generator.PatternConfig{
		Nodes: nodes,
		Edges: nodes - 1, // skeleton only: an out-tree
		K:     1,
		Seed:  seed,
	}, g)
}

// DiffRelations renders the first few differing entries of two relations,
// for failure messages.
func DiffRelations(a, b [][]int32) string {
	if len(a) != len(b) {
		return fmt.Sprintf("pattern node counts differ: %d vs %d", len(a), len(b))
	}
	for u := range a {
		if !RelationsEqual(a[u:u+1], b[u:u+1]) {
			return fmt.Sprintf("mat(%d): %v vs %v", u, a[u], b[u])
		}
	}
	return "equal"
}
