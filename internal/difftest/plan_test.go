package difftest

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"gpm"
	"gpm/internal/generator"
)

// planShapes are the four symmetric shapes the plan bench measures
// (internal/bench cannot be imported here — it imports difftest — so
// the shapes are restated): bidirectional bound-1 edges over wildcard
// nodes, the high-|Aut| regime where symmetry breaking does real work.
var planShapes = []struct {
	name  string
	nodes int
	edges [][2]int
}{
	{"triangle", 3, [][2]int{{0, 1}, {1, 2}, {0, 2}}},
	{"4-clique", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}},
	{"house", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {1, 4}}},
	{"chordal-6-cycle", 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}}},
}

func shapePattern(tb testing.TB, nodes int, edges [][2]int) *gpm.Pattern {
	tb.Helper()
	p := gpm.NewPattern()
	for i := 0; i < nodes; i++ {
		p.AddNode(nil)
	}
	for _, e := range edges {
		if _, err := p.AddEdge(e[0], e[1], 1); err != nil {
			tb.Fatal(err)
		}
		if _, err := p.AddEdge(e[1], e[0], 1); err != nil {
			tb.Fatal(err)
		}
	}
	return p
}

// symWorkloadGraph returns a symmetrised random graph: every generated
// edge gets its reverse, so the undirected shapes have embeddings.
func symWorkloadGraph(nodes, edges int, seed int64) *gpm.Graph {
	g := generator.Graph(generator.GraphConfig{
		Nodes: nodes, Edges: edges, Attrs: 3, Model: generator.PowerLaw, Seed: seed,
	})
	var fwd [][2]int32
	g.Edges(func(u, v int) { fwd = append(fwd, [2]int32{int32(u), int32(v)}) })
	for _, e := range fwd {
		g.AddEdge(int(e[1]), int(e[0]))
	}
	return g
}

// sortedEmbeddings is the order-insensitive view of an enumeration: the
// planner reorders the search, so only the multiset is contractual.
func sortedEmbeddings(embs [][]int32) []string {
	out := make([]string, len(embs))
	for i, e := range embs {
		out[i] = fmt.Sprint(e)
	}
	sort.Strings(out)
	return out
}

// The planner is an optimisation, not a semantics: planned enumeration
// must return exactly the unplanned embedding multiset, and
// CountEmbeddings must equal the enumeration length, at every worker
// count, on the bench shapes and on random iso-biased workloads.
func TestPlannedEnumerationEquivalence(t *testing.T) {
	ctx := context.Background()
	type job struct {
		name string
		g    *gpm.Graph
		p    *gpm.Pattern
	}
	var jobs []job
	shapeG := symWorkloadGraph(120, 360, 7)
	for _, s := range planShapes {
		jobs = append(jobs, job{s.name, shapeG, shapePattern(t, s.nodes, s.edges)})
	}
	for seed := int64(1); seed <= 4; seed++ {
		w := NewWorkload(seed, Config{IsoBias: true, K: 1, PEdges: 4})
		for pi, p := range w.Patterns {
			jobs = append(jobs, job{fmt.Sprintf("workload-%d-%d", seed, pi), w.G, p})
		}
	}
	for _, jb := range jobs {
		for _, workers := range []int{1, 2, 4, 8} {
			eng := gpm.NewEngine(jb.g, gpm.WithWorkers(workers))
			plain, err := eng.Enumerate(ctx, jb.p, gpm.IsoOptions{NoPlan: true})
			if err != nil {
				t.Fatalf("%s workers=%d: unplanned: %v", jb.name, workers, err)
			}
			planned, err := eng.Enumerate(ctx, jb.p, gpm.IsoOptions{})
			if err != nil {
				t.Fatalf("%s workers=%d: planned: %v", jb.name, workers, err)
			}
			if !plain.Complete || !planned.Complete {
				t.Fatalf("%s workers=%d: incomplete enumeration (plain=%v planned=%v)",
					jb.name, workers, plain.Complete, planned.Complete)
			}
			a, b := sortedEmbeddings(plain.Embeddings), sortedEmbeddings(planned.Embeddings)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("%s workers=%d: planned multiset (%d) != unplanned (%d)",
					jb.name, workers, len(b), len(a))
			}
			cnt, err := eng.CountEmbeddings(ctx, jb.p, gpm.IsoOptions{})
			if err != nil {
				t.Fatalf("%s workers=%d: count: %v", jb.name, workers, err)
			}
			if cnt.Count != int64(len(plain.Embeddings)) {
				t.Fatalf("%s workers=%d: count %d != %d enumerated",
					jb.name, workers, cnt.Count, len(plain.Embeddings))
			}
			if planned.Count != int64(len(planned.Embeddings)) {
				t.Fatalf("%s workers=%d: enumeration Count %d != len %d",
					jb.name, workers, planned.Count, len(planned.Embeddings))
			}
		}
	}
}
