// Package cancel provides an amortised context poller for hot loops:
// checking ctx.Err() on every iteration of a cubic-time fixpoint or an
// exponential search tree is measurable, so Poller pays the check once
// per interval calls. The matching, simulation and enumeration loops
// all share this one implementation.
package cancel

import "context"

// Poller polls ctx.Err() once every interval Err calls. The zero value
// (and any Poller built from a context that cannot be cancelled) never
// reports an error and costs a nil check per call.
type Poller struct {
	ctx      context.Context
	done     <-chan struct{} // ctx.Done(); nil when cancellation is off
	interval int
	tick     int
}

// Every returns a Poller over ctx checking once per interval calls.
// interval <= 0 is clamped to 1 (check on every call): a non-positive
// interval would otherwise divide by zero on the first Err call of any
// cancellable context.
func Every(ctx context.Context, interval int) Poller {
	if interval < 1 {
		interval = 1
	}
	return Poller{ctx: ctx, done: ctx.Done(), interval: interval}
}

// Err returns ctx.Err() on polling calls, nil otherwise.
func (p *Poller) Err() error {
	if p.done == nil {
		return nil
	}
	p.tick++
	if p.tick%p.interval != 0 {
		return nil
	}
	return p.ctx.Err()
}
