package cancel

import (
	"context"
	"testing"
)

// A non-positive interval must clamp to 1 instead of panicking with an
// integer divide-by-zero on the first Err call (the poller computes
// tick % interval only when the context is cancellable, which is why the
// bug needed a cancellable ctx to fire).
func TestEveryNonPositiveInterval(t *testing.T) {
	for _, interval := range []int{0, -1, -1000} {
		ctx, cancel := context.WithCancel(context.Background())
		p := Every(ctx, interval)
		if err := p.Err(); err != nil {
			t.Fatalf("Every(ctx, %d).Err() = %v before cancellation", interval, err)
		}
		cancel()
		// Clamped to 1, the very next call must observe the cancellation.
		if err := p.Err(); err != context.Canceled {
			t.Fatalf("Every(ctx, %d).Err() = %v after cancellation, want context.Canceled", interval, err)
		}
	}
}

// A context that can never be cancelled takes the nil-done fast path:
// Err reports nil forever, even on the zero Poller.
func TestEveryNilDoneFastPath(t *testing.T) {
	p := Every(context.Background(), 4)
	for i := 0; i < 10; i++ {
		if err := p.Err(); err != nil {
			t.Fatalf("call %d: Err() = %v on non-cancellable ctx", i, err)
		}
	}
	var zero Poller
	for i := 0; i < 10; i++ {
		if err := zero.Err(); err != nil {
			t.Fatalf("call %d: zero Poller Err() = %v", i, err)
		}
	}
}

// The poller checks ctx exactly once per interval calls: after
// cancellation, Err keeps returning nil until the tick counter reaches
// the next multiple of the interval.
func TestEveryPollingCadence(t *testing.T) {
	const interval = 5
	ctx, cancel := context.WithCancel(context.Background())
	p := Every(ctx, interval)
	cancel()
	for i := 1; i < interval; i++ {
		if err := p.Err(); err != nil {
			t.Fatalf("call %d: Err() = %v, want nil (polls only every %d calls)", i, err, interval)
		}
	}
	if err := p.Err(); err != context.Canceled {
		t.Fatalf("call %d: Err() = %v, want context.Canceled", interval, err)
	}
	// The next window polls again at the following multiple.
	for i := 1; i < interval; i++ {
		if err := p.Err(); err != nil {
			t.Fatalf("second window call %d: Err() = %v, want nil", i, err)
		}
	}
	if err := p.Err(); err != context.Canceled {
		t.Fatalf("second window poll: Err() = %v, want context.Canceled", err)
	}
}
