// Package qcache is gpmd's relation-result cache: a byte-bounded LRU
// keyed by (graph, generation, semantics, canonical pattern digest),
// with a containment fallback that turns near-misses into cheap seeded
// queries.
//
// Identity, not heuristics: the key's digest is the 64-bit hash of the
// pattern's canonical form (internal/pattern Canonical), so any two
// isomorphic patterns — regardless of node numbering or edge order —
// share an entry, and a stored canonical text guards the vanishingly
// unlikely digest collision. The generation component is the engine's
// monotone update token (gpm.Engine Generation): an effective update
// moves every subsequent lookup to a new generation, orphaning old
// entries without any flush, while net-no-op batches leave the token —
// and therefore every cached answer — untouched.
//
// The containment fallback is the paper-adjacent piece (Fan et al.'s
// VLDB 2010 framework treats matches as relations; containment between
// patterns transfers to containment between their relations): when the
// exact digest misses, Seed scans the same (graph, generation,
// semantics) bucket for a cached pattern p′ that CONTAINS the query p
// — pattern.Containment(p′, p, mode) — and unions the witnessed rows of
// p′'s relation into a candidate seed for p. The engine's fixpoint,
// started from that superset instead of a whole-graph scan, returns the
// exact same relation it would have computed cold (the greatest
// fixpoint inside any superset of the maximum relation is the maximum
// relation), only faster.
package qcache

import (
	"container/list"
	"sync"

	"gpm/internal/pattern"
)

// Key identifies one cached relation.
type Key struct {
	// Graph is the bound graph's name.
	Graph string
	// Generation is the engine's update token at the time the relation
	// was computed; see gpm.Engine Generation.
	Generation uint64
	// Semantics is the wire name of the matching semantics: "match",
	// "sim", "dual" or "strong".
	Semantics string
	// Digest is the canonical pattern digest (pattern.Canon.Digest).
	Digest uint64
}

// bucket groups the entries a containment probe may scan: same graph,
// same generation, same semantics.
type bucketKey struct {
	graph      string
	generation uint64
	semantics  string
}

func (k Key) bucket() bucketKey {
	return bucketKey{k.Graph, k.Generation, k.Semantics}
}

// entry is one cached relation. Relation rows are shared with callers
// and treated as immutable by contract.
type entry struct {
	key   Key
	canon string // canonical pattern text: digest-collision guard
	pat   *pattern.Pattern
	rel   [][]int32
	ok    bool
	size  int64
	// wire is the encoded hit response for this entry, memoised by the
	// server after the first exact hit so later hits skip the JSON encode
	// entirely. Nil until set; billed against the byte budget.
	wire []byte
}

// entryOverhead approximates the per-entry bookkeeping bytes (list
// element, map slots, struct headers) added to the measured payload.
const entryOverhead = 256

func entrySize(canon string, pat *pattern.Pattern, rel [][]int32) int64 {
	cells := 0
	for _, row := range rel {
		cells += len(row)
	}
	// The pattern's in-memory footprint tracks its text closely enough
	// to bill it as a second copy of the canonical form.
	return entryOverhead + 2*int64(len(canon)) + 4*int64(cells)
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits            int64 // exact canonical-digest hits
	Misses          int64 // lookups that found no exact entry
	ContainmentHits int64 // misses answered via a containing pattern's seed
	Evictions       int64 // entries dropped to fit the byte budget
	Entries         int64 // live entries
	Bytes           int64 // live payload bytes (approximate)
	MaxBytes        int64 // configured budget
}

// Cache is a concurrency-safe byte-bounded LRU over relation results.
// The zero value is not usable; construct with New.
type Cache struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	ll      *list.List // front = most recently used; values are *entry
	items   map[Key]*list.Element
	buckets map[bucketKey]map[*list.Element]struct{}

	// canonical-form memo: raw request pattern text -> canonical form.
	// The mapping is pure (text in, canonical out), so entries never need
	// invalidating; the two-generation rotation bounds memory instead of
	// tracking recency per entry.
	memo, memoPrev map[string]canonRef

	hits, misses, containment, evictions int64
}

// canonRef is a memoised canonicalisation result.
type canonRef struct {
	digest uint64
	text   string
}

// canonMemoCap bounds each memo generation; at most 2*canonMemoCap
// distinct pattern texts are remembered at once.
const canonMemoCap = 4096

// New returns an empty cache bounded by maxBytes of (approximate)
// payload. maxBytes must be positive; a server that wants caching off
// simply holds a nil *Cache.
func New(maxBytes int64) *Cache {
	return &Cache{
		max:     maxBytes,
		ll:      list.New(),
		items:   make(map[Key]*list.Element),
		buckets: make(map[bucketKey]map[*list.Element]struct{}),
		memo:    make(map[string]canonRef),
	}
}

// Canon looks up a memoised canonicalisation of raw pattern text. A hit
// lets the request path skip both the pattern parse and the canonical
// search; a miss means the caller must compute them (and should record
// the result with PutCanon).
func (c *Cache) Canon(text string) (digest uint64, canonText string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ref, found := c.memo[text]; found {
		return ref.digest, ref.text, true
	}
	if ref, found := c.memoPrev[text]; found {
		c.memo[text] = ref // promote so a rotation doesn't drop a live text
		return ref.digest, ref.text, true
	}
	return 0, "", false
}

// PutCanon memoises one text -> canonical form mapping.
func (c *Cache) PutCanon(text string, digest uint64, canonText string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.memo) >= canonMemoCap {
		c.memoPrev = c.memo
		c.memo = make(map[string]canonRef)
	}
	c.memo[text] = canonRef{digest: digest, text: canonText}
}

// Get looks up an exact entry. canon must be the canonical text whose
// digest is key.Digest: a stored entry with a different text is a digest
// collision and reported as a miss. The returned relation and wire bytes
// are shared — callers must not mutate them; wire is nil until the first
// exact hit memoises the encoded response via SetWire.
func (c *Cache) Get(key Key, canon string) (rel [][]int32, wire []byte, ok bool, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.items[key]
	if !found || el.Value.(*entry).canon != canon {
		c.misses++
		return nil, nil, false, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*entry)
	return e.rel, e.wire, e.ok, true
}

// SetWire memoises the encoded hit response for an existing entry. The
// bytes are billed against the budget (evicting from the cold end as
// needed) so a cache full of large responses cannot outgrow -cache-bytes.
func (c *Cache) SetWire(key Key, canon string, wire []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.items[key]
	if !found {
		return
	}
	e := el.Value.(*entry)
	if e.canon != canon || e.wire != nil {
		return
	}
	e.wire = wire
	e.size += int64(len(wire))
	c.bytes += int64(len(wire))
	for c.bytes > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.remove(back)
		c.evictions++
	}
}

// Put stores a relation under key. pat must be the parsed pattern the
// relation answers (kept for containment probes) and canon its canonical
// text. Entries larger than the whole budget are silently not cached;
// an existing entry under the same key is refreshed in place.
func (c *Cache) Put(key Key, canon string, pat *pattern.Pattern, rel [][]int32, resOK bool) {
	size := entrySize(canon, pat, rel)
	if size > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, dup := c.items[key]; dup {
		e := el.Value.(*entry)
		c.bytes += size - e.size
		e.canon, e.pat, e.rel, e.ok, e.size = canon, pat, rel, resOK, size
		c.ll.MoveToFront(el)
	} else {
		e := &entry{key: key, canon: canon, pat: pat, rel: rel, ok: resOK, size: size}
		el := c.ll.PushFront(e)
		c.items[key] = el
		bk := key.bucket()
		if c.buckets[bk] == nil {
			c.buckets[bk] = make(map[*list.Element]struct{})
		}
		c.buckets[bk][el] = struct{}{}
		c.bytes += size
	}
	for c.bytes > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.remove(back)
		c.evictions++
	}
}

// remove unlinks one element from every index. Caller holds c.mu.
func (c *Cache) remove(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	bk := e.key.bucket()
	delete(c.buckets[bk], el)
	if len(c.buckets[bk]) == 0 {
		delete(c.buckets, bk)
	}
	c.bytes -= e.size
}

// Seed scans the (graph, generation, semantics) bucket for a cached
// pattern that contains p under mode and, when one is found, derives a
// candidate seed for p: seed[u] is the union of the cached relation's
// rows over u's containment witnesses. The rows may be unsorted and
// carry duplicates — gpm.Engine.RelationQuery normalises seeds. Entries
// whose relation was not total (ok false) still seed correctly: an empty
// witnessed row just proves the query node matches nothing.
func (c *Cache) Seed(graph string, generation uint64, semantics string, p *pattern.Pattern, mode pattern.ContainMode) ([][]int32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	bk := bucketKey{graph, generation, semantics}
	for el := range c.buckets[bk] {
		e := el.Value.(*entry)
		witness, ok := pattern.Containment(e.pat, p, mode)
		if !ok {
			continue
		}
		seed := make([][]int32, p.N())
		for u := range seed {
			for _, a := range witness[u] {
				seed[u] = append(seed[u], e.rel[a]...)
			}
		}
		c.containment++
		c.ll.MoveToFront(el)
		return seed, true
	}
	return nil, false
}

// DropStale evicts every entry for graph whose generation is not
// current. Stale entries are already unreachable — lookups key on the
// live generation — so this only reclaims bytes early; a net-no-op
// update that leaves the generation alone therefore drops nothing.
func (c *Cache) DropStale(graph string, current uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for bk, els := range c.buckets {
		if bk.graph != graph || bk.generation == current {
			continue
		}
		for el := range els {
			c.remove(el)
		}
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:            c.hits,
		Misses:          c.misses,
		ContainmentHits: c.containment,
		Evictions:       c.evictions,
		Entries:         int64(c.ll.Len()),
		Bytes:           c.bytes,
		MaxBytes:        c.max,
	}
}
