package qcache

import (
	"fmt"
	"testing"

	"gpm/internal/pattern"
)

// labelPattern builds a path pattern; an empty label is a wildcard node.
func labelPattern(labels ...string) *pattern.Pattern {
	p := pattern.New()
	ids := make([]int, len(labels))
	for i, l := range labels {
		var pred pattern.Predicate
		if l != "" {
			pred = pattern.Label(l)
		}
		ids[i] = p.AddNode(pred)
	}
	for i := 0; i+1 < len(ids); i++ {
		p.MustAddEdge(ids[i], ids[i+1], 1)
	}
	return p
}

func keyOf(p *pattern.Pattern, graph string, gen uint64, sem string) (Key, string) {
	c, err := p.Canonical()
	if err != nil {
		panic(err)
	}
	return Key{Graph: graph, Generation: gen, Semantics: sem, Digest: c.Digest}, c.Text
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(1 << 20)
	p := labelPattern("A", "B")
	key, canon := keyOf(p, "g", 0, "match")
	if _, _, _, hit := c.Get(key, canon); hit {
		t.Fatal("hit on empty cache")
	}
	rel := [][]int32{{1, 2}, {3}}
	c.Put(key, canon, p, rel, true)
	got, _, ok, hit := c.Get(key, canon)
	if !hit || !ok {
		t.Fatalf("Get after Put: hit=%v ok=%v", hit, ok)
	}
	if len(got) != 2 || got[0][0] != 1 || got[1][0] != 3 {
		t.Fatalf("Get returned %v", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("stats after one miss and one hit: %+v", st)
	}
}

// A digest collision (same key, different canonical text) must read as a
// miss, never as another pattern's relation.
func TestCollisionGuard(t *testing.T) {
	c := New(1 << 20)
	p := labelPattern("A", "B")
	key, canon := keyOf(p, "g", 0, "match")
	c.Put(key, canon, p, [][]int32{{1}, {2}}, true)
	if _, _, _, hit := c.Get(key, canon+"x"); hit {
		t.Fatal("collision guard let a mismatched canonical text hit")
	}
}

// Distinct generations are distinct entries: an effective update keys
// new answers under the new token, and old ones stay invisible.
func TestGenerationKeysDiffer(t *testing.T) {
	c := New(1 << 20)
	p := labelPattern("A", "B")
	k0, canon := keyOf(p, "g", 0, "match")
	k1 := k0
	k1.Generation = 1
	c.Put(k0, canon, p, [][]int32{{1}, {2}}, true)
	if _, _, _, hit := c.Get(k1, canon); hit {
		t.Fatal("generation 1 lookup hit a generation 0 entry")
	}
}

func TestEvictionRespectsByteBudget(t *testing.T) {
	p := labelPattern("A", "B")
	_, canon := keyOf(p, "g", 0, "match")
	one := entrySize(canon, p, [][]int32{{1}, {2}})
	c := New(3 * one)
	for i := 0; i < 5; i++ {
		k, _ := keyOf(p, fmt.Sprintf("g%d", i), 0, "match")
		c.Put(k, canon, p, [][]int32{{1}, {2}}, true)
	}
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 2 {
		t.Fatalf("want 3 entries, 2 evictions; got %+v", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d exceed budget %d", st.Bytes, st.MaxBytes)
	}
	// LRU order: the oldest two graphs are gone, the newest three live.
	for i := 0; i < 5; i++ {
		k, _ := keyOf(p, fmt.Sprintf("g%d", i), 0, "match")
		_, _, _, hit := c.Get(k, canon)
		if want := i >= 2; hit != want {
			t.Errorf("graph g%d: hit=%v, want %v", i, hit, want)
		}
	}
}

func TestOversizedEntryNotCached(t *testing.T) {
	c := New(16)
	p := labelPattern("A", "B")
	key, canon := keyOf(p, "g", 0, "match")
	c.Put(key, canon, p, [][]int32{{1}, {2}}, true)
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("oversized entry was cached: %+v", st)
	}
}

// Seed finds a containing pattern in the same bucket and unions its
// witnessed rows; patterns in other buckets (different graph, different
// generation, different semantics) are invisible.
func TestSeedFromContainingPattern(t *testing.T) {
	c := New(1 << 20)
	// loose: *->* contains strict: A->B (every relation of strict is a
	// sub-relation of loose's under the child mode).
	loose := labelPattern("", "")
	strict := labelPattern("A", "B")
	key, canon := keyOf(loose, "g", 7, "sim")
	rel := [][]int32{{0, 1, 2}, {3, 4}}
	c.Put(key, canon, loose, rel, true)

	if _, found := c.Seed("g", 7, "sim", strict, pattern.ContainChild); !found {
		t.Fatal("containing pattern in bucket not found")
	}
	seed, found := c.Seed("g", 7, "sim", strict, pattern.ContainChild)
	if !found {
		t.Fatal("second probe missed")
	}
	if len(seed) != strict.N() {
		t.Fatalf("seed has %d rows for a %d-node pattern", len(seed), strict.N())
	}
	// Every witnessed row of loose must be present in the union.
	if len(seed[0]) == 0 || len(seed[1]) == 0 {
		t.Fatalf("empty seed rows: %v", seed)
	}
	for _, probe := range []struct {
		graph string
		gen   uint64
		sem   string
	}{{"other", 7, "sim"}, {"g", 8, "sim"}, {"g", 7, "dual"}} {
		if _, found := c.Seed(probe.graph, probe.gen, probe.sem, strict, pattern.ContainChild); found {
			t.Errorf("bucket (%q, %d, %q) leaked into the probe", probe.graph, probe.gen, probe.sem)
		}
	}
	if st := c.Stats(); st.ContainmentHits != 2 {
		t.Fatalf("containment hits = %d, want 2", st.ContainmentHits)
	}
}

// A pattern that does NOT contain the query must not seed it.
func TestSeedRejectsNonContaining(t *testing.T) {
	c := New(1 << 20)
	strict := labelPattern("A", "B")
	loose := labelPattern("", "")
	key, canon := keyOf(strict, "g", 0, "sim")
	c.Put(key, canon, strict, [][]int32{{1}, {2}}, true)
	// strict does not contain loose: loose's relation can exceed strict's.
	if _, found := c.Seed("g", 0, "sim", loose, pattern.ContainChild); found {
		t.Fatal("non-containing pattern produced a seed")
	}
}

// SetWire memoises encoded bytes on an existing entry, bills them
// against the budget, and refuses mismatched canonical texts.
func TestSetWire(t *testing.T) {
	c := New(1 << 20)
	p := labelPattern("A", "B")
	key, canon := keyOf(p, "g", 0, "match")
	c.SetWire(key, canon, []byte("early")) // no entry yet: ignored
	c.Put(key, canon, p, [][]int32{{1}, {2}}, true)
	before := c.Stats().Bytes
	if _, wire, _, hit := c.Get(key, canon); !hit || wire != nil {
		t.Fatalf("before SetWire: hit=%v wire=%q", hit, wire)
	}
	c.SetWire(key, canon+"x", []byte("collision")) // wrong canon: ignored
	c.SetWire(key, canon, []byte("body\n"))
	c.SetWire(key, canon, []byte("other\n")) // first write wins
	_, wire, _, hit := c.Get(key, canon)
	if !hit || string(wire) != "body\n" {
		t.Fatalf("after SetWire: hit=%v wire=%q", hit, wire)
	}
	if got := c.Stats().Bytes; got != before+5 {
		t.Errorf("wire bytes not billed: %d -> %d, want +5", before, got)
	}
}

func TestCanonMemo(t *testing.T) {
	c := New(1 << 20)
	if _, _, ok := c.Canon("0 A\n"); ok {
		t.Fatal("empty memo hit")
	}
	c.PutCanon("0 A\n", 42, "canon-text")
	d, text, ok := c.Canon("0 A\n")
	if !ok || d != 42 || text != "canon-text" {
		t.Fatalf("memo returned (%d, %q, %v)", d, text, ok)
	}
	// Rotation keeps recently-promoted entries alive: fill one generation,
	// rotate, and check the original text survives via promotion.
	for i := 0; i < canonMemoCap; i++ {
		c.PutCanon(fmt.Sprintf("t%d", i), uint64(i), "x")
	}
	if _, _, ok := c.Canon("0 A\n"); !ok {
		t.Fatal("entry lost after one rotation")
	}
}

func TestDropStale(t *testing.T) {
	c := New(1 << 20)
	p := labelPattern("A", "B")
	for gen := uint64(0); gen < 3; gen++ {
		k, canon := keyOf(p, "g", gen, "match")
		c.Put(k, canon, p, [][]int32{{1}, {2}}, true)
	}
	kOther, canonOther := keyOf(p, "other", 0, "match")
	c.Put(kOther, canonOther, p, [][]int32{{1}, {2}}, true)

	c.DropStale("g", 2)
	st := c.Stats()
	if st.Entries != 2 {
		t.Fatalf("DropStale left %d entries, want 2 (current gen + other graph)", st.Entries)
	}
	k2, canon := keyOf(p, "g", 2, "match")
	if _, _, _, hit := c.Get(k2, canon); !hit {
		t.Error("DropStale removed the current generation's entry")
	}
	if _, _, _, hit := c.Get(kOther, canonOther); !hit {
		t.Error("DropStale removed another graph's entry")
	}
	// Dropping with an unchanged generation (the no-op update path) must
	// evict nothing.
	before := c.Stats().Entries
	c.DropStale("g", 2)
	if after := c.Stats().Entries; after != before {
		t.Errorf("no-op DropStale evicted %d entries", before-after)
	}
}
