package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpm/internal/fixtures"
	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/simulation"
	"gpm/internal/value"
)

func relEqual(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestPaperFixtures checks every encoded paper example against the exact
// relation stated in Example 2.2, under all three oracle variants.
func TestPaperFixtures(t *testing.T) {
	for _, c := range fixtures.All() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			oracles := map[string]DistOracle{
				"matrix": BuildMatrixOracle(c.G),
				"bfs":    NewBFSOracle(c.G),
				"2hop":   BuildTwoHopOracle(c.G),
			}
			for name, o := range oracles {
				res, err := MatchWithOracle(c.P, c.G, o)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if res.OK() != c.Matches {
					t.Fatalf("%s: OK = %v, want %v", name, res.OK(), c.Matches)
				}
				if c.Matches && !relEqual(res.Relation(), c.Want) {
					t.Errorf("%s: relation mismatch\n got %v\nwant %v", name, res.Relation(), c.Want)
				}
			}
		})
	}
}

func TestDrugRingDetails(t *testing.T) {
	c := fixtures.DrugRing()
	res, err := Match(c.P, c.G)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatal("drug ring should match")
	}
	// AM and S both map to the secretary node (bijections cannot do this:
	// Example 1.1 point 1).
	sec := res.Mat(2)[0]
	if !res.Contains(1, sec) {
		t.Error("secretary should match both AM and S")
	}
	// AM maps to multiple nodes (point 2).
	if len(res.Mat(1)) != 3 {
		t.Errorf("AM matches %d nodes, want 3", len(res.Mat(1)))
	}
	// FW matches all 9 workers (point 3: 3-hop supervision chains).
	if len(res.Mat(3)) != 9 {
		t.Errorf("FW matches %d nodes, want 9", len(res.Mat(3)))
	}
	if res.Pairs() != 1+3+1+9 {
		t.Errorf("Pairs = %d", res.Pairs())
	}
	if res.MatchedNodes() != 4 {
		t.Errorf("MatchedNodes = %d", res.MatchedNodes())
	}
}

func TestCollaborationNoMatchDetails(t *testing.T) {
	c := fixtures.CollaborationNoMatch()
	res, err := Match(c.P, c.G)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("G3 should not match P2")
	}
	// CS has no candidates left (the appendix walks through this).
	if len(res.Mat(0)) != 0 {
		t.Errorf("mat(CS) = %v, want empty", res.Mat(0))
	}
}

func TestResultAccessors(t *testing.T) {
	c := fixtures.SocialMatching()
	res, _ := Match(c.P, c.G)
	if res.Pattern() != c.P || res.Graph() != c.G {
		t.Error("accessors wrong")
	}
	if !res.Contains(fixtures.P1SE, fixtures.G1HRSE) {
		t.Error("Contains misses a pair")
	}
	if res.Contains(fixtures.P1SE, fixtures.G1HR) {
		t.Error("Contains reports a non-pair")
	}
	if res.String() == "" {
		t.Error("String empty")
	}
	rel := res.Relation()
	rel[0] = nil // must not alias internal state
	if len(res.Mat(0)) == 0 {
		t.Error("Relation aliases internal state")
	}
}

func TestInvalidPattern(t *testing.T) {
	p := pattern.New() // zero nodes
	if _, err := Match(p, graph.New(1)); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := MatchNaive(p, graph.New(1), NewBFSOracle(graph.New(1))); err == nil {
		t.Error("naive accepted empty pattern")
	}
}

func TestUnboundedEdge(t *testing.T) {
	// A -*-> B over a long chain: must match regardless of length.
	g := graph.New(10)
	g.SetAttr(0, graph.Attrs{"label": value.Str("A")})
	for i := 0; i+1 < 10; i++ {
		g.AddEdge(i, i+1)
	}
	g.SetAttr(9, graph.Attrs{"label": value.Str("B")})
	p := pattern.New()
	a := p.AddNode(pattern.Label("A"))
	b := p.AddNode(pattern.Label("B"))
	p.MustAddEdge(a, b, pattern.Unbounded)
	res, _ := Match(p, g)
	if !res.OK() {
		t.Fatal("unbounded edge should match across the chain")
	}
	// With bound 8 it still matches; 9 hops needed... distance is 9.
	p2 := pattern.New()
	a2 := p2.AddNode(pattern.Label("A"))
	b2 := p2.AddNode(pattern.Label("B"))
	p2.MustAddEdge(a2, b2, 8)
	res2, _ := Match(p2, g)
	if res2.OK() {
		t.Fatal("bound 8 < dist 9 should fail")
	}
	p3 := pattern.New()
	a3 := p3.AddNode(pattern.Label("A"))
	b3 := p3.AddNode(pattern.Label("B"))
	p3.MustAddEdge(a3, b3, 9)
	res3, _ := Match(p3, g)
	if !res3.OK() {
		t.Fatal("bound 9 = dist 9 should match")
	}
}

func TestSelfPatternEdgeNeedsCycle(t *testing.T) {
	// Pattern A -2-> A: only nodes on a short cycle qualify.
	p := pattern.New()
	a := p.AddNode(pattern.Label("A"))
	p.MustAddEdge(a, a, 2)

	chainG := graph.New(2)
	chainG.SetAttr(0, graph.Attrs{"label": value.Str("A")})
	chainG.SetAttr(1, graph.Attrs{"label": value.Str("A")})
	chainG.AddEdge(0, 1)
	res, _ := Match(p, chainG)
	if res.OK() {
		t.Error("chain has no cycle; self-edge must fail")
	}

	cycG := graph.New(2)
	cycG.SetAttr(0, graph.Attrs{"label": value.Str("A")})
	cycG.SetAttr(1, graph.Attrs{"label": value.Str("A")})
	cycG.AddEdge(0, 1)
	cycG.AddEdge(1, 0)
	res, _ = Match(p, cycG)
	if !res.OK() || res.Pairs() != 2 {
		t.Errorf("2-cycle should match both nodes: %v", res.Relation())
	}
}

func TestColoredMatch(t *testing.T) {
	// A -2,friend-> B: only monochromatic friend paths count.
	g := graph.New(4)
	g.SetAttr(0, graph.Attrs{"label": value.Str("A")})
	g.SetAttr(3, graph.Attrs{"label": value.Str("B")})
	g.AddColoredEdge(0, 1, "friend")
	g.AddColoredEdge(1, 3, "friend") // friend path of length 2
	g.AddColoredEdge(0, 2, "work")
	g.AddColoredEdge(2, 3, "work")
	p := pattern.New()
	a := p.AddNode(pattern.Label("A"))
	b := p.AddNode(pattern.Label("B"))
	if _, err := p.AddColoredEdge(a, b, 2, "friend"); err != nil {
		t.Fatal(err)
	}
	for name, o := range map[string]DistOracle{
		"matrix": BuildMatrixOracle(g),
		"bfs":    NewBFSOracle(g),
		"2hop":   BuildTwoHopOracle(g),
	} {
		res, err := MatchWithOracle(p, g, o)
		if err != nil || !res.OK() {
			t.Fatalf("%s: colored match failed: %v %v", name, err, res)
		}
	}
	// Break the friend path: only mixed-color paths remain.
	g.RemoveEdge(1, 3)
	res, _ := Match(p, g)
	if res.OK() {
		t.Error("mixed-color path must not satisfy a colored pattern edge")
	}
}

func TestBoundOneEqualsPlainSimulation(t *testing.T) {
	// Bounded simulation with all bounds 1 coincides with HHK simulation
	// (§2.2 remark 2).
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLabeledGraph(r, 1+r.Intn(12), r.Intn(25), 3)
		p := randomPattern(r, 1+r.Intn(4), r.Intn(6), 3, 1, false)
		simRel, simOK, err := simulation.Run(p, g)
		if err != nil {
			return true
		}
		res, err := Match(p, g)
		if err != nil {
			return false
		}
		if res.OK() != simOK {
			return false
		}
		return relEqual(res.Relation(), simRel)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func randomLabeledGraph(r *rand.Rand, n, m, labels int) *graph.Graph {
	if m > n*n {
		m = n * n
	}
	g := graph.New(0)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Attrs{"label": value.Str(string(rune('A' + r.Intn(labels))))})
	}
	for g.M() < m {
		g.AddEdge(r.Intn(n), r.Intn(n))
	}
	return g
}

func randomPattern(r *rand.Rand, np, me, labels, maxBound int, allowStar bool) *pattern.Pattern {
	p := pattern.New()
	for i := 0; i < np; i++ {
		p.AddNode(pattern.Label(string(rune('A' + r.Intn(labels)))))
	}
	for tries := 0; tries < 4*me && p.EdgeCount() < me; tries++ {
		b := 1 + r.Intn(maxBound)
		if allowStar && r.Intn(4) == 0 {
			b = pattern.Unbounded
		}
		p.AddEdge(r.Intn(np), r.Intn(np), b)
	}
	return p
}

// TestMatchAgainstNaive: the counter/worklist algorithm computes exactly
// the naive greatest fixpoint, under every oracle.
func TestMatchAgainstNaive(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLabeledGraph(r, 1+r.Intn(12), r.Intn(28), 3)
		p := randomPattern(r, 1+r.Intn(4), r.Intn(7), 3, 3, true)
		want, err := MatchNaive(p, g, BuildMatrixOracle(g))
		if err != nil {
			return false
		}
		for _, o := range []DistOracle{BuildMatrixOracle(g), NewBFSOracle(g), BuildTwoHopOracle(g)} {
			res, err := MatchWithOracle(p, g, o)
			if err != nil {
				return false
			}
			if res.OK() != want.OK() || !relEqual(res.Relation(), want.Relation()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestMaximality: the result is itself a match, and re-adding any removed
// candidate pair breaks the match property — so the fixpoint is maximal.
func TestMaximality(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLabeledGraph(r, 1+r.Intn(10), r.Intn(20), 2)
		p := randomPattern(r, 1+r.Intn(3), r.Intn(5), 2, 2, false)
		o := BuildMatrixOracle(g)
		res, err := MatchWithOracle(p, g, o)
		if err != nil {
			return false
		}
		rel := res.Relation()
		if res.OK() && !IsMatch(p, g, rel, o) {
			return false
		}
		// Any candidate pair outside the relation must not extend it.
		for u := 0; u < p.N(); u++ {
			for x := int32(0); int(x) < g.N(); x++ {
				if res.Contains(u, x) || !p.Pred(u).Match(g.Attr(int(x))) {
					continue
				}
				ext := res.Relation()
				ext[u] = append(ext[u], x)
				if IsMatch(p, g, ext, o) {
					return false // would contradict maximality
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIsMatchRejectsIllFormed(t *testing.T) {
	c := fixtures.SocialMatching()
	o := BuildMatrixOracle(c.G)
	if IsMatch(c.P, c.G, [][]int32{{0}}, o) {
		t.Error("wrong arity accepted")
	}
	bad := make([][]int32, c.P.N())
	bad[0] = []int32{99}
	if IsMatch(c.P, c.G, bad, o) {
		t.Error("out-of-range node accepted")
	}
}
