// Package core implements bounded graph simulation — the paper's primary
// contribution. Match computes the unique maximum match of a pattern in a
// data graph (Theorem 3.1) in O(|V||E| + |Ep||V|² + |Vp||V|) time using a
// pluggable distance oracle; the three oracles in this file reproduce the
// paper's three variants: the distance matrix (Match), plain BFS (BFS) and
// 2-hop-filtered BFS (2-hop), compared in Exp-2.
package core

import (
	"context"
	"sync"

	"gpm/internal/graph"
	"gpm/internal/matrix"
	"gpm/internal/pll"
	"gpm/internal/twohop"
)

// DistOracle answers the distance queries Match needs: the length of the
// shortest *nonempty* path from u to v (≥ 1; a node reaches itself only
// through a cycle), restricted to edges of the given color when color is
// non-empty. It returns -1 when no such path exists or when the shortest
// one is longer than bound (bound < 0 means unbounded, the pattern's "*").
//
// Oracles may cache per-source/per-target state and are not safe for
// concurrent use unless documented otherwise.
type DistOracle interface {
	NonemptyDistWithin(u, v, bound int, color string) int
}

// WorkerCloner is implemented by oracles that can hand out additional
// instances for concurrent workers. A clone shares the oracle's immutable
// indexes (distance matrix, 2-hop labelling, frozen adjacency) but owns
// any mutable per-query caches, so each worker of the parallel fixpoint
// probes its clone without locking. Oracles that are themselves safe for
// concurrent use may return themselves.
type WorkerCloner interface {
	CloneForWorker() DistOracle
}

// cloneForWorker returns a worker-private view of o, or nil when o cannot
// be shared across goroutines (unknown user-supplied oracle): callers
// must then fall back to sequential matching.
func cloneForWorker(o DistOracle) DistOracle {
	if c, ok := o.(WorkerCloner); ok {
		return c.CloneForWorker()
	}
	return nil
}

func clampToBound(d, bound int) int {
	if d < 0 || (bound >= 0 && d > bound) {
		return -1
	}
	return d
}

// MatrixOracle answers queries in O(1) from a precomputed all-pairs
// distance matrix — the oracle behind the paper's main Match algorithm.
// Per-color sub-matrices for the edge-color extension are built lazily.
//
// Unlike the BFS-backed oracles, a MatrixOracle is safe for concurrent
// queries as long as the graph and matrix are not mutated meanwhile: the
// plain-edge path reads the immutable matrix only, and the lazy
// color-submatrix cache is guarded by a mutex around a per-color
// sync.Once, so distinct colors build concurrently while racing builders
// of the same color coalesce into one build.
type MatrixOracle struct {
	g       *graph.Graph
	m       *matrix.Matrix
	colorMu sync.Mutex
	colors  map[string]*colorEntry // distance matrices of color subgraphs
}

// colorEntry coalesces concurrent builds of one color submatrix.
type colorEntry struct {
	once sync.Once
	m    *matrix.Matrix
}

// NewMatrixOracle wraps an existing matrix; the matrix must describe g.
func NewMatrixOracle(g *graph.Graph, m *matrix.Matrix) *MatrixOracle {
	return &MatrixOracle{g: g, m: m}
}

// BuildMatrixOracle computes the distance matrix of g and wraps it. This
// is the paper's preprocessing step (Match, line 1).
func BuildMatrixOracle(g *graph.Graph) *MatrixOracle {
	return NewMatrixOracle(g, matrix.New(g))
}

// Matrix exposes the underlying distance matrix.
func (o *MatrixOracle) Matrix() *matrix.Matrix { return o.m }

// CloneForWorker implements WorkerCloner: the oracle itself is safe for
// concurrent queries.
func (o *MatrixOracle) CloneForWorker() DistOracle { return o }

// NonemptyDistWithin implements DistOracle.
func (o *MatrixOracle) NonemptyDistWithin(u, v, bound int, color string) int {
	m := o.m
	if color != "" {
		m = o.colorMatrix(color)
	}
	return clampToBound(m.NonemptyDist(u, v), bound)
}

func (o *MatrixOracle) colorMatrix(color string) *matrix.Matrix {
	o.colorMu.Lock()
	if o.colors == nil {
		o.colors = make(map[string]*colorEntry)
	}
	e, ok := o.colors[color]
	if !ok {
		e = &colorEntry{}
		o.colors[color] = e
	}
	o.colorMu.Unlock()
	e.once.Do(func() {
		// Build the color subgraph once and take its matrix; matrix.New
		// itself fans the per-source BFS across all CPUs. Other colors
		// build concurrently — only same-color builders wait here.
		sub := graph.New(o.g.N())
		o.g.Edges(func(u, v int) {
			if c, _ := o.g.Color(u, v); c == color {
				sub.AddEdge(u, v)
			}
		})
		e.m = matrix.New(sub)
	})
	return e.m
}

// InvalidateColors drops the cached color submatrices. The engine layer
// calls it after edge updates: the main matrix is maintained in place by
// DynMatrix, but color submatrices are rebuilt on demand.
func (o *MatrixOracle) InvalidateColors() {
	o.colorMu.Lock()
	o.colors = nil
	o.colorMu.Unlock()
}

// bfsCache holds one full BFS frontier keyed by (node, direction, color).
type bfsCache struct {
	node    int
	color   string
	valid   bool
	dist    []int32
	scratch []int32
}

func (c *bfsCache) ensure(n int) {
	if c.dist == nil {
		c.dist = make([]int32, n)
		c.scratch = make([]int32, 0, n)
	}
}

func (c *bfsCache) reset(node int, color string, n int) {
	c.ensure(n)
	for i := range c.dist {
		c.dist[i] = -1
	}
	c.node = node
	c.color = color
	c.valid = true
}

// BFSOracle answers queries by breadth-first search over a frozen CSR
// snapshot, caching the last forward frontier (distances from one source)
// and the last backward frontier (distances to one target). Match's loops
// fix one endpoint and sweep the other, so almost every query after the
// first per group is a cache hit; this is the paper's "BFS" variant.
//
// A BFSOracle is single-goroutine state; for parallel matching each
// worker takes a CloneForWorker, which shares the snapshot but owns its
// frontier caches.
type BFSOracle struct {
	g        *graph.Graph  // nil for snapshot-only oracles
	f        *graph.Frozen // lazily frozen from g when nil
	fwd, bwd bfsCache
	lastU    int
	lastV    int
}

// NewBFSOracle returns a BFS-based oracle over g. The graph is frozen on
// first use; after mutating g, call Invalidate to re-freeze and drop
// cached frontiers.
func NewBFSOracle(g *graph.Graph) *BFSOracle {
	return &BFSOracle{g: g, lastU: -1, lastV: -1}
}

// NewBFSOracleFrozen returns a BFS oracle over an existing immutable
// snapshot, skipping the freeze NewBFSOracle would pay. The engine layer
// uses this to serve per-query oracles from its cached snapshot.
func NewBFSOracleFrozen(f *graph.Frozen) *BFSOracle {
	return &BFSOracle{f: f, lastU: -1, lastV: -1}
}

// CloneForWorker implements WorkerCloner: the clone shares the frozen
// snapshot and starts with empty frontier caches.
func (o *BFSOracle) CloneForWorker() DistOracle {
	return NewBFSOracleFrozen(o.frozen())
}

func (o *BFSOracle) frozen() *graph.Frozen {
	if o.f == nil {
		o.f = o.g.Freeze()
	}
	return o.f
}

// Invalidate drops cached frontiers and the frozen snapshot; callers must
// invoke it after the graph changes. Snapshot-only oracles (built with
// NewBFSOracleFrozen) keep their snapshot — it is immutable by contract.
func (o *BFSOracle) Invalidate() {
	o.fwd.valid = false
	o.bwd.valid = false
	o.lastU, o.lastV = -1, -1
	if o.g != nil {
		o.f = nil
	}
}

// NonemptyDistWithin implements DistOracle.
func (o *BFSOracle) NonemptyDistWithin(u, v, bound int, color string) int {
	if u == v {
		return clampToBound(o.cycleLen(u, color), bound)
	}
	d := o.pairDist(u, v, color)
	return clampToBound(d, bound)
}

func (o *BFSOracle) pairDist(u, v int, color string) int {
	if o.fwd.valid && o.fwd.node == u && o.fwd.color == color {
		o.lastU, o.lastV = u, v
		return int(o.fwd.dist[v])
	}
	if o.bwd.valid && o.bwd.node == v && o.bwd.color == color {
		o.lastU, o.lastV = u, v
		return int(o.bwd.dist[u])
	}
	// Miss: build the frontier for the endpoint that repeated, guessing
	// forward when neither did.
	if v == o.lastV && u != o.lastU {
		o.buildBackward(v, color)
		o.lastU, o.lastV = u, v
		return int(o.bwd.dist[u])
	}
	o.buildForward(u, color)
	o.lastU, o.lastV = u, v
	return int(o.fwd.dist[v])
}

// cycleLen returns the shortest nonempty cycle through u: one backward
// frontier to u, then the best successor.
func (o *BFSOracle) cycleLen(u int, color string) int {
	if !(o.bwd.valid && o.bwd.node == u && o.bwd.color == color) {
		o.buildBackward(u, color)
	}
	f := o.frozen()
	best := -1
	for _, w := range f.Out(u) {
		if color != "" && f.Color(u, int(w)) != color {
			continue
		}
		if dw := o.bwd.dist[w]; dw >= 0 && (best < 0 || int(dw)+1 < best) {
			best = int(dw) + 1
		}
	}
	return best
}

func (o *BFSOracle) buildForward(u int, color string) {
	o.fwd.reset(u, color, o.frozen().N())
	bfsDirected(o.frozen(), u, color, false, o.fwd.dist, &o.fwd.scratch)
}

func (o *BFSOracle) buildBackward(v int, color string) {
	o.bwd.reset(v, color, o.frozen().N())
	bfsDirected(o.frozen(), v, color, true, o.bwd.dist, &o.bwd.scratch)
}

// bfsDirected runs an unbounded BFS from src into dist (pre-filled -1)
// over the frozen snapshot, following in-edges when reverse is true and,
// when color is non-empty, only edges of that color.
func bfsDirected(f *graph.Frozen, src int, color string, reverse bool, dist []int32, scratch *[]int32) {
	queue := (*scratch)[:0]
	dist[src] = 0
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		dx := dist[x]
		var nbrs []int32
		if reverse {
			nbrs = f.In(int(x))
		} else {
			nbrs = f.Out(int(x))
		}
		for _, y := range nbrs {
			if dist[y] >= 0 {
				continue
			}
			if color != "" {
				var c string
				if reverse {
					c = f.Color(int(y), int(x))
				} else {
					c = f.Color(int(x), int(y))
				}
				if c != color {
					continue
				}
			}
			dist[y] = dx + 1
			queue = append(queue, y)
		}
	}
	*scratch = queue
}

// TwoHopOracle is the paper's "2-hop" variant: a 2-hop reachability
// labelling filters out unreachable pairs in label-intersection time, and
// only reachable pairs fall through to (cached) BFS for the exact
// distance. Labels ignore colors, which keeps them a sound filter for
// color-restricted queries.
type TwoHopOracle struct {
	idx *twohop.Index
	bfs *BFSOracle
}

// NewTwoHopOracle wraps a prebuilt index over g.
func NewTwoHopOracle(g *graph.Graph, idx *twohop.Index) *TwoHopOracle {
	return &TwoHopOracle{idx: idx, bfs: NewBFSOracle(g)}
}

// NewTwoHopOracleFrozen wraps a prebuilt index over an existing frozen
// snapshot, skipping the freeze NewTwoHopOracle would pay on first use.
func NewTwoHopOracleFrozen(f *graph.Frozen, idx *twohop.Index) *TwoHopOracle {
	return &TwoHopOracle{idx: idx, bfs: NewBFSOracleFrozen(f)}
}

// BuildTwoHopOracle constructs the labelling for g and wraps it.
func BuildTwoHopOracle(g *graph.Graph) *TwoHopOracle {
	return NewTwoHopOracle(g, twohop.Build(g))
}

// Index exposes the underlying 2-hop labelling.
func (o *TwoHopOracle) Index() *twohop.Index { return o.idx }

// CloneForWorker implements WorkerCloner: the clone shares the labelling
// and the frozen snapshot but owns its BFS frontier caches.
func (o *TwoHopOracle) CloneForWorker() DistOracle {
	return &TwoHopOracle{idx: o.idx, bfs: NewBFSOracleFrozen(o.bfs.frozen())}
}

// NonemptyDistWithin implements DistOracle.
func (o *TwoHopOracle) NonemptyDistWithin(u, v, bound int, color string) int {
	if !o.idx.ReachableNonempty(o.bfs.frozen(), u, v) {
		return -1
	}
	return o.bfs.NonemptyDistWithin(u, v, bound, color)
}

// PLLOracle answers queries from a pruned-landmark labelling (package
// pll): exact distances in label-merge time with memory that scales
// with the graph's hub structure instead of |V|² — the oracle that
// takes bounded simulation to million-node graphs, and the engine's
// auto choice past the matrix threshold. Per-color sub-labelings are
// built lazily the way MatrixOracle builds color submatrices.
//
// A PLLOracle is single-goroutine state: its probe caches expand one
// endpoint's label into a hub-indexed distance array, so Match's
// endpoint-major sweeps cost one array lookup per label entry of the
// swept endpoint. For parallel matching each worker takes a
// CloneForWorker, which shares the labelling, the frozen snapshot and
// the color sub-labelings but owns its probe caches.
type PLLOracle struct {
	sh       *pllShared
	fwd, bwd pllProbe
	lastU    int
	lastV    int
}

// pllShared is the immutable-after-build state every worker clone of a
// PLLOracle shares.
type pllShared struct {
	f       *graph.Frozen
	idx     *pll.Index
	colorMu sync.Mutex
	colors  map[string]*pllColorEntry // labellings of color subgraphs
}

// pllColorEntry coalesces concurrent builds of one color sub-labelling.
type pllColorEntry struct {
	once sync.Once
	idx  *pll.Index
}

// NewPLLOracleFrozen wraps a prebuilt labelling over the snapshot it
// was built from.
func NewPLLOracleFrozen(f *graph.Frozen, idx *pll.Index) *PLLOracle {
	return &PLLOracle{sh: &pllShared{f: f, idx: idx}, lastU: -1, lastV: -1}
}

// BuildPLLOracle freezes g and constructs its pruned-landmark
// labelling. It errors when g exceeds pll.MaxNodes or when ctx is
// cancelled mid-build.
func BuildPLLOracle(ctx context.Context, g *graph.Graph) (*PLLOracle, error) {
	f := g.Freeze()
	idx, err := pll.Build(ctx, f, pll.AutoOptions(f))
	if err != nil {
		return nil, err
	}
	return NewPLLOracleFrozen(f, idx), nil
}

// Index exposes the underlying labelling.
func (o *PLLOracle) Index() *pll.Index { return o.sh.idx }

// CloneForWorker implements WorkerCloner: the clone shares the
// labelling and the color sub-labelings but owns its probe caches.
func (o *PLLOracle) CloneForWorker() DistOracle {
	return &PLLOracle{sh: o.sh, lastU: -1, lastV: -1}
}

// NonemptyDistWithin implements DistOracle.
func (o *PLLOracle) NonemptyDistWithin(u, v, bound int, color string) int {
	if bound == 0 {
		return -1 // nonempty paths have length >= 1
	}
	idx := o.sh.idx
	if color != "" {
		idx = o.sh.colorIndex(color)
	}
	if u == v {
		return clampToBound(o.cycleLen(u, bound, color, idx), bound)
	}
	return clampToBound(o.pairDist(u, v, bound, color, idx), bound)
}

func (o *PLLOracle) pairDist(u, v, bound int, color string, idx *pll.Index) int {
	if o.bwd.valid && o.bwd.node == v && o.bwd.color == color {
		o.lastU, o.lastV = u, v
		return o.scanOut(u, bound, idx)
	}
	if o.fwd.valid && o.fwd.node == u && o.fwd.color == color {
		o.lastU, o.lastV = u, v
		return o.scanIn(v, bound, idx)
	}
	// Miss: expand the endpoint that repeated, guessing forward when
	// neither did (the same heuristic as BFSOracle — Match's loops fix
	// one endpoint and sweep the other).
	if v == o.lastV && u != o.lastU {
		o.loadBackward(v, color, idx)
		o.lastU, o.lastV = u, v
		return o.scanOut(u, bound, idx)
	}
	o.loadForward(u, color, idx)
	o.lastU, o.lastV = u, v
	return o.scanIn(v, bound, idx)
}

// cycleLen returns the shortest nonempty cycle through u: the backward
// probe caches distances to u, then every color-compatible successor w
// contributes 1 + d(w, u).
func (o *PLLOracle) cycleLen(u, bound int, color string, idx *pll.Index) int {
	if !(o.bwd.valid && o.bwd.node == u && o.bwd.color == color) {
		o.loadBackward(u, color, idx)
	}
	inner := -1
	if bound > 0 {
		inner = bound - 1
	}
	f := o.sh.f
	best := -1
	for _, w := range f.Out(u) {
		if color != "" && f.Color(u, int(w)) != color {
			continue
		}
		if dw := o.scanOut(int(w), inner, idx); dw >= 0 && (best < 0 || dw+1 < best) {
			best = dw + 1
			if best == 1 {
				break
			}
		}
	}
	return best
}

// scanOut resolves d(u, bwd.node) by scanning u's out-label against the
// cached backward expansion, seeded with the bit-parallel root
// candidates (roots of complete blocks have no label entries, so the
// label merge alone would miss paths through them). The bounded fast
// path skips entries whose raw distance field alone exceeds the bound
// (saturated fields under-report, so the skip is safe) and stops once
// the running best hits 1, the minimum nonempty distance.
func (o *PLLOracle) scanOut(u, bound int, idx *pll.Index) int {
	best := idx.BPDistWithin(u, o.bwd.node, bound)
	if best >= 0 && best <= 1 {
		return best
	}
	bb := int32(bound)
	for _, w := range idx.OutLabel(u) {
		if bound >= 0 && pll.DistField(w) > bb {
			continue
		}
		td := o.bwd.dist[pll.Hub(w)]
		if td < 0 {
			continue
		}
		if c := int(idx.OutDist(u, w)) + int(td); best < 0 || c < best {
			best = c
			if best <= 1 {
				break
			}
		}
	}
	return best
}

// scanIn is scanOut mirrored: d(fwd.node, v) via v's in-label.
func (o *PLLOracle) scanIn(v, bound int, idx *pll.Index) int {
	best := idx.BPDistWithin(o.fwd.node, v, bound)
	if best >= 0 && best <= 1 {
		return best
	}
	bb := int32(bound)
	for _, w := range idx.InLabel(v) {
		if bound >= 0 && pll.DistField(w) > bb {
			continue
		}
		sd := o.fwd.dist[pll.Hub(w)]
		if sd < 0 {
			continue
		}
		if c := int(sd) + int(idx.InDist(v, w)); best < 0 || c < best {
			best = c
			if best <= 1 {
				break
			}
		}
	}
	return best
}

func (o *PLLOracle) loadForward(u int, color string, idx *pll.Index) {
	o.fwd.reset(o.sh.idx.N())
	for _, w := range idx.OutLabel(u) {
		h := pll.Hub(w)
		o.fwd.dist[h] = idx.OutDist(u, w)
		o.fwd.touched = append(o.fwd.touched, h)
	}
	o.fwd.node, o.fwd.color, o.fwd.valid = u, color, true
}

func (o *PLLOracle) loadBackward(v int, color string, idx *pll.Index) {
	o.bwd.reset(o.sh.idx.N())
	for _, w := range idx.InLabel(v) {
		h := pll.Hub(w)
		o.bwd.dist[h] = idx.InDist(v, w)
		o.bwd.touched = append(o.bwd.touched, h)
	}
	o.bwd.node, o.bwd.color, o.bwd.valid = v, color, true
}

// pllProbe caches one endpoint's label expanded into a hub-indexed
// exact-distance array, reset through a touched list so switching
// endpoints costs O(label), not O(|V|). The labels' self entries make
// the direct cases (v a hub of u, u a hub of v) fall out of the same
// array lookups with no special-casing.
type pllProbe struct {
	node    int
	color   string
	valid   bool
	dist    []int32
	touched []int32
}

func (c *pllProbe) reset(n int) {
	if c.dist == nil {
		c.dist = make([]int32, n)
		for i := range c.dist {
			c.dist[i] = -1
		}
		return
	}
	for _, h := range c.touched {
		c.dist[h] = -1
	}
	c.touched = c.touched[:0]
}

// colorIndex returns the labelling of the color-induced subgraph,
// building it on first use; same-color builders coalesce, distinct
// colors build concurrently.
func (s *pllShared) colorIndex(color string) *pll.Index {
	s.colorMu.Lock()
	if s.colors == nil {
		s.colors = make(map[string]*pllColorEntry)
	}
	e, ok := s.colors[color]
	if !ok {
		e = &pllColorEntry{}
		s.colors[color] = e
	}
	s.colorMu.Unlock()
	e.once.Do(func() {
		sub := graph.New(s.f.N())
		s.f.Edges(func(u, v int) {
			if s.f.Color(u, v) == color {
				sub.AddEdge(u, v)
			}
		})
		fz := sub.Freeze()
		// Background context: the sub-labelling is a shared cache that
		// outlives the query that happens to build it first, so one
		// caller's deadline must not poison it for everyone else.
		idx, err := pll.Build(context.Background(), fz, pll.AutoOptions(fz))
		if err != nil {
			// The subgraph has the node count of the main graph, whose
			// build already succeeded — unreachable.
			panic(err)
		}
		e.idx = idx
	})
	return e.idx
}

// EdgeOracle answers distance queries by direct adjacency scan over a
// frozen snapshot: it reports distance 1 when the edge (u, v) exists
// (color-compatible), and no witness otherwise — correct only for
// bound-1 probes, so it serves the all-bounds-one semantics (plain,
// dual and strong simulation), whose result graphs need no path oracle.
// The engine layer uses it to materialise topo result graphs without
// building (and paying the memory for) a full distance oracle.
type EdgeOracle struct {
	f *graph.Frozen
}

// NewEdgeOracle wraps f as a bound-1 DistOracle.
func NewEdgeOracle(f *graph.Frozen) EdgeOracle { return EdgeOracle{f: f} }

// NonemptyDistWithin reports 1 when edge (u, v) exists with a compatible
// color and the bound admits a length-1 path, -1 otherwise. Bounds
// beyond 1 are still answered by adjacency only: callers must only use
// this oracle with all-bounds-one patterns.
func (o EdgeOracle) NonemptyDistWithin(u, v, bound int, color string) int {
	if bound >= 0 && bound < 1 {
		return -1
	}
	for _, y := range o.f.Out(u) {
		if int(y) != v {
			continue
		}
		if color == "" || o.f.Color(u, v) == color {
			return 1
		}
	}
	return -1
}
