package core

import (
	"context"
	"errors"
	"testing"

	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/value"
)

// ringGraph returns a single directed cycle over n uniformly-labelled
// nodes: every node reaches every node, so a self-loop pattern keeps all
// pairs alive and the counter loops run long enough to observe a poll.
func ringGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.SetAttr(i, value.Tuple{"label": value.Str("A")})
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// cancellingOracle cancels its context after a fixed number of probes,
// making "cancelled mid-fixpoint" deterministic.
type cancellingOracle struct {
	inner  DistOracle
	cancel context.CancelFunc
	after  int
	n      int
}

func (c *cancellingOracle) NonemptyDistWithin(u, v, bound int, color string) int {
	c.n++
	if c.n == c.after {
		c.cancel()
	}
	return c.inner.NonemptyDistWithin(u, v, bound, color)
}

func TestMatchContextCancelledMidFixpoint(t *testing.T) {
	g := ringGraph(300)
	p := pattern.New()
	a := p.AddNode(pattern.Label("A"))
	b := p.AddNode(pattern.Label("A"))
	p.MustAddEdge(a, b, pattern.Unbounded)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := &cancellingOracle{inner: BuildMatrixOracle(g), cancel: cancel, after: 1000}
	res, err := MatchContext(ctx, p, g, o, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("res = %v, want nil on cancellation", res)
	}
	if o.n < o.after {
		t.Fatalf("oracle saw %d probes; cancellation never happened mid-fixpoint", o.n)
	}
}

func TestMatchContextStats(t *testing.T) {
	// A 50-ring whose first half is labelled A, second half B. Under
	// "A -> B within 1 hop" only the last A (node 24) survives: its
	// successor is the first B. The other 24 A-candidates refine away.
	g := graph.New(50)
	for i := 0; i < 50; i++ {
		label := "A"
		if i >= 25 {
			label = "B"
		}
		g.SetAttr(i, value.Tuple{"label": value.Str(label)})
		g.AddEdge(i, (i+1)%50)
	}
	p := pattern.New()
	a := p.AddNode(pattern.Label("A"))
	b := p.AddNode(pattern.Label("B"))
	p.MustAddEdge(a, b, 1)

	var stats Stats
	res, err := MatchContext(context.Background(), p, g, BuildMatrixOracle(g), &stats)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatal("pattern should match (node 24 -> node 25)")
	}
	if got := len(res.Mat(a)); got != 1 {
		t.Fatalf("mat(a) has %d nodes, want 1", got)
	}
	if stats.InitialPairs != 50 {
		t.Errorf("InitialPairs = %d, want 50 (25 A + 25 B candidates)", stats.InitialPairs)
	}
	if stats.Removals != 24 {
		t.Errorf("Removals = %d, want 24 (all A candidates but node 24)", stats.Removals)
	}
	if stats.OracleQueries == 0 {
		t.Error("OracleQueries = 0, want > 0")
	}
}

func TestMatchContextBackgroundMatchesPlain(t *testing.T) {
	g := ringGraph(40)
	p := pattern.New()
	a := p.AddNode(pattern.Label("A"))
	b := p.AddNode(pattern.Label("A"))
	p.MustAddEdge(a, b, 3)

	plain, err := MatchWithOracle(p, g, BuildMatrixOracle(g))
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	ctxed, err := MatchContext(context.Background(), p, g, BuildMatrixOracle(g), &stats)
	if err != nil {
		t.Fatal(err)
	}
	if !relEqual(plain.Relation(), ctxed.Relation()) {
		t.Fatal("MatchContext relation differs from MatchWithOracle")
	}
}
