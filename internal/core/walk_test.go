package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/value"
)

// naiveWalkLengths computes, by direct frontier iteration, the set of
// walk lengths 1..maxLen from u that reach v — the reference for the
// masked prober.
func naiveWalkLengths(g *graph.Graph, u, v, maxLen int, color string) map[int]bool {
	out := map[int]bool{}
	cur := map[int]bool{u: true}
	for l := 1; l <= maxLen; l++ {
		next := map[int]bool{}
		for x := range cur {
			for _, y := range g.Out(x) {
				if color != "" {
					if c, _ := g.Color(x, int(y)); c != color {
						continue
					}
				}
				next[int(y)] = true
			}
		}
		if next[v] {
			out[l] = true
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	return out
}

func TestWalkProberHandCases(t *testing.T) {
	// 0 -> 1 -> 2 -> 3 with a shortcut 0 -> 3.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 3)
	w := newWalkProber(g.Freeze())
	if got := w.WalkWithin(0, 3, 1, 1, "", false); got != 1 {
		t.Errorf("lo=1,hi=1: %d, want 1 (the shortcut)", got)
	}
	if got := w.WalkWithin(0, 3, 2, 3, "", false); got != 3 {
		t.Errorf("lo=2,hi=3: %d, want 3 (the chain)", got)
	}
	if got := w.WalkWithin(0, 3, 2, 2, "", false); got != -1 {
		t.Errorf("lo=2,hi=2: %d, want -1 (no length-2 walk)", got)
	}
	// Backward cache path.
	if got := w.WalkWithin(1, 3, 2, 2, "", true); got != 2 {
		t.Errorf("backward lo=2,hi=2: %d, want 2", got)
	}
}

func TestWalkProberRepeatsVertices(t *testing.T) {
	// 0 <-> 1 plus 0 -> 2: walks 0~>2 have lengths 1, 3, 5, ... — a true
	// path semantics would only offer length 1.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(0, 2)
	w := newWalkProber(g.Freeze())
	if got := w.WalkWithin(0, 2, 2, 4, "", false); got != 3 {
		t.Errorf("walk with revisit: %d, want 3", got)
	}
	if got := w.WalkWithin(0, 2, 4, 4, "", false); got != -1 {
		t.Errorf("even length impossible: %d, want -1", got)
	}
}

// Property: the prober agrees with the naive frontier iteration on random
// graphs, ranges, colors, and both cache directions.
func TestWalkProberAgainstNaive(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		g := graph.New(n)
		edges := r.Intn(3 * n)
		if edges > n*n {
			edges = n * n
		}
		colors := []string{"", "c"}
		for g.M() < edges {
			g.AddColoredEdge(r.Intn(n), r.Intn(n), colors[r.Intn(2)])
		}
		w := newWalkProber(g.Freeze())
		for i := 0; i < 80; i++ {
			u, v := r.Intn(n), r.Intn(n)
			lo := 1 + r.Intn(6)
			hi := lo + r.Intn(6)
			color := colors[r.Intn(2)]
			want := -1
			lens := naiveWalkLengths(g, u, v, hi, color)
			for l := lo; l <= hi; l++ {
				if lens[l] {
					want = l
					break
				}
			}
			if got := w.WalkWithin(u, v, lo, hi, color, r.Intn(2) == 0); got != want {
				t.Logf("seed %d (%d,%d,[%d,%d],%q): %d want %d", seed, u, v, lo, hi, color, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRangedMatch(t *testing.T) {
	// Pattern: A --[2..3]--> B. Graph: A with a direct edge to one B and a
	// 2-hop route to another.
	g := graph.New(4)
	g.SetAttr(0, graph.Attrs{"label": value.Str("A")})
	g.SetAttr(2, graph.Attrs{"label": value.Str("B")})
	g.SetAttr(3, graph.Attrs{"label": value.Str("B")})
	g.AddEdge(0, 3) // direct: length 1, below the range
	g.AddEdge(0, 1)
	g.AddEdge(1, 2) // length 2: inside the range
	p := pattern.New()
	a := p.AddNode(pattern.Label("A"))
	b := p.AddNode(pattern.Label("B"))
	if _, err := p.AddRangeEdge(a, b, 2, 3, ""); err != nil {
		t.Fatal(err)
	}
	for name, o := range map[string]DistOracle{
		"matrix": BuildMatrixOracle(g), "bfs": NewBFSOracle(g), "2hop": BuildTwoHopOracle(g),
	} {
		res, err := MatchWithOracle(p, g, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.OK() {
			t.Fatalf("%s: range edge should match via the 2-hop route", name)
		}
		if !res.Contains(b, 2) {
			t.Errorf("%s: B should match node 2", name)
		}
		if !IsMatch(p, g, res.Relation(), o) {
			t.Errorf("%s: IsMatch rejects the ranged result", name)
		}
	}
	// Drop the 2-hop route: the direct edge alone (length 1 < lo) fails.
	g.RemoveEdge(1, 2)
	res, err := Match(p, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Error("length-1 witness must not satisfy a [2..3] range")
	}
}

// Property: ranged Match equals the naive fixpoint on random inputs.
func TestRangedMatchAgainstNaive(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLabeledGraph(r, 1+r.Intn(10), r.Intn(22), 2)
		p := pattern.New()
		np := 1 + r.Intn(3)
		for i := 0; i < np; i++ {
			p.AddNode(pattern.Label(string(rune('A' + r.Intn(2)))))
		}
		for tries := 0; tries < 5; tries++ {
			from, to := r.Intn(np), r.Intn(np)
			if r.Intn(2) == 0 {
				lo := 2 + r.Intn(3)
				p.AddRangeEdge(from, to, lo, lo+r.Intn(3), "")
			} else {
				p.AddEdge(from, to, 1+r.Intn(3))
			}
		}
		o := BuildMatrixOracle(g)
		res, err := MatchWithOracle(p, g, o)
		if err != nil {
			return false
		}
		want, err := MatchNaive(p, g, o)
		if err != nil {
			return false
		}
		return res.OK() == want.OK() && relEqual(res.Relation(), want.Relation())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRangedResultGraphWitness(t *testing.T) {
	g := graph.New(3)
	g.SetAttr(0, graph.Attrs{"label": value.Str("A")})
	g.SetAttr(2, graph.Attrs{"label": value.Str("B")})
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	p := pattern.New()
	a := p.AddNode(pattern.Label("A"))
	b := p.AddNode(pattern.Label("B"))
	if _, err := p.AddRangeEdge(a, b, 2, 4, ""); err != nil {
		t.Fatal(err)
	}
	o := BuildMatrixOracle(g)
	res, _ := MatchWithOracle(p, g, o)
	rg := BuildResultGraph(res, o)
	if len(rg.Edges) != 1 || rg.Edges[0].Dist != 2 {
		t.Errorf("ranged result edge: %+v", rg.Edges)
	}
}
