package core

import (
	"context"
	"sync"
	"sync/atomic"

	"gpm/internal/cancel"
	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// This file shards the two initialisation phases of the bounded-simulation
// fixpoint across a worker pool: candidate filtering (O(|Vp||V|) predicate
// tests) and counter seeding (the O(|Ep||V|²) distance probes that
// dominate Theorem 3.1's bound). The refinement cascade that follows stays
// sequential — removals are a tiny fraction of the probes, and the
// greatest fixpoint is unique regardless of removal order, so parallel and
// sequential runs produce bit-identical results.
//
// Each worker owns a workerProbe: a clone of the distance oracle (shared
// immutable indexes, private frontier caches — see WorkerCloner), a
// private walk prober for ranged edges, a private cancellation poller and
// a local probe counter, so the hot loops run without any locking.

// minShardWork is the smallest number of per-task loop iterations worth a
// task switch; below it, sharding overhead beats the parallel gain.
const minShardWork = 256

// workerProbe is the per-goroutine probing state of one parallel phase.
type workerProbe struct {
	o       DistOracle
	walks   *walkProber
	f       *graph.Frozen
	poll    cancel.Poller
	queries int64
}

// edgeWitness mirrors state.edgeWitness against worker-private state.
func (w *workerProbe) edgeWitness(x, z int, e pattern.Edge) int {
	if e.Ranged() {
		if w.walks == nil {
			w.walks = newWalkProber(w.f)
		}
		return w.walks.WalkWithin(x, z, e.MinBound, e.Bound, e.Color, false)
	}
	w.queries++
	return w.o.NonemptyDistWithin(x, z, e.Bound, e.Color)
}

// abortFlag latches the first error of a worker pool.
type abortFlag struct {
	stop atomic.Bool
	once sync.Once
	err  error
}

func (a *abortFlag) set(err error) {
	a.once.Do(func() {
		a.err = err
		a.stop.Store(true)
	})
}

// runShards feeds task indexes 0..tasks-1 to a pool of probes. run must
// only touch state disjoint per task (or read-only shared state). The
// first error stops the pool; remaining tasks are skipped.
func runShards(probes []*workerProbe, tasks int, run func(p *workerProbe, task int) error) error {
	if len(probes) == 1 {
		for t := 0; t < tasks; t++ {
			if err := run(probes[0], t); err != nil {
				return err
			}
		}
		return nil
	}
	ch := make(chan int)
	var ab abortFlag
	var wg sync.WaitGroup
	for _, p := range probes {
		wg.Add(1)
		go func(p *workerProbe) {
			defer wg.Done()
			for t := range ch {
				if ab.stop.Load() {
					continue
				}
				if err := run(p, t); err != nil {
					ab.set(err)
				}
			}
		}(p)
	}
	for t := 0; t < tasks; t++ {
		if ab.stop.Load() {
			break
		}
		ch <- t
	}
	close(ch)
	wg.Wait()
	return ab.err
}

// shardSpans splits [0, n) into spans of roughly equal size targeting a
// few tasks per worker, but never below minWork iterations each (workUnit
// is the inner-loop cost of one index).
func shardSpans(n, workers, workUnit int) [][2]int {
	if n == 0 {
		return nil
	}
	if workUnit < 1 {
		workUnit = 1
	}
	size := (n + 4*workers - 1) / (4 * workers)
	if size*workUnit < minShardWork {
		size = (minShardWork + workUnit - 1) / workUnit
	}
	var spans [][2]int
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		spans = append(spans, [2]int{lo, hi})
	}
	return spans
}

// parallelInit runs initCandidates and initCounters sharded across
// workers. base is the unwrapped oracle (WorkerCloner-capable, checked by
// the caller); probe counts are aggregated into st.stats at the end.
func (st *state) parallelInit(ctx context.Context, base DistOracle, workers int) error {
	np, n := st.p.N(), st.g.N()
	f := st.frozen()

	probes := make([]*workerProbe, workers)
	for w := range probes {
		probes[w] = &workerProbe{
			o:    cloneForWorker(base),
			f:    f,
			poll: cancel.Every(ctx, cancelPollInterval),
		}
	}

	// Phase 1: candidate filtering, sharded over (pattern node, data-node
	// span). Writes are disjoint: each (u, x) belongs to exactly one task.
	st.cand = make([][]int32, np)
	st.inCand = make([][]bool, np)
	st.inMat = make([][]bool, np)
	st.matSize = make([]int, np)
	for u := 0; u < np; u++ {
		st.inCand[u] = make([]bool, n)
		st.inMat[u] = make([]bool, n)
	}
	type candTask struct {
		u      int
		lo, hi int
	}
	var candTasks []candTask
	for u := 0; u < np; u++ {
		for _, s := range shardSpans(n, workers, 1) {
			candTasks = append(candTasks, candTask{u, s[0], s[1]})
		}
	}
	candOut := make([][]int32, len(candTasks))
	err := runShards(probes, len(candTasks), func(p *workerProbe, t int) error {
		task := candTasks[t]
		u := task.u
		pred := st.p.Pred(u)
		needsOut := st.p.OutDegree(u) > 0
		var local []int32
		for x := task.lo; x < task.hi; x++ {
			if err := p.poll.Err(); err != nil {
				return err
			}
			if needsOut && f.OutDegree(x) == 0 {
				continue
			}
			if !pred.Match(f.Attr(x)) {
				continue
			}
			local = append(local, int32(x))
			st.inCand[u][x] = true
			st.inMat[u][x] = true
		}
		candOut[t] = local
		return nil
	})
	if err != nil {
		return err
	}
	// Concatenate spans in task order: cand lists come out identical to a
	// sequential run (ascending data-node ids).
	for t, task := range candTasks {
		st.cand[task.u] = append(st.cand[task.u], candOut[t]...)
		st.matSize[task.u] += len(candOut[t])
	}
	if st.stats != nil {
		for _, s := range st.matSize {
			st.stats.InitialPairs += int64(s)
		}
	}

	// Phase 2: counter seeding, sharded over (pattern edge, candidate
	// span). cnt rows are per-edge and candidate spans are disjoint, so
	// writes never collide; inMat is read-only during this phase.
	st.cnt = make([][]int32, st.p.EdgeCount())
	type cntTask struct {
		eid    int
		lo, hi int
	}
	var cntTasks []cntTask
	for eid := 0; eid < st.p.EdgeCount(); eid++ {
		st.cnt[eid] = make([]int32, n)
		e := st.p.EdgeAt(eid)
		for _, s := range shardSpans(len(st.cand[e.From]), workers, len(st.cand[e.To])) {
			cntTasks = append(cntTasks, cntTask{eid, s[0], s[1]})
		}
	}
	seeds := make([][]removalItem, len(cntTasks))
	err = runShards(probes, len(cntTasks), func(p *workerProbe, t int) error {
		task := cntTasks[t]
		e := st.p.EdgeAt(task.eid)
		c := st.cnt[task.eid]
		var local []removalItem
		for _, x := range st.cand[e.From][task.lo:task.hi] {
			for _, z := range st.cand[e.To] {
				if err := p.poll.Err(); err != nil {
					return err
				}
				if st.inMat[e.To][z] && p.edgeWitness(int(x), int(z), e) >= 0 {
					c[x]++
				}
			}
			if c[x] == 0 {
				local = append(local, removalItem{int32(e.From), x})
			}
		}
		seeds[t] = local
		return nil
	})
	if err != nil {
		return err
	}
	// Deterministic worklist: seeds appended in task order, matching the
	// sequential edge-major, candidate-ascending order.
	for _, s := range seeds {
		st.work = append(st.work, s...)
	}
	if st.stats != nil {
		for _, p := range probes {
			st.stats.OracleQueries += p.queries
		}
	}
	return nil
}
