package core

import (
	"context"
	"fmt"

	"gpm/internal/cancel"
	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// Stats counts the work one matching query performed. Callers pass a
// zeroed Stats to MatchContext; the engine layer surfaces it per query.
type Stats struct {
	OracleQueries int64 // distance-oracle probes issued
	Removals      int64 // pairs removed during refinement
	InitialPairs  int64 // candidate pairs before refinement
}

// countingOracle wraps a DistOracle, counting probes into *n. It is used
// per query (single goroutine), so plain increments suffice.
type countingOracle struct {
	inner DistOracle
	n     *int64
}

func (c *countingOracle) NonemptyDistWithin(u, v, bound int, color string) int {
	*c.n++
	return c.inner.NonemptyDistWithin(u, v, bound, color)
}

// Result is the outcome of a bounded-simulation computation: the greatest
// fixpoint of the refinement step, which is the unique maximum match S of
// Proposition 2.1 when every pattern node retains at least one data node.
type Result struct {
	p   *pattern.Pattern
	g   *graph.Graph
	mat [][]int32 // per pattern node, ascending data-node ids
	ok  bool
}

// OK reports whether P ⊴ G, i.e. every pattern node has a match.
func (r *Result) OK() bool { return r.ok }

// Pattern returns the pattern this result was computed for.
func (r *Result) Pattern() *pattern.Pattern { return r.p }

// Graph returns the data graph this result was computed over.
func (r *Result) Graph() *graph.Graph { return r.g }

// Mat returns the sorted data nodes matching pattern node u. When OK is
// false this is the fixpoint remainder, useful for diagnostics and for
// the per-node counts reported in the paper's Fig. 6(d); the maximum
// match itself is empty in that case (Match, line 10).
func (r *Result) Mat(u int) []int32 { return r.mat[u] }

// Relation returns the whole relation as a copy, one sorted slice of data
// nodes per pattern node.
func (r *Result) Relation() [][]int32 {
	out := make([][]int32, len(r.mat))
	for i, l := range r.mat {
		out[i] = append([]int32(nil), l...)
	}
	return out
}

// Pairs returns |S|, the number of (pattern node, data node) pairs.
func (r *Result) Pairs() int {
	total := 0
	for _, l := range r.mat {
		total += len(l)
	}
	return total
}

// MatchedNodes returns how many pattern nodes have at least one match —
// the quantity plotted against added pattern edges in Fig. 6(d)'s prose.
func (r *Result) MatchedNodes() int {
	n := 0
	for _, l := range r.mat {
		if len(l) > 0 {
			n++
		}
	}
	return n
}

// Contains reports whether (u, x) is in the relation.
func (r *Result) Contains(u int, x int32) bool {
	l := r.mat[u]
	lo, hi := 0, len(l)
	for lo < hi {
		mid := (lo + hi) / 2
		if l[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(l) && l[lo] == x
}

// String summarises the result.
func (r *Result) String() string {
	return fmt.Sprintf("match{ok: %v, pairs: %d}", r.ok, r.Pairs())
}

// NewResult wraps a relation computed by another matching semantics
// (dual or strong simulation, see internal/topo) into a Result, making
// it result-graph-capable and giving it the Result accessor set. mat
// must hold ascending data-node ids per pattern node; ok reports whether
// every pattern node matched. The caller hands over ownership of mat.
func NewResult(p *pattern.Pattern, g *graph.Graph, mat [][]int32, ok bool) *Result {
	return &Result{p: p, g: g, mat: mat, ok: ok}
}

// Match computes the maximum bounded-simulation match of p in g using a
// freshly built distance matrix — the paper's algorithm Match (Fig. 4).
func Match(p *pattern.Pattern, g *graph.Graph) (*Result, error) {
	return MatchWithOracle(p, g, BuildMatrixOracle(g))
}

// MatchBFS is Match with BFS-computed distances (the "BFS" variant of
// Exp-2): no preprocessing, higher per-query cost.
func MatchBFS(p *pattern.Pattern, g *graph.Graph) (*Result, error) {
	return MatchWithOracle(p, g, NewBFSOracle(g))
}

// Match2Hop is Match with the 2-hop reachability filter in front of BFS
// (the "2-hop" variant of Exp-2).
func Match2Hop(p *pattern.Pattern, g *graph.Graph) (*Result, error) {
	return MatchWithOracle(p, g, BuildTwoHopOracle(g))
}

// MatchWithOracle runs the refinement with the given distance oracle.
//
// The implementation realises Fig. 4's premv bookkeeping as the standard
// counter/worklist scheme: for every pattern edge e = (u, u′) and every
// candidate x of u, cnt[e][x] counts the members of mat(u′) within e's
// bound of x. A pair leaves the relation exactly when one of its counters
// reaches zero; each removal decrements the counters of in-bound ancestor
// candidates, cascading until the greatest fixpoint. With the matrix
// oracle each distance probe is O(1), giving the Theorem 3.1 bound
// O(|V||E| + |Ep||V|² + |Vp||V|).
func MatchWithOracle(p *pattern.Pattern, g *graph.Graph, o DistOracle) (*Result, error) {
	return MatchContext(context.Background(), p, g, o, nil)
}

// MatchContext is MatchWithOracle with cancellation and instrumentation:
// ctx is polled inside the candidate, counter and refinement loops (a
// cancelled context aborts the fixpoint with ctx.Err()), and when stats
// is non-nil the query's work counters are accumulated into it.
func MatchContext(ctx context.Context, p *pattern.Pattern, g *graph.Graph, o DistOracle, stats *Stats) (*Result, error) {
	return MatchOpts(ctx, p, g, o, stats, MatchOptions{})
}

// MatchOptions tunes one MatchOpts call beyond the defaults.
type MatchOptions struct {
	// Workers shards the candidate and counter initialisation — the
	// quadratic O(|Ep||V|²) phase of Theorem 3.1 — across this many
	// goroutines. Values <= 1 run fully sequentially. Parallel runs
	// require an oracle implementing WorkerCloner (all three built-in
	// oracles do); unknown oracles silently fall back to sequential.
	// The refinement cascade itself stays single-threaded: the greatest
	// fixpoint is unique (Proposition 2.1), so the result is identical
	// for every worker count.
	Workers int
	// Frozen, when non-nil, is a pre-frozen snapshot of the data graph
	// reused by the walk prober and the parallel phases; callers serving
	// many queries (the engine layer) pass their cached snapshot so each
	// query skips the O(|V|+|E|) freeze.
	Frozen *graph.Frozen
	// Seed, when non-nil, restricts each pattern node's initial candidate
	// set to the given data nodes (ascending, deduped, in-range; one
	// slice per pattern node) instead of scanning the whole graph. The
	// caller guarantees the seed is a superset of the true relation; the
	// greatest fixpoint inside any such superset is the maximum match, so
	// seeded runs return bit-identical results. Seeded initialisation is
	// sequential (the scan it replaces is the part worth sharding).
	Seed [][]int32
}

// MatchOpts is MatchContext with explicit MatchOptions.
func MatchOpts(ctx context.Context, p *pattern.Pattern, g *graph.Graph, o DistOracle, stats *Stats, opts MatchOptions) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	base := o
	if stats != nil {
		o = &countingOracle{inner: o, n: &stats.OracleQueries}
	}
	st := newState(p, g, o)
	st.f = opts.Frozen
	st.poll = cancel.Every(ctx, cancelPollInterval)
	st.stats = stats
	st.seed = opts.Seed
	workers := opts.Workers
	if st.seed != nil {
		if len(st.seed) != p.N() {
			return nil, fmt.Errorf("core: seed has %d rows for a %d-node pattern", len(st.seed), p.N())
		}
		workers = 1
	}
	if _, ok := base.(WorkerCloner); !ok {
		workers = 1
	}
	if workers > 1 {
		if err := st.parallelInit(ctx, base, workers); err != nil {
			return nil, err
		}
	} else {
		if err := st.initCandidates(); err != nil {
			return nil, err
		}
		if err := st.initCountersFinish(); err != nil {
			return nil, err
		}
	}
	if err := st.refine(); err != nil {
		return nil, err
	}
	return st.result(), nil
}

// initCountersFinish records InitialPairs then fills the counters — the
// sequential tail shared by MatchOpts and tests.
func (st *state) initCountersFinish() error {
	if st.stats != nil {
		for _, s := range st.matSize {
			st.stats.InitialPairs += int64(s)
		}
	}
	return st.initCounters()
}

// state carries the refinement data shared by the batch algorithm here
// and the incremental matcher built on top of it.
type state struct {
	p *pattern.Pattern
	g *graph.Graph
	f *graph.Frozen // lazy CSR snapshot; shared with workers and the walk prober
	o DistOracle

	cand    [][]int32 // static candidate lists (predicate + out-degree test)
	inCand  [][]bool
	inMat   [][]bool
	matSize []int
	seed    [][]int32 // optional candidate restriction (MatchOptions.Seed)
	cnt     [][]int32 // per pattern edge, indexed by data node
	work    []removalItem
	walks   *walkProber // lazy; only for ranged edges (§6 extension)

	poll  cancel.Poller
	stats *Stats
}

// cancelPollInterval balances cancellation latency against the cost of
// polling ctx.Err() in the cubic-time inner loops.
const cancelPollInterval = 4096

type removalItem struct {
	u int32
	x int32
}

func newState(p *pattern.Pattern, g *graph.Graph, o DistOracle) *state {
	return &state{p: p, g: g, o: o}
}

// frozen returns the CSR snapshot of the data graph, freezing on first
// use when the caller did not supply one.
func (st *state) frozen() *graph.Frozen {
	if st.f == nil {
		st.f = st.g.Freeze()
	}
	return st.f
}

// initCandidates computes cand(u): data nodes satisfying fv(u) whose
// out-degree is nonzero whenever u has outgoing pattern edges (Match,
// line 5 — a node with no successors can witness no nonempty path).
func (st *state) initCandidates() error {
	np, n := st.p.N(), st.g.N()
	st.cand = make([][]int32, np)
	st.inCand = make([][]bool, np)
	st.inMat = make([][]bool, np)
	st.matSize = make([]int, np)
	for u := 0; u < np; u++ {
		pred := st.p.Pred(u)
		needsOut := st.p.OutDegree(u) > 0
		st.inCand[u] = make([]bool, n)
		st.inMat[u] = make([]bool, n)
		admit := func(x int) error {
			if err := st.poll.Err(); err != nil {
				return err
			}
			if st.inCand[u][x] || (needsOut && st.g.OutDegree(x) == 0) || !pred.Match(st.g.Attr(x)) {
				return nil
			}
			st.cand[u] = append(st.cand[u], int32(x))
			st.inCand[u][x] = true
			st.inMat[u][x] = true
			st.matSize[u]++
			return nil
		}
		if st.seed != nil {
			// Candidates come from the caller-supplied superset of the
			// relation; the predicate and out-degree filters still apply
			// (they only drop nodes that cannot be in the fixpoint).
			for _, x := range st.seed[u] {
				if x < 0 || int(x) >= n {
					continue
				}
				if err := admit(int(x)); err != nil {
					return err
				}
			}
			continue
		}
		for x := 0; x < n; x++ {
			if err := admit(x); err != nil {
				return err
			}
		}
	}
	return nil
}

// initCounters fills cnt[e][x] for every pattern edge and candidate
// source, seeding the worklist with already-dead pairs.
func (st *state) initCounters() error {
	st.cnt = make([][]int32, st.p.EdgeCount())
	for eid := 0; eid < st.p.EdgeCount(); eid++ {
		e := st.p.EdgeAt(eid)
		c := make([]int32, st.g.N())
		st.cnt[eid] = c
		for _, x := range st.cand[e.From] {
			for _, z := range st.cand[e.To] {
				if err := st.poll.Err(); err != nil {
					return err
				}
				if st.inMat[e.To][z] && st.edgeWitness(int(x), int(z), e, false) >= 0 {
					c[x]++
				}
			}
			if c[x] == 0 {
				st.work = append(st.work, removalItem{int32(e.From), x})
			}
		}
	}
	return nil
}

// refine drains the removal worklist to the greatest fixpoint.
func (st *state) refine() error {
	for len(st.work) > 0 {
		it := st.work[len(st.work)-1]
		st.work = st.work[:len(st.work)-1]
		if err := st.remove(int(it.u), it.x); err != nil {
			return err
		}
	}
	return nil
}

// remove deletes (u, x) from the relation and propagates counter
// decrements to ancestor candidates within bound of x.
func (st *state) remove(u int, x int32) error {
	if !st.inMat[u][x] {
		return nil
	}
	st.inMat[u][x] = false
	st.matSize[u]--
	if st.stats != nil {
		st.stats.Removals++
	}
	for _, eid := range st.p.In(u) {
		e := st.p.EdgeAt(int(eid))
		c := st.cnt[eid]
		for _, xp := range st.cand[e.From] {
			if err := st.poll.Err(); err != nil {
				return err
			}
			if !st.inMat[e.From][xp] {
				continue
			}
			if st.edgeWitness(int(xp), int(x), e, true) < 0 {
				continue
			}
			c[xp]--
			if c[xp] == 0 {
				st.work = append(st.work, removalItem{int32(e.From), xp})
			}
		}
	}
	return nil
}

// result snapshots the current relation.
func (st *state) result() *Result {
	res := &Result{p: st.p, g: st.g, mat: make([][]int32, st.p.N()), ok: true}
	for u := 0; u < st.p.N(); u++ {
		for _, x := range st.cand[u] {
			if st.inMat[u][x] {
				res.mat[u] = append(res.mat[u], x)
			}
		}
		if len(res.mat[u]) == 0 {
			res.ok = false
		}
	}
	return res
}

// MatchNaive is the reference implementation: the textbook greatest
// fixpoint that rescans every pair until stable. It is quadratically
// slower than MatchWithOracle but independent of the counter machinery,
// so property tests can compare the two. The ablation benchmark
// BenchmarkAblationNaive quantifies the gap.
func MatchNaive(p *pattern.Pattern, g *graph.Graph, o DistOracle) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	witness := witnessFunc(g, nil, o)
	np, n := p.N(), g.N()
	sim := make([][]bool, np)
	for u := 0; u < np; u++ {
		sim[u] = make([]bool, n)
		for x := 0; x < n; x++ {
			sim[u][x] = p.Pred(u).Match(g.Attr(x))
		}
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < np; u++ {
			for x := 0; x < n; x++ {
				if !sim[u][x] {
					continue
				}
				for _, eid := range p.Out(u) {
					e := p.EdgeAt(int(eid))
					ok := false
					for z := 0; z < n; z++ {
						if sim[e.To][z] && witness(x, z, e) >= 0 {
							ok = true
							break
						}
					}
					if !ok {
						sim[u][x] = false
						changed = true
						break
					}
				}
			}
		}
	}
	res := &Result{p: p, g: g, mat: make([][]int32, np), ok: true}
	for u := 0; u < np; u++ {
		for x := 0; x < n; x++ {
			if sim[u][x] {
				res.mat[u] = append(res.mat[u], int32(x))
			}
		}
		if len(res.mat[u]) == 0 {
			res.ok = false
		}
	}
	return res, nil
}

// IsMatch verifies that rel is a bounded simulation of p in g: every pair
// satisfies its predicate and every pattern edge has an in-bound witness.
// It does not check maximality. Tests and the incremental layer use it.
func IsMatch(p *pattern.Pattern, g *graph.Graph, rel [][]int32, o DistOracle) bool {
	if len(rel) != p.N() {
		return false
	}
	witness := witnessFunc(g, nil, o)
	in := make([][]bool, p.N())
	for u := range in {
		in[u] = make([]bool, g.N())
		for _, x := range rel[u] {
			if int(x) >= g.N() {
				return false
			}
			in[u][x] = true
		}
	}
	for u := 0; u < p.N(); u++ {
		for _, x := range rel[u] {
			if !p.Pred(u).Match(g.Attr(int(x))) {
				return false
			}
			for _, eid := range p.Out(u) {
				e := p.EdgeAt(int(eid))
				found := false
				for z := 0; z < g.N(); z++ {
					if in[e.To][z] && witness(int(x), z, e) >= 0 {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
	}
	return true
}

// witnessFunc returns a probe closure answering plain edges through the
// oracle and ranged edges through a shared walk prober. f, when non-nil,
// is a pre-frozen snapshot of g for the prober; nil freezes lazily on the
// first ranged probe.
func witnessFunc(g *graph.Graph, f *graph.Frozen, o DistOracle) func(x, z int, e pattern.Edge) int {
	var wp *walkProber
	return func(x, z int, e pattern.Edge) int {
		if e.Ranged() {
			if wp == nil {
				if f == nil {
					f = g.Freeze()
				}
				wp = newWalkProber(f)
			}
			return wp.WalkWithin(x, z, e.MinBound, e.Bound, e.Color, false)
		}
		return o.NonemptyDistWithin(x, z, e.Bound, e.Color)
	}
}
