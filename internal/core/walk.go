package core

import (
	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// walkProber answers the §6 "ranges on hops" queries: is there a *walk*
// (vertices may repeat) from u to v whose length lies in [lo, hi]?
//
// Shortest-path distances cannot answer a lower bound, so the prober
// runs a layered frontier expansion up to hi steps and records, per
// node, a 64-bit mask of reachable walk lengths (hence the
// pattern.MaxRangeBound limit of 63). Masks are cached per (endpoint,
// direction, color) in the source-major / target-major access patterns
// the matching fixpoint generates.
type walkProber struct {
	f        *graph.Frozen
	fwd, bwd walkCache
}

type walkCache struct {
	node  int
	color string
	valid bool
	mask  []uint64
	cur   []int32
	next  []int32
	inCur []bool
}

func newWalkProber(f *graph.Frozen) *walkProber { return &walkProber{f: f} }

// rangeMask has bits lo..hi set.
func rangeMask(lo, hi int) uint64 {
	if hi > 63 {
		hi = 63
	}
	if lo < 0 {
		lo = 0
	}
	var m uint64
	for b := lo; b <= hi; b++ {
		m |= 1 << uint(b)
	}
	return m
}

// WalkWithin returns the smallest walk length in [lo, hi] from u to v
// (color-restricted when color is non-empty), or -1. preferBackward
// hints which frontier cache to build on a miss: target-major sweeps
// (fixed v) should pass true.
func (w *walkProber) WalkWithin(u, v, lo, hi int, color string, preferBackward bool) int {
	if hi > pattern.MaxRangeBound {
		hi = pattern.MaxRangeBound
	}
	if lo < 1 {
		lo = 1
	}
	if lo > hi {
		return -1
	}
	var mask uint64
	switch {
	case w.fwd.valid && w.fwd.node == u && w.fwd.color == color:
		mask = w.fwd.mask[v]
	case w.bwd.valid && w.bwd.node == v && w.bwd.color == color:
		mask = w.bwd.mask[u]
	case preferBackward:
		w.build(&w.bwd, v, color, true)
		mask = w.bwd.mask[u]
	default:
		w.build(&w.fwd, u, color, false)
		mask = w.fwd.mask[v]
	}
	bits := mask & rangeMask(lo, hi)
	if bits == 0 {
		return -1
	}
	// Lowest set bit index is the witness length.
	for b := lo; b <= hi; b++ {
		if bits&(1<<uint(b)) != 0 {
			return b
		}
	}
	return -1
}

// build runs the layered expansion from node (over in-edges when reverse)
// for MaxRangeBound steps, filling c.mask.
func (w *walkProber) build(c *walkCache, node int, color string, reverse bool) {
	n := w.f.N()
	if c.mask == nil || len(c.mask) != n {
		c.mask = make([]uint64, n)
		c.cur = make([]int32, 0, n)
		c.next = make([]int32, 0, n)
		c.inCur = make([]bool, n)
	} else {
		for i := range c.mask {
			c.mask[i] = 0
		}
	}
	c.node = node
	c.color = color
	c.valid = true

	cur := c.cur[:0]
	cur = append(cur, int32(node))
	for step := 1; step <= pattern.MaxRangeBound && len(cur) > 0; step++ {
		next := c.next[:0]
		for _, x := range cur {
			var nbrs []int32
			if reverse {
				nbrs = w.f.In(int(x))
			} else {
				nbrs = w.f.Out(int(x))
			}
			for _, y := range nbrs {
				if color != "" {
					var ec string
					if reverse {
						ec = w.f.Color(int(y), int(x))
					} else {
						ec = w.f.Color(int(x), int(y))
					}
					if ec != color {
						continue
					}
				}
				if !c.inCur[y] {
					c.inCur[y] = true
					next = append(next, y)
				}
			}
		}
		for _, y := range next {
			c.inCur[y] = false
			c.mask[y] |= 1 << uint(step)
		}
		cur, c.next = next, cur
	}
	c.cur = cur
}

// Invalidate drops cached frontiers after graph mutation.
func (w *walkProber) Invalidate() {
	w.fwd.valid = false
	w.bwd.valid = false
}

// edgeWitness returns the witness length for pattern edge e from x to z:
// the ranged walk check when e carries a lower bound, the oracle's
// nonempty shortest path otherwise.
func (st *state) edgeWitness(x, z int, e pattern.Edge, preferBackward bool) int {
	if e.Ranged() {
		if st.walks == nil {
			st.walks = newWalkProber(st.frozen())
		}
		return st.walks.WalkWithin(x, z, e.MinBound, e.Bound, e.Color, preferBackward)
	}
	return st.o.NonemptyDistWithin(x, z, e.Bound, e.Color)
}
