package core

import (
	"strings"
	"testing"

	"gpm/internal/fixtures"
)

func TestResultGraphCollaboration(t *testing.T) {
	// Fig. 3(a): the result graph of P2 over G2 contains DB, Gen, Eco,
	// Soc, Med and an edge per matched pattern edge, e.g. DB -> Soc with a
	// length-3 witness (CS, Soc).
	c := fixtures.Collaboration()
	o := BuildMatrixOracle(c.G)
	res, _ := MatchWithOracle(c.P, c.G, o)
	rg := BuildResultGraph(res, o)
	nodes, edges := rg.Size()
	if nodes != 5 {
		t.Errorf("result graph nodes = %d, want 5 (DB,Gen,Eco,Soc,Med)", nodes)
	}
	if edges == 0 {
		t.Fatal("no result edges")
	}
	if !rg.HasEdge(fixtures.G2DB, fixtures.G2Soc) {
		t.Error("missing DB->Soc result edge")
	}
	for _, e := range rg.Edges {
		if e.From == fixtures.G2DB && e.To == fixtures.G2Soc {
			if e.Dist != 3 {
				t.Errorf("DB->Soc witness length = %d, want 3", e.Dist)
			}
		}
	}
	// AI must not appear: it is not in the match.
	for _, x := range rg.Nodes {
		if x == fixtures.G2AI {
			t.Error("AI in result graph")
		}
	}
	s := rg.Render(func(x int32) string { return c.GNames[x] })
	if !strings.Contains(s, "DB -> Soc") {
		t.Errorf("render missing edge: %s", s)
	}
	if rg.String() == "" {
		t.Error("String empty")
	}
}

func TestResultGraphEmptyOnNoMatch(t *testing.T) {
	c := fixtures.CollaborationNoMatch()
	o := BuildMatrixOracle(c.G)
	res, _ := MatchWithOracle(c.P, c.G, o)
	rg := BuildResultGraph(res, o)
	n, m := rg.Size()
	if n != 0 || m != 0 {
		t.Errorf("non-empty result graph for failed match: %d nodes %d edges", n, m)
	}
}

func TestResultGraphMultiMapping(t *testing.T) {
	// Fig. 3(b) property: one pattern node maps to multiple data nodes and
	// one data node satisfies several pattern nodes.
	c := fixtures.SocialMatching()
	o := BuildMatrixOracle(c.G)
	res, _ := MatchWithOracle(c.P, c.G, o)
	rg := BuildResultGraph(res, o)
	var hrse []int32
	for i, x := range rg.Nodes {
		if x == fixtures.G1HRSE {
			hrse = rg.Matched[i]
		}
	}
	if len(hrse) != 2 {
		t.Errorf("(HR,SE) should match two pattern nodes, got %v", hrse)
	}
	// Edge dedup: Size counts distinct (from,to) pairs.
	_, distinct := rg.Size()
	if distinct > len(rg.Edges) {
		t.Error("distinct edge count exceeds raw edges")
	}
	if rg.HasEdge(99, 98) {
		t.Error("HasEdge on absent edge")
	}
}
