package core

import (
	"fmt"
	"sort"
	"strings"

	"gpm/internal/graph"
)

// ResultEdge is one edge of a result graph: data nodes From and To are
// connected because pattern edge PatternEdge maps onto a path of length
// Dist between them (Dist ≤ the pattern edge's bound).
type ResultEdge struct {
	From, To    int32
	PatternEdge int
	Dist        int
}

// ResultGraph is the succinct representation of a maximum match (§2.2,
// "Result graph"): its nodes are the data nodes appearing in the match,
// and it has an edge (v1, v2) for every pattern edge (u1, u2) with
// (u1, v1), (u2, v2) in the match and a witnessing path within bound —
// cf. Fig. 3, where each result edge "denotes a path" in the data graph.
type ResultGraph struct {
	Nodes   []int32      // sorted data-node ids in the match
	Matched [][]int32    // parallel to Nodes: pattern nodes each data node matches
	Edges   []ResultEdge // sorted by (From, To, PatternEdge)
}

// BuildResultGraph materialises the result graph of res, probing the
// oracle for witness distances. For an empty or failed match it returns
// an empty graph.
func BuildResultGraph(res *Result, o DistOracle) *ResultGraph {
	return BuildResultGraphFrozen(res, o, nil)
}

// BuildResultGraphFrozen is BuildResultGraph with a pre-frozen snapshot
// of the data graph for ranged-edge walk probes (nil freezes lazily);
// the engine layer passes its cached snapshot so repeated result-graph
// materialisations skip the O(|V|+|E|) freeze.
func BuildResultGraphFrozen(res *Result, o DistOracle, f *graph.Frozen) *ResultGraph {
	rg := &ResultGraph{}
	if !res.OK() {
		return rg
	}
	p := res.Pattern()
	matchedBy := map[int32][]int32{}
	for u := 0; u < p.N(); u++ {
		for _, x := range res.Mat(u) {
			matchedBy[x] = append(matchedBy[x], int32(u))
		}
	}
	for x := range matchedBy {
		rg.Nodes = append(rg.Nodes, x)
	}
	sort.Slice(rg.Nodes, func(i, j int) bool { return rg.Nodes[i] < rg.Nodes[j] })
	rg.Matched = make([][]int32, len(rg.Nodes))
	for i, x := range rg.Nodes {
		rg.Matched[i] = matchedBy[x]
	}
	witness := witnessFunc(res.Graph(), f, o)
	for eid := 0; eid < p.EdgeCount(); eid++ {
		e := p.EdgeAt(eid)
		for _, v1 := range res.Mat(e.From) {
			for _, v2 := range res.Mat(e.To) {
				d := witness(int(v1), int(v2), e)
				if d < 0 {
					continue
				}
				rg.Edges = append(rg.Edges, ResultEdge{From: v1, To: v2, PatternEdge: eid, Dist: d})
			}
		}
	}
	sort.Slice(rg.Edges, func(i, j int) bool {
		a, b := rg.Edges[i], rg.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.PatternEdge < b.PatternEdge
	})
	return rg
}

// Size returns (#nodes, #distinct edges ignoring pattern-edge identity) —
// the |Gr| statistic of the paper's appendix.
func (rg *ResultGraph) Size() (nodes, edges int) {
	seen := map[uint64]struct{}{}
	for _, e := range rg.Edges {
		seen[uint64(uint32(e.From))<<32|uint64(uint32(e.To))] = struct{}{}
	}
	return len(rg.Nodes), len(seen)
}

// HasEdge reports whether some pattern edge connects v1 to v2 in the
// result graph.
func (rg *ResultGraph) HasEdge(v1, v2 int32) bool {
	for _, e := range rg.Edges {
		if e.From == v1 && e.To == v2 {
			return true
		}
	}
	return false
}

// String renders the result graph compactly, one node and one edge per
// line, using the optional name function for node display.
func (rg *ResultGraph) String() string { return rg.Render(nil) }

// Render is String with a custom node namer (nil falls back to ids).
func (rg *ResultGraph) Render(name func(int32) string) string {
	if name == nil {
		name = func(x int32) string { return fmt.Sprintf("%d", x) }
	}
	var b strings.Builder
	n, m := rg.Size()
	fmt.Fprintf(&b, "result graph: %d nodes, %d edges\n", n, m)
	for i, x := range rg.Nodes {
		pats := make([]string, len(rg.Matched[i]))
		for j, u := range rg.Matched[i] {
			pats[j] = fmt.Sprintf("p%d", u)
		}
		fmt.Fprintf(&b, "  %s <- {%s}\n", name(x), strings.Join(pats, ","))
	}
	for _, e := range rg.Edges {
		fmt.Fprintf(&b, "  %s -> %s (pattern edge %d, path length %d)\n",
			name(e.From), name(e.To), e.PatternEdge, e.Dist)
	}
	return b.String()
}
