package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"gpm/internal/graph"
	"gpm/internal/matrix"
)

func lineGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestMatrixOracleBasics(t *testing.T) {
	g := lineGraph(5)
	o := BuildMatrixOracle(g)
	cases := []struct {
		u, v, bound, want int
	}{
		{0, 3, -1, 3},  // unbounded
		{0, 3, 3, 3},   // exactly at bound
		{0, 3, 2, -1},  // over bound
		{3, 0, -1, -1}, // unreachable
		{2, 2, -1, -1}, // no cycle: nonempty self-path absent
		{0, 1, 1, 1},
	}
	for _, c := range cases {
		if got := o.NonemptyDistWithin(c.u, c.v, c.bound, ""); got != c.want {
			t.Errorf("matrix (%d,%d,b=%d) = %d, want %d", c.u, c.v, c.bound, got, c.want)
		}
	}
	if o.Matrix() == nil {
		t.Error("Matrix() accessor nil")
	}
}

func TestOracleSelfCycle(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	for name, o := range map[string]DistOracle{
		"matrix": BuildMatrixOracle(g),
		"bfs":    NewBFSOracle(g),
		"2hop":   BuildTwoHopOracle(g),
		"pll":    mustBuildPLL(t, g),
	} {
		if got := o.NonemptyDistWithin(0, 0, -1, ""); got != 2 {
			t.Errorf("%s: self-cycle dist = %d, want 2", name, got)
		}
		if got := o.NonemptyDistWithin(0, 0, 1, ""); got != -1 {
			t.Errorf("%s: self-cycle within 1 = %d, want -1", name, got)
		}
		if got := o.NonemptyDistWithin(2, 2, -1, ""); got != -1 {
			t.Errorf("%s: acyclic node self dist = %d, want -1", name, got)
		}
	}
}

// TestBFSOracleCachePatterns drives the cache through the access patterns
// Match generates: source-major sweeps, then target-major sweeps, with
// interleaved misses.
func TestBFSOracleCachePatterns(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := graph.New(20)
	for g.M() < 60 {
		g.AddEdge(r.Intn(20), r.Intn(20))
	}
	m := matrix.New(g)
	o := NewBFSOracle(g)
	// Source-major: fixed u, sweep v.
	for u := 0; u < 20; u++ {
		for v := 0; v < 20; v++ {
			want := m.NonemptyDist(u, v)
			if got := o.NonemptyDistWithin(u, v, -1, ""); got != want {
				t.Fatalf("src-major (%d,%d): %d want %d", u, v, got, want)
			}
		}
	}
	// Target-major: fixed v, sweep u.
	for v := 0; v < 20; v++ {
		for u := 0; u < 20; u++ {
			want := m.NonemptyDist(u, v)
			if got := o.NonemptyDistWithin(u, v, -1, ""); got != want {
				t.Fatalf("dst-major (%d,%d): %d want %d", u, v, got, want)
			}
		}
	}
	// Random access.
	for i := 0; i < 500; i++ {
		u, v := r.Intn(20), r.Intn(20)
		want := clampToBound(m.NonemptyDist(u, v), 3)
		if got := o.NonemptyDistWithin(u, v, 3, ""); got != want {
			t.Fatalf("random (%d,%d): %d want %d", u, v, got, want)
		}
	}
}

func TestBFSOracleInvalidate(t *testing.T) {
	g := lineGraph(3)
	o := NewBFSOracle(g)
	if o.NonemptyDistWithin(0, 2, -1, "") != 2 {
		t.Fatal("initial dist wrong")
	}
	g.AddEdge(0, 2)
	o.Invalidate()
	if got := o.NonemptyDistWithin(0, 2, -1, ""); got != 1 {
		t.Errorf("after invalidate: %d, want 1", got)
	}
}

// Property: all three oracles agree with the matrix ground truth on
// random graphs, bounds, and both orders of endpoint iteration.
func TestOraclesAgree(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(15)
		g := graph.New(n)
		edges := r.Intn(3 * n)
		if edges > n*n {
			edges = n * n
		}
		for g.M() < edges {
			g.AddEdge(r.Intn(n), r.Intn(n))
		}
		m := matrix.New(g)
		oracles := []DistOracle{BuildMatrixOracle(g), NewBFSOracle(g), BuildTwoHopOracle(g), mustBuildPLL(t, g)}
		for i := 0; i < 200; i++ {
			u, v := r.Intn(n), r.Intn(n)
			bound := r.Intn(6) - 1
			var want int
			if u == v {
				want = m.Cycle(u)
			} else {
				want = m.Dist(u, v)
			}
			want = clampToBound(want, bound)
			for oi, o := range oracles {
				if got := o.NonemptyDistWithin(u, v, bound, ""); got != want {
					t.Logf("seed %d oracle %d (%d,%d,b=%d): %d want %d", seed, oi, u, v, bound, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: colored queries agree across oracles and equal plain queries
// on the color-induced subgraph.
func TestColoredOraclesAgree(t *testing.T) {
	colors := []string{"red", "blue"}
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		g := graph.New(n)
		edges := r.Intn(3 * n)
		if edges > n*n {
			edges = n * n
		}
		for g.M() < edges {
			g.AddColoredEdge(r.Intn(n), r.Intn(n), colors[r.Intn(2)])
		}
		// Ground truth: subgraph of red edges only.
		sub := graph.New(n)
		g.Edges(func(u, v int) {
			if c, _ := g.Color(u, v); c == "red" {
				sub.AddEdge(u, v)
			}
		})
		m := matrix.New(sub)
		oracles := []DistOracle{BuildMatrixOracle(g), NewBFSOracle(g), BuildTwoHopOracle(g), mustBuildPLL(t, g)}
		for i := 0; i < 100; i++ {
			u, v := r.Intn(n), r.Intn(n)
			bound := r.Intn(5) - 1
			var want int
			if u == v {
				want = m.Cycle(u)
			} else {
				want = m.Dist(u, v)
			}
			want = clampToBound(want, bound)
			for oi, o := range oracles {
				if got := o.NonemptyDistWithin(u, v, bound, "red"); got != want {
					t.Logf("seed %d oracle %d (%d,%d,b=%d,red): %d want %d", seed, oi, u, v, bound, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMatrixOracleColorCache(t *testing.T) {
	g := graph.New(3)
	g.AddColoredEdge(0, 1, "x")
	g.AddEdge(1, 2)
	o := BuildMatrixOracle(g)
	// First query builds the color matrix; second hits the cache.
	if d := o.NonemptyDistWithin(0, 1, -1, "x"); d != 1 {
		t.Errorf("colored dist = %d", d)
	}
	if d := o.NonemptyDistWithin(0, 1, -1, "x"); d != 1 {
		t.Errorf("cached colored dist = %d", d)
	}
	// Uncolored edges are invisible to the color subgraph.
	if d := o.NonemptyDistWithin(1, 2, -1, "x"); d != -1 {
		t.Errorf("uncolored edge leaked into color query: %d", d)
	}
}

func mustBuildPLL(t testing.TB, g *graph.Graph) *PLLOracle {
	t.Helper()
	o, err := BuildPLLOracle(context.Background(), g)
	if err != nil {
		t.Fatalf("BuildPLLOracle: %v", err)
	}
	return o
}

// TestPLLOracleCachePatterns drives the PLL probe caches through the
// access patterns Match generates: source-major sweeps, target-major
// sweeps, then random access — the PLL analog of the BFS cache test.
func TestPLLOracleCachePatterns(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := graph.New(20)
	for g.M() < 60 {
		g.AddEdge(r.Intn(20), r.Intn(20))
	}
	m := matrix.New(g)
	o := mustBuildPLL(t, g)
	for u := 0; u < 20; u++ {
		for v := 0; v < 20; v++ {
			want := m.NonemptyDist(u, v)
			if got := o.NonemptyDistWithin(u, v, -1, ""); got != want {
				t.Fatalf("src-major (%d,%d): %d want %d", u, v, got, want)
			}
		}
	}
	for v := 0; v < 20; v++ {
		for u := 0; u < 20; u++ {
			want := m.NonemptyDist(u, v)
			if got := o.NonemptyDistWithin(u, v, -1, ""); got != want {
				t.Fatalf("dst-major (%d,%d): %d want %d", u, v, got, want)
			}
		}
	}
	for i := 0; i < 500; i++ {
		u, v := r.Intn(20), r.Intn(20)
		bound := r.Intn(5) - 1
		want := clampToBound(m.NonemptyDist(u, v), bound)
		if got := o.NonemptyDistWithin(u, v, bound, ""); got != want {
			t.Fatalf("random (%d,%d,b=%d): %d want %d", u, v, bound, got, want)
		}
	}
}

// TestPLLOracleWorkerClones checks that concurrent clones sharing one
// labelling answer independently and correctly — the contract the
// parallel fixpoint relies on.
func TestPLLOracleWorkerClones(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := graph.New(30)
	for g.M() < 90 {
		g.AddColoredEdge(r.Intn(30), r.Intn(30), []string{"", "red"}[r.Intn(2)])
	}
	m := matrix.New(g)
	root := mustBuildPLL(t, g)
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		o := root.CloneForWorker()
		seed := int64(100 + w)
		go func() {
			rr := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				u, v := rr.Intn(30), rr.Intn(30)
				want := clampToBound(m.NonemptyDist(u, v), -1)
				if got := o.NonemptyDistWithin(u, v, -1, ""); got != want {
					done <- fmt.Errorf("clone (%d,%d): %d want %d", u, v, got, want)
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestPLLOracleColorCache(t *testing.T) {
	g := graph.New(3)
	g.AddColoredEdge(0, 1, "x")
	g.AddEdge(1, 2)
	o := mustBuildPLL(t, g)
	// First query builds the color sub-labelling; second hits the cache.
	if d := o.NonemptyDistWithin(0, 1, -1, "x"); d != 1 {
		t.Errorf("colored dist = %d", d)
	}
	if d := o.NonemptyDistWithin(0, 1, -1, "x"); d != 1 {
		t.Errorf("cached colored dist = %d", d)
	}
	// Uncolored edges are invisible to the color subgraph.
	if d := o.NonemptyDistWithin(1, 2, -1, "x"); d != -1 {
		t.Errorf("uncolored edge leaked into color query: %d", d)
	}
	if o.Index() == nil {
		t.Error("Index() nil")
	}
}

func TestTwoHopOracleAccessors(t *testing.T) {
	g := lineGraph(4)
	o := BuildTwoHopOracle(g)
	if o.Index() == nil {
		t.Error("Index() nil")
	}
	if got := o.NonemptyDistWithin(0, 3, -1, ""); got != 3 {
		t.Errorf("dist = %d", got)
	}
	if got := o.NonemptyDistWithin(3, 0, -1, ""); got != -1 {
		t.Errorf("filtered unreachable = %d", got)
	}
}
