package gio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadGraph fuzzes the .graph text-format reader. Accepted inputs
// must produce an internally consistent graph (Validate) that round-trips
// through WriteGraph/ReadGraph to an identical serialisation.
func FuzzReadGraph(f *testing.F) {
	seeds := []string{
		"graph 0\n",
		"graph 3\nedge 0 1\nedge 1 2\n",
		"graph 2\nnode 0 label=a w=3\nnode 1 label=\"b c\"\nedge 0 1 likes\n",
		"# comment\n\ngraph 1\nnode 0 a=1.5\n",
		"graph 2\nedge 0 1\nedge 0 1\n",
		"graph -1\n",
		"node 0 a=1\ngraph 1\n",
		"graph 1\nedge 0 5\n",
		"graph 2\nnode 1 =bad\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadGraph(bytes.NewReader(data))
		if err != nil {
			return
		}
		if g.N() > 1<<16 {
			// Headers can declare huge empty graphs; skip the quadratic
			// checks but still require structural sanity.
			if g.M() < 0 {
				t.Fatalf("negative edge count")
			}
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails Validate: %v\ninput: %q", err, data)
		}
		var first strings.Builder
		if err := WriteGraph(&first, g); err != nil {
			t.Fatalf("WriteGraph: %v", err)
		}
		g2, err := ReadGraph(strings.NewReader(first.String()))
		if err != nil {
			t.Fatalf("rewritten graph rejected: %v\nserialised: %q", err, first.String())
		}
		var second strings.Builder
		if err := WriteGraph(&second, g2); err != nil {
			t.Fatalf("WriteGraph (second): %v", err)
		}
		if first.String() != second.String() {
			t.Fatalf("round-trip not stable:\nfirst:  %q\nsecond: %q", first.String(), second.String())
		}
	})
}
