// Package gio reads and writes the line-oriented text formats for data
// graphs, pattern graphs and update streams used by the command-line
// tools. The formats are deliberately trivial to produce from other
// systems:
//
// Graph (.graph):
//
//	graph <n>
//	node <id> <attr>=<value> ...
//	edge <from> <to> [color]
//
// Pattern (.pattern):
//
//	pattern <n>
//	node <id> <predicate>          # predicate syntax of pattern.ParsePredicate
//	edge <from> <to> <bound|*> [color]
//
// Updates (.updates):
//
//   - <from> <to>
//   - <from> <to>
//
// Blank lines and lines starting with # are ignored. Node lines may be
// omitted for attribute-less nodes.
package gio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gpm/internal/graph"
	"gpm/internal/incremental"
	"gpm/internal/pattern"
	"gpm/internal/value"
)

// MaxNodes caps the node count a graph or pattern header may declare:
// the readers allocate O(n) adjacency state up front, so an unchecked
// header lets a 20-byte input demand petabytes (found by FuzzReadGraph).
// The limit comfortably exceeds the paper's largest dataset; graphs
// beyond it should be built programmatically.
const MaxNodes = 1 << 20

// WriteGraph serialises g.
func WriteGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %d\n", g.N())
	for v := 0; v < g.N(); v++ {
		a := g.Attr(v)
		if len(a) == 0 {
			continue
		}
		fmt.Fprintf(bw, "node %d", v)
		for _, k := range a.Keys() {
			fmt.Fprintf(bw, " %s=%s", k, a[k].String())
		}
		fmt.Fprintln(bw)
	}
	for _, e := range g.EdgeList() {
		c, _ := g.Color(int(e[0]), int(e[1]))
		if c != "" {
			fmt.Fprintf(bw, "edge %d %d %s\n", e[0], e[1], c)
		} else {
			fmt.Fprintf(bw, "edge %d %d\n", e[0], e[1])
		}
	}
	return bw.Flush()
}

// ReadGraph parses a graph written by WriteGraph.
func ReadGraph(r io.Reader) (*graph.Graph, error) {
	sc := newScanner(r)
	var g *graph.Graph
	for sc.next() {
		fields := sc.fields
		switch fields[0] {
		case "graph":
			if g != nil {
				return nil, sc.errf("duplicate graph header")
			}
			if len(fields) != 2 {
				return nil, sc.errf("bad graph header")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, sc.errf("bad graph header")
			}
			if n > MaxNodes {
				return nil, sc.errf("graph header declares %d nodes (max %d)", n, MaxNodes)
			}
			g = graph.New(n)
		case "node":
			if g == nil {
				return nil, sc.errf("node before graph header")
			}
			if len(fields) < 2 {
				return nil, sc.errf("bad node line")
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 0 || id >= g.N() {
				return nil, sc.errf("bad node id %q", fields[1])
			}
			attrs := graph.Attrs{}
			for _, kv := range fields[2:] {
				eq := strings.IndexByte(kv, '=')
				if eq <= 0 {
					return nil, sc.errf("bad attribute %q", kv)
				}
				// Keys containing quotes cannot survive re-serialisation
				// (the writer does not quote keys), so reject them.
				if strings.ContainsAny(kv[:eq], "\"\\") {
					return nil, sc.errf("bad attribute name %q", kv[:eq])
				}
				attrs[kv[:eq]] = value.Parse(kv[eq+1:])
			}
			g.SetAttr(id, attrs)
		case "edge":
			if g == nil {
				return nil, sc.errf("edge before graph header")
			}
			if len(fields) != 3 && len(fields) != 4 {
				return nil, sc.errf("bad edge line")
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || u < 0 || u >= g.N() || v < 0 || v >= g.N() {
				return nil, sc.errf("bad edge endpoints")
			}
			color := ""
			if len(fields) == 4 {
				color = fields[3]
			}
			if !g.AddColoredEdge(u, v, color) {
				return nil, sc.errf("duplicate edge %d->%d", u, v)
			}
		default:
			return nil, sc.errf("unknown directive %q", fields[0])
		}
	}
	if sc.err != nil {
		return nil, sc.err
	}
	if g == nil {
		return nil, fmt.Errorf("gio: missing graph header")
	}
	return g, nil
}

// WritePattern serialises p.
func WritePattern(w io.Writer, p *pattern.Pattern) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "pattern %d\n", p.N())
	for u := 0; u < p.N(); u++ {
		fmt.Fprintf(bw, "node %d %s\n", u, p.Pred(u).String())
	}
	for _, e := range p.Edges() {
		if e.Color != "" {
			fmt.Fprintf(bw, "edge %d %d %s %s\n", e.From, e.To, pattern.FormatEdgeBound(e), e.Color)
		} else {
			fmt.Fprintf(bw, "edge %d %d %s\n", e.From, e.To, pattern.FormatEdgeBound(e))
		}
	}
	return bw.Flush()
}

// ReadPattern parses a pattern written by WritePattern.
func ReadPattern(r io.Reader) (*pattern.Pattern, error) {
	sc := newScanner(r)
	var p *pattern.Pattern
	n := -1
	for sc.next() {
		fields := sc.fields
		switch fields[0] {
		case "pattern":
			if p != nil {
				return nil, sc.errf("duplicate pattern header")
			}
			if len(fields) != 2 {
				return nil, sc.errf("bad pattern header")
			}
			var err error
			n, err = strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, sc.errf("bad pattern header")
			}
			if n > MaxNodes {
				return nil, sc.errf("pattern header declares %d nodes (max %d)", n, MaxNodes)
			}
			p = pattern.New()
			for i := 0; i < n; i++ {
				p.AddNode(pattern.Predicate{})
			}
		case "node":
			if p == nil {
				return nil, sc.errf("node before pattern header")
			}
			if len(fields) < 2 {
				return nil, sc.errf("bad node line")
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 0 || id >= n {
				return nil, sc.errf("bad pattern node id %q", fields[1])
			}
			pred, err := pattern.ParsePredicate(strings.Join(fields[2:], " "))
			if err != nil {
				return nil, sc.errf("%v", err)
			}
			// Rebuild with the parsed predicate in place.
			replacePred(p, id, pred)
		case "edge":
			if p == nil {
				return nil, sc.errf("edge before pattern header")
			}
			if len(fields) != 4 && len(fields) != 5 {
				return nil, sc.errf("bad pattern edge line")
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			lo, hi, err3 := pattern.ParseBoundRange(fields[3])
			if err1 != nil || err2 != nil {
				return nil, sc.errf("bad edge endpoints")
			}
			if err3 != nil {
				return nil, sc.errf("%v", err3)
			}
			color := ""
			if len(fields) == 5 {
				color = fields[4]
			}
			var err error
			if lo > 0 {
				_, err = p.AddRangeEdge(from, to, lo, hi, color)
			} else {
				_, err = p.AddColoredEdge(from, to, hi, color)
			}
			if err != nil {
				return nil, sc.errf("%v", err)
			}
		default:
			return nil, sc.errf("unknown directive %q", fields[0])
		}
	}
	if sc.err != nil {
		return nil, sc.err
	}
	if p == nil {
		return nil, fmt.Errorf("gio: missing pattern header")
	}
	return p, nil
}

// replacePred swaps the predicate of one node. Pattern has no setter by
// design (predicates are otherwise immutable); rebuilding through a fresh
// node would lose edges, so gio reaches for the supported update path:
// clone node predicates into a new pattern is wasteful here, and instead
// Pattern provides SetPred via this package-level helper.
func replacePred(p *pattern.Pattern, id int, pred pattern.Predicate) {
	p.SetPred(id, pred)
}

// WriteUpdates serialises an update stream.
func WriteUpdates(w io.Writer, ups []incremental.Update) error {
	bw := bufio.NewWriter(w)
	for _, u := range ups {
		sign := "-"
		if u.Insert {
			sign = "+"
		}
		fmt.Fprintf(bw, "%s %d %d\n", sign, u.U, u.V)
	}
	return bw.Flush()
}

// ReadUpdates parses an update stream.
func ReadUpdates(r io.Reader) ([]incremental.Update, error) {
	sc := newScanner(r)
	var ups []incremental.Update
	for sc.next() {
		fields := sc.fields
		if len(fields) != 3 || (fields[0] != "+" && fields[0] != "-") {
			return nil, sc.errf("bad update line")
		}
		u, err1 := strconv.Atoi(fields[1])
		v, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			return nil, sc.errf("bad update endpoints")
		}
		if fields[0] == "+" {
			ups = append(ups, incremental.Ins(u, v))
		} else {
			ups = append(ups, incremental.Del(u, v))
		}
	}
	if sc.err != nil {
		return nil, sc.err
	}
	return ups, nil
}

// scanner is a line scanner that skips blanks/comments, tracks line
// numbers and splits fields outside of double quotes.
type scanner struct {
	sc     *bufio.Scanner
	line   int
	fields []string
	err    error
}

func newScanner(r io.Reader) *scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &scanner{sc: sc}
}

func (s *scanner) next() bool {
	for s.sc.Scan() {
		s.line++
		text := strings.TrimSpace(s.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		s.fields = splitQuoted(text)
		if len(s.fields) > 0 {
			return true
		}
	}
	s.err = s.sc.Err()
	return false
}

func (s *scanner) errf(format string, args ...interface{}) error {
	return fmt.Errorf("gio: line %d: %s", s.line, fmt.Sprintf(format, args...))
}

// splitQuoted splits on whitespace but keeps double-quoted spans intact.
// Inside quotes a backslash escapes the next character, matching the
// strconv.Quote escaping the writers emit, so string values containing
// quotes round-trip.
func splitQuoted(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	escaped := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case escaped:
			cur.WriteRune(r)
			escaped = false
		case inQuote && r == '\\':
			cur.WriteRune(r)
			escaped = true
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case !inQuote && (r == ' ' || r == '\t'):
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}
