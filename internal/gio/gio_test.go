package gio

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"gpm/internal/fixtures"
	"gpm/internal/graph"
	"gpm/internal/incremental"
	"gpm/internal/pattern"
	"gpm/internal/value"
)

func TestGraphRoundTrip(t *testing.T) {
	g := graph.New(3)
	g.SetAttr(0, graph.Attrs{"label": value.Str("A"), "w": value.Int(5)})
	g.SetAttr(1, graph.Attrs{"rate": value.Float(4.5), "name": value.Str("two words")})
	g.AddColoredEdge(0, 1, "friend")
	g.AddEdge(1, 2)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 3 || got.M() != 2 {
		t.Fatalf("size %d/%d", got.N(), got.M())
	}
	if c, _ := got.Color(0, 1); c != "friend" {
		t.Errorf("color = %q", c)
	}
	if v, _ := got.Attr(0)["w"].AsInt(); v != 5 {
		t.Error("int attr lost")
	}
	if s, _ := got.Attr(1)["name"].AsString(); s != "two words" {
		t.Errorf("quoted attr = %q", s)
	}
	if r, _ := got.Attr(1)["rate"].AsFloat(); r != 4.5 {
		t.Error("float attr lost")
	}
}

func TestPatternRoundTripFixtures(t *testing.T) {
	for _, c := range fixtures.All() {
		var buf bytes.Buffer
		if err := WritePattern(&buf, c.P); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		got, err := ReadPattern(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v\n%s", c.Name, err, buf.String())
		}
		if got.String() != c.P.String() {
			t.Errorf("%s: round trip mismatch\n got %s\nwant %s", c.Name, got.String(), c.P.String())
		}
	}
}

func TestGraphRoundTripFixtures(t *testing.T) {
	for _, c := range fixtures.All() {
		var buf bytes.Buffer
		if err := WriteGraph(&buf, c.G); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		got, err := ReadGraph(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if got.N() != c.G.N() || got.M() != c.G.M() {
			t.Errorf("%s: size mismatch", c.Name)
		}
		we, ge := c.G.EdgeList(), got.EdgeList()
		for i := range we {
			if we[i] != ge[i] {
				t.Errorf("%s: edge %d differs", c.Name, i)
			}
		}
		for v := 0; v < got.N(); v++ {
			if got.Attr(v).String() != c.G.Attr(v).String() {
				t.Errorf("%s: node %d attrs differ: %q vs %q", c.Name, v, got.Attr(v), c.G.Attr(v))
			}
		}
	}
}

func TestUpdatesRoundTrip(t *testing.T) {
	ups := []incremental.Update{incremental.Ins(1, 2), incremental.Del(3, 4), incremental.Ins(0, 5)}
	var buf bytes.Buffer
	if err := WriteUpdates(&buf, ups); err != nil {
		t.Fatal(err)
	}
	got, err := ReadUpdates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range ups {
		if got[i] != ups[i] {
			t.Errorf("update %d: %v vs %v", i, got[i], ups[i])
		}
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	in := `
# a comment
graph 2

edge 0 1
`
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Error("comment handling broke parsing")
	}
}

func TestGraphParseErrors(t *testing.T) {
	cases := []string{
		"",                            // no header
		"graph x",                     // bad count
		"node 0 a=1\ngraph 2",         // node before header
		"graph 1\nnode 5 a=1",         // id out of range
		"graph 1\nnode 0 noequals",    // bad attr
		"graph 2\nedge 0 9",           // endpoint out of range
		"graph 2\nedge 0 1\nedge 0 1", // duplicate edge
		"graph 2\nwhat 1",             // unknown directive
		"graph 2\ngraph 2",            // duplicate header
		"graph 2\nedge 0",             // short edge
		"edge 0 1",                    // edge before header
	}
	for _, in := range cases {
		if _, err := ReadGraph(strings.NewReader(in)); err == nil {
			t.Errorf("ReadGraph(%q) should fail", in)
		}
	}
}

func TestPatternParseErrors(t *testing.T) {
	cases := []string{
		"",
		"pattern 0",
		"pattern 2\nnode 9 *",
		"pattern 2\nnode 0 bad attr <",
		"pattern 2\nedge 0 1 0",
		"pattern 2\nedge 0 1",
		"pattern 2\nedge 0 9 1",
		"pattern 2\nedge 0 1 1\nedge 0 1 2",
		"node 0 *",
		"pattern 2\nnope",
	}
	for _, in := range cases {
		if _, err := ReadPattern(strings.NewReader(in)); err == nil {
			t.Errorf("ReadPattern(%q) should fail", in)
		}
	}
}

func TestUpdatesParseErrors(t *testing.T) {
	for _, in := range []string{"x 1 2", "+ 1", "+ a b"} {
		if _, err := ReadUpdates(strings.NewReader(in)); err == nil {
			t.Errorf("ReadUpdates(%q) should fail", in)
		}
	}
}

func TestQuotedPredicateSurvives(t *testing.T) {
	p := pattern.New()
	pred, err := pattern.ParsePredicate(`category = "Travel & Places" && ratings < 30`)
	if err != nil {
		t.Fatal(err)
	}
	p.AddNode(pred)
	p.AddNode(pattern.Predicate{})
	p.MustAddEdge(0, 1, pattern.Unbounded)
	var buf bytes.Buffer
	if err := WritePattern(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPattern(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if got.Pred(0).String() != p.Pred(0).String() {
		t.Errorf("predicate mangled: %q vs %q", got.Pred(0).String(), p.Pred(0).String())
	}
	if got.EdgeAt(0).Bound != pattern.Unbounded {
		t.Error("star bound lost")
	}
}

func TestRangedPatternRoundTrip(t *testing.T) {
	p := pattern.New()
	p.AddNode(pattern.Label("A"))
	p.AddNode(pattern.Label("B"))
	if _, err := p.AddRangeEdge(0, 1, 2, 6, "friend"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePattern(&buf, p); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2..6") {
		t.Fatalf("range bound missing: %s", buf.String())
	}
	got, err := ReadPattern(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	e := got.EdgeAt(0)
	if e.MinBound != 2 || e.Bound != 6 || e.Color != "friend" {
		t.Errorf("round trip edge = %+v", e)
	}
	// Bad ranges rejected by the parser.
	if _, err := ReadPattern(strings.NewReader("pattern 2\nedge 0 1 1..5")); err == nil {
		t.Error("lo=1 range accepted")
	}
}

// A node line larger than bufio.Scanner's default 64 KiB token limit
// must round-trip: the readers grow the scanner buffer (newScanner), so
// graphs whose nodes carry many attributes — exactly what a server
// accepting uploads will see — don't fail with bufio.ErrTooLong.
func TestLongLineRoundTrip(t *testing.T) {
	g := graph.New(2)
	attrs := graph.Attrs{}
	for i := 0; i < 1500; i++ {
		attrs[fmt.Sprintf("attr%04d", i)] = value.Str(strings.Repeat("v", 40))
	}
	g.SetAttr(0, attrs)
	g.AddEdge(0, 1)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	if longest := longestLine(buf.Bytes()); longest <= 64*1024 {
		t.Fatalf("fixture too small to exercise the bug: longest line %d bytes, need > %d", longest, 64*1024)
	}
	got, err := ReadGraph(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadGraph on >64KiB line: %v", err)
	}
	if got.N() != 2 || got.M() != 1 {
		t.Fatalf("size %d/%d after long-line round trip", got.N(), got.M())
	}
	if len(got.Attr(0)) != len(attrs) {
		t.Fatalf("attribute count %d, want %d", len(got.Attr(0)), len(attrs))
	}
	var second bytes.Buffer
	if err := WriteGraph(&second, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), second.Bytes()) {
		t.Fatal("long-line round trip is not byte-stable")
	}
}

// A long pattern node line (one predicate with many conjuncts) must
// round-trip the same way.
func TestLongPatternLineRoundTrip(t *testing.T) {
	p := pattern.New()
	var pred pattern.Predicate
	for i := 0; i < 4000; i++ {
		pred = append(pred, pattern.Atom{Attr: fmt.Sprintf("attr%04d", i), Op: value.OpEQ, Val: value.Str(strings.Repeat("v", 10))})
	}
	p.AddNode(pred)
	var buf bytes.Buffer
	if err := WritePattern(&buf, p); err != nil {
		t.Fatal(err)
	}
	if longest := longestLine(buf.Bytes()); longest <= 64*1024 {
		t.Fatalf("fixture too small: longest line %d bytes", longest)
	}
	got, err := ReadPattern(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadPattern on >64KiB line: %v", err)
	}
	if got.N() != 1 || len(got.Pred(0)) != len(pred) {
		t.Fatalf("pattern %d nodes / %d atoms after round trip", got.N(), len(got.Pred(0)))
	}
}

func longestLine(b []byte) int {
	longest := 0
	for _, l := range bytes.Split(b, []byte("\n")) {
		if len(l) > longest {
			longest = len(l)
		}
	}
	return longest
}
