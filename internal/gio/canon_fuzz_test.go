package gio

import (
	"bytes"
	"strings"
	"testing"

	"gpm/internal/pattern"
)

// reversePattern rebuilds p with node ids reversed and edges inserted in
// reverse order — a deterministic relabeling the canonical form must be
// blind to.
func reversePattern(p *pattern.Pattern) *pattern.Pattern {
	n := p.N()
	q := pattern.New()
	for i := 0; i < n; i++ {
		q.AddNode(nil)
	}
	for u := 0; u < n; u++ {
		q.SetPred(n-1-u, p.Pred(u))
	}
	es := p.Edges()
	for i := len(es) - 1; i >= 0; i-- {
		e := es[i]
		var err error
		if e.Ranged() {
			_, err = q.AddRangeEdge(n-1-e.From, n-1-e.To, e.MinBound, e.Bound, e.Color)
		} else {
			_, err = q.AddColoredEdge(n-1-e.From, n-1-e.To, e.Bound, e.Color)
		}
		if err != nil {
			panic(err)
		}
	}
	return q
}

// FuzzCanonicalPattern: for every parseable pattern, canonicalisation
// must be idempotent through the text format — Canonical(ReadPattern(
// Canonical(p).Text)) == Canonical(p) — and invariant under relabeling.
func FuzzCanonicalPattern(f *testing.F) {
	seeds := []string{
		"pattern 1\nnode 0 *\n",
		"pattern 2\nnode 0 A\nnode 1 B\nedge 0 1 1\n",
		"pattern 3\nnode 0 a >= 3\nnode 1 *\nnode 2 label = x\nedge 0 1 *\nedge 1 2 2..5\nedge 2 0 3 f\n",
		"pattern 4\nnode 0 A\nnode 1 A\nnode 2 A\nnode 3 A\nedge 0 1 1\nedge 1 2 1\nedge 2 3 1\nedge 3 0 1\n",
		"pattern 2\nnode 0 w <= 5 && label = \"db systems\"\nnode 1 w <= 5\nedge 1 0 2\n",
		"pattern 3\nnode 0 B\nnode 1 B\nnode 2 R\nedge 2 0 2\nedge 2 1 2\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPattern(bytes.NewReader(data))
		if err != nil || p.N() > 12 {
			return // unparseable or big enough to make the fuzz loop slow
		}
		c1, err := p.Canonical()
		if err != nil {
			return // over budget: legitimately uncacheable
		}
		p2, err := ReadPattern(strings.NewReader(c1.Text))
		if err != nil {
			t.Fatalf("canonical text rejected by ReadPattern: %v\ntext: %q", err, c1.Text)
		}
		c2, err := p2.Canonical()
		if err != nil {
			t.Fatalf("reparsed canonical pattern failed to canonicalise: %v", err)
		}
		if c1.Text != c2.Text || c1.Digest != c2.Digest {
			t.Fatalf("canonicalisation not idempotent:\nfirst:  %q (%#x)\nsecond: %q (%#x)", c1.Text, c1.Digest, c2.Text, c2.Digest)
		}
		c3, err := reversePattern(p).Canonical()
		if err != nil {
			t.Fatalf("relabeled pattern failed to canonicalise: %v", err)
		}
		if c1.Text != c3.Text || c1.Digest != c3.Digest {
			t.Fatalf("canonical form depends on labeling:\noriginal:  %q\nrelabeled: %q", c1.Text, c3.Text)
		}
	})
}

// TestCanonicalTextRoundTrip pins that a canonical pattern text parses
// back into a pattern whose relation semantics are those of the original
// (same node count, isomorphic edges — checked via a second canonical
// pass on handcrafted patterns).
func TestCanonicalTextRoundTrip(t *testing.T) {
	p := pattern.New()
	a := p.AddNode(pattern.Label("CS"))
	b := p.AddNode(nil)
	c := p.AddNode(pattern.Predicate{})
	if _, err := p.AddColoredEdge(a, b, 2, "ref"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddRangeEdge(b, c, 2, 5, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddEdge(c, a, pattern.Unbounded); err != nil {
		t.Fatal(err)
	}
	c1, err := p.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ReadPattern(strings.NewReader(c1.Text))
	if err != nil {
		t.Fatalf("ReadPattern(canonical text): %v", err)
	}
	if p2.N() != p.N() || p2.EdgeCount() != p.EdgeCount() {
		t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d edges", p2.N(), p.N(), p2.EdgeCount(), p.EdgeCount())
	}
	c2, err := p2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c1 {
		t.Fatalf("round trip changed canonical form:\n%q\n%q", c1.Text, c2.Text)
	}
}
