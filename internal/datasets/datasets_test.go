package datasets

import (
	"testing"

	"gpm/internal/core"
	"gpm/internal/graph"
)

// TestPaperSizes asserts the §5 dataset table exactly.
func TestPaperSizes(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name  string
		g     *graph.Graph
		nodes int
		edges int
	}{
		{"matter", Matter(1), MatterNodes, MatterEdges},
		{"pblog", PBlog(1), PBlogNodes, PBlogEdges},
		{"youtube", YouTube(1), YouTubeNodes, YouTubeEdges},
	}
	for _, c := range cases {
		if c.g.N() != c.nodes || c.g.M() != c.edges {
			t.Errorf("%s: %d/%d, want %d/%d", c.name, c.g.N(), c.g.M(), c.nodes, c.edges)
		}
		if err := c.g.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestSchemas(t *testing.T) {
	t.Parallel()
	yt, err := Scaled("youtube", 2, 500, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for _, attr := range []string{"category", "uploader", "length", "rate", "age", "views", "comments", "ratings"} {
		if _, ok := yt.Attr(0)[attr]; !ok {
			t.Errorf("youtube missing attribute %q", attr)
		}
	}
	mt, _ := Scaled("matter", 2, 300, 900)
	if _, ok := mt.Attr(0)["field"]; !ok {
		t.Error("matter missing field")
	}
	pb, _ := Scaled("pblog", 2, 300, 900)
	if _, ok := pb.Attr(0)["leaning"]; !ok {
		t.Error("pblog missing leaning")
	}
}

func TestSamplePatternsMatchOnStandIn(t *testing.T) {
	t.Parallel()
	// On a scaled stand-in the published sample patterns should parse,
	// validate, and find matches for at least some nodes (the predicates
	// were designed against this schema).
	g, err := Scaled("youtube", 7, 1500, 6000)
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]interface{ N() int }{
		"P1": YouTubeSampleP1(), "P2": YouTubeSampleP2(), "Pprime": YouTubeExamplePrime(),
	} {
		_ = name
		_ = p
	}
	for name, build := range map[string]func() int{
		"P1":     func() int { r, _ := core.Match(YouTubeSampleP1(), g); return r.MatchedNodes() },
		"P2":     func() int { r, _ := core.Match(YouTubeSampleP2(), g); return r.MatchedNodes() },
		"Pprime": func() int { r, _ := core.Match(YouTubeExamplePrime(), g); return r.MatchedNodes() },
	} {
		if nodes := build(); nodes == 0 {
			t.Errorf("%s matched no pattern nodes at all", name)
		}
	}
}

func TestByName(t *testing.T) {
	t.Parallel()
	g, err := ByName("pblog", 3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != PBlogNodes/5 {
		t.Errorf("scaled pblog nodes = %d", g.N())
	}
	if _, err := ByName("nope", 1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := Scaled("nope", 1, 10, 10); err == nil {
		t.Error("unknown scaled dataset accepted")
	}
	// Tiny sizes clamp rather than fail.
	small, err := Scaled("matter", 1, 2, 0)
	if err != nil || small.N() < 8 {
		t.Errorf("clamping failed: %v %v", small, err)
	}
}

func TestDeterminism(t *testing.T) {
	t.Parallel()
	a, _ := Scaled("youtube", 9, 400, 1500)
	b, _ := Scaled("youtube", 9, 400, 1500)
	ae, be := a.EdgeList(), b.EdgeList()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("dataset stand-in not deterministic")
		}
	}
	if a.Attr(5).String() != b.Attr(5).String() {
		t.Error("attributes not deterministic")
	}
}
