// Package datasets synthesises stand-ins for the paper's three real-life
// graphs, which are not redistributable. Each stand-in reproduces the
// exact |V| and |E| of the paper's §5 table and an attribute schema rich
// enough for the published example patterns; topology follows the class
// of the original network (community-clustered co-authorship for Matter,
// preferential attachment for the PBlog hyperlink graph and the YouTube
// recommendation graph). See DESIGN.md, "Faithfulness notes".
package datasets

import (
	"fmt"
	"math/rand"

	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/value"
)

// Paper's §5 dataset table.
const (
	MatterNodes  = 16726
	MatterEdges  = 47594
	PBlogNodes   = 1490
	PBlogEdges   = 19090
	YouTubeNodes = 14829
	YouTubeEdges = 58901
)

// Matter returns the Condensed Matter co-authorship stand-in: community
// structure, symmetric-ish links, attributes field (one of 12 physics
// subfields) and papers (publication count).
func Matter(seed int64) *graph.Graph {
	g := generator.Graph(generator.GraphConfig{
		Nodes: MatterNodes, Edges: MatterEdges,
		Attrs: 12, Model: generator.Communities, Seed: seed,
	})
	r := rand.New(rand.NewSource(seed + 1))
	fields := []string{"cond-mat", "stat-mech", "supercond", "mes-hall", "soft",
		"str-el", "mtrl-sci", "dis-nn", "quant-gas", "other", "stat-phys", "lattice"}
	for v := 0; v < g.N(); v++ {
		a := g.Attr(v)
		ai, _ := a["a"].AsInt()
		g.SetAttr(v, graph.Attrs{
			"field":  value.Str(fields[int(ai)%len(fields)]),
			"papers": value.Int(int64(1 + r.Intn(60))),
		})
	}
	return g
}

// PBlog returns the US political weblog stand-in: two communities
// (leanings) with heavy-tailed link counts; attributes leaning and rank.
func PBlog(seed int64) *graph.Graph {
	g := generator.Graph(generator.GraphConfig{
		Nodes: PBlogNodes, Edges: PBlogEdges,
		Attrs: 2, Model: generator.PowerLaw, Seed: seed,
	})
	r := rand.New(rand.NewSource(seed + 1))
	for v := 0; v < g.N(); v++ {
		a := g.Attr(v)
		ai, _ := a["a"].AsInt()
		leaning := "liberal"
		if ai == 1 {
			leaning = "conservative"
		}
		g.SetAttr(v, graph.Attrs{
			"leaning": value.Str(leaning),
			"rank":    value.Int(int64(r.Intn(1000))),
		})
	}
	return g
}

// YouTube categories and uploader pool; the uploaders named in the
// paper's sample patterns are guaranteed to exist.
var (
	youTubeCategories = []string{
		"Music", "Comedy", "People", "Entertainment", "Sports", "Politics",
		"Science", "Travel & Places", "Film", "News", "Howto", "Autos",
	}
	youTubeUploaders = []string{
		"FWPB", "Ascrodin", "neil010", "Gisburgh", "mediacorp", "vlogger7",
		"tubestar", "dailyclips", "archiv8", "misterx", "CCsuisse", "wombat22",
	}
)

// YouTube returns the crawled-YouTube stand-in: a recommendation network
// with skewed popularity and per-video attributes matching Example 2.3
// and the Exp-1 patterns: category, uploader, length (seconds), rate
// (0–5), age (days), views, comments, ratings.
func YouTube(seed int64) *graph.Graph {
	g := generator.Graph(generator.GraphConfig{
		Nodes: YouTubeNodes, Edges: YouTubeEdges,
		Attrs: len(youTubeCategories), Model: generator.PowerLaw, Seed: seed,
	})
	r := rand.New(rand.NewSource(seed + 1))
	for v := 0; v < g.N(); v++ {
		a := g.Attr(v)
		ai, _ := a["a"].AsInt()
		g.SetAttr(v, graph.Attrs{
			"category": value.Str(youTubeCategories[int(ai)%len(youTubeCategories)]),
			"uploader": value.Str(youTubeUploaders[r.Intn(len(youTubeUploaders))]),
			"length":   value.Int(int64(15 + r.Intn(1200))), // seconds
			"rate":     value.Float(float64(r.Intn(51)) / 10),
			"age":      value.Int(int64(1 + r.Intn(1500))), // days since upload
			"views":    value.Int(int64(r.Intn(2_000_000))),
			"comments": value.Int(int64(r.Intn(500))),
			"ratings":  value.Int(int64(r.Intn(2000))),
		})
	}
	return g
}

func mustPred(s string) pattern.Predicate {
	p, err := pattern.ParsePredicate(s)
	if err != nil {
		panic(fmt.Sprintf("datasets: bad predicate %q: %v", s, err))
	}
	return p
}

// YouTubeSampleP1 is Exp-1's sample pattern P1 (Fig. 6(a) left): music
// videos with a high rating linked to videos of user FWPB within 2 hops;
// FWPB's videos reach Ascrodin's recent videos within 3 hops, which link
// back within 4.
func YouTubeSampleP1() *pattern.Pattern {
	p := pattern.New()
	p1 := p.AddNode(mustPred(`category = Music && rate > 3`))
	p2 := p.AddNode(mustPred(`uploader = FWPB`))
	p3 := p.AddNode(mustPred(`uploader = Ascrodin && age < 500`))
	p.MustAddEdge(p1, p2, 2)
	p.MustAddEdge(p2, p3, 3)
	p.MustAddEdge(p3, p2, 4)
	return p
}

// YouTubeSampleP2 is Exp-1's sample pattern P2 (Fig. 6(a) right): comedy
// videos from user Gisburgh referenced by politics and science videos
// within 3 hops, linking to people videos within 2 hops.
func YouTubeSampleP2() *pattern.Pattern {
	p := pattern.New()
	p4 := p.AddNode(mustPred(`category = Politics`))
	p5 := p.AddNode(mustPred(`category = Science`))
	p6 := p.AddNode(mustPred(`uploader = Gisburgh && category = Comedy`))
	p7 := p.AddNode(mustPred(`category = People`))
	p.MustAddEdge(p4, p6, 3)
	p.MustAddEdge(p5, p6, 3)
	p.MustAddEdge(p6, p7, 2)
	return p
}

// YouTubeExamplePrime is the P′ of Example 2.3 / Fig. 3(b): long old
// videos recommending low-comment, well-viewed videos, from which
// neil010's videos are recommended; those lead to highly-rated People
// videos and sparsely-rated Travel & Places videos.
func YouTubeExamplePrime() *pattern.Pattern {
	p := pattern.New()
	p3 := p.AddNode(mustPred(`length > 120 && age > 365`))
	p2 := p.AddNode(mustPred(`comments < 16 && views >= 700`))
	p4 := p.AddNode(mustPred(`uploader = neil010`))
	p1 := p.AddNode(mustPred(`category = People && rate > 4.5`))
	p5 := p.AddNode(mustPred(`category = "Travel & Places" && ratings < 30`))
	p.MustAddEdge(p3, p2, 1)
	p.MustAddEdge(p2, p4, 1)
	p.MustAddEdge(p4, p1, 1)
	p.MustAddEdge(p4, p5, 1)
	return p
}

// ByName returns a dataset stand-in by its paper name (matter, pblog,
// youtube), scaled by the given factor (1.0 = the paper's exact size).
func ByName(name string, seed int64, scale float64) (*graph.Graph, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	full := map[string][2]int{
		"matter":  {MatterNodes, MatterEdges},
		"pblog":   {PBlogNodes, PBlogEdges},
		"youtube": {YouTubeNodes, YouTubeEdges},
	}
	dims, ok := full[name]
	if !ok {
		return nil, fmt.Errorf("datasets: unknown dataset %q (want matter, pblog or youtube)", name)
	}
	if scale == 1 {
		switch name {
		case "matter":
			return Matter(seed), nil
		case "pblog":
			return PBlog(seed), nil
		default:
			return YouTube(seed), nil
		}
	}
	return Scaled(name, seed, int(float64(dims[0])*scale), int(float64(dims[1])*scale))
}

// Scaled builds a smaller stand-in with the same schema and topology
// class; the experiment harness uses it to keep distance matrices small
// on modest machines (see EXPERIMENTS.md for the scale factors used).
func Scaled(name string, seed int64, nodes, edges int) (*graph.Graph, error) {
	if nodes < 8 {
		nodes = 8
	}
	if edges < 1 {
		edges = 1
	}
	switch name {
	case "matter":
		g := generator.Graph(generator.GraphConfig{Nodes: nodes, Edges: edges, Attrs: 12, Model: generator.Communities, Seed: seed})
		relabelMatter(g, seed)
		return g, nil
	case "pblog":
		g := generator.Graph(generator.GraphConfig{Nodes: nodes, Edges: edges, Attrs: 2, Model: generator.PowerLaw, Seed: seed})
		relabelPBlog(g, seed)
		return g, nil
	case "youtube":
		g := generator.Graph(generator.GraphConfig{Nodes: nodes, Edges: edges, Attrs: len(youTubeCategories), Model: generator.PowerLaw, Seed: seed})
		relabelYouTube(g, seed)
		return g, nil
	default:
		return nil, fmt.Errorf("datasets: unknown dataset %q", name)
	}
}

func relabelMatter(g *graph.Graph, seed int64) {
	r := rand.New(rand.NewSource(seed + 1))
	fields := []string{"cond-mat", "stat-mech", "supercond", "mes-hall", "soft",
		"str-el", "mtrl-sci", "dis-nn", "quant-gas", "other", "stat-phys", "lattice"}
	for v := 0; v < g.N(); v++ {
		ai, _ := g.Attr(v)["a"].AsInt()
		g.SetAttr(v, graph.Attrs{
			"field":  value.Str(fields[int(ai)%len(fields)]),
			"papers": value.Int(int64(1 + r.Intn(60))),
		})
	}
}

func relabelPBlog(g *graph.Graph, seed int64) {
	r := rand.New(rand.NewSource(seed + 1))
	for v := 0; v < g.N(); v++ {
		ai, _ := g.Attr(v)["a"].AsInt()
		leaning := "liberal"
		if ai == 1 {
			leaning = "conservative"
		}
		g.SetAttr(v, graph.Attrs{
			"leaning": value.Str(leaning),
			"rank":    value.Int(int64(r.Intn(1000))),
		})
	}
}

func relabelYouTube(g *graph.Graph, seed int64) {
	r := rand.New(rand.NewSource(seed + 1))
	for v := 0; v < g.N(); v++ {
		ai, _ := g.Attr(v)["a"].AsInt()
		g.SetAttr(v, graph.Attrs{
			"category": value.Str(youTubeCategories[int(ai)%len(youTubeCategories)]),
			"uploader": value.Str(youTubeUploaders[r.Intn(len(youTubeUploaders))]),
			"length":   value.Int(int64(15 + r.Intn(1200))),
			"rate":     value.Float(float64(r.Intn(51)) / 10),
			"age":      value.Int(int64(1 + r.Intn(1500))),
			"views":    value.Int(int64(r.Intn(2_000_000))),
			"comments": value.Int(int64(r.Intn(500))),
			"ratings":  value.Int(int64(r.Intn(2000))),
		})
	}
}
