// Package matrix computes and stores the all-pairs distance matrix M of a
// data graph (paper §3, Match line 1), plus the shortest-cycle vector
// needed to answer "nonempty path" queries from a node to itself.
//
// M is computed by one BFS per source, O(|V|(|V|+|E|)) total, parallelised
// across sources. Entries are int32 with -1 meaning unreachable; M[v][v]
// is 0 by convention, and Cycle(v) gives the length of the shortest
// nonempty cycle through v (or -1).
package matrix

import (
	"fmt"
	"runtime"
	"sync"

	"gpm/internal/graph"
)

// Matrix is an all-pairs shortest path distance matrix.
type Matrix struct {
	n   int
	d   [][]int32 // d[u][v]: distance u->v; -1 unreachable; d[u][u]=0
	cyc []int32   // shortest nonempty cycle through v; -1 if none
}

// New computes the distance matrix of g with one BFS per source, run on
// all available CPUs over a frozen CSR snapshot of g.
func New(g *graph.Graph) *Matrix {
	return NewFrozen(g.Freeze(), runtime.GOMAXPROCS(0))
}

// NewSequential computes the matrix single-threaded; used by tests and by
// benchmarks that want stable timings.
func NewSequential(g *graph.Graph) *Matrix {
	return NewFrozen(g.Freeze(), 1)
}

// NewFrozen computes the distance matrix of an already-frozen snapshot
// across the given number of workers. Callers that hold a Frozen (the
// engine layer keeps one per bound graph) skip the O(|V|+|E|) re-freeze
// that New pays.
func NewFrozen(f *graph.Frozen, workers int) *Matrix {
	n := f.N()
	m := &Matrix{n: n, d: make([][]int32, n)}
	if n == 0 {
		return m
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Pooled queue scratch: sticky across sources and across
			// successive builds (color submatrices, rebuilds).
			s := graph.GetScratch(0)
			defer s.Put()
			for src := lo; src < hi; src++ {
				row := make([]int32, n)
				for i := range row {
					row[i] = -1
				}
				f.BFSDistInto(src, -1, row, &s.Queue)
				m.d[src] = row
			}
		}(lo, hi)
	}
	wg.Wait()
	m.cyc = cyclesFrozen(f, m.d, workers)
	return m
}

// cyclesFrozen derives the shortest-cycle vector from the matrix in
// parallel: cyc[v] = 1 + min over successors w of d[w][v].
func cyclesFrozen(f *graph.Frozen, d [][]int32, workers int) []int32 {
	n := f.N()
	cyc := make([]int32, n)
	if workers <= 1 || n < 2048 {
		for v := range cyc {
			cyc[v] = cycleOfFrozen(f, d, v)
		}
		return cyc
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				cyc[v] = cycleOfFrozen(f, d, v)
			}
		}(lo, hi)
	}
	wg.Wait()
	return cyc
}

func cycleOfFrozen(f *graph.Frozen, d [][]int32, v int) int32 {
	best := int32(-1)
	for _, w := range f.Out(v) {
		if dv := d[w][v]; dv >= 0 && (best < 0 || dv+1 < best) {
			best = dv + 1
		}
	}
	return best
}

func cycleOf(g *graph.Graph, d [][]int32, v int) int32 {
	best := int32(-1)
	for _, w := range g.Out(v) {
		if dv := d[w][v]; dv >= 0 && (best < 0 || dv+1 < best) {
			best = dv + 1
		}
	}
	return best
}

// N returns the number of nodes.
func (m *Matrix) N() int { return m.n }

// Dist returns the shortest-path distance u->v (0 when u == v, -1 when
// unreachable).
func (m *Matrix) Dist(u, v int) int { return int(m.d[u][v]) }

// Set overwrites one entry; the incremental layer uses it.
func (m *Matrix) Set(u, v int, dist int32) { m.d[u][v] = dist }

// Cycle returns the length of the shortest nonempty cycle through v, or
// -1 when v lies on no cycle.
func (m *Matrix) Cycle(v int) int { return int(m.cyc[v]) }

// SetCycle overwrites the cycle entry for v.
func (m *Matrix) SetCycle(v int, c int32) { m.cyc[v] = c }

// RecomputeCycle refreshes cyc[v] from the current matrix and graph and
// returns the new value.
func (m *Matrix) RecomputeCycle(g *graph.Graph, v int) int32 {
	m.cyc[v] = cycleOf(g, m.d, v)
	return m.cyc[v]
}

// NonemptyDist returns the length of the shortest *nonempty* path from u
// to v: the matrix entry when u != v, the shortest cycle when u == v
// (paper §2.2: every pattern edge maps to a path of length >= 1).
func (m *Matrix) NonemptyDist(u, v int) int {
	if u == v {
		return int(m.cyc[u])
	}
	return int(m.d[u][v])
}

// Row exposes the distance row of src; callers must not modify it.
func (m *Matrix) Row(src int) []int32 { return m.d[src] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{n: m.n, d: make([][]int32, m.n), cyc: append([]int32(nil), m.cyc...)}
	for i, row := range m.d {
		c.d[i] = append([]int32(nil), row...)
	}
	return c
}

// Equal reports whether two matrices have identical entries, including
// cycle vectors. Used by incremental-update tests.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.n != o.n {
		return false
	}
	for i := range m.d {
		for j := range m.d[i] {
			if m.d[i][j] != o.d[i][j] {
				return false
			}
		}
		if m.cyc[i] != o.cyc[i] {
			return false
		}
	}
	return true
}

// Diff returns a human-readable list of differing entries (at most max),
// for debugging incremental updates.
func (m *Matrix) Diff(o *Matrix, max int) []string {
	var out []string
	if m.n != o.n {
		return []string{fmt.Sprintf("size %d vs %d", m.n, o.n)}
	}
	for i := 0; i < m.n && len(out) < max; i++ {
		for j := 0; j < m.n && len(out) < max; j++ {
			if m.d[i][j] != o.d[i][j] {
				out = append(out, fmt.Sprintf("d[%d][%d]: %d vs %d", i, j, m.d[i][j], o.d[i][j]))
			}
		}
		if m.cyc[i] != o.cyc[i] && len(out) < max {
			out = append(out, fmt.Sprintf("cyc[%d]: %d vs %d", i, m.cyc[i], o.cyc[i]))
		}
	}
	return out
}

// MemoryBytes estimates the matrix footprint, reported by the harness so
// scale factors can be chosen consciously.
func (m *Matrix) MemoryBytes() int64 {
	return int64(m.n)*int64(m.n)*4 + int64(m.n)*4
}
