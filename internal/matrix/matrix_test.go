package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpm/internal/graph"
)

func chain(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestChainDistances(t *testing.T) {
	g := chain(5)
	m := New(g)
	if m.N() != 5 {
		t.Fatalf("N = %d", m.N())
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := j - i
			if j < i {
				want = -1
			}
			if got := m.Dist(i, j); got != want {
				t.Errorf("Dist(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
	for v := 0; v < 5; v++ {
		if m.Cycle(v) != -1 {
			t.Errorf("Cycle(%d) = %d on a chain", v, m.Cycle(v))
		}
		if m.NonemptyDist(v, v) != -1 {
			t.Errorf("NonemptyDist(%d,%d) should be -1", v, v)
		}
	}
}

func TestCycleGraph(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	m := New(g)
	for v := 0; v < 3; v++ {
		if m.Cycle(v) != 3 {
			t.Errorf("Cycle(%d) = %d, want 3", v, m.Cycle(v))
		}
		if m.NonemptyDist(v, v) != 3 {
			t.Errorf("NonemptyDist(%d,%d) = %d, want 3", v, v, m.NonemptyDist(v, v))
		}
	}
	if m.Dist(0, 0) != 0 {
		t.Error("Dist(v,v) must stay 0")
	}
}

func TestSelfLoop(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	m := New(g)
	if m.Cycle(0) != 1 {
		t.Errorf("Cycle(0) = %d, want 1", m.Cycle(0))
	}
	if m.Cycle(1) != -1 {
		t.Errorf("Cycle(1) = %d", m.Cycle(1))
	}
	if m.NonemptyDist(0, 1) != 1 {
		t.Errorf("NonemptyDist(0,1) = %d", m.NonemptyDist(0, 1))
	}
}

func TestEmptyGraph(t *testing.T) {
	m := New(graph.New(0))
	if m.N() != 0 {
		t.Error("empty matrix")
	}
}

func randomGraph(r *rand.Rand, n, m int) *graph.Graph {
	if m > n*n {
		m = n * n // every ordered pair incl. self loops
	}
	g := graph.New(n)
	for g.M() < m {
		g.AddEdge(r.Intn(n), r.Intn(n))
	}
	return g
}

// Property: parallel and sequential construction agree, and every entry
// matches a fresh BFS.
func TestParallelMatchesSequentialAndBFS(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		g := randomGraph(r, n, r.Intn(3*n))
		mp := New(g)
		ms := NewSequential(g)
		if !mp.Equal(ms) {
			t.Logf("diff: %v", mp.Diff(ms, 5))
			return false
		}
		for src := 0; src < n; src++ {
			d := g.BFSDist(src)
			for v := 0; v < n; v++ {
				if int32(mp.Dist(src, v)) != d[v] {
					return false
				}
			}
		}
		// Cycle vector: cyc[v] == shortest nonempty path v->v by brute BFS
		// from each successor.
		for v := 0; v < n; v++ {
			best := -1
			for _, w := range g.Out(v) {
				if dv := g.Dist(int(w), v, -1); dv >= 0 && (best < 0 || dv+1 < best) {
					best = dv + 1
				}
			}
			if mp.Cycle(v) != best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCloneAndSet(t *testing.T) {
	g := chain(3)
	m := New(g)
	c := m.Clone()
	c.Set(0, 2, 9)
	c.SetCycle(1, 5)
	if m.Dist(0, 2) != 2 || m.Cycle(1) != -1 {
		t.Error("Clone not independent")
	}
	if !m.Equal(New(g)) {
		t.Error("Equal on identical matrices = false")
	}
	if m.Equal(c) {
		t.Error("Equal on different matrices = true")
	}
	if len(m.Diff(c, 10)) == 0 {
		t.Error("Diff found nothing")
	}
}

func TestRecomputeCycle(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	m := New(g)
	if m.Cycle(0) != 2 {
		t.Fatalf("Cycle(0) = %d", m.Cycle(0))
	}
	g.RemoveEdge(1, 0)
	m.Set(1, 0, -1)
	if got := m.RecomputeCycle(g, 0); got != -1 {
		t.Errorf("RecomputeCycle = %d", got)
	}
}

func TestMemoryBytes(t *testing.T) {
	m := New(chain(10))
	if m.MemoryBytes() != 10*10*4+10*4 {
		t.Errorf("MemoryBytes = %d", m.MemoryBytes())
	}
}

func TestRow(t *testing.T) {
	m := New(chain(3))
	row := m.Row(0)
	if len(row) != 3 || row[2] != 2 {
		t.Errorf("Row = %v", row)
	}
}
