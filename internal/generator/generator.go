// Package generator produces synthetic data graphs, pattern graphs and
// update streams for the experiments of §5. It substitutes for the
// paper's C++ Boost graph generator (same three knobs: node count, edge
// count, attribute alphabet) and implements the appendix's walk-based
// pattern generator, which is biased toward positive patterns: a spanning
// skeleton of the pattern is traced along real paths of the data graph,
// then extra random edges (which may break positiveness) are added.
package generator

import (
	"fmt"
	"math/rand"

	"gpm/internal/graph"
	"gpm/internal/incremental"
	"gpm/internal/pattern"
	"gpm/internal/value"
)

// Model selects the topology of a generated graph.
type Model int

// Supported topologies.
const (
	// ER wires endpoints uniformly at random.
	ER Model = iota
	// PowerLaw grows the graph with preferential attachment, yielding the
	// skewed in-degrees of social and recommendation networks.
	PowerLaw
	// Communities plants dense clusters with sparse cross links, like
	// co-authorship networks.
	Communities
	// BarabasiAlbert grows the graph in arrival order: every node after a
	// small seed ring attaches MOut out-edges to distinct earlier nodes
	// drawn proportionally to their current degree. Unlike PowerLaw (which
	// fills a fixed edge budget), the edge count here is determined by
	// Nodes and MOut — roughly MOut·Nodes — which is what the million-node
	// benchmark graphs need to be reproducible from two numbers.
	BarabasiAlbert
)

// GraphConfig parameterises Graph.
type GraphConfig struct {
	Nodes int
	Edges int
	// Attrs is the size of the attribute alphabet: each node gets
	// attr "a" = i in [0, Attrs) and "label" = "L<i>". The paper uses 2K
	// distinct attributes for 20K nodes.
	Attrs int
	Model Model
	// NumCommunities is used by the Communities model (default ~sqrt(n)).
	NumCommunities int
	// MOut is the out-degree of each arriving node under the
	// BarabasiAlbert model (default 4); other models ignore it, and
	// BarabasiAlbert in turn ignores Edges.
	MOut int
	Seed int64
}

// Graph generates a data graph with exactly cfg.Nodes nodes and cfg.Edges
// distinct directed edges (self loops excluded). It is deterministic in
// cfg.Seed. The BarabasiAlbert model is the exception on edge count: it
// ignores cfg.Edges and produces roughly cfg.MOut*cfg.Nodes edges.
func Graph(cfg GraphConfig) *graph.Graph {
	if cfg.Nodes <= 0 {
		panic("generator: Nodes must be positive")
	}
	maxEdges := cfg.Nodes * (cfg.Nodes - 1)
	if cfg.Edges > maxEdges && cfg.Model != BarabasiAlbert {
		panic(fmt.Sprintf("generator: %d edges exceed the %d possible", cfg.Edges, maxEdges))
	}
	if cfg.Attrs <= 0 {
		cfg.Attrs = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New(0)
	for i := 0; i < cfg.Nodes; i++ {
		a := r.Intn(cfg.Attrs)
		g.AddNode(graph.Attrs{
			"a":     value.Int(int64(a)),
			"label": value.Str(fmt.Sprintf("L%d", a)),
			"w":     value.Int(int64(r.Intn(1000))),
		})
	}
	switch cfg.Model {
	case PowerLaw:
		wirePowerLaw(r, g, cfg.Edges)
	case BarabasiAlbert:
		m := cfg.MOut
		if m <= 0 {
			m = 4
		}
		wireBarabasiAlbert(r, g, m)
	case Communities:
		k := cfg.NumCommunities
		if k <= 0 {
			k = 1
			for k*k < cfg.Nodes {
				k++
			}
		}
		wireCommunities(r, g, cfg.Edges, k)
	default:
		wireER(r, g, cfg.Edges)
	}
	return g
}

func wireER(r *rand.Rand, g *graph.Graph, m int) {
	n := g.N()
	for g.M() < m {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
}

// wirePowerLaw attaches edges preferentially: targets are drawn from a
// pool that repeats nodes once per incident edge, plus uniform smoothing.
// A third of the edges are reciprocated, mirroring the high link
// reciprocity of hyperlink and recommendation networks.
func wirePowerLaw(r *rand.Rand, g *graph.Graph, m int) {
	n := g.N()
	pool := make([]int32, 0, 2*m)
	for g.M() < m {
		u := r.Intn(n)
		var v int
		if len(pool) > 0 && r.Intn(4) != 0 {
			v = int(pool[r.Intn(len(pool))])
		} else {
			v = r.Intn(n)
		}
		if u == v {
			continue
		}
		if g.AddEdge(u, v) {
			pool = append(pool, int32(u), int32(v))
			if g.M() < m && r.Intn(3) == 0 {
				g.AddEdge(v, u)
			}
		}
	}
}

// wireBarabasiAlbert implements preferential attachment with the classic
// repeated-endpoints pool: every edge appends both its endpoints, so a
// uniform draw from the pool is a degree-proportional draw over nodes.
// The first m+1 nodes form a directed ring (seeding every node with
// nonzero degree); each later node i then attaches m edges to distinct
// earlier nodes, each oriented by a fair coin. Classic BA is undirected;
// the random orientation is its directed reading, and it matters: if
// every edge pointed new->old (citation-style) the graph would be a
// near-DAG whose high-in-degree hubs reach almost nothing forward, the
// worst case for hub-labelling oracles rather than the social-network
// case they are built for. Memory stays linear: the pool holds two
// int32 words per edge.
func wireBarabasiAlbert(r *rand.Rand, g *graph.Graph, m int) {
	n := g.N()
	seed := m + 1
	if seed > n {
		seed = n
	}
	pool := make([]int32, 0, 2*(seed+m*max(0, n-seed)))
	for i := 0; i < seed; i++ {
		j := (i + 1) % seed
		if i != j && g.AddEdge(i, j) {
			pool = append(pool, int32(i), int32(j))
		}
	}
	targets := make([]int32, 0, m)
	for i := seed; i < n; i++ {
		targets = targets[:0]
		// The pool always holds at least the m+1 seed nodes, so m distinct
		// targets exist; the uniform fallback only guards degenerate pools.
		for attempts := 0; len(targets) < m && len(targets) < i; attempts++ {
			var v int32
			if attempts < 16*m && len(pool) > 0 {
				v = pool[r.Intn(len(pool))]
			} else {
				v = int32(r.Intn(i))
			}
			dup := false
			for _, t := range targets {
				if t == v {
					dup = true
					break
				}
			}
			if !dup {
				targets = append(targets, v)
			}
		}
		for _, v := range targets {
			a, b := i, int(v)
			if r.Intn(2) == 0 {
				a, b = b, a
			}
			if g.AddEdge(a, b) {
				pool = append(pool, int32(i), v)
			}
		}
	}
}

func wireCommunities(r *rand.Rand, g *graph.Graph, m, k int) {
	n := g.N()
	// 90% of edges inside a community, 10% across.
	for g.M() < m {
		if r.Intn(10) != 0 {
			c := r.Intn(k)
			lo := c * n / k
			hi := (c + 1) * n / k
			if hi-lo < 2 {
				continue
			}
			u := lo + r.Intn(hi-lo)
			v := lo + r.Intn(hi-lo)
			if u != v {
				g.AddEdge(u, v)
			}
		} else {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
}

// PatternConfig parameterises Pattern, mirroring the paper's generator
// P(|Vp|, |Ep|, k): node count, edge count, hop bound, plus the bound
// slack c and the probability of an unbounded (*) edge.
type PatternConfig struct {
	Nodes    int
	Edges    int // >= Nodes-1; the first Nodes-1 edges form the walk skeleton
	K        int // upper bound on edge bounds
	C        int // slack: bounds drawn from [K-C, K] (default 1)
	StarProb float64
	// PredAttrs controls how many atoms each predicate gets (1 = label
	// only, 2 = label plus a numeric range on "w").
	PredAttrs int
	// IsoBias biases the generator toward patterns that also admit a
	// subgraph-isomorphism embedding: skeleton walks take single steps
	// (the anchors are directly connected) and extra edges prefer anchor
	// pairs joined by a data edge. Edge bounds are still drawn from
	// [K-C, K], so bounded-simulation semantics are unchanged. The
	// paper's Exp-1 comparisons against SubIso/VF2 need such patterns —
	// pure walk patterns defeat edge-to-edge matchers almost always.
	IsoBias bool
	Seed    int64
}

// Pattern generates a pattern against data graph g per the appendix: it
// walks g within k' hops from already-chosen anchor nodes so that the
// skeleton is guaranteed to be matched by the anchors, then adds random
// extra edges. Node predicates are derived from the anchors' attributes.
func Pattern(cfg PatternConfig, g *graph.Graph) *pattern.Pattern {
	if cfg.Nodes <= 0 {
		panic("generator: pattern Nodes must be positive")
	}
	if cfg.K <= 0 {
		cfg.K = 1
	}
	if cfg.C <= 0 {
		cfg.C = 1
	}
	if cfg.C >= cfg.K {
		cfg.C = cfg.K - 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	p := pattern.New()
	anchors := make([]int, 0, cfg.Nodes)

	// First anchor: any node with outgoing edges if possible.
	first := r.Intn(g.N())
	for tries := 0; tries < 50 && g.OutDegree(first) == 0; tries++ {
		first = r.Intn(g.N())
	}
	p.AddNode(predFor(g, first, cfg, r))
	anchors = append(anchors, first)

	for i := 1; i < cfg.Nodes; i++ {
		// Pick a base anchor, walk k' hops to a (preferably distinct) node.
		kp := cfg.K - r.Intn(cfg.C+1)
		steps := kp
		if cfg.IsoBias {
			steps = 1
		}
		var base, dest int
		found := false
		for tries := 0; tries < 30 && !found; tries++ {
			j := r.Intn(len(anchors))
			base = anchors[j]
			dest = randomWalk(r, g, base, steps)
			if dest == base {
				continue
			}
			if cfg.IsoBias && containsInt(anchors, dest) {
				continue // keep anchors distinct so their embedding is injective
			}
			found = true
			_ = j
		}
		if !found {
			dest = r.Intn(g.N()) // disconnected fallback; pattern may be negative
		}
		u := p.AddNode(predFor(g, dest, cfg, r))
		from := indexOf(anchors, base)
		bound := kp
		if r.Float64() < cfg.StarProb {
			bound = pattern.Unbounded
		}
		if _, err := p.AddEdge(from, u, bound); err != nil {
			panic(err) // cannot happen: fresh node
		}
		anchors = append(anchors, dest)
	}

	// Extra edges between random pattern nodes (positiveness no longer
	// guaranteed, as in the paper). Under IsoBias, anchor pairs joined by
	// a data edge come first — enumerated exhaustively so the anchor
	// embedding stays isomorphic whenever the data allows it at all.
	if cfg.IsoBias {
		var backed [][2]int
		for a := 0; a < cfg.Nodes; a++ {
			for b := 0; b < cfg.Nodes; b++ {
				if a != b && !p.HasEdge(a, b) && g.HasEdge(anchors[a], anchors[b]) {
					backed = append(backed, [2]int{a, b})
				}
			}
		}
		r.Shuffle(len(backed), func(i, j int) { backed[i], backed[j] = backed[j], backed[i] })
		for _, pr := range backed {
			if p.EdgeCount() >= cfg.Edges {
				break
			}
			bound := cfg.K - r.Intn(cfg.C+1)
			p.AddEdge(pr[0], pr[1], bound)
		}
	}
	for tries := 0; tries < 10*cfg.Edges && p.EdgeCount() < cfg.Edges; tries++ {
		a, b := r.Intn(cfg.Nodes), r.Intn(cfg.Nodes)
		if a == b {
			continue
		}
		bound := cfg.K - r.Intn(cfg.C+1)
		if r.Float64() < cfg.StarProb {
			bound = pattern.Unbounded
		}
		p.AddEdge(a, b, bound) // duplicate edges rejected silently
	}
	return p
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// predFor derives a predicate satisfied by data node x: an equality on
// one categorical (string/int-id) attribute, plus, when PredAttrs > 1, a
// one-sided numeric range. Works against any attribute schema (synthetic
// "a"/"label"/"w" as well as the dataset stand-ins' category/rate/...).
func predFor(g *graph.Graph, x int, cfg PatternConfig, r *rand.Rand) pattern.Predicate {
	attrs := g.Attr(x)
	if len(attrs) == 0 {
		return pattern.Predicate{}
	}
	keys := attrs.Keys()
	pred := pattern.Predicate{}

	// Categorical atom: prefer the conventional discriminators, else the
	// first string-valued attribute, else any attribute.
	catKey := ""
	for _, pref := range []string{"a", "label", "category", "field", "leaning", "dept"} {
		if _, ok := attrs[pref]; ok {
			catKey = pref
			break
		}
	}
	if catKey == "" {
		for _, k := range keys {
			if attrs[k].Kind() == value.KindString {
				catKey = k
				break
			}
		}
	}
	if catKey == "" {
		catKey = keys[r.Intn(len(keys))]
	}
	pred = append(pred, pattern.Atom{Attr: catKey, Op: value.OpEQ, Val: attrs[catKey]})

	if cfg.PredAttrs > 1 {
		// Numeric range atom on some other attribute, satisfied by x.
		for _, k := range keys {
			if k == catKey {
				continue
			}
			f, ok := attrs[k].AsFloat()
			if !ok {
				continue
			}
			if attrs[k].Kind() == value.KindInt {
				wi, _ := attrs[k].AsInt()
				pred = append(pred, pattern.Atom{Attr: k, Op: value.OpLE, Val: value.Int(wi + int64(50+r.Intn(200)))})
			} else {
				pred = append(pred, pattern.Atom{Attr: k, Op: value.OpLE, Val: value.Float(f + 1 + 10*r.Float64())})
			}
			break
		}
	}
	return pred
}

// randomWalk takes up to k forward steps from base and returns where it
// lands (which may be base when stuck).
func randomWalk(r *rand.Rand, g *graph.Graph, base, k int) int {
	cur := base
	for step := 0; step < k; step++ {
		outs := g.Out(cur)
		if len(outs) == 0 {
			break
		}
		cur = int(outs[r.Intn(len(outs))])
	}
	return cur
}

func indexOf(s []int, x int) int {
	for i, v := range s {
		if v == x {
			return i
		}
	}
	return 0
}

// UpdatesConfig parameterises Updates.
type UpdatesConfig struct {
	Insertions int
	Deletions  int
	Seed       int64
}

// Updates builds a valid mixed update batch for g: deletions sample
// existing edges without repetition, insertions sample absent edge slots.
// The order interleaves both kinds deterministically. The batch is valid
// for sequential application to g but does not mutate it.
func Updates(cfg UpdatesConfig, g *graph.Graph) []incremental.Update {
	r := rand.New(rand.NewSource(cfg.Seed))
	edges := g.EdgeList()
	r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	if cfg.Deletions > len(edges) {
		cfg.Deletions = len(edges)
	}
	var ups []incremental.Update
	deleted := make(map[uint64]struct{}, cfg.Deletions)
	for i := 0; i < cfg.Deletions; i++ {
		e := edges[i]
		ups = append(ups, incremental.Del(int(e[0]), int(e[1])))
		deleted[uint64(uint32(e[0]))<<32|uint64(uint32(e[1]))] = struct{}{}
	}
	n := g.N()
	inserted := make(map[uint64]struct{}, cfg.Insertions)
	for len(inserted) < cfg.Insertions {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		key := uint64(uint32(u))<<32 | uint64(uint32(v))
		if _, dup := inserted[key]; dup {
			continue
		}
		if _, del := deleted[key]; !del && g.HasEdge(u, v) {
			continue
		}
		if _, del := deleted[key]; del {
			// Edge exists and is being deleted earlier in the batch; valid
			// but confusing — skip to keep batches disjoint.
			continue
		}
		inserted[key] = struct{}{}
		ups = append(ups, incremental.Ins(u, v))
	}
	r.Shuffle(len(ups), func(i, j int) { ups[i], ups[j] = ups[j], ups[i] })
	// Deletions must still precede nothing in particular — shuffling can
	// break validity only if an insertion of a deleted edge slipped in,
	// which the disjointness above prevents.
	return ups
}
