package generator

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpm/internal/core"
	"gpm/internal/graph"
	"gpm/internal/incremental"
	"gpm/internal/pattern"
)

func TestGraphSizesExact(t *testing.T) {
	for _, model := range []Model{ER, PowerLaw, Communities} {
		g := Graph(GraphConfig{Nodes: 200, Edges: 700, Attrs: 10, Model: model, Seed: 42})
		if g.N() != 200 || g.M() != 700 {
			t.Errorf("model %d: got %d/%d", model, g.N(), g.M())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("model %d: %v", model, err)
		}
		for v := 0; v < g.N(); v++ {
			if g.HasEdge(v, v) {
				t.Errorf("model %d: self loop at %d", model, v)
			}
		}
	}
}

func TestGraphDeterministic(t *testing.T) {
	cfg := GraphConfig{Nodes: 100, Edges: 300, Attrs: 5, Model: PowerLaw, Seed: 7}
	a, b := Graph(cfg), Graph(cfg)
	ae, be := a.EdgeList(), b.EdgeList()
	if len(ae) != len(be) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ae[i], be[i])
		}
	}
	c := Graph(GraphConfig{Nodes: 100, Edges: 300, Attrs: 5, Model: PowerLaw, Seed: 8})
	same := true
	ce := c.EdgeList()
	for i := range ae {
		if ae[i] != ce[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestGraphPanics(t *testing.T) {
	for _, cfg := range []GraphConfig{
		{Nodes: 0, Edges: 0},
		{Nodes: 3, Edges: 100},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Graph(%+v) should panic", cfg)
				}
			}()
			Graph(cfg)
		}()
	}
}

func TestPowerLawSkew(t *testing.T) {
	g := Graph(GraphConfig{Nodes: 2000, Edges: 8000, Attrs: 10, Model: PowerLaw, Seed: 1})
	st := graph.ComputeStats(g)
	// Preferential attachment should produce hubs far above the mean.
	if st.MaxIn < 4*int(st.AvgDegree) {
		t.Errorf("no skew: max in-degree %d vs avg %f", st.MaxIn, st.AvgDegree)
	}
}

// The BA model's edge count is MOut-driven: a seed ring of MOut+1 edges
// plus MOut out-edges per later arrival (duplicates are possible only in
// the degenerate uniform fallback, so equality is exact here). Its
// in-degree tail must be at least as skewed as the pool model's.
func TestBarabasiAlbert(t *testing.T) {
	const n, m = 2000, 4
	cfg := GraphConfig{Nodes: n, Edges: 999999, Attrs: 10, Model: BarabasiAlbert, MOut: m, Seed: 1}
	g := Graph(cfg)
	if g.N() != n {
		t.Fatalf("nodes: got %d, want %d", g.N(), n)
	}
	want := (m + 1) + m*(n-(m+1))
	if g.M() != want {
		t.Errorf("edges: got %d, want %d", g.M(), want)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.HasEdge(v, v) {
			t.Errorf("self loop at %d", v)
		}
	}
	// Random orientation: both directions must occur in bulk, otherwise
	// the graph degenerates into a near-DAG (see wireBarabasiAlbert).
	var fwd, bwd int
	for _, e := range g.EdgeList() {
		if e[0] < e[1] {
			fwd++
		} else {
			bwd++
		}
	}
	if fwd < g.M()/4 || bwd < g.M()/4 {
		t.Errorf("orientation skew: %d old->new vs %d new->old edges", fwd, bwd)
	}
	st := graph.ComputeStats(g)
	if st.MaxIn < 8*int(st.AvgDegree) {
		t.Errorf("no skew: max in-degree %d vs avg %f", st.MaxIn, st.AvgDegree)
	}
	// Deterministic in the seed.
	h := Graph(cfg)
	ae, be := g.EdgeList(), h.EdgeList()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs across identical seeds", i)
		}
	}
	// Tiny graphs (fewer nodes than the seed ring wants) must not panic.
	tiny := Graph(GraphConfig{Nodes: 2, Model: BarabasiAlbert, MOut: 4, Seed: 1})
	if tiny.N() != 2 {
		t.Errorf("tiny BA graph: got %d nodes", tiny.N())
	}
}

// Property: walk-based skeleton patterns (Edges == Nodes-1, no stars) are
// positive — the generating anchors witness a match.
func TestSkeletonPatternsArePositive(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Graph(GraphConfig{Nodes: 60, Edges: 240, Attrs: 3, Model: ER, Seed: seed})
		np := 2 + r.Intn(4)
		p := Pattern(PatternConfig{Nodes: np, Edges: np - 1, K: 3, Seed: seed}, g)
		if p.N() != np || p.EdgeCount() != np-1 {
			return false
		}
		res, err := core.Match(p, g)
		if err != nil {
			return false
		}
		return res.OK()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPatternShape(t *testing.T) {
	g := Graph(GraphConfig{Nodes: 100, Edges: 500, Attrs: 4, Model: ER, Seed: 3})
	p := Pattern(PatternConfig{Nodes: 6, Edges: 9, K: 4, C: 2, StarProb: 0.3, PredAttrs: 2, Seed: 3}, g)
	if p.N() != 6 {
		t.Fatalf("nodes = %d", p.N())
	}
	if p.EdgeCount() < 5 || p.EdgeCount() > 9 {
		t.Errorf("edges = %d, want within [5,9]", p.EdgeCount())
	}
	for _, e := range p.Edges() {
		if e.Bound != pattern.Unbounded && (e.Bound < 2 || e.Bound > 4) {
			t.Errorf("bound %d outside [K-C, K]", e.Bound)
		}
	}
	for u := 0; u < p.N(); u++ {
		if len(p.Pred(u)) < 1 {
			t.Errorf("node %d has empty predicate", u)
		}
	}
}

func TestPatternDeterministic(t *testing.T) {
	g := Graph(GraphConfig{Nodes: 80, Edges: 300, Attrs: 4, Seed: 5})
	a := Pattern(PatternConfig{Nodes: 5, Edges: 7, K: 3, Seed: 11}, g)
	b := Pattern(PatternConfig{Nodes: 5, Edges: 7, K: 3, Seed: 11}, g)
	if a.String() != b.String() {
		t.Error("pattern generation is nondeterministic")
	}
}

func TestUpdatesValidAndSized(t *testing.T) {
	check := func(seed int64) bool {
		g := Graph(GraphConfig{Nodes: 50, Edges: 200, Attrs: 3, Seed: seed})
		ups := Updates(UpdatesConfig{Insertions: 20, Deletions: 15, Seed: seed}, g)
		if len(ups) != 35 {
			return false
		}
		dm := incremental.NewDynMatrix(g.Clone())
		if _, err := dm.Apply(ups); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestUpdatesDeletionCap(t *testing.T) {
	g := Graph(GraphConfig{Nodes: 10, Edges: 5, Attrs: 2, Seed: 1})
	ups := Updates(UpdatesConfig{Deletions: 50, Seed: 1}, g)
	if len(ups) != 5 {
		t.Errorf("deletions should cap at |E|: %d", len(ups))
	}
}
