// Package plan is the query planner for subgraph-isomorphism enumeration
// (internal/subiso): given a pattern and a frozen data-graph snapshot it
// produces an execution plan — a cost-modelled matching order, symmetry-
// breaking restriction pairs derived from the pattern's automorphism
// group, and the group itself for re-expanding canonical embeddings into
// the full embedding set.
//
// The techniques follow GraphPi (Shi et al., SC 2020): the matching order
// minimises the estimated search-tree size under per-node candidate
// counts and degree statistics; the restriction pairs force each reported
// embedding to be the order-lexicographic minimum of its automorphism
// orbit, so the search visits exactly one member per orbit and the full
// count is the canonical count × |Aut|.
package plan

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// Plan is an enumeration strategy for one (pattern, graph) pair.
type Plan struct {
	// Order is the matching order: position -> pattern node.
	Order []int
	// Restrictions are symmetry-breaking pairs (a, b) requiring
	// f(a) < f(b) of every embedding f; a precedes b in Order.
	Restrictions [][2]int32
	// Aut is the pattern's automorphism group under enumeration
	// semantics (predicates and edge colors preserved, bounds ignored —
	// subiso treats every bound as a direct-edge requirement). The
	// identity permutation is first. When the group is too large to
	// enumerate, Aut holds only the identity and Restrictions is empty
	// (the plan stays correct, just without symmetry breaking).
	Aut [][]int32
	// Cost is the estimated search-tree size of Order (model units, for
	// comparing orders — not a step prediction).
	Cost float64
	// Cand is the per-pattern-node candidate-count estimate the cost
	// model used (index: pattern node).
	Cand []float64
}

// Automorphism-search caps: patterns bigger than maxAutNodes, or with
// automorphism groups bigger than maxAutGroup (8!), fall back to the
// identity-only group. Enumeration patterns are small — these bounds are
// about pathological inputs (e.g. many isolated wildcard nodes), not
// realistic queries.
const (
	maxAutNodes = 16
	maxAutGroup = 40320
)

// statsSampleCap bounds the per-node candidate scan: on graphs larger
// than this the planner samples evenly spaced nodes and extrapolates.
const statsSampleCap = 1 << 15

// Build plans the enumeration of p against the snapshot f.
func Build(p *pattern.Pattern, f *graph.Frozen) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cand := candCounts(p, f)
	order, cost := chooseOrder(p, f, cand)
	aut := Automorphisms(p)
	return &Plan{
		Order:        order,
		Restrictions: restrictions(order, aut),
		Aut:          aut,
		Cost:         cost,
		Cand:         cand,
	}, nil
}

// String renders the plan for humans (gpmatch -plan).
func (pl *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: order %v, est cost %.4g\n", pl.Order, pl.Cost)
	fmt.Fprintf(&b, "  automorphisms: %d", len(pl.Aut))
	if len(pl.Restrictions) > 0 {
		parts := make([]string, len(pl.Restrictions))
		for i, r := range pl.Restrictions {
			parts[i] = fmt.Sprintf("f(%d)<f(%d)", r[0], r[1])
		}
		fmt.Fprintf(&b, "; restrictions: %s", strings.Join(parts, ", "))
	}
	b.WriteString("\n")
	return b.String()
}

// candCounts estimates |{x : pred_u matches x}| per pattern node, with
// the same degree pre-filters the searcher's candidate scan applies.
func candCounts(p *pattern.Pattern, f *graph.Frozen) []float64 {
	np, n := p.N(), f.N()
	out := make([]float64, np)
	if n == 0 {
		return out
	}
	stride := 1
	sampled := n
	if n > statsSampleCap {
		stride = (n + statsSampleCap - 1) / statsSampleCap
		sampled = (n + stride - 1) / stride
	}
	for u := 0; u < np; u++ {
		pred := p.Pred(u)
		needOut := p.OutDegree(u) > 0
		needIn := len(p.In(u)) > 0
		count := 0
		for x := 0; x < n; x += stride {
			if needOut && f.OutDegree(x) == 0 {
				continue
			}
			if needIn && f.InDegree(x) == 0 {
				continue
			}
			if pred.Match(f.Attr(x)) {
				count++
			}
		}
		est := float64(count) * float64(n) / float64(sampled)
		if est < 1 {
			est = 1 // the cost model divides by these; keep them sane
		}
		out[u] = est
	}
	return out
}

// exhaustiveOrderCap: patterns up to this many nodes get an exhaustive
// search over connectivity-valid orders; larger ones are planned greedily.
const exhaustiveOrderCap = 8

// chooseOrder picks the matching order minimising the modelled
// search-tree size. Orders are restricted to connectivity-valid ones
// (each node after the first is pattern-adjacent to an earlier one
// whenever any unplaced node is), and ties keep the first candidate in
// lexicographic enumeration — deterministic across runs.
func chooseOrder(p *pattern.Pattern, f *graph.Frozen, cand []float64) ([]int, float64) {
	np := p.N()
	n := float64(f.N())
	if n < 1 {
		n = 1
	}
	avg := float64(f.M()) / n
	if avg < 1 {
		avg = 1
	}
	// adj[u][v] = number of pattern edges between u and v (either
	// direction, self loops excluded — they don't branch).
	adj := make([][]int8, np)
	for u := range adj {
		adj[u] = make([]int8, np)
	}
	for _, e := range p.Edges() {
		if e.From != e.To {
			adj[e.From][e.To]++
			adj[e.To][e.From]++
		}
	}
	// width models the candidate fan-out of placing u with k pattern
	// edges into the already-placed prefix: unconnected nodes scan their
	// whole candidate set; connected ones scan a neighborhood, thinned
	// by predicate selectivity and by each extra edge that must also hit
	// a placed image.
	width := func(u, k int) float64 {
		if k == 0 {
			return cand[u]
		}
		w := avg * (cand[u] / n)
		for i := 1; i < k; i++ {
			w *= avg / n
		}
		return w
	}
	if np > exhaustiveOrderCap {
		return greedyOrder(np, adj, cand, width)
	}

	var (
		best     []int
		bestCost = math.Inf(1)
		order    = make([]int, 0, np)
		placed   = make([]bool, np)
		links    = make([]int, np) // pattern edges into the placed prefix
	)
	var rec func(prod, cost float64)
	rec = func(prod, cost float64) {
		if cost >= bestCost {
			return // partial cost only grows
		}
		if len(order) == np {
			best = append(best[:0], order...)
			bestCost = cost
			return
		}
		anyConnected := false
		if len(order) > 0 {
			for u := 0; u < np; u++ {
				if !placed[u] && links[u] > 0 {
					anyConnected = true
					break
				}
			}
		}
		for u := 0; u < np; u++ {
			if placed[u] || (anyConnected && links[u] == 0) {
				continue
			}
			w := width(u, links[u])
			placed[u] = true
			order = append(order, u)
			for v := 0; v < np; v++ {
				links[v] += int(adj[u][v])
			}
			rec(prod*w, cost+prod*w)
			for v := 0; v < np; v++ {
				links[v] -= int(adj[u][v])
			}
			order = order[:len(order)-1]
			placed[u] = false
		}
	}
	rec(1, 0)
	return best, bestCost
}

// greedyOrder is the large-pattern fallback: repeatedly place the
// connected node with the smallest modelled width (lowest id on ties).
func greedyOrder(np int, adj [][]int8, cand []float64, width func(u, k int) float64) ([]int, float64) {
	order := make([]int, 0, np)
	placed := make([]bool, np)
	links := make([]int, np)
	prod, cost := 1.0, 0.0
	for len(order) < np {
		anyConnected := false
		if len(order) > 0 {
			for u := 0; u < np; u++ {
				if !placed[u] && links[u] > 0 {
					anyConnected = true
					break
				}
			}
		}
		best, bestW := -1, math.Inf(1)
		for u := 0; u < np; u++ {
			if placed[u] || (anyConnected && links[u] == 0) {
				continue
			}
			if w := width(u, links[u]); w < bestW {
				best, bestW = u, w
			}
		}
		placed[best] = true
		order = append(order, best)
		for v := 0; v < np; v++ {
			links[v] += int(adj[best][v])
		}
		prod *= bestW
		cost += prod
	}
	return order, cost
}

// Automorphisms computes the pattern's automorphism group under
// enumeration semantics: permutations σ with equal node predicates
// (atom-set equality) and σ preserving edges and their colors in both
// directions. Bounds are ignored, as subiso ignores them. The identity
// is always first. Patterns over maxAutNodes nodes, or groups over
// maxAutGroup elements, return the identity-only group.
func Automorphisms(p *pattern.Pattern) [][]int32 {
	np := p.N()
	identity := func() [][]int32 {
		id := make([]int32, np)
		for i := range id {
			id[i] = int32(i)
		}
		return [][]int32{id}
	}
	if np > maxAutNodes {
		return identity()
	}
	keys := make([]string, np)
	for u := 0; u < np; u++ {
		keys[u] = nodeKey(p, u)
	}
	// color[u][v] tags a u->v edge: "" means absent, otherwise a
	// non-empty tag embedding the edge color.
	color := make([][]string, np)
	for u := range color {
		color[u] = make([]string, np)
	}
	for _, e := range p.Edges() {
		color[e.From][e.To] = "e\x00" + e.Color
	}
	perm := make([]int32, np)
	used := make([]bool, np)
	var out [][]int32
	overflow := false
	var rec func(u int)
	rec = func(u int) {
		if overflow {
			return
		}
		if u == np {
			out = append(out, append([]int32(nil), perm...))
			if len(out) > maxAutGroup {
				overflow = true
			}
			return
		}
		for w := 0; w < np; w++ {
			if used[w] || keys[w] != keys[u] {
				continue
			}
			ok := color[u][u] == color[w][w]
			for v := 0; ok && v < u; v++ {
				m := perm[v]
				if color[u][v] != color[w][m] || color[v][u] != color[m][w] {
					ok = false
				}
			}
			if !ok {
				continue
			}
			perm[u] = int32(w)
			used[w] = true
			rec(u + 1)
			used[w] = false
			if overflow {
				return
			}
		}
	}
	rec(0)
	if overflow {
		return identity()
	}
	// Candidates are tried in ascending order, so out[0] is the identity.
	return out
}

// nodeKey is a canonical per-node invariant: the sorted predicate atoms
// plus degrees. Nodes can only map to nodes with equal keys.
func nodeKey(p *pattern.Pattern, u int) string {
	pred := p.Pred(u)
	atoms := make([]string, len(pred))
	for i, a := range pred {
		atoms[i] = a.String()
	}
	sort.Strings(atoms)
	return fmt.Sprintf("%d|%d|%s", p.OutDegree(u), len(p.In(u)), strings.Join(atoms, "\x00"))
}

// restrictions derives the symmetry-breaking pairs for a matching order
// from the automorphism group, by stabilizer chain: walking the order,
// every group element still fixing the processed prefix pointwise that
// moves the current node u to t contributes the pair (u, t) — forcing
// f(u) < f(t) keeps exactly the order-lexicographic minimum of each
// orbit. The group then shrinks to the stabilizer of u.
func restrictions(order []int, aut [][]int32) [][2]int32 {
	if len(aut) <= 1 {
		return nil
	}
	cur := aut
	var pairs [][2]int32
	for _, u := range order {
		var next [][]int32
		targets := map[int32]bool{}
		for _, sigma := range cur {
			if t := sigma[u]; t == int32(u) {
				next = append(next, sigma)
			} else if !targets[t] {
				targets[t] = true
				pairs = append(pairs, [2]int32{int32(u), t})
			}
		}
		cur = next
		if len(cur) <= 1 {
			break
		}
	}
	// Deterministic pair order regardless of group enumeration order.
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}

// Expand maps each canonical embedding through every automorphism,
// recovering the full embedding set from the symmetry-broken one: for
// σ ∈ Aut, f∘σ is again an embedding, and distinct (f, σ) give distinct
// results because the group acts freely on injective mappings. The
// expansion of embedding i under aut j lands at index i*len(aut)+j, with
// the identity (j = 0) first — canonical embeddings keep their relative
// order.
func Expand(embs [][]int32, aut [][]int32) [][]int32 {
	if len(aut) <= 1 || len(embs) == 0 {
		return embs
	}
	out := make([][]int32, 0, len(embs)*len(aut))
	flat := make([]int32, len(embs)*len(aut)*len(embs[0]))
	for _, f := range embs {
		for _, sigma := range aut {
			g := flat[:len(f):len(f)]
			flat = flat[len(f):]
			for u := range g {
				g[u] = f[sigma[u]]
			}
			out = append(out, g)
		}
	}
	return out
}
