package plan

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/subiso"
)

// biclique builds a pattern with wildcard nodes and bidirectional bound-1
// edges for every listed undirected pair.
func biclique(n int, pairs [][2]int) *pattern.Pattern {
	p := pattern.New()
	for i := 0; i < n; i++ {
		p.AddNode(nil)
	}
	for _, e := range pairs {
		p.AddEdge(e[0], e[1], 1)
		p.AddEdge(e[1], e[0], 1)
	}
	return p
}

func triangle() *pattern.Pattern {
	return biclique(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
}

func TestAutomorphismGroups(t *testing.T) {
	cases := []struct {
		name string
		p    *pattern.Pattern
		want int
	}{
		{"triangle", triangle(), 6},
		{"4clique", biclique(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}), 24},
		{"path3", biclique(3, [][2]int{{0, 1}, {1, 2}}), 2},
		{"square", biclique(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}), 8},
		{"isolated3", biclique(3, nil), 6},
	}
	// Directed 3-cycle with uniform labels: rotations only.
	rot := pattern.New()
	for i := 0; i < 3; i++ {
		rot.AddNode(pattern.Label("X"))
	}
	rot.AddEdge(0, 1, 1)
	rot.AddEdge(1, 2, 1)
	rot.AddEdge(2, 0, 1)
	cases = append(cases, struct {
		name string
		p    *pattern.Pattern
		want int
	}{"directed-3cycle", rot, 3})
	// Distinct labels kill every non-identity automorphism.
	lab := pattern.New()
	for _, l := range []string{"A", "B", "C"} {
		lab.AddNode(pattern.Label(l))
	}
	lab.AddEdge(0, 1, 1)
	lab.AddEdge(1, 2, 1)
	lab.AddEdge(2, 0, 1)
	cases = append(cases, struct {
		name string
		p    *pattern.Pattern
		want int
	}{"labeled-3cycle", lab, 1})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			aut := Automorphisms(tc.p)
			if len(aut) != tc.want {
				t.Fatalf("|Aut| = %d, want %d (%v)", len(aut), tc.want, aut)
			}
			for i := range aut[0] {
				if aut[0][i] != int32(i) {
					t.Fatalf("aut[0] is not the identity: %v", aut[0])
				}
			}
			// Every element preserves edges (spot check the defining
			// property rather than trusting the search).
			for _, sigma := range aut {
				for _, e := range tc.p.Edges() {
					if !tc.p.HasEdge(int(sigma[e.From]), int(sigma[e.To])) {
						t.Fatalf("σ=%v does not preserve edge %d->%d", sigma, e.From, e.To)
					}
				}
			}
		})
	}
}

func TestRestrictionsTriangle(t *testing.T) {
	p := triangle()
	pairs := restrictions([]int{0, 1, 2}, Automorphisms(p))
	want := [][2]int32{{0, 1}, {0, 2}, {1, 2}}
	if fmt.Sprint(pairs) != fmt.Sprint(want) {
		t.Fatalf("restrictions = %v, want %v", pairs, want)
	}
}

func TestExpandRecoversOrbit(t *testing.T) {
	aut := Automorphisms(triangle())
	canon := [][]int32{{3, 5, 9}}
	full := Expand(canon, aut)
	if len(full) != 6 {
		t.Fatalf("expanded to %d embeddings, want 6", len(full))
	}
	seen := map[string]bool{}
	for _, f := range full {
		if f[0] == f[1] || f[0] == f[2] || f[1] == f[2] {
			t.Fatalf("non-injective expansion %v", f)
		}
		seen[fmt.Sprint(f)] = true
	}
	if len(seen) != 6 {
		t.Fatalf("expansion has duplicates: %v", full)
	}
	if fmt.Sprint(full[0]) != fmt.Sprint(canon[0]) {
		t.Fatalf("identity expansion %v should come first", full[0])
	}
}

// symmetrized ER graph: every generated edge gets its reverse.
func symGraph(nodes, edges int, seed int64) *graph.Graph {
	g := generator.Graph(generator.GraphConfig{Nodes: nodes, Edges: edges, Attrs: 2, Seed: seed})
	type e struct{ u, v int }
	var add []e
	g.Edges(func(u, v int) {
		if !g.HasEdge(v, u) {
			add = append(add, e{v, u})
		}
	})
	for _, x := range add {
		g.AddEdge(x.u, x.v)
	}
	return g
}

func canonEmb(embs [][]int32) []string {
	out := make([]string, len(embs))
	for i, e := range embs {
		out[i] = fmt.Sprint(e)
	}
	sort.Strings(out)
	return out
}

// Planned execution (order + restrictions + expansion) must reproduce the
// exact unplanned embedding multiset, and the planned count must match.
func TestPlannedMatchesUnplanned(t *testing.T) {
	shapes := map[string]*pattern.Pattern{
		"triangle": triangle(),
		"4clique":  biclique(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}),
		"path3":    biclique(3, [][2]int{{0, 1}, {1, 2}}),
		"square":   biclique(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}),
	}
	ctx := context.Background()
	for seed := int64(1); seed <= 3; seed++ {
		g := symGraph(40, 120, seed)
		f := g.Freeze()
		for name, p := range shapes {
			pl, err := Build(p, f)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := subiso.EnumerateFrozen(ctx, p, f, subiso.Options{})
			if err != nil {
				t.Fatal(err)
			}
			opts := subiso.Options{Order: pl.Order, Restrictions: pl.Restrictions, ExpandPerEmbedding: len(pl.Aut)}
			planned, err := subiso.EnumerateFrozen(ctx, p, f, opts)
			if err != nil {
				t.Fatal(err)
			}
			full := Expand(planned.Embeddings, pl.Aut)
			if got, want := canonEmb(full), canonEmb(plain.Embeddings); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%s seed %d: planned multiset (%d) != unplanned (%d)", name, seed, len(got), len(want))
			}
			if planned.Count != int64(len(plain.Embeddings)) {
				t.Fatalf("%s seed %d: planned Count %d != %d embeddings", name, seed, planned.Count, len(plain.Embeddings))
			}
			count, err := subiso.EnumerateFrozen(ctx, p, f, subiso.Options{
				Order: pl.Order, Restrictions: pl.Restrictions,
				ExpandPerEmbedding: len(pl.Aut), CountOnly: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if count.Count != int64(len(plain.Embeddings)) || count.Embeddings != nil {
				t.Fatalf("%s seed %d: count mode got %d (emb %v), want %d and nil",
					name, seed, count.Count, count.Embeddings != nil, len(plain.Embeddings))
			}
		}
	}
}

// The symmetry-broken search must do strictly less work than the plain
// one on a symmetric shape — the point of the planner.
func TestRestrictionsPrune(t *testing.T) {
	g := symGraph(60, 240, 7)
	f := g.Freeze()
	p := triangle()
	pl, err := Build(p, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Aut) != 6 || len(pl.Restrictions) != 3 {
		t.Fatalf("triangle plan: |Aut|=%d restrictions=%v", len(pl.Aut), pl.Restrictions)
	}
	ctx := context.Background()
	plain, _ := subiso.EnumerateFrozen(ctx, p, f, subiso.Options{})
	planned, _ := subiso.EnumerateFrozen(ctx, p, f, subiso.Options{
		Order: pl.Order, Restrictions: pl.Restrictions, ExpandPerEmbedding: 6,
	})
	if planned.Steps*2 >= plain.Steps && plain.Steps > 100 {
		t.Fatalf("restrictions did not prune: planned %d steps vs plain %d", planned.Steps, plain.Steps)
	}
}

func TestBuildOrderIsPermutation(t *testing.T) {
	g := symGraph(30, 90, 11)
	f := g.Freeze()
	for _, p := range []*pattern.Pattern{
		triangle(),
		biclique(1, nil),
		biclique(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}),
		biclique(10, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}}), // greedy path
	} {
		pl, err := Build(p, f)
		if err != nil {
			t.Fatal(err)
		}
		if len(pl.Order) != p.N() {
			t.Fatalf("order %v for %d nodes", pl.Order, p.N())
		}
		seen := make([]bool, p.N())
		for _, u := range pl.Order {
			if seen[u] {
				t.Fatalf("order %v repeats %d", pl.Order, u)
			}
			seen[u] = true
		}
	}
}
