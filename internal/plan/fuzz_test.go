// The fuzz target lives in an external test package so it can drive the
// planner through the public gpm.Engine surface (gpm imports
// internal/plan, so the inner package cannot import it back).
package plan_test

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"gpm"
)

// decodePlanCase grows a tiny labeled graph and bound-1 pattern from
// fuzz bytes:
//
//	b[0] graph nodes (2..16)    b[1] label alphabet (1..3)
//	b[2] pattern nodes (1..4)   b[3] per-node wildcard/label mask
//	b[4] bit 0: symmetrise the graph
//	b[5] pattern edge count (0..2·pn)
//	b[6:] byte pairs: first the pattern edges, then graph edges
func decodePlanCase(data []byte) (*gpm.Graph, *gpm.Pattern) {
	get := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	gn := 2 + int(get(0))%15
	alpha := 1 + int(get(1))%3
	pn := 1 + int(get(2))%4
	predMask := get(3)
	sym := get(4)&1 == 1
	pe := int(get(5)) % (2*pn + 1)

	g := gpm.NewGraph(0)
	for i := 0; i < gn; i++ {
		g.AddNode(gpm.Attrs{"label": gpm.Str(fmt.Sprintf("L%d", i%alpha))})
	}
	p := gpm.NewPattern()
	for i := 0; i < pn; i++ {
		if predMask&(1<<i) != 0 {
			p.AddNode(gpm.Label(fmt.Sprintf("L%d", i%alpha)))
		} else {
			p.AddNode(nil)
		}
	}
	pos := 6
	for i := 0; i < pe && pos+1 < len(data); i++ {
		u, v := int(data[pos])%pn, int(data[pos+1])%pn
		pos += 2
		if u != v {
			p.AddEdge(u, v, 1) // duplicates are rejected; that's fine
		}
	}
	for pos+1 < len(data) {
		u, v := int(data[pos])%gn, int(data[pos+1])%gn
		pos += 2
		if u != v {
			g.AddEdge(u, v)
			if sym {
				g.AddEdge(v, u)
			}
		}
	}
	return g, p
}

func multiset(embs [][]int32) string {
	keys := make([]string, len(embs))
	for i, e := range embs {
		keys[i] = fmt.Sprint(e)
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}

// FuzzPlannedEnum pins the planner's only contract: on any graph and
// pattern, planned enumeration returns exactly the unplanned embedding
// multiset and CountEmbeddings equals the enumeration length.
func FuzzPlannedEnum(f *testing.F) {
	f.Add([]byte{})
	// Symmetric triangle pattern on a symmetrised 4-cycle + chord.
	f.Add([]byte{2, 0, 2, 0, 1, 6, 0, 1, 1, 2, 0, 2, 0, 1, 1, 2, 2, 3, 3, 0, 0, 2})
	// Labeled 2-path on an asymmetric graph.
	f.Add([]byte{5, 2, 2, 7, 0, 2, 0, 1, 1, 2, 0, 1, 1, 2, 2, 3, 3, 4, 4, 0, 1, 3})
	// Isolated wildcard nodes: the whole pattern is one IE tail.
	f.Add([]byte{9, 0, 3, 0, 0, 0, 0, 1, 2, 3, 4, 5, 5, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, p := decodePlanCase(data)
		eng := gpm.NewEngine(g)
		ctx := context.Background()
		opts := gpm.IsoOptions{MaxSteps: 200_000}

		plainOpts := opts
		plainOpts.NoPlan = true
		plain, err := eng.Enumerate(ctx, p, plainOpts)
		if err != nil {
			t.Fatalf("unplanned: %v", err)
		}
		planned, err := eng.Enumerate(ctx, p, opts)
		if err != nil {
			t.Fatalf("planned: %v", err)
		}
		if planned.Count != int64(len(planned.Embeddings)) {
			t.Fatalf("planned Count %d != len %d", planned.Count, len(planned.Embeddings))
		}
		// A step budget that dies mid-search leaves the two paths at
		// different frontiers; only complete searches are comparable.
		if plain.Complete && planned.Complete {
			if a, b := multiset(plain.Embeddings), multiset(planned.Embeddings); a != b {
				t.Fatalf("planned multiset diverged\nunplanned: %s\nplanned:   %s", a, b)
			}
			cnt, err := eng.CountEmbeddings(ctx, p, opts)
			if err != nil {
				t.Fatalf("count: %v", err)
			}
			if cnt.Complete && cnt.Count != int64(len(plain.Embeddings)) {
				t.Fatalf("count %d != %d enumerated", cnt.Count, len(plain.Embeddings))
			}
		}
	})
}
