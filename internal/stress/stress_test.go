// Package stress cross-checks the incremental matcher against the batch
// algorithm on harness-shaped workloads (dataset-like graphs, generated
// patterns, large mixed batches). It lives outside internal/incremental
// because it needs internal/generator, which itself depends on the
// incremental Update type.
package stress

import (
	"math/rand"
	"testing"

	"gpm/internal/core"
	"gpm/internal/generator"
	"gpm/internal/incremental"
	"gpm/internal/matrix"
)

func relEqual(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestMatcherStressLikeBench reproduces the harness workload at small
// scale: power-law graphs, walk-generated DAG patterns with mixed bounds,
// and larger mixed update batches. Repeated runs shake out order
// dependence from map iteration.
func TestMatcherStressLikeBench(t *testing.T) {
	for round := 0; round < 30; round++ {
		seed := int64(round*131 + 7)
		g := generator.Graph(generator.GraphConfig{
			Nodes: 80, Edges: 320, Attrs: 6, Model: generator.PowerLaw, Seed: seed,
		})
		p := generator.Pattern(generator.PatternConfig{
			Nodes: 4, Edges: 4, K: 3, C: 2, PredAttrs: 2, Seed: seed,
		}, g)
		if !p.IsDAG() {
			continue
		}
		gInc := g.Clone()
		dm := incremental.NewDynMatrix(gInc)
		m, err := incremental.NewMatcher(p, dm)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed))
		for batch := 0; batch < 4; batch++ {
			ups := generator.Updates(generator.UpdatesConfig{
				Insertions: 4 + r.Intn(12), Deletions: 4 + r.Intn(12), Seed: seed + int64(batch),
			}, gInc)
			if _, err := m.Apply(ups); err != nil {
				t.Fatalf("round %d batch %d: %v", round, batch, err)
			}
			if !dm.Matrix().Equal(matrix.New(gInc)) {
				t.Fatalf("round %d batch %d: matrix diverged: %v",
					round, batch, dm.Matrix().Diff(matrix.New(gInc), 8))
			}
			want, err := core.Match(p, gInc)
			if err != nil {
				t.Fatal(err)
			}
			if !relEqual(m.Relation(), want.Relation()) {
				t.Fatalf("round %d batch %d seed %d: relation diverged\n inc %v\n bat %v\npattern:\n%s",
					round, batch, seed, m.Relation(), want.Relation(), p)
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("round %d batch %d: %v", round, batch, err)
			}
		}
	}
}
