package stress

import (
	"testing"

	"gpm/internal/core"
	"gpm/internal/datasets"
	"gpm/internal/generator"
	"gpm/internal/incremental"
)

// TestBenchFig6iRepro replays the exact Fig. 6(i) harness workload that
// exposed an order-dependent divergence (found via the harness's builtin
// incremental-vs-batch cross-check). Run with -count to vary map orders.
func TestBenchFig6iRepro(t *testing.T) {
	const seed = 20100913
	g, err := datasets.ByName("youtube", seed, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	var p = generator.Pattern(generator.PatternConfig{
		Nodes: 4, Edges: 4, K: 3, C: 2, PredAttrs: 2, Seed: seed + 4,
	}, g)
	for shift := int64(0); !p.IsDAG(); shift++ {
		p = generator.Pattern(generator.PatternConfig{
			Nodes: 4, Edges: 4, K: 3, C: 2, PredAttrs: 2, Seed: seed + shift*977 + 4,
		}, g)
	}
	for _, raw := range []int{400, 800, 1200, 1600, 2000, 2400, 2800, 3200} {
		size := int(float64(raw) * 0.02)
		if size < 4 {
			size = 4
		}
		ins := size / 2
		del := size - ins
		gInc := g.Clone()
		dm := incremental.NewDynMatrix(gInc)
		m, err := incremental.NewMatcher(p, dm)
		if err != nil {
			t.Fatal(err)
		}
		ups := generator.Updates(generator.UpdatesConfig{
			Insertions: ins, Deletions: del, Seed: seed + int64(raw),
		}, gInc)
		if _, err := m.Apply(ups); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		want, err := core.Match(p, gInc)
		if err != nil {
			t.Fatal(err)
		}
		if !relEqual(m.Relation(), want.Relation()) {
			inc, bat := m.Relation(), want.Relation()
			for u := range inc {
				if len(inc[u]) != len(bat[u]) {
					t.Logf("node %d: inc %v bat %v", u, inc[u], bat[u])
				}
			}
			t.Fatalf("size %d: diverged\npattern:\n%s", size, p)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("size %d: invariants: %v", size, err)
		}
	}
}
