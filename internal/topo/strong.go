package topo

import (
	"context"
	"sync"

	"gpm/internal/cancel"
	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// StrongSim computes strong simulation of p in f (Ma et al., §4): dual
// simulation with locality. For every candidate center w — a data node
// in the image of the whole-graph dual simulation — the ball Ĝ[w, dP] of
// radius dP (the pattern's undirected diameter) is extracted, dual
// simulation of the pattern is computed inside the ball, and the ball is
// accepted when w itself is matched and the connected component of the
// match graph containing w covers every pattern node (the maximum
// perfect subgraph). The result relation is the union over accepted
// balls; ok reports whether every pattern node kept at least one match.
//
// Disconnected patterns are handled per weakly-connected component, each
// with its own diameter and ball sweep (Ma et al. assume connected
// patterns; the component decomposition is the natural extension, since
// dual-simulation constraints never cross components).
//
// Balls are independent, so their evaluation is sharded across
// opts.Workers goroutines, each owning its scratch (ball BFS buffers
// from the graph.Scratch pool, grow-on-demand local bitmaps and
// counters). The union over accepted balls is order-independent and the
// final relation is emitted by one sorted scan, so every worker count
// returns bit-identical relations.
func StrongSim(ctx context.Context, p *pattern.Pattern, f *graph.Frozen, opts Options) (rel [][]int32, ok bool, err error) {
	if err := checkPattern(p); err != nil {
		return nil, false, err
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	np, n := p.N(), f.N()

	// Whole-graph dual simulation is both a prefilter (strong ⊆ dual, so
	// per-ball candidates start from the dual relation) and the source
	// of candidate centers (an unmatched center can never anchor a
	// perfect subgraph).
	dual, err := dualFixpoint(ctx, p, f, Options{Workers: opts.Workers})
	if err != nil {
		return nil, false, err
	}

	comps := Components(p)

	// Candidate centers per component: the sorted union of the dual
	// matches of the component's pattern nodes.
	type ballTask struct {
		comp   int
		center int32
	}
	var tasks []ballTask
	mark := make([]bool, n)
	for ci, c := range comps {
		for _, u := range c.Nodes {
			for x := 0; x < n; x++ {
				if dual[u][x] {
					mark[x] = true
				}
			}
		}
		for x := 0; x < n; x++ {
			if mark[x] {
				tasks = append(tasks, ballTask{ci, int32(x)})
				mark[x] = false
			}
		}
	}

	workers := opts.workers()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	// Accepted pairs accumulate into one shared bitmap: emission happens
	// once per accepted ball (rare next to ball evaluation), so a mutex
	// costs nothing, and bit-marking is order-independent — the merge
	// stays bit-identical at every worker count without paying
	// O(workers·|Vp|·|V|) per-worker bitmaps.
	res := &acceptedPairs{bits: make([][]bool, np)}
	for u := 0; u < np; u++ {
		res.bits[u] = make([]bool, n)
	}
	ws := make([]*strongWorker, workers)
	for w := range ws {
		ws[w] = newStrongWorker(ctx, p, f, dual, res)
	}
	defer func() {
		for _, w := range ws {
			w.sc.Put()
		}
	}()
	err = RunShards(workers, len(tasks), func(w, t int) error {
		return ws[w].ball(&comps[tasks[t].comp], int(tasks[t].center))
	})
	if err != nil {
		return nil, false, err
	}

	// Deterministic merge: one sorted scan over the shared bitmap —
	// identical at every worker count.
	rel, ok = collect(res.bits)
	return rel, ok, nil
}

// acceptedPairs is the shared accepted-pair bitmap of one StrongSim
// call; workers mark bits under the mutex once per accepted ball.
type acceptedPairs struct {
	mu   sync.Mutex
	bits [][]bool
}

// Component is one weakly-connected component of a pattern: its nodes,
// its edge ids and its undirected diameter (the ball radius). It is
// exported for callers that schedule their own ball sweeps — the
// incremental strong-simulation watcher re-evaluates only the balls an
// update batch can have touched.
type Component struct {
	Nodes  []int
	Edges  []int
	Radius int
}

// Components decomposes p into weakly-connected components and computes
// each component's undirected diameter by BFS from every node (patterns
// are small; this is O(|Vp|·|Ep|)).
func Components(p *pattern.Pattern) []Component {
	np := p.N()
	adj := make([][]int, np) // undirected pattern adjacency
	for eid := 0; eid < p.EdgeCount(); eid++ {
		e := p.EdgeAt(eid)
		if e.From != e.To {
			adj[e.From] = append(adj[e.From], e.To)
			adj[e.To] = append(adj[e.To], e.From)
		}
	}
	compOf := make([]int, np)
	for i := range compOf {
		compOf[i] = -1
	}
	var comps []Component
	dist := make([]int, np)
	var queue []int
	for start := 0; start < np; start++ {
		if compOf[start] >= 0 {
			continue
		}
		ci := len(comps)
		var c Component
		queue = append(queue[:0], start)
		compOf[start] = ci
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			c.Nodes = append(c.Nodes, v)
			for _, w := range adj[v] {
				if compOf[w] < 0 {
					compOf[w] = ci
					queue = append(queue, w)
				}
			}
		}
		// Undirected eccentricities within the component.
		for _, src := range c.Nodes {
			for _, v := range c.Nodes {
				dist[v] = -1
			}
			dist[src] = 0
			queue = append(queue[:0], src)
			for head := 0; head < len(queue); head++ {
				v := queue[head]
				for _, w := range adj[v] {
					if dist[w] < 0 {
						dist[w] = dist[v] + 1
						queue = append(queue, w)
					}
				}
			}
			for _, v := range c.Nodes {
				if dist[v] > c.Radius {
					c.Radius = dist[v]
				}
			}
		}
		comps = append(comps, c)
	}
	for eid := 0; eid < p.EdgeCount(); eid++ {
		ci := compOf[p.EdgeAt(eid).From]
		comps[ci].Edges = append(comps[ci].Edges, eid)
	}
	return comps
}

// strongWorker owns the scratch state of one ball-evaluation goroutine.
// All per-ball buffers are indexed by local ids (the ball's BFS order)
// and grown on demand, then zeroed back after each ball, so a worker's
// steady-state evaluation does not allocate.
type strongWorker struct {
	p    *pattern.Pattern
	f    *graph.Frozen
	dual [][]bool
	poll cancel.Poller
	cur  *Component // component being evaluated by the current ball

	sc      *graph.Scratch // ball BFS dist + member queue (pooled)
	lid     []int32        // global node -> local ball id; -1 outside
	sim     [][]bool       // per pattern node, local ball ids
	fwd     [][]int32      // per pattern edge, out-witness counters
	back    [][]int32      // per pattern edge, in-witness counters
	work    []removal      // local removal worklist
	visited []bool         // match-graph BFS marks
	mq      []int32        // match-graph BFS queue
	res     *acceptedPairs // shared accepted-pair sink; nil in collect mode
	out     [][2]int32     // collect-mode output: accepted (u, x) pairs
}

func newStrongWorker(ctx context.Context, p *pattern.Pattern, f *graph.Frozen, dual [][]bool, res *acceptedPairs) *strongWorker {
	np, n := p.N(), f.N()
	w := &strongWorker{
		p:    p,
		f:    f,
		dual: dual,
		poll: cancel.Every(ctx, cancelPollInterval),
		sc:   graph.GetScratch(n),
		lid:  make([]int32, n),
		sim:  make([][]bool, np),
		fwd:  make([][]int32, p.EdgeCount()),
		back: make([][]int32, p.EdgeCount()),
		res:  res,
	}
	for i := range w.lid {
		w.lid[i] = -1
	}
	return w
}

func growBool(s *[]bool, n int) []bool {
	if cap(*s) < n {
		*s = make([]bool, n)
	}
	*s = (*s)[:n]
	return *s
}

func growI32(s *[]int32, n int) []int32 {
	if cap(*s) < n {
		*s = make([]int32, n)
	}
	*s = (*s)[:n]
	return *s
}

// ball evaluates one candidate center: extract the ball, run dual
// simulation inside it, extract the maximum perfect subgraph around the
// center, and accumulate its pairs into w.res when it covers every
// pattern node of the component.
func (w *strongWorker) ball(c *Component, center int) error {
	pat := w.p
	w.cur = c
	r := w.f.BallInto(center, c.Radius, w.sc.Dist, &w.sc.Queue)
	members := w.sc.Queue[:r]
	for i, g := range members {
		w.lid[g] = int32(i)
	}
	defer func() {
		// Return every touched buffer to its zero state so the next ball
		// starts clean without O(n) refills.
		for _, g := range members {
			w.lid[g] = -1
			w.sc.Dist[g] = -1
		}
		for _, u := range c.Nodes {
			row := w.sim[u]
			for i := range row {
				row[i] = false
			}
		}
		for _, eid := range c.Edges {
			for i := range w.fwd[eid] {
				w.fwd[eid][i] = 0
			}
			for i := range w.back[eid] {
				w.back[eid][i] = 0
			}
		}
		for i := range w.visited {
			w.visited[i] = false
		}
		w.work = w.work[:0]
		w.mq = w.mq[:0]
	}()

	// Initial candidates: the whole-graph dual relation restricted to the
	// ball (it contains every dual simulation inside the ball, so the
	// greatest fixpoint from here is the ball's maximum dual simulation).
	for _, u := range c.Nodes {
		row := growBool(&w.sim[u], r)
		for i, g := range members {
			row[i] = w.dual[u][g]
		}
	}

	// Counter seeding over ball-internal edges.
	for _, eid := range c.Edges {
		e := pat.EdgeAt(eid)
		fr := growI32(&w.fwd[eid], r)
		bk := growI32(&w.back[eid], r)
		for i, g := range members {
			if err := w.poll.Err(); err != nil {
				return err
			}
			if w.sim[e.From][i] {
				for _, y := range w.f.Out(int(g)) {
					ly := w.lid[y]
					if ly >= 0 && w.sim[e.To][ly] && colorOK(w.f, int(g), int(y), e.Color) {
						fr[i]++
					}
				}
				if fr[i] == 0 {
					w.work = append(w.work, removal{int32(e.From), int32(i)})
				}
			}
			if w.sim[e.To][i] {
				for _, z := range w.f.In(int(g)) {
					lz := w.lid[z]
					if lz >= 0 && w.sim[e.From][lz] && colorOK(w.f, int(z), int(g), e.Color) {
						bk[i]++
					}
				}
				if bk[i] == 0 {
					w.work = append(w.work, removal{int32(e.To), int32(i)})
				}
			}
		}
	}

	// Local refinement cascade (same scheme as DualSim, ball-restricted).
	for len(w.work) > 0 {
		rm := w.work[len(w.work)-1]
		w.work = w.work[:len(w.work)-1]
		u, lx := int(rm.u), int(rm.x)
		if !w.sim[u][lx] {
			continue
		}
		w.sim[u][lx] = false
		gx := int(members[lx])
		for _, eid := range pat.In(u) {
			e := pat.EdgeAt(int(eid))
			for _, z := range w.f.In(gx) {
				if err := w.poll.Err(); err != nil {
					return err
				}
				lz := w.lid[z]
				if lz < 0 || !w.sim[e.From][lz] || !colorOK(w.f, int(z), gx, e.Color) {
					continue
				}
				w.fwd[eid][lz]--
				if w.fwd[eid][lz] == 0 {
					w.work = append(w.work, removal{int32(e.From), lz})
				}
			}
		}
		for _, eid := range pat.Out(u) {
			e := pat.EdgeAt(int(eid))
			for _, y := range w.f.Out(gx) {
				if err := w.poll.Err(); err != nil {
					return err
				}
				ly := w.lid[y]
				if ly < 0 || !w.sim[e.To][ly] || !colorOK(w.f, gx, int(y), e.Color) {
					continue
				}
				w.back[eid][ly]--
				if w.back[eid][ly] == 0 {
					w.work = append(w.work, removal{int32(e.To), ly})
				}
			}
		}
	}

	// The center (local id 0, first out of the BFS) must itself be
	// matched, or the ball cannot anchor a perfect subgraph.
	centerMatched := false
	for _, u := range c.Nodes {
		if w.sim[u][0] {
			centerMatched = true
			break
		}
	}
	if !centerMatched {
		return nil
	}

	// Maximum perfect subgraph: the connected component of the match
	// graph containing the center. Match-graph edges connect matched
	// data nodes realising some pattern edge inside the ball.
	w.visited = growBool(&w.visited, r)
	for i := range w.visited {
		w.visited[i] = false
	}
	w.visited[0] = true
	w.mq = append(w.mq[:0], 0)
	for head := 0; head < len(w.mq); head++ {
		lx := int(w.mq[head])
		gx := int(members[lx])
		for _, y := range w.f.Out(gx) {
			ly := w.lid[y]
			if ly >= 0 && !w.visited[ly] && w.matchEdge(lx, int(ly), gx, int(y)) {
				w.visited[ly] = true
				w.mq = append(w.mq, ly)
			}
		}
		for _, z := range w.f.In(gx) {
			lz := w.lid[z]
			if lz >= 0 && !w.visited[lz] && w.matchEdge(int(lz), lx, int(z), gx) {
				w.visited[lz] = true
				w.mq = append(w.mq, lz)
			}
		}
	}

	// Perfect = the component covers every pattern node of c.
	for _, u := range c.Nodes {
		found := false
		for i, in := range w.sim[u] {
			if in && w.visited[i] {
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	if w.res == nil {
		// Collect mode (BallEvaluator): hand the accepted pairs back to
		// the caller instead of marking the shared bitmap.
		for _, u := range c.Nodes {
			for i, in := range w.sim[u] {
				if in && w.visited[i] {
					w.out = append(w.out, [2]int32{int32(u), members[i]})
				}
			}
		}
		return nil
	}
	w.res.mu.Lock()
	for _, u := range c.Nodes {
		for i, in := range w.sim[u] {
			if in && w.visited[i] {
				w.res.bits[u][members[i]] = true
			}
		}
	}
	w.res.mu.Unlock()
	return nil
}

// BallEvaluator evaluates individual strong-simulation balls against a
// frozen snapshot, for callers that schedule their own center sweep —
// the incremental strong-simulation watcher re-evaluates only the balls
// an update batch can have touched and reuses the untouched balls'
// stored contributions. dual must be the whole-graph dual-simulation
// membership bitmaps of p in f (per pattern node, indexed by data node);
// the evaluator reads it but never writes. One evaluator serves one
// goroutine; create one per worker and Close it to return the pooled
// scratch.
type BallEvaluator struct {
	w *strongWorker
}

// NewBallEvaluator binds an evaluator to one snapshot and dual relation.
func NewBallEvaluator(ctx context.Context, p *pattern.Pattern, f *graph.Frozen, dual [][]bool) *BallEvaluator {
	return &BallEvaluator{w: newStrongWorker(ctx, p, f, dual, nil)}
}

// Eval evaluates the ball of one candidate center for one pattern
// component, appending the accepted (pattern node, data node) pairs to
// out and returning it. A rejected ball (center unmatched, or the match
// graph's component around it does not cover every pattern node) appends
// nothing. Results are deterministic in (f, dual, c, center), so any
// scheduling of Eval calls across evaluators merges to the same union.
func (b *BallEvaluator) Eval(c *Component, center int, out [][2]int32) ([][2]int32, error) {
	b.w.out = out
	err := b.w.ball(c, center)
	out, b.w.out = b.w.out, nil
	return out, err
}

// Close returns the evaluator's pooled scratch. The evaluator must not
// be used afterwards.
func (b *BallEvaluator) Close() { b.w.sc.Put() }

// matchEdge reports whether data edge (gx, gy) — both endpoints inside
// the current ball with local ids lx, ly — realises some pattern edge of
// the current component, i.e. is an edge of the match graph.
func (w *strongWorker) matchEdge(lx, ly, gx, gy int) bool {
	for _, eid := range w.cur.Edges {
		e := w.p.EdgeAt(eid)
		if w.sim[e.From][lx] && w.sim[e.To][ly] && colorOK(w.f, gx, gy, e.Color) {
			return true
		}
	}
	return false
}
