// Package topo implements the topology-preserving matching semantics of
// Ma, Cao, Fan, Huai and Wo, "Capturing Topology in Graph Pattern
// Matching" (PVLDB 5(4), 2012) — the follow-up that closes the gap the
// source paper deliberately opens: bounded simulation trades topology
// preservation for tractability, and this package adds it back while
// staying in cubic time.
//
// Two semantics are provided, both over all-bounds-one patterns:
//
//   - Dual simulation (DualSim): plain graph simulation extended with
//     parent constraints. A pair (u, x) survives only if every pattern
//     edge leaving u has a successor witness (the child constraint of
//     plain simulation) AND every pattern edge entering u has a
//     predecessor witness. Dual simulation preserves parent topology
//     that plain simulation ignores, at the same asymptotic cost.
//
//   - Strong simulation (StrongSim): dual simulation with locality. For
//     every candidate center w, the ball Ĝ[w, dP] of radius dP (the
//     pattern's undirected diameter) is extracted, dual simulation is
//     computed inside the ball, and the maximum perfect subgraph around
//     w — the connected component of the match graph containing w, if it
//     covers every pattern node — contributes its pairs to the result.
//     Balls are independent, so their evaluation shards across a worker
//     pool; the result is the union over accepted balls, which makes it
//     bit-identical at every worker count.
//
// The semantics form a containment lattice with the package's other
// matchers (the internal/difftest harness pins it on random workloads):
//
//	subiso pairs ⊆ strong ⊆ dual ⊆ plain simulation ⊆ bounded simulation
//
// Both functions traverse an immutable graph.Frozen snapshot and reuse
// the pooled graph.Scratch buffers for ball extraction, so they are safe
// to fan out across goroutines and allocation-light on the hot path.
package topo

import (
	"fmt"

	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// Options tunes one DualSim or StrongSim call.
type Options struct {
	// Workers shards the work — candidate filtering and counter seeding
	// for DualSim, per-center ball evaluation for StrongSim — across
	// this many goroutines. Values <= 1 run fully sequentially. Every
	// worker count produces bit-identical relations: the dual fixpoint
	// is unique, and the strong result is an order-independent union
	// over accepted balls.
	Workers int

	// ChildOnly drops the parent constraints from DualSim, collapsing it
	// to plain graph simulation. It exists for differential testing —
	// child-only dual simulation must equal simulation.Run and bounded
	// simulation at k=1 — and is ignored by StrongSim.
	ChildOnly bool

	// Seed, when non-nil, restricts DualSim's candidate initialisation to
	// the listed data nodes: Seed[u] must be an ascending, deduplicated
	// superset of the true relation row of pattern node u (e.g. the dual
	// relation of a containing pattern, see internal/pattern's
	// Containment). The greatest fixpoint inside any superset of the
	// maximum dual simulation is the maximum dual simulation, so seeding
	// changes only the work done, never the result. Seeded initialisation
	// runs sequentially. StrongSim ignores Seed: its per-ball fixpoints
	// have no global relation to restrict.
	Seed [][]int32
}

func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// checkPattern validates p for the bounds-one semantics this package
// implements.
func checkPattern(p *pattern.Pattern) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if !p.AllBoundsOne() {
		return fmt.Errorf("topo: pattern has a bound != 1; dual/strong simulation are edge-to-edge semantics (use bounded simulation for hop bounds)")
	}
	return nil
}

// colorOK reports whether data edge (u, v) satisfies a pattern edge's
// color demand.
func colorOK(f *graph.Frozen, u, v int, want string) bool {
	if want == "" {
		return true
	}
	return f.Color(u, v) == want
}

// collect turns per-pattern-node membership bitmaps into the sorted
// relation form every matcher in this module returns, reporting whether
// every pattern node kept at least one match.
func collect(sim [][]bool) (rel [][]int32, ok bool) {
	rel = make([][]int32, len(sim))
	ok = true
	for u := range sim {
		for x, in := range sim[u] {
			if in {
				rel[u] = append(rel[u], int32(x))
			}
		}
		if len(rel[u]) == 0 {
			ok = false
		}
	}
	return rel, ok
}
