package topo

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/simulation"
	"gpm/internal/value"
)

// decodeCase deterministically builds a small labeled graph and an
// all-bounds-one pattern from fuzz bytes: one byte of node count, one
// label byte per node, then alternating (from, to) pairs wired into the
// graph and the pattern. Every byte string decodes to a valid case, so
// the fuzzer explores semantics, not parser rejections.
func decodeCase(data []byte) (*pattern.Pattern, *graph.Frozen) {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	n := 2 + int(next())%8  // 2..9 data nodes
	np := 1 + int(next())%3 // 1..3 pattern nodes
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.SetAttr(i, graph.Attrs{"label": value.Str(fmt.Sprintf("L%d", next()%4))})
	}
	p := pattern.New()
	for i := 0; i < np; i++ {
		p.AddNode(pattern.Label(fmt.Sprintf("L%d", next()%4)))
	}
	for i := 0; len(data) >= 2; i++ {
		a, b := int(next()), int(next())
		if i%3 == 2 {
			from, to := a%np, b%np
			if from != to && !p.HasEdge(from, to) {
				p.MustAddEdge(from, to, 1)
			}
		} else {
			if a%n != b%n {
				g.AddEdge(a%n, b%n)
			}
		}
	}
	if p.EdgeCount() == 0 && np > 1 {
		p.MustAddEdge(0, 1, 1)
	}
	return p, g.Freeze()
}

// contained reports rel ⊆ sup, row by row (both sorted).
func contained(rel, sup [][]int32) bool {
	if len(rel) != len(sup) {
		return false
	}
	for u := range rel {
		j := 0
		for _, x := range rel[u] {
			for j < len(sup[u]) && sup[u][j] < x {
				j++
			}
			if j >= len(sup[u]) || sup[u][j] != x {
				return false
			}
		}
	}
	return true
}

// FuzzDualSim drives DualSim (and StrongSim, which is built on it) with
// random small graph/pattern pairs. Any input must terminate and uphold
// the semantics invariants: the dual relation verifies against the
// independent IsDualSim checker, is contained in plain simulation,
// contains strong simulation, and is idempotent (a second run over the
// same frozen snapshot returns the identical relation).
func FuzzDualSim(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 1, 0, 1, 0, 1, 0, 1, 1, 0})
	f.Add([]byte{5, 2, 0, 1, 2, 3, 0, 1, 1, 2, 2, 0, 0, 1, 1, 0, 2, 1})
	f.Add([]byte{7, 2, 1, 1, 2, 2, 3, 3, 0, 4, 1, 5, 2, 0, 0, 1, 1, 2, 2, 0, 3, 4, 4, 5, 5, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, fz := decodeCase(data)
		ctx := context.Background()

		dual, dualOK, err := DualSim(ctx, p, fz, Options{})
		if err != nil {
			t.Fatalf("DualSim: %v", err)
		}
		if !IsDualSim(p, fz, dual) {
			t.Fatalf("DualSim output rejected by IsDualSim\nrel: %v\npattern:\n%s", dual, p)
		}
		sim, _, err := simulation.RunFrozen(ctx, p, fz)
		if err != nil {
			t.Fatalf("simulation: %v", err)
		}
		if !contained(dual, sim) {
			t.Fatalf("dual ⊄ plain simulation\ndual: %v\nsim:  %v\npattern:\n%s", dual, sim, p)
		}
		again, againOK, err := DualSim(ctx, p, fz, Options{})
		if err != nil {
			t.Fatalf("DualSim (second run): %v", err)
		}
		if dualOK != againOK || !reflect.DeepEqual(dual, again) {
			t.Fatalf("DualSim is not idempotent: %v vs %v", dual, again)
		}

		strong, _, err := StrongSim(ctx, p, fz, Options{})
		if err != nil {
			t.Fatalf("StrongSim: %v", err)
		}
		if !contained(strong, dual) {
			t.Fatalf("strong ⊄ dual\nstrong: %v\ndual:   %v\npattern:\n%s", strong, dual, p)
		}
	})
}
