package topo_test

import (
	"context"
	"reflect"
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/simulation"
	"gpm/internal/topo"
	"gpm/internal/value"
)

// colorOK mirrors the package-internal color check: data edge (u, v)
// satisfies a pattern edge's color demand.
func colorOK(f *graph.Frozen, u, v int, want string) bool {
	if want == "" {
		return true
	}
	return f.Color(u, v) == want
}

// --- naive reference implementations -------------------------------------
//
// Independent textbook fixpoints, deliberately sharing no machinery with
// the counter/worklist code under test: the naive dual rescans every pair
// until stable, and the naive strong enumerates every node as a ball
// center (not just the dual prefilter's image).

func naiveDual(p *pattern.Pattern, f *graph.Frozen, childOnly bool) ([][]int32, bool) {
	np, n := p.N(), f.N()
	sim := make([][]bool, np)
	for u := 0; u < np; u++ {
		sim[u] = make([]bool, n)
		for x := 0; x < n; x++ {
			sim[u][x] = p.Pred(u).Match(f.Attr(x))
		}
	}
	inBall := func(int) bool { return true }
	naiveDualFixpoint(p, f, sim, inBall, childOnly)
	rel := make([][]int32, np)
	ok := true
	for u := 0; u < np; u++ {
		for x := 0; x < n; x++ {
			if sim[u][x] {
				rel[u] = append(rel[u], int32(x))
			}
		}
		if len(rel[u]) == 0 {
			ok = false
		}
	}
	return rel, ok
}

// naiveDualFixpoint repeatedly deletes pairs violating the child or
// parent constraint, restricted to the data nodes inBall accepts.
func naiveDualFixpoint(p *pattern.Pattern, f *graph.Frozen, sim [][]bool, inBall func(int) bool, childOnly bool) {
	for changed := true; changed; {
		changed = false
		for u := 0; u < p.N(); u++ {
			for x := 0; x < f.N(); x++ {
				if !sim[u][x] || !inBall(x) {
					continue
				}
				dead := false
				for _, eid := range p.Out(u) {
					e := p.EdgeAt(int(eid))
					found := false
					for _, y := range f.Out(x) {
						if inBall(int(y)) && sim[e.To][y] && colorOK(f, x, int(y), e.Color) {
							found = true
							break
						}
					}
					if !found {
						dead = true
						break
					}
				}
				if !dead && !childOnly {
					for _, eid := range p.In(u) {
						e := p.EdgeAt(int(eid))
						found := false
						for _, z := range f.In(x) {
							if inBall(int(z)) && sim[e.From][z] && colorOK(f, int(z), x, e.Color) {
								found = true
								break
							}
						}
						if !found {
							dead = true
							break
						}
					}
				}
				if dead {
					sim[u][x] = false
					changed = true
				}
			}
		}
	}
}

// naiveStrong evaluates every data node as a ball center with a fresh
// (unseeded) in-ball dual fixpoint.
func naiveStrong(p *pattern.Pattern, f *graph.Frozen) ([][]int32, bool) {
	np, n := p.N(), f.N()
	res := make([][]bool, np)
	for u := range res {
		res[u] = make([]bool, n)
	}
	for _, c := range topo.Components(p) {
		for center := 0; center < n; center++ {
			// Undirected ball by naive BFS.
			dist := make([]int32, n)
			for i := range dist {
				dist[i] = -1
			}
			var queue []int32
			f.BallInto(center, c.Radius, dist, &queue)
			inBall := func(x int) bool { return dist[x] >= 0 }

			sim := make([][]bool, np)
			for _, u := range c.Nodes {
				sim[u] = make([]bool, n)
				for x := 0; x < n; x++ {
					sim[u][x] = inBall(x) && p.Pred(u).Match(f.Attr(x))
				}
			}
			for u := 0; u < np; u++ {
				if sim[u] == nil {
					sim[u] = make([]bool, n) // nodes outside c: empty rows
				}
			}
			sub := p // fixpoint only visits c's nodes via the rows seeded above
			naiveDualCompFixpoint(sub, f, sim, inBall, c)

			matched := false
			for _, u := range c.Nodes {
				if sim[u][center] {
					matched = true
					break
				}
			}
			if !matched {
				continue
			}
			// Connected component of the match graph containing center.
			visited := make([]bool, n)
			visited[center] = true
			comp := []int{center}
			for head := 0; head < len(comp); head++ {
				x := comp[head]
				for y := 0; y < n; y++ {
					if visited[y] || !inBall(y) {
						continue
					}
					link := false
					for _, eid := range c.Edges {
						e := p.EdgeAt(eid)
						if hasEdge(f, x, y) && sim[e.From][x] && sim[e.To][y] && colorOK(f, x, y, e.Color) {
							link = true
						}
						if hasEdge(f, y, x) && sim[e.From][y] && sim[e.To][x] && colorOK(f, y, x, e.Color) {
							link = true
						}
					}
					if link {
						visited[y] = true
						comp = append(comp, y)
					}
				}
			}
			perfect := true
			for _, u := range c.Nodes {
				found := false
				for _, x := range comp {
					if sim[u][x] {
						found = true
						break
					}
				}
				if !found {
					perfect = false
					break
				}
			}
			if !perfect {
				continue
			}
			for _, u := range c.Nodes {
				for _, x := range comp {
					if sim[u][x] {
						res[u][x] = true
					}
				}
			}
		}
	}
	rel := make([][]int32, np)
	ok := true
	for u := 0; u < np; u++ {
		for x := 0; x < n; x++ {
			if res[u][x] {
				rel[u] = append(rel[u], int32(x))
			}
		}
		if len(rel[u]) == 0 {
			ok = false
		}
	}
	return rel, ok
}

// naiveDualCompFixpoint is naiveDualFixpoint restricted to one pattern
// Component's nodes and edges.
func naiveDualCompFixpoint(p *pattern.Pattern, f *graph.Frozen, sim [][]bool, inBall func(int) bool, c topo.Component) {
	for changed := true; changed; {
		changed = false
		for _, u := range c.Nodes {
			for x := 0; x < f.N(); x++ {
				if !sim[u][x] || !inBall(x) {
					continue
				}
				dead := false
				for _, eid := range p.Out(u) {
					e := p.EdgeAt(int(eid))
					found := false
					for _, y := range f.Out(x) {
						if inBall(int(y)) && sim[e.To][y] && colorOK(f, x, int(y), e.Color) {
							found = true
							break
						}
					}
					if !found {
						dead = true
						break
					}
				}
				if !dead {
					for _, eid := range p.In(u) {
						e := p.EdgeAt(int(eid))
						found := false
						for _, z := range f.In(x) {
							if inBall(int(z)) && sim[e.From][z] && colorOK(f, int(z), x, e.Color) {
								found = true
								break
							}
						}
						if !found {
							dead = true
							break
						}
					}
				}
				if dead {
					sim[u][x] = false
					changed = true
				}
			}
		}
	}
}

func hasEdge(f *graph.Frozen, u, v int) bool {
	for _, y := range f.Out(u) {
		if int(y) == v {
			return true
		}
	}
	return false
}

// --- helpers -------------------------------------------------------------

func labeledGraph(t *testing.T, labels []string, edges [][2]int) *graph.Graph {
	t.Helper()
	g := graph.New(len(labels))
	for i, l := range labels {
		g.SetAttr(i, graph.Attrs{"label": value.Str(l)})
	}
	for _, e := range edges {
		if !g.AddEdge(e[0], e[1]) {
			t.Fatalf("duplicate edge %v", e)
		}
	}
	return g
}

func labelPattern(t *testing.T, labels []string, edges [][2]int) *pattern.Pattern {
	t.Helper()
	p := pattern.New()
	for _, l := range labels {
		p.AddNode(pattern.Label(l))
	}
	for _, e := range edges {
		p.MustAddEdge(e[0], e[1], 1)
	}
	return p
}

func randomCase(seed int64, nodes, edges, pnodes, pedges int) (*pattern.Pattern, *graph.Frozen) {
	g := generator.Graph(generator.GraphConfig{
		Nodes: nodes, Edges: edges, Attrs: nodes / 6, Model: generator.ER, Seed: seed,
	})
	p := generator.Pattern(generator.PatternConfig{
		Nodes: pnodes, Edges: pedges, K: 1, Seed: seed * 7793,
	}, g)
	return p, g.Freeze()
}

// --- tests ---------------------------------------------------------------

// Dual simulation removes matches that plain simulation keeps: a data
// node with no matched parent violates the parent constraint even though
// plain simulation (child constraints only) accepts it.
func TestDualParentConstraint(t *testing.T) {
	// b0 has no incoming edge from an A node; b1 does.
	g := labeledGraph(t, []string{"A", "B", "B"}, [][2]int{{0, 2}})
	p := labelPattern(t, []string{"A", "B"}, [][2]int{{0, 1}})
	f := g.Freeze()

	sim, ok, err := simulation.RunFrozen(context.Background(), p, f)
	if err != nil || !ok {
		t.Fatalf("plain simulation: ok=%v err=%v", ok, err)
	}
	if len(sim[1]) != 2 {
		t.Fatalf("plain simulation should keep both B nodes, got %v", sim[1])
	}

	dual, ok, err := topo.DualSim(context.Background(), p, f, topo.Options{})
	if err != nil {
		t.Fatalf("DualSim: %v", err)
	}
	if !ok {
		t.Fatalf("DualSim: pattern should match")
	}
	if want := []int32{2}; !reflect.DeepEqual(dual[1], want) {
		t.Errorf("dual sim(B) = %v, want %v (b0 has no matched parent)", dual[1], want)
	}
	if want := []int32{0}; !reflect.DeepEqual(dual[0], want) {
		t.Errorf("dual sim(A) = %v, want %v", dual[0], want)
	}
}

// Strong simulation rejects matches that dual simulation accepts when the
// topology only closes outside the ball: a triangle pattern dual-matches
// a 6-cycle (labels repeat every 3 nodes), but no radius-1 ball around
// any node contains a full triangle witness.
func TestStrongRejectsUnrolledCycle(t *testing.T) {
	g := labeledGraph(t,
		[]string{"A", "B", "C", "A", "B", "C"},
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	p := labelPattern(t, []string{"A", "B", "C"}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	f := g.Freeze()

	dual, ok, err := topo.DualSim(context.Background(), p, f, topo.Options{})
	if err != nil || !ok {
		t.Fatalf("DualSim: ok=%v err=%v (the 6-cycle dual-matches the triangle)", ok, err)
	}
	for u := 0; u < 3; u++ {
		if len(dual[u]) != 2 {
			t.Fatalf("dual sim(%d) = %v, want both same-label nodes", u, dual[u])
		}
	}

	strong, ok, err := topo.StrongSim(context.Background(), p, f, topo.Options{})
	if err != nil {
		t.Fatalf("StrongSim: %v", err)
	}
	if ok {
		t.Errorf("topo.StrongSim accepted the unrolled cycle: %v", strong)
	}
	for u, l := range strong {
		if len(l) != 0 {
			t.Errorf("strong sim(%d) = %v, want empty", u, l)
		}
	}
}

// A genuine triangle is within one ball, so strong simulation accepts it.
func TestStrongAcceptsRealCycle(t *testing.T) {
	g := labeledGraph(t, []string{"A", "B", "C"}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	p := labelPattern(t, []string{"A", "B", "C"}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	strong, ok, err := topo.StrongSim(context.Background(), p, g.Freeze(), topo.Options{})
	if err != nil || !ok {
		t.Fatalf("StrongSim: ok=%v err=%v", ok, err)
	}
	for u := 0; u < 3; u++ {
		if want := []int32{int32(u)}; !reflect.DeepEqual(strong[u], want) {
			t.Errorf("strong sim(%d) = %v, want %v", u, strong[u], want)
		}
	}
}

// topo.DualSim must equal the naive rescan fixpoint on random workloads, for
// both the full semantics and the child-only collapse.
func TestDualSimMatchesNaive(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		p, f := randomCase(seed, 60, 180, 4, 5)
		for _, childOnly := range []bool{false, true} {
			got, gotOK, err := topo.DualSim(context.Background(), p, f, topo.Options{ChildOnly: childOnly})
			if err != nil {
				t.Fatalf("seed %d childOnly=%v: %v", seed, childOnly, err)
			}
			want, wantOK := naiveDual(p, f, childOnly)
			if gotOK != wantOK || !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d childOnly=%v: topo.DualSim diverges from naive\n got %v ok=%v\nwant %v ok=%v",
					seed, childOnly, got, gotOK, want, wantOK)
			}
		}
	}
}

// Child-only dual simulation is plain graph simulation.
func TestDualChildOnlyEqualsSimulation(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		p, f := randomCase(seed, 50, 150, 4, 5)
		got, gotOK, err := topo.DualSim(context.Background(), p, f, topo.Options{ChildOnly: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, wantOK, err := simulation.RunFrozen(context.Background(), p, f)
		if err != nil {
			t.Fatalf("seed %d: simulation: %v", seed, err)
		}
		if gotOK != wantOK || !reflect.DeepEqual(got, normalize(want)) {
			t.Errorf("seed %d: child-only dual != plain simulation", seed)
		}
	}
}

// topo.StrongSim must equal the naive all-centers reference on random
// workloads (which also exercises the dual-prefilter center pruning).
func TestStrongSimMatchesNaive(t *testing.T) {
	for seed := int64(1); seed <= 16; seed++ {
		p, f := randomCase(seed, 40, 110, 4, 5)
		got, gotOK, err := topo.StrongSim(context.Background(), p, f, topo.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, wantOK := naiveStrong(p, f)
		if gotOK != wantOK || !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: topo.StrongSim diverges from naive\n got %v ok=%v\nwant %v ok=%v\npattern:\n%s",
				seed, got, gotOK, want, wantOK, p)
		}
	}
}

// Every worker count must produce bit-identical relations.
func TestWorkerCountsBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		p, f := randomCase(seed, 70, 210, 4, 5)
		dualRef, dualOK, err := topo.DualSim(context.Background(), p, f, topo.Options{Workers: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		strongRef, strongOK, err := topo.StrongSim(context.Background(), p, f, topo.Options{Workers: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, w := range []int{2, 3, 4, 8} {
			d, dok, err := topo.DualSim(context.Background(), p, f, topo.Options{Workers: w})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			if dok != dualOK || !reflect.DeepEqual(d, dualRef) {
				t.Errorf("seed %d: topo.DualSim at %d workers diverges", seed, w)
			}
			s, sok, err := topo.StrongSim(context.Background(), p, f, topo.Options{Workers: w})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			if sok != strongOK || !reflect.DeepEqual(s, strongRef) {
				t.Errorf("seed %d: topo.StrongSim at %d workers diverges", seed, w)
			}
		}
	}
}

// Both semantics reject patterns with bounds != 1 and propagate
// cancellation.
func TestValidationAndCancellation(t *testing.T) {
	g := labeledGraph(t, []string{"A", "B"}, [][2]int{{0, 1}})
	f := g.Freeze()
	p := pattern.New()
	a := p.AddNode(pattern.Label("A"))
	b := p.AddNode(pattern.Label("B"))
	p.MustAddEdge(a, b, 2)
	if _, _, err := topo.DualSim(context.Background(), p, f, topo.Options{}); err == nil {
		t.Errorf("topo.DualSim accepted a bound-2 pattern")
	}
	if _, _, err := topo.StrongSim(context.Background(), p, f, topo.Options{}); err == nil {
		t.Errorf("topo.StrongSim accepted a bound-2 pattern")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pBig, fBig := randomCase(3, 80, 240, 4, 5)
	if _, _, err := topo.DualSim(ctx, pBig, fBig, topo.Options{}); err == nil {
		t.Errorf("topo.DualSim ignored a cancelled context")
	}
	if _, _, err := topo.StrongSim(ctx, pBig, fBig, topo.Options{}); err == nil {
		t.Errorf("topo.StrongSim ignored a cancelled context")
	}
}

// topo.IsDualSim accepts DualSim's output and rejects corrupted relations.
func TestIsDualSim(t *testing.T) {
	p, f := randomCase(5, 50, 150, 4, 5)
	rel, _, err := topo.DualSim(context.Background(), p, f, topo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !topo.IsDualSim(p, f, rel) {
		t.Fatalf("topo.IsDualSim rejects topo.DualSim output")
	}
	// Corrupt: add every node to sim(0); predicates or constraints must
	// break somewhere on a nontrivial workload.
	bad := make([][]int32, len(rel))
	copy(bad, rel)
	all := make([]int32, f.N())
	for i := range all {
		all[i] = int32(i)
	}
	bad[0] = all
	if topo.IsDualSim(p, f, bad) {
		t.Skipf("corrupted relation happens to be a dual simulation on this seed")
	}
}

// normalize maps nil rows to nil for DeepEqual comparisons between
// packages that append vs pre-allocate.
func normalize(rel [][]int32) [][]int32 {
	out := make([][]int32, len(rel))
	for i, l := range rel {
		if len(l) > 0 {
			out[i] = l
		}
	}
	return out
}
