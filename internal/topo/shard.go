package topo

import (
	"sync"
	"sync/atomic"
)

// minShardWork is the smallest number of inner-loop iterations worth a
// task switch, mirroring the parallel matching core's threshold.
const minShardWork = 256

// RunShards feeds task indexes 0..tasks-1 to a pool of workers goroutines
// and hands each invocation its worker id, so tasks can use per-worker
// scratch without locking. run must only write state disjoint per task
// (or per worker). The first error stops the pool; remaining tasks are
// skipped and the error returned.
func RunShards(workers, tasks int, run func(worker, task int) error) error {
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		for t := 0; t < tasks; t++ {
			if err := run(0, t); err != nil {
				return err
			}
		}
		return nil
	}
	ch := make(chan int)
	var stop atomic.Bool
	var once sync.Once
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for t := range ch {
				if stop.Load() {
					continue
				}
				if err := run(worker, t); err != nil {
					once.Do(func() {
						firstErr = err
						stop.Store(true)
					})
				}
			}
		}(w)
	}
	for t := 0; t < tasks; t++ {
		if stop.Load() {
			break
		}
		ch <- t
	}
	close(ch)
	wg.Wait()
	return firstErr
}

// shardSpans splits [0, n) into spans of roughly equal size targeting a
// few tasks per worker, but never below minShardWork iterations each
// (workUnit is the inner-loop cost of one index).
func shardSpans(n, workers, workUnit int) [][2]int {
	if n == 0 {
		return nil
	}
	if workUnit < 1 {
		workUnit = 1
	}
	size := (n + 4*workers - 1) / (4 * workers)
	if size*workUnit < minShardWork {
		size = (minShardWork + workUnit - 1) / workUnit
	}
	var spans [][2]int
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		spans = append(spans, [2]int{lo, hi})
	}
	return spans
}
