package topo

import (
	"context"
	"fmt"

	"gpm/internal/cancel"
	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// cancelPollInterval matches the matching core's amortised cancellation
// polling rate.
const cancelPollInterval = 4096

// removal is one (pattern node, data node) pair queued for deletion.
type removal struct {
	u int32
	x int32
}

// DualSim computes the maximum dual simulation of p in f (Ma et al.,
// §3.1): the greatest relation S such that for every (u, x) ∈ S, every
// pattern edge (u, u′) has a data edge (x, y) with (u′, y) ∈ S — the
// child constraint of plain simulation — and every pattern edge (u″, u)
// has a data edge (z, x) with (u″, z) ∈ S — the parent constraint dual
// simulation adds. The returned relation lists, per pattern node, the
// sorted data nodes that dual-simulate it; ok reports whether every
// pattern node kept at least one match. Patterns must have all edge
// bounds equal to 1.
//
// The fixpoint is the standard counter/worklist scheme run backward from
// both edge directions: per pattern edge, fwd[x] counts x's surviving
// out-witnesses and back[y] counts y's surviving in-witnesses; a pair is
// removed exactly when one of its counters reaches zero, and each
// removal decrements the counters of its graph neighbors. Candidate
// filtering and counter seeding shard across opts.Workers; the cascade
// itself is sequential, and the greatest fixpoint is unique, so every
// worker count returns bit-identical relations.
func DualSim(ctx context.Context, p *pattern.Pattern, f *graph.Frozen, opts Options) (rel [][]int32, ok bool, err error) {
	if err := checkPattern(p); err != nil {
		return nil, false, err
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	sim, err := dualFixpoint(ctx, p, f, opts)
	if err != nil {
		return nil, false, err
	}
	rel, ok = collect(sim)
	return rel, ok, nil
}

// dualFixpoint runs the dual-simulation fixpoint and returns the final
// membership bitmaps.
func dualFixpoint(ctx context.Context, p *pattern.Pattern, f *graph.Frozen, opts Options) ([][]bool, error) {
	np, n := p.N(), f.N()
	workers := opts.workers()
	pollers := make([]cancel.Poller, workers)
	for w := range pollers {
		pollers[w] = cancel.Every(ctx, cancelPollInterval)
	}

	// Phase 1: candidate filtering. With a seed, only the seeded nodes are
	// probed (sequentially — seeds are small by construction); otherwise
	// the full scan shards over (pattern node, data-node span), writes
	// disjoint because each (u, x) belongs to one task.
	sim := make([][]bool, np)
	for u := 0; u < np; u++ {
		sim[u] = make([]bool, n)
	}
	if opts.Seed != nil {
		if len(opts.Seed) != np {
			return nil, fmt.Errorf("topo: seed has %d rows for a %d-node pattern", len(opts.Seed), np)
		}
		poll := cancel.Every(ctx, cancelPollInterval)
		for u := 0; u < np; u++ {
			pred := p.Pred(u)
			row := sim[u]
			for _, x := range opts.Seed[u] {
				if err := poll.Err(); err != nil {
					return nil, err
				}
				if x < 0 || int(x) >= n || row[x] {
					continue
				}
				row[x] = pred.Match(f.Attr(int(x)))
			}
		}
	} else {
		type candTask struct {
			u      int
			lo, hi int
		}
		var candTasks []candTask
		for u := 0; u < np; u++ {
			for _, s := range shardSpans(n, workers, 1) {
				candTasks = append(candTasks, candTask{u, s[0], s[1]})
			}
		}
		err := RunShards(workers, len(candTasks), func(w, t int) error {
			task := candTasks[t]
			pred := p.Pred(task.u)
			row := sim[task.u]
			for x := task.lo; x < task.hi; x++ {
				if err := pollers[w].Err(); err != nil {
					return err
				}
				row[x] = pred.Match(f.Attr(x))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: counter seeding, sharded over (pattern edge, data-node
	// span). fwd[eid][x] counts out-witnesses of candidate x of the
	// edge's source; back[eid][y] counts in-witnesses of candidate y of
	// its target (skipped in ChildOnly mode, which collapses dual
	// simulation to plain simulation). Rows are per edge and spans
	// disjoint, so writes never collide; sim is read-only in this phase.
	ne := p.EdgeCount()
	fwd := make([][]int32, ne)
	back := make([][]int32, ne)
	type cntTask struct {
		eid      int
		lo, hi   int
		backward bool
	}
	var cntTasks []cntTask
	degUnit := 1
	if n > 0 {
		degUnit += f.M() / n
	}
	for eid := 0; eid < ne; eid++ {
		fwd[eid] = make([]int32, n)
		for _, s := range shardSpans(n, workers, degUnit) {
			cntTasks = append(cntTasks, cntTask{eid, s[0], s[1], false})
		}
		if !opts.ChildOnly {
			back[eid] = make([]int32, n)
			for _, s := range shardSpans(n, workers, degUnit) {
				cntTasks = append(cntTasks, cntTask{eid, s[0], s[1], true})
			}
		}
	}
	seeds := make([][]removal, len(cntTasks))
	err := RunShards(workers, len(cntTasks), func(w, t int) error {
		task := cntTasks[t]
		e := p.EdgeAt(task.eid)
		var local []removal
		if task.backward {
			c := back[task.eid]
			for y := task.lo; y < task.hi; y++ {
				if err := pollers[w].Err(); err != nil {
					return err
				}
				if !sim[e.To][y] {
					continue
				}
				for _, z := range f.In(y) {
					if sim[e.From][z] && colorOK(f, int(z), y, e.Color) {
						c[y]++
					}
				}
				if c[y] == 0 {
					local = append(local, removal{int32(e.To), int32(y)})
				}
			}
		} else {
			c := fwd[task.eid]
			for x := task.lo; x < task.hi; x++ {
				if err := pollers[w].Err(); err != nil {
					return err
				}
				if !sim[e.From][x] {
					continue
				}
				for _, y := range f.Out(x) {
					if sim[e.To][y] && colorOK(f, x, int(y), e.Color) {
						c[x]++
					}
				}
				if c[x] == 0 {
					local = append(local, removal{int32(e.From), int32(x)})
				}
			}
		}
		seeds[t] = local
		return nil
	})
	if err != nil {
		return nil, err
	}
	var work []removal
	for _, s := range seeds {
		work = append(work, s...)
	}

	// Refinement cascade: removing (u, x) can zero the fwd counters of
	// x's in-neighbors (for pattern edges entering u) and the back
	// counters of x's out-neighbors (for pattern edges leaving u).
	poll := cancel.Every(ctx, cancelPollInterval)
	for len(work) > 0 {
		rm := work[len(work)-1]
		work = work[:len(work)-1]
		u, x := int(rm.u), int(rm.x)
		if !sim[u][x] {
			continue
		}
		sim[u][x] = false
		for _, eid := range p.In(u) {
			e := p.EdgeAt(int(eid))
			c := fwd[eid]
			for _, z := range f.In(x) {
				if err := poll.Err(); err != nil {
					return nil, err
				}
				if !sim[e.From][z] || !colorOK(f, int(z), x, e.Color) {
					continue
				}
				c[z]--
				if c[z] == 0 {
					work = append(work, removal{int32(e.From), z})
				}
			}
		}
		if opts.ChildOnly {
			continue
		}
		for _, eid := range p.Out(u) {
			e := p.EdgeAt(int(eid))
			c := back[eid]
			for _, y := range f.Out(x) {
				if err := poll.Err(); err != nil {
					return nil, err
				}
				if !sim[e.To][y] || !colorOK(f, x, int(y), e.Color) {
					continue
				}
				c[y]--
				if c[y] == 0 {
					work = append(work, removal{int32(e.To), y})
				}
			}
		}
	}
	return sim, nil
}

// IsDualSim verifies that rel is a dual simulation of p in f: every pair
// satisfies its predicate, every pattern edge leaving its pattern node
// has a successor witness in rel, and every pattern edge entering it has
// a predecessor witness. It does not check maximality; the fuzz target
// and tests use it as an independent oracle for DualSim's output.
func IsDualSim(p *pattern.Pattern, f *graph.Frozen, rel [][]int32) bool {
	if len(rel) != p.N() {
		return false
	}
	n := f.N()
	in := make([][]bool, p.N())
	for u := range in {
		in[u] = make([]bool, n)
		for _, x := range rel[u] {
			if int(x) >= n || x < 0 {
				return false
			}
			in[u][x] = true
		}
	}
	for u := 0; u < p.N(); u++ {
		for _, x := range rel[u] {
			if !p.Pred(u).Match(f.Attr(int(x))) {
				return false
			}
			for _, eid := range p.Out(u) {
				e := p.EdgeAt(int(eid))
				found := false
				for _, y := range f.Out(int(x)) {
					if in[e.To][y] && colorOK(f, int(x), int(y), e.Color) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			for _, eid := range p.In(u) {
				e := p.EdgeAt(int(eid))
				found := false
				for _, z := range f.In(int(x)) {
					if in[e.From][z] && colorOK(f, int(z), int(x), e.Color) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
	}
	return true
}
