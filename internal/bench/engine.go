package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gpm"
)

// EngineThroughput measures concurrent query throughput of a shared
// gpm.Engine over the YouTube stand-in: the serving workload the engine
// exists for. One engine binds the graph, pays the oracle build once,
// and worker goroutines issue Match queries from a shared pattern pool.
// Rows sweep the worker count up to GOMAXPROCS.
func EngineThroughput(cfg Config) *Table {
	cfg = cfg.withDefaults()
	g := youtube(cfg)
	ps := patternBatch(cfg, g, cfg.Patterns*4, 4, 4, 3)
	eng := gpm.NewEngine(g, gpm.WithAutoOracle())

	// Pay the lazy oracle build before timing queries.
	warm, err := eng.Match(context.Background(), ps[0])
	if err != nil {
		panic(err)
	}

	t := &Table{
		ID: "engine",
		Title: fmt.Sprintf("Engine throughput on YouTube stand-in (|V|=%d, |E|=%d, oracle %s, build %v)",
			g.N(), g.M(), eng.OracleKind(), warm.Stats.OracleBuild.Round(time.Millisecond)),
		Columns: []string{"workers", "queries", "elapsed (ms)", "queries/s", "avg oracle probes"},
	}
	for workers := 1; workers <= runtime.GOMAXPROCS(0); workers *= 2 {
		queries := workers * len(ps)
		var probes atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < len(ps); i++ {
					res, err := eng.Match(context.Background(), ps[(w+i)%len(ps)])
					if err != nil {
						panic(err)
					}
					probes.Add(res.Stats.OracleQueries)
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		qps := float64(queries) / elapsed.Seconds()
		t.AddRow(fmt.Sprintf("%d", workers), fmt.Sprintf("%d", queries),
			ms(elapsed), f2(qps), fmt.Sprintf("%d", probes.Load()/int64(queries)))
		cfg.logf("engine: %d workers done", workers)
	}
	t.Note("one shared engine: the oracle is built once and every worker reuses it concurrently")
	return t
}
