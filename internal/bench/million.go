package bench

import (
	"context"
	"fmt"
	"time"

	"gpm"
	"gpm/internal/core"
	"gpm/internal/difftest"
	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/pll"
)

// Million (id "million") is the ROADMAP's million-node north star: a
// 1M-node / ~10M-edge Barabási–Albert graph (scaled by -scale, floor
// 2K nodes) whose distance matrix would need ~4 TB, matched end to end
// on the PLL labelling instead. Every Match relation is checksummed
// against a BFS-oracle reference — the gate that PLL stays exact at
// scale, not merely fast — and classic simulation runs on the same graph
// for the Simulate half of the workload.
func Million(cfg Config) *Table {
	cfg = cfg.withDefaults()
	n := int(1_000_000 * cfg.Scale)
	if n < 2_000 {
		n = 2_000
	}
	const mOut = 10
	var g *graph.Graph
	genT := timed(func() {
		g = generator.Graph(generator.GraphConfig{
			Nodes: n, Attrs: n / 10, Model: generator.BarabasiAlbert, MOut: mOut, Seed: cfg.Seed,
		})
	})
	cfg.logf("million: graph generated (%d nodes, %d edges)", g.N(), g.M())
	f := g.Freeze()
	opts := pll.AutoOptions(f)
	opts.Workers = cfg.Workers
	var idx *pll.Index
	var buildT time.Duration
	heap := heapDelta(func() {
		buildT = timed(func() {
			var err error
			idx, err = pll.Build(context.Background(), f, opts)
			if err != nil {
				panic(err) // n is far below pll.MaxNodes
			}
		})
	})
	cfg.logf("million: pll built in %v", buildT)
	po := core.NewPLLOracleFrozen(f, idx)

	t := &Table{
		ID: "million",
		Title: fmt.Sprintf("Million-node run: BA graph |V|=%d |E|=%d on the PLL oracle (scale %.2f)",
			g.N(), g.M(), cfg.Scale),
		Columns: []string{"metric", "value"},
	}
	t.AddRow("generate (ms)", ms(genT))
	t.AddRow("pll build (ms)", ms(buildT))
	t.AddRow("pll build workers", fmt.Sprintf("%d", opts.Workers))
	t.AddRow("pll bit-parallel roots", fmt.Sprintf("%d", idx.BitParallelRoots()))
	t.AddRow("pll arena mode", fmt.Sprintf("%v", opts.Arena))
	t.AddRow("pll label entries", fmt.Sprintf("%d", idx.LabelEntries()))
	t.AddRow("pll label (MB)", mb(idx.MemoryBytes()))
	t.AddRow("pll entries/node", f2(float64(idx.LabelEntries())/float64(g.N())))
	t.AddRow("pll build heap delta (MB)", mb(heap))
	t.AddRow("matrix equivalent (MB, est)", mb(matrixBytesFor(g.N())))

	ps := patternBatch(cfg, g, cfg.Patterns, 4, 4, 3)
	var pllT, bfsT, simT time.Duration
	equal := true
	var okCount int
	for i, p := range ps {
		var res *core.Result
		var err error
		pllT += timed(func() { res, err = core.MatchWithOracle(p, g, po) })
		if err != nil {
			t.Note("pattern %d: %v", i, err)
			continue
		}
		bo := core.NewBFSOracleFrozen(f)
		var ref *core.Result
		bfsT += timed(func() { ref, err = core.MatchWithOracle(p, g, bo) })
		if err != nil {
			t.Note("pattern %d (bfs): %v", i, err)
			continue
		}
		if difftest.Checksum(res.Relation()) != difftest.Checksum(ref.Relation()) {
			equal = false
			t.Note("pattern %d: PLL relation diverges from the BFS reference", i)
		}
		if res.OK() {
			okCount++
		}
		simT += timed(func() { _, _, _ = gpm.Simulate(p, g) })
		cfg.logf("million: pattern %d done", i)
	}
	t.AddRow("patterns P(4,4,3)", fmt.Sprintf("%d (%d matched)", len(ps), okCount))
	t.AddRow("Match avg (ms, PLL)", msAvg(pllT, len(ps)))
	t.AddRow("Match avg (ms, BFS reference)", msAvg(bfsT, len(ps)))
	t.AddRow("Simulate avg (ms)", msAvg(simT, len(ps)))
	t.AddRow("PLL == BFS checksums", fmt.Sprintf("%v", equal))
	t.Note("the BFS column is the exactness reference, not a contender: it keeps no index at all")
	return t
}
