package bench

import (
	"context"
	"fmt"
	"time"

	"gpm"
	"gpm/internal/difftest"
	"gpm/internal/generator"
)

// incSemantics enumerates the incrementally maintained edge-to-edge
// semantics the incsim experiment measures.
var incSemantics = []string{"sim", "dual", "strong"}

// IncSimSpeedup measures incremental maintenance of the sim/dual/strong
// relations against full recomputation, per update batch size. For each
// semantics one engine watcher absorbs a stream of update batches
// (inserts and deletes in equal parts) while a from-scratch query of the
// same semantics re-runs after every batch; the table reports the mean
// per-batch times and their ratio. The checksum column is the relation
// checksum after the final batch, asserted equal between the watcher and
// the recompute — the bench proves the same incremental ≡ recompute
// property the difftest harness pins, at benchmark scale.
func IncSimSpeedup(cfg Config) *Table {
	cfg = cfg.withDefaults()
	n := cfg.SynthNodes
	if n < 300 {
		n = 300
	}
	t := &Table{
		ID:      "incsim",
		Title:   fmt.Sprintf("Incremental vs recompute, dual/strong watchers on synthetic (|V|=%d)", n),
		Columns: []string{"semantics", "batch size", "inc (ms/batch)", "recompute (ms/batch)", "speedup", "relation checksum"},
	}
	ctx := context.Background()
	const rounds = 6
	for _, sem := range incSemantics {
		for _, batchSize := range []int{1, 8, 64} {
			// A fresh graph per (semantics, batch size) cell so every
			// cell replays the same deterministic update stream.
			g := generator.Graph(generator.GraphConfig{
				Nodes: n, Edges: 4 * n, Attrs: 8, Model: generator.PowerLaw, Seed: cfg.Seed,
			})
			p := generator.Pattern(generator.PatternConfig{
				Nodes: 4, Edges: 5, K: 1, IsoBias: true, Seed: cfg.Seed * 31,
			}, g)
			eng := gpm.NewEngine(g)
			var w *gpm.Watcher
			var err error
			switch sem {
			case "sim":
				w, err = eng.WatchSim(p)
			case "dual":
				w, err = eng.WatchDual(p)
			case "strong":
				w, err = eng.WatchStrong(p)
			}
			if err != nil {
				panic(err)
			}
			var incT, recompT time.Duration
			var incSum, recompSum uint64
			for round := 0; round < rounds; round++ {
				ups := generator.Updates(generator.UpdatesConfig{
					Insertions: (batchSize + 1) / 2,
					Deletions:  batchSize / 2,
					Seed:       cfg.Seed*1000 + int64(round),
				}, g)
				start := time.Now()
				if _, err := eng.Update(ups...); err != nil {
					panic(err)
				}
				incT += time.Since(start)

				start = time.Now()
				var rel [][]int32
				switch sem {
				case "sim":
					res, err := gpm.NewEngine(g).Simulate(ctx, p)
					if err != nil {
						panic(err)
					}
					rel = res.Relation
				case "dual":
					res, err := gpm.NewEngine(g).DualSimulate(ctx, p)
					if err != nil {
						panic(err)
					}
					rel = res.Relation()
				case "strong":
					res, err := gpm.NewEngine(g).StrongSimulate(ctx, p)
					if err != nil {
						panic(err)
					}
					rel = res.Relation()
				}
				recompT += time.Since(start)
				incSum, recompSum = difftest.Checksum(w.Relation()), difftest.Checksum(rel)
				if incSum != recompSum {
					panic(fmt.Sprintf("bench: incsim %s diverged at batch size %d round %d: %x vs %x",
						sem, batchSize, round, incSum, recompSum))
				}
			}
			w.Close()
			t.AddRow(sem, fmt.Sprintf("%d", batchSize), msAvg(incT, rounds), msAvg(recompT, rounds),
				f2(recompT.Seconds()/incT.Seconds()), fmt.Sprintf("%016x", incSum))
			cfg.logf("incsim: %s at batch size %d done", sem, batchSize)
		}
	}
	t.Note("equal checksums between watcher and recompute are asserted every round; the column shows the final relation's")
	t.Note("speedup = recompute / incremental per batch; small batches amortise best — the affected area stays local")
	t.Note("the strong watcher pays one O(|V|+|E|) freeze per batch, then re-evaluates only balls near touched nodes")
	return t
}
