package bench

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"gpm"
	"gpm/client"
	"gpm/internal/difftest"
	"gpm/internal/generator"
	"gpm/internal/server"
	"gpm/internal/wal"
)

// ServeThroughput measures gpmd end-to-end: one daemon binds the
// YouTube stand-in, then 1/2/4/8 concurrent HTTP clients replay the
// same Match query stream through the typed client. The per-query
// checksum XOR (order-independent) is asserted identical across rows —
// concurrency cannot change a single response byte that matters — and
// the column reports it. The delta against the in-process engine
// experiment (exp `engine`) is the HTTP/JSON wire tax.
func ServeThroughput(cfg Config) *Table {
	cfg = cfg.withDefaults()
	g := youtube(cfg)
	ps := patternBatch(cfg, g, cfg.Patterns*4, 4, 4, 3)

	// WithWorkers(1): each query runs its fixpoint sequentially, so the
	// table isolates request-level concurrency — the serving axis — from
	// the per-query sharding exp `parallel` already measures.
	srv := server.New(server.Config{DefaultTimeout: 5 * time.Minute})
	if err := srv.Bind("youtube", g, gpm.WithWorkers(1), gpm.WithAutoOracle()); err != nil {
		panic(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	ctx := context.Background()
	c := client.New("http://" + ln.Addr().String())
	// Pay the lazy oracle build before timing.
	warm, err := c.Match(ctx, "youtube", ps[0])
	if err != nil {
		panic(err)
	}

	t := &Table{
		ID: "serve",
		Title: fmt.Sprintf("gpmd serve throughput on YouTube stand-in (|V|=%d, |E|=%d, oracle %s, build %v)",
			g.N(), g.M(), warm.Stats.Oracle, time.Duration(warm.Stats.OracleBuildNS).Round(time.Millisecond)),
		Columns: []string{"clients", "queries", "elapsed (ms)", "requests/s", "speedup", "response checksum"},
	}
	var baseline time.Duration
	var wantSum uint64
	for _, clients := range []int{1, 2, 4, 8} {
		queries := clients * len(ps)
		sums := make([]uint64, clients)
		errs := make(chan error, clients)
		start := time.Now()
		for w := 0; w < clients; w++ {
			go func(w int) {
				var sum uint64
				for _, p := range ps {
					rel, err := c.Match(ctx, "youtube", p)
					if err != nil {
						errs <- err
						return
					}
					// The same FNV-1a fold the in-process experiments use,
					// XOR-combined so the aggregate is order-independent.
					sum ^= difftest.Checksum(rel.Matches)
				}
				sums[w] = sum
				errs <- nil
			}(w)
		}
		for w := 0; w < clients; w++ {
			if err := <-errs; err != nil {
				panic(fmt.Sprintf("bench: serve-throughput client failed: %v", err))
			}
		}
		elapsed := time.Since(start)
		for w := 1; w < clients; w++ {
			if sums[w] != sums[0] {
				panic(fmt.Sprintf("bench: serve-throughput checksum diverged between clients at concurrency %d", clients))
			}
		}
		if clients == 1 {
			baseline = elapsed
			wantSum = sums[0]
		} else if sums[0] != wantSum {
			panic(fmt.Sprintf("bench: serve-throughput checksum diverged at %d clients: %x vs %x", clients, sums[0], wantSum))
		}
		qps := float64(queries) / elapsed.Seconds()
		baselineQPS := float64(len(ps)) / baseline.Seconds()
		t.AddRow(fmt.Sprintf("%d", clients), fmt.Sprintf("%d", queries), ms(elapsed),
			f2(qps), f2(qps/baselineQPS), fmt.Sprintf("%016x", sums[0]))
		cfg.logf("serve: %d clients done", clients)
	}
	t.Note("identical checksums across rows: concurrent serving is response-equivalent to one client")
	t.Note("speedup is throughput relative to the single-client row; compare requests/s with exp `engine` for the HTTP/JSON wire tax")
	return t
}

// recoverySemantics are the four incremental maintainers every recovery
// row restores and verifies.
var recoverySemantics = []string{"match", "sim", "dual", "strong"}

// ServeRecovery measures the durability path: a WAL-backed gpmd with all
// four watch semantics open absorbs an update stream, is killed without
// a checkpoint, and reboots from the directory. The column that matters
// is recovery time — wal.Open (scan + torn-tail check) plus Bind
// (snapshot load, session re-open, batch replay) — as the log length and
// snapshot cadence vary. Every row asserts the recovered watchers'
// XOR-combined relation checksum equals the pre-crash value, so a row
// that prints is also a row that proved crash≡no-crash.
func ServeRecovery(cfg Config) *Table {
	cfg = cfg.withDefaults()
	base := generator.Graph(generator.GraphConfig{
		Nodes: 2000, Edges: 6000, Attrs: 50, Model: generator.ER, Seed: cfg.Seed,
	})
	// All-bounds-one pattern: valid for every watch semantics.
	p := generator.Pattern(generator.PatternConfig{
		Nodes: 4, Edges: 4, K: 1, C: 0, PredAttrs: 1, Seed: cfg.Seed + 1,
	}, base)

	t := &Table{
		ID: "serve-recovery",
		Title: fmt.Sprintf("gpmd crash recovery from WAL (|V|=%d, |E|=%d, 4 watch sessions, 16 ops/batch)",
			base.N(), base.M()),
		Columns: []string{"batches logged", "snapshot every", "batches replayed", "recovery (ms)", "relation checksum"},
	}
	for _, row := range []struct{ batches, snapEvery int }{
		{8, 0}, {32, 0}, {128, 0}, {128, 24},
	} {
		replayed, d, sum := recoveryRow(cfg, base, p, row.batches, row.snapEvery)
		every := "never"
		if row.snapEvery > 0 {
			every = fmt.Sprintf("%d", row.snapEvery)
		}
		t.AddRow(fmt.Sprintf("%d", row.batches), every, fmt.Sprintf("%d", replayed),
			ms(d), fmt.Sprintf("%016x", sum))
		cfg.logf("serve-recovery: %d batches, snapshot-every %d done", row.batches, row.snapEvery)
	}
	t.Note("recovery = wal.Open + Bind: snapshot load, watch re-open under original ids, batch replay")
	t.Note("each row's recovered checksum was asserted equal to the pre-crash watchers' — crash and no-crash are response-equivalent")
	return t
}

// recoveryRow runs one crash/reboot cycle and returns the number of
// batches replayed, the wall-clock recovery time, and the (verified)
// XOR-combined relation checksum across the four semantics.
func recoveryRow(cfg Config, base *gpm.Graph, p *gpm.Pattern, batches, snapEvery int) (int, time.Duration, uint64) {
	dir, err := os.MkdirTemp("", "gpmbench-wal")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	w, rec, err := wal.Open(dir, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		panic(err)
	}
	srv := server.New(server.Config{WAL: w, Recovery: rec, SnapshotEvery: snapEvery})
	if err := srv.Bind("g", base.Clone()); err != nil {
		panic(err)
	}
	c, stop := serveOverHTTP(srv)

	ctx := context.Background()
	ids := map[string]int64{}
	for _, sem := range recoverySemantics {
		st, err := c.Watch(ctx, "g", p, sem)
		if err != nil {
			panic(fmt.Sprintf("bench: serve-recovery watch %s: %v", sem, err))
		}
		ids[sem] = st.ID
	}
	// live mirrors the served graph so every generated batch is valid.
	live := base.Clone()
	mirror := gpm.NewEngine(live)
	for round := 0; round < batches; round++ {
		ups := gpm.GenerateUpdates(gpm.UpdateGenConfig{
			Insertions: 8, Deletions: 8, Seed: cfg.Seed + int64(round),
		}, live)
		if _, _, err := c.Update(ctx, "g", ups); err != nil {
			panic(fmt.Sprintf("bench: serve-recovery update round %d: %v", round, err))
		}
		if _, err := mirror.Update(ups...); err != nil {
			panic(fmt.Sprintf("bench: serve-recovery mirror round %d: %v", round, err))
		}
	}
	before := watchChecksum(ctx, c, ids)

	// Crash: the listener dies and the log handle closes (a real crash
	// loses it anyway); no checkpoint, no orderly close.
	stop()
	w.Close()
	srv.Close()

	var w2 *wal.WAL
	var rec2 *wal.Recovery
	var srv2 *server.Server
	d := timed(func() {
		var err error
		w2, rec2, err = wal.Open(dir, wal.Options{Sync: wal.SyncNone})
		if err != nil {
			panic(err)
		}
		srv2 = server.New(server.Config{WAL: w2, Recovery: rec2, SnapshotEvery: snapEvery})
		if err := srv2.Bind("g", base.Clone()); err != nil {
			panic(err)
		}
	})
	c2, stop2 := serveOverHTTP(srv2)
	defer func() {
		stop2()
		srv2.Close()
		w2.Close()
	}()
	after := watchChecksum(ctx, c2, ids)
	if after != before {
		panic(fmt.Sprintf("bench: serve-recovery checksum diverged after replay of %d batches (snapshot-every %d): %016x vs %016x",
			batches, snapEvery, after, before))
	}
	return rec2.Batches, d, after
}

// serveOverHTTP exposes srv on an ephemeral port and returns a typed
// client plus a shutdown func.
func serveOverHTTP(srv *server.Server) (*client.Client, func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	return client.New("http://" + ln.Addr().String()), func() { httpSrv.Close() }
}

// watchChecksum folds every session's relation into one checksum,
// failing loudly if any id is gone. The fold is an FNV-style chain in
// fixed semantics order — NOT a plain XOR, which would cancel to zero
// whenever the four semantics agree (they often do on bound-1 patterns).
func watchChecksum(ctx context.Context, c *client.Client, ids map[string]int64) uint64 {
	sum := uint64(14695981039346656037)
	for _, sem := range recoverySemantics {
		st, err := c.WatchSnapshot(ctx, ids[sem])
		if err != nil {
			panic(fmt.Sprintf("bench: serve-recovery session %s (id %d) lost: %v", sem, ids[sem], err))
		}
		if st.Semantics != sem {
			panic(fmt.Sprintf("bench: serve-recovery id %d came back as %q, want %q", ids[sem], st.Semantics, sem))
		}
		sum = (sum ^ difftest.Checksum(st.Matches)) * 1099511628211
	}
	return sum
}
