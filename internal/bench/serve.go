package bench

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"gpm"
	"gpm/client"
	"gpm/internal/difftest"
	"gpm/internal/server"
)

// ServeThroughput measures gpmd end-to-end: one daemon binds the
// YouTube stand-in, then 1/2/4/8 concurrent HTTP clients replay the
// same Match query stream through the typed client. The per-query
// checksum XOR (order-independent) is asserted identical across rows —
// concurrency cannot change a single response byte that matters — and
// the column reports it. The delta against the in-process engine
// experiment (exp `engine`) is the HTTP/JSON wire tax.
func ServeThroughput(cfg Config) *Table {
	cfg = cfg.withDefaults()
	g := youtube(cfg)
	ps := patternBatch(cfg, g, cfg.Patterns*4, 4, 4, 3)

	// WithWorkers(1): each query runs its fixpoint sequentially, so the
	// table isolates request-level concurrency — the serving axis — from
	// the per-query sharding exp `parallel` already measures.
	srv := server.New(server.Config{DefaultTimeout: 5 * time.Minute})
	if err := srv.Bind("youtube", g, gpm.WithWorkers(1), gpm.WithAutoOracle()); err != nil {
		panic(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	ctx := context.Background()
	c := client.New("http://" + ln.Addr().String())
	// Pay the lazy oracle build before timing.
	warm, err := c.Match(ctx, "youtube", ps[0])
	if err != nil {
		panic(err)
	}

	t := &Table{
		ID: "serve",
		Title: fmt.Sprintf("gpmd serve throughput on YouTube stand-in (|V|=%d, |E|=%d, oracle %s, build %v)",
			g.N(), g.M(), warm.Stats.Oracle, time.Duration(warm.Stats.OracleBuildNS).Round(time.Millisecond)),
		Columns: []string{"clients", "queries", "elapsed (ms)", "requests/s", "speedup", "response checksum"},
	}
	var baseline time.Duration
	var wantSum uint64
	for _, clients := range []int{1, 2, 4, 8} {
		queries := clients * len(ps)
		sums := make([]uint64, clients)
		errs := make(chan error, clients)
		start := time.Now()
		for w := 0; w < clients; w++ {
			go func(w int) {
				var sum uint64
				for _, p := range ps {
					rel, err := c.Match(ctx, "youtube", p)
					if err != nil {
						errs <- err
						return
					}
					// The same FNV-1a fold the in-process experiments use,
					// XOR-combined so the aggregate is order-independent.
					sum ^= difftest.Checksum(rel.Matches)
				}
				sums[w] = sum
				errs <- nil
			}(w)
		}
		for w := 0; w < clients; w++ {
			if err := <-errs; err != nil {
				panic(fmt.Sprintf("bench: serve-throughput client failed: %v", err))
			}
		}
		elapsed := time.Since(start)
		for w := 1; w < clients; w++ {
			if sums[w] != sums[0] {
				panic(fmt.Sprintf("bench: serve-throughput checksum diverged between clients at concurrency %d", clients))
			}
		}
		if clients == 1 {
			baseline = elapsed
			wantSum = sums[0]
		} else if sums[0] != wantSum {
			panic(fmt.Sprintf("bench: serve-throughput checksum diverged at %d clients: %x vs %x", clients, sums[0], wantSum))
		}
		qps := float64(queries) / elapsed.Seconds()
		baselineQPS := float64(len(ps)) / baseline.Seconds()
		t.AddRow(fmt.Sprintf("%d", clients), fmt.Sprintf("%d", queries), ms(elapsed),
			f2(qps), f2(qps/baselineQPS), fmt.Sprintf("%016x", sums[0]))
		cfg.logf("serve: %d clients done", clients)
	}
	t.Note("identical checksums across rows: concurrent serving is response-equivalent to one client")
	t.Note("speedup is throughput relative to the single-client row; compare requests/s with exp `engine` for the HTTP/JSON wire tax")
	return t
}
