package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/bits"
	"net/http/httptest"
	"sort"
	"time"

	"gpm"
	"gpm/client"
	"gpm/internal/difftest"
	"gpm/internal/generator"
	"gpm/internal/gio"
	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/server"
)

// cacheSemantics are the four relation semantics the cache experiment
// replays; strong has no containment path (ball extraction is not a
// plain fixpoint), so its containment cell is "-".
var cacheSemantics = []string{"match", "sim", "dual", "strong"}

var cachePaths = map[string]string{
	"match": "/match", "sim": "/simulate", "dual": "/dual", "strong": "/strong",
}

// hitReps is how many times each warm query is replayed; the hit p50 is
// taken across all replays so scheduler noise on a microsecond-scale
// path does not dominate a single sample.
const hitReps = 3

// CacheSpeedup measures gpmd's containment-aware result cache on a
// repeated workload: every query runs cold once, then again as an exact
// canonical-digest hit, and (match/sim/dual) once more on a second
// binding whose cache holds only a predicate-stripped superpattern, so
// the answer is derived by seeding the fixpoint from the containing
// pattern's cached relation. Requests go straight through the handler
// (no TCP) so the hit row is the cache path itself, not socket noise.
// Every response is asserted byte-identical to the cold one modulo the
// stats block and the binding name, and each row's checksum column is
// the rotate-XOR fold of the cold per-query checksums (rotation keeps
// identical per-pattern values from cancelling), asserted identical for
// the hit and containment replays.
func CacheSpeedup(cfg Config) *Table {
	cfg = cfg.withDefaults()
	// The hit path pays a fixed ~0.1ms of request overhead (parse,
	// canonicalise, encode), so the cold fixpoint must be well into the
	// milliseconds for the ratio to mean anything: run this experiment on
	// a 4x-scale stand-in (still bounded by the paper-exact size).
	big := cfg
	if big.Scale*4 <= 1 {
		big.Scale *= 4
	} else {
		big.Scale = 1
	}
	g := youtube(big)
	n := cfg.Patterns * 2
	strict := uniquePatternBatch(cfg, g, n) // k=1: valid under all four semantics
	loose := make([]*pattern.Pattern, n)
	for i, p := range strict {
		loose[i] = loosen(p)
	}

	srv := server.New(server.Config{DefaultTimeout: 5 * time.Minute, CacheBytes: 256 << 20})
	// Two bindings of the same graph share the server's cache but not its
	// key space (the binding name is part of the key): "warm" measures
	// cold-then-hit, "derive" is pre-seeded with the loose patterns so
	// every strict query there takes the containment path.
	if err := srv.Bind("warm", g, gpm.WithWorkers(1)); err != nil {
		panic(err)
	}
	if err := srv.Bind("derive", g, gpm.WithWorkers(1)); err != nil {
		panic(err)
	}
	defer srv.Close()

	texts := make([]string, n)
	for i, p := range strict {
		texts[i] = patternText(p)
	}

	t := &Table{
		ID: "cache",
		Title: fmt.Sprintf("gpmd result cache on YouTube stand-in (|V|=%d, |E|=%d, %d patterns, budget 256 MiB)",
			g.N(), g.M(), n),
		Columns: []string{"semantics", "cold p50 (ms)", "hit p50 (ms)", "containment p50 (ms)", "cold/hit", "response checksum"},
	}
	minSpeedup := 0.0
	for _, sem := range cacheSemantics {
		var coldD, hitD, containD []time.Duration
		var coldSum, hitSum, containSum uint64
		coldNorm := make([][]byte, n)
		for i, text := range texts {
			raw, rel, d := cacheQuery(srv, sem, "warm", text)
			if rel.Stats.Cache != "" {
				panic(fmt.Sprintf("bench: cache: first %s query %d already cached (%q)", sem, i, rel.Stats.Cache))
			}
			coldD = append(coldD, d)
			coldSum = bits.RotateLeft64(coldSum, 1) ^ difftest.Checksum(rel.Matches)
			coldNorm[i] = normalizeRelation(raw)
		}
		for rep := 0; rep < hitReps; rep++ {
			for i, text := range texts {
				raw, rel, d := cacheQuery(srv, sem, "warm", text)
				if rel.Stats.Cache != "hit" {
					panic(fmt.Sprintf("bench: cache: repeated %s query %d not a hit (%q)", sem, i, rel.Stats.Cache))
				}
				hitD = append(hitD, d)
				if rep == 0 {
					hitSum = bits.RotateLeft64(hitSum, 1) ^ difftest.Checksum(rel.Matches)
				}
				if !bytes.Equal(normalizeRelation(raw), coldNorm[i]) {
					panic(fmt.Sprintf("bench: cache: %s hit response %d diverges from cold", sem, i))
				}
			}
		}
		containCell := "-"
		if sem != "strong" {
			// Prime the derive binding with the loose superpatterns. These
			// may themselves be served via containment or exact hits (two
			// predicate-stripped patterns are often canonically equal);
			// either way the bucket ends up holding their relations.
			for _, p := range loose {
				cacheQuery(srv, sem, "derive", patternText(p))
			}
			for i, text := range texts {
				raw, rel, d := cacheQuery(srv, sem, "derive", text)
				if rel.Stats.Cache != "containment" {
					panic(fmt.Sprintf("bench: cache: %s query %d on the seeded binding took %q, want containment", sem, i, rel.Stats.Cache))
				}
				containD = append(containD, d)
				containSum = bits.RotateLeft64(containSum, 1) ^ difftest.Checksum(rel.Matches)
				if !bytes.Equal(normalizeRelation(raw), coldNorm[i]) {
					panic(fmt.Sprintf("bench: cache: %s containment response %d diverges from cold", sem, i))
				}
			}
			if containSum != coldSum {
				panic(fmt.Sprintf("bench: cache: %s containment checksum %016x != cold %016x", sem, containSum, coldSum))
			}
			containCell = ms(p50(containD))
		}
		if hitSum != coldSum {
			panic(fmt.Sprintf("bench: cache: %s hit checksum %016x != cold %016x", sem, hitSum, coldSum))
		}
		cold, hit := p50(coldD), p50(hitD)
		speedup := float64(cold) / float64(hit)
		if minSpeedup == 0 || speedup < minSpeedup {
			minSpeedup = speedup
		}
		t.AddRow(sem, ms(cold), ms(hit), containCell, f2(speedup), fmt.Sprintf("%016x", coldSum))
		cfg.logf("cache: %s done (cold %v, hit %v)", sem, cold, hit)
	}
	t.Note("hit/containment responses asserted byte-identical to cold modulo stats; checksums asserted per row")
	if minSpeedup >= 50 {
		t.Note("gate: hit p50 at least 50x below cold on every row (min speedup %.0fx)", minSpeedup)
	} else {
		t.Note("gate FAILED at this scale: min cold/hit speedup %.1fx < 50x", minSpeedup)
		// At smoke scales the cold fixpoint itself is microseconds, so the
		// ratio is meaningless; the gate is enforced at report scales.
		if cfg.Scale >= 0.05 {
			panic(fmt.Sprintf("bench: cache: hit p50 only %.1fx below cold, want >= 50x", minSpeedup))
		}
	}
	return t
}

// cacheQuery posts one relation query straight through the handler and
// returns the raw response, its decoded form and the request latency.
func cacheQuery(srv *server.Server, sem, graph, text string) ([]byte, client.Relation, time.Duration) {
	body, err := json.Marshal(client.QueryRequest{Graph: graph, Pattern: text})
	if err != nil {
		panic(err)
	}
	req := httptest.NewRequest("POST", cachePaths[sem], bytes.NewReader(body))
	rw := httptest.NewRecorder()
	start := time.Now()
	srv.ServeHTTP(rw, req)
	d := time.Since(start)
	if rw.Code != 200 {
		panic(fmt.Sprintf("bench: cache: %s query failed: %d %s", sem, rw.Code, rw.Body.String()))
	}
	var rel client.Relation
	if err := json.Unmarshal(rw.Body.Bytes(), &rel); err != nil {
		panic(err)
	}
	return rw.Body.Bytes(), rel, d
}

// loosen weakens every multi-atom node predicate to its first atom
// (dropping the numeric-range refinement the generator adds), keeping
// edges intact: the result contains p under both the child and dual
// modes, with a relation close enough to p's that seeding from it
// genuinely replaces the whole-graph candidate scan with a near-exact
// one — the refined-query-after-broad-query shape real workloads have.
// An all-wildcard superpattern would also contain p, but its near-total
// relation makes seeds as big as the graph, which measures overhead
// rather than reuse.
func loosen(p *pattern.Pattern) *pattern.Pattern {
	q := p.Clone()
	changed := false
	for u := 0; u < q.N(); u++ {
		if pred := q.Pred(u); len(pred) > 1 {
			q.SetPred(u, pred[:1])
			changed = true
		}
	}
	if !changed {
		// Degenerate workload (single-atom predicates throughout): strip
		// them instead so loose is still canonically distinct from strict.
		for u := 0; u < q.N(); u++ {
			q.SetPred(u, nil)
		}
	}
	return q
}

// uniquePatternBatch generates n P(4,4,1) patterns that are pairwise
// distinct in canonical form, so every cold query on the warm binding is
// a genuine miss (a canonical duplicate would be served as a hit and
// corrupt the cold timing).
func uniquePatternBatch(cfg Config, g *graph.Graph, n int) []*pattern.Pattern {
	seen := make(map[string]bool)
	out := make([]*pattern.Pattern, 0, n)
	for shift := int64(0); len(out) < n && shift < int64(100*n); shift++ {
		p := generator.Pattern(generator.PatternConfig{
			Nodes: 6, Edges: 10, K: 1, C: 2, PredAttrs: 2,
			Seed: cfg.Seed + shift*911 + 17,
		}, g)
		c, err := p.Canonical()
		if err != nil || seen[c.Text] {
			continue
		}
		seen[c.Text] = true
		out = append(out, p)
	}
	if len(out) < n {
		panic(fmt.Sprintf("bench: cache: only %d of %d canonically distinct patterns generated", len(out), n))
	}
	return out
}

func patternText(p *pattern.Pattern) string {
	var buf bytes.Buffer
	if err := gio.WritePattern(&buf, p); err != nil {
		panic(err)
	}
	return buf.String()
}

// normalizeRelation zeroes the stats block (wall-clock readings) and the
// binding name (the two bindings serve the same graph) so responses can
// be compared byte-for-byte.
func normalizeRelation(raw []byte) []byte {
	var rel client.Relation
	if err := json.Unmarshal(raw, &rel); err != nil {
		panic(err)
	}
	rel.Graph = ""
	rel.Stats = client.Stats{}
	out, err := json.Marshal(rel)
	if err != nil {
		panic(err)
	}
	return out
}

func p50(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
