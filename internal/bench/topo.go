package bench

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"

	"gpm"
	"gpm/internal/difftest"
	"gpm/internal/generator"
)

// TopoSpeedup measures the topology-preserving semantics (dual and
// strong simulation, Ma et al. VLDB 2012) against worker count on a
// synthetic workload of all-bounds-one patterns. Strong simulation
// fans its per-center ball evaluations across the engine's workers;
// dual simulation shards its fixpoint initialisation. The checksum
// column proves every worker count computes bit-identical relations;
// the 1-worker rows are the sequential baselines the speedups are
// relative to.
func TopoSpeedup(cfg Config) *Table {
	cfg = cfg.withDefaults()
	n := cfg.SynthNodes
	if n < 300 {
		n = 300
	}
	// A loose attribute alphabet keeps the dual image large, so strong
	// simulation sweeps many candidate centers — the ball fan-out the
	// worker pool is for. IsoBias backs pattern edges with data edges,
	// so the all-bounds-one patterns actually match.
	g := generator.Graph(generator.GraphConfig{
		Nodes: n, Edges: 4 * n, Attrs: 8, Model: generator.PowerLaw, Seed: cfg.Seed,
	})
	var ps []*gpm.Pattern
	for i := 0; i < cfg.Patterns; i++ {
		ps = append(ps, generator.Pattern(generator.PatternConfig{
			Nodes: 4, Edges: 5, K: 1, IsoBias: true, Seed: cfg.Seed*31 + int64(i),
		}, g))
	}

	t := &Table{
		ID: "topo",
		Title: fmt.Sprintf("Dual/strong simulation speedup on synthetic (|V|=%d, |E|=%d, %d patterns)",
			g.N(), g.M(), len(ps)),
		Columns: []string{"semantics", "workers", "elapsed (ms)", "speedup", "relation checksum"},
	}
	ctx := context.Background()
	for _, sem := range []string{"dual", "strong"} {
		var baseline time.Duration
		var wantSum uint64
		for _, w := range []int{1, 2, 4, 8} {
			eng := gpm.NewEngine(g, gpm.WithWorkers(w))
			h := fnv.New64a()
			var buf [8]byte
			start := time.Now()
			for _, p := range ps {
				var rel [][]int32
				var err error
				switch sem {
				case "dual":
					var res *gpm.TopoResult
					if res, err = eng.DualSimulate(ctx, p); err == nil {
						rel = res.Relation()
					}
				case "strong":
					var res *gpm.TopoResult
					if res, err = eng.StrongSimulate(ctx, p); err == nil {
						rel = res.Relation()
					}
				}
				if err != nil {
					panic(err)
				}
				// difftest.Checksum is the same encoding the lattice tests
				// pin, so the table and the harness prove one property.
				sum := difftest.Checksum(rel)
				buf[0], buf[1], buf[2], buf[3] = byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24)
				buf[4], buf[5], buf[6], buf[7] = byte(sum>>32), byte(sum>>40), byte(sum>>48), byte(sum>>56)
				h.Write(buf[:])
			}
			elapsed := time.Since(start)
			sum := h.Sum64()
			if w == 1 {
				baseline = elapsed
				wantSum = sum
			} else if sum != wantSum {
				panic(fmt.Sprintf("bench: topo checksum diverged for %s at %d workers: %x vs %x", sem, w, sum, wantSum))
			}
			t.AddRow(sem, fmt.Sprintf("%d", w), ms(elapsed),
				f2(baseline.Seconds()/elapsed.Seconds()), fmt.Sprintf("%016x", sum))
			cfg.logf("topo: %s at %d workers done", sem, w)
		}
	}
	t.Note("identical checksums across a semantics' rows: ball-sharded evaluation is result-equivalent at every worker count")
	t.Note("strong simulation dominates: it runs one ball-local dual fixpoint per candidate center")
	t.Note("speedup is relative to each semantics' 1-worker row; it saturates at the machine's core count")
	return t
}
