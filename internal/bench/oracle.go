package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"gpm/internal/core"
	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/pll"
)

// matrixBudgetBytes caps direct distance-matrix builds inside the
// experiments: when the n x n matrix would exceed it (the 15K-node
// stand-ins at -scale 1.0 need ~900 MB), the harness substitutes the PLL
// labelling — same answers, linear memory — so `gpmbench -scale 1.0`
// stays under 1 GB of RSS. Tables note the substitution.
const matrixBudgetBytes = 512 << 20

// matrixBytesFor mirrors matrix.MemoryBytes without building anything.
func matrixBytesFor(n int) int64 { return int64(n)*int64(n)*4 + int64(n)*4 }

// budgetOracle returns the distance oracle the Match columns run on: the
// exact matrix when it fits matrixBudgetBytes, the PLL labelling above
// it. The build duration and the chosen kind come back for table notes,
// keeping scale-1.0 output honest about what was measured.
func budgetOracle(g *graph.Graph) (core.DistOracle, time.Duration, string) {
	if matrixBytesFor(g.N()) <= matrixBudgetBytes {
		var o *core.MatrixOracle
		d := timed(func() { o = core.BuildMatrixOracle(g) })
		return o, d, "matrix"
	}
	var o *core.PLLOracle
	var err error
	d := timed(func() { o, err = core.BuildPLLOracle(context.Background(), g) })
	if err != nil {
		panic(err) // graphs here are far below pll.MaxNodes
	}
	return o, d, "pll"
}

// noteOracle records a substitution note once per table.
func noteOracle(t *Table, kind string) {
	if kind != "matrix" {
		t.Note("distance matrix over the %d MB budget: the Match column runs on the %s oracle instead",
			matrixBudgetBytes>>20, kind)
	}
}

// heapDelta reports how much the live heap grew across build — a cheap
// RSS estimate that, unlike index byte counts, also sees build-time
// scratch that escapes to the heap.
func heapDelta(build func()) int64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	build()
	runtime.ReadMemStats(&after)
	d := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if d < 0 {
		d = 0
	}
	return d
}

func mb(b int64) string { return fmt.Sprintf("%.1f", float64(b)/(1<<20)) }

// OracleStats (id "oracle") compares every distance oracle's build cost
// and memory footprint per dataset — the table behind the auto-oracle
// thresholds. Matrices over matrixBudgetBytes are estimated analytically
// instead of built, so the experiment itself respects the budget it
// documents. CI stores the -json form as bench_oracle.json so the memory
// trajectory is tracked per commit.
func OracleStats(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "oracle",
		Title:   "Distance oracle build time and memory per dataset",
		Columns: []string{"dataset", "oracle", "build (ms)", "index (MB)", "heap delta (MB)", "entries"},
	}
	for _, name := range []string{"matter", "pblog", "youtube"} {
		g := dataset(cfg, name)
		f := g.Freeze()

		if est := matrixBytesFor(g.N()); est <= matrixBudgetBytes {
			var mo *core.MatrixOracle
			var d time.Duration
			h := heapDelta(func() { d = timed(func() { mo = core.BuildMatrixOracle(g) }) })
			t.AddRow(name, "matrix", ms(d), mb(mo.Matrix().MemoryBytes()), mb(h),
				fmt.Sprintf("%d", int64(g.N())*int64(g.N())))
		} else {
			t.AddRow(name, "matrix", "-", mb(est)+" (est)", "-", "skipped: over budget")
		}

		var hop *core.TwoHopOracle
		var hd time.Duration
		hh := heapDelta(func() { hd = timed(func() { hop = core.BuildTwoHopOracle(g) }) })
		entries := hop.Index().LabelEntries()
		t.AddRow(name, "2hop", ms(hd), mb(int64(entries)*8), mb(hh), fmt.Sprintf("%d", entries))

		var idx *pll.Index
		var pd time.Duration
		ph := heapDelta(func() {
			pd = timed(func() {
				var err error
				idx, err = pll.Build(context.Background(), f, pll.AutoOptions(f))
				if err != nil {
					panic(err) // datasets are far below pll.MaxNodes
				}
			})
		})
		t.AddRow(name, "pll", ms(pd), mb(idx.MemoryBytes()), mb(ph), fmt.Sprintf("%d", idx.LabelEntries()))

		// BFS keeps no index at all — per-query scratch only.
		t.AddRow(name, "bfs", "0.00", mb(int64(g.N())*8), "0.0", "per-query scratch")
		cfg.logf("oracle: %s done", name)
	}
	t.Note("matrix over the %d MB budget is estimated analytically, not built", matrixBudgetBytes>>20)
	t.Note("heap delta = live-heap growth across the build (GC-fenced), an RSS estimate including escaped scratch")
	return t
}

// oracleParallelSamples is how many random pairs OracleParallel checks
// between the sequential and batched indexes — a smoke-level agreement
// gate on top of the exhaustive distance-level tests in internal/pll
// and internal/difftest.
const oracleParallelSamples = 2000

// OracleParallel (id "oracle-parallel", also emitted by "oracle")
// measures the batched + bit-parallel PLL build against the classic
// sequential one on the dense BA graph that made PR 6's build the
// bottleneck (53 s at 50K nodes). One sequential baseline, then batched
// builds across worker counts; every batched index is verified
// byte-identical to the 1-worker one and distance-checked against the
// sequential baseline on sampled pairs.
func OracleParallel(cfg Config) *Table {
	cfg = cfg.withDefaults()
	n := int(50_000 * cfg.Scale)
	if n < 5_000 {
		n = 5_000
	}
	g := generator.Graph(generator.GraphConfig{
		Nodes: n, Attrs: n / 10, Model: generator.BarabasiAlbert, MOut: 10, Seed: cfg.Seed,
	})
	f := g.Freeze()
	arena := pll.AutoOptions(f).Arena

	t := &Table{
		ID: "oracle-parallel",
		Title: fmt.Sprintf("Parallel PLL construction: BA graph |V|=%d |E|=%d (scale %.2f, %d CPUs)",
			g.N(), g.M(), cfg.Scale, runtime.GOMAXPROCS(0)),
		Columns: []string{"build", "workers", "build (ms)", "speedup", "entries/node", "bp roots"},
	}

	var seq *pll.Index
	seqT := timed(func() {
		var err error
		seq, err = pll.Build(context.Background(), f, pll.Options{Arena: arena})
		if err != nil {
			panic(err) // n is far below pll.MaxNodes
		}
	})
	t.AddRow("sequential", "-", ms(seqT), "1.00",
		f2(float64(seq.LabelEntries())/float64(n)), "0")
	cfg.logf("oracle-parallel: sequential baseline done (%v)", seqT)

	var ref *pll.Index // 1-worker batched index: the determinism reference
	for _, w := range []int{1, 2, 4, 8} {
		var idx *pll.Index
		bt := timed(func() {
			var err error
			idx, err = pll.Build(context.Background(), f, pll.Options{
				Arena: arena, Workers: w, BitParallel: 1,
			})
			if err != nil {
				panic(err)
			}
		})
		if ref == nil {
			ref = idx
			checkSampledDistances(f, seq, idx)
		} else if !sameIndexBytes(ref, idx) {
			panic(fmt.Sprintf("oracle-parallel: index at %d workers differs from 1 worker", w))
		}
		t.AddRow("batched+bp", fmt.Sprintf("%d", w), ms(bt),
			f2(float64(seqT)/float64(bt)),
			f2(float64(idx.LabelEntries())/float64(n)),
			fmt.Sprintf("%d", idx.BitParallelRoots()))
		cfg.logf("oracle-parallel: %d workers done (%v)", w, bt)
	}
	t.Note("speedup = sequential build time / this row's build time (same process, same graph)")
	t.Note("%d sampled pair distances verified equal between the sequential and batched indexes; batched indexes byte-identical across worker counts", oracleParallelSamples)
	return t
}

// checkSampledDistances panics when the two indexes disagree on any
// sampled pair — the bench-level exactness gate.
func checkSampledDistances(f *graph.Frozen, a, b *pll.Index) {
	rng := rand.New(rand.NewSource(4229))
	n := f.N()
	for i := 0; i < oracleParallelSamples; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if da, db := a.Dist(u, v), b.Dist(u, v); da != db {
			panic(fmt.Sprintf("oracle-parallel: Dist(%d,%d) = %d sequential vs %d batched", u, v, da, db))
		}
	}
}

// sameIndexBytes compares the label CSRs and entry counts of two
// indexes — the cheap byte-determinism check the full reflect-based one
// in internal/pll's tests backs up at small scale.
func sameIndexBytes(a, b *pll.Index) bool {
	if a.N() != b.N() || a.LabelEntries() != b.LabelEntries() ||
		a.BitParallelRoots() != b.BitParallelRoots() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		if !equalWords(a.InLabel(v), b.InLabel(v)) || !equalWords(a.OutLabel(v), b.OutLabel(v)) {
			return false
		}
	}
	return true
}

func equalWords(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
