package bench

import (
	"fmt"
	"time"

	"gpm/internal/core"
	"gpm/internal/generator"
)

// Fig6e reproduces Fig. 6(e): Match vs 2-hop vs BFS on the three
// real-life stand-ins for P(4,4,4) and P(8,8,4). Precomputation (matrix,
// labelling) is excluded, as in the paper.
func Fig6e(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "6e",
		Title:   "Fig 6(e): elapsed time on real-life data (ms, precomputation excluded)",
		Columns: []string{"dataset", "pattern", "Match", "2-hop", "BFS"},
	}
	for _, name := range []string{"matter", "pblog", "youtube"} {
		g := dataset(cfg, name)
		oracle, _, okind := budgetOracle(g)
		if okind != "matrix" && len(t.Notes) == 0 {
			noteOracle(t, okind)
		}
		hop := core.BuildTwoHopOracle(g)
		fz := g.Freeze() // outside the timed region: the table excludes precomputation
		for _, shape := range [][2]int{{4, 4}, {8, 8}} {
			ps := patternBatch(cfg, g, cfg.Patterns, shape[0], shape[1], 4)
			var m, h, b time.Duration
			for _, p := range ps {
				m += timed(func() { core.MatchWithOracle(p, g, oracle) })
			}
			for _, p := range ps {
				h += timed(func() { core.MatchWithOracle(p, g, hop) })
			}
			for _, p := range ps {
				bo := core.NewBFSOracleFrozen(fz)
				b += timed(func() { core.MatchWithOracle(p, g, bo) })
			}
			t.AddRow(name, fmt.Sprintf("P(%d,%d,4)", shape[0], shape[1]),
				msAvg(m, len(ps)), msAvg(h, len(ps)), msAvg(b, len(ps)))
			cfg.logf("fig6e: %s %v done", name, shape)
		}
	}
	t.Note("paper shape: Match fastest everywhere; 2-hop helps over BFS when many pairs are unreachable")
	return t
}

// Fig6fgh reproduces Figs. 6(f)-(h): synthetic graphs with |V| fixed and
// |E| = factor x |V| (paper: 20K nodes, 20/40/60K edges), pattern sizes
// |Vp| = |Ep| in 4..10, k = 3.
func Fig6fgh(cfg Config, factor int) *Table {
	cfg = cfg.withDefaults()
	if factor < 1 {
		factor = 1
	}
	id := map[int]string{1: "6f", 2: "6g", 3: "6h"}[factor]
	if id == "" {
		id = fmt.Sprintf("6fgh-x%d", factor)
	}
	g := generator.Graph(generator.GraphConfig{
		Nodes: cfg.SynthNodes, Edges: factor * cfg.SynthNodes,
		Attrs: cfg.SynthNodes / 10, Model: generator.ER, Seed: cfg.Seed,
	})
	t := &Table{
		ID: id,
		Title: fmt.Sprintf("Fig %s: |V|=%d, |E|=%d; Match vs 2-hop vs BFS (ms, precomputation excluded)",
			id, g.N(), g.M()),
		Columns: []string{"pattern", "Match", "2-hop", "BFS"},
	}
	oracle, _, okind := budgetOracle(g)
	noteOracle(t, okind)
	hop := core.BuildTwoHopOracle(g)
	fz := g.Freeze() // outside the timed region: the table excludes precomputation
	for size := 4; size <= 10; size++ {
		ps := patternBatch(cfg, g, cfg.Patterns, size, size, 3)
		var m, h, b time.Duration
		for _, p := range ps {
			m += timed(func() { core.MatchWithOracle(p, g, oracle) })
		}
		for _, p := range ps {
			h += timed(func() { core.MatchWithOracle(p, g, hop) })
		}
		for _, p := range ps {
			bo := core.NewBFSOracleFrozen(fz)
			b += timed(func() { core.MatchWithOracle(p, g, bo) })
		}
		t.AddRow(fmt.Sprintf("P(%d,%d,3)", size, size),
			msAvg(m, len(ps)), msAvg(h, len(ps)), msAvg(b, len(ps)))
		cfg.logf("fig%s: size %d done", id, size)
	}
	t.Note("paper shape: Match flat in |E| (matrix lookups are O(1)); 2-hop loses its edge as density grows")
	return t
}

// GrStats reproduces the appendix's result-graph statistics: |Gr| for
// P(4,4,3) patterns over YouTube (paper: ~70 nodes, ~174 edges).
func GrStats(cfg Config) *Table {
	cfg = cfg.withDefaults()
	g := youtube(cfg)
	oracle, _, okind := budgetOracle(g)
	ps := patternBatch(cfg, g, cfg.Patterns*2, 4, 4, 3)
	var nodes, edges, matched float64
	for _, p := range ps {
		res, err := core.MatchWithOracle(p, g, oracle)
		if err != nil || !res.OK() {
			continue
		}
		rg := core.BuildResultGraph(res, oracle)
		n, e := rg.Size()
		nodes += float64(n)
		edges += float64(e)
		matched++
	}
	t := &Table{
		ID:      "gr",
		Title:   "Appendix: result graph size |Gr| for P(4,4,3) patterns on YouTube",
		Columns: []string{"metric", "value"},
	}
	if matched > 0 {
		t.AddRow("patterns matched", fmt.Sprintf("%.0f/%d", matched, len(ps)))
		t.AddRow("avg |Vr|", f2(nodes/matched))
		t.AddRow("avg |Er|", f2(edges/matched))
	} else {
		t.AddRow("patterns matched", "0")
	}
	t.Note("paper: around 70 nodes and 174 edges per result graph at full scale")
	noteOracle(t, okind)
	return t
}

// TwoHopStats reports the 2-hop index sizes per dataset — context for the
// Fig. 6(e) variant comparison.
func TwoHopStats(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "2hop",
		Title:   "2-hop labelling size and build time per dataset",
		Columns: []string{"dataset", "label entries", "build (ms)", "matrix (ms)"},
	}
	for _, name := range []string{"matter", "pblog", "youtube"} {
		g := dataset(cfg, name)
		var hop *core.TwoHopOracle
		ht := timed(func() { hop = core.BuildTwoHopOracle(g) })
		mtCell := "-"
		if matrixBytesFor(g.N()) <= matrixBudgetBytes {
			mt := timed(func() { core.BuildMatrixOracle(g) })
			mtCell = ms(mt)
		} else if len(t.Notes) == 0 {
			t.Note("matrix build skipped over the %d MB budget; see -exp oracle for estimates", matrixBudgetBytes>>20)
		}
		t.AddRow(name, fmt.Sprintf("%d", hop.Index().LabelEntries()), ms(ht), mtCell)
	}
	return t
}
