// Package bench regenerates every table and figure of the paper's
// evaluation (§5 and the appendix) against the synthetic dataset
// stand-ins. Each experiment returns a Table whose rows mirror the
// paper's axes; cmd/gpmbench prints them, and bench_test.go wraps the
// underlying operations as testing.B benchmarks.
//
// Absolute numbers differ from the paper (different hardware, synthetic
// data, configurable scale); the shapes — who wins, by what factor,
// where crossovers fall — are the reproduction target. EXPERIMENTS.md
// records a paper-vs-measured comparison for every experiment.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"
)

// Config scales and seeds the experiments. The zero value gets laptop
// defaults from withDefaults; Scale 1.0 reproduces the paper's exact
// dataset sizes (a 15K-node distance matrix needs ~900 MB).
type Config struct {
	Scale      float64   // dataset scale factor in (0, 1]
	Seed       int64     // base RNG seed
	Patterns   int       // patterns averaged per data point (paper: 20)
	SynthNodes int       // node count for synthetic-graph experiments (paper: 20000)
	VF2MaxEmb  int       // embedding budget for VF2/SubIso
	VF2MaxStep int64     // search-step budget for VF2/SubIso
	Workers    int       // parallel-build worker count (0 = GOMAXPROCS)
	Progress   io.Writer // optional progress log
}

// Resolved returns the configuration the experiments actually run with:
// zero-valued fields replaced by the built-in defaults. cmd/gpmbench
// records it in -json output so every trajectory document is
// self-describing even if a default changes between releases.
func (c Config) Resolved() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = 0.15
	}
	if c.Seed == 0 {
		c.Seed = 20100913 // VLDB 2010 started September 13
	}
	if c.Patterns <= 0 {
		c.Patterns = 5
	}
	if c.SynthNodes <= 0 {
		c.SynthNodes = int(20000 * c.Scale)
		if c.SynthNodes < 500 {
			c.SynthNodes = 500
		}
	}
	if c.VF2MaxEmb <= 0 {
		c.VF2MaxEmb = 10000
	}
	if c.VF2MaxStep <= 0 {
		c.VF2MaxStep = 5_000_000
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// Table is one regenerated paper artefact. The JSON tags are the schema
// of cmd/gpmbench -json, which BENCH_*.json trajectory files follow.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a free-text note printed under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				for pad := len(cell); pad < widths[i]; pad++ {
					b.WriteByte(' ')
				}
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// timed runs f and returns its wall-clock duration.
func timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

func msAvg(total time.Duration, n int) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(total.Microseconds())/1000/float64(n))
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
