package bench

import (
	"fmt"

	"gpm/internal/core"
	"gpm/internal/datasets"
	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/subiso"
)

// youtube returns the YouTube stand-in at the configured scale.
func youtube(cfg Config) *graph.Graph {
	g, err := datasets.ByName("youtube", cfg.Seed, cfg.Scale)
	if err != nil {
		panic(err) // name is static; cannot happen
	}
	return g
}

func dataset(cfg Config, name string) *graph.Graph {
	g, err := datasets.ByName(name, cfg.Seed, cfg.Scale)
	if err != nil {
		panic(err)
	}
	return g
}

// Datasets regenerates the §5 dataset table (with degree statistics).
func Datasets(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "datasets",
		Title:   "Real-life dataset stand-ins (paper §5 table)",
		Columns: []string{"dataset", "|V|", "|E|", "paper |V|", "paper |E|", "avg deg", "max in"},
	}
	paper := map[string][2]int{
		"matter":  {datasets.MatterNodes, datasets.MatterEdges},
		"pblog":   {datasets.PBlogNodes, datasets.PBlogEdges},
		"youtube": {datasets.YouTubeNodes, datasets.YouTubeEdges},
	}
	for _, name := range []string{"matter", "pblog", "youtube"} {
		g := dataset(cfg, name)
		st := graph.ComputeStats(g)
		t.AddRow(name,
			fmt.Sprintf("%d", st.Nodes), fmt.Sprintf("%d", st.Edges),
			fmt.Sprintf("%d", paper[name][0]), fmt.Sprintf("%d", paper[name][1]),
			f2(st.AvgDegree), fmt.Sprintf("%d", st.MaxIn))
	}
	t.Note("scale factor %.2f; scale 1.0 reproduces the paper's sizes exactly", cfg.Scale)
	return t
}

// patternBatch generates n patterns of shape P(|Vp|, |Ep|, k) against g,
// varying the seed per pattern.
func patternBatch(cfg Config, g *graph.Graph, n, vp, ep, k int) []*pattern.Pattern {
	out := make([]*pattern.Pattern, n)
	for i := range out {
		out[i] = generator.Pattern(generator.PatternConfig{
			Nodes: vp, Edges: ep, K: k, C: 2, PredAttrs: 2,
			Seed: cfg.Seed + int64(1000*i) + int64(vp*31+ep*7+k),
		}, g)
	}
	return out
}

// isoPatternBatch is patternBatch with IsoBias: patterns that also admit
// an isomorphic embedding, needed for fair SubIso/VF2 comparisons.
func isoPatternBatch(cfg Config, g *graph.Graph, n, vp, ep, k int) []*pattern.Pattern {
	out := make([]*pattern.Pattern, n)
	for i := range out {
		out[i] = generator.Pattern(generator.PatternConfig{
			Nodes: vp, Edges: ep, K: k, C: 2, PredAttrs: 1, IsoBias: true,
			Seed: cfg.Seed + int64(1000*i) + int64(vp*31+ep*7+k),
		}, g)
	}
	return out
}

// dagPatternBatch is patternBatch filtered to DAG patterns (regenerating
// with shifted seeds), for the incremental experiments.
func dagPatternBatch(cfg Config, g *graph.Graph, n, vp, ep, k int) []*pattern.Pattern {
	out := make([]*pattern.Pattern, 0, n)
	for shift := int64(0); len(out) < n && shift < int64(50*n); shift++ {
		p := generator.Pattern(generator.PatternConfig{
			Nodes: vp, Edges: ep, K: k, C: 2, PredAttrs: 2,
			Seed: cfg.Seed + shift*977 + int64(vp),
		}, g)
		if p.IsDAG() {
			out = append(out, p)
		}
	}
	return out
}

// Fig6a reproduces Exp-1's effectiveness comparison (the prose behind
// Fig. 6(a)): Match vs SubIso (Ullmann) on YouTube — average matches per
// pattern node and how many patterns each method fails on entirely.
func Fig6a(cfg Config) *Table {
	cfg = cfg.withDefaults()
	g := youtube(cfg)
	oracle, _, okind := budgetOracle(g)
	patterns := isoPatternBatch(cfg, g, cfg.Patterns*4, 4, 4, 3)

	t := &Table{
		ID:      "6a",
		Title:   "Exp-1 effectiveness: Match vs SubIso on YouTube (20 patterns in the paper)",
		Columns: []string{"metric", "Match", "SubIso"},
	}
	var (
		matchFail, subFail       int
		matchPerNode, subPerNode float64
		counted                  int
	)
	for _, p := range patterns {
		res, err := core.MatchWithOracle(p, g, oracle)
		if err != nil {
			continue
		}
		enum := subiso.Ullmann(p, g, subiso.Options{MaxEmbeddings: cfg.VF2MaxEmb, MaxSteps: cfg.VF2MaxStep})
		if !res.OK() {
			matchFail++
		}
		if len(enum.Embeddings) == 0 {
			subFail++
		}
		counted++
		matchPerNode += float64(res.Pairs()) / float64(p.N())
		pairs := enum.PairsPerNode(p.N())
		distinct := 0
		for _, l := range pairs {
			distinct += len(l)
		}
		subPerNode += float64(distinct) / float64(p.N())
	}
	t.AddRow("avg matches per pattern node",
		f2(matchPerNode/float64(counted)), f2(subPerNode/float64(counted)))
	t.AddRow("patterns with no match at all",
		fmt.Sprintf("%d/%d", matchFail, counted), fmt.Sprintf("%d/%d", subFail, counted))

	// The two published sample patterns and their result-graph sizes.
	for name, sp := range map[string]*pattern.Pattern{
		"sample P1": datasets.YouTubeSampleP1(),
		"sample P2": datasets.YouTubeSampleP2(),
	} {
		res, err := core.MatchWithOracle(sp, g, oracle)
		if err != nil {
			continue
		}
		rg := core.BuildResultGraph(res, oracle)
		nodes, edges := rg.Size()
		t.Note("%s: ok=%v, |S|=%d pairs, result graph %d nodes / %d edges",
			name, res.OK(), res.Pairs(), nodes, edges)
	}
	t.Note("paper: SubIso failed on 2/20 patterns; Match found ~5-9 matches per node vs 1 for SubIso")
	noteOracle(t, okind)
	return t
}

// Fig6bc reproduces Fig. 6(b) (efficiency: Match total / Match process /
// VF2) and Fig. 6(c) (#matches: Match vs VF2) on YouTube for pattern
// sizes P(3,3,3) .. P(8,8,3).
func Fig6bc(cfg Config) (*Table, *Table) {
	cfg = cfg.withDefaults()
	g := youtube(cfg)
	oracle, matrixTime, okind := budgetOracle(g)

	tb := &Table{
		ID:      "6b",
		Title:   "Fig 6(b): Match vs VF2 efficiency on YouTube (ms)",
		Columns: []string{"pattern", "Match(total)", "Match(process)", "VF2"},
	}
	tc := &Table{
		ID:      "6c",
		Title:   "Fig 6(c): number of matches, Match (|S| pairs) vs VF2 (embeddings)",
		Columns: []string{"pattern", "Match", "VF2", "VF2 complete"},
	}
	tb.Note("%s oracle: %s ms, computed once and shared by all patterns (as in the paper)", okind, ms(matrixTime))
	noteOracle(tb, okind)

	for size := 3; size <= 8; size++ {
		patterns := isoPatternBatch(cfg, g, cfg.Patterns, size, size, 3)
		var procTotal, vf2Total int64
		var matchPairs, vf2Embs float64
		complete := true
		for _, p := range patterns {
			var res *core.Result
			procTotal += timed(func() { res, _ = core.MatchWithOracle(p, g, oracle) }).Microseconds()
			matchPairs += float64(res.Pairs())
			var enum *subiso.Enumeration
			vf2Total += timed(func() {
				enum = subiso.VF2(p, g, subiso.Options{MaxEmbeddings: cfg.VF2MaxEmb, MaxSteps: cfg.VF2MaxStep})
			}).Microseconds()
			vf2Embs += float64(len(enum.Embeddings))
			complete = complete && enum.Complete
		}
		n := float64(len(patterns))
		label := fmt.Sprintf("(%d,%d,3)", size, size)
		proc := float64(procTotal) / 1000 / n
		tb.AddRow(label,
			fmt.Sprintf("%.2f", float64(matrixTime.Microseconds())/1000+proc),
			fmt.Sprintf("%.2f", proc),
			fmt.Sprintf("%.2f", float64(vf2Total)/1000/n))
		tc.AddRow(label, f2(matchPairs/n), f2(vf2Embs/n), fmt.Sprintf("%v", complete))
		cfg.logf("fig6bc: size %d done", size)
	}
	tb.Note("paper shape: Match(process) far below VF2; Match(total) dominated by the one-off matrix")
	tc.Note("paper shape: Match finds an order of magnitude more matches than VF2")
	return tb, tc
}

// Fig6d reproduces Fig. 6(d): with |Vp| fixed and k = 9, adding extra
// pattern edges (x = 1..8) tightens the pattern until little matches.
// The y-value is |S| / |Vp|, average data matches per pattern node.
func Fig6d(cfg Config) *Table {
	cfg = cfg.withDefaults()
	g := generator.Graph(generator.GraphConfig{
		Nodes: cfg.SynthNodes, Edges: 2 * cfg.SynthNodes,
		Attrs: cfg.SynthNodes / 10, Model: generator.ER, Seed: cfg.Seed,
	})
	oracle, _, okind := budgetOracle(g)
	sizes := []int{4, 6, 8, 10, 12}

	t := &Table{ID: "6d", Title: "Fig 6(d): matches per pattern node vs #extra pattern edges (k=9)"}
	noteOracle(t, okind)
	t.Columns = append(t.Columns, "edges added")
	for _, vp := range sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("P(%d,E,9)", vp))
	}
	for x := 1; x <= 8; x++ {
		row := []string{fmt.Sprintf("%d", x)}
		for _, vp := range sizes {
			total := 0.0
			for i := 0; i < cfg.Patterns; i++ {
				p := generator.Pattern(generator.PatternConfig{
					Nodes: vp, Edges: vp - 1 + x, K: 9, C: 2,
					Seed: cfg.Seed + int64(i*13+vp), // same seed across x: same skeleton, growing extras
				}, g)
				res, err := core.MatchWithOracle(p, g, oracle)
				if err != nil {
					continue
				}
				if res.OK() {
					total += float64(res.Pairs()) / float64(vp)
				}
			}
			row = append(row, f2(total/float64(cfg.Patterns)))
		}
		t.AddRow(row...)
		cfg.logf("fig6d: x=%d done", x)
	}
	t.Note("paper shape: all patterns match at x=1; most fail by x=8")
	return t
}

// Fig9 reproduces appendix Fig. 9: each pattern's structure and
// predicates are generated once (walks of length up to 9, the paper's
// generator bound), then every finite edge bound is rebound to k = 4..13.
// Below the generating distances nothing matches; past them the match
// count grows and saturates.
func Fig9(cfg Config) *Table {
	cfg = cfg.withDefaults()
	g := generator.Graph(generator.GraphConfig{
		Nodes: cfg.SynthNodes, Edges: 2 * cfg.SynthNodes,
		Attrs: cfg.SynthNodes / 10, Model: generator.ER, Seed: cfg.Seed,
	})
	oracle, _, okind := budgetOracle(g)
	shapes := [][2]int{{4, 3}, {6, 5}, {8, 7}, {10, 9}, {12, 11}}

	t := &Table{ID: "fig9", Title: "Appendix Fig 9: average #matches (|S|) for growing bound k"}
	noteOracle(t, okind)
	t.Columns = append(t.Columns, "pattern")
	for k := 4; k <= 13; k++ {
		t.Columns = append(t.Columns, fmt.Sprintf("k=%d", k))
	}
	for _, sh := range shapes {
		base := make([]*pattern.Pattern, cfg.Patterns)
		for i := range base {
			base[i] = generator.Pattern(generator.PatternConfig{
				Nodes: sh[0], Edges: sh[1], K: 9, C: 2,
				Seed: cfg.Seed + int64(i*17+sh[0]),
			}, g)
		}
		row := []string{fmt.Sprintf("P(%d,%d,k)", sh[0], sh[1])}
		for k := 4; k <= 13; k++ {
			total := 0.0
			for _, bp := range base {
				res, err := core.MatchWithOracle(rebind(bp, k), g, oracle)
				if err != nil {
					continue
				}
				if res.OK() {
					total += float64(res.Pairs())
				}
			}
			row = append(row, f2(total/float64(cfg.Patterns)))
		}
		t.AddRow(row...)
		cfg.logf("fig9: shape %v done", sh)
	}
	t.Note("paper shape: zero below a k threshold, then growth that saturates (no new matches past ~k=13)")
	return t
}

// rebind copies p with every finite edge bound replaced by k.
func rebind(p *pattern.Pattern, k int) *pattern.Pattern {
	q := pattern.New()
	for u := 0; u < p.N(); u++ {
		q.AddNode(p.Pred(u))
	}
	for _, e := range p.Edges() {
		b := k
		if e.Bound == pattern.Unbounded {
			b = pattern.Unbounded
		}
		if _, err := q.AddColoredEdge(e.From, e.To, b, e.Color); err != nil {
			panic(err) // source pattern was consistent
		}
	}
	return q
}
