package bench

import (
	"fmt"
	"time"

	"gpm/internal/core"
	"gpm/internal/generator"
	"gpm/internal/matrix"
)

// Ablation quantifies the implementation choices DESIGN.md calls out:
// the counter/worklist fixpoint vs the naive rescan fixpoint, and
// parallel vs sequential matrix construction.
func Ablation(cfg Config) *Table {
	cfg = cfg.withDefaults()
	n := cfg.SynthNodes / 2
	if n < 400 {
		n = 400
	}
	// This ablation measures matrix construction itself, so the PLL
	// substitution doesn't apply; instead cap the node count so the three
	// matrices built here (shared, sequential, parallel) fit the budget.
	requested := n
	for 3*matrixBytesFor(n) > matrixBudgetBytes {
		n = n * 3 / 4
	}
	// Selective attributes plus extra pattern edges force long removal
	// cascades — the regime that separates the naive fixpoint from the
	// counter/worklist refinement.
	g := generator.Graph(generator.GraphConfig{
		Nodes: n, Edges: 3 * n, Attrs: n / 20, Model: generator.ER, Seed: cfg.Seed,
	})
	oracle := core.BuildMatrixOracle(g)
	ps := patternBatch(cfg, g, cfg.Patterns, 6, 10, 2)

	var counterT, naiveT time.Duration
	for _, p := range ps {
		counterT += timed(func() { core.MatchWithOracle(p, g, oracle) })
	}
	for _, p := range ps {
		naiveT += timed(func() { core.MatchNaive(p, g, oracle) })
	}
	var seqT, parT time.Duration
	seqT = timed(func() { matrix.NewSequential(g) })
	parT = timed(func() { matrix.New(g) })

	t := &Table{
		ID:      "ablation",
		Title:   fmt.Sprintf("Ablation on synthetic |V|=%d |E|=%d", g.N(), g.M()),
		Columns: []string{"comparison", "baseline (ms)", "optimised (ms)"},
	}
	t.AddRow("naive fixpoint vs counter/worklist Match", msAvg(naiveT, len(ps)), msAvg(counterT, len(ps)))
	t.AddRow("sequential vs parallel matrix build", ms(seqT), ms(parT))
	if n != requested {
		t.Note("node count capped from %d to keep three matrices inside the %d MB budget", requested, matrixBudgetBytes>>20)
	}
	return t
}

// All runs every experiment in paper order.
func All(cfg Config) []*Table {
	b, c := Fig6bc(cfg)
	return []*Table{
		Datasets(cfg),
		Fig6a(cfg),
		b, c,
		Fig6d(cfg),
		Fig6e(cfg),
		Fig6fgh(cfg, 1),
		Fig6fgh(cfg, 2),
		Fig6fgh(cfg, 3),
		Fig6i(cfg),
		Fig6j(cfg),
		Fig6k(cfg),
		Fig9(cfg),
		GrStats(cfg),
		AffStats(cfg),
		TwoHopStats(cfg),
		OracleStats(cfg),
		OracleParallel(cfg),
		Ablation(cfg),
		EngineThroughput(cfg),
		ParallelSpeedup(cfg),
		TopoSpeedup(cfg),
		PlanSpeedup(cfg),
		IncSimSpeedup(cfg),
		ServeThroughput(cfg),
		ServeRecovery(cfg),
		CacheSpeedup(cfg),
	}
}

// ByID returns the experiments matching one id (see the per-experiment
// index in DESIGN.md), or an error listing the valid ids.
func ByID(id string, cfg Config) ([]*Table, error) {
	switch id {
	case "all":
		return All(cfg), nil
	case "datasets":
		return []*Table{Datasets(cfg)}, nil
	case "6a":
		return []*Table{Fig6a(cfg)}, nil
	case "6b", "6c":
		b, c := Fig6bc(cfg)
		if id == "6b" {
			return []*Table{b}, nil
		}
		return []*Table{c}, nil
	case "6bc":
		b, c := Fig6bc(cfg)
		return []*Table{b, c}, nil
	case "6d":
		return []*Table{Fig6d(cfg)}, nil
	case "6e":
		return []*Table{Fig6e(cfg)}, nil
	case "6f":
		return []*Table{Fig6fgh(cfg, 1)}, nil
	case "6g":
		return []*Table{Fig6fgh(cfg, 2)}, nil
	case "6h":
		return []*Table{Fig6fgh(cfg, 3)}, nil
	case "6i":
		return []*Table{Fig6i(cfg)}, nil
	case "6j":
		return []*Table{Fig6j(cfg)}, nil
	case "6k":
		return []*Table{Fig6k(cfg)}, nil
	case "fig9":
		return []*Table{Fig9(cfg)}, nil
	case "gr":
		return []*Table{GrStats(cfg)}, nil
	case "aff":
		return []*Table{AffStats(cfg)}, nil
	case "2hop":
		return []*Table{TwoHopStats(cfg)}, nil
	case "oracle":
		return []*Table{OracleStats(cfg), OracleParallel(cfg)}, nil
	case "oracle-parallel":
		return []*Table{OracleParallel(cfg)}, nil
	case "million":
		// Deliberately not part of "all": it generates its own large graph
		// and is gated by -scale (1.0 = the full 1M-node/10M-edge run).
		return []*Table{Million(cfg)}, nil
	case "ablation":
		return []*Table{Ablation(cfg)}, nil
	case "engine":
		return []*Table{EngineThroughput(cfg)}, nil
	case "parallel", "parallel-speedup":
		return []*Table{ParallelSpeedup(cfg)}, nil
	case "topo":
		return []*Table{TopoSpeedup(cfg)}, nil
	case "plan":
		return []*Table{PlanSpeedup(cfg)}, nil
	case "incsim":
		return []*Table{IncSimSpeedup(cfg)}, nil
	case "serve":
		return []*Table{ServeThroughput(cfg), ServeRecovery(cfg)}, nil
	case "serve-recovery":
		return []*Table{ServeRecovery(cfg)}, nil
	case "cache":
		return []*Table{CacheSpeedup(cfg)}, nil
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q (want all, datasets, 6a, 6b, 6c, 6d, 6e, 6f, 6g, 6h, 6i, 6j, 6k, fig9, gr, aff, 2hop, oracle, oracle-parallel, million, ablation, engine, parallel, topo, plan, incsim, serve, serve-recovery, cache)", id)
	}
}
