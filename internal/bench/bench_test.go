package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns a configuration that keeps every experiment under a
// second or two, for smoke-testing the harness itself.
func tiny() Config {
	return Config{Scale: 0.02, Patterns: 2, SynthNodes: 250, VF2MaxEmb: 200, VF2MaxStep: 100_000}
}

func checkTable(t *testing.T, tbl *Table, wantRows int) {
	t.Helper()
	if tbl == nil {
		t.Fatal("nil table")
	}
	if len(tbl.Rows) < wantRows {
		t.Fatalf("%s: %d rows, want >= %d (notes: %v)", tbl.ID, len(tbl.Rows), wantRows, tbl.Notes)
	}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Errorf("%s row %d: %d cells for %d columns", tbl.ID, i, len(row), len(tbl.Columns))
		}
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	if !strings.Contains(buf.String(), tbl.ID) {
		t.Errorf("%s: render missing id", tbl.ID)
	}
}

func TestDatasetsTable(t *testing.T) { checkTable(t, Datasets(tiny()), 3) }
func TestFig6aTable(t *testing.T)    { checkTable(t, Fig6a(tiny()), 2) }
func TestFig6dTable(t *testing.T)    { checkTable(t, Fig6d(tiny()), 8) }
func TestFig6eTable(t *testing.T)    { checkTable(t, Fig6e(tiny()), 6) }
func TestFig6fTable(t *testing.T)    { checkTable(t, Fig6fgh(tiny(), 1), 7) }
func TestFig6iTable(t *testing.T)    { checkTable(t, Fig6i(tiny()), 8) }
func TestFig6jTable(t *testing.T)    { checkTable(t, Fig6j(tiny()), 8) }
func TestFig6kTable(t *testing.T)    { checkTable(t, Fig6k(tiny()), 8) }
func TestFig9Table(t *testing.T)     { checkTable(t, Fig9(tiny()), 5) }
func TestGrStatsTable(t *testing.T)  { checkTable(t, GrStats(tiny()), 1) }
func TestAffStatsTable(t *testing.T) { checkTable(t, AffStats(tiny()), 1) }
func TestTwoHopTable(t *testing.T)   { checkTable(t, TwoHopStats(tiny()), 3) }
func TestAblationTable(t *testing.T) { checkTable(t, Ablation(tiny()), 2) }
func TestPlanTable(t *testing.T)     { checkTable(t, PlanSpeedup(tiny()), 4) }
func TestServeTable(t *testing.T)    { checkTable(t, ServeThroughput(tiny()), 4) }
func TestCacheTable(t *testing.T)    { checkTable(t, CacheSpeedup(tiny()), 4) }
func TestOracleTable(t *testing.T)   { checkTable(t, OracleStats(tiny()), 12) }

// The million experiment's PLL == BFS gate must hold and be visible in
// the table even at smoke scale (floor 2K nodes).
func TestMillionTable(t *testing.T) {
	cfg := tiny()
	cfg.Scale = 0.002
	tbl := Million(cfg)
	checkTable(t, tbl, 13)
	found := false
	for _, row := range tbl.Rows {
		if row[0] == "PLL == BFS checksums" {
			found = true
			if row[1] != "true" {
				t.Errorf("PLL relations diverged from the BFS reference: %v", tbl.Notes)
			}
		}
	}
	if !found {
		t.Error("million table missing the checksum gate row")
	}
}

func TestFig6bc(t *testing.T) {
	b, c := Fig6bc(tiny())
	checkTable(t, b, 6)
	checkTable(t, c, 6)
}

func TestByID(t *testing.T) {
	cfg := tiny()
	for _, id := range []string{"datasets", "6b", "6c", "gr"} {
		ts, err := ByID(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(ts) == 0 {
			t.Errorf("%s: no tables", id)
		}
	}
	if _, err := ByID("bogus", cfg); err == nil {
		t.Error("bogus id accepted")
	}
}

func TestDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale <= 0 || c.Patterns <= 0 || c.SynthNodes <= 0 || c.Seed == 0 {
		t.Errorf("defaults incomplete: %+v", c)
	}
}

func TestProgressLogging(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny()
	cfg.Progress = &buf
	Datasets(cfg)
	cfg.logf("hello %d", 7)
	if !strings.Contains(buf.String(), "hello 7") {
		t.Error("progress writer unused")
	}
}
