package bench

import (
	"context"
	"fmt"
	"time"

	"gpm"
	"gpm/internal/generator"
)

// planShape is one undirected pattern shape the planner experiment
// enumerates: edges are symmetrised into bidirectional bound-1 pattern
// edges over wildcard nodes, the regime where symmetry breaking pays.
type planShape struct {
	name  string
	nodes int
	edges [][2]int
}

var planShapes = []planShape{
	{"triangle", 3, [][2]int{{0, 1}, {1, 2}, {0, 2}}},
	{"4-clique", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}},
	{"house", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {1, 4}}},
	// The house is itself the chordal 5-cycle, so the fourth shape is the
	// 6-cycle with a diameter chord (|Aut| = 4, the Klein four-group).
	{"chordal-6-cycle", 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}}},
}

// shapePattern builds the bidirectional wildcard pattern of a shape.
func shapePattern(s planShape) *gpm.Pattern {
	p := gpm.NewPattern()
	for i := 0; i < s.nodes; i++ {
		p.AddNode(nil)
	}
	for _, e := range s.edges {
		if _, err := p.AddEdge(e[0], e[1], 1); err != nil {
			panic(err)
		}
		if _, err := p.AddEdge(e[1], e[0], 1); err != nil {
			panic(err)
		}
	}
	return p
}

// PlanSpeedup measures the query planner (internal/plan) against plain
// unplanned VF2 on symmetric pattern shapes over a symmetrised ER
// graph. The planner enumerates one canonical embedding per
// automorphism orbit under its symmetry-breaking restrictions and
// expands afterwards, so its win grows with |Aut|; the count column is
// CountEmbeddings, which skips materialisation entirely and adds
// inclusion-exclusion over the independent tail. Every row asserts
// in-run that the three paths agree on the embedding count.
func PlanSpeedup(cfg Config) *Table {
	cfg = cfg.withDefaults()
	n := cfg.SynthNodes
	if n < 300 {
		n = 300
	}
	if n > 4000 {
		// Dense-clique enumeration is the product of per-level candidate
		// widths; cap the graph so the unplanned baseline stays tractable.
		n = 4000
	}
	// A symmetrised power-law graph: undirected pattern shapes need
	// edges in both directions to match at all, and the hub structure
	// gives the clique shapes real embeddings (a sparse ER graph has
	// essentially none).
	g := generator.Graph(generator.GraphConfig{
		Nodes: n, Edges: 3 * n, Attrs: 4, Model: generator.PowerLaw, Seed: cfg.Seed,
	})
	var fwd [][2]int32
	g.Edges(func(u, v int) { fwd = append(fwd, [2]int32{int32(u), int32(v)}) })
	for _, e := range fwd {
		g.AddEdge(int(e[1]), int(e[0]))
	}
	// Plant three disjoint 6-cliques: random sparse graphs carry almost
	// no 4-cliques, and a 0-embedding row demonstrates nothing.
	for c := 0; c < 3; c++ {
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				if i != j {
					g.AddEdge(c*6+i, c*6+j)
				}
			}
		}
	}
	eng := gpm.NewEngine(g, gpm.WithWorkers(cfg.Workers))

	t := &Table{
		ID: "plan",
		Title: fmt.Sprintf("Planned vs unplanned enumeration on symmetrised power-law + planted 6-cliques (|V|=%d, |E|=%d)",
			g.N(), g.M()),
		Columns: []string{"shape", "|Aut|", "restrictions", "embeddings",
			"unplanned (ms)", "planned (ms)", "count (ms)", "speedup"},
	}
	ctx := context.Background()
	for _, s := range planShapes {
		p := shapePattern(s)
		pl, err := eng.EnumerationPlan(p)
		if err != nil {
			panic(err)
		}

		var plain, planned *gpm.EnumerationResult
		plainT := timed(func() {
			if plain, err = eng.Enumerate(ctx, p, gpm.IsoOptions{NoPlan: true}); err != nil {
				panic(err)
			}
		})
		plannedT := timed(func() {
			if planned, err = eng.Enumerate(ctx, p, gpm.IsoOptions{}); err != nil {
				panic(err)
			}
		})
		var cnt *gpm.CountResult
		countT := timed(func() {
			if cnt, err = eng.CountEmbeddings(ctx, p, gpm.IsoOptions{}); err != nil {
				panic(err)
			}
		})
		// The table is only meaningful if the three paths agree; a
		// divergence is a correctness bug, not a data point.
		if !plain.Complete || !planned.Complete || !cnt.Complete {
			panic(fmt.Sprintf("bench: plan %s: incomplete enumeration", s.name))
		}
		if len(planned.Embeddings) != len(plain.Embeddings) || cnt.Count != int64(len(plain.Embeddings)) {
			panic(fmt.Sprintf("bench: plan %s diverged: unplanned %d, planned %d, count %d",
				s.name, len(plain.Embeddings), len(planned.Embeddings), cnt.Count))
		}
		den := plannedT
		if den < time.Microsecond {
			den = time.Microsecond
		}
		t.AddRow(s.name,
			fmt.Sprintf("%d", len(pl.Aut)),
			fmt.Sprintf("%d", len(pl.Restrictions)),
			fmt.Sprintf("%d", len(plain.Embeddings)),
			ms(plainT), ms(plannedT), ms(countT),
			f2(plainT.Seconds()/den.Seconds()))
		cfg.logf("plan: %s done (%d embeddings)", s.name, len(plain.Embeddings))
	}
	t.Note("speedup = unplanned / planned enumeration time; each row asserts in-run that all three paths agree on the count")
	t.Note("the planner enumerates one canonical embedding per automorphism orbit and expands by |Aut| afterwards")
	t.Note("count skips materialisation and adds inclusion-exclusion over the pattern's independent tail")
	return t
}
