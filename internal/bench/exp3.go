package bench

import (
	"fmt"
	"runtime"
	"time"

	"gpm/internal/core"
	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/incremental"
	"gpm/internal/matrix"
	"gpm/internal/pattern"
)

// scaleDelta converts one of the paper's update-batch sizes to the
// configured scale, keeping at least a handful of updates.
func scaleDelta(cfg Config, size int) int {
	s := int(float64(size) * cfg.Scale)
	if s < 4 {
		s = 4
	}
	return s
}

// incRun measures one point of Exp-3: apply a batch of |δ| updates with
// IncMatch vs rerunning the batch algorithm (whose matrix recomputation
// is charged to it, as in the paper).
type incPoint struct {
	delta      int
	incTime    time.Duration
	batchTime  time.Duration
	aff        int
	recomputed bool
}

func incRun(cfg Config, g *graph.Graph, p *pattern.Pattern, ins, del int, seedShift int64) (incPoint, error) {
	// Fresh copies: the matcher mutates its graph.
	gInc := g.Clone()
	dm := incremental.NewDynMatrix(gInc)
	m, err := incremental.NewMatcher(p, dm)
	if err != nil {
		return incPoint{}, err
	}
	ups := generator.Updates(generator.UpdatesConfig{
		Insertions: ins, Deletions: del, Seed: cfg.Seed + seedShift,
	}, gInc)

	var pt incPoint
	pt.delta = len(ups)
	var dlt incremental.Delta
	pt.incTime = timed(func() { dlt, err = m.Apply(ups) })
	if err != nil {
		return incPoint{}, err
	}
	pt.aff = dlt.Aff1 + dlt.Aff2
	pt.recomputed = dlt.Recomputed

	// Capture the incremental relation's shape, then release the matcher
	// and its dynamic matrix before building the batch side's matrix: at
	// -scale 1.0 the two n x n matrices together would double peak RSS.
	incLens := make([]int, 0, 8)
	for _, row := range m.Relation() {
		incLens = append(incLens, len(row))
	}
	m, dm, gInc = nil, nil, nil
	_ = dm
	_ = gInc
	runtime.GC()

	// Batch competitor: apply the same updates to a second copy, then run
	// Match from scratch including the matrix rebuild. The rebuild is
	// single-threaded so the comparison matches the paper's one-core
	// setting (IncMatch is single-threaded too).
	gBatch := g.Clone()
	for _, u := range ups {
		if u.Insert {
			gBatch.AddEdge(u.U, u.V)
		} else {
			gBatch.RemoveEdge(u.U, u.V)
		}
	}
	var batchRes *core.Result
	pt.batchTime = timed(func() {
		o := core.NewMatrixOracle(gBatch, matrix.NewSequential(gBatch))
		batchRes, _ = core.MatchWithOracle(p, gBatch, o)
	})

	// Cross-check: both must agree (cheap insurance inside the harness).
	if batchRes != nil {
		bat := batchRes.Relation()
		for u := range incLens {
			if incLens[u] != len(bat[u]) {
				return incPoint{}, fmt.Errorf("bench: incremental/batch divergence at pattern node %d", u)
			}
		}
	}
	return pt, nil
}

// incTable runs a series of δ sizes with the given insert/delete split.
func incTable(cfg Config, id, title string, sizes []int, insFrac float64) *Table {
	cfg = cfg.withDefaults()
	g := youtube(cfg)
	ps := dagPatternBatch(cfg, g, 1, 4, 4, 3)
	if len(ps) == 0 {
		t := &Table{ID: id, Title: title}
		t.Note("no DAG pattern could be generated")
		return t
	}
	p := ps[0]
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"|delta|", "IncMatch (ms)", "Match (ms)", "|AFF|", "winner"},
	}
	for _, raw := range sizes {
		size := scaleDelta(cfg, raw)
		ins := int(float64(size) * insFrac)
		del := size - ins
		pt, err := incRun(cfg, g, p, ins, del, int64(raw))
		if err != nil {
			t.Note("size %d: %v", size, err)
			continue
		}
		winner := "IncMatch"
		if pt.batchTime < pt.incTime {
			winner = "Match"
		}
		t.AddRow(fmt.Sprintf("%d", pt.delta), ms(pt.incTime), ms(pt.batchTime),
			fmt.Sprintf("%d", pt.aff), winner)
		cfg.logf("%s: delta=%d done", id, size)
	}
	return t
}

// Fig6i reproduces Fig. 6(i): mixed batches of 400..3200 updates (scaled)
// on YouTube, IncMatch vs batch Match (matrix recomputation charged to
// the batch side, as in the paper).
func Fig6i(cfg Config) *Table {
	t := incTable(cfg, "6i",
		"Fig 6(i): IncMatch vs Match for mixed update batches on YouTube",
		[]int{400, 800, 1200, 1600, 2000, 2400, 2800, 3200}, 0.5)
	t.Note("paper shape: IncMatch wins up to |delta| ~ 2800 (~5%% of |E|), then batch Match takes over")
	return t
}

// Fig6j reproduces Fig. 6(j): deletion-only batches of 200..1600.
func Fig6j(cfg Config) *Table {
	t := incTable(cfg, "6j",
		"Fig 6(j): IncMatch vs Match for edge deletions on YouTube",
		[]int{200, 400, 600, 800, 1000, 1200, 1400, 1600}, 0)
	t.Note("paper shape: IncMatch insensitive to deletions (small affected areas)")
	return t
}

// Fig6k reproduces Fig. 6(k): insertion-only batches of 200..1600.
func Fig6k(cfg Config) *Table {
	t := incTable(cfg, "6k",
		"Fig 6(k): IncMatch vs Match for edge insertions on YouTube",
		[]int{200, 400, 600, 800, 1000, 1200, 1400, 1600}, 1)
	t.Note("paper shape: insertions cost more than deletions (larger affected areas), matching §4's analysis")
	return t
}

// AffStats reproduces the appendix's AFF statistics: for insertion
// batches, |AFF1| vs |AFF2| and the fraction of AFF1 that touches the
// match at all.
func AffStats(cfg Config) *Table {
	cfg = cfg.withDefaults()
	g := youtube(cfg)
	ps := dagPatternBatch(cfg, g, 1, 4, 4, 3)
	t := &Table{
		ID:      "aff",
		Title:   "Appendix: affected-area statistics for insertion batches",
		Columns: []string{"|delta|", "|AFF1|", "|AFF2|", "AFF2/AFF1"},
	}
	if len(ps) == 0 {
		t.Note("no DAG pattern could be generated")
		return t
	}
	p := ps[0]
	for _, raw := range []int{200, 800, 1600} {
		size := scaleDelta(cfg, raw)
		gInc := g.Clone()
		dm := incremental.NewDynMatrix(gInc)
		m, err := incremental.NewMatcher(p, dm)
		if err != nil {
			t.Note("%v", err)
			return t
		}
		ups := generator.Updates(generator.UpdatesConfig{Insertions: size, Seed: cfg.Seed + int64(raw)}, gInc)
		dlt, err := m.Apply(ups)
		if err != nil {
			t.Note("size %d: %v", size, err)
			continue
		}
		ratio := "-"
		if dlt.Aff1 > 0 {
			ratio = fmt.Sprintf("%.4f", float64(dlt.Aff2)/float64(dlt.Aff1))
		}
		t.AddRow(fmt.Sprintf("%d", size), fmt.Sprintf("%d", dlt.Aff1), fmt.Sprintf("%d", dlt.Aff2), ratio)
	}
	t.Note("paper: |AFF2| is far smaller than |AFF1| — under 1%% of distance changes touch the match")
	return t
}
