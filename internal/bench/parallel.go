package bench

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"

	"gpm"
)

// relChecksum folds every (pattern node, data node) pair of a batch's
// relations into one FNV-1a hash, so two rows of the speedup table can
// prove they computed bit-identical matches.
func relChecksum(results []*gpm.MatchResult) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, res := range results {
		for u := 0; u < res.Pattern().N(); u++ {
			for _, x := range res.Mat(u) {
				buf[0] = byte(u)
				buf[1] = byte(x)
				buf[2] = byte(x >> 8)
				buf[3] = byte(x >> 16)
				h.Write(buf[:])
			}
		}
	}
	return h.Sum64()
}

// ParallelSpeedup measures Match throughput of the parallel matching
// core against worker count on the engine-throughput workload (the
// YouTube stand-in served by one engine per row): `MatchBatch` fans the
// pattern batch across WithWorkers(w) goroutines over the shared cached
// oracle. The relation checksum column proves every worker count
// computes bit-identical results; WithWorkers(1) is the sequential
// baseline the speedups are relative to.
func ParallelSpeedup(cfg Config) *Table {
	cfg = cfg.withDefaults()
	g := youtube(cfg)
	ps := patternBatch(cfg, g, cfg.Patterns*8, 4, 4, 3)

	t := &Table{
		ID: "parallel",
		Title: fmt.Sprintf("Parallel Match speedup on YouTube stand-in (|V|=%d, |E|=%d, %d patterns/batch)",
			g.N(), g.M(), len(ps)),
		Columns: []string{"workers", "queries", "elapsed (ms)", "queries/s", "speedup", "relation checksum"},
	}
	const rounds = 2
	var baseline time.Duration
	var wantSum uint64
	for _, w := range []int{1, 2, 4, 8} {
		eng := gpm.NewEngine(g, gpm.WithWorkers(w), gpm.WithAutoOracle())
		// Pay the lazy oracle build before timing.
		if _, err := eng.Match(context.Background(), ps[0]); err != nil {
			panic(err)
		}
		var sum uint64
		start := time.Now()
		for r := 0; r < rounds; r++ {
			results, err := eng.MatchBatch(context.Background(), ps)
			if err != nil {
				panic(err)
			}
			sum = relChecksum(results)
		}
		elapsed := time.Since(start)
		if w == 1 {
			baseline = elapsed
			wantSum = sum
		} else if sum != wantSum {
			panic(fmt.Sprintf("bench: parallel-speedup checksum diverged at %d workers: %x vs %x", w, sum, wantSum))
		}
		queries := rounds * len(ps)
		qps := float64(queries) / elapsed.Seconds()
		t.AddRow(fmt.Sprintf("%d", w), fmt.Sprintf("%d", queries), ms(elapsed),
			f2(qps), f2(baseline.Seconds()/elapsed.Seconds()), fmt.Sprintf("%016x", sum))
		cfg.logf("parallel: %d workers done", w)
	}
	t.Note("identical checksums across rows: the parallel fixpoint is result-equivalent to WithWorkers(1)")
	t.Note("speedup is relative to the sequential WithWorkers(1) row; it saturates at the machine's core count")
	return t
}
