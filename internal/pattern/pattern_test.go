package pattern

import (
	"strings"
	"testing"

	"gpm/internal/value"
)

func TestAddNodeEdge(t *testing.T) {
	p := New()
	a := p.AddNode(Label("A"))
	b := p.AddNode(Label("B"))
	if a != 0 || b != 1 || p.N() != 2 {
		t.Fatalf("node ids %d %d N=%d", a, b, p.N())
	}
	id, err := p.AddEdge(a, b, 3)
	if err != nil || id != 0 {
		t.Fatalf("AddEdge: %d, %v", id, err)
	}
	if p.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d", p.EdgeCount())
	}
	e := p.EdgeAt(0)
	if e.From != a || e.To != b || e.Bound != 3 {
		t.Errorf("edge = %+v", e)
	}
	if !p.HasEdge(a, b) || p.HasEdge(b, a) {
		t.Error("HasEdge wrong")
	}
	if len(p.Out(a)) != 1 || len(p.In(b)) != 1 || p.OutDegree(b) != 0 {
		t.Error("adjacency wrong")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	p := New()
	p.AddNode(nil)
	p.AddNode(nil)
	if _, err := p.AddEdge(0, 5, 1); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := p.AddEdge(0, 1, 0); err == nil {
		t.Error("bound 0 accepted")
	}
	if _, err := p.AddEdge(0, 1, -3); err == nil {
		t.Error("bound -3 accepted")
	}
	if _, err := p.AddEdge(0, 1, Unbounded); err != nil {
		t.Errorf("unbounded edge rejected: %v", err)
	}
	if _, err := p.AddEdge(0, 1, 2); err == nil {
		t.Error("duplicate edge accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddEdge should panic on error")
		}
	}()
	p.MustAddEdge(0, 9, 1)
}

func TestPredicateMatch(t *testing.T) {
	pred := Predicate{
		{Attr: "category", Op: value.OpEQ, Val: value.Str("Music")},
		{Attr: "rate", Op: value.OpGT, Val: value.Float(3)},
	}
	yes := value.Tuple{"category": value.Str("Music"), "rate": value.Float(4.5)}
	no1 := value.Tuple{"category": value.Str("Comedy"), "rate": value.Float(4.5)}
	no2 := value.Tuple{"category": value.Str("Music"), "rate": value.Float(2)}
	no3 := value.Tuple{"rate": value.Float(4.5)} // attribute absent
	if !pred.Match(yes) {
		t.Error("should match yes")
	}
	for i, tp := range []value.Tuple{no1, no2, no3} {
		if pred.Match(tp) {
			t.Errorf("should not match no%d", i+1)
		}
	}
	if !(Predicate{}).Match(nil) {
		t.Error("empty predicate should match everything")
	}
}

func TestLabelPredicate(t *testing.T) {
	p := Label("CS")
	if !p.Match(value.Tuple{"label": value.Str("CS")}) {
		t.Error("label match failed")
	}
	if p.Match(value.Tuple{"label": value.Str("Bio")}) {
		t.Error("label mismatch matched")
	}
}

func TestTopoOrderAndDAG(t *testing.T) {
	p := New()
	for i := 0; i < 4; i++ {
		p.AddNode(nil)
	}
	p.MustAddEdge(0, 1, 1)
	p.MustAddEdge(0, 2, 2)
	p.MustAddEdge(1, 3, 1)
	p.MustAddEdge(2, 3, Unbounded)
	if !p.IsDAG() {
		t.Fatal("diamond should be a DAG")
	}
	order, ok := p.TopoOrder()
	if !ok || len(order) != 4 {
		t.Fatalf("topo order %v %v", order, ok)
	}
	pos := make([]int, 4)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range p.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %v violates topo order", e)
		}
	}
	p.MustAddEdge(3, 0, 1) // close the cycle
	if p.IsDAG() {
		t.Error("cyclic pattern reported as DAG")
	}
	if _, ok := p.TopoOrder(); ok {
		t.Error("TopoOrder on cyclic pattern")
	}
}

func TestBoundsHelpers(t *testing.T) {
	p := New()
	p.AddNode(nil)
	p.AddNode(nil)
	p.AddNode(nil)
	p.MustAddEdge(0, 1, 3)
	p.MustAddEdge(1, 2, Unbounded)
	max, unb := p.MaxBound()
	if max != 3 || !unb {
		t.Errorf("MaxBound = %d,%v", max, unb)
	}
	if p.AllBoundsOne() {
		t.Error("AllBoundsOne = true")
	}
	q := New()
	q.AddNode(nil)
	q.AddNode(nil)
	q.MustAddEdge(0, 1, 1)
	if !q.AllBoundsOne() {
		t.Error("AllBoundsOne = false for bound-1 pattern")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New()
	p.AddNode(Label("A"))
	p.AddNode(Label("B"))
	p.MustAddEdge(0, 1, 2)
	c := p.Clone()
	c.AddNode(Label("C"))
	c.MustAddEdge(1, 2, 1)
	if p.N() != 2 || p.EdgeCount() != 1 {
		t.Error("clone mutated original")
	}
	if c.N() != 3 || c.EdgeCount() != 2 {
		t.Error("clone incomplete")
	}
}

func TestValidate(t *testing.T) {
	p := New()
	if p.Validate() == nil {
		t.Error("empty pattern should not validate")
	}
	p.AddNode(nil)
	if err := p.Validate(); err != nil {
		t.Errorf("single node: %v", err)
	}
}

func TestColoredEdges(t *testing.T) {
	p := New()
	p.AddNode(nil)
	p.AddNode(nil)
	if _, err := p.AddColoredEdge(0, 1, 2, "friend"); err != nil {
		t.Fatal(err)
	}
	if !p.Colored() {
		t.Error("Colored = false")
	}
	if e := p.EdgeAt(0); e.Color != "friend" {
		t.Errorf("color = %q", e.Color)
	}
	if !strings.Contains(p.EdgeAt(0).String(), "friend") {
		t.Error("edge String misses color")
	}
}

func TestParsePredicate(t *testing.T) {
	cases := []struct {
		in   string
		want string // re-rendered form; "" means parse error expected
	}{
		{"*", "*"},
		{"", "*"},
		{"CS", "label = CS"},
		{"label = CS", "label = CS"},
		{`category = "Travel & Places"`, `category = "Travel & Places"`},
		{"age < 500 && category = Music", "age < 500 && category = Music"},
		{"rate > 4.5", "rate > 4.5"},
		{"views >= 700 && comments != 16", "views >= 700 && comments != 16"},
		{"x <= 3 && y >= 2 && z <> 9", "x <= 3 && y >= 2 && z != 9"},
		{"a == 1", "a = 1"},
		{"bad attr = 1", ""},
		{"= 5", ""},
		{"x <", ""},
		{"x ! 5", ""},
		{"&&", ""},
		{"a = 1 &&", ""},
	}
	for _, c := range cases {
		p, err := ParsePredicate(c.in)
		if c.want == "" {
			if err == nil {
				t.Errorf("ParsePredicate(%q) should fail, got %q", c.in, p.String())
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePredicate(%q): %v", c.in, err)
			continue
		}
		if got := p.String(); got != c.want {
			t.Errorf("ParsePredicate(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParsePredicateRoundTrip(t *testing.T) {
	preds := []Predicate{
		{},
		Label("AM"),
		{{Attr: "age", Op: value.OpLT, Val: value.Int(500)}, {Attr: "cat", Op: value.OpEQ, Val: value.Str("People")}},
		{{Attr: "rate", Op: value.OpGE, Val: value.Float(4.5)}},
	}
	for _, p := range preds {
		q, err := ParsePredicate(p.String())
		if err != nil {
			t.Fatalf("round trip %q: %v", p.String(), err)
		}
		if q.String() != p.String() {
			t.Errorf("round trip %q -> %q", p.String(), q.String())
		}
	}
}

func TestParseBound(t *testing.T) {
	if b, err := ParseBound("*"); err != nil || b != Unbounded {
		t.Errorf("ParseBound(*) = %d,%v", b, err)
	}
	if b, err := ParseBound("7"); err != nil || b != 7 {
		t.Errorf("ParseBound(7) = %d,%v", b, err)
	}
	for _, s := range []string{"0", "-1", "x", ""} {
		if _, err := ParseBound(s); err == nil {
			t.Errorf("ParseBound(%q) should fail", s)
		}
	}
	if FormatBound(Unbounded) != "*" || FormatBound(4) != "4" {
		t.Error("FormatBound wrong")
	}
}

func TestPatternString(t *testing.T) {
	p := New()
	p.AddNode(Label("B"))
	p.AddNode(Label("AM"))
	p.MustAddEdge(0, 1, 1)
	s := p.String()
	if !strings.Contains(s, "label = B") || !strings.Contains(s, "0->1[1]") {
		t.Errorf("String() = %q", s)
	}
}

func TestRangeEdges(t *testing.T) {
	p := New()
	p.AddNode(nil)
	p.AddNode(nil)
	if _, err := p.AddRangeEdge(0, 1, 2, 5, ""); err != nil {
		t.Fatal(err)
	}
	e := p.EdgeAt(0)
	if !e.Ranged() || e.MinBound != 2 || e.Bound != 5 {
		t.Errorf("edge = %+v", e)
	}
	if !p.Ranged() {
		t.Error("Ranged() = false")
	}
	if e.String() != "0->1[2..5]" {
		t.Errorf("String = %q", e.String())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	c := p.Clone()
	if !c.EdgeAt(0).Ranged() || c.EdgeAt(0).MinBound != 2 {
		t.Error("Clone dropped the range")
	}
	// Invalid ranges.
	q := New()
	q.AddNode(nil)
	q.AddNode(nil)
	for _, bad := range [][2]int{{1, 5}, {0, 5}, {3, 2}, {2, MaxRangeBound + 1}} {
		if _, err := q.AddRangeEdge(0, 1, bad[0], bad[1], ""); err == nil {
			t.Errorf("range %v accepted", bad)
		}
	}
	if _, err := q.AddRangeEdge(0, 1, 2, Unbounded, ""); err == nil {
		t.Error("unbounded upper range accepted")
	}
}

func TestParseBoundRange(t *testing.T) {
	cases := []struct {
		in     string
		lo, hi int
		ok     bool
	}{
		{"*", 0, Unbounded, true},
		{"4", 0, 4, true},
		{"2..5", 2, 5, true},
		{"2..2", 2, 2, true},
		{"1..5", 0, 0, false},  // lo must be >= 2
		{"5..2", 0, 0, false},  // inverted
		{"2..*", 0, 0, false},  // open upper end not allowed
		{"2..99", 0, 0, false}, // beyond MaxRangeBound
		{"a..b", 0, 0, false},
	}
	for _, c := range cases {
		lo, hi, err := ParseBoundRange(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseBoundRange(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && (lo != c.lo || hi != c.hi) {
			t.Errorf("ParseBoundRange(%q) = %d,%d want %d,%d", c.in, lo, hi, c.lo, c.hi)
		}
	}
	p := New()
	p.AddNode(nil)
	p.AddNode(nil)
	p.AddRangeEdge(0, 1, 3, 7, "")
	if got := FormatEdgeBound(p.EdgeAt(0)); got != "3..7" {
		t.Errorf("FormatEdgeBound = %q", got)
	}
}
