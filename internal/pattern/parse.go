package pattern

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"gpm/internal/value"
)

// ParsePredicate parses the surface syntax of fv(u): a conjunction
// "attr op value && attr op value && ...", where op is one of
// < <= = == != <> > >=, values are integers, floats, bare words or
// double-quoted strings, and "*" (or the empty string) is the wildcard.
//
// As a shorthand, a conjunct that is a bare word W is label equality
// "label = W", so "CS" parses as the traditional labeled node.
func ParsePredicate(s string) (Predicate, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "*" {
		return Predicate{}, nil
	}
	var pred Predicate
	for _, part := range splitConjuncts(s) {
		atom, err := parseAtom(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		pred = append(pred, atom)
	}
	return pred, nil
}

// splitConjuncts splits on && outside of double quotes. Inside quotes a
// backslash escapes the next character, matching the strconv.Quote
// escaping Predicate.String emits, so string constants containing quotes
// or && round-trip.
func splitConjuncts(s string) []string {
	var parts []string
	inQuote := false
	escaped := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch {
		case escaped:
			escaped = false
		case inQuote && s[i] == '\\':
			escaped = true
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '&' && i+1 < len(s) && s[i+1] == '&':
			parts = append(parts, s[start:i])
			i++
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

func parseAtom(s string) (Atom, error) {
	if s == "" {
		return Atom{}, fmt.Errorf("pattern: empty conjunct")
	}
	// Find the operator: the first of < > = ! outside quotes
	// (backslash-escapes inside quotes are skipped, as in splitConjuncts).
	inQuote := false
	escaped := false
	opStart := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		if escaped {
			escaped = false
			continue
		}
		if inQuote && c == '\\' {
			escaped = true
			continue
		}
		if c == '"' {
			inQuote = !inQuote
		}
		if inQuote {
			continue
		}
		if c == '<' || c == '>' || c == '=' || c == '!' || c == 0xE2 /* ≤ ≥ ≠ first byte */ {
			opStart = i
			break
		}
	}
	if opStart < 0 {
		// Bare word: label shorthand.
		w := strings.TrimSpace(s)
		if !isIdent(w) {
			return Atom{}, fmt.Errorf("pattern: cannot parse conjunct %q", s)
		}
		return Atom{Attr: "label", Op: value.OpEQ, Val: value.Str(w)}, nil
	}
	opEnd := opStart + 1
	if s[opStart] == 0xE2 && opStart+3 <= len(s) {
		opEnd = opStart + 3 // UTF-8 ≤ ≥ ≠ are three bytes
	} else if opEnd < len(s) && (s[opEnd] == '=' || s[opEnd] == '>') {
		opEnd++
	}
	attr := strings.TrimSpace(s[:opStart])
	opStr := s[opStart:opEnd]
	valStr := strings.TrimSpace(s[opEnd:])
	if attr == "" {
		return Atom{}, fmt.Errorf("pattern: missing attribute in %q", s)
	}
	if !isIdent(attr) {
		return Atom{}, fmt.Errorf("pattern: bad attribute name %q", attr)
	}
	op, err := value.ParseOp(opStr)
	if err != nil {
		return Atom{}, fmt.Errorf("pattern: %q: %v", s, err)
	}
	if valStr == "" {
		return Atom{}, fmt.Errorf("pattern: missing value in %q", s)
	}
	return Atom{Attr: attr, Op: op, Val: value.Parse(valStr)}, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case unicode.IsLetter(r) || r == '_':
		case i > 0 && (unicode.IsDigit(r) || r == '.' || r == '-'):
		default:
			return false
		}
	}
	return true
}

// ParseBound parses an edge-bound token: "*" or a positive integer.
func ParseBound(s string) (int, error) {
	if s == "*" {
		return Unbounded, nil
	}
	k, err := strconv.Atoi(s)
	if err != nil || k < 1 {
		return 0, fmt.Errorf("pattern: bad bound %q (want positive integer or *)", s)
	}
	return k, nil
}

// ParseBoundRange parses the full bound syntax: "*", "k", or the range
// form "lo..hi". Plain forms return lo = 0.
func ParseBoundRange(s string) (lo, hi int, err error) {
	if i := strings.Index(s, ".."); i >= 0 {
		lo, err = strconv.Atoi(s[:i])
		if err != nil || lo < 2 {
			return 0, 0, fmt.Errorf("pattern: bad range lower bound in %q (want integer >= 2)", s)
		}
		hi, err = strconv.Atoi(s[i+2:])
		if err != nil || hi < lo || hi > MaxRangeBound {
			return 0, 0, fmt.Errorf("pattern: bad range upper bound in %q (want integer in [%d,%d])", s, lo, MaxRangeBound)
		}
		return lo, hi, nil
	}
	hi, err = ParseBound(s)
	return 0, hi, err
}

// FormatBound renders a plain bound in surface syntax.
func FormatBound(b int) string {
	if b == Unbounded {
		return "*"
	}
	return strconv.Itoa(b)
}

// FormatEdgeBound renders an edge's bound, including the range form.
func FormatEdgeBound(e Edge) string {
	if e.Ranged() {
		return fmt.Sprintf("%d..%d", e.MinBound, e.Bound)
	}
	return FormatBound(e.Bound)
}
