// Package pattern implements the pattern graphs P = (Vp, Ep, fv, fe) of
// the paper (§2.1): nodes carry predicates — conjunctions of atomic
// formulas "A op a" — and edges carry a bound, either a positive integer k
// ("within k hops") or Unbounded ("*", any positive number of hops).
// Edges may additionally demand a relationship color (the §6 extension).
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"gpm/internal/value"
)

// Unbounded is the edge bound written "*": connectivity by a nonempty path
// of any length.
const Unbounded = -1

// Atom is one atomic formula "Attr Op Val" of a predicate.
type Atom struct {
	Attr string
	Op   value.Op
	Val  value.Value
}

// String renders the atom in its surface syntax.
func (a Atom) String() string {
	return fmt.Sprintf("%s %s %s", a.Attr, a.Op, a.Val)
}

// Eval reports whether the attribute tuple satisfies the atom: the
// attribute must be present and compare true (paper §2.2 condition 1).
func (a Atom) Eval(t value.Tuple) bool {
	v, ok := t[a.Attr]
	if !ok {
		return false
	}
	return a.Op.Apply(v, a.Val)
}

// Predicate is the conjunction fv(u). The empty predicate is true
// everywhere (a wildcard node).
type Predicate []Atom

// Label returns a predicate matching nodes whose "label" attribute equals
// name — the traditional labeled-pattern special case.
func Label(name string) Predicate {
	return Predicate{{Attr: "label", Op: value.OpEQ, Val: value.Str(name)}}
}

// Match reports whether the tuple satisfies every atom.
func (p Predicate) Match(t value.Tuple) bool {
	for _, a := range p {
		if !a.Eval(t) {
			return false
		}
	}
	return true
}

// String renders the predicate as "a1 && a2 && ...", or "*" when empty.
func (p Predicate) String() string {
	if len(p) == 0 {
		return "*"
	}
	parts := make([]string, len(p))
	for i, a := range p {
		parts[i] = a.String()
	}
	return strings.Join(parts, " && ")
}

// MaxRangeBound is the largest finite upper bound permitted on a ranged
// edge (the walk-length prober packs lengths into a 64-bit mask).
const MaxRangeBound = 63

// Edge is a pattern edge with its bound fe and optional color. MinBound
// implements the paper's §6 "ranges on hops" extension: when positive,
// the edge demands a witness *walk* of length in [MinBound, Bound]
// (Bound must then be finite and at most MaxRangeBound). MinBound 0 is
// the plain paper semantics: any nonempty path of length <= Bound.
type Edge struct {
	From, To int
	Bound    int // >= 1, or Unbounded
	MinBound int // 0 (none) or >= 2, requires finite Bound
	Color    string
}

// Ranged reports whether the edge carries a lower hop bound.
func (e Edge) Ranged() bool { return e.MinBound > 0 }

// String renders the edge as "from -> to [bound]" or "[lo..hi]".
func (e Edge) String() string {
	b := "*"
	if e.Bound != Unbounded {
		b = fmt.Sprintf("%d", e.Bound)
	}
	if e.Ranged() {
		b = fmt.Sprintf("%d..%s", e.MinBound, b)
	}
	if e.Color != "" {
		return fmt.Sprintf("%d->%d[%s,%s]", e.From, e.To, b, e.Color)
	}
	return fmt.Sprintf("%d->%d[%s]", e.From, e.To, b)
}

// Pattern is a pattern graph. Nodes are dense ids 0..N()-1; edges are
// identified by dense indices 0..EdgeCount()-1 so algorithms can attach
// per-edge state in flat slices.
type Pattern struct {
	preds []Predicate
	edges []Edge
	out   [][]int32 // edge ids leaving each node
	in    [][]int32 // edge ids entering each node
	dup   map[uint64]struct{}
}

// New returns an empty pattern.
func New() *Pattern {
	return &Pattern{dup: make(map[uint64]struct{})}
}

// AddNode appends a node with predicate p and returns its id.
func (pt *Pattern) AddNode(p Predicate) int {
	pt.preds = append(pt.preds, p)
	pt.out = append(pt.out, nil)
	pt.in = append(pt.in, nil)
	return len(pt.preds) - 1
}

// AddEdge inserts a bounded edge and returns its edge id. bound must be a
// positive hop count or Unbounded.
func (pt *Pattern) AddEdge(from, to, bound int) (int, error) {
	return pt.AddColoredEdge(from, to, bound, "")
}

// AddColoredEdge is AddEdge with a required relationship color.
func (pt *Pattern) AddColoredEdge(from, to, bound int, color string) (int, error) {
	return pt.addEdge(Edge{From: from, To: to, Bound: bound, Color: color})
}

// AddRangeEdge inserts an edge demanding a witness walk of length within
// [lo, hi] — the §6 "ranges on hops" extension. lo must be at least 2
// (lo <= 1 is the plain semantics: use AddEdge) and hi finite, between lo
// and MaxRangeBound.
func (pt *Pattern) AddRangeEdge(from, to, lo, hi int, color string) (int, error) {
	if lo < 2 {
		return 0, fmt.Errorf("pattern: range edge (%d,%d) lower bound %d must be >= 2 (use AddEdge for plain bounds)", from, to, lo)
	}
	if hi == Unbounded || hi < lo || hi > MaxRangeBound {
		return 0, fmt.Errorf("pattern: range edge (%d,%d) upper bound must be finite, within [%d,%d]", from, to, lo, MaxRangeBound)
	}
	return pt.addEdge(Edge{From: from, To: to, Bound: hi, MinBound: lo, Color: color})
}

func (pt *Pattern) addEdge(e Edge) (int, error) {
	if e.From < 0 || e.From >= len(pt.preds) || e.To < 0 || e.To >= len(pt.preds) {
		return 0, fmt.Errorf("pattern: edge (%d,%d) out of range [0,%d)", e.From, e.To, len(pt.preds))
	}
	if e.Bound != Unbounded && e.Bound < 1 {
		return 0, fmt.Errorf("pattern: edge (%d,%d) bound %d must be >= 1 or Unbounded", e.From, e.To, e.Bound)
	}
	k := uint64(uint32(e.From))<<32 | uint64(uint32(e.To))
	if _, ok := pt.dup[k]; ok {
		return 0, fmt.Errorf("pattern: duplicate edge (%d,%d)", e.From, e.To)
	}
	pt.dup[k] = struct{}{}
	id := len(pt.edges)
	pt.edges = append(pt.edges, e)
	pt.out[e.From] = append(pt.out[e.From], int32(id))
	pt.in[e.To] = append(pt.in[e.To], int32(id))
	return id, nil
}

// Ranged reports whether any edge carries a lower hop bound.
func (pt *Pattern) Ranged() bool {
	for _, e := range pt.edges {
		if e.Ranged() {
			return true
		}
	}
	return false
}

// MustAddEdge is AddEdge that panics on error, for fixtures and tests.
func (pt *Pattern) MustAddEdge(from, to, bound int) int {
	id, err := pt.AddEdge(from, to, bound)
	if err != nil {
		panic(err)
	}
	return id
}

// N returns the number of pattern nodes.
func (pt *Pattern) N() int { return len(pt.preds) }

// EdgeCount returns the number of pattern edges.
func (pt *Pattern) EdgeCount() int { return len(pt.edges) }

// Pred returns the predicate of node u.
func (pt *Pattern) Pred(u int) Predicate { return pt.preds[u] }

// SetPred replaces the predicate of node u; loaders use it to fill in
// predicates after the node set is allocated.
func (pt *Pattern) SetPred(u int, p Predicate) { pt.preds[u] = p }

// EdgeAt returns edge data by edge id.
func (pt *Pattern) EdgeAt(id int) Edge { return pt.edges[id] }

// Out returns the ids of edges leaving u (graph-owned slice).
func (pt *Pattern) Out(u int) []int32 { return pt.out[u] }

// In returns the ids of edges entering u (graph-owned slice).
func (pt *Pattern) In(u int) []int32 { return pt.in[u] }

// OutDegree returns the number of edges leaving u.
func (pt *Pattern) OutDegree(u int) int { return len(pt.out[u]) }

// Edges returns a copy of the edge list.
func (pt *Pattern) Edges() []Edge { return append([]Edge(nil), pt.edges...) }

// HasEdge reports whether the pattern contains edge (from, to).
func (pt *Pattern) HasEdge(from, to int) bool {
	_, ok := pt.dup[uint64(uint32(from))<<32|uint64(uint32(to))]
	return ok
}

// Colored reports whether any edge demands a color.
func (pt *Pattern) Colored() bool {
	for _, e := range pt.edges {
		if e.Color != "" {
			return true
		}
	}
	return false
}

// MaxBound returns the largest finite bound, and whether any edge is
// unbounded.
func (pt *Pattern) MaxBound() (max int, hasUnbounded bool) {
	for _, e := range pt.edges {
		if e.Bound == Unbounded {
			hasUnbounded = true
		} else if e.Bound > max {
			max = e.Bound
		}
	}
	return max, hasUnbounded
}

// AllBoundsOne reports whether every edge has bound exactly 1, i.e. the
// pattern lies in the plain graph-simulation fragment (§2.2 remark 2).
func (pt *Pattern) AllBoundsOne() bool {
	for _, e := range pt.edges {
		if e.Bound != 1 {
			return false
		}
	}
	return true
}

// IsDAG reports whether the pattern is acyclic — the class for which the
// incremental algorithms carry the §4 performance guarantee.
func (pt *Pattern) IsDAG() bool {
	_, ok := pt.TopoOrder()
	return ok
}

// TopoOrder returns a topological order of the pattern nodes (Kahn), with
// ok=false when the pattern is cyclic.
func (pt *Pattern) TopoOrder() ([]int, bool) {
	n := pt.N()
	indeg := make([]int, n)
	for _, e := range pt.edges {
		indeg[e.To]++
	}
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, eid := range pt.out[v] {
			w := pt.edges[eid].To
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, false
	}
	return order, true
}

// Validate checks structural consistency; loaders call it on untrusted
// input.
func (pt *Pattern) Validate() error {
	if pt.N() == 0 {
		return fmt.Errorf("pattern: no nodes")
	}
	for i, e := range pt.edges {
		if e.From < 0 || e.From >= pt.N() || e.To < 0 || e.To >= pt.N() {
			return fmt.Errorf("pattern: edge %d (%d,%d) out of range", i, e.From, e.To)
		}
		if e.Bound != Unbounded && e.Bound < 1 {
			return fmt.Errorf("pattern: edge %d has bound %d", i, e.Bound)
		}
		if e.Ranged() && (e.MinBound < 2 || e.Bound == Unbounded || e.Bound < e.MinBound || e.Bound > MaxRangeBound) {
			return fmt.Errorf("pattern: edge %d has invalid range %d..%d", i, e.MinBound, e.Bound)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (pt *Pattern) Clone() *Pattern {
	c := New()
	for _, p := range pt.preds {
		c.AddNode(append(Predicate(nil), p...))
	}
	for _, e := range pt.edges {
		if _, err := c.addEdge(e); err != nil {
			panic(err) // cannot happen: source pattern was consistent
		}
	}
	return c
}

// String renders a compact multi-line description.
func (pt *Pattern) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pattern{nodes: %d, edges: %d}\n", pt.N(), pt.EdgeCount())
	for u := 0; u < pt.N(); u++ {
		fmt.Fprintf(&b, "  %d: %s\n", u, pt.preds[u])
	}
	es := pt.Edges()
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].To < es[j].To
	})
	for _, e := range es {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}
