package pattern

import "testing"

// FuzzParsePattern fuzzes the two surface parsers of the pattern syntax:
// node predicates (ParsePredicate) and edge bounds (ParseBoundRange).
// Beyond not panicking, accepted inputs must satisfy the parser's
// documented invariants and predicates must round-trip through String.
func FuzzParsePattern(f *testing.F) {
	predSeeds := []string{
		"", "*", "CS",
		`label = "db systems" && w <= 5`,
		"a != 3 && b >= 2.5",
		"x < 1", "label <> foo", "n ≤ 10", "m ≥ 0 && m ≠ 7",
		`q = "quoted && not split"`, "bad attr =", "= 3", "a == b == c",
	}
	boundSeeds := []string{"1", "*", "2..5", "0", "-1", "3..63", "2..64", "..", "5..2", "x"}
	for i, p := range predSeeds {
		f.Add(p, boundSeeds[i%len(boundSeeds)])
	}
	f.Fuzz(func(t *testing.T, predStr, boundStr string) {
		pred, err := ParsePredicate(predStr)
		if err == nil {
			// Round-trip: the rendered form must reparse to a predicate
			// that renders identically (String is the canonical form).
			s := pred.String()
			pred2, err2 := ParsePredicate(s)
			if err2 != nil {
				t.Fatalf("ParsePredicate(%q) ok but rendered form %q rejected: %v", predStr, s, err2)
			}
			if s2 := pred2.String(); s2 != s {
				t.Fatalf("round-trip not stable: %q -> %q -> %q", predStr, s, s2)
			}
		}

		lo, hi, err := ParseBoundRange(boundStr)
		if err == nil {
			switch {
			case lo == 0 && hi == Unbounded: // "*"
			case lo == 0 && hi >= 1: // plain bound
			case lo >= 2 && hi >= lo && hi <= MaxRangeBound: // range form
			default:
				t.Fatalf("ParseBoundRange(%q) accepted invalid (lo=%d, hi=%d)", boundStr, lo, hi)
			}
		}
	})
}
