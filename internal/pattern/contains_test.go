package pattern

import (
	"fmt"
	"math/rand"
	"testing"

	"gpm/internal/value"
)

// atomPool is a small universe of atoms whose implication structure is
// nontrivial (equalities, intervals, disequalities, mixed kinds).
var atomPool = []Atom{
	{Attr: "label", Op: value.OpEQ, Val: value.Str("A")},
	{Attr: "label", Op: value.OpEQ, Val: value.Str("B")},
	{Attr: "label", Op: value.OpNE, Val: value.Str("B")},
	{Attr: "age", Op: value.OpGE, Val: value.Int(10)},
	{Attr: "age", Op: value.OpGT, Val: value.Int(10)},
	{Attr: "age", Op: value.OpLT, Val: value.Int(30)},
	{Attr: "age", Op: value.OpLE, Val: value.Int(20)},
	{Attr: "age", Op: value.OpEQ, Val: value.Int(15)},
	{Attr: "age", Op: value.OpNE, Val: value.Int(15)},
	{Attr: "score", Op: value.OpGE, Val: value.Float(0.5)},
	{Attr: "score", Op: value.OpLT, Val: value.Float(2.5)},
	{Attr: "score", Op: value.OpEQ, Val: value.Float(1)},
}

// sampleValues covers the pool's boundary values, both sides of each
// bound, and an incomparable kind per attribute.
var sampleValues = map[string][]value.Value{
	"label": {value.Str("A"), value.Str("B"), value.Str("C"), value.Int(3)},
	"age":   {value.Int(9), value.Int(10), value.Int(11), value.Int(15), value.Int(20), value.Int(21), value.Int(30), value.Float(10.5), value.Str("x")},
	"score": {value.Float(0.4), value.Float(0.5), value.Float(1), value.Float(2.5), value.Int(1), value.Str("y")},
}

func randPredicate(r *rand.Rand) Predicate {
	var p Predicate
	for _, a := range atomPool {
		if r.Intn(6) == 0 {
			p = append(p, a)
		}
	}
	return p
}

func randEdgeBound(r *rand.Rand, e *Edge) {
	switch r.Intn(6) {
	case 0:
		e.Bound = Unbounded
	case 1:
		e.MinBound, e.Bound = 2, 2+r.Intn(4)
	default:
		e.Bound = 1 + r.Intn(3)
	}
	if r.Intn(3) == 0 {
		e.Color = []string{"f", "g"}[r.Intn(2)]
	}
}

func randPattern(r *rand.Rand, maxNodes int) *Pattern {
	p := New()
	n := 1 + r.Intn(maxNodes)
	for i := 0; i < n; i++ {
		p.AddNode(randPredicate(r))
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || r.Intn(3) != 0 {
				continue
			}
			e := Edge{From: u, To: v, Bound: 1}
			randEdgeBound(r, &e)
			if _, err := p.addEdge(e); err != nil {
				panic(err)
			}
		}
	}
	return p
}

// strengthen returns a pattern q with Contains(p, q) guaranteed by the
// identity witness: same nodes with conjuncts added, same edges with
// bounds tightened (and possibly colors added to uncolored edges), plus
// optional extra edges.
func strengthen(r *rand.Rand, p *Pattern) *Pattern {
	q := New()
	for u := 0; u < p.N(); u++ {
		pred := append(Predicate(nil), p.Pred(u)...)
		if r.Intn(2) == 0 {
			pred = append(pred, atomPool[r.Intn(len(atomPool))])
		}
		q.AddNode(pred)
	}
	for _, e := range p.Edges() {
		switch {
		case e.Ranged():
			// Narrow the window (keep MinBound valid: >= 2).
			if e.Bound > e.MinBound && r.Intn(2) == 0 {
				e.Bound--
			}
		case e.Bound == Unbounded:
			if r.Intn(2) == 0 {
				e.Bound = 1 + r.Intn(3)
			}
		default:
			e.Bound = 1 + r.Intn(e.Bound)
		}
		if e.Color == "" && r.Intn(3) == 0 {
			e.Color = "f"
		}
		if _, err := q.addEdge(e); err != nil {
			panic(err)
		}
	}
	// Extra structure only makes q stricter.
	for tries := r.Intn(3); tries > 0; tries-- {
		u, v := r.Intn(q.N()), r.Intn(q.N())
		if u == v || q.HasEdge(u, v) {
			continue
		}
		e := Edge{From: u, To: v, Bound: 1}
		randEdgeBound(r, &e)
		if _, err := q.addEdge(e); err != nil {
			panic(err)
		}
	}
	return q
}

// naiveContainment is the brute-force reference: re-check every pair's
// conditions until nothing changes.
func naiveContainment(p, q *Pattern, mode ContainMode) ([][]int32, bool) {
	np, nq := p.N(), q.N()
	rel := make([][]bool, nq)
	for u := range rel {
		rel[u] = make([]bool, np)
		for a := 0; a < np; a++ {
			rel[u][a] = predImplies(q.Pred(u), p.Pred(a))
		}
	}
	holds := func(u, a int) bool {
		for _, peid := range p.Out(a) {
			ep := p.EdgeAt(int(peid))
			found := false
			for _, qeid := range q.Out(u) {
				eq := q.EdgeAt(int(qeid))
				if edgeServes(eq, ep) && rel[eq.To][ep.To] {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		if mode == ContainDual {
			for _, peid := range p.In(a) {
				ep := p.EdgeAt(int(peid))
				found := false
				for _, qeid := range q.In(u) {
					eq := q.EdgeAt(int(qeid))
					if edgeServes(eq, ep) && rel[eq.From][ep.From] {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < nq; u++ {
			for a := 0; a < np; a++ {
				if rel[u][a] && !holds(u, a) {
					rel[u][a] = false
					changed = true
				}
			}
		}
	}
	witness := make([][]int32, nq)
	ok := true
	for u := 0; u < nq; u++ {
		for a := 0; a < np; a++ {
			if rel[u][a] {
				witness[u] = append(witness[u], int32(a))
			}
		}
		if len(witness[u]) == 0 {
			ok = false
		}
	}
	return witness, ok
}

func witnessEqual(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for u := range a {
		if len(a[u]) != len(b[u]) {
			return false
		}
		for i := range a[u] {
			if a[u][i] != b[u][i] {
				return false
			}
		}
	}
	return true
}

// TestContainmentMatchesNaive pins the counter/worklist fixpoint against
// the brute-force reference on random pattern pairs — independent random
// ones and strengthened (guaranteed-contained) ones — in both modes.
func TestContainmentMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := randPattern(r, 4)
		var q *Pattern
		if seed%2 == 0 {
			q = strengthen(r, p)
		} else {
			q = randPattern(r, 4)
		}
		for _, mode := range []ContainMode{ContainChild, ContainDual} {
			got, gotOK := Containment(p, q, mode)
			want, wantOK := naiveContainment(p, q, mode)
			if gotOK != wantOK || !witnessEqual(got, want) {
				t.Fatalf("seed %d mode %v: witness mismatch\ngot  %v (ok=%v)\nwant %v (ok=%v)\np:\n%s\nq:\n%s",
					seed, mode, got, gotOK, want, wantOK, p, q)
			}
		}
	}
}

// TestContainmentReflexive: every pattern contains itself via the
// identity witness, in both modes.
func TestContainmentReflexive(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		p := randPattern(r, 4)
		for _, mode := range []ContainMode{ContainChild, ContainDual} {
			w, ok := Containment(p, p, mode)
			if !ok {
				t.Fatalf("seed %d mode %v: pattern does not contain itself\n%s", seed, mode, p)
			}
			for u := 0; u < p.N(); u++ {
				found := false
				for _, a := range w[u] {
					if int(a) == u {
						found = true
					}
				}
				if !found {
					t.Fatalf("seed %d mode %v: identity pair (%d,%d) missing", seed, mode, u, u)
				}
			}
		}
	}
}

// TestContainsStrengthened: strengthening must always be contained, and
// a chain of strengthenings exercises transitivity positively.
func TestContainsStrengthened(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		r := rand.New(rand.NewSource(2000 + seed))
		p := randPattern(r, 4)
		q := strengthen(r, p)
		s := strengthen(r, q)
		if !Contains(p, q) {
			t.Fatalf("seed %d: strengthened pattern not contained\np:\n%s\nq:\n%s", seed, p, q)
		}
		if !Contains(q, s) {
			t.Fatalf("seed %d: second strengthening not contained", seed)
		}
		if !Contains(p, s) {
			t.Fatalf("seed %d: containment not transitive on the chain p ⊒ q ⊒ s", seed)
		}
	}
}

// TestContainsTransitive checks the transitivity axiom on arbitrary
// random triples (most are incomparable; the axiom must still never be
// violated when the premises do hold).
func TestContainsTransitive(t *testing.T) {
	hit := 0
	for seed := int64(0); seed < 500; seed++ {
		r := rand.New(rand.NewSource(3000 + seed))
		p := randPattern(r, 3)
		q := randPattern(r, 3)
		s := randPattern(r, 3)
		if Contains(p, q) && Contains(q, s) {
			hit++
			if !Contains(p, s) {
				t.Fatalf("seed %d: Contains(p,q) && Contains(q,s) but !Contains(p,s)\np:\n%s\nq:\n%s\ns:\n%s", seed, p, q, s)
			}
		}
	}
	if hit == 0 {
		t.Error("no random triple satisfied the premises; generator too sparse")
	}
}

// TestAtomImpliesSound: whenever atomImplies claims x ⇒ y, every sampled
// value satisfying x satisfies y.
func TestAtomImpliesSound(t *testing.T) {
	for _, x := range atomPool {
		for _, y := range atomPool {
			if !atomImplies(x, y) {
				continue
			}
			for attr, vals := range sampleValues {
				for _, v := range vals {
					tup := value.Tuple{attr: v}
					if x.Eval(tup) && !y.Eval(tup) {
						t.Errorf("atomImplies(%s, %s) but %s satisfies only the premise", x, y, tup)
					}
				}
			}
		}
	}
}

// TestAtomImpliesTransitive: implication composes over the pool.
func TestAtomImpliesTransitive(t *testing.T) {
	for _, a := range atomPool {
		for _, b := range atomPool {
			if !atomImplies(a, b) {
				continue
			}
			for _, c := range atomPool {
				if atomImplies(b, c) && !atomImplies(a, c) {
					t.Errorf("chain broken: (%s ⇒ %s), (%s ⇒ %s), but not (%s ⇒ %s)", a, b, b, c, a, c)
				}
			}
		}
	}
}

// TestEdgeServes pins the bound-aware edge comparison table.
func TestEdgeServes(t *testing.T) {
	plain := func(b int) Edge { return Edge{Bound: b} }
	ranged := func(lo, hi int) Edge { return Edge{MinBound: lo, Bound: hi} }
	colored := func(b int, c string) Edge { return Edge{Bound: b, Color: c} }
	cases := []struct {
		q, p Edge
		want bool
	}{
		{plain(1), plain(1), true},
		{plain(2), plain(3), true},
		{plain(3), plain(2), false},
		{plain(2), plain(Unbounded), true},
		{plain(Unbounded), plain(Unbounded), true},
		{plain(Unbounded), plain(5), false},
		{ranged(2, 3), plain(3), true},  // walk length <= 3 implies dist <= 3
		{ranged(2, 4), plain(3), false}, // walk may be longer
		{ranged(2, 4), plain(Unbounded), true},
		{plain(1), ranged(2, 4), false}, // a 1-hop path is no [2,4] walk
		{plain(4), ranged(2, 4), false}, // path may be shorter than lo
		{ranged(2, 3), ranged(2, 4), true},
		{ranged(3, 4), ranged(2, 4), true},
		{ranged(2, 4), ranged(3, 4), false},
		{colored(1, "f"), colored(2, "f"), true},
		{colored(1, "f"), colored(2, "g"), false},
		{colored(1, "f"), plain(2), true}, // uncolored p-edge accepts any witness
		{plain(1), colored(2, "f"), false},
	}
	for i, c := range cases {
		if got := edgeServes(c.q, c.p); got != c.want {
			t.Errorf("case %d: edgeServes(%v, %v) = %v, want %v", i, c.q, c.p, got, c.want)
		}
	}
}

// TestCanonicalRelabelInvariant: canonicalisation is invariant under
// random node permutations and edge insertion orders.
func TestCanonicalRelabelInvariant(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		r := rand.New(rand.NewSource(4000 + seed))
		p := randPattern(r, 5)
		want, err := p.Canonical()
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, p)
		}
		perm := r.Perm(p.N())
		shuffled := New()
		for i := 0; i < p.N(); i++ {
			shuffled.AddNode(nil)
		}
		for u := 0; u < p.N(); u++ {
			shuffled.SetPred(perm[u], append(Predicate(nil), p.Pred(u)...))
		}
		es := p.Edges()
		r.Shuffle(len(es), func(i, j int) { es[i], es[j] = es[j], es[i] })
		for _, e := range es {
			e.From, e.To = perm[e.From], perm[e.To]
			if _, err := shuffled.addEdge(e); err != nil {
				panic(err)
			}
		}
		got, err := shuffled.Canonical()
		if err != nil {
			t.Fatalf("seed %d: relabeled canonicalisation failed: %v", seed, err)
		}
		if got.Text != want.Text || got.Digest != want.Digest {
			t.Fatalf("seed %d: canonical form not relabel-invariant\noriginal:\n%s\nrelabeled:\n%s", seed, want.Text, got.Text)
		}
	}
}

// TestCanonicalDistinguishes: structurally different patterns get
// different digests.
func TestCanonicalDistinguishes(t *testing.T) {
	mk := func(bound int, color string, label string) *Pattern {
		p := New()
		a := p.AddNode(Label(label))
		b := p.AddNode(Label("B"))
		if _, err := p.AddColoredEdge(a, b, bound, color); err != nil {
			panic(err)
		}
		return p
	}
	ps := []*Pattern{
		mk(1, "", "A"), mk(2, "", "A"), mk(Unbounded, "", "A"),
		mk(1, "f", "A"), mk(1, "", "C"),
	}
	seen := map[uint64]string{}
	for _, p := range ps {
		c, err := p.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[c.Digest]; dup {
			t.Fatalf("digest collision between distinct patterns:\n%s\n--\n%s", prev, c.Text)
		}
		seen[c.Digest] = c.Text
	}
}

// TestCanonicalCollapsesDuplicateNodes: k interchangeable nodes are
// handled by the transposition pruning, not the budget.
func TestCanonicalCollapsesDuplicateNodes(t *testing.T) {
	p := New()
	root := p.AddNode(Label("R"))
	for i := 0; i < 20; i++ {
		leaf := p.AddNode(Label("L"))
		p.MustAddEdge(root, leaf, 2)
	}
	if _, err := p.Canonical(); err != nil {
		t.Fatalf("duplicate-leaf pattern should canonicalise: %v", err)
	}
}

// TestCanonicalBudget: a pathological symmetric pattern (disjoint
// identical triangles — rotations, not transpositions) exhausts the
// budget and reports an error instead of burning unbounded CPU.
func TestCanonicalBudget(t *testing.T) {
	p := New()
	for k := 0; k < 10; k++ {
		a := p.AddNode(Label("T"))
		b := p.AddNode(Label("T"))
		c := p.AddNode(Label("T"))
		p.MustAddEdge(a, b, 1)
		p.MustAddEdge(b, c, 1)
		p.MustAddEdge(c, a, 1)
	}
	if _, err := p.Canonical(); err == nil {
		t.Skip("search finished within budget; symmetric case got cheaper")
	} else if want := "budget"; !containsStr(err.Error(), want) {
		t.Fatalf("error %q does not mention the %s", err, want)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestCanonicalTooLarge: the node cap is enforced.
func TestCanonicalTooLarge(t *testing.T) {
	p := New()
	for i := 0; i < canonMaxNodes+1; i++ {
		p.AddNode(Label(fmt.Sprintf("n%d", i)))
	}
	if _, err := p.Canonical(); err == nil {
		t.Fatal("oversized pattern canonicalised")
	}
}
