package pattern

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Canonical form: a deterministic serialisation of the pattern that is
// invariant under node renaming and edge insertion order, plus a 64-bit
// digest of it. It is the identity primitive for result caches and
// multi-query optimisation: two patterns with equal canonical text are
// isomorphic (same predicates, same bounded edges up to renaming), so a
// relation computed for one answers the other verbatim.
//
// The search is an exact lexicographic-minimisation over node orders,
// pruned by per-position "rows" (predicate key + edges back into the
// placed prefix). Each prefix extension keeps only the candidates whose
// row is minimal, so branching happens only on genuine ties; a budget
// bounds pathological symmetric patterns, and exceeding it returns an
// error — the pattern is then simply uncacheable, never mis-keyed.

// Canon is the canonical form of a pattern.
type Canon struct {
	// Text is canonical .pattern text: it parses back (gio.ReadPattern)
	// into a pattern isomorphic to the original, and canonicalising that
	// parse yields the same Text.
	Text string
	// Digest is the 64-bit FNV-1a hash of Text.
	Digest uint64
}

const (
	// canonMaxNodes bounds the pattern size Canonical accepts; realistic
	// query patterns are far smaller, and the row comparisons are
	// quadratic in the prefix length.
	canonMaxNodes = 64
	// canonBudget caps the number of search steps. Only highly symmetric
	// patterns (every node the same predicate, regular edge structure)
	// come close; they fail canonicalisation rather than burn CPU.
	canonBudget = 1 << 16
)

// Canonical computes the canonical form. It fails on invalid patterns,
// patterns larger than canonMaxNodes nodes, and patterns whose symmetry
// exhausts the search budget.
func (pt *Pattern) Canonical() (Canon, error) {
	if err := pt.Validate(); err != nil {
		return Canon{}, err
	}
	if pt.N() > canonMaxNodes {
		return Canon{}, fmt.Errorf("pattern: %d nodes exceed the canonicalisation limit %d", pt.N(), canonMaxNodes)
	}
	cs := &canonSearch{p: pt, budget: canonBudget}
	cs.init()
	cs.dfs(0, true)
	if cs.overflow {
		return Canon{}, fmt.Errorf("pattern: canonicalisation budget exceeded (highly symmetric pattern)")
	}
	text := cs.render()
	h := fnv.New64a()
	h.Write([]byte(text))
	return Canon{Text: text, Digest: h.Sum64()}, nil
}

// canonPredicate returns the predicate with atoms sorted by surface
// syntax and exact duplicates removed — the canonical conjunction.
func canonPredicate(p Predicate) Predicate {
	if len(p) == 0 {
		return Predicate{}
	}
	keys := make([]string, len(p))
	for i, a := range p {
		keys[i] = a.String()
	}
	idx := make([]int, len(p))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return keys[idx[i]] < keys[idx[j]] })
	out := make(Predicate, 0, len(p))
	last := ""
	for n, i := range idx {
		if n > 0 && keys[i] == last {
			continue
		}
		out = append(out, p[i])
		last = keys[i]
	}
	return out
}

// edgeSig is the label a pattern edge contributes to row keys: bound
// (including the range form) and color, everything but the endpoints.
func edgeSig(e Edge) string {
	return FormatEdgeBound(e) + "," + e.Color
}

type canonSearch struct {
	p        *Pattern
	predKey  []string        // canonical predicate text per node
	edge     map[[2]int]Edge // (from, to) -> edge
	perm     []int           // perm[i] = original id at canonical position i
	rows     []string        // row key per placed position
	best     []string        // minimal complete row sequence found so far
	bestPerm []int
	budget   int
	overflow bool
}

func (cs *canonSearch) init() {
	n := cs.p.N()
	cs.predKey = make([]string, n)
	for u := 0; u < n; u++ {
		cs.predKey[u] = canonPredicate(cs.p.Pred(u)).String()
	}
	cs.edge = make(map[[2]int]Edge, cs.p.EdgeCount())
	for _, e := range cs.p.Edges() {
		cs.edge[[2]int{e.From, e.To}] = e
	}
	cs.perm = make([]int, 0, n)
	cs.rows = make([]string, 0, n)
}

// rowKey serialises what placing v at the next position reveals: its
// predicate and its edges to and from the already-placed prefix. The
// complete row sequence determines the renamed pattern exactly.
func (cs *canonSearch) rowKey(v int) string {
	var b strings.Builder
	b.WriteString(cs.predKey[v])
	if e, ok := cs.edge[[2]int{v, v}]; ok {
		fmt.Fprintf(&b, "|s:%s", edgeSig(e))
	}
	for j, u := range cs.perm {
		if e, ok := cs.edge[[2]int{u, v}]; ok {
			fmt.Fprintf(&b, "|i%d:%s", j, edgeSig(e))
		}
		if e, ok := cs.edge[[2]int{v, u}]; ok {
			fmt.Fprintf(&b, "|o%d:%s", j, edgeSig(e))
		}
	}
	return b.String()
}

// dfs extends the prefix one position. tight means the prefix rows equal
// the best sequence's prefix (so worse rows prune, better rows win).
func (cs *canonSearch) dfs(depth int, tight bool) {
	if cs.overflow {
		return
	}
	n := cs.p.N()
	if depth == n {
		if cs.best == nil || (tight && less(cs.rows, cs.best)) {
			cs.best = append([]string(nil), cs.rows...)
			cs.bestPerm = append([]int(nil), cs.perm...)
		}
		return
	}
	cs.budget--
	if cs.budget < 0 {
		cs.overflow = true
		return
	}
	placed := make(map[int]bool, depth)
	for _, u := range cs.perm {
		placed[u] = true
	}
	// Min row over unplaced nodes; candidates are its witnesses.
	minRow := ""
	var cands []int
	for v := 0; v < n; v++ {
		if placed[v] {
			continue
		}
		r := cs.rowKey(v)
		switch {
		case len(cands) == 0 || r < minRow:
			minRow, cands = r, append(cands[:0], v)
		case r == minRow:
			cands = append(cands, v)
		}
	}
	if cs.best != nil && tight {
		switch {
		case minRow > cs.best[depth]:
			return // prefix already worse than best
		case minRow < cs.best[depth]:
			tight = false
			// Strictly better: the first completion below replaces best.
			cs.best = nil
		}
	}
	// Collapse tie candidates that a transposition automorphism maps onto
	// an earlier one: their subtrees are row-identical. This makes
	// patterns with duplicated nodes (k identical leaves, say) linear
	// instead of factorial.
	if len(cands) > 1 {
		kept := cands[:1]
		for _, v := range cands[1:] {
			dup := false
			for _, w := range kept {
				if cs.swappable(v, w) {
					dup = true
					break
				}
			}
			if !dup {
				kept = append(kept, v)
			}
		}
		cands = kept
	}
	for _, v := range cands {
		cs.perm = append(cs.perm, v)
		cs.rows = append(cs.rows, minRow)
		cs.dfs(depth+1, tight)
		cs.perm = cs.perm[:depth]
		cs.rows = cs.rows[:depth]
		if cs.overflow {
			return
		}
		// After the first completion a best exists; siblings are ties at
		// this depth, so they remain tight against it.
		tight = cs.best != nil
	}
}

// swappable reports whether exchanging v and w (fixing every other node)
// is a pattern automorphism, so their search subtrees are identical.
func (cs *canonSearch) swappable(v, w int) bool {
	if cs.predKey[v] != cs.predKey[w] {
		return false
	}
	sig := func(a, b int) (string, bool) {
		e, ok := cs.edge[[2]int{a, b}]
		if !ok {
			return "", false
		}
		return edgeSig(e), true
	}
	eq := func(a1, b1, a2, b2 int) bool {
		s1, ok1 := sig(a1, b1)
		s2, ok2 := sig(a2, b2)
		return ok1 == ok2 && s1 == s2
	}
	if !eq(v, w, w, v) || !eq(v, v, w, w) {
		return false
	}
	for x := 0; x < cs.p.N(); x++ {
		if x == v || x == w {
			continue
		}
		if !eq(v, x, w, x) || !eq(x, v, x, w) {
			return false
		}
	}
	return true
}

func less(a, b []string) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// render emits the canonical .pattern text for the winning order.
func (cs *canonSearch) render() string {
	n := cs.p.N()
	newID := make([]int, n)
	for pos, orig := range cs.bestPerm {
		newID[orig] = pos
	}
	var b strings.Builder
	fmt.Fprintf(&b, "pattern %d\n", n)
	for pos, orig := range cs.bestPerm {
		fmt.Fprintf(&b, "node %d %s\n", pos, cs.predKey[orig])
	}
	es := cs.p.Edges()
	for i := range es {
		es[i].From = newID[es[i].From]
		es[i].To = newID[es[i].To]
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].To < es[j].To
	})
	for _, e := range es {
		if e.Color != "" {
			fmt.Fprintf(&b, "edge %d %d %s %s\n", e.From, e.To, FormatEdgeBound(e), e.Color)
		} else {
			fmt.Fprintf(&b, "edge %d %d %s\n", e.From, e.To, FormatEdgeBound(e))
		}
	}
	return b.String()
}
