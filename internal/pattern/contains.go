package pattern

import "gpm/internal/value"

// Pattern containment (Mahfoud, "Revisited Containment for Graph
// Patterns"): P contains Q — written Q ⊑ P — when, over every data
// graph, Q's match relation is pointwise included in P's. For
// simulation-style semantics containment is itself a simulation check
// *between the two patterns*: compute the maximum relation R ⊆ Vq × Vp
// where (u, a) ∈ R demands
//
//   (1) pred_Q(u) ⇒ pred_P(a)          — atom-level implication, and
//   (2) for every P-edge (a, b) some Q-edge (u, v) with (v, b) ∈ R whose
//       bound/color constraints are at least as strict (edgeServes), and
//   (3) under ContainDual, symmetrically for every P-edge (c, a) some
//       Q-edge (w, u) with (w, c) ∈ R.
//
// Soundness: for any graph G and (u, a) ∈ R, the set
// T = {(a, x) : (u, a) ∈ R, x ∈ M(Q,G)(u)} satisfies P's (dual)
// simulation conditions — each Q-witness path/walk for (u, v) also
// witnesses the stricter P-edge — so T is contained in P's maximum
// relation: M(Q,G)(u) ⊆ M(P,G)(a). A cache can therefore answer Q from
// a stored answer for P by seeding Q's fixpoint with ∪_{(u,a)∈R} M(P)(a),
// and the greatest fixpoint inside that superset is exactly M(Q,G).
//
// The fixpoint mirrors internal/topo's counter machinery (dualFixpoint):
// per-pair witness counters, kills cascade through a worklist. Patterns
// are tiny, so there is no sharding.

// ContainMode selects which edge conditions Containment enforces.
type ContainMode int

const (
	// ContainChild enforces the child condition only — sound for bounded
	// simulation (match) and plain simulation semantics.
	ContainChild ContainMode = iota
	// ContainDual additionally enforces the parent condition, as dual
	// simulation's fixpoint requires.
	ContainDual
)

// Containment computes the maximum containment witness from q's nodes to
// p's nodes. witness[u] lists, ascending, the p-nodes a with
// M(q,G)(u) ⊆ M(p,G)(a) on every graph G; ok reports whether every
// q-node is covered — the precondition for answering q from p's cached
// relation.
func Containment(p, q *Pattern, mode ContainMode) (witness [][]int32, ok bool) {
	np, nq := p.N(), q.N()
	rel := make([][]bool, nq)
	alive := 0
	for u := 0; u < nq; u++ {
		rel[u] = make([]bool, np)
		for a := 0; a < np; a++ {
			if predImplies(q.Pred(u), p.Pred(a)) {
				rel[u][a] = true
				alive++
			}
		}
	}

	// childCnt[e'][u]: for the p-edge e' = (a, b), how many q-edges
	// (u, v) serve e' with (v, b) still alive. Zero kills (u, a).
	childCnt := make([][]int32, p.EdgeCount())
	for id := range childCnt {
		childCnt[id] = make([]int32, nq)
	}
	var parCnt [][]int32
	if mode == ContainDual {
		parCnt = make([][]int32, p.EdgeCount())
		for id := range parCnt {
			parCnt[id] = make([]int32, nq)
		}
	}

	type pair struct{ u, a int32 }
	var kills []pair
	kill := func(u, a int) {
		if rel[u][a] {
			rel[u][a] = false
			alive--
			kills = append(kills, pair{int32(u), int32(a)})
		}
	}

	for eid := 0; eid < p.EdgeCount(); eid++ {
		ep := p.EdgeAt(eid)
		for u := 0; u < nq; u++ {
			for _, qeid := range q.Out(u) {
				eq := q.EdgeAt(int(qeid))
				if edgeServes(eq, ep) && rel[eq.To][ep.To] {
					childCnt[eid][u]++
				}
			}
			if mode == ContainDual {
				for _, qeid := range q.In(u) {
					eq := q.EdgeAt(int(qeid))
					if edgeServes(eq, ep) && rel[eq.From][ep.From] {
						parCnt[eid][u]++
					}
				}
			}
		}
	}
	for u := 0; u < nq; u++ {
		for a := 0; a < np; a++ {
			if !rel[u][a] {
				continue
			}
			for _, eid := range p.Out(a) {
				if childCnt[eid][u] == 0 {
					kill(u, a)
					break
				}
			}
			if mode == ContainDual && rel[u][a] {
				for _, eid := range p.In(a) {
					if parCnt[eid][u] == 0 {
						kill(u, a)
						break
					}
				}
			}
		}
	}

	for len(kills) > 0 {
		k := kills[len(kills)-1]
		kills = kills[:len(kills)-1]
		v, b := int(k.u), int(k.a)
		// (v, b) died: q-edges into v lose a child witness for p-edges
		// into b.
		for _, qeid := range q.In(v) {
			eq := q.EdgeAt(int(qeid))
			u := eq.From
			for _, peid := range p.In(b) {
				ep := p.EdgeAt(int(peid))
				if !edgeServes(eq, ep) {
					continue
				}
				childCnt[peid][u]--
				if childCnt[peid][u] == 0 && rel[u][ep.From] {
					kill(u, ep.From)
				}
			}
		}
		if mode == ContainDual {
			// And q-edges out of v lose a parent witness for p-edges out
			// of b.
			for _, qeid := range q.Out(v) {
				eq := q.EdgeAt(int(qeid))
				w := eq.To
				for _, peid := range p.Out(b) {
					ep := p.EdgeAt(int(peid))
					if !edgeServes(eq, ep) {
						continue
					}
					parCnt[peid][w]--
					if parCnt[peid][w] == 0 && rel[w][ep.To] {
						kill(w, ep.To)
					}
				}
			}
		}
	}

	witness = make([][]int32, nq)
	ok = true
	for u := 0; u < nq; u++ {
		for a := 0; a < np; a++ {
			if rel[u][a] {
				witness[u] = append(witness[u], int32(a))
			}
		}
		if len(witness[u]) == 0 {
			ok = false
		}
	}
	return witness, ok
}

// Contains reports whether p contains q (q ⊑ p) under the child-only
// check: on every graph, each node of q maps to a node of p whose match
// set includes q's.
func Contains(p, q *Pattern) bool {
	_, ok := Containment(p, q, ContainChild)
	return ok
}

// edgeServes reports whether any witness (path or walk) for the q-edge
// eq necessarily witnesses the p-edge ep too — eq's constraint is at
// least as strict.
func edgeServes(eq, ep Edge) bool {
	if ep.Color != "" && ep.Color != eq.Color {
		return false
	}
	if ep.Ranged() {
		// ep demands a walk of length in [lo, hi]: only a ranged q-edge
		// within that window guarantees one (a plain path may be shorter
		// than lo).
		return eq.Ranged() && eq.MinBound >= ep.MinBound && eq.Bound <= ep.Bound
	}
	if ep.Bound == Unbounded {
		return true // any witness is a nonempty path
	}
	// ep demands distance <= Bound; a q-path of length <= eq.Bound or a
	// q-walk of length <= eq.Bound both imply it.
	return eq.Bound != Unbounded && eq.Bound <= ep.Bound
}

// predImplies reports whether predicate a entails predicate b: every
// tuple satisfying a satisfies b. Checked atom-by-atom — each conjunct
// of b must be implied by some conjunct of a — which is sound, and
// complete for single-atom entailment (see atomImplies).
func predImplies(a, b Predicate) bool {
	for _, bb := range b {
		found := false
		for _, aa := range a {
			if atomImplies(aa, bb) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// atomImplies reports whether atom x entails atom y: every value
// satisfying "attr_x op_x val_x" satisfies y. The analysis treats each
// operator's satisfied set over the full value domain (numbers and
// strings; incomparable kinds fail every operator except !=, which they
// satisfy) and decides subset exactly, so entailment chains compose.
func atomImplies(x, y Atom) bool {
	if x.Attr != y.Attr {
		return false
	}
	switch {
	case x.Op == value.OpEQ:
		// S(x) = {val_x}: membership test.
		return y.Op.Apply(x.Val, y.Val)
	case y.Op == value.OpNE:
		// Implied iff val_y cannot satisfy x.
		if x.Op == value.OpNE {
			return x.Val.Equal(y.Val)
		}
		return !x.Op.Apply(y.Val, x.Val)
	case x.Op == value.OpNE:
		return false // everything-but-one-value fits inside no other set
	case y.Op == value.OpEQ:
		return false // an order interval is never a single point
	}
	// Both are order intervals; containment needs the same direction and
	// comparable constants (a numeric interval holds no strings and vice
	// versa).
	cmp, ok := value.Compare(x.Val, y.Val)
	if !ok {
		return false
	}
	switch y.Op {
	case value.OpLT:
		return (x.Op == value.OpLT && cmp <= 0) || (x.Op == value.OpLE && cmp < 0)
	case value.OpLE:
		return (x.Op == value.OpLT || x.Op == value.OpLE) && cmp <= 0
	case value.OpGT:
		return (x.Op == value.OpGT && cmp >= 0) || (x.Op == value.OpGE && cmp > 0)
	case value.OpGE:
		return (x.Op == value.OpGT || x.Op == value.OpGE) && cmp >= 0
	}
	return false
}
