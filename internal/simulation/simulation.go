// Package simulation implements plain graph simulation in the style of
// Henzinger, Henzinger and Kopke (FOCS 1995): the special case of bounded
// simulation in which every pattern edge has bound 1, so pattern edges map
// to single data edges (paper §2.2, remark 2). It runs in
// O((|V|+|Vp|)(|E|+|Ep|)) time and serves both as a baseline and as a
// cross-check for the bounded algorithm.
package simulation

import (
	"context"
	"fmt"
	"sort"

	"gpm/internal/cancel"
	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// adjacency is the read-only graph view the fixpoint traverses; both the
// live *graph.Graph and the immutable *graph.Frozen satisfy it, so the
// engine can run simulation over its cached CSR snapshot (concurrency-
// safe, cache-friendly) while one-shot callers pass the graph directly.
type adjacency interface {
	N() int
	Attr(v int) graph.Attrs
	Out(u int) []int32
	In(v int) []int32
}

// colorFunc returns the color of a known edge (u, v), "" for uncolored.
type colorFunc func(u, v int) string

func graphColor(g *graph.Graph) colorFunc {
	return func(u, v int) string {
		c, _ := g.Color(u, v)
		return c
	}
}

// Run computes the maximum plain simulation of p in g. The returned
// relation lists, per pattern node, the sorted data nodes that simulate
// it; ok reports whether every pattern node kept at least one match.
// Patterns must have all edge bounds equal to 1.
func Run(p *pattern.Pattern, g *graph.Graph) (rel [][]int32, ok bool, err error) {
	return RunContext(context.Background(), p, g)
}

// RunContext is Run with cancellation: ctx is polled inside the counter
// and refinement loops, and a cancelled context aborts with ctx.Err().
func RunContext(ctx context.Context, p *pattern.Pattern, g *graph.Graph) (rel [][]int32, ok bool, err error) {
	return runCore(ctx, p, g, graphColor(g), nil)
}

// RunFrozen is RunContext over an immutable CSR snapshot.
func RunFrozen(ctx context.Context, p *pattern.Pattern, f *graph.Frozen) (rel [][]int32, ok bool, err error) {
	return runCore(ctx, p, f, f.Color, nil)
}

// RunFrozenSeeded is RunFrozen with an optional candidate restriction:
// when seed is non-nil it must hold, per pattern node, an ascending
// superset of the true relation (e.g. the relation of a containing
// pattern, see internal/pattern's Containment); candidate initialisation
// then touches only the seeded nodes instead of scanning the graph. The
// greatest fixpoint inside any superset of the maximum simulation is the
// maximum simulation itself, so the result is bit-identical to RunFrozen.
func RunFrozenSeeded(ctx context.Context, p *pattern.Pattern, f *graph.Frozen, seed [][]int32) (rel [][]int32, ok bool, err error) {
	if seed != nil && len(seed) != p.N() {
		return nil, false, fmt.Errorf("simulation: seed has %d rows for a %d-node pattern", len(seed), p.N())
	}
	return runCore(ctx, p, f, f.Color, seed)
}

func runCore(ctx context.Context, p *pattern.Pattern, g adjacency, color colorFunc, seed [][]int32) (rel [][]int32, ok bool, err error) {
	poll := cancel.Every(ctx, 4096)
	if !p.AllBoundsOne() {
		return nil, false, fmt.Errorf("simulation: pattern has a bound != 1; use bounded simulation")
	}
	if err := p.Validate(); err != nil {
		return nil, false, err
	}
	np, n := p.N(), g.N()

	// sim[u] as a bitmap plus membership count. A seed replaces the full
	// candidate scan with a probe of its (superset) rows only.
	sim := make([][]bool, np)
	size := make([]int, np)
	for u := 0; u < np; u++ {
		sim[u] = make([]bool, n)
		pred := p.Pred(u)
		if seed != nil {
			for _, x := range seed[u] {
				if x < 0 || int(x) >= n || sim[u][x] {
					continue
				}
				if pred.Match(g.Attr(int(x))) {
					sim[u][x] = true
					size[u]++
				}
			}
			continue
		}
		for x := 0; x < n; x++ {
			if pred.Match(g.Attr(x)) {
				sim[u][x] = true
				size[u]++
			}
		}
	}

	// cnt[eid][x] = |{y in out(x) (color-compatible) : sim[to(eid)][y]}|.
	cnt := make([][]int32, p.EdgeCount())
	type removal struct {
		u int
		x int32
	}
	var work []removal
	for eid := 0; eid < p.EdgeCount(); eid++ {
		e := p.EdgeAt(int(eid))
		c := make([]int32, n)
		for x := 0; x < n; x++ {
			if err := poll.Err(); err != nil {
				return nil, false, err
			}
			if !sim[e.From][x] {
				continue
			}
			for _, y := range g.Out(x) {
				if !colorOK(color, x, int(y), e.Color) {
					continue
				}
				if sim[e.To][y] {
					c[x]++
				}
			}
			if c[x] == 0 {
				work = append(work, removal{e.From, int32(x)})
			}
		}
		cnt[eid] = c
	}

	// Worklist refinement: removing x from sim[u] may zero counters of its
	// predecessors for every pattern edge entering u.
	for len(work) > 0 {
		if err := poll.Err(); err != nil {
			return nil, false, err
		}
		rm := work[len(work)-1]
		work = work[:len(work)-1]
		if !sim[rm.u][rm.x] {
			continue
		}
		sim[rm.u][rm.x] = false
		size[rm.u]--
		for _, eid := range p.In(rm.u) {
			e := p.EdgeAt(int(eid))
			c := cnt[eid]
			for _, w := range g.In(int(rm.x)) {
				if !sim[e.From][w] {
					continue
				}
				if !colorOK(color, int(w), int(rm.x), e.Color) {
					continue
				}
				c[w]--
				if c[w] == 0 {
					work = append(work, removal{e.From, w})
				}
			}
		}
	}

	rel = make([][]int32, np)
	ok = true
	for u := 0; u < np; u++ {
		for x := 0; x < n; x++ {
			if sim[u][x] {
				rel[u] = append(rel[u], int32(x))
			}
		}
		if len(rel[u]) == 0 {
			ok = false
		}
	}
	return rel, ok, nil
}

func colorOK(color colorFunc, u, v int, want string) bool {
	if want == "" {
		return true
	}
	return color(u, v) == want
}

func edgeColorOK(g *graph.Graph, u, v int, want string) bool {
	return colorOK(graphColor(g), u, v, want)
}

// IsSimulation verifies that rel is a plain simulation of p in f: every
// pair satisfies its predicate and every pattern edge leaving its
// pattern node has a successor witness in rel. It does not check
// maximality; the incremental watchers' fuzz target and tests use it as
// an independent oracle, the child-only counterpart of topo.IsDualSim.
func IsSimulation(p *pattern.Pattern, f *graph.Frozen, rel [][]int32) bool {
	if len(rel) != p.N() {
		return false
	}
	n := f.N()
	in := make([][]bool, p.N())
	for u := range in {
		in[u] = make([]bool, n)
		for _, x := range rel[u] {
			if x < 0 || int(x) >= n {
				return false
			}
			in[u][x] = true
		}
	}
	for u := 0; u < p.N(); u++ {
		for _, x := range rel[u] {
			if !p.Pred(u).Match(f.Attr(int(x))) {
				return false
			}
			for _, eid := range p.Out(u) {
				e := p.EdgeAt(int(eid))
				found := false
				for _, y := range f.Out(int(x)) {
					if in[e.To][y] && colorOK(f.Color, int(x), int(y), e.Color) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
	}
	return true
}

// RunNaive is the textbook fixpoint: repeatedly delete pairs (u, x) for
// which some pattern edge has no witness, until stable. Exponentially
// simpler to audit than Run; tests compare the two.
func RunNaive(p *pattern.Pattern, g *graph.Graph) (rel [][]int32, ok bool, err error) {
	if !p.AllBoundsOne() {
		return nil, false, fmt.Errorf("simulation: pattern has a bound != 1")
	}
	np, n := p.N(), g.N()
	sim := make([][]bool, np)
	for u := 0; u < np; u++ {
		sim[u] = make([]bool, n)
		for x := 0; x < n; x++ {
			sim[u][x] = p.Pred(u).Match(g.Attr(x))
		}
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < np; u++ {
			for x := 0; x < n; x++ {
				if !sim[u][x] {
					continue
				}
				for _, eid := range p.Out(u) {
					e := p.EdgeAt(int(eid))
					found := false
					for _, y := range g.Out(x) {
						if sim[e.To][y] && edgeColorOK(g, x, int(y), e.Color) {
							found = true
							break
						}
					}
					if !found {
						sim[u][x] = false
						changed = true
						break
					}
				}
			}
		}
	}
	rel = make([][]int32, np)
	ok = true
	for u := 0; u < np; u++ {
		for x := 0; x < n; x++ {
			if sim[u][x] {
				rel[u] = append(rel[u], int32(x))
			}
		}
		sort.Slice(rel[u], func(i, j int) bool { return rel[u][i] < rel[u][j] })
		if len(rel[u]) == 0 {
			ok = false
		}
	}
	return rel, ok, nil
}
