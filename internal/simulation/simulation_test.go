package simulation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/value"
)

func labeled(labels ...string) *graph.Graph {
	g := graph.New(0)
	for _, l := range labels {
		g.AddNode(graph.Attrs{"label": value.Str(l)})
	}
	return g
}

func relEqual(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestSimpleEdge(t *testing.T) {
	// Pattern A->B over data A->B, A->C: A matches only the A with a B child.
	g := labeled("A", "B", "A", "C")
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	p := pattern.New()
	a := p.AddNode(pattern.Label("A"))
	b := p.AddNode(pattern.Label("B"))
	p.MustAddEdge(a, b, 1)
	rel, ok, err := Run(p, g)
	if err != nil || !ok {
		t.Fatalf("Run: ok=%v err=%v", ok, err)
	}
	if len(rel[a]) != 1 || rel[a][0] != 0 {
		t.Errorf("sim(A) = %v, want [0]", rel[a])
	}
	if len(rel[b]) != 1 || rel[b][0] != 1 {
		t.Errorf("sim(B) = %v, want [1]", rel[b])
	}
}

func TestNoMatch(t *testing.T) {
	g := labeled("A", "C")
	g.AddEdge(0, 1)
	p := pattern.New()
	a := p.AddNode(pattern.Label("A"))
	b := p.AddNode(pattern.Label("B"))
	p.MustAddEdge(a, b, 1)
	rel, ok, err := Run(p, g)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("should not match")
	}
	if len(rel[a]) != 0 || len(rel[b]) != 0 {
		t.Errorf("rel = %v", rel)
	}
}

func TestCascadingRemoval(t *testing.T) {
	// Chain pattern A->B->C; data has A->B but that B lacks a C child, so
	// everything unravels.
	g := labeled("A", "B", "C", "B")
	g.AddEdge(0, 1) // A -> B (no C child)
	g.AddEdge(3, 2) // other B -> C, but no A points to it
	p := pattern.New()
	a := p.AddNode(pattern.Label("A"))
	b := p.AddNode(pattern.Label("B"))
	c := p.AddNode(pattern.Label("C"))
	p.MustAddEdge(a, b, 1)
	p.MustAddEdge(b, c, 1)
	rel, ok, _ := Run(p, g)
	if ok {
		t.Error("should fail: no A has a B-with-C child")
	}
	if len(rel[a]) != 0 {
		t.Errorf("sim(A) = %v", rel[a])
	}
	// B=3 survives (has C child); C=2 survives.
	if len(rel[b]) != 1 || rel[b][0] != 3 {
		t.Errorf("sim(B) = %v", rel[b])
	}
	if len(rel[c]) != 1 || rel[c][0] != 2 {
		t.Errorf("sim(C) = %v", rel[c])
	}
}

func TestCyclicPatternOnCyclicData(t *testing.T) {
	// Pattern A->B->A over data cycle A->B->A.
	g := labeled("A", "B")
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	p := pattern.New()
	a := p.AddNode(pattern.Label("A"))
	b := p.AddNode(pattern.Label("B"))
	p.MustAddEdge(a, b, 1)
	p.MustAddEdge(b, a, 1)
	rel, ok, _ := Run(p, g)
	if !ok || len(rel[a]) != 1 || len(rel[b]) != 1 {
		t.Errorf("cycle sim failed: %v ok=%v", rel, ok)
	}
}

func TestRejectsBoundedPattern(t *testing.T) {
	p := pattern.New()
	p.AddNode(nil)
	p.AddNode(nil)
	p.MustAddEdge(0, 1, 2)
	if _, _, err := Run(p, graph.New(1)); err == nil {
		t.Error("bound-2 pattern accepted")
	}
	if _, _, err := RunNaive(p, graph.New(1)); err == nil {
		t.Error("naive accepted bound-2 pattern")
	}
}

func TestColoredSimulation(t *testing.T) {
	// Two As: one friend-linked to a B, one only work-linked. The colored
	// pattern edge constrains the SOURCE side: only the friend-linked A
	// simulates pattern-A. (Pattern-B has no out-edges, so both Bs stay —
	// simulation imposes only downstream obligations.)
	g := labeled("A", "A", "B", "B")
	g.AddColoredEdge(0, 2, "friend")
	g.AddColoredEdge(1, 3, "work")
	p := pattern.New()
	a := p.AddNode(pattern.Label("A"))
	b := p.AddNode(pattern.Label("B"))
	if _, err := p.AddColoredEdge(a, b, 1, "friend"); err != nil {
		t.Fatal(err)
	}
	rel, ok, err := Run(p, g)
	if err != nil || !ok {
		t.Fatalf("colored run: %v %v", ok, err)
	}
	if len(rel[a]) != 1 || rel[a][0] != 0 {
		t.Errorf("sim(A) = %v, want only the friend-linked A", rel[a])
	}
	if len(rel[b]) != 2 {
		t.Errorf("sim(B) = %v, want both Bs (no out-edge obligations)", rel[b])
	}
	// Naive agrees.
	nRel, nOK, err := RunNaive(p, g)
	if err != nil || nOK != ok || !relEqual(rel, nRel) {
		t.Errorf("naive disagrees: %v %v %v", nRel, nOK, err)
	}
}

func randomLabeledGraph(r *rand.Rand, n, m, labels int) *graph.Graph {
	if m > n*n {
		m = n * n
	}
	g := graph.New(0)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Attrs{"label": value.Str(string(rune('A' + r.Intn(labels))))})
	}
	for g.M() < m {
		g.AddEdge(r.Intn(n), r.Intn(n))
	}
	return g
}

func randomBoundOnePattern(r *rand.Rand, np, me, labels int) *pattern.Pattern {
	p := pattern.New()
	for i := 0; i < np; i++ {
		p.AddNode(pattern.Label(string(rune('A' + r.Intn(labels)))))
	}
	for tries := 0; tries < 4*me && p.EdgeCount() < me; tries++ {
		p.AddEdge(r.Intn(np), r.Intn(np), 1) // duplicates rejected silently
	}
	return p
}

// Property: the worklist algorithm agrees with the naive fixpoint.
func TestRunMatchesNaive(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLabeledGraph(r, 1+r.Intn(14), r.Intn(30), 3)
		p := randomBoundOnePattern(r, 1+r.Intn(5), r.Intn(7), 3)
		r1, ok1, err1 := Run(p, g)
		r2, ok2, err2 := RunNaive(p, g)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return ok1 == ok2 && relEqual(r1, r2)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the result is a simulation — every surviving pair has a
// witness for every pattern edge.
func TestResultIsSimulation(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLabeledGraph(r, 1+r.Intn(14), r.Intn(30), 3)
		p := randomBoundOnePattern(r, 1+r.Intn(5), r.Intn(7), 3)
		rel, _, err := Run(p, g)
		if err != nil {
			return true
		}
		inRel := make([]map[int32]bool, p.N())
		for u := range inRel {
			inRel[u] = map[int32]bool{}
			for _, x := range rel[u] {
				inRel[u][x] = true
			}
		}
		for u := 0; u < p.N(); u++ {
			for _, x := range rel[u] {
				if !p.Pred(u).Match(g.Attr(int(x))) {
					return false
				}
				for _, eid := range p.Out(u) {
					e := p.EdgeAt(int(eid))
					found := false
					for _, y := range g.Out(int(x)) {
						if inRel[e.To][y] {
							found = true
							break
						}
					}
					if !found {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
