// Package twohop builds a 2-hop reachability labelling (Cohen, Halperin,
// Kaplan, Zwick; computed here with pruned landmark labelling) over a data
// graph. The paper's "2-hop" Match variant uses it as a cheap filter: if
// the labels say u cannot reach v, no distance query is needed; otherwise
// a BFS computes the exact distance (appendix, "2-hop labeling").
//
// Every node v carries Lin(v) and Lout(v); u reaches v iff u == v, or
// v ∈ Lout(u), or u ∈ Lin(v), or Lout(u) ∩ Lin(v) ≠ ∅.
package twohop

import (
	"sort"

	"gpm/internal/graph"
)

// Index is an immutable 2-hop reachability labelling.
type Index struct {
	lin  [][]int32 // hubs that reach v, sorted
	lout [][]int32 // hubs reachable from v, sorted
}

// Build constructs the labelling by pruned BFS from each node in
// descending-degree order. Construction is O(V·E) worst case but far
// cheaper in practice; queries are linear in label size.
func Build(g *graph.Graph) *Index {
	n := g.N()
	idx := &Index{lin: make([][]int32, n), lout: make([][]int32, n)}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		da := g.OutDegree(int(order[a])) + g.InDegree(int(order[a]))
		db := g.OutDegree(int(order[b])) + g.InDegree(int(order[b]))
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	visited := make([]bool, n)
	queue := make([]int32, 0, n)
	for _, h := range order {
		// Forward pruned BFS: h joins Lin(w) for every w it newly covers.
		queue = queue[:0]
		queue = append(queue, h)
		visited[h] = true
		for head := 0; head < len(queue); head++ {
			w := queue[head]
			if w != h {
				if idx.Reachable(int(h), int(w)) {
					continue // already covered; prune subtree
				}
				idx.lin[w] = append(idx.lin[w], h)
			}
			for _, x := range g.Out(int(w)) {
				if !visited[x] {
					visited[x] = true
					queue = append(queue, x)
				}
			}
		}
		clearVisited(visited, queue)
		// Backward pruned BFS: h joins Lout(w) for every w that newly
		// reaches it.
		queue = queue[:0]
		queue = append(queue, h)
		visited[h] = true
		for head := 0; head < len(queue); head++ {
			w := queue[head]
			if w != h {
				if idx.Reachable(int(w), int(h)) {
					continue
				}
				idx.lout[w] = append(idx.lout[w], h)
			}
			for _, x := range g.In(int(w)) {
				if !visited[x] {
					visited[x] = true
					queue = append(queue, x)
				}
			}
		}
		clearVisited(visited, queue)
	}
	for v := 0; v < n; v++ {
		sortLabel(idx.lin[v])
		sortLabel(idx.lout[v])
	}
	return idx
}

func clearVisited(visited []bool, queue []int32) {
	for _, v := range queue {
		visited[v] = false
	}
}

func sortLabel(l []int32) {
	sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
}

// Reachable reports whether v is reachable from u (reflexively).
func (idx *Index) Reachable(u, v int) bool {
	if u == v {
		return true
	}
	if containsSorted(idx.lout[u], int32(v)) || containsSorted(idx.lin[v], int32(u)) {
		return true
	}
	return intersectsSorted(idx.lout[u], idx.lin[v])
}

// NeighborSource is the minimal adjacency view the index needs at query
// time; both *graph.Graph and *graph.Frozen satisfy it.
type NeighborSource interface {
	Out(u int) []int32
}

// ReachableNonempty reports whether there is a nonempty path from u to v:
// plain reachability when u != v, a cycle through u otherwise.
func (idx *Index) ReachableNonempty(g NeighborSource, u, v int) bool {
	if u != v {
		return idx.Reachable(u, v)
	}
	for _, w := range g.Out(u) {
		if idx.Reachable(int(w), u) {
			return true
		}
	}
	return false
}

func containsSorted(l []int32, x int32) bool {
	i := sort.Search(len(l), func(i int) bool { return l[i] >= x })
	return i < len(l) && l[i] == x
}

func intersectsSorted(a, b []int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// LabelEntries returns the total number of label entries — the index size
// statistic the 2-hop literature reports.
func (idx *Index) LabelEntries() int {
	total := 0
	for v := range idx.lin {
		total += len(idx.lin[v]) + len(idx.lout[v])
	}
	return total
}
