package twohop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpm/internal/graph"
)

func TestChain(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	idx := Build(g)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := j >= i
			if got := idx.Reachable(i, j); got != want {
				t.Errorf("Reachable(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	if idx.ReachableNonempty(g, 1, 1) {
		t.Error("chain node should have no cycle")
	}
	if !idx.ReachableNonempty(g, 0, 3) {
		t.Error("0 should reach 3 nonempty")
	}
}

func TestCycle(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	idx := Build(g)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !idx.Reachable(i, j) {
				t.Errorf("Reachable(%d,%d) = false in a cycle", i, j)
			}
		}
		if !idx.ReachableNonempty(g, i, i) {
			t.Errorf("ReachableNonempty(%d,%d) = false in a cycle", i, i)
		}
	}
}

func TestDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	idx := Build(g)
	if idx.Reachable(0, 2) || idx.Reachable(2, 1) || idx.Reachable(1, 0) {
		t.Error("reachability across components")
	}
	if !idx.Reachable(0, 1) || !idx.Reachable(2, 3) {
		t.Error("missing within-component reachability")
	}
}

func TestSelfLoop(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 0)
	idx := Build(g)
	if !idx.ReachableNonempty(g, 0, 0) {
		t.Error("self loop should give nonempty self-reachability")
	}
	if idx.ReachableNonempty(g, 1, 1) {
		t.Error("node 1 has no cycle")
	}
}

// Property: label-based reachability equals BFS reachability on random
// graphs, for all pairs.
func TestAgainstBFS(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(25)
		g := graph.New(n)
		m := r.Intn(3 * n)
		if m > n*n {
			m = n * n
		}
		for g.M() < m {
			g.AddEdge(r.Intn(n), r.Intn(n))
		}
		idx := Build(g)
		for u := 0; u < n; u++ {
			d := g.BFSDist(u)
			for v := 0; v < n; v++ {
				if idx.Reachable(u, v) != (d[v] >= 0) {
					t.Logf("seed %d: Reachable(%d,%d) = %v, bfs %d", seed, u, v, idx.Reachable(u, v), d[v])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLabelEntries(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	idx := Build(g)
	if idx.LabelEntries() <= 0 {
		t.Error("no label entries on a connected chain")
	}
	empty := Build(graph.New(3))
	if empty.LabelEntries() != 0 {
		t.Error("labels on an edgeless graph")
	}
}
