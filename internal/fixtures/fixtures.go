// Package fixtures encodes the running examples of the paper — the drug
// ring of Fig. 1 and the social/collaboration graphs of Fig. 2 — together
// with the maximum matches stated in Example 2.2. Tests across the module
// assert algorithm output against these ground truths, and the appendix's
// Match⁻ walk-through is reproducible from the Fig. 2 P1/G1 pair.
package fixtures

import (
	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/value"
)

// Case bundles a pattern, a data graph, human-readable node names and the
// expected maximum match (sorted data-node ids per pattern node; nil when
// the pattern should not match).
type Case struct {
	Name    string
	P       *pattern.Pattern
	G       *graph.Graph
	PNames  []string // pattern node id -> name
	GNames  []string // data node id -> name
	Want    [][]int32
	Matches bool
}

func attrs(kv ...interface{}) graph.Attrs {
	a := graph.Attrs{}
	for i := 0; i+1 < len(kv); i += 2 {
		k := kv[i].(string)
		switch v := kv[i+1].(type) {
		case int:
			a[k] = value.Int(int64(v))
		case string:
			a[k] = value.Str(v)
		case float64:
			a[k] = value.Float(v)
		default:
			panic("fixtures: unsupported attribute type")
		}
	}
	return a
}

func atom(attr string, op value.Op, v value.Value) pattern.Atom {
	return pattern.Atom{Attr: attr, Op: op, Val: v}
}

func eq(attr string, v int) pattern.Atom {
	return atom(attr, value.OpEQ, value.Int(int64(v)))
}

// DrugRing is Fig. 1: pattern P0 (boss, assistant managers, secretary,
// field workers with 3-hop supervision edges) over a drug ring G0 with
// m = 3 AMs, the last doubling as the secretary, and a 3-level worker
// chain under each AM. Example 2.2's S0 maps B to the boss, AM to every
// A_i, S to A_m, and FW to every W node.
func DrugRing() Case {
	p := pattern.New()
	b := p.AddNode(pattern.Predicate{eq("isB", 1)})
	am := p.AddNode(pattern.Predicate{eq("isAM", 1)})
	s := p.AddNode(pattern.Predicate{eq("isS", 1)})
	fw := p.AddNode(pattern.Predicate{eq("isFW", 1)})
	p.MustAddEdge(b, am, 1)  // boss oversees AMs directly
	p.MustAddEdge(am, b, 1)  // AMs report directly to the boss
	p.MustAddEdge(am, fw, 3) // AM supervises FWs within 3 levels
	p.MustAddEdge(fw, am, 3) // FWs report to AMs within 3 hops
	p.MustAddEdge(b, s, 1)   // boss talks to the secretary
	p.MustAddEdge(s, fw, 1)  // secretary reaches top-level FWs

	const m = 3
	g := graph.New(0)
	names := []string{"B"}
	boss := g.AddNode(attrs("isB", 1))
	amIDs := make([]int, m)
	var wIDs []int32
	for i := 0; i < m; i++ {
		a := attrs("isAM", 1)
		name := "A" + string(rune('1'+i))
		if i == m-1 {
			a["isS"] = value.Int(1) // A_m is both AM and secretary
		}
		amIDs[i] = g.AddNode(a)
		names = append(names, name)
	}
	for i := 0; i < m; i++ {
		// Chain of 3 workers under A_i, reporting upward.
		prev := amIDs[i]
		for lvl := 1; lvl <= 3; lvl++ {
			w := g.AddNode(attrs("isFW", 1))
			names = append(names, "W"+string(rune('1'+i))+string(rune('0'+lvl)))
			g.AddEdge(prev, w) // supervision downward
			g.AddEdge(w, prev) // reporting upward
			wIDs = append(wIDs, int32(w))
			prev = w
		}
	}
	for i := 0; i < m; i++ {
		g.AddEdge(boss, amIDs[i])
		g.AddEdge(amIDs[i], boss)
	}

	want := make([][]int32, 4)
	want[b] = []int32{int32(boss)}
	for _, a := range amIDs {
		want[am] = append(want[am], int32(a))
	}
	want[s] = []int32{int32(amIDs[m-1])}
	want[fw] = append([]int32(nil), wIDs...)
	sortAll(want)
	return Case{
		Name:   "drug-ring",
		P:      p,
		G:      g,
		PNames: []string{"B", "AM", "S", "FW"},
		GNames: names,
		Want:   want, Matches: true,
	}
}

// Data-node ids of SocialMatching's G1, exported for the incremental
// walk-through test that replays the appendix Match⁻ example.
const (
	G1A    = 0
	G1SE   = 1
	G1HR   = 2
	G1HRSE = 3
	G1DMl  = 4
	G1DMr  = 5
)

// Pattern-node ids of SocialMatching's P1.
const (
	P1A = iota
	P1SE
	P1HR
	P1DM
)

// SocialMatching is Fig. 2's P1/G1 (Example 2.1/2.2): user A looks for a
// software engineer and an HR expert within 2 hops and golf-playing sales
// managers close to both, connected back to A by an unbounded chain.
// The graph is wired so that deleting the edge (SE, (HR,SE)) reproduces
// the appendix's Match⁻ running example: the match loses (DM, DM_l) and
// (SE, SE) and nothing else.
func SocialMatching() Case {
	p := pattern.New()
	a := p.AddNode(pattern.Predicate{eq("isA", 1)})
	se := p.AddNode(pattern.Predicate{eq("isSE", 1)})
	hr := p.AddNode(pattern.Predicate{eq("isHR", 1)})
	dm := p.AddNode(pattern.Predicate{eq("isDM", 1), atom("hobby", value.OpEQ, value.Str("golf"))})
	p.MustAddEdge(a, se, 2)
	p.MustAddEdge(a, hr, 2)
	p.MustAddEdge(se, dm, 1)
	p.MustAddEdge(hr, dm, 2)
	p.MustAddEdge(dm, a, pattern.Unbounded)

	g := graph.New(0)
	g.AddNode(attrs("isA", 1))                   // 0 A
	g.AddNode(attrs("isSE", 1))                  // 1 SE
	g.AddNode(attrs("isHR", 1))                  // 2 HR
	g.AddNode(attrs("isHR", 1, "isSE", 1))       // 3 (HR,SE)
	g.AddNode(attrs("isDM", 1, "hobby", "golf")) // 4 (DM,golf)_l
	g.AddNode(attrs("isDM", 1, "hobby", "golf")) // 5 (DM,golf)_r
	g.AddEdge(G1A, G1HR)
	g.AddEdge(G1HR, G1HRSE)
	g.AddEdge(G1SE, G1DMl)
	g.AddEdge(G1SE, G1HRSE) // the edge deleted in the appendix example
	g.AddEdge(G1HRSE, G1DMr)
	g.AddEdge(G1HRSE, G1A)
	g.AddEdge(G1DMr, G1A)
	g.AddEdge(G1DMl, G1SE)

	want := make([][]int32, 4)
	want[a] = []int32{G1A}
	want[se] = []int32{G1SE, G1HRSE}
	want[hr] = []int32{G1HR, G1HRSE}
	want[dm] = []int32{G1DMl, G1DMr}
	sortAll(want)
	return Case{
		Name:   "social-matching",
		P:      p,
		G:      g,
		PNames: []string{"A", "SE", "HR", "DM"},
		GNames: []string{"A", "SE", "HR", "HR+SE", "DMl", "DMr"},
		Want:   want, Matches: true,
	}
}

// SocialMatchingAfterDeletion is the expected maximum match of P1 in
// G1 \ {(SE, (HR,SE))}: per the appendix, (DM, DM_l) and (SE, SE) drop.
func SocialMatchingAfterDeletion() [][]int32 {
	want := make([][]int32, 4)
	want[P1A] = []int32{G1A}
	want[P1SE] = []int32{G1HRSE}
	want[P1HR] = []int32{G1HR, G1HRSE}
	want[P1DM] = []int32{G1DMr}
	return want
}

// Data-node ids of Collaboration's G2.
const (
	G2DB = iota
	G2AI
	G2Gen
	G2Eco
	G2Chem
	G2Soc
	G2Med
)

// Collaboration is Fig. 2's P2/G2: a CS researcher seeks collaborators in
// biology (2 hops), sociology (3 hops) and medicine (mutually connected,
// unbounded); biology must reach sociology in 2 and medicine in 3.
// Example 2.2's S2 maps CS to DB only (AI cannot reach Soc within 3),
// Bio to Gen and Eco, Med to Med and Soc to Soc.
func Collaboration() Case {
	p, ids := collaborationPattern()
	g := graph.New(0)
	g.AddNode(attrs("dept", "CS", "name", "DB"))
	g.AddNode(attrs("dept", "CS", "name", "AI"))
	g.AddNode(attrs("dept", "Bio", "name", "Gen"))
	g.AddNode(attrs("dept", "Bio", "name", "Eco"))
	g.AddNode(attrs("dept", "Chem", "name", "Chem"))
	g.AddNode(attrs("dept", "Soc", "name", "Soc"))
	g.AddNode(attrs("dept", "Med", "name", "Med"))
	g.AddEdge(G2DB, G2Gen) // the edge dropped in G3
	g.AddEdge(G2Gen, G2Chem)
	g.AddEdge(G2Chem, G2Soc)
	g.AddEdge(G2Eco, G2Soc)
	g.AddEdge(G2Soc, G2Med)
	g.AddEdge(G2Med, G2DB)
	g.AddEdge(G2AI, G2Med)

	want := make([][]int32, 4)
	want[ids.cs] = []int32{G2DB}
	want[ids.bio] = []int32{G2Gen, G2Eco}
	want[ids.soc] = []int32{G2Soc}
	want[ids.med] = []int32{G2Med}
	sortAll(want)
	return Case{
		Name:   "collaboration",
		P:      p,
		G:      g,
		PNames: []string{"CS", "Bio", "Soc", "Med"},
		GNames: []string{"DB", "AI", "Gen", "Eco", "Chem", "Soc", "Med"},
		Want:   want, Matches: true,
	}
}

// CollaborationNoMatch is Example 2.2(3): G3 = G2 without (DB, Gen), for
// which P2 has no match at all.
func CollaborationNoMatch() Case {
	c := Collaboration()
	c.Name = "collaboration-g3"
	c.G.RemoveEdge(G2DB, G2Gen)
	c.Want = nil
	c.Matches = false
	return c
}

type p2ids struct{ cs, bio, soc, med int }

func collaborationPattern() (*pattern.Pattern, p2ids) {
	p := pattern.New()
	dept := func(d string) pattern.Predicate {
		return pattern.Predicate{atom("dept", value.OpEQ, value.Str(d))}
	}
	ids := p2ids{
		cs:  p.AddNode(dept("CS")),
		bio: p.AddNode(dept("Bio")),
		soc: p.AddNode(dept("Soc")),
		med: p.AddNode(dept("Med")),
	}
	p.MustAddEdge(ids.cs, ids.bio, 2)
	p.MustAddEdge(ids.cs, ids.soc, 3)
	p.MustAddEdge(ids.cs, ids.med, pattern.Unbounded)
	p.MustAddEdge(ids.med, ids.cs, pattern.Unbounded)
	p.MustAddEdge(ids.bio, ids.soc, 2)
	p.MustAddEdge(ids.bio, ids.med, 3)
	return p, ids
}

// All returns every fixture case, positive and negative.
func All() []Case {
	return []Case{DrugRing(), SocialMatching(), Collaboration(), CollaborationNoMatch()}
}

func sortAll(rel [][]int32) {
	for _, l := range rel {
		for i := 1; i < len(l); i++ {
			for j := i; j > 0 && l[j] < l[j-1]; j-- {
				l[j], l[j-1] = l[j-1], l[j]
			}
		}
	}
}
