package fixtures

import "testing"

// TestCasesWellFormed validates the encoded paper examples themselves:
// graphs and patterns are structurally consistent and the expected
// relations are sorted and in range.
func TestCasesWellFormed(t *testing.T) {
	for _, c := range All() {
		if err := c.G.Validate(); err != nil {
			t.Errorf("%s: graph: %v", c.Name, err)
		}
		if err := c.P.Validate(); err != nil {
			t.Errorf("%s: pattern: %v", c.Name, err)
		}
		if len(c.GNames) != c.G.N() {
			t.Errorf("%s: %d names for %d nodes", c.Name, len(c.GNames), c.G.N())
		}
		if len(c.PNames) != c.P.N() {
			t.Errorf("%s: %d pattern names for %d nodes", c.Name, len(c.PNames), c.P.N())
		}
		if c.Matches != (c.Want != nil) {
			t.Errorf("%s: Matches=%v but Want nil=%v", c.Name, c.Matches, c.Want == nil)
		}
		for u, l := range c.Want {
			for i, x := range l {
				if int(x) >= c.G.N() {
					t.Errorf("%s: want[%d][%d]=%d out of range", c.Name, u, i, x)
				}
				if i > 0 && l[i-1] >= x {
					t.Errorf("%s: want[%d] not strictly sorted", c.Name, u)
				}
				if !c.P.Pred(u).Match(c.G.Attr(int(x))) {
					t.Errorf("%s: want pair (%d,%d) violates the predicate", c.Name, u, x)
				}
			}
		}
	}
}

func TestAfterDeletionRelationShape(t *testing.T) {
	want := SocialMatchingAfterDeletion()
	if len(want) != 4 || len(want[P1DM]) != 1 || want[P1DM][0] != G1DMr {
		t.Errorf("after-deletion relation malformed: %v", want)
	}
}
