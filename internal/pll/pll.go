// Package pll implements a pruned-landmark-labeling distance oracle
// (Akiba, Iwata, Yoshida: "Fast exact shortest-path distance queries on
// large networks by pruned landmark labeling", SIGMOD 2013), adapted to
// the directed graphs this module matches over. It is the distance
// backbone that takes bounded simulation (paper §3, Theorem 3.1) past
// the O(|V|²) matrix: labels grow with the graph's hub structure instead
// of quadratically, so million-node power-law graphs fit in memory.
//
// Every node v carries two labels: Lin(v) = {(h, d(h,v))} over hubs that
// reach v and Lout(v) = {(h, d(v,h))} over hubs v reaches. Both include
// the self entry (v, 0). The exact distance is
//
//	d(u,v) = min { d(u,h) + d(h,v) : (h,·) ∈ Lout(u) ∩ Lin(v) }
//
// computed by one merge over the hub-sorted labels. Construction runs a
// forward and a backward pruned BFS from every node in descending-degree
// order: a BFS from hub h stops below any node w whose distance is
// already answered at least as well by earlier (higher-degree) hubs —
// the pruning invariant that keeps labels small on hub-heavy graphs.
//
// Label entries are bit-packed into uint32 words: the hub id in the top
// 24 bits, the distance in the low 8. Distances at or beyond 255
// saturate the field and keep their exact value in a per-direction
// overflow map, so queries stay exact on pathological long-path graphs
// while the common case costs 4 bytes per entry.
//
// Construction comes in two flavors. The classic sequential build
// (Options.Workers == 0) processes hubs strictly in rank order. The
// batched build (build_parallel.go, selected by Options.Workers >= 1 or
// Options.BitParallel > 0) partitions the hub order into rank batches,
// runs the pruned BFSes of one batch concurrently against the immutable
// committed prefix, and commits labels in rank order — so the index is
// identical at every worker count — optionally after a bit-parallel
// phase (bitparallel.go) that folds the top hubs into mask BFSes.
package pll

import (
	"context"
	"fmt"
	"sort"

	"gpm/internal/graph"
)

// MaxNodes is the largest node count the packed label words address: hub
// ids occupy the top 24 bits of a word. Build rejects larger graphs.
// It is a variable only so tests can lower the ceiling without
// allocating 2²⁴ real nodes; treat it as a constant everywhere else.
var MaxNodes = 1 << 24

// satDist is the saturation value of the 8-bit distance field. Entries
// whose distance is >= satDist store satDist in the word and their exact
// distance in the overflow map.
const satDist = 255

// ArenaEdgeThreshold is the edge count past which AutoOptions switches
// the build to arena-backed label storage (see Options.Arena).
const ArenaEdgeThreshold = 1 << 21

// Hub extracts the hub id from a packed label word.
func Hub(w uint32) int32 { return int32(w >> 8) }

// DistField extracts the raw distance field of a packed word: the exact
// distance for ordinary entries, and a lower bound (the saturation
// value) for overflowed ones. Bounded scans use it to skip entries
// without touching the overflow map; exact readers must go through
// OutDist/InDist instead.
func DistField(w uint32) int32 { return distField(w) }

func distField(w uint32) int32 { return int32(w & 0xff) }

func ovKey(node, hub int32) uint64 {
	return uint64(uint32(node))<<32 | uint64(uint32(hub))
}

// Index is an immutable pruned-landmark distance labelling. All methods
// are safe for concurrent use.
type Index struct {
	n      int
	inOff  []int64  // len n+1; in-label words of v are inW[inOff[v]:inOff[v+1]]
	inW    []uint32 // packed (hub, dist) words, sorted by hub
	outOff []int64
	outW   []uint32
	inOv   map[uint64]int32 // exact distances of saturated in entries
	outOv  map[uint64]int32
	bp     *bpIndex // bit-parallel root distances; nil when BitParallel == 0
}

// Options configures Build.
type Options struct {
	// Arena builds the intermediate per-node label lists in fixed-size
	// arena slabs (32-byte segments allocated from 256 KiB blocks)
	// instead of per-node append slices. On 10M-edge graphs this bounds
	// peak RSS: there is no doubling-growth transient and no per-node
	// slice header/capacity slack, at the cost of one extra copy when
	// the labels are compacted into their final CSR form. The resulting
	// index is bit-identical to the default build.
	Arena bool

	// Workers selects the batched-parallel builder (build_parallel.go)
	// and its concurrency. 0 keeps the classic strictly-sequential
	// build. Any value >= 1 runs the rank-batched build; the resulting
	// index is identical at every worker count (batching and commit
	// order are fixed by the graph, only scheduling varies), but it is
	// generally a superset of the classic build's labels — correctness
	// is pinned at the distance level, not the byte level.
	Workers int

	// BitParallel is the number of 64-root bit-parallel blocks (AIY §4.2
	// adapted to directed graphs): the top BitParallel×64 hubs are
	// folded into mask BFSes — two level-synchronised traversals per
	// block instead of 128 pruned BFSes — and their exact distances
	// serve both pruning during the rest of the build and queries.
	// BitParallel > 0 implies the batched builder.
	BitParallel int
}

// AutoOptions picks build options for f: slice-backed labels for small
// graphs, arena-backed past ArenaEdgeThreshold edges, and one
// bit-parallel block once the graph is large enough that the top hubs'
// full BFSes dominate the build.
func AutoOptions(f *graph.Frozen) Options {
	return Options{
		Arena:       f.M() >= ArenaEdgeThreshold,
		BitParallel: autoBitParallel(f.N()),
	}
}

// bpAutoMinNodes is the node count past which AutoOptions turns on the
// bit-parallel phase: below it the top hubs' BFSes are cheap and the
// 128 bytes/node of root-distance storage is pure overhead.
const bpAutoMinNodes = 4096

func autoBitParallel(n int) int {
	if n >= bpAutoMinNodes {
		return 1
	}
	return 0
}

// checkSize rejects node counts the 24-bit hub field cannot address.
func checkSize(n int) error {
	if n > MaxNodes {
		return fmt.Errorf("pll: graph has %d nodes; packed label words address at most %d", n, MaxNodes)
	}
	return nil
}

// Build constructs the labelling of f by pruned forward and backward BFS
// from every node in descending-degree order. It errors when f has more
// nodes than the packed words can address (MaxNodes) or when ctx is
// cancelled mid-build (the partial index is discarded).
func Build(ctx context.Context, f *graph.Frozen, opts Options) (*Index, error) {
	n := f.N()
	if err := checkSize(n); err != nil {
		return nil, err
	}
	idx := &Index{n: n, inOv: map[uint64]int32{}, outOv: map[uint64]int32{}}
	if n == 0 {
		idx.inOff = []int64{0}
		idx.outOff = []int64{0}
		return idx, nil
	}
	if opts.Workers > 0 || opts.BitParallel > 0 {
		if err := buildBatched(ctx, f, opts, idx); err != nil {
			return nil, err
		}
		return idx, nil
	}
	in := newStore(n, opts.Arena, idx.inOv)
	out := newStore(n, opts.Arena, idx.outOv)

	order := hubOrder(f)

	// T holds the current hub's own label expanded by hub id — the
	// "earlier hubs" side of the pruning query — reset via tTouched.
	T := make([]int32, n)
	dist := make([]int32, n)
	for i := range T {
		T[i] = -1
		dist[i] = -1
	}
	var tTouched []int32
	queue := make([]int32, 0, 1024)

	for _, h := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Forward BFS from h labels Lin: the pruning query needs
		// d(h, x) for every earlier hub x that h reaches, i.e. Lout(h).
		tTouched = out.loadT(h, T, tTouched[:0])
		if T[h] < 0 {
			T[h] = 0
			tTouched = append(tTouched, h)
		}
		err := prunedBFS(ctx, f, h, false, dist, &queue, T, in)
		for _, x := range tTouched {
			T[x] = -1
		}
		if err != nil {
			return nil, err
		}
		// Backward BFS labels Lout; the query side flips to Lin(h),
		// which now includes the self entry (h, 0) the forward pass
		// just added.
		tTouched = in.loadT(h, T, tTouched[:0])
		if T[h] < 0 {
			T[h] = 0
			tTouched = append(tTouched, h)
		}
		err = prunedBFS(ctx, f, h, true, dist, &queue, T, out)
		for _, x := range tTouched {
			T[x] = -1
		}
		if err != nil {
			return nil, err
		}
	}

	idx.inOff, idx.inW = in.compact(n)
	idx.outOff, idx.outW = out.compact(n)
	return idx, nil
}

// hubOrder returns every node in descending (in+out)-degree order, node
// id breaking ties — the processing rank shared by every build flavor.
func hubOrder(f *graph.Frozen) []int32 {
	order := make([]int32, f.N())
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		da := f.OutDegree(int(order[a])) + f.InDegree(int(order[a]))
		db := f.OutDegree(int(order[b])) + f.InDegree(int(order[b]))
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	return order
}

// ctxCheckMask throttles context polls inside BFS hot loops: the check
// runs every ctxCheckMask+1 dequeues, bounding cancellation latency by
// a few thousand node expansions while keeping the poll off the hot
// path.
const ctxCheckMask = 2047

// prunedBFS runs one pruned BFS from h — forward over out-edges when rev
// is false (adding h to Lin of reached nodes), backward over in-edges
// otherwise (adding h to Lout). dist must be pre-filled with -1 and is
// restored before returning (also on cancellation, so the caller's
// scratch stays reusable). A visited node w at depth d is pruned —
// neither labelled nor expanded — when the labels built so far already
// certify a path of length <= d between h and w (the AIY invariant:
// min over x in lbl(w) of T[x] + d(x-side) where T carries h's own
// label distances).
func prunedBFS(ctx context.Context, f *graph.Frozen, h int32, rev bool, dist []int32, queue *[]int32, T []int32, lbl *store) error {
	q := (*queue)[:0]
	dist[h] = 0
	q = append(q, h)
	var err error
	for head := 0; head < len(q); head++ {
		if head&ctxCheckMask == ctxCheckMask {
			if err = ctx.Err(); err != nil {
				break
			}
		}
		w := q[head]
		d := dist[w]
		if lbl.covered(w, T, d) {
			continue // earlier hubs already answer (h, w): prune subtree
		}
		lbl.append(w, h, d)
		var nbrs []int32
		if rev {
			nbrs = f.In(int(w))
		} else {
			nbrs = f.Out(int(w))
		}
		for _, x := range nbrs {
			if dist[x] < 0 {
				dist[x] = d + 1
				q = append(q, x)
			}
		}
	}
	for _, w := range q {
		dist[w] = -1
	}
	*queue = q
	return err
}

// N returns the number of nodes the index was built over.
func (x *Index) N() int { return x.n }

// OutLabel returns the packed out-label words of u, sorted by hub. The
// slice is owned by the index and must not be modified.
func (x *Index) OutLabel(u int) []uint32 { return x.outW[x.outOff[u]:x.outOff[u+1]] }

// InLabel returns the packed in-label words of v under the same
// ownership rules as OutLabel.
func (x *Index) InLabel(v int) []uint32 { return x.inW[x.inOff[v]:x.inOff[v+1]] }

// OutDist resolves the exact distance of one of u's out-label words,
// consulting the overflow map for saturated entries.
func (x *Index) OutDist(u int, w uint32) int32 {
	if d := distField(w); d != satDist {
		return d
	}
	return x.outOv[ovKey(int32(u), Hub(w))]
}

// InDist is OutDist for in-label words.
func (x *Index) InDist(v int, w uint32) int32 {
	if d := distField(w); d != satDist {
		return d
	}
	return x.inOv[ovKey(int32(v), Hub(w))]
}

// Dist returns the shortest-path distance u->v (0 when u == v), or -1
// when v is unreachable from u.
func (x *Index) Dist(u, v int) int { return x.DistWithin(u, v, -1) }

// DistWithin is Dist restricted to paths of length <= bound (bound < 0
// means unbounded): it returns -1 when the shortest path is longer. The
// bounded fast path skips label entries whose distance field alone
// already exceeds the bound, so small-k pattern probes never touch the
// overflow map. Bit-parallel root distances, when the index carries
// them, participate as one more candidate set: the exact distance is
// the minimum over ordinary hubs and bit-parallel roots.
func (x *Index) DistWithin(u, v, bound int) int {
	lo, li := x.OutLabel(u), x.InLabel(v)
	bb := int32(bound)
	best := x.bp.distWithin(u, v, bb)
	if best == 0 {
		return 0
	}
	i, j := 0, 0
	for i < len(lo) && j < len(li) {
		hu, hv := Hub(lo[i]), Hub(li[j])
		switch {
		case hu < hv:
			i++
		case hu > hv:
			j++
		default:
			du, dv := distField(lo[i]), distField(li[j])
			i++
			j++
			// Saturated fields under-report, so a field beyond the
			// bound proves the exact distance is too — safe to skip.
			if bound >= 0 && (du > bb || dv > bb) {
				continue
			}
			if du == satDist {
				du = x.outOv[ovKey(int32(u), hu)]
			}
			if dv == satDist {
				dv = x.inOv[ovKey(int32(v), hu)]
			}
			c := du + dv
			if bound >= 0 && c > bb {
				continue
			}
			if best < 0 || c < best {
				best = c
				if best == 0 {
					return 0 // only u == v via the self entries
				}
			}
		}
	}
	return int(best)
}

// BPDistWithin returns the best distance u->v certified by a
// bit-parallel root within bound (bound < 0 means unbounded), or -1
// when no root certifies one — always -1 on an index built without a
// bit-parallel phase. Label-merge consumers that expand labels
// themselves (the oracle layer's probe caches) fold this in as an
// extra candidate set: roots of complete blocks carry no ordinary
// label entries, so a label-only merge alone would miss their paths.
func (x *Index) BPDistWithin(u, v, bound int) int {
	return int(x.bp.distWithin(u, v, int32(bound)))
}

// LabelEntries returns the total number of label entries — the index
// size statistic the hub-labeling literature reports. Bit-parallel root
// distances are stored separately (see BitParallelRoots/MemoryBytes)
// and do not count as entries.
func (x *Index) LabelEntries() int { return len(x.inW) + len(x.outW) }

// BitParallelRoots reports how many hubs are served by the bit-parallel
// root-distance arrays instead of (or in addition to) ordinary labels —
// 0 when the index was built without a bit-parallel phase.
func (x *Index) BitParallelRoots() int {
	if x.bp == nil {
		return 0
	}
	return x.bp.rootCount()
}

// MemoryBytes estimates the index footprint: packed words, offset
// arrays, overflow map entries, and bit-parallel root distances.
func (x *Index) MemoryBytes() int64 {
	words := int64(len(x.inW)+len(x.outW)) * 4
	offs := int64(len(x.inOff)+len(x.outOff)) * 8
	ov := int64(len(x.inOv)+len(x.outOv)) * 16
	return words + offs + ov + x.bp.memoryBytes()
}

// store accumulates per-node label entries during construction, in
// either plain per-node slices or fixed-size arena segments.
type store struct {
	ov map[uint64]int32 // exact distances of saturated entries

	words [][]uint32 // slice mode

	a          *arena // arena mode
	head, tail []int32
	counts     []int32
}

func newStore(n int, arenaMode bool, ov map[uint64]int32) *store {
	s := &store{ov: ov}
	if !arenaMode {
		s.words = make([][]uint32, n)
		return s
	}
	s.a = &arena{}
	s.head = make([]int32, n)
	s.tail = make([]int32, n)
	s.counts = make([]int32, n)
	for i := range s.head {
		s.head[i] = -1
		s.tail[i] = -1
	}
	return s
}

func pack(hub, d int32) uint32 {
	if d > satDist {
		d = satDist
	}
	return uint32(hub)<<8 | uint32(d)
}

func (s *store) append(v, hub, d int32) {
	if d >= satDist {
		s.ov[ovKey(v, hub)] = d
	}
	w := pack(hub, d)
	if s.a == nil {
		s.words[v] = append(s.words[v], w)
		return
	}
	t := s.tail[v]
	if t < 0 || s.a.at(t).n == segCap {
		ns := s.a.alloc()
		if t < 0 {
			s.head[v] = ns
		} else {
			s.a.at(t).next = ns
		}
		s.tail[v] = ns
		t = ns
	}
	sg := s.a.at(t)
	sg.w[sg.n] = w
	sg.n++
	s.counts[v]++
}

// covered reports whether v's entries so far, combined with the current
// hub's distances in T, certify a path of length <= d — the pruning
// query. Saturated entries resolve through the overflow map: an
// under-reported distance here would over-prune and corrupt the index.
func (s *store) covered(v int32, T []int32, d int32) bool {
	if s.a == nil {
		for _, w := range s.words[v] {
			if entryCovers(v, w, T, d, s.ov) {
				return true
			}
		}
		return false
	}
	for si := s.head[v]; si >= 0; {
		sg := s.a.at(si)
		for k := int32(0); k < sg.n; k++ {
			if entryCovers(v, sg.w[k], T, d, s.ov) {
				return true
			}
		}
		si = sg.next
	}
	return false
}

func entryCovers(v int32, w uint32, T []int32, d int32, ov map[uint64]int32) bool {
	hub := Hub(w)
	t := T[hub]
	if t < 0 {
		return false
	}
	dw := distField(w)
	if dw == satDist {
		dw = ov[ovKey(v, hub)]
	}
	return t+dw <= d
}

// loadT expands v's label into T as exact hub-indexed distances and
// returns the touched hub list the caller resets with.
func (s *store) loadT(v int32, T []int32, touched []int32) []int32 {
	visit := func(w uint32) {
		hub := Hub(w)
		dw := distField(w)
		if dw == satDist {
			dw = s.ov[ovKey(v, hub)]
		}
		T[hub] = dw
		touched = append(touched, hub)
	}
	if s.a == nil {
		for _, w := range s.words[v] {
			visit(w)
		}
		return touched
	}
	for si := s.head[v]; si >= 0; {
		sg := s.a.at(si)
		for k := int32(0); k < sg.n; k++ {
			visit(sg.w[k])
		}
		si = sg.next
	}
	return touched
}

// compact flattens the per-node lists into a hub-sorted CSR, releasing
// the build-time storage as it goes. Entries were appended in hub-rank
// order; the final layout sorts them by hub id for merge queries. Both
// storage modes produce identical output.
func (s *store) compact(n int) ([]int64, []uint32) {
	off := make([]int64, n+1)
	total := 0
	if s.a == nil {
		for _, l := range s.words {
			total += len(l)
		}
	} else {
		for _, c := range s.counts {
			total += int(c)
		}
	}
	words := make([]uint32, 0, total)
	for v := 0; v < n; v++ {
		start := len(words)
		if s.a == nil {
			words = append(words, s.words[v]...)
			s.words[v] = nil
		} else {
			for si := s.head[v]; si >= 0; {
				sg := s.a.at(si)
				words = append(words, sg.w[:sg.n]...)
				si = sg.next
			}
		}
		seg := words[start:]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		off[v+1] = int64(len(words))
	}
	s.words = nil
	s.a = nil
	s.head, s.tail, s.counts = nil, nil, nil
	return off, words
}

// Arena storage: label entries live in 32-byte segments chained per
// node, allocated from fixed-size slabs — no doubling growth, no
// per-node allocator slack.
const (
	segCap   = 6
	slabSegs = 1 << 13 // 8192 segments = 256 KiB per slab
)

type seg struct {
	next int32
	n    int32
	w    [segCap]uint32
}

type arena struct {
	slabs [][]seg
	nseg  int
}

func (a *arena) alloc() int32 {
	if a.nseg/slabSegs == len(a.slabs) {
		a.slabs = append(a.slabs, make([]seg, slabSegs))
	}
	i := int32(a.nseg)
	a.nseg++
	sg := a.at(i)
	sg.next = -1
	sg.n = 0
	return i
}

func (a *arena) at(i int32) *seg { return &a.slabs[i/slabSegs][i%slabSegs] }
