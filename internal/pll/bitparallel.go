package pll

import (
	"context"
	"encoding/binary"
	"math/bits"

	"gpm/internal/graph"
)

// Bit-parallel root distances (Akiba–Iwata–Yoshida §4.2, adapted to
// directed graphs). The undirected AIY trick — encode a root's
// neighborhood in two 64-bit masks and correct distances by ±1 — does
// not survive asymmetry, so the directed adaptation keeps the part that
// does: fold 64 roots into ONE level-synchronised mask BFS per
// direction. Every node carries a 64-bit "reached" mask; a frontier
// step moves whole masks across edges, so an edge is traversed once per
// distinct arrival level instead of once per root, and the 128 most
// expensive pruned BFSes of the build (the top hubs reach almost
// everything, so nothing prunes them) collapse into about two
// traversals each way.
//
// The result is an exact distance table d(root_i → v) / d(v → root_i)
// stored as one byte per (node, root) pair. It serves three consumers:
// pruning during the batched build (a pair (h, w) is covered when some
// root certifies d(h, r) + d(r, w) <= depth), Index distance queries
// (roots are one more candidate set beside the label merge), and the
// oracle layer's probe scans.

// bpRootsPerBlock is the mask width: one block folds 64 roots.
const bpRootsPerBlock = 64

// bpNone marks a (node, root) pair with no stored distance: the node is
// unreachable from the root, or lies beyond bpMaxDist. Consumers must
// skip it — it is "no information", not "infinity", because a distance
// beyond bpMaxDist may still exist.
const bpNone = 255

// bpMaxDist is the largest distance one byte stores exactly. A block
// whose BFS still has a frontier past it is incomplete: its roots keep
// their ordinary pruned BFSes so label coverage stays exact, and the
// stored prefix still accelerates pruning and queries.
const bpMaxDist = 254

// bpIndex is the bit-parallel half of an Index: exact distances between
// every node and the top blocks×64 hubs, one byte each, 255 = bpNone.
type bpIndex struct {
	n      int
	blocks int
	roots  []int32 // blocks×64 root ids in hub-rank order; -1 pads short blocks
	fwd    []uint8 // d(root_i → v) at [b×n×64 + v×64 + i]
	bwd    []uint8 // d(v → root_i), same layout
	skip   []bool  // per block: both directions complete, roots need no pruned BFS
}

// fwdRow returns the d(root → v) byte row of v in block b.
func (bp *bpIndex) fwdRow(b int, v int32) []uint8 {
	off := b*bp.n*bpRootsPerBlock + int(v)*bpRootsPerBlock
	return bp.fwd[off : off+bpRootsPerBlock]
}

// bwdRow returns the d(v → root) byte row of v in block b.
func (bp *bpIndex) bwdRow(b int, v int32) []uint8 {
	off := b*bp.n*bpRootsPerBlock + int(v)*bpRootsPerBlock
	return bp.bwd[off : off+bpRootsPerBlock]
}

func (bp *bpIndex) rootCount() int {
	if bp == nil {
		return 0
	}
	c := 0
	for _, r := range bp.roots {
		if r >= 0 {
			c++
		}
	}
	return c
}

func (bp *bpIndex) memoryBytes() int64 {
	if bp == nil {
		return 0
	}
	return int64(len(bp.fwd)) + int64(len(bp.bwd)) + int64(len(bp.roots))*4
}

// distWithin returns the best root-certified distance u → v within
// bound (bound < 0 unbounded), or -1 when no root certifies one. Nil
// receivers (index built without a bit-parallel phase) report -1.
func (bp *bpIndex) distWithin(u, v int, bound int32) int32 {
	if bp == nil {
		return -1
	}
	best := int32(-1)
	for b := 0; b < bp.blocks; b++ {
		ur := bp.bwdRow(b, int32(u))
		vr := bp.fwdRow(b, int32(v))
		for i := 0; i < bpRootsPerBlock; i++ {
			du, dv := ur[i], vr[i]
			if du == bpNone || dv == bpNone {
				continue
			}
			c := int32(du) + int32(dv)
			if bound >= 0 && c > bound {
				continue
			}
			if best < 0 || c < best {
				best = c
				if best == 0 {
					return 0
				}
			}
		}
	}
	return best
}

// bpWordsPerRow is one row's 64 bytes viewed as 8 uint64 words — the
// unit of the SWAR coverage test.
const bpWordsPerRow = bpRootsPerBlock / 8

const (
	bpHiBits  = 0x8080808080808080 // bit 7 of every byte
	bpLowByte = 0x0101010101010101 // 1 in every byte
)

// loadCoverWords packs one node's 64-byte root-distance row into 8
// uint64 words for bpCovers. Byte order within a word is irrelevant —
// the SWAR test treats lanes independently — so this is a plain
// little-endian reinterpretation.
func loadCoverWords(row []uint8, out *[bpWordsPerRow]uint64) {
	for k := 0; k < bpWordsPerRow; k++ {
		out[k] = binary.LittleEndian.Uint64(row[k*8:])
	}
}

// bpCovers reports whether some root i certifies hRow[i] + wRow[i] <= d
// — the bit-parallel half of the pruning query, 8 roots per uint64 op.
// hw is the hub row packed by loadCoverWords; wRow is the node row raw.
//
// The SWAR form is exact for d < 127 (every BFS depth in practice):
// a lane with either byte >= 128 (which includes the bpNone marker)
// can never satisfy the test, and the remaining lanes' sums are exact
// 8-bit values, compared against d by adding 127-d and reading bit 7.
// All three steps keep every lane's arithmetic inside its own byte —
// no carry or borrow can cross lanes, so there are no false positives
// (a false positive here would prune a needed label entry and corrupt
// the index). Depths >= 127 take the scalar fallback.
func bpCovers(hw *[bpWordsPerRow]uint64, hRow, wRow []uint8, d int32) bool {
	if d >= 127 {
		return bpCoversScalar(hRow, wRow, d)
	}
	k := uint64(127-d) * bpLowByte
	for i := 0; i < bpWordsPerRow; i++ {
		x := hw[i]
		y := binary.LittleEndian.Uint64(wRow[i*8:])
		// Lanes where either byte has bit 7 set can't pass (sum > 127 > d).
		bad := (x | y) & bpHiBits
		// Exact per-lane sums of the low 7 bits; <= 254, so no carry out.
		t := (x &^ bpHiBits) + (y &^ bpHiBits)
		// Fold lanes whose true sum is >= 128 into the reject mask, then
		// saturate every rejected lane to 0x7F so the comparison below
		// cannot fire for it: 0x7F + (127-d) >= 128 for every d < 127.
		no := bad | (t & bpHiBits)
		t = (t &^ bpHiBits) | (no - no>>7)
		// Lane passes iff t + (127-d) <= 127, i.e. bit 7 stays clear.
		if hit := ^(t + k) & bpHiBits; hit != 0 {
			return true
		}
	}
	return false
}

// bpCoversScalar is the reference (and d >= 127 fallback) form of
// bpCovers over the raw byte rows.
func bpCoversScalar(hRow, wRow []uint8, d int32) bool {
	for i := 0; i < bpRootsPerBlock; i++ {
		hb, wb := hRow[i], wRow[i]
		if hb != bpNone && wb != bpNone && int32(hb)+int32(wb) <= d {
			return true
		}
	}
	return false
}

// buildBitParallel selects the top blocks×64 hubs of order as
// bit-parallel roots, runs the mask BFSes, and returns the bit-parallel
// index together with the hubs left for ordinary processing: roots of
// complete blocks are removed (their coverage is exact), roots of
// incomplete blocks stay.
func buildBitParallel(ctx context.Context, f *graph.Frozen, order []int32, blocks int) (*bpIndex, []int32, error) {
	n := f.N()
	if blocks*bpRootsPerBlock > len(order) {
		blocks = (len(order) + bpRootsPerBlock - 1) / bpRootsPerBlock
	}
	bp := &bpIndex{
		n:      n,
		blocks: blocks,
		roots:  make([]int32, blocks*bpRootsPerBlock),
		fwd:    make([]uint8, blocks*n*bpRootsPerBlock),
		bwd:    make([]uint8, blocks*n*bpRootsPerBlock),
		skip:   make([]bool, blocks),
	}
	for i := range bp.roots {
		if i < len(order) {
			bp.roots[i] = order[i]
		} else {
			bp.roots[i] = -1
		}
	}
	for i := range bp.fwd {
		bp.fwd[i] = bpNone
	}
	for i := range bp.bwd {
		bp.bwd[i] = bpNone
	}

	s := &bpScratch{
		cur:      make([]uint64, n),
		nxt:      make([]uint64, n),
		seen:     make([]uint64, n),
		frontier: make([]int32, 0, 1024),
		next:     make([]int32, 0, 1024),
	}
	size := n * bpRootsPerBlock
	for b := 0; b < blocks; b++ {
		roots := bp.roots[b*bpRootsPerBlock : (b+1)*bpRootsPerBlock]
		fOK, err := bpBFS(ctx, f, roots, bp.fwd[b*size:(b+1)*size], false, s)
		if err != nil {
			return nil, nil, err
		}
		bOK, err := bpBFS(ctx, f, roots, bp.bwd[b*size:(b+1)*size], true, s)
		if err != nil {
			return nil, nil, err
		}
		bp.skip[b] = fOK && bOK
	}

	rest := make([]int32, 0, len(order))
	for i, h := range order {
		if b := i / bpRootsPerBlock; b < blocks && bp.skip[b] {
			continue // exact coverage via the mask BFS: no pruned BFS needed
		}
		rest = append(rest, h)
	}
	return bp, rest, nil
}

// bpScratch is the reusable working state of bpBFS: mask arrays sized
// to the graph and the two frontier lists.
type bpScratch struct {
	cur, nxt []uint64 // root masks arriving at this / the next level
	seen     []uint64
	frontier []int32
	next     []int32
}

// bpBFS runs one level-synchronised 64-source mask BFS from roots into
// dist (len n×64, pre-filled bpNone), over out-edges when rev is false
// and in-edges otherwise. It reports whether the BFS completed within
// bpMaxDist levels; on an incomplete run the reached prefix is exact
// and everything beyond stays bpNone. Scratch mask arrays must be zero
// on entry and are re-zeroed before returning.
func bpBFS(ctx context.Context, f *graph.Frozen, roots []int32, dist []uint8, rev bool, s *bpScratch) (complete bool, err error) {
	cur, nxt, seen := s.cur, s.nxt, s.seen
	frontier, next := s.frontier[:0], s.next[:0]
	for i, r := range roots {
		if r < 0 {
			continue
		}
		if cur[r] == 0 {
			frontier = append(frontier, r)
		}
		cur[r] |= uint64(1) << uint(i)
	}
	complete = true
	for d := int32(0); len(frontier) > 0; d++ {
		if err := ctx.Err(); err != nil {
			bpResetMasks(cur, nxt, seen, frontier, next)
			return false, err
		}
		if d > bpMaxDist {
			complete = false // leftover frontier keeps bpNone: "no info"
			break
		}
		// Settle: bits arriving at this level that no earlier level saw
		// are final distances.
		for _, v := range frontier {
			nb := cur[v] &^ seen[v]
			cur[v] = nb
			if nb == 0 {
				continue
			}
			seen[v] |= nb
			row := dist[int(v)*bpRootsPerBlock : (int(v)+1)*bpRootsPerBlock]
			for m := nb; m != 0; m &= m - 1 {
				row[bits.TrailingZeros64(m)] = uint8(d)
			}
		}
		// Expand: move each node's new mask across its edges.
		next = next[:0]
		for _, v := range frontier {
			nb := cur[v]
			cur[v] = 0
			if nb == 0 {
				continue
			}
			var nbrs []int32
			if rev {
				nbrs = f.In(int(v))
			} else {
				nbrs = f.Out(int(v))
			}
			for _, w := range nbrs {
				add := nb &^ seen[w]
				if add == 0 {
					continue
				}
				if nxt[w] == 0 {
					next = append(next, w)
				}
				nxt[w] |= add
			}
		}
		cur, nxt = nxt, cur
		frontier, next = next, frontier
	}
	bpResetMasks(cur, nxt, seen, frontier, next)
	s.cur, s.nxt, s.seen = cur, nxt, seen
	s.frontier, s.next = frontier[:0], next[:0]
	return complete, nil
}

// bpResetMasks re-zeroes the scratch arrays after a run (or an aborted
// one): cur may hold the unexpanded frontier masks, nxt partially
// accumulated next-level masks, and seen everything settled.
func bpResetMasks(cur, nxt, seen []uint64, frontier, next []int32) {
	for _, v := range frontier {
		cur[v] = 0
	}
	for _, v := range next {
		nxt[v] = 0
	}
	for i := range seen {
		if seen[i] != 0 {
			seen[i] = 0
			cur[i] = 0
			nxt[i] = 0
		}
	}
}
