package pll

import (
	"reflect"
	"testing"

	"gpm/internal/graph"
)

// decodeGraph deterministically builds a small digraph from fuzz bytes:
// one byte of node count, then alternating (from, to) pairs. Every byte
// string decodes to a valid graph, so the fuzzer explores label
// construction and queries, not input rejection.
func decodeGraph(data []byte) *graph.Graph {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	n := 2 + int(next())%24 // 2..25 nodes
	g := graph.New(n)
	for len(data) >= 2 {
		g.AddEdge(int(next())%n, int(next())%n)
	}
	return g
}

// FuzzPLL drives Build with random small digraphs and upholds the
// package invariants on every input: both storage modes produce
// bit-identical labels, the batched build produces a byte-identical
// index at 1 and 8 workers (with and without the bit-parallel phase),
// every pairwise distance of every flavor agrees with a reference BFS,
// and bounded queries clamp exactly.
func FuzzPLL(f *testing.F) {
	f.Add([]byte("\x04\x00\x01\x01\x02\x02\x03\x03\x00"))             // 6-node ring
	f.Add([]byte("\x02\x00\x01\x01\x00\x00\x00"))                     // 2-cycle + self-loop
	f.Add([]byte("\x0a\x00\x01\x00\x02\x00\x03\x01\x04\x02\x04"))     // hub fan-out
	f.Add([]byte("\x17\x00\x01\x01\x02\x02\x03\x03\x04\x04\x05\x05")) // path with tail
	f.Fuzz(func(t *testing.T, data []byte) {
		g := decodeGraph(data)
		fz := g.Freeze()
		plain, err := Build(bg, fz, Options{})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		arena, err := Build(bg, fz, Options{Arena: true})
		if err != nil {
			t.Fatalf("Build(arena): %v", err)
		}
		if plain.LabelEntries() != arena.LabelEntries() {
			t.Fatalf("arena build has %d entries, plain %d", arena.LabelEntries(), plain.LabelEntries())
		}
		// Worker-count determinism, the batched build's core contract:
		// 1 worker and 8 workers must agree to the byte, bit-parallel
		// phase on or off.
		variants := []*Index{plain, arena}
		for _, blocks := range []int{0, 1} {
			w1, err := Build(bg, fz, Options{Workers: 1, BitParallel: blocks})
			if err != nil {
				t.Fatalf("Build(w1,bp=%d): %v", blocks, err)
			}
			w8, err := Build(bg, fz, Options{Workers: 8, BitParallel: blocks})
			if err != nil {
				t.Fatalf("Build(w8,bp=%d): %v", blocks, err)
			}
			if !reflect.DeepEqual(w1, w8) {
				t.Fatalf("bp=%d: index differs between 1 and 8 workers", blocks)
			}
			variants = append(variants, w1)
		}
		truth := bfsTruth(fz)
		n := fz.N()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				want := int(truth[u][v])
				for vi, idx := range variants {
					if got := idx.Dist(u, v); got != want {
						t.Fatalf("variant %d Dist(%d,%d) = %d, BFS says %d", vi, u, v, got, want)
					}
				}
				for _, b := range []int{0, 1, 2, 5} {
					wantB := want
					if want < 0 || want > b {
						wantB = -1
					}
					for vi, idx := range variants {
						if got := idx.DistWithin(u, v, b); got != wantB {
							t.Fatalf("variant %d DistWithin(%d,%d,%d) = %d, want %d", vi, u, v, b, got, wantB)
						}
					}
				}
			}
		}
	})
}
