package pll

import (
	"testing"

	"gpm/internal/graph"
)

// decodeGraph deterministically builds a small digraph from fuzz bytes:
// one byte of node count, then alternating (from, to) pairs. Every byte
// string decodes to a valid graph, so the fuzzer explores label
// construction and queries, not input rejection.
func decodeGraph(data []byte) *graph.Graph {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	n := 2 + int(next())%24 // 2..25 nodes
	g := graph.New(n)
	for len(data) >= 2 {
		g.AddEdge(int(next())%n, int(next())%n)
	}
	return g
}

// FuzzPLL drives Build with random small digraphs and upholds the
// package invariants on every input: both storage modes produce
// bit-identical labels, every pairwise distance agrees with a reference
// BFS, and bounded queries clamp exactly.
func FuzzPLL(f *testing.F) {
	f.Add([]byte("\x04\x00\x01\x01\x02\x02\x03\x03\x00"))             // 6-node ring
	f.Add([]byte("\x02\x00\x01\x01\x00\x00\x00"))                     // 2-cycle + self-loop
	f.Add([]byte("\x0a\x00\x01\x00\x02\x00\x03\x01\x04\x02\x04"))     // hub fan-out
	f.Add([]byte("\x17\x00\x01\x01\x02\x02\x03\x03\x04\x04\x05\x05")) // path with tail
	f.Fuzz(func(t *testing.T, data []byte) {
		g := decodeGraph(data)
		fz := g.Freeze()
		plain, err := Build(fz, Options{})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		arena, err := Build(fz, Options{Arena: true})
		if err != nil {
			t.Fatalf("Build(arena): %v", err)
		}
		if plain.LabelEntries() != arena.LabelEntries() {
			t.Fatalf("arena build has %d entries, plain %d", arena.LabelEntries(), plain.LabelEntries())
		}
		truth := bfsTruth(fz)
		n := fz.N()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				want := int(truth[u][v])
				if got := plain.Dist(u, v); got != want {
					t.Fatalf("Dist(%d,%d) = %d, BFS says %d", u, v, got, want)
				}
				if got := arena.Dist(u, v); got != want {
					t.Fatalf("arena Dist(%d,%d) = %d, BFS says %d", u, v, got, want)
				}
				for _, b := range []int{0, 1, 2, 5} {
					wantB := want
					if want < 0 || want > b {
						wantB = -1
					}
					if got := plain.DistWithin(u, v, b); got != wantB {
						t.Fatalf("DistWithin(%d,%d,%d) = %d, want %d", u, v, b, got, wantB)
					}
				}
			}
		}
	})
}
