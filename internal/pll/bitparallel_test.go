package pll

import (
	"math/rand"
	"testing"
)

// TestBPCoversMatchesScalar pins the SWAR coverage test against the
// scalar reference on adversarial byte rows. A SWAR false positive
// would prune a needed label entry and silently corrupt the index, so
// every boundary the lane arithmetic has — sums crossing 127, operands
// crossing 128, the bpNone marker, d at the scalar-fallback edge — is
// driven explicitly alongside random rows.
func TestBPCoversMatchesScalar(t *testing.T) {
	// Values straddling every lane boundary the SWAR form cares about.
	edge := []uint8{0, 1, 63, 64, 126, 127, 128, 129, 253, bpMaxDist, bpNone}
	rng := rand.New(rand.NewSource(99))
	randRow := func() []uint8 {
		row := make([]uint8, bpRootsPerBlock)
		for i := range row {
			switch rng.Intn(3) {
			case 0:
				row[i] = edge[rng.Intn(len(edge))]
			case 1:
				row[i] = uint8(rng.Intn(16)) // realistic small distances
			default:
				row[i] = uint8(rng.Intn(256))
			}
		}
		return row
	}
	ds := []int32{0, 1, 2, 5, 63, 125, 126, 127, 128, 254, 300}
	var hw [bpWordsPerRow]uint64
	for trial := 0; trial < 5000; trial++ {
		hRow, wRow := randRow(), randRow()
		if trial%17 == 0 {
			// Single-lane rows: isolate each lane position once in a while
			// so a cross-lane carry bug cannot hide behind other lanes.
			lane := rng.Intn(bpRootsPerBlock)
			solo := make([]uint8, bpRootsPerBlock)
			for i := range solo {
				solo[i] = bpNone
			}
			solo[lane] = hRow[lane]
			hRow = solo
		}
		loadCoverWords(hRow, &hw)
		for _, d := range ds {
			got := bpCovers(&hw, hRow, wRow, d)
			want := bpCoversScalar(hRow, wRow, d)
			if got != want {
				t.Fatalf("trial %d d=%d: bpCovers=%v scalar=%v\nh=%v\nw=%v",
					trial, d, got, want, hRow, wRow)
			}
		}
	}
}
