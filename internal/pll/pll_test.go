package pll

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"gpm/internal/graph"
)

// bg is the build context for tests that don't exercise cancellation.
var bg = context.Background()

// buildVariants covers every construction flavor: classic sequential,
// arena spill, batched at several worker counts, and the bit-parallel
// phase with and without extra workers.
var buildVariants = []struct {
	name string
	opts Options
}{
	{"classic", Options{}},
	{"arena", Options{Arena: true}},
	{"batched-w1", Options{Workers: 1}},
	{"batched-w4", Options{Workers: 4}},
	{"bp", Options{BitParallel: 1}},
	{"bp-w4", Options{Workers: 4, BitParallel: 1}},
	{"bp2-arena-w2", Options{Arena: true, Workers: 2, BitParallel: 2}},
}

// randomGraph builds a seeded random digraph with roughly density*n*n
// edges (self-loops allowed — the matcher's graphs have them).
func randomGraph(n int, density float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	edges := int(density * float64(n) * float64(n))
	for i := 0; i < edges; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

// bfsTruth computes the all-pairs distance matrix by one BFS per source.
func bfsTruth(f *graph.Frozen) [][]int32 {
	n := f.N()
	d := make([][]int32, n)
	for src := 0; src < n; src++ {
		row := make([]int32, n)
		for i := range row {
			row[i] = -1
		}
		f.BFSDistInto(src, -1, row, nil)
		d[src] = row
	}
	return d
}

func checkAgainstBFS(t *testing.T, f *graph.Frozen, idx *Index) {
	t.Helper()
	truth := bfsTruth(f)
	n := f.N()
	bounds := []int{-1, 0, 1, 2, 3, 7}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			want := int(truth[u][v])
			if got := idx.Dist(u, v); got != want {
				t.Fatalf("Dist(%d,%d) = %d, BFS says %d", u, v, got, want)
			}
			for _, b := range bounds {
				wantB := want
				if want < 0 || (b >= 0 && want > b) {
					wantB = -1
				}
				if got := idx.DistWithin(u, v, b); got != wantB {
					t.Fatalf("DistWithin(%d,%d,%d) = %d, want %d", u, v, b, got, wantB)
				}
			}
		}
	}
}

func TestDistMatchesBFS(t *testing.T) {
	cases := []struct {
		n       int
		density float64
		seed    int64
	}{
		{1, 0, 1},
		{2, 0.5, 2},
		{8, 0.2, 3},
		{16, 0.1, 4},
		{16, 0.4, 5},
		{40, 0.05, 6},
		{40, 0.15, 7},
		{120, 0.01, 8},
		{120, 0.05, 9},
	}
	for _, tc := range cases {
		g := randomGraph(tc.n, tc.density, tc.seed)
		f := g.Freeze()
		for _, bv := range buildVariants {
			idx, err := Build(bg, f, bv.opts)
			if err != nil {
				t.Fatalf("Build(n=%d, %s): %v", tc.n, bv.name, err)
			}
			checkAgainstBFS(t, f, idx)
		}
	}
}

// TestArenaIdenticalIndex pins the spill path: arena-backed construction
// must produce a bit-identical index to the default build.
func TestArenaIdenticalIndex(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomGraph(60, 0.08, 100+seed)
		f := g.Freeze()
		plain, err := Build(bg, f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		arena, err := Build(bg, f, Options{Arena: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, arena) {
			t.Fatalf("seed %d: arena build differs from plain build", seed)
		}
	}
}

// TestBatchedDeterministicAcrossWorkers pins the batched build's central
// promise: worker count affects scheduling only, never the index. Every
// (bit-parallel, arena) combination must produce byte-identical labels
// at 1, 2, 3, and 8 workers.
func TestBatchedDeterministicAcrossWorkers(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := randomGraph(80, 0.06, 300+seed)
		f := g.Freeze()
		for _, blocks := range []int{0, 1} {
			for _, arena := range []bool{false, true} {
				ref, err := Build(bg, f, Options{Workers: 1, BitParallel: blocks, Arena: arena})
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range []int{2, 3, 8} {
					got, err := Build(bg, f, Options{Workers: w, BitParallel: blocks, Arena: arena})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(ref, got) {
						t.Fatalf("seed %d bp=%d arena=%v: index at %d workers differs from 1 worker",
							seed, blocks, arena, w)
					}
				}
			}
		}
	}
}

// TestLongPathOverflow drives distances past the 8-bit saturation point:
// a 600-edge path must still answer exactly through the overflow map.
// The bit-parallel variants exercise the incomplete-block path — the
// mask BFS overflows its byte distances at 254, so its roots must keep
// their ordinary pruned BFSes and queries stay exact end to end.
func TestLongPathOverflow(t *testing.T) {
	const n = 601
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	f := g.Freeze()
	for _, bv := range buildVariants {
		idx, err := Build(bg, f, bv.opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct{ u, v, want int }{
			{0, n - 1, n - 1}, // 600: deep in overflow
			{0, 300, 300},
			{0, 254, 254},
			{0, 255, 255}, // exactly at the saturation value
			{0, 256, 256},
			{100, 500, 400},
			{500, 100, -1},
		} {
			if got := idx.Dist(tc.u, tc.v); got != tc.want {
				t.Fatalf("%s Dist(%d,%d) = %d, want %d", bv.name, tc.u, tc.v, got, tc.want)
			}
		}
		if got := idx.DistWithin(0, n-1, n-2); got != -1 {
			t.Fatalf("%s DistWithin(0,%d,%d) = %d, want -1", bv.name, n-1, n-2, got)
		}
		if got := idx.DistWithin(0, n-1, n-1); got != n-1 {
			t.Fatalf("%s DistWithin(0,%d,%d) = %d, want %d", bv.name, n-1, n-1, got, n-1)
		}
	}
}

func TestEmptyAndTiny(t *testing.T) {
	for _, bv := range buildVariants {
		idx, err := Build(bg, graph.New(0).Freeze(), bv.opts)
		if err != nil {
			t.Fatal(err)
		}
		if idx.N() != 0 || idx.LabelEntries() != 0 {
			t.Fatalf("%s empty graph: N=%d entries=%d", bv.name, idx.N(), idx.LabelEntries())
		}

		g := graph.New(1)
		g.AddEdge(0, 0) // self-loop: Dist is still 0, the loop is a cycle
		idx, err = Build(bg, g.Freeze(), bv.opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := idx.Dist(0, 0); got != 0 {
			t.Fatalf("%s Dist(0,0) = %d, want 0", bv.name, got)
		}
	}
}

// TestSelfEntries pins the label invariant the oracle layer's probe
// caches rely on: every node carries (v, 0) in both of its labels —
// including bit-parallel roots whose pruned BFSes were skipped.
func TestSelfEntries(t *testing.T) {
	g := randomGraph(30, 0.1, 42)
	for _, bv := range buildVariants {
		idx, err := Build(bg, g.Freeze(), bv.opts)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			found := 0
			for _, w := range idx.OutLabel(v) {
				if Hub(w) == int32(v) && idx.OutDist(v, w) == 0 {
					found++
				}
			}
			for _, w := range idx.InLabel(v) {
				if Hub(w) == int32(v) && idx.InDist(v, w) == 0 {
					found++
				}
			}
			if found != 2 {
				t.Fatalf("%s node %d: %d self entries, want 2", bv.name, v, found)
			}
		}
		if idx.LabelEntries() < 2*g.N() {
			t.Fatalf("%s LabelEntries() = %d, want >= %d", bv.name, idx.LabelEntries(), 2*g.N())
		}
		if idx.MemoryBytes() <= 0 {
			t.Fatal("MemoryBytes() must be positive")
		}
		if bv.opts.BitParallel > 0 {
			if idx.BitParallelRoots() != 30 {
				t.Fatalf("%s BitParallelRoots() = %d, want 30", bv.name, idx.BitParallelRoots())
			}
		} else if idx.BitParallelRoots() != 0 {
			t.Fatalf("%s BitParallelRoots() = %d, want 0", bv.name, idx.BitParallelRoots())
		}
	}
}

// TestBatchedSupersetOfClassic documents the batched build's label
// discipline: it may add entries the sequential build prunes (hubs in
// one batch cannot see each other), but never loses one.
func TestBatchedSupersetOfClassic(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := randomGraph(70, 0.07, 500+seed)
		f := g.Freeze()
		classic, err := Build(bg, f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		batched, err := Build(bg, f, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if batched.LabelEntries() < classic.LabelEntries() {
			t.Fatalf("seed %d: batched build has %d entries, classic %d — batched must be a superset",
				seed, batched.LabelEntries(), classic.LabelEntries())
		}
		has := func(words []uint32, hub int32) bool {
			for _, w := range words {
				if Hub(w) == hub {
					return true
				}
			}
			return false
		}
		for v := 0; v < f.N(); v++ {
			for _, w := range classic.InLabel(v) {
				if !has(batched.InLabel(v), Hub(w)) {
					t.Fatalf("seed %d: batched in-label of %d lost hub %d", seed, v, Hub(w))
				}
			}
			for _, w := range classic.OutLabel(v) {
				if !has(batched.OutLabel(v), Hub(w)) {
					t.Fatalf("seed %d: batched out-label of %d lost hub %d", seed, v, Hub(w))
				}
			}
		}
	}
}

// TestBuildCancellation covers every builder flavor: a cancelled context
// aborts construction with the context's error instead of returning a
// partial index.
func TestBuildCancellation(t *testing.T) {
	g := randomGraph(200, 0.05, 7)
	f := g.Freeze()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, bv := range buildVariants {
		idx, err := Build(ctx, f, bv.opts)
		if err != context.Canceled {
			t.Fatalf("%s: Build on cancelled ctx: idx=%v err=%v, want context.Canceled", bv.name, idx, err)
		}
	}
}

func TestBuildRejectsOversizedGraph(t *testing.T) {
	// Allocating 2^24+1 real nodes would eat ~1 GB in a unit test, so
	// probe the size guard Build delegates to directly.
	if err := checkSize(MaxNodes + 1); err == nil {
		t.Fatal("checkSize accepted a graph larger than MaxNodes")
	}
	if err := checkSize(MaxNodes); err != nil {
		t.Fatalf("checkSize rejected MaxNodes: %v", err)
	}
}
