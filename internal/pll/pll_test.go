package pll

import (
	"math/rand"
	"reflect"
	"testing"

	"gpm/internal/graph"
)

// randomGraph builds a seeded random digraph with roughly density*n*n
// edges (self-loops allowed — the matcher's graphs have them).
func randomGraph(n int, density float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	edges := int(density * float64(n) * float64(n))
	for i := 0; i < edges; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

// bfsTruth computes the all-pairs distance matrix by one BFS per source.
func bfsTruth(f *graph.Frozen) [][]int32 {
	n := f.N()
	d := make([][]int32, n)
	for src := 0; src < n; src++ {
		row := make([]int32, n)
		for i := range row {
			row[i] = -1
		}
		f.BFSDistInto(src, -1, row, nil)
		d[src] = row
	}
	return d
}

func checkAgainstBFS(t *testing.T, f *graph.Frozen, idx *Index) {
	t.Helper()
	truth := bfsTruth(f)
	n := f.N()
	bounds := []int{-1, 0, 1, 2, 3, 7}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			want := int(truth[u][v])
			if got := idx.Dist(u, v); got != want {
				t.Fatalf("Dist(%d,%d) = %d, BFS says %d", u, v, got, want)
			}
			for _, b := range bounds {
				wantB := want
				if want < 0 || (b >= 0 && want > b) {
					wantB = -1
				}
				if got := idx.DistWithin(u, v, b); got != wantB {
					t.Fatalf("DistWithin(%d,%d,%d) = %d, want %d", u, v, b, got, wantB)
				}
			}
		}
	}
}

func TestDistMatchesBFS(t *testing.T) {
	cases := []struct {
		n       int
		density float64
		seed    int64
	}{
		{1, 0, 1},
		{2, 0.5, 2},
		{8, 0.2, 3},
		{16, 0.1, 4},
		{16, 0.4, 5},
		{40, 0.05, 6},
		{40, 0.15, 7},
		{120, 0.01, 8},
		{120, 0.05, 9},
	}
	for _, tc := range cases {
		g := randomGraph(tc.n, tc.density, tc.seed)
		f := g.Freeze()
		for _, arena := range []bool{false, true} {
			idx, err := Build(f, Options{Arena: arena})
			if err != nil {
				t.Fatalf("Build(n=%d, arena=%v): %v", tc.n, arena, err)
			}
			checkAgainstBFS(t, f, idx)
		}
	}
}

// TestArenaIdenticalIndex pins the spill path: arena-backed construction
// must produce a bit-identical index to the default build.
func TestArenaIdenticalIndex(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomGraph(60, 0.08, 100+seed)
		f := g.Freeze()
		plain, err := Build(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		arena, err := Build(f, Options{Arena: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, arena) {
			t.Fatalf("seed %d: arena build differs from plain build", seed)
		}
	}
}

// TestLongPathOverflow drives distances past the 8-bit saturation point:
// a 600-edge path must still answer exactly through the overflow map.
func TestLongPathOverflow(t *testing.T) {
	const n = 601
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	f := g.Freeze()
	for _, arena := range []bool{false, true} {
		idx, err := Build(f, Options{Arena: arena})
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct{ u, v, want int }{
			{0, n - 1, n - 1}, // 600: deep in overflow
			{0, 300, 300},
			{0, 254, 254},
			{0, 255, 255}, // exactly at the saturation value
			{0, 256, 256},
			{100, 500, 400},
			{500, 100, -1},
		} {
			if got := idx.Dist(tc.u, tc.v); got != tc.want {
				t.Fatalf("arena=%v Dist(%d,%d) = %d, want %d", arena, tc.u, tc.v, got, tc.want)
			}
		}
		if got := idx.DistWithin(0, n-1, n-2); got != -1 {
			t.Fatalf("DistWithin(0,%d,%d) = %d, want -1", n-1, n-2, got)
		}
		if got := idx.DistWithin(0, n-1, n-1); got != n-1 {
			t.Fatalf("DistWithin(0,%d,%d) = %d, want %d", n-1, n-1, got, n-1)
		}
	}
}

func TestEmptyAndTiny(t *testing.T) {
	idx, err := Build(graph.New(0).Freeze(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.N() != 0 || idx.LabelEntries() != 0 {
		t.Fatalf("empty graph: N=%d entries=%d", idx.N(), idx.LabelEntries())
	}

	g := graph.New(1)
	g.AddEdge(0, 0) // self-loop: Dist is still 0, the loop is a cycle
	idx, err = Build(g.Freeze(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Dist(0, 0); got != 0 {
		t.Fatalf("Dist(0,0) = %d, want 0", got)
	}
}

// TestSelfEntries pins the label invariant the oracle layer's probe
// caches rely on: every node carries (v, 0) in both of its labels.
func TestSelfEntries(t *testing.T) {
	g := randomGraph(30, 0.1, 42)
	idx, err := Build(g.Freeze(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		found := 0
		for _, w := range idx.OutLabel(v) {
			if Hub(w) == int32(v) && idx.OutDist(v, w) == 0 {
				found++
			}
		}
		for _, w := range idx.InLabel(v) {
			if Hub(w) == int32(v) && idx.InDist(v, w) == 0 {
				found++
			}
		}
		if found != 2 {
			t.Fatalf("node %d: %d self entries, want 2", v, found)
		}
	}
	if idx.LabelEntries() < 2*g.N() {
		t.Fatalf("LabelEntries() = %d, want >= %d", idx.LabelEntries(), 2*g.N())
	}
	if idx.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes() must be positive")
	}
}

func TestBuildRejectsOversizedGraph(t *testing.T) {
	// Allocating 2^24+1 real nodes would eat ~1 GB in a unit test, so
	// probe the size guard Build delegates to directly.
	if err := checkSize(MaxNodes + 1); err == nil {
		t.Fatal("checkSize accepted a graph larger than MaxNodes")
	}
	if err := checkSize(MaxNodes); err != nil {
		t.Fatalf("checkSize rejected MaxNodes: %v", err)
	}
}
