package pll

import (
	"context"
	"sync"
	"sync/atomic"

	"gpm/internal/graph"
)

// Batched-parallel construction (paraPLL-style). The hub order is
// partitioned into rank batches; the pruned BFSes of one batch run
// concurrently, pruning only against the committed labels of previous
// batches (plus the bit-parallel roots), and their label additions are
// buffered and committed single-threaded in rank order between batches.
//
// Two properties fall out of that protocol:
//
//   - Determinism. What a BFS produces depends only on the committed
//     prefix, and the batch schedule (doubling sizes, capped) is fixed
//     by the graph alone — so the index is byte-identical at every
//     worker count; only scheduling varies.
//   - Supersets, not equality. Hubs inside one batch cannot prune
//     against each other the way the strictly-sequential build lets
//     them, so batched labels may strictly contain the classic build's.
//     Correctness is therefore pinned at the distance level: every
//     entry is a true distance, and coverage of all pairs is preserved
//     (the pruning certificate only ever cites already-committed,
//     higher-ranked hubs). The small doubling batches keep the
//     redundancy negligible — the high-degree hubs that do almost all
//     the pruning sit alone or nearly alone in the earliest batches.

// maxBatch caps the doubling batch size. Larger batches expose more
// parallelism but weaken intra-batch pruning; 64 keeps the label
// overhead against the sequential build under a few percent while
// saturating any realistic worker count on the flat tail of the degree
// distribution.
const maxBatch = 64

// labelAdd is one buffered label entry: hub t.hub reaches node at
// distance d (direction decided by the task).
type labelAdd struct {
	node, d int32
}

// batchTask is one pruned BFS of the current batch: hub × direction.
// Workers claim tasks off an atomic counter and buffer additions into
// buf; the coordinator commits bufs in task (= rank) order.
type batchTask struct {
	hub int32
	rev bool
	buf []labelAdd
	err error
}

// batchScratch is one worker's reusable BFS state, mirroring the
// classic build's scratch plus the per-block hub-side cover rows of the
// bit-parallel pruning query (raw bytes for the scalar fallback, packed
// words for the SWAR fast path).
type batchScratch struct {
	dist     []int32
	T        []int32
	tTouched []int32
	queue    []int32
	hRow     [][]uint8
	hw       [][bpWordsPerRow]uint64
}

func newBatchScratch(n, blocks int) *batchScratch {
	sc := &batchScratch{
		dist:  make([]int32, n),
		T:     make([]int32, n),
		queue: make([]int32, 0, 1024),
		hRow:  make([][]uint8, blocks),
		hw:    make([][bpWordsPerRow]uint64, blocks),
	}
	for i := range sc.dist {
		sc.dist[i] = -1
		sc.T[i] = -1
	}
	return sc
}

// buildBatched is the batched-parallel flavor of Build: an optional
// bit-parallel phase over the top hubs, then rank batches of concurrent
// pruned BFSes committed in order.
func buildBatched(ctx context.Context, f *graph.Frozen, opts Options, idx *Index) error {
	n := f.N()
	in := newStore(n, opts.Arena, idx.inOv)
	out := newStore(n, opts.Arena, idx.outOv)
	order := hubOrder(f)

	var bp *bpIndex
	var pruneBlocks []int
	if opts.BitParallel > 0 {
		var err error
		bp, order, err = buildBitParallel(ctx, f, order, opts.BitParallel)
		if err != nil {
			return err
		}
		idx.bp = bp
		// Only complete blocks may prune: their arrays hold the exact
		// distance of every reachable (root, node) pair, so a certificate
		// cited during pruning is always visible again at query time. An
		// incomplete block's arrays are partial — its roots keep their
		// pruned BFSes (they stay in order) and the arrays serve queries
		// only as extra candidates.
		for b := 0; b < bp.blocks; b++ {
			if !bp.skip[b] {
				continue
			}
			pruneBlocks = append(pruneBlocks, b)
			// Roots with no pruned BFS still carry their self entries:
			// every consumer (loadT, the self-entry invariant, the
			// oracle probes) assumes (v, 0) is in both labels of v.
			for _, r := range bp.roots[b*bpRootsPerBlock : (b+1)*bpRootsPerBlock] {
				if r >= 0 {
					in.append(r, r, 0)
					out.append(r, r, 0)
				}
			}
		}
	}

	workers := opts.Workers
	if workers < 1 {
		workers = 1 // BitParallel > 0 alone selects this builder
	}
	blocks := 0
	if bp != nil {
		blocks = bp.blocks
	}
	scratch := make([]*batchScratch, workers)
	for i := range scratch {
		scratch[i] = newBatchScratch(n, blocks)
	}

	var tasks []batchTask
	size := 1
	for lo := 0; lo < len(order); {
		hi := lo + size
		if hi > len(order) {
			hi = len(order)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		tasks = tasks[:0]
		for _, h := range order[lo:hi] {
			tasks = append(tasks,
				batchTask{hub: h, rev: false},
				batchTask{hub: h, rev: true})
		}
		if err := runBatch(ctx, f, tasks, scratch, in, out, bp, pruneBlocks); err != nil {
			return err
		}
		// Commit in rank order, forward before backward per hub — the
		// same per-store append order the classic build produces.
		for i := range tasks {
			t := &tasks[i]
			lbl := in
			if t.rev {
				lbl = out
			}
			for _, a := range t.buf {
				lbl.append(a.node, t.hub, a.d)
			}
			t.buf = nil
		}
		lo = hi
		if size < maxBatch {
			size *= 2
		}
	}

	idx.inOff, idx.inW = in.compact(n)
	idx.outOff, idx.outW = out.compact(n)
	return nil
}

// runBatch executes the batch's tasks on min(len(scratch), len(tasks))
// workers and waits for all of them. The stores are read-only for the
// duration — every addition is buffered — so concurrent covered/loadT
// reads are safe.
func runBatch(ctx context.Context, f *graph.Frozen, tasks []batchTask, scratch []*batchScratch, in, out *store, bp *bpIndex, pruneBlocks []int) error {
	nw := len(scratch)
	if nw > len(tasks) {
		nw = len(tasks)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(sc *batchScratch) {
			defer wg.Done()
			for {
				ti := next.Add(1) - 1
				if ti >= int64(len(tasks)) {
					return
				}
				t := &tasks[ti]
				t.err = runBatchTask(ctx, f, t, sc, in, out, bp, pruneBlocks)
				if t.err != nil {
					return // ctx cancelled: peers see it at their next poll
				}
			}
		}(scratch[w])
	}
	wg.Wait()
	for i := range tasks {
		if tasks[i].err != nil {
			return tasks[i].err
		}
	}
	return nil
}

// runBatchTask runs one buffered pruned BFS — the batched counterpart
// of prunedBFS, with the bit-parallel cover check in front of the label
// cover check (byte rows are far cheaper than the label walk).
func runBatchTask(ctx context.Context, f *graph.Frozen, t *batchTask, sc *batchScratch, in, out *store, bp *bpIndex, pruneBlocks []int) error {
	h := t.hub
	own, lbl := out, in
	if t.rev {
		own, lbl = in, out
	}
	// T carries h's own committed label of the opposite direction — the
	// "earlier hubs" side of the pruning query — plus h itself at 0,
	// standing in for the self entry the classic build would have
	// committed between the two passes.
	sc.tTouched = own.loadT(h, sc.T, sc.tTouched[:0])
	if sc.T[h] < 0 {
		sc.T[h] = 0
		sc.tTouched = append(sc.tTouched, h)
	}
	for _, b := range pruneBlocks {
		if t.rev {
			sc.hRow[b] = bp.fwdRow(b, h)
		} else {
			sc.hRow[b] = bp.bwdRow(b, h)
		}
		loadCoverWords(sc.hRow[b], &sc.hw[b])
	}
	q := sc.queue[:0]
	dist := sc.dist
	dist[h] = 0
	q = append(q, h)
	var err error
	for head := 0; head < len(q); head++ {
		if head&ctxCheckMask == ctxCheckMask {
			if err = ctx.Err(); err != nil {
				break
			}
		}
		w := q[head]
		d := dist[w]
		if bpPrunes(bp, pruneBlocks, sc, w, d, t.rev) || lbl.covered(w, sc.T, d) {
			continue
		}
		t.buf = append(t.buf, labelAdd{node: w, d: d})
		var nbrs []int32
		if t.rev {
			nbrs = f.In(int(w))
		} else {
			nbrs = f.Out(int(w))
		}
		for _, x := range nbrs {
			if dist[x] < 0 {
				dist[x] = d + 1
				q = append(q, x)
			}
		}
	}
	for _, w := range q {
		dist[w] = -1
	}
	sc.queue = q
	for _, x := range sc.tTouched {
		sc.T[x] = -1
	}
	return err
}

// bpPrunes reports whether some complete-block root certifies a path of
// length <= d between the task's hub (rows preloaded into the scratch)
// and w.
func bpPrunes(bp *bpIndex, pruneBlocks []int, sc *batchScratch, w, d int32, rev bool) bool {
	for _, b := range pruneBlocks {
		var wRow []uint8
		if rev {
			wRow = bp.bwdRow(b, w)
		} else {
			wRow = bp.fwdRow(b, w)
		}
		if bpCovers(&sc.hw[b], sc.hRow[b], wRow, d) {
			return true
		}
	}
	return false
}
