package subiso

import (
	"context"
	"fmt"
	"testing"
)

// A search space holding exactly MaxEmbeddings embeddings is complete,
// not truncated: the searcher probes past the budget to tell the two
// apart. Regression for the pre-planner behavior that reported
// Complete=false the moment the budget was reached.
func TestExactBudgetComplete(t *testing.T) {
	// Two disjoint A->B edges: exactly 2 embeddings of the A->B pattern.
	g := labeled("A", "B", "A", "B")
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	p := edgePattern([]string{"A", "B"}, [][2]int{{0, 1}})
	run := map[string]func(Options) *Enumeration{
		"vf2":     func(o Options) *Enumeration { return VF2(p, g, o) },
		"ullmann": func(o Options) *Enumeration { return Ullmann(p, g, o) },
	}
	for name, f := range run {
		exact := f(Options{MaxEmbeddings: 2})
		if len(exact.Embeddings) != 2 || !exact.Complete {
			t.Errorf("%s exact budget: %d embeddings complete=%v, want 2/true",
				name, len(exact.Embeddings), exact.Complete)
		}
		short := f(Options{MaxEmbeddings: 1})
		if len(short.Embeddings) != 1 || short.Complete {
			t.Errorf("%s short budget: %d embeddings complete=%v, want 1/false",
				name, len(short.Embeddings), short.Complete)
		}
	}
}

// MaxSteps during the exhaustion probe must not mislabel the result
// complete: once the step budget dies mid-probe, completeness is unknown
// and must be reported false.
func TestBudgetProbeRespectsMaxSteps(t *testing.T) {
	g := labeled("A", "B", "B", "B", "B", "B")
	for v := 1; v < 6; v++ {
		g.AddEdge(0, v)
	}
	p := edgePattern([]string{"A", "B"}, [][2]int{{0, 1}})
	e := VF2(p, g, Options{MaxEmbeddings: 2, MaxSteps: 3})
	if e.Complete {
		t.Fatalf("steps exhausted mid-probe, but Complete=true (%d embeddings)", len(e.Embeddings))
	}
}

// The Ullmann searcher now shares the connectivity-aware order. This
// pins the work saving: with a disconnected cheap node first in id order
// and an unmatchable selective core, the connectivity-aware order fails
// fast instead of iterating the cheap node's whole candidate set.
func TestUllmannOrderPrunes(t *testing.T) {
	labels := []string{"A", "B"}
	for i := 0; i < 50; i++ {
		labels = append(labels, "X")
	}
	g := labeled(labels...)
	g.AddEdge(0, 1)
	// Pattern node 0: X (50 candidates, no pattern edges). Nodes 1,2,3:
	// A->B->A chain — unmatchable (B has no edge to any A).
	p := edgePattern([]string{"X", "A", "B", "A"}, [][2]int{{1, 2}, {2, 3}})
	e := Ullmann(p, g, Options{})
	if len(e.Embeddings) != 0 || !e.Complete {
		t.Fatalf("unexpected embeddings: %d (complete=%v)", len(e.Embeddings), e.Complete)
	}
	// Identity order would pay ~50 root steps before failing each core;
	// the connectivity-aware order roots at the chain and fails in a
	// handful of steps.
	if e.Steps > 20 {
		t.Fatalf("Ullmann explored %d steps; connectivity-aware ordering should fail fast", e.Steps)
	}
}

// The order change must not alter what Ullmann finds.
func TestUllmannOrderSameResults(t *testing.T) {
	g := labeled("A", "B", "C", "A", "B", "C")
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {0, 4}, {3, 1}} {
		g.AddEdge(e[0], e[1])
	}
	p := edgePattern([]string{"A", "B", "C"}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	u := Ullmann(p, g, Options{})
	v := VF2(p, g, Options{})
	if fmt.Sprint(canon(u.Embeddings)) != fmt.Sprint(canon(v.Embeddings)) {
		t.Fatalf("ullmann %v != vf2 %v", u.Embeddings, v.Embeddings)
	}
}

// CountOnly inclusion-exclusion over the independent tail must agree with
// full enumeration, including under restrictions and self-loops.
func TestCountOnlyInclusionExclusion(t *testing.T) {
	// Star pattern: center 0 with out-edges to 3 leaves — the leaves are
	// pairwise non-adjacent, a 3-long IE tail.
	p := edgePattern([]string{"A", "B", "B", "B"}, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	g := labeled("A", "B", "B", "B", "B", "A")
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {5, 1}, {5, 2}} {
		g.AddEdge(e[0], e[1])
	}
	plain := VF2(p, g, Options{})
	cnt, err := VF2Context(context.Background(), p, g, Options{CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Count != int64(len(plain.Embeddings)) {
		t.Fatalf("IE count %d != %d enumerated", cnt.Count, len(plain.Embeddings))
	}
	if cnt.Embeddings != nil {
		t.Fatalf("CountOnly materialised %d embeddings", len(cnt.Embeddings))
	}
	// Fully disconnected pattern: the whole pattern is one IE tail.
	iso := edgePattern([]string{"B", "B"}, nil)
	plainIso := VF2(iso, g, Options{})
	cntIso, _ := VF2Context(context.Background(), iso, g, Options{CountOnly: true})
	if cntIso.Count != int64(len(plainIso.Embeddings)) {
		t.Fatalf("disconnected IE count %d != %d", cntIso.Count, len(plainIso.Embeddings))
	}
}

// Restriction pairs restrict: f(a) < f(b), with pairs filtering both the
// main candidate loop and the IE candidate sets.
func TestRestrictionsFilter(t *testing.T) {
	g := labeled("A", "A", "A")
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
	p := edgePattern([]string{"A", "A", "A"}, [][2]int{{0, 1}, {1, 2}, {2, 0}, {1, 0}, {2, 1}, {0, 2}})
	plain := VF2(p, g, Options{})
	if len(plain.Embeddings) != 6 {
		t.Fatalf("triangle-on-K3: %d embeddings, want 6", len(plain.Embeddings))
	}
	restricted, err := VF2Context(context.Background(), p, g, Options{
		Order:              []int{0, 1, 2},
		Restrictions:       [][2]int32{{0, 1}, {0, 2}, {1, 2}},
		ExpandPerEmbedding: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(restricted.Embeddings) != 1 || restricted.Count != 6 {
		t.Fatalf("canonical embeddings %d (count %d), want 1 (6)", len(restricted.Embeddings), restricted.Count)
	}
	if e := restricted.Embeddings[0]; !(e[0] < e[1] && e[1] < e[2]) {
		t.Fatalf("canonical embedding %v is not the lex minimum", e)
	}
}

// Invalid plans must be rejected, not silently misexecuted.
func TestPlanValidation(t *testing.T) {
	g := labeled("A", "B")
	g.AddEdge(0, 1)
	p := edgePattern([]string{"A", "B"}, [][2]int{{0, 1}})
	ctx := context.Background()
	for name, opts := range map[string]Options{
		"short order":      {Order: []int{0}},
		"not permutation":  {Order: []int{0, 0}},
		"out of range":     {Order: []int{0, 2}},
		"restr range":      {Restrictions: [][2]int32{{0, 7}}},
		"restr self":       {Restrictions: [][2]int32{{1, 1}}},
		"restr wrong side": {Order: []int{0, 1}, Restrictions: [][2]int32{{1, 0}}},
	} {
		if _, err := VF2Context(ctx, p, g, opts); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// PairsPerNode must allocate proportionally to the pattern size, not the
// enumeration size (it used to build one map per node spanning every
// embedding).
func TestPairsPerNodeAllocs(t *testing.T) {
	enum := &Enumeration{}
	for i := 0; i < 2000; i++ {
		enum.Embeddings = append(enum.Embeddings, []int32{int32(i % 37), int32(i % 53), int32(i % 71)})
	}
	var got [][]int32
	allocs := testing.AllocsPerRun(20, func() {
		got = enum.PairsPerNode(3)
	})
	if len(got) != 3 || len(got[0]) != 37 || len(got[1]) != 53 || len(got[2]) != 71 {
		t.Fatalf("wrong pairs: %d/%d/%d", len(got[0]), len(got[1]), len(got[2]))
	}
	if allocs > 8 {
		t.Fatalf("PairsPerNode did %.0f allocs for 3 pattern nodes; want O(np)", allocs)
	}
}

// PairsPerNode keeps its sorted-distinct contract.
func TestPairsPerNodeValues(t *testing.T) {
	enum := &Enumeration{Embeddings: [][]int32{{5, 2}, {3, 2}, {5, 9}}}
	got := enum.PairsPerNode(2)
	if fmt.Sprint(got) != "[[3 5] [2 9]]" {
		t.Fatalf("pairs = %v", got)
	}
	empty := (&Enumeration{}).PairsPerNode(2)
	if len(empty) != 2 || empty[0] != nil || empty[1] != nil {
		t.Fatalf("empty enumeration pairs = %v", empty)
	}
}
