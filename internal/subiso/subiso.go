// Package subiso implements the subgraph-isomorphism baselines the paper
// evaluates against (Exp-1): VF2 (Cordella et al.) and an Ullmann-style
// backtracking enumerator (SubIso). Both find injective mappings of the
// pattern's nodes to data nodes such that every pattern edge maps onto a
// data edge (edge-to-edge, the traditional semantics — bounds are treated
// as requiring a direct edge, matching the paper's "even when the bound k
// was set to 1 to favor SubIso").
//
// Enumeration is exponential in the worst case, so both take budgets: a
// maximum number of embeddings and a step limit.
//
// The searcher also executes plans produced by internal/plan: an explicit
// matching order, symmetry-breaking restriction pairs (each automorphism
// class of embeddings is visited once, through its order-lexicographic
// minimum), and a counting mode that switches to inclusion-exclusion over
// the independent tail of the matching order instead of materialising
// embeddings.
package subiso

import (
	"context"
	"fmt"
	"slices"
	"sort"

	"gpm/internal/cancel"
	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// Algo selects the enumeration algorithm when callers go through the
// algorithm-agnostic Enumerate entry point (the Engine API does).
type Algo int

const (
	// AlgoVF2 is VF2-style search (the default).
	AlgoVF2 Algo = iota
	// AlgoUllmann is Ullmann-style search with candidate refinement.
	AlgoUllmann
)

// Options bound the enumeration and carry an optional execution plan.
type Options struct {
	// MaxEmbeddings stops the search after this many embeddings
	// (0 = 1<<31-1). When the search space holds exactly this many, the
	// searcher probes on (without storing) until it either finds one
	// more — truncation, Complete=false — or exhausts the tree, in
	// which case the enumeration is Complete despite hitting the cap.
	MaxEmbeddings int
	MaxSteps      int64 // stop after this many search-tree nodes (0 = no limit)
	Algo          Algo  // algorithm used by Enumerate (VF2/Ullmann ignore it)

	// NoPlan asks Engine.Enumerate / Engine.CountEmbeddings to skip the
	// query planner and run the fixed connectivity-aware order with no
	// symmetry breaking. The searcher itself ignores it.
	NoPlan bool

	// Order overrides the matching order with an explicit permutation of
	// the pattern nodes (position -> pattern node). Nil selects the
	// built-in connectivity-aware order.
	Order []int

	// Restrictions are symmetry-breaking pairs (a, b): every reported
	// embedding f must satisfy f(a) < f(b). Each pair must have a before
	// b in the matching order. With the pairs internal/plan derives from
	// the pattern's automorphism group, the search visits exactly one
	// member of each automorphism class of embeddings.
	Restrictions [][2]int32

	// ExpandPerEmbedding is how many full embeddings each found
	// embedding represents (|Aut| under planner restrictions, default
	// 1). It scales Count and the MaxEmbeddings budget; the searcher
	// does not materialise the expansion (see plan.Expand).
	ExpandPerEmbedding int

	// CountOnly counts embeddings without materialising them:
	// Embeddings stays nil and Count carries the total. MaxEmbeddings
	// is ignored; MaxSteps and cancellation still bound the search.
	CountOnly bool
}

func (o Options) maxEmb() int {
	if o.MaxEmbeddings <= 0 {
		return 1<<31 - 1
	}
	return o.MaxEmbeddings
}

func (o Options) factor() int64 {
	if o.ExpandPerEmbedding <= 1 {
		return 1
	}
	return int64(o.ExpandPerEmbedding)
}

// Enumeration is the outcome of a subgraph-isomorphism search.
type Enumeration struct {
	Embeddings [][]int32 // each: pattern node index -> data node
	Steps      int64     // search-tree nodes explored
	Complete   bool      // false when a budget was exhausted

	// Count is the number of embeddings the search accounts for:
	// len(Embeddings) × ExpandPerEmbedding, or the inclusion-exclusion
	// total in CountOnly mode.
	Count int64
}

// PairsPerNode returns, per pattern node, the sorted distinct data nodes
// appearing in any embedding — the "matches per pattern node" metric of
// Exp-1.
func (e *Enumeration) PairsPerNode(np int) [][]int32 {
	out := make([][]int32, np)
	col := make([]int32, 0, len(e.Embeddings))
	for u := 0; u < np; u++ {
		col = col[:0]
		for _, emb := range e.Embeddings {
			col = append(col, emb[u])
		}
		slices.Sort(col)
		uniq := slices.Compact(col)
		if len(uniq) > 0 {
			out[u] = append([]int32(nil), uniq...)
		}
	}
	return out
}

// dataGraph is the read-only adjacency view the searcher runs over: the
// live mutable Graph (legacy entry points) or an immutable Frozen snapshot
// (the engine path, which must not pin the engine lock for the whole
// exponential search).
type dataGraph interface {
	N() int
	Attr(v int) graph.Attrs
	Out(u int) []int32
	In(v int) []int32
	OutDegree(u int) int
	InDegree(v int) int
	// hasColoredEdge reports an edge u->v whose color matches (any color
	// when color == "").
	hasColoredEdge(u, v int, color string) bool
}

type liveData struct{ g *graph.Graph }

func (d liveData) N() int                 { return d.g.N() }
func (d liveData) Attr(v int) graph.Attrs { return d.g.Attr(v) }
func (d liveData) Out(u int) []int32      { return d.g.Out(u) }
func (d liveData) In(v int) []int32       { return d.g.In(v) }
func (d liveData) OutDegree(u int) int    { return d.g.OutDegree(u) }
func (d liveData) InDegree(v int) int     { return d.g.InDegree(v) }

func (d liveData) hasColoredEdge(u, v int, color string) bool {
	if !d.g.HasEdge(u, v) {
		return false
	}
	if color == "" {
		return true
	}
	c, _ := d.g.Color(u, v)
	return c == color
}

type frozenData struct{ f *graph.Frozen }

func (d frozenData) N() int                 { return d.f.N() }
func (d frozenData) Attr(v int) graph.Attrs { return d.f.Attr(v) }
func (d frozenData) Out(u int) []int32      { return d.f.Out(u) }
func (d frozenData) In(v int) []int32       { return d.f.In(v) }
func (d frozenData) OutDegree(u int) int    { return d.f.OutDegree(u) }
func (d frozenData) InDegree(v int) int     { return d.f.InDegree(v) }

func (d frozenData) hasColoredEdge(u, v int, color string) bool {
	// Frozen keeps no membership hash; scan the shorter adjacency side.
	found := false
	if out, in := d.f.Out(u), d.f.In(v); len(out) <= len(in) {
		for _, w := range out {
			if int(w) == v {
				found = true
				break
			}
		}
	} else {
		for _, w := range in {
			if int(w) == u {
				found = true
				break
			}
		}
	}
	if !found {
		return false
	}
	if color == "" {
		return true
	}
	return d.f.Color(u, v) == color
}

// VF2 enumerates subgraph monomorphisms of p into g with VF2-style
// feasibility pruning and connectivity-aware candidate ordering.
func VF2(p *pattern.Pattern, g *graph.Graph, opts Options) *Enumeration {
	enum, _ := VF2Context(context.Background(), p, g, opts)
	if enum == nil {
		// Validation failure in the error-dropping legacy wrapper: an
		// empty incomplete enumeration, never nil.
		enum = &Enumeration{}
	}
	return enum
}

// VF2Context is VF2 with cancellation: ctx is polled as the search tree
// grows, and a cancelled context aborts with ctx.Err() (the partial
// enumeration is returned alongside, with Complete == false).
func VF2Context(ctx context.Context, p *pattern.Pattern, g *graph.Graph, opts Options) (*Enumeration, error) {
	return enumerate(ctx, p, liveData{g}, opts, false)
}

// Ullmann enumerates the same embeddings with Ullmann's candidate-matrix
// refinement at each level — the paper's "SubIso".
func Ullmann(p *pattern.Pattern, g *graph.Graph, opts Options) *Enumeration {
	enum, _ := UllmannContext(context.Background(), p, g, opts)
	if enum == nil {
		enum = &Enumeration{}
	}
	return enum
}

// UllmannContext is Ullmann with cancellation, mirroring VF2Context.
func UllmannContext(ctx context.Context, p *pattern.Pattern, g *graph.Graph, opts Options) (*Enumeration, error) {
	return enumerate(ctx, p, liveData{g}, opts, true)
}

// Enumerate dispatches on opts.Algo — the entry point for callers that
// treat the algorithm as a query option rather than an API choice.
func Enumerate(ctx context.Context, p *pattern.Pattern, g *graph.Graph, opts Options) (*Enumeration, error) {
	return enumerate(ctx, p, liveData{g}, opts, opts.Algo == AlgoUllmann)
}

// EnumerateFrozen runs the search over an immutable CSR snapshot — the
// engine path, where the search must not touch the mutable graph so that
// updates can proceed concurrently.
func EnumerateFrozen(ctx context.Context, p *pattern.Pattern, f *graph.Frozen, opts Options) (*Enumeration, error) {
	return enumerate(ctx, p, frozenData{f}, opts, opts.Algo == AlgoUllmann)
}

func enumerate(ctx context.Context, p *pattern.Pattern, d dataGraph, opts Options, refine bool) (*Enumeration, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &searcher{p: p, g: d, opts: opts, enum: &Enumeration{Complete: true}, refine: refine, poll: cancel.Every(ctx, 1024)}
	if err := s.resolvePlan(); err != nil {
		return nil, err
	}
	if !s.prepare() {
		return s.enum, nil
	}
	s.setupIE()
	s.run()
	return s.enum, s.err
}

// run allocates the shared search state and starts the recursion.
func (s *searcher) run() {
	s.assign = make([]int32, s.p.N())
	for i := range s.assign {
		s.assign[i] = -1
	}
	s.used = make([]bool, s.g.N())
	s.recurse(0)
}

type searcher struct {
	p      *pattern.Pattern
	g      dataGraph
	opts   Options
	enum   *Enumeration
	cand   [][]int32 // per pattern node: predicate-compatible data nodes, ascending
	inCand [][]bool
	order  []int
	assign []int32
	used   []bool
	minGT  [][]int32 // per pattern node: restriction partners it must exceed
	factor int64     // embeddings represented by each found embedding
	refine bool
	halted bool

	// probing is set once the embedding budget is reached: the search
	// continues without storing, only to learn whether the tree holds
	// another embedding (it does -> truncated; it does not -> the cap
	// was exactly the embedding count and the enumeration is complete).
	probing bool

	// Inclusion-exclusion counting over the independent tail of the
	// matching order (CountOnly mode): at depth ieDepth the remaining
	// pattern nodes iePos are pairwise non-adjacent and restriction-free
	// among themselves, so the number of injective completions is a
	// 2^k-term inclusion-exclusion over their candidate sets instead of
	// a product-sized sub-search.
	ieDepth int
	iePos   []int
	ieSets  [][]int32
	ieInter [][]int32

	poll cancel.Poller
	err  error // ctx.Err() once cancelled
}

// resolvePlan validates and installs the plan options: matching order and
// restriction pairs.
func (s *searcher) resolvePlan() error {
	np := s.p.N()
	if s.opts.Order != nil {
		if len(s.opts.Order) != np {
			return fmt.Errorf("subiso: plan order has %d positions for %d pattern nodes", len(s.opts.Order), np)
		}
		seen := make([]bool, np)
		for _, u := range s.opts.Order {
			if u < 0 || u >= np || seen[u] {
				return fmt.Errorf("subiso: plan order %v is not a permutation of the pattern nodes", s.opts.Order)
			}
			seen[u] = true
		}
		s.order = s.opts.Order
	} else {
		s.order = vf2Order(s.p)
	}
	if len(s.opts.Restrictions) > 0 {
		pos := make([]int, np)
		for i, u := range s.order {
			pos[u] = i
		}
		s.minGT = make([][]int32, np)
		for _, r := range s.opts.Restrictions {
			a, b := r[0], r[1]
			if a < 0 || b < 0 || int(a) >= np || int(b) >= np || a == b {
				return fmt.Errorf("subiso: restriction (%d,%d) out of range", a, b)
			}
			if pos[a] >= pos[b] {
				return fmt.Errorf("subiso: restriction (%d,%d) does not respect the matching order", a, b)
			}
			s.minGT[b] = append(s.minGT[b], a)
		}
	}
	s.factor = s.opts.factor()
	return nil
}

// prepare computes per-node candidate sets; false when some node has no
// candidates at all.
func (s *searcher) prepare() bool {
	np, n := s.p.N(), s.g.N()
	s.cand = make([][]int32, np)
	s.inCand = make([][]bool, np)
	for u := 0; u < np; u++ {
		s.inCand[u] = make([]bool, n)
		pred := s.p.Pred(u)
		for x := 0; x < n; x++ {
			if s.p.OutDegree(u) > 0 && s.g.OutDegree(x) == 0 {
				continue
			}
			if len(s.p.In(u)) > 0 && s.g.InDegree(x) == 0 {
				continue
			}
			if pred.Match(s.g.Attr(x)) {
				s.cand[u] = append(s.cand[u], int32(x))
				s.inCand[u][x] = true
			}
		}
		if len(s.cand[u]) == 0 {
			return false
		}
	}
	return true
}

// maxIESuffix caps the inclusion-exclusion tail: the term count is
// exponential in the tail length (2^k intersections, Bell(k) partitions).
const maxIESuffix = 5

// setupIE finds the longest eligible tail of the matching order for
// inclusion-exclusion counting: pattern nodes pairwise non-adjacent and
// with no restriction pair among themselves (restriction pairs from the
// prefix become candidate lower bounds and stay exact).
func (s *searcher) setupIE() {
	s.ieDepth = -1
	if !s.opts.CountOnly {
		return
	}
	np := s.p.N()
	restricted := func(a, b int) bool {
		for _, w := range s.minGT[b] {
			if int(w) == a {
				return true
			}
		}
		return false
	}
	suf := 0
	for i := np - 1; i >= 0 && suf < maxIESuffix; i-- {
		u := s.order[i]
		ok := true
		for j := i + 1; j < np; j++ {
			v := s.order[j]
			if s.p.HasEdge(u, v) || s.p.HasEdge(v, u) {
				ok = false
				break
			}
			if s.minGT != nil && (restricted(u, v) || restricted(v, u)) {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		suf++
	}
	if suf < 2 {
		return
	}
	s.ieDepth = np - suf
	s.iePos = append([]int(nil), s.order[s.ieDepth:]...)
	s.ieSets = make([][]int32, suf)
	s.ieInter = make([][]int32, 1<<suf)
}

// vf2Order sorts pattern nodes so each (after the first) is adjacent to
// an earlier one when possible, smallest candidate set first.
func vf2Order(p *pattern.Pattern) []int {
	np := p.N()
	picked := make([]bool, np)
	order := make([]int, 0, np)
	adjToPicked := func(u int) bool {
		for _, eid := range p.Out(u) {
			if picked[p.EdgeAt(int(eid)).To] {
				return true
			}
		}
		for _, eid := range p.In(u) {
			if picked[p.EdgeAt(int(eid)).From] {
				return true
			}
		}
		return false
	}
	for len(order) < np {
		best := -1
		bestDeg := -1
		for u := 0; u < np; u++ {
			if picked[u] {
				continue
			}
			deg := p.OutDegree(u) + len(p.In(u))
			connected := len(order) == 0 || adjToPicked(u)
			if connected && deg > bestDeg {
				best, bestDeg = u, deg
			}
		}
		if best < 0 { // disconnected pattern: take any remaining node
			for u := 0; u < np; u++ {
				if !picked[u] {
					best = u
					break
				}
			}
		}
		picked[best] = true
		order = append(order, best)
	}
	return order
}

// restrictionLower returns the smallest data node the restriction pairs
// allow for pattern node u under the current partial assignment (-1 when
// unconstrained): u must map strictly above every assigned partner.
func (s *searcher) restrictionLower(u int) int32 {
	lower := int32(-1)
	if s.minGT == nil {
		return lower
	}
	for _, w := range s.minGT[u] {
		if v := s.assign[w]; v > lower {
			lower = v
		}
	}
	return lower
}

func (s *searcher) recurse(depth int) {
	if s.halted {
		return
	}
	s.enum.Steps++
	if err := s.poll.Err(); err != nil {
		s.err = err
		s.halted = true
		s.enum.Complete = false
		return
	}
	if s.opts.MaxSteps > 0 && s.enum.Steps > s.opts.MaxSteps {
		s.halted = true
		s.enum.Complete = false
		return
	}
	if depth == s.ieDepth {
		s.enum.Count += s.factor * s.ieCount()
		return
	}
	if depth == s.p.N() {
		if s.probing {
			// The budget was already reached; finding one more
			// embedding proves the enumeration really is truncated.
			s.enum.Complete = false
			s.halted = true
			return
		}
		if s.opts.CountOnly {
			s.enum.Count += s.factor
			return
		}
		emb := append([]int32(nil), s.assign...)
		s.enum.Embeddings = append(s.enum.Embeddings, emb)
		s.enum.Count += s.factor
		if s.enum.Count >= int64(s.opts.maxEmb()) {
			s.probing = true
		}
		return
	}
	u := s.order[depth]
	cand := s.cand[u]
	if lower := s.restrictionLower(u); lower >= 0 {
		// cand is ascending: skip straight past the restriction bound.
		cand = cand[sort.Search(len(cand), func(i int) bool { return cand[i] > lower }):]
	}
	for _, x := range cand {
		if s.used[x] || !s.feasible(u, x) {
			continue
		}
		if s.refine && !s.lookahead(u, int(x), depth) {
			continue
		}
		s.assign[u] = x
		s.used[x] = true
		s.recurse(depth + 1)
		s.used[x] = false
		s.assign[u] = -1
		if s.halted {
			return
		}
	}
}

// ieCoef[k] = (-1)^(k-1) * (k-1)! — the weight of a size-k block in the
// set-partition expansion of the number of injective completions.
var ieCoef = [maxIESuffix + 1]int64{0, 1, -1, 2, -6, 24}

// ieCount computes, under the current partial assignment, the number of
// injective assignments of the tail pattern nodes iePos to feasible
// candidates. With S_i the feasible candidate set of tail node i, the
// count is Σ over set partitions P of the tail of
// Π_{B∈P} (-1)^(|B|-1)(|B|-1)!·|∩_{i∈B} S_i| — the in-exclusion
// optimisation of GraphPi, evaluated by a 2^k subset DP.
func (s *searcher) ieCount() int64 {
	k := len(s.iePos)
	for i, u := range s.iePos {
		set := s.ieSets[i][:0]
		cand := s.cand[u]
		if lower := s.restrictionLower(u); lower >= 0 {
			cand = cand[sort.Search(len(cand), func(t int) bool { return cand[t] > lower }):]
		}
		for _, x := range cand {
			if s.used[x] || !s.feasible(u, x) {
				continue
			}
			set = append(set, x)
		}
		s.ieSets[i] = set
		s.ieInter[1<<i] = set
	}
	// Intersection sizes for every non-empty subset of tail nodes,
	// built by peeling the lowest bit (sets are ascending).
	for m := 1; m < 1<<k; m++ {
		if m&(m-1) == 0 {
			continue
		}
		low := m & -m
		a, b := s.ieInter[low], s.ieInter[m&^low]
		inter := s.ieInter[m][:0]
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				i++
			case a[i] > b[j]:
				j++
			default:
				inter = append(inter, a[i])
				i++
				j++
			}
		}
		s.ieInter[m] = inter
	}
	// part[m] = injective completion count for the tail subset m:
	// partitions generated by choosing the block containing m's lowest
	// tail node.
	var part [1 << maxIESuffix]int64
	part[0] = 1
	for m := 1; m < 1<<k; m++ {
		low := m & -m
		rest := m &^ low
		var total int64
		// Blocks B ⊆ m with low ∈ B: iterate subsets t of rest, B = t|low.
		t := rest
		for {
			b := t | low
			sz := bitsOnes(b)
			total += ieCoef[sz] * int64(len(s.ieInter[b])) * part[m&^b]
			if t == 0 {
				break
			}
			t = (t - 1) & rest
		}
		part[m] = total
	}
	return part[1<<k-1]
}

func bitsOnes(m int) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// feasible checks every pattern edge between u (about to be mapped to x)
// and already-mapped nodes, including self-loop pattern edges.
func (s *searcher) feasible(u int, x int32) bool {
	for _, eid := range s.p.Out(u) {
		e := s.p.EdgeAt(int(eid))
		if e.To == u {
			if !s.g.hasColoredEdge(int(x), int(x), e.Color) {
				return false
			}
			continue
		}
		if y := s.assign[e.To]; y >= 0 && !s.g.hasColoredEdge(int(x), int(y), e.Color) {
			return false
		}
	}
	for _, eid := range s.p.In(u) {
		e := s.p.EdgeAt(int(eid))
		if e.From == u {
			continue // self loop already checked above
		}
		if y := s.assign[e.From]; y >= 0 && !s.g.hasColoredEdge(int(y), int(x), e.Color) {
			return false
		}
	}
	return true
}

// lookahead is Ullmann's refinement: every unmapped pattern neighbor of u
// must retain a compatible unused candidate adjacent to x.
func (s *searcher) lookahead(u, x, depth int) bool {
	for _, eid := range s.p.Out(u) {
		to := s.p.EdgeAt(int(eid)).To
		if s.assign[to] >= 0 {
			continue
		}
		ok := false
		for _, y := range s.g.Out(x) {
			if !s.used[y] && s.inCand[to][y] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, eid := range s.p.In(u) {
		from := s.p.EdgeAt(int(eid)).From
		if s.assign[from] >= 0 {
			continue
		}
		ok := false
		for _, y := range s.g.In(x) {
			if !s.used[y] && s.inCand[from][y] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
