// Package subiso implements the subgraph-isomorphism baselines the paper
// evaluates against (Exp-1): VF2 (Cordella et al.) and an Ullmann-style
// backtracking enumerator (SubIso). Both find injective mappings of the
// pattern's nodes to data nodes such that every pattern edge maps onto a
// data edge (edge-to-edge, the traditional semantics — bounds are treated
// as requiring a direct edge, matching the paper's "even when the bound k
// was set to 1 to favor SubIso").
//
// Enumeration is exponential in the worst case, so both take budgets: a
// maximum number of embeddings and a step limit.
package subiso

import (
	"context"
	"sort"

	"gpm/internal/cancel"
	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// Algo selects the enumeration algorithm when callers go through the
// algorithm-agnostic Enumerate entry point (the Engine API does).
type Algo int

const (
	// AlgoVF2 is VF2-style search (the default).
	AlgoVF2 Algo = iota
	// AlgoUllmann is Ullmann-style search with candidate refinement.
	AlgoUllmann
)

// Options bound the enumeration.
type Options struct {
	MaxEmbeddings int   // stop after this many embeddings (0 = 1<<31-1)
	MaxSteps      int64 // stop after this many search-tree nodes (0 = no limit)
	Algo          Algo  // algorithm used by Enumerate (VF2/Ullmann ignore it)
}

func (o Options) maxEmb() int {
	if o.MaxEmbeddings <= 0 {
		return 1<<31 - 1
	}
	return o.MaxEmbeddings
}

// Enumeration is the outcome of a subgraph-isomorphism search.
type Enumeration struct {
	Embeddings [][]int32 // each: pattern node index -> data node
	Steps      int64     // search-tree nodes explored
	Complete   bool      // false when a budget was exhausted
}

// PairsPerNode returns, per pattern node, the sorted distinct data nodes
// appearing in any embedding — the "matches per pattern node" metric of
// Exp-1.
func (e *Enumeration) PairsPerNode(np int) [][]int32 {
	sets := make([]map[int32]struct{}, np)
	for i := range sets {
		sets[i] = map[int32]struct{}{}
	}
	for _, emb := range e.Embeddings {
		for u, x := range emb {
			sets[u][x] = struct{}{}
		}
	}
	out := make([][]int32, np)
	for u, s := range sets {
		for x := range s {
			out[u] = append(out[u], x)
		}
		sort.Slice(out[u], func(i, j int) bool { return out[u][i] < out[u][j] })
	}
	return out
}

// VF2 enumerates subgraph monomorphisms of p into g with VF2-style
// feasibility pruning and connectivity-aware candidate ordering.
func VF2(p *pattern.Pattern, g *graph.Graph, opts Options) *Enumeration {
	enum, _ := VF2Context(context.Background(), p, g, opts)
	if enum == nil {
		// Validation failure in the error-dropping legacy wrapper: an
		// empty incomplete enumeration, never nil.
		enum = &Enumeration{}
	}
	return enum
}

// VF2Context is VF2 with cancellation: ctx is polled as the search tree
// grows, and a cancelled context aborts with ctx.Err() (the partial
// enumeration is returned alongside, with Complete == false).
func VF2Context(ctx context.Context, p *pattern.Pattern, g *graph.Graph, opts Options) (*Enumeration, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &searcher{p: p, g: g, opts: opts, enum: &Enumeration{Complete: true}, poll: cancel.Every(ctx, 1024)}
	if !s.prepare() {
		return s.enum, nil
	}
	s.order = vf2Order(p)
	s.run()
	return s.enum, s.err
}

// Ullmann enumerates the same embeddings with Ullmann's candidate-matrix
// refinement at each level — the paper's "SubIso".
func Ullmann(p *pattern.Pattern, g *graph.Graph, opts Options) *Enumeration {
	enum, _ := UllmannContext(context.Background(), p, g, opts)
	if enum == nil {
		enum = &Enumeration{}
	}
	return enum
}

// UllmannContext is Ullmann with cancellation, mirroring VF2Context.
func UllmannContext(ctx context.Context, p *pattern.Pattern, g *graph.Graph, opts Options) (*Enumeration, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &searcher{p: p, g: g, opts: opts, enum: &Enumeration{Complete: true}, refine: true, poll: cancel.Every(ctx, 1024)}
	if !s.prepare() {
		return s.enum, nil
	}
	s.order = make([]int, p.N())
	for i := range s.order {
		s.order[i] = i
	}
	s.run()
	return s.enum, s.err
}

// Enumerate dispatches on opts.Algo — the entry point for callers that
// treat the algorithm as a query option rather than an API choice.
func Enumerate(ctx context.Context, p *pattern.Pattern, g *graph.Graph, opts Options) (*Enumeration, error) {
	if opts.Algo == AlgoUllmann {
		return UllmannContext(ctx, p, g, opts)
	}
	return VF2Context(ctx, p, g, opts)
}

// run allocates the shared search state and starts the recursion.
func (s *searcher) run() {
	s.assign = make([]int32, s.p.N())
	for i := range s.assign {
		s.assign[i] = -1
	}
	s.used = make([]bool, s.g.N())
	s.recurse(0)
}

type searcher struct {
	p      *pattern.Pattern
	g      *graph.Graph
	opts   Options
	enum   *Enumeration
	cand   [][]int32 // per pattern node: predicate-compatible data nodes
	inCand [][]bool
	order  []int
	assign []int32
	used   []bool
	refine bool
	halted bool

	poll cancel.Poller
	err  error // ctx.Err() once cancelled
}

// prepare computes per-node candidate sets; false when some node has no
// candidates at all.
func (s *searcher) prepare() bool {
	np, n := s.p.N(), s.g.N()
	s.cand = make([][]int32, np)
	s.inCand = make([][]bool, np)
	for u := 0; u < np; u++ {
		s.inCand[u] = make([]bool, n)
		pred := s.p.Pred(u)
		for x := 0; x < n; x++ {
			if s.p.OutDegree(u) > 0 && s.g.OutDegree(x) == 0 {
				continue
			}
			if len(s.p.In(u)) > 0 && s.g.InDegree(x) == 0 {
				continue
			}
			if pred.Match(s.g.Attr(x)) {
				s.cand[u] = append(s.cand[u], int32(x))
				s.inCand[u][x] = true
			}
		}
		if len(s.cand[u]) == 0 {
			return false
		}
	}
	return true
}

// vf2Order sorts pattern nodes so each (after the first) is adjacent to
// an earlier one when possible, smallest candidate set first.
func vf2Order(p *pattern.Pattern) []int {
	np := p.N()
	picked := make([]bool, np)
	order := make([]int, 0, np)
	adjToPicked := func(u int) bool {
		for _, eid := range p.Out(u) {
			if picked[p.EdgeAt(int(eid)).To] {
				return true
			}
		}
		for _, eid := range p.In(u) {
			if picked[p.EdgeAt(int(eid)).From] {
				return true
			}
		}
		return false
	}
	for len(order) < np {
		best := -1
		bestDeg := -1
		for u := 0; u < np; u++ {
			if picked[u] {
				continue
			}
			deg := p.OutDegree(u) + len(p.In(u))
			connected := len(order) == 0 || adjToPicked(u)
			if connected && deg > bestDeg {
				best, bestDeg = u, deg
			}
		}
		if best < 0 { // disconnected pattern: take any remaining node
			for u := 0; u < np; u++ {
				if !picked[u] {
					best = u
					break
				}
			}
		}
		picked[best] = true
		order = append(order, best)
	}
	return order
}

func (s *searcher) recurse(depth int) {
	if s.halted {
		return
	}
	s.enum.Steps++
	if err := s.poll.Err(); err != nil {
		s.err = err
		s.halted = true
		s.enum.Complete = false
		return
	}
	if s.opts.MaxSteps > 0 && s.enum.Steps > s.opts.MaxSteps {
		s.halted = true
		s.enum.Complete = false
		return
	}
	if depth == s.p.N() {
		emb := append([]int32(nil), s.assign...)
		s.enum.Embeddings = append(s.enum.Embeddings, emb)
		if len(s.enum.Embeddings) >= s.opts.maxEmb() {
			s.halted = true
			s.enum.Complete = false
		}
		return
	}
	u := s.order[depth]
	for _, x := range s.cand[u] {
		if s.used[x] || !s.feasible(u, x) {
			continue
		}
		if s.refine && !s.lookahead(u, int(x), depth) {
			continue
		}
		s.assign[u] = x
		s.used[x] = true
		s.recurse(depth + 1)
		s.used[x] = false
		s.assign[u] = -1
		if s.halted {
			return
		}
	}
}

// feasible checks every pattern edge between u (about to be mapped to x)
// and already-mapped nodes, including self-loop pattern edges.
func (s *searcher) feasible(u int, x int32) bool {
	for _, eid := range s.p.Out(u) {
		e := s.p.EdgeAt(int(eid))
		if e.To == u {
			if !s.hasDataEdge(int(x), int(x), e.Color) {
				return false
			}
			continue
		}
		if y := s.assign[e.To]; y >= 0 && !s.hasDataEdge(int(x), int(y), e.Color) {
			return false
		}
	}
	for _, eid := range s.p.In(u) {
		e := s.p.EdgeAt(int(eid))
		if e.From == u {
			continue // self loop already checked above
		}
		if y := s.assign[e.From]; y >= 0 && !s.hasDataEdge(int(y), int(x), e.Color) {
			return false
		}
	}
	return true
}

func (s *searcher) hasDataEdge(a, b int, color string) bool {
	if !s.g.HasEdge(a, b) {
		return false
	}
	if color == "" {
		return true
	}
	c, _ := s.g.Color(a, b)
	return c == color
}

// lookahead is Ullmann's refinement: every unmapped pattern neighbor of u
// must retain a compatible unused candidate adjacent to x.
func (s *searcher) lookahead(u, x, depth int) bool {
	for _, eid := range s.p.Out(u) {
		to := s.p.EdgeAt(int(eid)).To
		if s.assign[to] >= 0 {
			continue
		}
		ok := false
		for _, y := range s.g.Out(x) {
			if !s.used[y] && s.inCand[to][y] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, eid := range s.p.In(u) {
		from := s.p.EdgeAt(int(eid)).From
		if s.assign[from] >= 0 {
			continue
		}
		ok := false
		for _, y := range s.g.In(x) {
			if !s.used[y] && s.inCand[from][y] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
