package subiso

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/value"
)

func labeled(labels ...string) *graph.Graph {
	g := graph.New(0)
	for _, l := range labels {
		g.AddNode(graph.Attrs{"label": value.Str(l)})
	}
	return g
}

func edgePattern(labels []string, edges [][2]int) *pattern.Pattern {
	p := pattern.New()
	for _, l := range labels {
		p.AddNode(pattern.Label(l))
	}
	for _, e := range edges {
		p.MustAddEdge(e[0], e[1], 1)
	}
	return p
}

func TestSingleEmbedding(t *testing.T) {
	g := labeled("A", "B", "C")
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	p := edgePattern([]string{"A", "B"}, [][2]int{{0, 1}})
	for name, f := range map[string]func(*pattern.Pattern, *graph.Graph, Options) *Enumeration{"vf2": VF2, "ullmann": Ullmann} {
		e := f(p, g, Options{})
		if !e.Complete || len(e.Embeddings) != 1 {
			t.Errorf("%s: %d embeddings, complete=%v", name, len(e.Embeddings), e.Complete)
			continue
		}
		if e.Embeddings[0][0] != 0 || e.Embeddings[0][1] != 1 {
			t.Errorf("%s: embedding %v", name, e.Embeddings[0])
		}
	}
}

func TestInjectivity(t *testing.T) {
	// Pattern A->A over a 2-cycle: bijective mapping requires two distinct
	// A nodes (2 embeddings); a self-loop graph yields none.
	p := edgePattern([]string{"A", "A"}, [][2]int{{0, 1}})
	cyc := labeled("A", "A")
	cyc.AddEdge(0, 1)
	cyc.AddEdge(1, 0)
	e := VF2(p, cyc, Options{})
	if len(e.Embeddings) != 2 {
		t.Errorf("2-cycle embeddings = %d, want 2", len(e.Embeddings))
	}
	loop := labeled("A")
	loop.AddEdge(0, 0)
	e = VF2(p, loop, Options{})
	if len(e.Embeddings) != 0 {
		t.Errorf("self-loop should give no injective embedding, got %d", len(e.Embeddings))
	}
}

func TestMonomorphismNotInduced(t *testing.T) {
	// Extra data edges are fine: pattern A->B must embed into a graph that
	// also has B->A.
	p := edgePattern([]string{"A", "B"}, [][2]int{{0, 1}})
	g := labeled("A", "B")
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if e := VF2(p, g, Options{}); len(e.Embeddings) != 1 {
		t.Errorf("embeddings = %d", len(e.Embeddings))
	}
}

func TestNoCandidates(t *testing.T) {
	p := edgePattern([]string{"Z"}, nil)
	g := labeled("A")
	for name, f := range map[string]func(*pattern.Pattern, *graph.Graph, Options) *Enumeration{"vf2": VF2, "ullmann": Ullmann} {
		if e := f(p, g, Options{}); len(e.Embeddings) != 0 || !e.Complete {
			t.Errorf("%s: want empty complete enumeration", name)
		}
	}
}

func TestBudgets(t *testing.T) {
	// A clique of As with a 2-node pattern explodes combinatorially; the
	// budgets must stop it and flag incompleteness.
	g := labeled("A", "A", "A", "A", "A", "A")
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i != j {
				g.AddEdge(i, j)
			}
		}
	}
	p := edgePattern([]string{"A", "A"}, [][2]int{{0, 1}})
	e := VF2(p, g, Options{MaxEmbeddings: 5})
	if e.Complete || len(e.Embeddings) != 5 {
		t.Errorf("MaxEmbeddings: %d complete=%v", len(e.Embeddings), e.Complete)
	}
	e = VF2(p, g, Options{MaxSteps: 3})
	if e.Complete {
		t.Error("MaxSteps did not trigger")
	}
}

func TestColoredEdges(t *testing.T) {
	g := labeled("A", "B", "B")
	g.AddColoredEdge(0, 1, "friend")
	g.AddColoredEdge(0, 2, "work")
	p := pattern.New()
	p.AddNode(pattern.Label("A"))
	p.AddNode(pattern.Label("B"))
	if _, err := p.AddColoredEdge(0, 1, 1, "friend"); err != nil {
		t.Fatal(err)
	}
	e := VF2(p, g, Options{})
	if len(e.Embeddings) != 1 || e.Embeddings[0][1] != 1 {
		t.Errorf("colored embeddings: %v", e.Embeddings)
	}
}

func TestPairsPerNode(t *testing.T) {
	g := labeled("A", "B", "B")
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	p := edgePattern([]string{"A", "B"}, [][2]int{{0, 1}})
	e := VF2(p, g, Options{})
	pairs := e.PairsPerNode(2)
	if len(pairs[0]) != 1 || len(pairs[1]) != 2 {
		t.Errorf("PairsPerNode = %v", pairs)
	}
}

// bruteForce enumerates all injective assignments and filters.
func bruteForce(p *pattern.Pattern, g *graph.Graph) [][]int32 {
	var out [][]int32
	assign := make([]int32, p.N())
	used := make([]bool, g.N())
	var rec func(u int)
	rec = func(u int) {
		if u == p.N() {
			for _, e := range p.Edges() {
				if !g.HasEdge(int(assign[e.From]), int(assign[e.To])) {
					return
				}
			}
			out = append(out, append([]int32(nil), assign...))
			return
		}
		for x := 0; x < g.N(); x++ {
			if used[x] || !p.Pred(u).Match(g.Attr(x)) {
				continue
			}
			assign[u] = int32(x)
			used[x] = true
			rec(u + 1)
			used[x] = false
		}
	}
	rec(0)
	return out
}

func canon(embs [][]int32) []string {
	keys := make([]string, len(embs))
	for i, e := range embs {
		b := make([]byte, 0, len(e)*3)
		for _, x := range e {
			b = append(b, byte(x), ',')
		}
		keys[i] = string(b)
	}
	sort.Strings(keys)
	return keys
}

// Property: VF2, Ullmann and brute force agree on random small inputs.
func TestAgainstBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(7)
		g := labeled()
		for i := 0; i < n; i++ {
			g.AddNode(graph.Attrs{"label": value.Str(string(rune('A' + r.Intn(2))))})
		}
		m := r.Intn(2 * n)
		if m > n*n {
			m = n * n
		}
		for g.M() < m {
			g.AddEdge(r.Intn(n), r.Intn(n))
		}
		np := 1 + r.Intn(3)
		p := pattern.New()
		for i := 0; i < np; i++ {
			p.AddNode(pattern.Label(string(rune('A' + r.Intn(2)))))
		}
		for tries := 0; tries < 6; tries++ {
			p.AddEdge(r.Intn(np), r.Intn(np), 1)
		}
		want := canon(bruteForce(p, g))
		v := canon(VF2(p, g, Options{}).Embeddings)
		u := canon(Ullmann(p, g, Options{}).Embeddings)
		if len(v) != len(want) || len(u) != len(want) {
			t.Logf("seed %d: brute=%d vf2=%d ull=%d", seed, len(want), len(v), len(u))
			return false
		}
		for i := range want {
			if v[i] != want[i] || u[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSelfLoopPatternEdge(t *testing.T) {
	// Pattern with a self-loop edge (u,u) needs a data self-loop.
	p := pattern.New()
	p.AddNode(pattern.Label("A"))
	p.MustAddEdge(0, 0, 1)
	g := labeled("A", "A")
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	e := VF2(p, g, Options{})
	if len(e.Embeddings) != 1 || e.Embeddings[0][0] != 0 {
		t.Errorf("self-loop embeddings: %v", e.Embeddings)
	}
}
