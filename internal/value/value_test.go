package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{KindInt: "int", KindFloat: "float", KindString: "string", Kind(9): "Kind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.Kind() != KindInt {
		t.Errorf("Int kind = %v", v.Kind())
	} else if i, ok := v.AsInt(); !ok || i != 42 {
		t.Errorf("AsInt = %d,%v", i, ok)
	}
	if v := Float(2.5); v.Kind() != KindFloat {
		t.Errorf("Float kind = %v", v.Kind())
	} else if f, ok := v.AsFloat(); !ok || f != 2.5 {
		t.Errorf("AsFloat = %g,%v", f, ok)
	}
	if v := Str("hi"); v.Kind() != KindString {
		t.Errorf("Str kind = %v", v.Kind())
	} else if s, ok := v.AsString(); !ok || s != "hi" {
		t.Errorf("AsString = %q,%v", s, ok)
	}
	// Cross-kind accessors fail.
	if _, ok := Str("x").AsInt(); ok {
		t.Error("Str.AsInt should fail")
	}
	if _, ok := Str("x").AsFloat(); ok {
		t.Error("Str.AsFloat should fail")
	}
	if _, ok := Int(1).AsString(); ok {
		t.Error("Int.AsString should fail")
	}
	// Int converts to float.
	if f, ok := Int(3).AsFloat(); !ok || f != 3 {
		t.Errorf("Int.AsFloat = %g,%v", f, ok)
	}
}

func TestZeroValue(t *testing.T) {
	var v Value
	if v.Kind() != KindInt {
		t.Fatalf("zero Value kind = %v, want int", v.Kind())
	}
	if !v.Equal(Int(0)) {
		t.Error("zero Value != Int(0)")
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []Value{
		Int(0), Int(-7), Int(math.MaxInt64),
		Float(3.25), Float(-0.5), Float(1e100),
		Str("CS"), Str("hello world"), Str("a=b"), Str(""), Str("42abc"),
		Str("3.14 is pi"), Str(`quote"inside`),
	}
	for _, v := range cases {
		got := Parse(v.String())
		if !got.Equal(v) || got.Kind() != v.Kind() {
			t.Errorf("Parse(%q) = %v (%v), want %v (%v)", v.String(), got, got.Kind(), v, v.Kind())
		}
	}
}

func TestParseKinds(t *testing.T) {
	if v := Parse("17"); v.Kind() != KindInt {
		t.Errorf("Parse(17) kind = %v", v.Kind())
	}
	if v := Parse("17.5"); v.Kind() != KindFloat {
		t.Errorf("Parse(17.5) kind = %v", v.Kind())
	}
	if v := Parse("seventeen"); v.Kind() != KindString {
		t.Errorf("Parse(seventeen) kind = %v", v.Kind())
	}
	if v := Parse(`"17"`); v.Kind() != KindString {
		t.Errorf(`Parse("17") kind = %v`, v.Kind())
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Int(3), Int(2), 1, true},
		{Int(1), Float(1.5), -1, true},
		{Float(1.5), Int(1), 1, true},
		{Int(2), Float(2.0), 0, true},
		{Float(0.1), Float(0.2), -1, true},
		{Str("a"), Str("b"), -1, true},
		{Str("b"), Str("b"), 0, true},
		{Str("c"), Str("b"), 1, true},
		{Str("1"), Int(1), 0, false},
		{Int(1), Str("1"), 0, false},
	}
	for _, c := range cases {
		cmp, ok := Compare(c.a, c.b)
		if cmp != c.cmp || ok != c.ok {
			t.Errorf("Compare(%v,%v) = %d,%v want %d,%v", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestOps(t *testing.T) {
	type tc struct {
		a    Value
		op   Op
		b    Value
		want bool
	}
	cases := []tc{
		{Int(1), OpLT, Int(2), true},
		{Int(2), OpLT, Int(2), false},
		{Int(2), OpLE, Int(2), true},
		{Int(3), OpLE, Int(2), false},
		{Int(2), OpEQ, Int(2), true},
		{Int(2), OpEQ, Int(3), false},
		{Int(2), OpNE, Int(3), true},
		{Int(2), OpNE, Int(2), false},
		{Int(3), OpGT, Int(2), true},
		{Int(2), OpGT, Int(2), false},
		{Int(2), OpGE, Int(2), true},
		{Int(1), OpGE, Int(2), false},
		{Str("Travel"), OpEQ, Str("Travel"), true},
		{Float(4.6), OpGT, Float(4.5), true},
		// Incomparable: only != holds.
		{Str("1"), OpEQ, Int(1), false},
		{Str("1"), OpNE, Int(1), true},
		{Str("1"), OpLT, Int(1), false},
		{Str("1"), OpGE, Int(1), false},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.a, c.b); got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestParseOp(t *testing.T) {
	for _, s := range []string{"<", "<=", "=", "!=", ">", ">="} {
		op, err := ParseOp(s)
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", s, err)
		}
		if op.String() != s {
			t.Errorf("ParseOp(%q).String() = %q", s, op.String())
		}
	}
	aliases := map[string]Op{"==": OpEQ, "<>": OpNE, "≤": OpLE, "≥": OpGE, "≠": OpNE}
	for s, want := range aliases {
		if op, err := ParseOp(s); err != nil || op != want {
			t.Errorf("ParseOp(%q) = %v,%v want %v", s, op, err, want)
		}
	}
	if _, err := ParseOp("=<"); err == nil {
		t.Error("ParseOp(=<) should fail")
	}
	if got := Op(42).String(); got != "Op(42)" {
		t.Errorf("Op(42).String() = %q", got)
	}
}

func TestTuple(t *testing.T) {
	tp := Tuple{"label": Str("CS"), "age": Int(3)}
	if v, ok := tp.Get("label"); !ok || !v.Equal(Str("CS")) {
		t.Errorf("Get(label) = %v,%v", v, ok)
	}
	if _, ok := tp.Get("missing"); ok {
		t.Error("Get(missing) should fail")
	}
	c := tp.Clone()
	c["age"] = Int(4)
	if v, _ := tp.Get("age"); !v.Equal(Int(3)) {
		t.Error("Clone is not independent")
	}
	if got, want := tp.String(), "age=3 label=CS"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	var nilT Tuple
	if nilT.Clone() != nil {
		t.Error("nil.Clone() should be nil")
	}
	if nilT.String() != "" {
		t.Error("nil.String() should be empty")
	}
}

// Property: Compare is antisymmetric and Apply is consistent with Compare
// over random int/float pairs.
func TestCompareProperties(t *testing.T) {
	anti := func(a, b int64) bool {
		c1, ok1 := Compare(Int(a), Int(b))
		c2, ok2 := Compare(Int(b), Int(a))
		return ok1 && ok2 && c1 == -c2
	}
	if err := quick.Check(anti, nil); err != nil {
		t.Error(err)
	}
	consistent := func(a, b float64) bool {
		va, vb := Float(a), Float(b)
		lt := OpLT.Apply(va, vb)
		ge := OpGE.Apply(va, vb)
		eq := OpEQ.Apply(va, vb)
		ne := OpNE.Apply(va, vb)
		return lt != ge && eq != ne
	}
	if err := quick.Check(consistent, nil); err != nil {
		t.Error(err)
	}
	crossKind := func(a int64) bool {
		// Int and Float of the same magnitude are Equal.
		return Int(a).Equal(Float(float64(a))) == (float64(a) == math.Trunc(float64(a)) && int64(float64(a)) == a) ||
			Int(a).Equal(Float(float64(a)))
	}
	if err := quick.Check(crossKind, nil); err != nil {
		t.Error(err)
	}
}

func TestStringQuoting(t *testing.T) {
	// Strings that look like numbers must round-trip as strings.
	v := Str("123")
	if v.String() != `"123"` {
		t.Errorf("Str(123).String() = %q", v.String())
	}
	if got := Parse(v.String()); got.Kind() != KindString {
		t.Errorf("round-trip kind = %v", got.Kind())
	}
}

// Property: String/Parse round-trips preserve value and kind for random
// ints, floats and printable strings.
func TestRoundTripProperty(t *testing.T) {
	ints := func(i int64) bool {
		v := Int(i)
		got := Parse(v.String())
		return got.Kind() == KindInt && got.Equal(v)
	}
	if err := quick.Check(ints, nil); err != nil {
		t.Error(err)
	}
	floats := func(f float64) bool {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true // not representable in the text format
		}
		v := Float(f)
		got := Parse(v.String())
		fv, ok := got.AsFloat()
		return ok && fv == f
	}
	if err := quick.Check(floats, nil); err != nil {
		t.Error(err)
	}
	strs := func(s string) bool {
		for _, r := range s {
			if r < ' ' || r == 0x7f {
				return true // control characters are out of scope
			}
		}
		v := Str(s)
		got := Parse(v.String())
		gs, ok := got.AsString()
		return ok && gs == s
	}
	if err := quick.Check(strs, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
