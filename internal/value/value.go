// Package value provides the typed attribute values carried by data-graph
// nodes and compared by pattern predicates.
//
// A Value is one of three kinds: integer, float or string. Numeric kinds
// compare with each other; strings compare lexicographically with strings
// only. Tuple is the attribute tuple fA(v) of the paper: a named set of
// values describing one node.
package value

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindInt Kind = iota
	KindFloat
	KindString
)

// String returns the lower-case kind name.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is an immutable typed constant: the a_i of an attribute A_i = a_i.
// The zero Value is the integer 0.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Int returns an integer Value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a float Value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Str returns a string Value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// AsInt returns the integer payload; ok is false for non-integer values.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == KindInt }

// AsFloat returns the value as a float64. Integers convert; ok is false
// for strings.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindFloat:
		return v.f, true
	case KindInt:
		return float64(v.i), true
	default:
		return 0, false
	}
}

// AsString returns the string payload; ok is false for non-string values.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// String renders the value as it appears in the text formats: integers and
// floats bare, strings double-quoted when they could be misread.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		if needsQuoting(v.s) {
			return strconv.Quote(v.s)
		}
		return v.s
	}
}

func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return true // would re-parse as a number
	}
	return strings.ContainsAny(s, " \t\"=<>!&,()")
}

// Parse interprets s as a Value: an int64 if it parses as one, otherwise a
// float64 if it parses as one, otherwise a (possibly quoted) string.
func Parse(s string) Value {
	if len(s) >= 2 && s[0] == '"' {
		if uq, err := strconv.Unquote(s); err == nil {
			return Str(uq)
		}
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		if f == 0 {
			// Normalise negative zero: "-.0" would otherwise render as
			// "-0", which re-parses as the integer 0 and breaks text
			// round-trips (found by FuzzReadGraph).
			f = 0
		}
		return Float(f)
	}
	return Str(s)
}

// Equal reports whether v and w are equal under Compare semantics
// (numerics compare across kinds, so Int(1) equals Float(1)).
func (v Value) Equal(w Value) bool {
	c, ok := Compare(v, w)
	return ok && c == 0
}

// Compare orders two values: -1, 0 or +1. ok is false when the values are
// incomparable (a string against a number).
func Compare(a, b Value) (cmp int, ok bool) {
	if a.kind == KindString || b.kind == KindString {
		if a.kind != KindString || b.kind != KindString {
			return 0, false
		}
		return strings.Compare(a.s, b.s), true
	}
	if a.kind == KindInt && b.kind == KindInt {
		switch {
		case a.i < b.i:
			return -1, true
		case a.i > b.i:
			return 1, true
		default:
			return 0, true
		}
	}
	af, _ := a.AsFloat()
	bf, _ := b.AsFloat()
	switch {
	case af < bf:
		return -1, true
	case af > bf:
		return 1, true
	default:
		return 0, true
	}
}

// Op is one of the six comparison operators of pattern predicates.
type Op uint8

// The comparison operators (paper §2.1: <, ≤, =, ≠, >, ≥).
const (
	OpLT Op = iota
	OpLE
	OpEQ
	OpNE
	OpGT
	OpGE
)

var opNames = [...]string{"<", "<=", "=", "!=", ">", ">="}

// String returns the operator's surface syntax.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// ParseOp recognises the surface syntax of the six operators, accepting
// the common aliases ==, <>, ≤, ≥ and ≠.
func ParseOp(s string) (Op, error) {
	switch s {
	case "<":
		return OpLT, nil
	case "<=", "≤":
		return OpLE, nil
	case "=", "==":
		return OpEQ, nil
	case "!=", "<>", "≠":
		return OpNE, nil
	case ">":
		return OpGT, nil
	case ">=", "≥":
		return OpGE, nil
	default:
		return 0, fmt.Errorf("value: unknown comparison operator %q", s)
	}
}

// Apply evaluates "a op b". Incomparable operands yield false for every
// operator except !=, which yields true (values of different kinds are
// certainly not equal).
func (op Op) Apply(a, b Value) bool {
	c, ok := Compare(a, b)
	if !ok {
		return op == OpNE
	}
	switch op {
	case OpLT:
		return c < 0
	case OpLE:
		return c <= 0
	case OpEQ:
		return c == 0
	case OpNE:
		return c != 0
	case OpGT:
		return c > 0
	case OpGE:
		return c >= 0
	default:
		return false
	}
}

// Tuple is an attribute tuple fA(v): attribute name to value.
type Tuple map[string]Value

// Get returns the value of attribute name, with ok=false when absent.
func (t Tuple) Get(name string) (Value, bool) {
	v, ok := t[name]
	return v, ok
}

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	if t == nil {
		return nil
	}
	c := make(Tuple, len(t))
	for k, v := range t {
		c[k] = v
	}
	return c
}

// Keys returns the attribute names in sorted order.
func (t Tuple) Keys() []string {
	ks := make([]string, 0, len(t))
	for k := range t {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// String renders the tuple as "k1=v1 k2=v2 ..." with sorted keys.
func (t Tuple) String() string {
	var b strings.Builder
	for i, k := range t.Keys() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", k, t[k].String())
	}
	return b.String()
}
