package wal

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpm/internal/gio"
	"gpm/internal/graph"
	"gpm/internal/incremental"
	"gpm/internal/value"
)

func mustOpen(t *testing.T, dir string) (*WAL, *Recovery) {
	t.Helper()
	w, rec, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return w, rec
}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(5)
	g.SetAttr(0, graph.Attrs{"label": value.Str("a")})
	g.SetAttr(3, graph.Attrs{"label": value.Str("b")})
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}} {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func gioText(t *testing.T, g *graph.Graph) string {
	t.Helper()
	var b strings.Builder
	if err := gio.WriteGraph(&b, g); err != nil {
		t.Fatalf("WriteGraph: %v", err)
	}
	return b.String()
}

func snapshotOf(t *testing.T, nextID int64, name string, g *graph.Graph, sessions ...Session) SnapshotState {
	t.Helper()
	return SnapshotState{
		NextID: nextID,
		Graphs: []GraphSnapshot{{
			Name:       name,
			Sessions:   sessions,
			WriteGraph: func(w io.Writer) error { return gio.WriteGraph(w, g) },
		}},
	}
}

func TestEmptyDirRecoversToNothing(t *testing.T) {
	dir := t.TempDir()
	w, rec := mustOpen(t, dir)
	defer w.Close()
	if rec.Generation != 0 || rec.NextID != 0 || len(rec.Graphs) != 0 || rec.Truncated {
		t.Fatalf("empty dir recovered %+v", rec)
	}
	if got := w.LoggedBatches(); got != 0 {
		t.Fatalf("LoggedBatches = %d, want 0", got)
	}
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir)

	batches := [][]incremental.Update{
		{{Insert: true, U: 1, V: 2}},
		{{Insert: false, U: 1, V: 2}, {Insert: true, U: 3, V: 4}},
		{},
	}
	for _, b := range batches {
		if err := w.AppendUpdate("g", b); err != nil {
			t.Fatalf("AppendUpdate: %v", err)
		}
	}
	if err := w.AppendWatchOpen("g", Session{ID: 1, Semantics: "match", Pattern: "pattern 1\n"}); err != nil {
		t.Fatalf("AppendWatchOpen: %v", err)
	}
	if err := w.AppendWatchOpen("g", Session{ID: 2, Semantics: "dual", Pattern: "pattern 1\n"}); err != nil {
		t.Fatalf("AppendWatchOpen: %v", err)
	}
	if err := w.AppendWatchClose(1); err != nil {
		t.Fatalf("AppendWatchClose: %v", err)
	}
	if got := w.LoggedBatches(); got != 3 {
		t.Fatalf("LoggedBatches = %d, want 3", got)
	}
	w.Close() // crash: no snapshot

	w2, rec := mustOpen(t, dir)
	defer w2.Close()
	if rec.Truncated {
		t.Fatal("clean log reported truncation")
	}
	if rec.Batches != 3 || rec.Sessions != 1 {
		t.Fatalf("recovered %d batches / %d sessions, want 3 / 1", rec.Batches, rec.Sessions)
	}
	gs := rec.Graphs["g"]
	if gs == nil {
		t.Fatal("graph g not recovered")
	}
	if gs.Graph != nil {
		t.Fatal("graph state has a snapshot graph; none was taken")
	}
	if len(gs.Batches) != 3 {
		t.Fatalf("recovered %d batches for g, want 3", len(gs.Batches))
	}
	for i, want := range batches {
		got := gs.Batches[i]
		if len(got) != len(want) {
			t.Fatalf("batch %d: %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("batch %d op %d: %+v, want %+v", i, j, got[j], want[j])
			}
		}
	}
	if len(gs.Sessions) != 1 || gs.Sessions[0].ID != 2 || gs.Sessions[0].Semantics != "dual" {
		t.Fatalf("recovered sessions %+v, want only id 2 (dual)", gs.Sessions)
	}
	if rec.NextID != 2 {
		t.Fatalf("NextID = %d, want 2 (highest open id seen)", rec.NextID)
	}
	// Recovery recounts the log so the snapshot cadence survives restarts.
	if got := w2.LoggedBatches(); got != 3 {
		t.Fatalf("reopened LoggedBatches = %d, want 3", got)
	}
}

func TestSnapshotRotatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir)
	g := testGraph(t)
	want := gioText(t, g)

	if err := w.AppendUpdate("g", []incremental.Update{{Insert: true, U: 0, V: 2}}); err != nil {
		t.Fatal(err)
	}
	sess := Session{ID: 7, Semantics: "strong", Pattern: "pattern 1\nnode 0 label=a\n"}
	if err := w.Snapshot(snapshotOf(t, 7, "g", g, sess)); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if got := w.Generation(); got != 1 {
		t.Fatalf("generation after snapshot = %d, want 1", got)
	}
	if got := w.LoggedBatches(); got != 0 {
		t.Fatalf("LoggedBatches after snapshot = %d, want 0", got)
	}
	// One batch after the snapshot: the only replay work left.
	if err := w.AppendUpdate("g", []incremental.Update{{Insert: false, U: 4, V: 0}}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// The previous generation's files are gone.
	if _, err := os.Stat(filepath.Join(dir, logName(0))); !os.IsNotExist(err) {
		t.Fatalf("old log still present (err=%v)", err)
	}

	w2, rec := mustOpen(t, dir)
	defer w2.Close()
	if rec.Generation != 1 {
		t.Fatalf("recovered generation %d, want 1", rec.Generation)
	}
	if rec.NextID != 7 {
		t.Fatalf("NextID = %d, want 7", rec.NextID)
	}
	gs := rec.Graphs["g"]
	if gs == nil || gs.Graph == nil {
		t.Fatalf("snapshot graph not recovered: %+v", gs)
	}
	if got := gioText(t, gs.Graph); got != want {
		t.Fatalf("recovered graph differs:\n%s\nwant:\n%s", got, want)
	}
	if len(gs.Sessions) != 1 || gs.Sessions[0] != sess {
		t.Fatalf("recovered sessions %+v, want %+v", gs.Sessions, sess)
	}
	// Only the post-snapshot batch replays; the pre-snapshot one is baked
	// into the graph.
	if len(gs.Batches) != 1 || gs.Batches[0][0] != (incremental.Update{Insert: false, U: 4, V: 0}) {
		t.Fatalf("recovered batches %+v, want the one post-snapshot delete", gs.Batches)
	}
}

func TestSecondSnapshotRetiresFirst(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir)
	defer w.Close()
	g := testGraph(t)
	for gen := 1; gen <= 3; gen++ {
		if err := w.Snapshot(snapshotOf(t, int64(gen), "g", g)); err != nil {
			t.Fatalf("snapshot %d: %v", gen, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	want := map[string]bool{currentFile: true, snapName(3): true, logName(3): true}
	if len(names) != len(want) {
		t.Fatalf("dir holds %v, want exactly %v", names, want)
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected leftover %s (dir holds %v)", n, names)
		}
	}
}

// TestTornTailCorpus writes a clean log then damages its tail in each of
// the ways a crash can: a partial header, a partial payload, and a
// complete-looking record whose checksum no longer matches. Recovery
// must keep every complete record, drop the tail, and leave the log
// appendable.
func TestTornTailCorpus(t *testing.T) {
	writeClean := func(t *testing.T, dir string) {
		w, _ := mustOpen(t, dir)
		for i := 0; i < 3; i++ {
			if err := w.AppendUpdate("g", []incremental.Update{{Insert: true, U: i, V: i + 1}}); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
	}
	logPath := func(dir string) string { return filepath.Join(dir, logName(0)) }

	damage := map[string]func(t *testing.T, dir string){
		"torn header": func(t *testing.T, dir string) {
			appendBytes(t, logPath(dir), []byte{0x10, 0x00, 0x00})
		},
		"torn payload": func(t *testing.T, dir string) {
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], 64) // claims 64 payload bytes...
			binary.LittleEndian.PutUint32(hdr[4:8], 0)
			appendBytes(t, logPath(dir), append(hdr[:], []byte("short")...)) // ...delivers 5
		},
		"checksum mismatch": func(t *testing.T, dir string) {
			payload := []byte(`{"k":"update","g":"g","ops":[{"i":true,"u":9,"v":9}]}`)
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable)+1)
			appendBytes(t, logPath(dir), append(hdr[:], payload...))
		},
	}
	for name, hurt := range damage {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			writeClean(t, dir)
			hurt(t, dir)

			w, rec := mustOpen(t, dir)
			if !rec.Truncated {
				t.Fatal("damaged tail not reported as truncated")
			}
			if rec.Batches != 3 {
				t.Fatalf("recovered %d batches, want the 3 complete ones", rec.Batches)
			}
			// The tail was physically truncated: appending then re-reading
			// yields 4 clean records, no truncation.
			if err := w.AppendUpdate("g", []incremental.Update{{Insert: true, U: 8, V: 9}}); err != nil {
				t.Fatal(err)
			}
			w.Close()
			w2, rec2 := mustOpen(t, dir)
			defer w2.Close()
			if rec2.Truncated || rec2.Batches != 4 {
				t.Fatalf("after truncate+append: truncated=%v batches=%d, want clean 4", rec2.Truncated, rec2.Batches)
			}
		})
	}
}

// TestInterruptedSnapshotIsSwept simulates a crash mid-snapshot: files of
// the next generation exist but CURRENT still names the old one. Open
// must recover the old generation and sweep the orphans.
func TestInterruptedSnapshotIsSwept(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir)
	g := testGraph(t)
	if err := w.Snapshot(snapshotOf(t, 1, "g", g)); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendUpdate("g", []incremental.Update{{Insert: true, U: 0, V: 2}}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// A half-written next generation and a stray tmp file.
	for _, orphan := range []string{snapName(2), logName(2), snapName(2) + ".tmp"} {
		if err := os.WriteFile(filepath.Join(dir, orphan), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	w2, rec := mustOpen(t, dir)
	defer w2.Close()
	if rec.Generation != 1 || rec.Batches != 1 {
		t.Fatalf("recovered gen %d with %d batches, want gen 1 with 1", rec.Generation, rec.Batches)
	}
	for _, orphan := range []string{snapName(2), logName(2), snapName(2) + ".tmp"} {
		if _, err := os.Stat(filepath.Join(dir, orphan)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived the sweep (err=%v)", orphan, err)
		}
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir)
	w.Close()
	if err := w.AppendUpdate("g", nil); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := w.Snapshot(SnapshotState{}); err == nil {
		t.Fatal("snapshot after Close succeeded")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	if p, err := ParseSyncPolicy("always"); err != nil || p != SyncAlways {
		t.Fatalf("always -> %v, %v", p, err)
	}
	if p, err := ParseSyncPolicy("none"); err != nil || p != SyncNone {
		t.Fatalf("none -> %v, %v", p, err)
	}
	if _, err := ParseSyncPolicy("fsync-sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestSyncAlwaysRoundTrips(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendUpdate("g", []incremental.Update{{Insert: true, U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, rec := mustOpen(t, dir)
	defer w2.Close()
	if rec.Batches != 1 {
		t.Fatalf("recovered %d batches, want 1", rec.Batches)
	}
}

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	f.Close()
}
