// Package wal is gpmd's durability subsystem: a write-ahead log for
// update batches and watch-session lifecycle events, plus periodic
// snapshots (every bound graph in gio text format and a manifest of the
// open watch sessions) and crash recovery that replays the log tail on
// top of the last snapshot.
//
// On-disk layout, all inside one directory:
//
//	CURRENT       the current generation number (atomic pointer file)
//	snap-N.wals   generation N's snapshot: manifest + one graph per record
//	wal-N.log     generation N's log: records appended after the snapshot
//
// Every file is a sequence of framed records: a 4-byte little-endian
// payload length, a 4-byte CRC-32C (Castagnoli) of the payload, then the
// payload (JSON). A crash can tear only the final log record; recovery
// stops at the first frame whose length or checksum fails, truncates the
// torn tail, and resumes appending after the last complete record — a
// partial write therefore costs at most the one batch whose HTTP
// response the crash also lost. Snapshot files are written to a
// temporary name, fsynced and renamed before CURRENT advances, so a
// crash mid-snapshot leaves the previous generation intact.
//
// The log records three kinds of events. "update" carries one /update
// batch (logged before the engine applies it). "open" and "close" carry
// watch-session lifecycle so sessions created after the last snapshot
// are re-opened — with their original ids — by recovery. Replaying the
// per-graph batches through the engine's incremental maintainers
// restores every watcher to the exact relation a never-crashed process
// would hold; the metamorphic update-stream harness (internal/difftest)
// is the oracle for that equivalence.
package wal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"gpm/internal/gio"
	"gpm/internal/graph"
	"gpm/internal/incremental"
)

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs the log after every append: a batch acknowledged
	// over HTTP survives an OS crash. The default.
	SyncAlways SyncPolicy = iota
	// SyncNone leaves flushing to the OS page cache: bounded data loss on
	// an OS crash, none on a process crash, much higher update throughput.
	SyncNone
)

// ParseSyncPolicy maps gpmd's -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always or none)", s)
	}
}

func (p SyncPolicy) String() string {
	if p == SyncNone {
		return "none"
	}
	return "always"
}

// Options parameterises Open.
type Options struct {
	Sync SyncPolicy
}

// Op is one logged edge update.
type Op struct {
	Insert bool `json:"i"`
	U      int  `json:"u"`
	V      int  `json:"v"`
}

// Session is one open watch session as the manifest and the log record
// it: enough to re-open it with its original id after a crash.
type Session struct {
	ID        int64  `json:"id"`
	Semantics string `json:"semantics"`
	Pattern   string `json:"pattern"` // .pattern text format
}

// record is the JSON payload of one framed log or snapshot record.
type record struct {
	Kind  string `json:"k"` // "update" | "open" | "close" | "manifest" | "graph"
	Graph string `json:"g,omitempty"`
	Ops   []Op   `json:"ops,omitempty"` // update
	// open / close
	ID        int64  `json:"id,omitempty"`
	Semantics string `json:"semantics,omitempty"`
	Pattern   string `json:"pattern,omitempty"`
	// manifest
	NextID int64           `json:"next_id,omitempty"`
	Graphs []manifestGraph `json:"graphs,omitempty"`
	// graph
	Gio string `json:"gio,omitempty"`
}

type manifestGraph struct {
	Name     string    `json:"name"`
	Sessions []Session `json:"sessions,omitempty"`
}

// GraphState is everything recovery knows about one named graph: the
// snapshot graph (nil when the graph never made it into a snapshot — the
// caller's freshly loaded graph is the base then), the sessions open at
// crash time, and the update batches logged after the snapshot, in log
// order.
type GraphState struct {
	Graph    *graph.Graph
	Sessions []Session
	Batches  [][]incremental.Update
}

// Recovery is the state Open reconstructed from disk. An empty directory
// recovers to a Recovery with no graphs.
type Recovery struct {
	Generation uint64
	NextID     int64 // watch-id counter to resume from
	Graphs     map[string]*GraphState
	Batches    int  // update batches recovered from the log
	Sessions   int  // sessions open at crash time
	Truncated  bool // a torn final record was dropped
}

// GraphSnapshot is one graph's contribution to a snapshot.
type GraphSnapshot struct {
	Name     string
	Sessions []Session
	// WriteGraph streams the graph in gio text format; it runs with the
	// WAL lock held and must produce a state consistent with every update
	// record already appended (gpmd passes Engine.WriteGraph, which takes
	// the engine's read lock).
	WriteGraph func(io.Writer) error
}

// SnapshotState is the full-server state a snapshot captures.
type SnapshotState struct {
	NextID int64
	Graphs []GraphSnapshot
}

// WAL is an open write-ahead log. All methods are safe for concurrent
// use; Append* calls serialise against each other and against Snapshot.
type WAL struct {
	dir  string
	sync SyncPolicy

	mu      sync.Mutex
	gen     uint64
	f       *os.File // current log, opened for append
	batches int64    // update records in the current log
	closed  bool
}

const (
	currentFile    = "CURRENT"
	maxRecordBytes = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func snapName(gen uint64) string { return fmt.Sprintf("snap-%d.wals", gen) }
func logName(gen uint64) string  { return fmt.Sprintf("wal-%d.log", gen) }

// Open opens (creating if necessary) the WAL in dir and recovers
// whatever a previous process left there: the CURRENT generation's
// snapshot, then its log up to the last complete record. The torn tail,
// if any, is truncated so the returned WAL appends after the last good
// record. Files from interrupted snapshots (generations other than
// CURRENT) are swept.
func Open(dir string, opts Options) (*WAL, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	w := &WAL{dir: dir, sync: opts.Sync}
	rec := &Recovery{Graphs: make(map[string]*GraphState)}

	gen, err := readCurrent(dir)
	if err != nil {
		return nil, nil, err
	}
	w.gen = gen
	rec.Generation = gen
	if gen > 0 {
		if err := w.loadSnapshot(gen, rec); err != nil {
			return nil, nil, fmt.Errorf("wal: snapshot %s: %w", snapName(gen), err)
		}
	}
	if err := w.replayLog(gen, rec); err != nil {
		return nil, nil, err
	}
	w.sweep()

	f, err := os.OpenFile(filepath.Join(dir, logName(gen)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w.f = f
	return w, rec, nil
}

func readCurrent(dir string) (uint64, error) {
	b, err := os.ReadFile(filepath.Join(dir, currentFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	gen, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("wal: corrupt CURRENT %q: %v", b, err)
	}
	return gen, nil
}

// loadSnapshot reads snap-<gen>.wals into rec. A snapshot referenced by
// CURRENT was fully written and fsynced before CURRENT advanced, so any
// framing or checksum failure here is corruption, not a torn write, and
// recovery refuses rather than serving partial state.
func (w *WAL) loadSnapshot(gen uint64, rec *Recovery) error {
	f, err := os.Open(filepath.Join(w.dir, snapName(gen)))
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	first := true
	for {
		payload, _, err := readRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("corrupt record: %v", err)
		}
		var rc record
		if err := json.Unmarshal(payload, &rc); err != nil {
			return fmt.Errorf("corrupt record: %v", err)
		}
		switch {
		case first && rc.Kind != "manifest":
			return fmt.Errorf("first record is %q, want manifest", rc.Kind)
		case rc.Kind == "manifest":
			rec.NextID = rc.NextID
			for _, mg := range rc.Graphs {
				rec.Graphs[mg.Name] = &GraphState{Sessions: append([]Session(nil), mg.Sessions...)}
			}
		case rc.Kind == "graph":
			gs, ok := rec.Graphs[rc.Graph]
			if !ok {
				return fmt.Errorf("graph %q not in manifest", rc.Graph)
			}
			g, err := gio.ReadGraph(strings.NewReader(rc.Gio))
			if err != nil {
				return fmt.Errorf("graph %q: %v", rc.Graph, err)
			}
			gs.Graph = g
		default:
			return fmt.Errorf("unknown snapshot record kind %q", rc.Kind)
		}
		first = false
	}
	if first {
		return fmt.Errorf("empty snapshot")
	}
	for name, gs := range rec.Graphs {
		if gs.Graph == nil {
			return fmt.Errorf("graph %q in manifest but not snapshotted", name)
		}
	}
	return nil
}

// replayLog folds wal-<gen>.log into rec, stopping at the first torn
// record and truncating the file there so the next append continues
// cleanly after the last complete record.
func (w *WAL) replayLog(gen uint64, rec *Recovery) error {
	path := filepath.Join(w.dir, logName(gen))
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	r := bufio.NewReader(f)
	var good int64 // offset after the last complete record
	// sessionGraph resolves close records to the graph their open went to.
	sessionGraph := make(map[int64]string)
	for name, gs := range rec.Graphs {
		for _, s := range gs.Sessions {
			sessionGraph[s.ID] = name
		}
	}
	torn := false
	for {
		payload, n, err := readRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			torn = true
			break
		}
		var rc record
		if err := json.Unmarshal(payload, &rc); err != nil {
			torn = true
			break
		}
		good += n
		w.batches += applyLogRecord(rc, rec, sessionGraph)
	}
	f.Close()
	if torn {
		rec.Truncated = true
		if err := os.Truncate(path, good); err != nil {
			return fmt.Errorf("wal: truncating torn tail of %s: %v", logName(gen), err)
		}
	}
	rec.Batches = int(w.batches)
	for _, gs := range rec.Graphs {
		rec.Sessions += len(gs.Sessions)
	}
	return nil
}

// applyLogRecord folds one complete log record into rec; returns 1 for
// update records (the snapshot-cadence counter counts batches).
func applyLogRecord(rc record, rec *Recovery, sessionGraph map[int64]string) int64 {
	graphState := func(name string) *GraphState {
		gs, ok := rec.Graphs[name]
		if !ok {
			// A graph that never made it into a snapshot (crash before the
			// first checkpoint): Graph stays nil and the caller replays onto
			// its freshly loaded copy.
			gs = &GraphState{}
			rec.Graphs[name] = gs
		}
		return gs
	}
	switch rc.Kind {
	case "update":
		gs := graphState(rc.Graph)
		batch := make([]incremental.Update, len(rc.Ops))
		for i, op := range rc.Ops {
			batch[i] = incremental.Update{Insert: op.Insert, U: op.U, V: op.V}
		}
		gs.Batches = append(gs.Batches, batch)
		return 1
	case "open":
		gs := graphState(rc.Graph)
		gs.Sessions = append(gs.Sessions, Session{ID: rc.ID, Semantics: rc.Semantics, Pattern: rc.Pattern})
		sessionGraph[rc.ID] = rc.Graph
		if rc.ID > rec.NextID {
			rec.NextID = rc.ID
		}
	case "close":
		name, ok := sessionGraph[rc.ID]
		if !ok {
			return 0
		}
		delete(sessionGraph, rc.ID)
		gs := rec.Graphs[name]
		for i, s := range gs.Sessions {
			if s.ID == rc.ID {
				gs.Sessions = append(gs.Sessions[:i], gs.Sessions[i+1:]...)
				break
			}
		}
	}
	// Unknown kinds are ignored: an older binary replaying a newer log
	// must not invent state, and the server refuses to start elsewhere.
	return 0
}

// sweep removes files belonging to generations other than the current
// one: leftovers of interrupted snapshots (gen+1 files written before
// CURRENT advanced) and of interrupted cleanups (old-generation files
// that outlived their replacement).
func (w *WAL) sweep() {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return
	}
	keep := map[string]bool{currentFile: true, logName(w.gen): true, snapName(w.gen): true}
	for _, e := range entries {
		name := e.Name()
		if keep[name] {
			continue
		}
		if strings.HasPrefix(name, "snap-") || strings.HasPrefix(name, "wal-") || strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(w.dir, name))
		}
	}
}

// Generation reports the current snapshot generation (0 before the first
// snapshot).
func (w *WAL) Generation() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.gen
}

// LoggedBatches reports the update batches appended to the current log —
// the work replay would redo, and the counter gpmd's -snapshot-every
// cadence watches. It survives restarts: recovery recounts the log.
func (w *WAL) LoggedBatches() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.batches
}

// Dir reports the directory the WAL lives in.
func (w *WAL) Dir() string { return w.dir }

// Sync reports the append durability policy.
func (w *WAL) Sync() SyncPolicy { return w.sync }

// AppendUpdate logs one update batch for graph. It must be called before
// the batch is applied to the engine (log-before-apply): a crash between
// append and apply replays a batch that never took effect in memory,
// which is exactly the recovery semantics; the reverse order loses
// acknowledged batches.
func (w *WAL) AppendUpdate(graph string, ups []incremental.Update) error {
	ops := make([]Op, len(ups))
	for i, u := range ups {
		ops[i] = Op{Insert: u.Insert, U: u.U, V: u.V}
	}
	return w.append(record{Kind: "update", Graph: graph, Ops: ops}, true)
}

// AppendWatchOpen logs a watch session opening on graph.
func (w *WAL) AppendWatchOpen(graph string, s Session) error {
	return w.append(record{Kind: "open", Graph: graph, ID: s.ID, Semantics: s.Semantics, Pattern: s.Pattern}, false)
}

// AppendWatchClose logs a watch session closing.
func (w *WAL) AppendWatchClose(id int64) error {
	return w.append(record{Kind: "close", ID: id}, false)
}

func (w *WAL) append(rc record, isBatch bool) error {
	payload, err := json.Marshal(rc)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("wal: append on closed WAL")
	}
	if err := writeRecord(w.f, payload); err != nil {
		return err
	}
	if w.sync == SyncAlways {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	if isBatch {
		w.batches++
	}
	return nil
}

// Snapshot writes a new generation — every graph in st, the open-session
// manifest — and atomically advances CURRENT to it, then removes the
// previous generation's files. The log restarts empty: recovery from the
// new generation replays nothing until the next update arrives.
//
// The caller must guarantee st is consistent with the log: no update may
// be applied-but-unlogged or logged-but-unapplied while Snapshot runs
// (gpmd holds its WAL barrier in write mode across the call).
func (w *WAL) Snapshot(st SnapshotState) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("wal: snapshot on closed WAL")
	}
	newGen := w.gen + 1

	if err := w.writeSnapshotFile(newGen, st); err != nil {
		return err
	}
	// An empty log must exist before CURRENT names its generation, so a
	// crash right after the CURRENT rename recovers cleanly.
	newLog, err := os.OpenFile(filepath.Join(w.dir, logName(newGen)), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := newLog.Sync(); err != nil {
		newLog.Close()
		return err
	}
	if err := w.advanceCurrent(newGen); err != nil {
		newLog.Close()
		return err
	}

	// The new generation is durable and named; retire the old one.
	oldGen := w.gen
	w.f.Close()
	w.f = newLog
	w.gen = newGen
	w.batches = 0
	os.Remove(filepath.Join(w.dir, logName(oldGen)))
	if oldGen > 0 {
		os.Remove(filepath.Join(w.dir, snapName(oldGen)))
	}
	return nil
}

func (w *WAL) writeSnapshotFile(gen uint64, st SnapshotState) error {
	graphs := append([]GraphSnapshot(nil), st.Graphs...)
	sort.Slice(graphs, func(i, j int) bool { return graphs[i].Name < graphs[j].Name })

	tmp := filepath.Join(w.dir, snapName(gen)+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after the rename succeeds
	bw := bufio.NewWriterSize(f, 1<<20)

	manifest := record{Kind: "manifest", NextID: st.NextID}
	for _, gs := range graphs {
		sessions := append([]Session(nil), gs.Sessions...)
		sort.Slice(sessions, func(i, j int) bool { return sessions[i].ID < sessions[j].ID })
		manifest.Graphs = append(manifest.Graphs, manifestGraph{Name: gs.Name, Sessions: sessions})
	}
	if err := marshalRecord(bw, manifest); err != nil {
		f.Close()
		return err
	}
	for _, gs := range graphs {
		var buf strings.Builder
		if err := gs.WriteGraph(&buf); err != nil {
			f.Close()
			return fmt.Errorf("wal: snapshotting graph %q: %w", gs.Name, err)
		}
		if err := marshalRecord(bw, record{Kind: "graph", Graph: gs.Name, Gio: buf.String()}); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, snapName(gen))); err != nil {
		return err
	}
	return syncDir(w.dir)
}

// advanceCurrent atomically repoints CURRENT at gen.
func (w *WAL) advanceCurrent(gen uint64) error {
	tmp := filepath.Join(w.dir, currentFile+".tmp")
	if err := os.WriteFile(tmp, []byte(strconv.FormatUint(gen, 10)+"\n"), 0o644); err != nil {
		return err
	}
	f, err := os.Open(tmp)
	if err == nil {
		f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, currentFile)); err != nil {
		return err
	}
	return syncDir(w.dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Directory fsync is advisory on some filesystems; ignore its error
	// the way databases do.
	d.Sync()
	return nil
}

// Close releases the log file handle. Appends after Close fail; the
// directory can then be re-Opened (by a test simulating a crash, or the
// next process).
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// writeRecord frames one payload: length, CRC-32C, payload.
func writeRecord(f io.Writer, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf := make([]byte, 0, 8+len(payload))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	// One write call per record: the kernel may still tear it across
	// sectors on a crash, which the CRC catches at recovery.
	_, err := f.Write(buf)
	return err
}

func marshalRecord(f io.Writer, rc record) error {
	payload, err := json.Marshal(rc)
	if err != nil {
		return err
	}
	return writeRecord(f, payload)
}

// readRecord reads one framed record; n is the total bytes consumed.
// io.EOF means a clean end; any other error means a torn or corrupt
// record starting at the current offset.
func readRecord(r io.Reader) (payload []byte, n int64, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("torn header: %v", err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxRecordBytes {
		return nil, 0, fmt.Errorf("implausible record length %d", length)
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("torn payload: %v", err)
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, 0, fmt.Errorf("checksum mismatch")
	}
	return payload, 8 + int64(length), nil
}
