package graph

import "sync"

// Scratch bundles the per-traversal buffers of one BFS: a distance slice
// and a frontier queue. Scratches are pooled so that the worker goroutines
// of the parallel matching core allocate their traversal state once per
// burst instead of once per source; pair every GetScratch with a Put.
type Scratch struct {
	Dist  []int32
	Queue []int32
}

var scratchPool = sync.Pool{New: func() interface{} { return new(Scratch) }}

// GetScratch returns a pooled Scratch whose Dist has length n and is
// pre-filled with -1, ready for BFSDistInto.
func GetScratch(n int) *Scratch {
	s := scratchPool.Get().(*Scratch)
	s.Reset(n)
	return s
}

// Reset sizes Dist to n and refills it with -1. The queue keeps its grown
// capacity.
func (s *Scratch) Reset(n int) {
	if cap(s.Dist) < n {
		s.Dist = make([]int32, n)
	}
	s.Dist = s.Dist[:n]
	for i := range s.Dist {
		s.Dist[i] = -1
	}
}

// Put returns the scratch to the pool. The buffers (including any growth
// the BFS caused) stay with it, making reuse sticky.
func (s *Scratch) Put() {
	scratchPool.Put(s)
}
