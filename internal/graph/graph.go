// Package graph implements the directed, node-attributed data graphs
// G = (V, E, fA) of the paper: a finite node set, a directed edge set, and
// an attribute tuple per node. Edges may optionally carry a color (the
// "various relationships" extension of §2.2 remark 4 and §6).
//
// Nodes are dense integer ids 0..N()-1. The representation keeps both
// out- and in-adjacency so that forward and reverse traversals are cheap,
// plus a hash set of edges for O(1) membership tests; this supports the
// mutation workload of the incremental algorithms (§4).
package graph

import (
	"fmt"
	"sort"
	"strings"

	"gpm/internal/value"
)

// Attrs is the attribute tuple fA(v) of a node.
type Attrs = value.Tuple

// edgeKey packs a directed edge into a map key.
func edgeKey(u, v int) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

// Graph is a mutable directed graph with node attributes and optional
// edge colors. The zero value is unusable; use New.
type Graph struct {
	attrs  []Attrs
	out    [][]int32
	in     [][]int32
	edges  map[uint64]struct{}
	colors map[uint64]string // only edges with a color appear here
	m      int
}

// New returns a graph with n attribute-less nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{
		attrs: make([]Attrs, n),
		out:   make([][]int32, n),
		in:    make([][]int32, n),
		edges: make(map[uint64]struct{}),
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.attrs) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddNode appends a node with the given attributes and returns its id.
func (g *Graph) AddNode(a Attrs) int {
	g.attrs = append(g.attrs, a)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return len(g.attrs) - 1
}

// Attr returns the attribute tuple of node v (may be nil).
func (g *Graph) Attr(v int) Attrs { return g.attrs[v] }

// SetAttr replaces the attribute tuple of node v.
func (g *Graph) SetAttr(v int, a Attrs) { g.attrs[v] = a }

// Label returns the "label" attribute of v as a string, or "" if absent.
// It is a convenience for the common labeled-graph special case.
func (g *Graph) Label(v int) string {
	if a := g.attrs[v]; a != nil {
		if lv, ok := a["label"]; ok {
			if s, ok := lv.AsString(); ok {
				return s
			}
			return lv.String()
		}
	}
	return ""
}

// HasEdge reports whether the edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.edges[edgeKey(u, v)]
	return ok
}

// AddEdge inserts the directed edge (u, v). It reports whether the edge
// was added (false when it already existed). Node ids must be valid.
func (g *Graph) AddEdge(u, v int) bool {
	g.checkNode(u)
	g.checkNode(v)
	k := edgeKey(u, v)
	if _, dup := g.edges[k]; dup {
		return false
	}
	g.edges[k] = struct{}{}
	g.out[u] = append(g.out[u], int32(v))
	g.in[v] = append(g.in[v], int32(u))
	g.m++
	return true
}

// AddColoredEdge inserts (u, v) carrying a relationship color. Adding an
// existing edge returns false and leaves its color unchanged.
func (g *Graph) AddColoredEdge(u, v int, color string) bool {
	if !g.AddEdge(u, v) {
		return false
	}
	if color != "" {
		if g.colors == nil {
			g.colors = make(map[uint64]string)
		}
		g.colors[edgeKey(u, v)] = color
	}
	return true
}

// Color returns the color of edge (u, v) and whether the edge exists.
// Uncolored edges return "".
func (g *Graph) Color(u, v int) (string, bool) {
	if !g.HasEdge(u, v) {
		return "", false
	}
	return g.colors[edgeKey(u, v)], true
}

// Colored reports whether any edge in the graph carries a color.
func (g *Graph) Colored() bool { return len(g.colors) > 0 }

// RemoveEdge deletes the edge (u, v), reporting whether it existed.
func (g *Graph) RemoveEdge(u, v int) bool {
	k := edgeKey(u, v)
	if _, ok := g.edges[k]; !ok {
		return false
	}
	delete(g.edges, k)
	delete(g.colors, k)
	g.out[u] = removeFirst(g.out[u], int32(v))
	g.in[v] = removeFirst(g.in[v], int32(u))
	g.m--
	return true
}

func removeFirst(s []int32, x int32) []int32 {
	for i, y := range s {
		if y == x {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// Out returns the out-neighbors of u. The slice is owned by the graph and
// must not be modified; it is invalidated by mutations.
func (g *Graph) Out(u int) []int32 { return g.out[u] }

// In returns the in-neighbors of v under the same ownership rules as Out.
func (g *Graph) In(v int) []int32 { return g.in[v] }

// OutDegree returns the number of edges leaving u.
func (g *Graph) OutDegree(u int) int { return len(g.out[u]) }

// InDegree returns the number of edges entering v.
func (g *Graph) InDegree(v int) int { return len(g.in[v]) }

// Edges calls fn for every edge. Iteration order is unspecified. fn must
// not mutate the graph.
func (g *Graph) Edges(fn func(u, v int)) {
	for u, outs := range g.out {
		for _, v := range outs {
			fn(u, int(v))
		}
	}
}

// EdgeList returns all edges sorted by (from, to).
func (g *Graph) EdgeList() [][2]int32 {
	es := make([][2]int32, 0, g.m)
	g.Edges(func(u, v int) { es = append(es, [2]int32{int32(u), int32(v)}) })
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	return es
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		attrs: make([]Attrs, len(g.attrs)),
		out:   make([][]int32, len(g.out)),
		in:    make([][]int32, len(g.in)),
		edges: make(map[uint64]struct{}, len(g.edges)),
		m:     g.m,
	}
	for i, a := range g.attrs {
		c.attrs[i] = a.Clone()
	}
	for i, s := range g.out {
		c.out[i] = append([]int32(nil), s...)
	}
	for i, s := range g.in {
		c.in[i] = append([]int32(nil), s...)
	}
	for k := range g.edges {
		c.edges[k] = struct{}{}
	}
	if g.colors != nil {
		c.colors = make(map[uint64]string, len(g.colors))
		for k, v := range g.colors {
			c.colors[k] = v
		}
	}
	return c
}

// Validate checks internal consistency (adjacency vs edge set, degrees,
// color keys). It is meant for tests and for loaders of external data.
func (g *Graph) Validate() error {
	if len(g.out) != len(g.attrs) || len(g.in) != len(g.attrs) {
		return fmt.Errorf("graph: adjacency size mismatch")
	}
	count := 0
	for u, outs := range g.out {
		for _, v := range outs {
			if int(v) < 0 || int(v) >= g.N() {
				return fmt.Errorf("graph: edge (%d,%d) out of range", u, v)
			}
			if !g.HasEdge(u, int(v)) {
				return fmt.Errorf("graph: edge (%d,%d) in adjacency but not edge set", u, v)
			}
			count++
		}
	}
	if count != g.m {
		return fmt.Errorf("graph: edge count %d != recorded %d", count, g.m)
	}
	if len(g.edges) != g.m {
		return fmt.Errorf("graph: edge set size %d != recorded %d", len(g.edges), g.m)
	}
	inCount := 0
	for v, ins := range g.in {
		for _, u := range ins {
			if !g.HasEdge(int(u), v) {
				return fmt.Errorf("graph: edge (%d,%d) in in-adjacency but not edge set", u, v)
			}
			inCount++
		}
	}
	if inCount != g.m {
		return fmt.Errorf("graph: in-edge count %d != recorded %d", inCount, g.m)
	}
	for k := range g.colors {
		if _, ok := g.edges[k]; !ok {
			return fmt.Errorf("graph: colored edge %d not in edge set", k)
		}
	}
	return nil
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{nodes: %d, edges: %d}", g.N(), g.M())
}

func (g *Graph) checkNode(v int) {
	if v < 0 || v >= len(g.attrs) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", v, len(g.attrs)))
	}
}

// Dump writes a full adjacency listing, for debugging small graphs.
func (g *Graph) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", g.String())
	for v := 0; v < g.N(); v++ {
		outs := append([]int32(nil), g.out[v]...)
		sort.Slice(outs, func(i, j int) bool { return outs[i] < outs[j] })
		fmt.Fprintf(&b, "  %d [%s] ->", v, g.attrs[v].String())
		for _, w := range outs {
			fmt.Fprintf(&b, " %d", w)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
