package graph

import (
	"fmt"
	"sort"
)

// Stats summarises degree structure; the experiment harness prints it for
// the dataset table and the generators assert against it.
type Stats struct {
	Nodes, Edges   int
	MinOut, MaxOut int
	MinIn, MaxIn   int
	AvgDegree      float64 // edges per node
	Sinks          int     // out-degree 0
	Sources        int     // in-degree 0
	SelfLoops      int
	MedianOut      int
}

// ComputeStats scans the graph once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{Nodes: g.N(), Edges: g.M()}
	if g.N() == 0 {
		return s
	}
	outs := make([]int, g.N())
	s.MinOut, s.MinIn = g.N()+1, g.N()+1
	for v := 0; v < g.N(); v++ {
		od, id := g.OutDegree(v), g.InDegree(v)
		outs[v] = od
		if od < s.MinOut {
			s.MinOut = od
		}
		if od > s.MaxOut {
			s.MaxOut = od
		}
		if id < s.MinIn {
			s.MinIn = id
		}
		if id > s.MaxIn {
			s.MaxIn = id
		}
		if od == 0 {
			s.Sinks++
		}
		if id == 0 {
			s.Sources++
		}
		if g.HasEdge(v, v) {
			s.SelfLoops++
		}
	}
	s.AvgDegree = float64(g.M()) / float64(g.N())
	sort.Ints(outs)
	s.MedianOut = outs[len(outs)/2]
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d avg-deg=%.2f out[%d..%d] in[%d..%d] sinks=%d sources=%d",
		s.Nodes, s.Edges, s.AvgDegree, s.MinOut, s.MaxOut, s.MinIn, s.MaxIn, s.Sinks, s.Sources)
}

// StronglyConnectedComponents returns the SCCs of g (Tarjan, iterative).
// Components are returned in reverse topological order of the condensation.
func StronglyConnectedComponents(g *Graph) [][]int32 {
	n := g.N()
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var (
		stack []int32
		comps [][]int32
		next  int32
	)
	type frame struct {
		v  int32
		ei int
	}
	for root := 0; root < n; root++ {
		if index[root] >= 0 {
			continue
		}
		callStack := []frame{{v: int32(root)}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			outs := g.out[f.v]
			if f.ei < len(outs) {
				w := outs[f.ei]
				f.ei++
				if index[w] < 0 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := &callStack[len(callStack)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// IsDAG reports whether g has no directed cycle (self-loops count as
// cycles).
func IsDAG(g *Graph) bool {
	for v := 0; v < g.N(); v++ {
		if g.HasEdge(v, v) {
			return false
		}
	}
	for _, c := range StronglyConnectedComponents(g) {
		if len(c) > 1 {
			return false
		}
	}
	return true
}
