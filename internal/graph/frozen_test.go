package graph

import (
	"math/rand"
	"testing"

	"gpm/internal/value"
)

func randomFrozenTestGraph(t *testing.T, seed int64, n, edges int) *Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	g := New(0)
	for i := 0; i < n; i++ {
		g.AddNode(Attrs{"label": value.Str("L"), "i": value.Int(int64(i))})
	}
	for tries := 0; g.M() < edges && tries < 20*edges; tries++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if r.Intn(4) == 0 {
			g.AddColoredEdge(u, v, "likes")
		} else {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Property: a Frozen snapshot agrees with its source graph on every
// adjacency, degree, attribute and color, and on BFS distances in both
// directions.
func TestFrozenMatchesGraph(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		n := 2 + int(seed)%13
		g := randomFrozenTestGraph(t, seed, n, 3*n)
		f := g.Freeze()
		if f.N() != g.N() || f.M() != g.M() {
			t.Fatalf("seed %d: size mismatch: frozen %d/%d graph %d/%d", seed, f.N(), f.M(), g.N(), g.M())
		}
		for v := 0; v < n; v++ {
			if got, want := f.OutDegree(v), g.OutDegree(v); got != want {
				t.Fatalf("seed %d: out-degree(%d) %d want %d", seed, v, got, want)
			}
			if got, want := f.InDegree(v), g.InDegree(v); got != want {
				t.Fatalf("seed %d: in-degree(%d) %d want %d", seed, v, got, want)
			}
			if f.Attr(v)["i"] != g.Attr(v)["i"] {
				t.Fatalf("seed %d: attr mismatch at %d", seed, v)
			}
			for i, w := range g.Out(v) {
				if f.Out(v)[i] != w {
					t.Fatalf("seed %d: out adjacency of %d differs", seed, v)
				}
				wantC, _ := g.Color(v, int(w))
				if f.Color(v, int(w)) != wantC {
					t.Fatalf("seed %d: color of (%d,%d) differs", seed, v, w)
				}
			}
			for i, w := range g.In(v) {
				if f.In(v)[i] != w {
					t.Fatalf("seed %d: in adjacency of %d differs", seed, v)
				}
			}
		}
		for src := 0; src < n; src++ {
			for _, bound := range []int{-1, 1, 2} {
				dg := make([]int32, n)
				df := make([]int32, n)
				for i := range dg {
					dg[i], df[i] = -1, -1
				}
				rg := g.BFSDistInto(src, bound, dg, nil)
				rf := f.BFSDistInto(src, bound, df, nil)
				if rg != rf {
					t.Fatalf("seed %d: reached %d vs %d from %d", seed, rg, rf, src)
				}
				for v := range dg {
					if dg[v] != df[v] {
						t.Fatalf("seed %d: dist[%d->%d] %d vs %d", seed, src, v, dg[v], df[v])
					}
				}
				for i := range dg {
					dg[i], df[i] = -1, -1
				}
				g.BFSReverseDistInto(src, bound, dg, nil)
				f.BFSReverseDistInto(src, bound, df, nil)
				for v := range dg {
					if dg[v] != df[v] {
						t.Fatalf("seed %d: reverse dist[%d<-%d] %d vs %d", seed, src, v, dg[v], df[v])
					}
				}
			}
		}
	}
}

// Frozen is a snapshot: later mutations of the source must not leak in.
func TestFrozenIsImmutableSnapshot(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	f := g.Freeze()
	g.AddEdge(1, 2)
	g.AddColoredEdge(2, 0, "new")
	if f.M() != 1 {
		t.Fatalf("snapshot edge count changed: %d", f.M())
	}
	if f.OutDegree(1) != 0 {
		t.Fatalf("snapshot adjacency changed")
	}
	if f.Colored() {
		t.Fatalf("snapshot colors changed")
	}
}

// Regression: repeated BFS through a reused Scratch must not allocate.
// BFSDistInto used to take its queue by value, so the grown backing array
// was lost to the caller and every call re-allocated; the *[]int32
// signature plus the Scratch pool make reuse sticky.
func TestBFSDistIntoZeroAllocs(t *testing.T) {
	g := randomFrozenTestGraph(t, 7, 256, 1024)
	n := g.N()
	s := GetScratch(n)
	defer s.Put()
	// Warm up so the queue reaches its high-water capacity.
	g.BFSDistInto(0, -1, s.Dist, &s.Queue)

	allocs := testing.AllocsPerRun(50, func() {
		s.Reset(n)
		g.BFSDistInto(0, -1, s.Dist, &s.Queue)
	})
	if allocs != 0 {
		t.Errorf("BFSDistInto with sticky scratch: %.1f allocs/op, want 0", allocs)
	}

	f := g.Freeze()
	s.Reset(n)
	f.BFSDistInto(0, -1, s.Dist, &s.Queue)
	allocs = testing.AllocsPerRun(50, func() {
		s.Reset(n)
		f.BFSDistInto(0, -1, s.Dist, &s.Queue)
	})
	if allocs != 0 {
		t.Errorf("Frozen.BFSDistInto with sticky scratch: %.1f allocs/op, want 0", allocs)
	}
}

// The pool hands back scratches with Dist sized and -1-filled.
func TestScratchPool(t *testing.T) {
	s := GetScratch(10)
	if len(s.Dist) != 10 {
		t.Fatalf("Dist length %d, want 10", len(s.Dist))
	}
	for i, d := range s.Dist {
		if d != -1 {
			t.Fatalf("Dist[%d] = %d, want -1", i, d)
		}
	}
	s.Dist[3] = 7
	s.Queue = append(s.Queue[:0], 1, 2, 3)
	s.Put()
	s2 := GetScratch(5)
	defer s2.Put()
	for i, d := range s2.Dist {
		if d != -1 {
			t.Fatalf("reused Dist[%d] = %d, want -1", i, d)
		}
	}
}

// BallInto must agree with a naive undirected BFS: same membership and
// the same undirected hop distances, at every radius.
func TestBallIntoMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		n := 6 + int(seed)%40
		f := randomFrozenTestGraph(t, seed, n, 3*n).Freeze()
		for _, radius := range []int{0, 1, 2, 3, -1} {
			for center := 0; center < n; center += 1 + n/7 {
				want := make([]int32, n)
				for i := range want {
					want[i] = -1
				}
				want[center] = 0
				queue := []int{center}
				for head := 0; head < len(queue); head++ {
					u := queue[head]
					if radius >= 0 && int(want[u]) >= radius {
						continue
					}
					both := append(append([]int32(nil), f.Out(u)...), f.In(u)...)
					for _, v := range both {
						if want[v] < 0 {
							want[v] = want[u] + 1
							queue = append(queue, int(v))
						}
					}
				}
				wantReached := 0
				for _, d := range want {
					if d >= 0 {
						wantReached++
					}
				}

				dist := make([]int32, n)
				for i := range dist {
					dist[i] = -1
				}
				var q []int32
				reached := f.BallInto(center, radius, dist, &q)
				if reached != wantReached {
					t.Fatalf("seed %d center %d radius %d: reached %d want %d", seed, center, radius, reached, wantReached)
				}
				if len(q) != reached {
					t.Fatalf("seed %d: queue holds %d members, want %d", seed, len(q), reached)
				}
				for v := 0; v < n; v++ {
					if dist[v] != want[v] {
						t.Fatalf("seed %d center %d radius %d: dist[%d] = %d, want %d",
							seed, center, radius, v, dist[v], want[v])
					}
				}
				for _, m := range q {
					if dist[m] < 0 {
						t.Fatalf("seed %d: queue member %d not reached", seed, m)
					}
				}
			}
		}
	}
}

// Regression: ball extraction is the hot path of strong simulation — one
// call per candidate center — so, like BFSDistInto, it must not allocate
// when run through a reused Scratch.
func TestBallIntoZeroAllocs(t *testing.T) {
	f := randomFrozenTestGraph(t, 11, 256, 1024).Freeze()
	n := f.N()
	s := GetScratch(n)
	defer s.Put()
	// Warm up so the queue reaches its high-water capacity.
	f.BallInto(0, -1, s.Dist, &s.Queue)

	allocs := testing.AllocsPerRun(50, func() {
		s.Reset(n)
		f.BallInto(0, 2, s.Dist, &s.Queue)
	})
	if allocs != 0 {
		t.Errorf("Frozen.BallInto with sticky scratch: %.1f allocs/op, want 0", allocs)
	}
}
