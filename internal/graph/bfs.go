package graph

// This file provides the breadth-first primitives shared by the distance
// matrix, the BFS match variant and the 2-hop index: unit-weight shortest
// path computation, optionally bounded, reversed, or restricted to edges
// of one color.

// BFSDist runs a BFS from src and returns the distance to every node
// (-1 when unreachable, 0 at src). The result slice is freshly allocated.
func (g *Graph) BFSDist(src int) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	g.BFSDistInto(src, -1, dist, nil)
	return dist
}

// BFSDistInto runs a BFS from src into dist, which must be pre-filled with
// -1 and have length N(). When bound >= 0 the search stops expanding
// beyond that depth. queue, if non-nil, is used as scratch space; its
// grown backing array is handed back through the pointer so reuse is
// sticky across calls (historically the queue was passed by value and
// every growth was lost to the caller — see Scratch for pooled reuse).
// It returns the number of nodes reached (including src).
func (g *Graph) BFSDistInto(src, bound int, dist []int32, queue *[]int32) int {
	var local []int32
	if queue == nil {
		queue = &local
	}
	q := (*queue)[:0]
	dist[src] = 0
	q = append(q, int32(src))
	reached := 1
	for head := 0; head < len(q); head++ {
		u := q[head]
		du := dist[u]
		if bound >= 0 && int(du) >= bound {
			continue
		}
		for _, v := range g.out[u] {
			if dist[v] < 0 {
				dist[v] = du + 1
				reached++
				q = append(q, v)
			}
		}
	}
	*queue = q
	return reached
}

// BFSReverseDistInto is BFSDistInto over reversed edges: dist[v] becomes
// the length of the shortest path from v to dst.
func (g *Graph) BFSReverseDistInto(dst, bound int, dist []int32, queue *[]int32) int {
	var local []int32
	if queue == nil {
		queue = &local
	}
	q := (*queue)[:0]
	dist[dst] = 0
	q = append(q, int32(dst))
	reached := 1
	for head := 0; head < len(q); head++ {
		v := q[head]
		dv := dist[v]
		if bound >= 0 && int(dv) >= bound {
			continue
		}
		for _, u := range g.in[v] {
			if dist[u] < 0 {
				dist[u] = dv + 1
				reached++
				q = append(q, u)
			}
		}
	}
	*queue = q
	return reached
}

// BFSDistColor is BFSDist restricted to edges whose color equals color
// (uncolored edges have color ""). Used by the edge-color extension.
func (g *Graph) BFSDistColor(src int, color string) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, 64)
	dist[src] = 0
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.out[u] {
			if dist[v] >= 0 {
				continue
			}
			if g.colors[edgeKey(int(u), int(v))] != color {
				continue
			}
			dist[v] = du + 1
			queue = append(queue, v)
		}
	}
	return dist
}

// Dist returns the shortest-path distance from u to v (0 when u == v,
// -1 when unreachable) using a BFS bounded by bound when bound >= 0.
func (g *Graph) Dist(u, v, bound int) int {
	if u == v {
		return 0
	}
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	g.BFSDistInto(u, bound, dist, nil)
	return int(dist[v])
}

// Reachable reports whether v is reachable from u (reflexively).
func (g *Graph) Reachable(u, v int) bool { return g.Dist(u, v, -1) >= 0 }
