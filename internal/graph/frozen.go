package graph

// Frozen is an immutable CSR (compressed sparse row) snapshot of a Graph:
// both adjacency directions packed into flat int32 arrays with per-node
// offset indexes. A Frozen is safe for concurrent use by any number of
// goroutines with no locking, which makes it the traversal substrate for
// the parallel matching core — the distance-matrix build, the BFS oracle
// frontiers and the fixpoint's walk prober all read a Frozen instead of
// the mutable [][]int32 adjacency of the live Graph.
//
// A snapshot does not track later mutations of its source graph; holders
// must re-Freeze after updates (the engine layer does this on
// Engine.Update). Attribute tuples are shared with the source graph, not
// copied — they are treated as read-only everywhere in this module.
type Frozen struct {
	attrs  []Attrs
	outOff []int32 // len N()+1; out-neighbors of u are outAdj[outOff[u]:outOff[u+1]]
	outAdj []int32
	inOff  []int32
	inAdj  []int32
	colors map[uint64]string // private copy; nil when the graph is uncolored
	m      int
}

// Freeze snapshots g into CSR form in O(|V|+|E|).
func (g *Graph) Freeze() *Frozen {
	n := g.N()
	f := &Frozen{
		attrs:  append([]Attrs(nil), g.attrs...),
		outOff: make([]int32, n+1),
		inOff:  make([]int32, n+1),
		outAdj: make([]int32, 0, g.m),
		inAdj:  make([]int32, 0, g.m),
		m:      g.m,
	}
	for v := 0; v < n; v++ {
		f.outAdj = append(f.outAdj, g.out[v]...)
		f.outOff[v+1] = int32(len(f.outAdj))
		f.inAdj = append(f.inAdj, g.in[v]...)
		f.inOff[v+1] = int32(len(f.inAdj))
	}
	if len(g.colors) > 0 {
		f.colors = make(map[uint64]string, len(g.colors))
		for k, c := range g.colors {
			f.colors[k] = c
		}
	}
	return f
}

// N returns the number of nodes.
func (f *Frozen) N() int { return len(f.attrs) }

// M returns the number of edges.
func (f *Frozen) M() int { return f.m }

// Attr returns the attribute tuple of node v (may be nil). Treat it as
// read-only.
func (f *Frozen) Attr(v int) Attrs { return f.attrs[v] }

// Out returns the out-neighbors of u. The slice is owned by the snapshot
// and must not be modified.
func (f *Frozen) Out(u int) []int32 { return f.outAdj[f.outOff[u]:f.outOff[u+1]] }

// In returns the in-neighbors of v under the same ownership rules as Out.
func (f *Frozen) In(v int) []int32 { return f.inAdj[f.inOff[v]:f.inOff[v+1]] }

// OutDegree returns the number of edges leaving u.
func (f *Frozen) OutDegree(u int) int { return int(f.outOff[u+1] - f.outOff[u]) }

// InDegree returns the number of edges entering v.
func (f *Frozen) InDegree(v int) int { return int(f.inOff[v+1] - f.inOff[v]) }

// Colored reports whether any edge in the snapshot carries a color.
func (f *Frozen) Colored() bool { return len(f.colors) > 0 }

// Color returns the color of edge (u, v), or "" for uncolored edges. The
// edge must exist (Color does not test membership; pass neighbors read
// from Out/In).
func (f *Frozen) Color(u, v int) string {
	if f.colors == nil {
		return ""
	}
	return f.colors[edgeKey(u, v)]
}

// Edges calls fn for every edge in node-major order.
func (f *Frozen) Edges(fn func(u, v int)) {
	for u := 0; u < f.N(); u++ {
		for _, v := range f.Out(u) {
			fn(u, int(v))
		}
	}
}

// BFSDistInto runs a BFS from src into dist, which must be pre-filled
// with -1 and have length N(). When bound >= 0 the search stops expanding
// beyond that depth. queue, if non-nil, is used as scratch space and its
// grown backing array is handed back to the caller through the pointer
// (see Scratch for pooled reuse). It returns the number of nodes reached
// (including src).
func (f *Frozen) BFSDistInto(src, bound int, dist []int32, queue *[]int32) int {
	var local []int32
	if queue == nil {
		queue = &local
	}
	q := (*queue)[:0]
	dist[src] = 0
	q = append(q, int32(src))
	reached := 1
	for head := 0; head < len(q); head++ {
		u := q[head]
		du := dist[u]
		if bound >= 0 && int(du) >= bound {
			continue
		}
		for _, v := range f.Out(int(u)) {
			if dist[v] < 0 {
				dist[v] = du + 1
				reached++
				q = append(q, v)
			}
		}
	}
	*queue = q
	return reached
}

// BallInto runs an undirected BFS from center, treating every edge as
// bidirectional, and stops expanding beyond radius hops (radius < 0 means
// no limit). It fills dist — which must be pre-filled with -1 and have
// length N() — with undirected hop distances, and returns the number of
// nodes reached (including center). The reached nodes are left in *queue
// in BFS order, so queue[:reached] is the ball's member list — this is
// the ball-extraction primitive of strong simulation (Ma et al., VLDB
// 2012), where the ball Ĝ[w, r] around a candidate center w collects the
// nodes within undirected distance r. queue follows the same sticky-
// scratch contract as BFSDistInto (see Scratch for pooled reuse).
func (f *Frozen) BallInto(center, radius int, dist []int32, queue *[]int32) int {
	var local []int32
	if queue == nil {
		queue = &local
	}
	q := (*queue)[:0]
	dist[center] = 0
	q = append(q, int32(center))
	reached := 1
	for head := 0; head < len(q); head++ {
		u := q[head]
		du := dist[u]
		if radius >= 0 && int(du) >= radius {
			continue
		}
		for _, v := range f.Out(int(u)) {
			if dist[v] < 0 {
				dist[v] = du + 1
				reached++
				q = append(q, v)
			}
		}
		for _, v := range f.In(int(u)) {
			if dist[v] < 0 {
				dist[v] = du + 1
				reached++
				q = append(q, v)
			}
		}
	}
	*queue = q
	return reached
}

// BFSReverseDistInto is BFSDistInto over reversed edges: dist[v] becomes
// the length of the shortest path from v to dst.
func (f *Frozen) BFSReverseDistInto(dst, bound int, dist []int32, queue *[]int32) int {
	var local []int32
	if queue == nil {
		queue = &local
	}
	q := (*queue)[:0]
	dist[dst] = 0
	q = append(q, int32(dst))
	reached := 1
	for head := 0; head < len(q); head++ {
		v := q[head]
		dv := dist[v]
		if bound >= 0 && int(dv) >= bound {
			continue
		}
		for _, u := range f.In(int(v)) {
			if dist[u] < 0 {
				dist[u] = dv + 1
				reached++
				q = append(q, u)
			}
		}
	}
	*queue = q
	return reached
}
