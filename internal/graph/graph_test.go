package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpm/internal/value"
)

func mustValidate(t *testing.T, g *Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestNewAndAddNode(t *testing.T) {
	g := New(3)
	if g.N() != 3 || g.M() != 0 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	id := g.AddNode(Attrs{"label": value.Str("X")})
	if id != 3 || g.N() != 4 {
		t.Fatalf("AddNode id=%d N=%d", id, g.N())
	}
	if g.Label(3) != "X" {
		t.Errorf("Label(3) = %q", g.Label(3))
	}
	if g.Label(0) != "" {
		t.Errorf("Label(0) = %q, want empty", g.Label(0))
	}
	mustValidate(t, g)
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) should panic")
		}
	}()
	New(-1)
}

func TestAddRemoveEdge(t *testing.T) {
	g := New(4)
	if !g.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) = false")
	}
	if g.AddEdge(0, 1) {
		t.Fatal("duplicate AddEdge should report false")
	}
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 2) // self loop
	if g.M() != 4 {
		t.Fatalf("M = %d", g.M())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("HasEdge direction wrong")
	}
	if g.OutDegree(2) != 2 || g.InDegree(2) != 2 {
		t.Errorf("deg(2) = out %d in %d", g.OutDegree(2), g.InDegree(2))
	}
	mustValidate(t, g)

	if !g.RemoveEdge(2, 2) {
		t.Fatal("RemoveEdge(2,2) = false")
	}
	if g.RemoveEdge(2, 2) {
		t.Fatal("double remove should report false")
	}
	if g.M() != 3 || g.HasEdge(2, 2) {
		t.Error("self loop not removed")
	}
	mustValidate(t, g)
}

func TestEdgePanicsOutOfRange(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Error("AddEdge out of range should panic")
		}
	}()
	g.AddEdge(0, 5)
}

func TestColors(t *testing.T) {
	g := New(3)
	g.AddColoredEdge(0, 1, "friend")
	g.AddEdge(1, 2)
	if !g.Colored() {
		t.Error("Colored() = false")
	}
	if c, ok := g.Color(0, 1); !ok || c != "friend" {
		t.Errorf("Color(0,1) = %q,%v", c, ok)
	}
	if c, ok := g.Color(1, 2); !ok || c != "" {
		t.Errorf("Color(1,2) = %q,%v", c, ok)
	}
	if _, ok := g.Color(2, 0); ok {
		t.Error("Color on missing edge should report !ok")
	}
	g.RemoveEdge(0, 1)
	if g.Colored() {
		t.Error("color should be dropped with the edge")
	}
	mustValidate(t, g)
}

func TestEdgeListAndIteration(t *testing.T) {
	g := New(3)
	g.AddEdge(2, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1)
	want := [][2]int32{{0, 1}, {0, 2}, {2, 1}}
	got := g.EdgeList()
	if len(got) != len(want) {
		t.Fatalf("EdgeList len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("EdgeList[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	n := 0
	g.Edges(func(u, v int) { n++ })
	if n != 3 {
		t.Errorf("Edges visited %d", n)
	}
}

func TestClone(t *testing.T) {
	g := New(3)
	g.SetAttr(0, Attrs{"x": value.Int(1)})
	g.AddColoredEdge(0, 1, "c")
	g.AddEdge(1, 2)
	c := g.Clone()
	mustValidate(t, c)
	c.RemoveEdge(0, 1)
	c.Attr(0)["x"] = value.Int(9)
	if !g.HasEdge(0, 1) {
		t.Error("clone shares edges")
	}
	if v, _ := g.Attr(0).Get("x"); !v.Equal(value.Int(1)) {
		t.Error("clone shares attrs")
	}
	if col, _ := g.Color(0, 1); col != "c" {
		t.Error("clone removal affected original colors")
	}
}

func buildChain(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestBFSDist(t *testing.T) {
	g := buildChain(5)
	d := g.BFSDist(0)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Errorf("dist(0,%d) = %d, want %d", i, d[i], want)
		}
	}
	d = g.BFSDist(3)
	if d[0] != -1 || d[4] != 1 {
		t.Errorf("dist from 3: %v", d)
	}
}

func TestBFSBounded(t *testing.T) {
	g := buildChain(6)
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	reached := g.BFSDistInto(0, 2, dist, nil)
	if reached != 3 {
		t.Errorf("reached = %d, want 3", reached)
	}
	if dist[2] != 2 || dist[3] != -1 {
		t.Errorf("bounded dist: %v", dist)
	}
}

func TestBFSReverse(t *testing.T) {
	g := buildChain(4)
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	g.BFSReverseDistInto(3, -1, dist, nil)
	for i, want := range []int32{3, 2, 1, 0} {
		if dist[i] != want {
			t.Errorf("revdist(%d,3) = %d, want %d", i, dist[i], want)
		}
	}
}

func TestBFSColor(t *testing.T) {
	g := New(4)
	g.AddColoredEdge(0, 1, "a")
	g.AddColoredEdge(1, 2, "a")
	g.AddColoredEdge(2, 3, "b")
	d := g.BFSDistColor(0, "a")
	if d[1] != 1 || d[2] != 2 || d[3] != -1 {
		t.Errorf("color dist: %v", d)
	}
}

func TestDistAndReachable(t *testing.T) {
	g := buildChain(4)
	if d := g.Dist(0, 3, -1); d != 3 {
		t.Errorf("Dist(0,3) = %d", d)
	}
	if d := g.Dist(0, 3, 2); d != -1 {
		t.Errorf("bounded Dist(0,3,2) = %d", d)
	}
	if d := g.Dist(2, 2, -1); d != 0 {
		t.Errorf("Dist(2,2) = %d", d)
	}
	if g.Reachable(3, 0) {
		t.Error("Reachable(3,0) = true")
	}
	if !g.Reachable(0, 3) {
		t.Error("Reachable(0,3) = false")
	}
}

func randomGraph(r *rand.Rand, n, m int) *Graph {
	g := New(n)
	for g.M() < m {
		g.AddEdge(r.Intn(n), r.Intn(n))
	}
	return g
}

// Property: BFSDist agrees with Floyd-Warshall on random graphs.
func TestBFSAgainstFloydWarshall(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		m := r.Intn(n * n / 2)
		g := randomGraph(r, n, m)
		const inf = 1 << 20
		fw := make([][]int, n)
		for i := range fw {
			fw[i] = make([]int, n)
			for j := range fw[i] {
				fw[i][j] = inf
			}
			fw[i][i] = 0
		}
		g.Edges(func(u, v int) {
			if fw[u][v] > 1 && u != v {
				fw[u][v] = 1
			}
		})
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if fw[i][k]+fw[k][j] < fw[i][j] {
						fw[i][j] = fw[i][k] + fw[k][j]
					}
				}
			}
		}
		for src := 0; src < n; src++ {
			d := g.BFSDist(src)
			for v := 0; v < n; v++ {
				want := fw[src][v]
				if want == inf {
					want = -1
				}
				if int(d[v]) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(3, 3)
	s := ComputeStats(g)
	if s.Nodes != 4 || s.Edges != 4 {
		t.Errorf("stats size: %+v", s)
	}
	if s.MaxOut != 2 || s.Sinks != 1 || s.SelfLoops != 1 {
		t.Errorf("stats detail: %+v", s)
	}
	if s.AvgDegree != 1.0 {
		t.Errorf("avg = %f", s.AvgDegree)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
	empty := ComputeStats(New(0))
	if empty.Nodes != 0 {
		t.Error("empty stats")
	}
}

func TestSCC(t *testing.T) {
	g := New(6)
	// cycle 0->1->2->0, chain 2->3, cycle 4<->5
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(4, 5)
	g.AddEdge(5, 4)
	comps := StronglyConnectedComponents(g)
	sizes := map[int]int{}
	total := 0
	for _, c := range comps {
		sizes[len(c)]++
		total += len(c)
	}
	if total != 6 {
		t.Fatalf("SCC covers %d nodes", total)
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 1 {
		t.Errorf("component sizes: %v", sizes)
	}
	if IsDAG(g) {
		t.Error("IsDAG on cyclic graph")
	}
	dag := buildChain(4)
	if !IsDAG(dag) {
		t.Error("IsDAG on chain = false")
	}
	loop := New(1)
	loop.AddEdge(0, 0)
	if IsDAG(loop) {
		t.Error("self loop should not be a DAG")
	}
}

// Property: after random interleaved insertions and deletions the graph
// still validates and HasEdge matches a reference map.
func TestMutationConsistency(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		g := New(n)
		ref := map[[2]int]bool{}
		for step := 0; step < 200; step++ {
			u, v := r.Intn(n), r.Intn(n)
			if r.Intn(2) == 0 {
				added := g.AddEdge(u, v)
				if added == ref[[2]int{u, v}] {
					return false
				}
				ref[[2]int{u, v}] = true
			} else {
				removed := g.RemoveEdge(u, v)
				if removed != ref[[2]int{u, v}] {
					return false
				}
				delete(ref, [2]int{u, v})
			}
		}
		if g.Validate() != nil {
			return false
		}
		if g.M() != len(ref) {
			return false
		}
		for e := range ref {
			if !g.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDump(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	if s := g.Dump(); s == "" {
		t.Error("empty Dump")
	}
	if g.String() != "graph{nodes: 2, edges: 1}" {
		t.Errorf("String() = %q", g.String())
	}
}
