package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"gpm"
	"gpm/client"
)

// TestEngineErrorClassification is the regression test for the
// watch/update error-mapping bug: these handlers used to wrap every
// engine error in badRequest("%v", ...), flattening the chain so
// writeError could never see gpm.ErrGraphTooLarge (422) or context
// errors (504) — a lazy oracle failure or an expired deadline on the
// write path reported as the caller's fault. engineError must pass the
// classified errors through unwrapped and keep everything else a 400.
func TestEngineErrorClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"graph too large", gpm.ErrGraphTooLarge, http.StatusUnprocessableEntity},
		{"wrapped graph too large", fmt.Errorf("building oracle: %w", gpm.ErrGraphTooLarge), http.StatusUnprocessableEntity},
		{"deadline exceeded", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"wrapped cancellation", fmt.Errorf("fixpoint: %w", context.Canceled), http.StatusGatewayTimeout},
		{"validation error", errors.New("pattern bound 3 needs a distance oracle"), http.StatusBadRequest},
	}
	s := New(Config{})
	defer s.Close()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := httptest.NewRecorder()
			s.writeError(rr, engineError(tc.err))
			if rr.Code != tc.want {
				t.Errorf("engineError(%v) served %d, want %d", tc.err, rr.Code, tc.want)
			}
			var er client.ErrorResponse
			if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Errorf("body is not a JSON error: %s", rr.Body.Bytes())
			}
		})
	}
}

// TestRequestCtxRejectsNegativeTimeout pins the satellite bugfix at the
// unit level: a negative timeout_ms used to silently mean "use the
// default"; it must now be a 400 with an actionable message.
func TestRequestCtxRejectsNegativeTimeout(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	r := httptest.NewRequest(http.MethodPost, "/match", nil)

	ctx, stop, err := s.requestCtx(r, -1)
	if err == nil {
		stop()
		t.Fatal("timeout_ms = -1 accepted")
	}
	if ctx != nil || stop != nil {
		t.Error("rejected request still produced a context")
	}
	var he *httpError
	if !errors.As(err, &he) || he.code != http.StatusBadRequest {
		t.Fatalf("negative timeout error = %v, want a 400 httpError", err)
	}

	for _, ok := range []int64{0, 1, 30000} {
		ctx, stop, err := s.requestCtx(r, ok)
		if err != nil || ctx == nil {
			t.Fatalf("timeout_ms = %d rejected: %v", ok, err)
		}
		stop()
	}
}
