package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"gpm"
	"gpm/client"
	"gpm/internal/server"
)

// cacheConfig is the suite's standard cache-enabled server config.
func cacheConfig() server.Config {
	return server.Config{CacheBytes: 1 << 20}
}

// reverseTestPattern rebuilds p with node ids reversed and edges in
// reverse insertion order — an isomorphic pattern whose canonical digest
// must equal p's, so the server must serve it from p's cache entry.
func reverseTestPattern(p *gpm.Pattern) *gpm.Pattern {
	n := p.N()
	q := gpm.NewPattern()
	for i := 0; i < n; i++ {
		q.AddNode(nil)
	}
	for u := 0; u < n; u++ {
		q.SetPred(n-1-u, p.Pred(u))
	}
	es := p.Edges()
	for i := len(es) - 1; i >= 0; i-- {
		e := es[i]
		if _, err := q.AddColoredEdge(n-1-e.From, n-1-e.To, e.Bound, e.Color); err != nil {
			panic(err)
		}
	}
	return q
}

// containGraph is a small labeled graph for the containment tests.
func containGraph() *gpm.Graph {
	g := gpm.NewGraph(12)
	labels := []string{"A", "B", "A", "B", "A", "B", "C", "A", "B", "C", "A", "B"}
	for i, l := range labels {
		g.SetAttr(i, gpm.Attrs{"label": gpm.Str(l)})
	}
	for i := 0; i < 11; i++ {
		g.AddEdge(i, i+1)
	}
	g.AddEdge(11, 0)
	g.AddEdge(0, 3)
	g.AddEdge(4, 1)
	g.AddEdge(6, 2)
	g.AddEdge(9, 4)
	return g
}

// edgePattern builds a 2-node single-edge pattern; empty labels are
// wildcards.
func edgePattern(from, to string) *gpm.Pattern {
	p := gpm.NewPattern()
	var fp, tp gpm.Predicate
	if from != "" {
		fp = gpm.Label(from)
	}
	if to != "" {
		tp = gpm.Label(to)
	}
	a := p.AddNode(fp)
	b := p.AddNode(tp)
	p.MustAddEdge(a, b, 1)
	return p
}

var semanticsPaths = map[string]string{
	"match": "/match", "sim": "/simulate", "dual": "/dual", "strong": "/strong",
}

// queryRaw posts one relation query and returns the raw body plus its
// decoded form.
func queryRaw(t *testing.T, ts *httptest.Server, sem, graph, text string) ([]byte, client.Relation) {
	t.Helper()
	body := encodeWire(t, client.QueryRequest{Graph: graph, Pattern: text})
	status, raw := postRaw(t, ts.Client(), ts.URL, semanticsPaths[sem], string(body))
	if status != http.StatusOK {
		t.Fatalf("%s: status %d: %s", sem, status, raw)
	}
	var rel client.Relation
	if err := json.Unmarshal(raw, &rel); err != nil {
		t.Fatal(err)
	}
	return raw, rel
}

// scrubStats grafts got's stats into a raw expected document so the
// comparison pins every byte except the wall-clock block, exactly like
// TestByteIdenticalToEngine.
func scrubStats(t *testing.T, raw []byte, stats client.Stats) []byte {
	t.Helper()
	var rel client.Relation
	if err := json.Unmarshal(raw, &rel); err != nil {
		t.Fatal(err)
	}
	rel.Stats = stats
	return encodeWire(t, rel)
}

// TestCacheHitByteIdentity: with the cache on, a repeated query — and an
// isomorphic relabeled spelling of it — must be served from the cache
// ("hit" marker) with a body byte-identical (modulo the stats block) to
// the cold response, which itself matches the in-process engine.
func TestCacheHitByteIdentity(t *testing.T) {
	g := testGraph()
	ref := gpm.NewEngine(g.Clone())
	srv := server.New(cacheConfig())
	if err := srv.Bind("g", g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	ctx := context.Background()

	for _, sem := range []string{"match", "sim", "dual", "strong"} {
		t.Run(sem, func(t *testing.T) {
			p := testPattern(g, 5)
			text := patternText(t, p)
			cold, coldRel := queryRaw(t, ts, sem, "g", text)
			if coldRel.Stats.Cache != "" {
				t.Fatalf("cold query carries cache marker %q", coldRel.Stats.Cache)
			}
			// The cold response must match the engine; every semantics is
			// checked through the unified RelationQuery reference.
			relSem, err := gpm.ParseRelSemantics(sem)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ref.RelationQuery(ctx, gpm.RelationQuery{Semantics: relSem, Pattern: p})
			if err != nil {
				t.Fatal(err)
			}
			want := client.Relation{Graph: "g", Semantics: sem, OK: res.OK, Pairs: coldRel.Pairs, Matches: res.Relation, Stats: coldRel.Stats}
			if !bytes.Equal(cold, encodeWire(t, want)) {
				t.Fatalf("cold response diverges from engine:\ngot:  %s\nwant: %s", cold, encodeWire(t, want))
			}

			hit, hitRel := queryRaw(t, ts, sem, "g", text)
			if hitRel.Stats.Cache != "hit" {
				t.Fatalf("repeat query cache marker = %q, want \"hit\"", hitRel.Stats.Cache)
			}
			if !bytes.Equal(scrubStats(t, hit, coldRel.Stats), cold) {
				t.Fatalf("cache hit not byte-identical to cold response:\nhit:  %s\ncold: %s", hit, cold)
			}

			iso, isoRel := queryRaw(t, ts, sem, "g", patternText(t, reverseTestPattern(p)))
			if isoRel.Stats.Cache != "hit" {
				t.Fatalf("isomorphic relabeling cache marker = %q, want \"hit\" (canonical digests must collide)", isoRel.Stats.Cache)
			}
			if !bytes.Equal(scrubStats(t, iso, coldRel.Stats), cold) {
				t.Fatalf("isomorphic hit not byte-identical to cold response:\niso:  %s\ncold: %s", iso, cold)
			}
		})
	}
}

// TestCacheContainmentReuse: after caching a loose pattern's relation, a
// strictly contained pattern must be answered via the containment path
// ("containment" marker) with rows byte-identical to a cold engine
// answer. Strong simulation must NOT take the containment path.
func TestCacheContainmentReuse(t *testing.T) {
	g := containGraph()
	ref := gpm.NewEngine(g.Clone())
	srv := server.New(cacheConfig())
	if err := srv.Bind("g", g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	ctx := context.Background()

	loose := edgePattern("", "") // wildcard edge: contains every 2-node edge pattern
	strict := edgePattern("A", "B")
	looseText, strictText := patternText(t, loose), patternText(t, strict)

	for _, sem := range []string{"match", "sim", "dual"} {
		t.Run(sem, func(t *testing.T) {
			if _, rel := queryRaw(t, ts, sem, "g", looseText); rel.Stats.Cache == "hit" {
				t.Fatal("first loose query hit an empty cache")
			}
			raw, rel := queryRaw(t, ts, sem, "g", strictText)
			if rel.Stats.Cache != "containment" {
				t.Fatalf("strict query cache marker = %q, want \"containment\"", rel.Stats.Cache)
			}
			relSem, err := gpm.ParseRelSemantics(sem)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ref.RelationQuery(ctx, gpm.RelationQuery{Semantics: relSem, Pattern: strict})
			if err != nil {
				t.Fatal(err)
			}
			want := client.Relation{Graph: "g", Semantics: sem, OK: res.OK, Pairs: rel.Pairs, Matches: res.Relation, Stats: rel.Stats}
			if !bytes.Equal(raw, encodeWire(t, want)) {
				t.Fatalf("containment-derived response diverges from cold engine answer:\ngot:  %s\nwant: %s", raw, encodeWire(t, want))
			}
			// The derived answer is cached too: a repeat is an exact hit.
			if _, rel := queryRaw(t, ts, sem, "g", strictText); rel.Stats.Cache != "hit" {
				t.Errorf("repeat of containment-derived query marker = %q, want \"hit\"", rel.Stats.Cache)
			}
		})
	}

	t.Run("strong", func(t *testing.T) {
		queryRaw(t, ts, "strong", "g", looseText)
		if _, rel := queryRaw(t, ts, "strong", "g", strictText); rel.Stats.Cache != "" {
			t.Fatalf("strong semantics took cache path %q; only exact hits are sound", rel.Stats.Cache)
		}
	})
}

// TestCacheGenerationInvalidation: an effective update moves the graph
// to a new generation, so the same query misses, recomputes against the
// new graph, and matches a fresh engine that saw the same update.
func TestCacheGenerationInvalidation(t *testing.T) {
	g := containGraph()
	refG := containGraph()
	srv := server.New(cacheConfig())
	if err := srv.Bind("g", g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	ctx := context.Background()

	p := edgePattern("A", "B")
	text := patternText(t, p)
	queryRaw(t, ts, "sim", "g", text)
	if _, rel := queryRaw(t, ts, "sim", "g", text); rel.Stats.Cache != "hit" {
		t.Fatalf("warmup marker = %q, want \"hit\"", rel.Stats.Cache)
	}

	ups := []gpm.Update{gpm.DeleteEdge(0, 1), gpm.InsertEdge(2, 5)}
	if _, _, err := c.Update(ctx, "g", ups); err != nil {
		t.Fatal(err)
	}
	raw, rel := queryRaw(t, ts, "sim", "g", text)
	if rel.Stats.Cache == "hit" {
		t.Fatal("query after an effective update served the stale generation's entry")
	}
	ref := gpm.NewEngine(refG)
	if _, err := ref.Update(ups...); err != nil {
		t.Fatal(err)
	}
	res, err := ref.Simulate(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	want := client.Relation{Graph: "g", Semantics: "sim", OK: res.OK, Pairs: rel.Pairs, Matches: res.Relation, Stats: rel.Stats}
	if !bytes.Equal(raw, encodeWire(t, want)) {
		t.Fatalf("post-update response diverges from fresh engine:\ngot:  %s\nwant: %s", raw, encodeWire(t, want))
	}
}

// TestCacheNoopUpdateKeepsEntries is the regression the generation
// token buys: a net-no-op update batch (insert then delete of the same
// edge) must not bump the generation, so cached entries stay live and
// the next query is still an exact hit — no eviction, no recompute.
func TestCacheNoopUpdateKeepsEntries(t *testing.T) {
	srv := server.New(cacheConfig())
	if err := srv.Bind("g", containGraph()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	ctx := context.Background()

	text := patternText(t, edgePattern("A", "B"))
	queryRaw(t, ts, "match", "g", text)
	st := srv.StatsSnapshot().Cache
	if st == nil {
		t.Fatal("stats lack the cache block")
	}
	entriesBefore := st.Entries

	for _, ups := range [][]gpm.Update{
		{}, // empty batch
		{gpm.InsertEdge(0, 5), gpm.DeleteEdge(0, 5)}, // net no-op
	} {
		if _, _, err := c.Update(ctx, "g", ups); err != nil {
			t.Fatal(err)
		}
	}
	st = srv.StatsSnapshot().Cache
	if st.Entries != entriesBefore {
		t.Fatalf("no-op updates changed cache entries: %d -> %d", entriesBefore, st.Entries)
	}
	if st.Evictions != 0 {
		t.Fatalf("no-op updates evicted %d entries", st.Evictions)
	}
	if _, rel := queryRaw(t, ts, "match", "g", text); rel.Stats.Cache != "hit" {
		t.Fatalf("query after no-op updates marker = %q, want \"hit\"", rel.Stats.Cache)
	}
}

// TestStatsCacheBlock pins the /stats cache block the way the recovery
// suite pins the WAL block: the volatile byte figure is scrubbed, the
// counters are asserted exactly for a scripted workload — two cold
// queries, one exact hit, one containment reuse.
func TestStatsCacheBlock(t *testing.T) {
	srv := server.New(cacheConfig())
	if err := srv.Bind("g", containGraph()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	ctx := context.Background()

	looseText := patternText(t, edgePattern("", ""))
	strictText := patternText(t, edgePattern("A", "B"))
	queryRaw(t, ts, "sim", "g", looseText)  // miss, cold
	queryRaw(t, ts, "sim", "g", looseText)  // exact hit
	queryRaw(t, ts, "sim", "g", strictText) // miss, containment reuse

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache == nil {
		t.Fatal("stats lack the cache block")
	}
	got := *st.Cache
	if got.Bytes <= 0 {
		t.Fatalf("cache bytes = %d, want > 0", got.Bytes)
	}
	got.Bytes = 0 // entry sizes are an implementation detail; scrub
	want := client.CacheStats{
		Hits:            1,
		Misses:          2,
		ContainmentHits: 1,
		Evictions:       0,
		Entries:         2,
		MaxBytes:        cacheConfig().CacheBytes,
	}
	if got != want {
		t.Errorf("cache block = %+v, want %+v", got, want)
	}

	// A server without a cache serves no block at all.
	bare := server.New(server.Config{})
	defer bare.Close()
	if bare.StatsSnapshot().Cache != nil {
		t.Error("cache-less server emitted a cache stats block")
	}
}
