package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gpm"
	"gpm/client"
	"gpm/internal/pll"
	"gpm/internal/server"
)

// testGraph builds the deterministic data graph the suite serves: large
// enough that every semantics does real work, small enough to keep the
// matrix oracle instant.
func testGraph() *gpm.Graph {
	return gpm.GenerateGraph(gpm.GraphGenConfig{
		Nodes: 300, Edges: 900, Attrs: 12, Model: gpm.ModelER, Seed: 7,
	})
}

// testPattern is an all-bounds-one pattern (valid for every semantics).
func testPattern(g *gpm.Graph, seed int64) *gpm.Pattern {
	return gpm.GeneratePattern(gpm.PatternGenConfig{
		Nodes: 3, Edges: 3, K: 1, C: 0, PredAttrs: 1, Seed: seed,
	}, g)
}

// boot starts a server over one bound graph and returns it with a typed
// client and a parallel in-process engine over a clone of the same
// graph — the byte-identity reference.
func boot(t *testing.T, cfg server.Config) (*server.Server, *client.Client, *gpm.Engine) {
	t.Helper()
	g := testGraph()
	ref := gpm.NewEngine(g.Clone())
	srv := server.New(cfg)
	if err := srv.Bind("g", g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return srv, client.New(ts.URL, client.WithHTTPClient(ts.Client())), ref
}

// encodeWire encodes exactly like the server's response writer, so
// expected documents can be byte-compared against raw bodies.
func encodeWire(t *testing.T, v interface{}) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postRaw sends one JSON body and returns status and raw response body.
func postRaw(t *testing.T, hc *http.Client, url, path, body string) (int, []byte) {
	t.Helper()
	resp, err := hc.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// patternText serialises a pattern the way the client does.
func patternText(t *testing.T, p *gpm.Pattern) string {
	t.Helper()
	var buf bytes.Buffer
	if err := gpm.WritePattern(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestByteIdenticalToEngine asserts the acceptance criterion: for every
// relation-valued semantics the HTTP response is byte-identical to the
// document built from the in-process Engine call on the same graph. The
// stats block carries wall-clock readings, so the expected document
// grafts the response's stats values in — every other byte, including
// the stats block's position and field order, is pinned.
func TestByteIdenticalToEngine(t *testing.T) {
	g := testGraph()
	ref := gpm.NewEngine(g.Clone())
	srv := server.New(server.Config{})
	if err := srv.Bind("g", g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	ctx := context.Background()

	for seed := int64(1); seed <= 3; seed++ {
		p := testPattern(g, seed)
		text := patternText(t, p)
		for _, sem := range []string{"match", "sim", "dual", "strong"} {
			t.Run(fmt.Sprintf("%s/seed%d", sem, seed), func(t *testing.T) {
				body := encodeWire(t, client.QueryRequest{Graph: "g", Pattern: text})
				path := map[string]string{"match": "/match", "sim": "/simulate", "dual": "/dual", "strong": "/strong"}[sem]
				status, raw := postRaw(t, ts.Client(), ts.URL, path, string(body))
				if status != http.StatusOK {
					t.Fatalf("status %d: %s", status, raw)
				}
				var got client.Relation
				if err := json.Unmarshal(raw, &got); err != nil {
					t.Fatal(err)
				}

				var want client.Relation
				switch sem {
				case "match":
					res, err := ref.Match(ctx, p)
					if err != nil {
						t.Fatal(err)
					}
					want = client.Relation{Graph: "g", Semantics: sem, OK: res.OK(), Pairs: res.Pairs(), Matches: res.Relation()}
				case "sim":
					res, err := ref.Simulate(ctx, p)
					if err != nil {
						t.Fatal(err)
					}
					pairs := 0
					for _, row := range res.Relation {
						pairs += len(row)
					}
					want = client.Relation{Graph: "g", Semantics: sem, OK: res.OK, Pairs: pairs, Matches: res.Relation}
				case "dual":
					res, err := ref.DualSimulate(ctx, p)
					if err != nil {
						t.Fatal(err)
					}
					want = client.Relation{Graph: "g", Semantics: sem, OK: res.OK(), Pairs: res.Pairs(), Matches: res.Relation()}
				case "strong":
					res, err := ref.StrongSimulate(ctx, p)
					if err != nil {
						t.Fatal(err)
					}
					want = client.Relation{Graph: "g", Semantics: sem, OK: res.OK(), Pairs: res.Pairs(), Matches: res.Relation()}
				}
				want.Stats = got.Stats // wall-clock readings are the one nondeterministic block
				if want.Stats.Oracle == "" {
					t.Fatal("response carries no stats")
				}
				if !bytes.Equal(raw, encodeWire(t, want)) {
					t.Errorf("response not byte-identical to engine document\ngot:  %s\nwant: %s", raw, encodeWire(t, want))
				}
			})
		}
	}
}

// TestEnumerateAndBatchMatchEngine covers the remaining two query
// endpoints against their in-process counterparts.
func TestEnumerateAndBatchMatchEngine(t *testing.T) {
	_, c, ref := boot(t, server.Config{})
	ctx := context.Background()
	g := ref.Graph()

	p := testPattern(g, 2)
	enum, err := c.Enumerate(ctx, "g", p, client.EnumerateOptions{MaxEmbeddings: 50})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Enumerate(ctx, p, gpm.IsoOptions{MaxEmbeddings: 50})
	if err != nil {
		t.Fatal(err)
	}
	if enum.Complete != want.Complete || enum.Steps != want.Steps || len(enum.Embeddings) != len(want.Embeddings) {
		t.Fatalf("enumerate diverged: got %d emb steps=%d complete=%v, want %d emb steps=%d complete=%v",
			len(enum.Embeddings), enum.Steps, enum.Complete, len(want.Embeddings), want.Steps, want.Complete)
	}
	for i := range enum.Embeddings {
		for j := range enum.Embeddings[i] {
			if enum.Embeddings[i][j] != want.Embeddings[i][j] {
				t.Fatalf("embedding %d diverges", i)
			}
		}
	}

	// /count against the in-process engine, planned and unplanned; the
	// planned count must also agree with the enumeration length.
	for _, noPlan := range []bool{false, true} {
		cnt, err := c.Count(ctx, "g", p, client.EnumerateOptions{NoPlan: noPlan})
		if err != nil {
			t.Fatal(err)
		}
		wantCnt, err := ref.CountEmbeddings(ctx, p, gpm.IsoOptions{NoPlan: noPlan})
		if err != nil {
			t.Fatal(err)
		}
		if cnt.Count != wantCnt.Count || cnt.Complete != wantCnt.Complete ||
			cnt.Steps != wantCnt.Steps || cnt.Automorphisms != wantCnt.Automorphisms {
			t.Fatalf("count (noplan=%v) diverged: got %+v, want %+v", noPlan, cnt, wantCnt)
		}
		full, err := ref.Enumerate(ctx, p, gpm.IsoOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if full.Complete && cnt.Count != int64(len(full.Embeddings)) {
			t.Fatalf("count (noplan=%v) %d != %d enumerated embeddings", noPlan, cnt.Count, len(full.Embeddings))
		}
	}

	ps := []*gpm.Pattern{testPattern(g, 1), testPattern(g, 2), testPattern(g, 3)}
	results, err := c.MatchBatch(ctx, "g", ps)
	if err != nil {
		t.Fatal(err)
	}
	wantBatch, err := ref.MatchBatch(ctx, ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(wantBatch) {
		t.Fatalf("batch size %d, want %d", len(results), len(wantBatch))
	}
	for i, res := range results {
		if res.OK != wantBatch[i].OK() || res.Pairs != wantBatch[i].Pairs() {
			t.Errorf("batch[%d]: ok=%v pairs=%d, want ok=%v pairs=%d",
				i, res.OK, res.Pairs, wantBatch[i].OK(), wantBatch[i].Pairs())
		}
	}
}

// TestWatchSessions drives the full session lifecycle over the wire for
// every watch semantics, asserting the streamed deltas and maintained
// relations agree with in-process watchers fed the same updates.
func TestWatchSessions(t *testing.T) {
	_, c, ref := boot(t, server.Config{})
	ctx := context.Background()
	g := ref.Graph()
	p := testPattern(g, 4)

	refWatchers := map[string]*gpm.Watcher{}
	ids := map[string]int64{}
	for _, sem := range []string{"match", "sim", "dual", "strong"} {
		var w *gpm.Watcher
		var err error
		switch sem {
		case "match":
			w, err = ref.Watch(p)
		case "sim":
			w, err = ref.WatchSim(p)
		case "dual":
			w, err = ref.WatchDual(p)
		case "strong":
			w, err = ref.WatchStrong(p)
		}
		if err != nil {
			t.Fatal(err)
		}
		refWatchers[sem] = w

		st, err := c.Watch(ctx, "g", p, sem)
		if err != nil {
			t.Fatalf("watch %s: %v", sem, err)
		}
		if st.OK != w.OK() || st.Pairs != w.Pairs() {
			t.Fatalf("watch %s initial state ok=%v pairs=%d, want ok=%v pairs=%d",
				sem, st.OK, st.Pairs, w.OK(), w.Pairs())
		}
		ids[sem] = st.ID
	}

	// Three rounds of updates; each cascades all four sessions.
	for round := int64(0); round < 3; round++ {
		ups := gpm.GenerateUpdates(gpm.UpdateGenConfig{Insertions: 4, Deletions: 4, Seed: 100 + round}, g)
		header, deltas, err := c.Update(ctx, "g", ups)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if header.Applied != len(ups) || header.Watchers != 4 {
			t.Fatalf("round %d header: %+v", round, header)
		}
		if len(deltas) != 4 {
			t.Fatalf("round %d: %d deltas, want 4", round, len(deltas))
		}
		if _, err := ref.Update(ups...); err != nil {
			t.Fatalf("round %d ref update: %v", round, err)
		}
		for _, d := range deltas {
			w := refWatchers[d.Semantics]
			if d.OK != w.OK() || d.Pairs != w.Pairs() {
				t.Errorf("round %d %s delta ok=%v pairs=%d, want ok=%v pairs=%d",
					round, d.Semantics, d.OK, d.Pairs, w.OK(), w.Pairs())
			}
		}
		// Snapshots agree with the in-process relation.
		for sem, id := range ids {
			st, err := c.WatchSnapshot(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			wantRel := refWatchers[sem].Relation()
			if len(st.Matches) != len(wantRel) {
				t.Fatalf("%s snapshot rows %d, want %d", sem, len(st.Matches), len(wantRel))
			}
			for u := range wantRel {
				if len(st.Matches[u]) != len(wantRel[u]) {
					t.Errorf("round %d %s snapshot row %d: %d nodes, want %d",
						round, sem, u, len(st.Matches[u]), len(wantRel[u]))
				}
			}
		}
	}

	// Close one session: later updates no longer deliver its deltas.
	if err := c.CloseWatch(ctx, ids["dual"]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WatchSnapshot(ctx, ids["dual"]); err == nil {
		t.Error("snapshot of closed session succeeded")
	}
	ups := gpm.GenerateUpdates(gpm.UpdateGenConfig{Insertions: 2, Deletions: 2, Seed: 999}, g)
	header, deltas, err := c.Update(ctx, "g", ups)
	if err != nil {
		t.Fatal(err)
	}
	if header.Watchers != 3 || len(deltas) != 3 {
		t.Fatalf("after close: header %+v, %d deltas", header, len(deltas))
	}
	for _, d := range deltas {
		if d.WatchID == ids["dual"] {
			t.Error("closed session still streamed a delta")
		}
	}
}

// TestDeadlinePartialEnumeration pins the partial-enumeration contract
// over the wire: a 1ms deadline on a search with far more embeddings
// than that budget returns 200 with the embeddings found so far,
// Complete == false and Truncated set.
func TestDeadlinePartialEnumeration(t *testing.T) {
	// A dense same-label graph: a 3-node wildcard-ish pattern admits a
	// combinatorial number of embeddings, so the search cannot finish
	// inside the deadline.
	g := gpm.GenerateGraph(gpm.GraphGenConfig{Nodes: 1200, Edges: 14000, Attrs: 1, Model: gpm.ModelER, Seed: 3})
	srv := server.New(server.Config{})
	if err := srv.Bind("dense", g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()))

	p := gpm.GeneratePattern(gpm.PatternGenConfig{Nodes: 3, Edges: 3, K: 1, C: 0, PredAttrs: 1, IsoBias: true, Seed: 5}, g)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	enum, err := c.Enumerate(ctx, "dense", p, client.EnumerateOptions{MaxEmbeddings: 1 << 30})
	if err != nil {
		// The client context itself may win the race to the deadline;
		// retry with a server-side-only deadline to pin the contract.
		var buf bytes.Buffer
		if werr := gpm.WritePattern(&buf, p); werr != nil {
			t.Fatal(werr)
		}
		body := encodeWire(t, client.QueryRequest{Graph: "dense", Pattern: buf.String(), TimeoutMS: 1, MaxEmbeddings: 1 << 30})
		status, raw := postRaw(t, ts.Client(), ts.URL, "/enumerate", string(body))
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, raw)
		}
		var resp client.Enumeration
		if jerr := json.Unmarshal(raw, &resp); jerr != nil {
			t.Fatal(jerr)
		}
		enum = &resp
	}
	if enum.Complete {
		t.Fatal("enumeration completed inside a 1ms deadline; grow the fixture")
	}
	if enum.Truncated == "" {
		t.Error("truncated enumeration carries no context error")
	}

	// The same partial contract holds for /count: a server-side deadline
	// mid-count returns 200 with the partial count and Truncated set.
	var buf bytes.Buffer
	if err := gpm.WritePattern(&buf, p); err != nil {
		t.Fatal(err)
	}
	body := encodeWire(t, client.QueryRequest{Graph: "dense", Pattern: buf.String(), TimeoutMS: 1})
	status, raw := postRaw(t, ts.Client(), ts.URL, "/count", string(body))
	if status != http.StatusOK {
		t.Fatalf("/count under deadline: status %d: %s", status, raw)
	}
	var cnt client.Count
	if err := json.Unmarshal(raw, &cnt); err != nil {
		t.Fatal(err)
	}
	if cnt.Complete {
		t.Fatal("count completed inside a 1ms deadline; grow the fixture")
	}
	if cnt.Truncated == "" {
		t.Error("truncated count carries no context error")
	}
}

// TestDeadlineExceededIsGatewayTimeout pins the non-enumeration
// deadline contract: relation queries cannot return partial fixpoints,
// so an expired deadline is a 504 with a JSON error body.
func TestDeadlineExceededIsGatewayTimeout(t *testing.T) {
	// A server whose default deadline is 1ns: every query's first
	// cancellation poll fires.
	g := testGraph()
	srv := server.New(server.Config{DefaultTimeout: time.Nanosecond})
	if err := srv.Bind("g", g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	p := testPattern(g, 1)
	var buf bytes.Buffer
	if err := gpm.WritePattern(&buf, p); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/match", "/simulate", "/dual", "/strong", "/batch"} {
		var body []byte
		if path == "/batch" {
			body = encodeWire(t, client.BatchRequest{Graph: "g", Patterns: []string{buf.String()}})
		} else {
			body = encodeWire(t, client.QueryRequest{Graph: "g", Pattern: buf.String()})
		}
		status, raw := postRaw(t, ts.Client(), ts.URL, path, string(body))
		if status != http.StatusGatewayTimeout {
			t.Errorf("%s under expired deadline: status %d (%s), want 504", path, status, raw)
		}
		var er client.ErrorResponse
		if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
			t.Errorf("%s: 504 body is not a JSON error: %s", path, raw)
		}
	}
}

// TestBadRequests sweeps the 4xx surface: malformed JSON, unknown
// fields, unknown graphs, unparseable and empty patterns, unknown
// semantics/algo/ops, bad watch ids — none may crash the daemon.
func TestBadRequests(t *testing.T) {
	g := testGraph()
	srv := server.New(server.Config{})
	if err := srv.Bind("g", g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"malformed json", "/match", `{"graph": "g",`, http.StatusBadRequest},
		{"trailing data", "/match", `{"graph":"g","pattern":"x"} {}`, http.StatusBadRequest},
		{"unknown field", "/match", `{"graph":"g","pattern":"x","bogus":1}`, http.StatusBadRequest},
		{"unknown graph", "/match", `{"graph":"nope","pattern":"pattern 1\nnode 0 label = L0\n"}`, http.StatusNotFound},
		{"missing graph", "/match", `{"pattern":"pattern 1\nnode 0 label = L0\n"}`, http.StatusBadRequest},
		{"missing pattern", "/match", `{"graph":"g"}`, http.StatusBadRequest},
		{"bad pattern text", "/simulate", `{"graph":"g","pattern":"nonsense 3\n"}`, http.StatusBadRequest},
		{"empty pattern", "/dual", `{"graph":"g","pattern":"# empty\n"}`, http.StatusBadRequest},
		{"zero-node pattern", "/strong", `{"graph":"g","pattern":"pattern 0\n"}`, http.StatusBadRequest},
		{"unknown algo", "/enumerate", `{"graph":"g","pattern":"pattern 1\nnode 0 label = L0\n","algo":"dfs"}`, http.StatusBadRequest},
		{"count unknown algo", "/count", `{"graph":"g","pattern":"pattern 1\nnode 0 label = L0\n","algo":"dfs"}`, http.StatusBadRequest},
		{"count unknown graph", "/count", `{"graph":"nope","pattern":"pattern 1\nnode 0 label = L0\n"}`, http.StatusNotFound},
		{"count bad pattern", "/count", `{"graph":"g","pattern":"nonsense 3\n"}`, http.StatusBadRequest},
		{"empty batch", "/batch", `{"graph":"g","patterns":[]}`, http.StatusBadRequest},
		{"unknown watch semantics", "/watch", `{"graph":"g","pattern":"pattern 1\nnode 0 label = L0\n","semantics":"quantum"}`, http.StatusBadRequest},
		{"unknown update op", "/update", `{"graph":"g","updates":[{"op":"?","u":0,"v":1}]}`, http.StatusBadRequest},
		{"out-of-range update", "/update", `{"graph":"g","updates":[{"op":"+","u":100000,"v":1}]}`, http.StatusBadRequest},
		{"negative timeout match", "/match", `{"graph":"g","pattern":"pattern 1\nnode 0 label = L0\n","timeout_ms":-5}`, http.StatusBadRequest},
		{"negative timeout enumerate", "/enumerate", `{"graph":"g","pattern":"pattern 1\nnode 0 label = L0\n","timeout_ms":-1}`, http.StatusBadRequest},
		{"negative timeout count", "/count", `{"graph":"g","pattern":"pattern 1\nnode 0 label = L0\n","timeout_ms":-1}`, http.StatusBadRequest},
		{"negative timeout batch", "/batch", `{"graph":"g","patterns":["pattern 1\nnode 0 label = L0\n"],"timeout_ms":-1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := postRaw(t, ts.Client(), ts.URL, tc.path, tc.body)
			if status != tc.want {
				t.Errorf("status %d (%s), want %d", status, raw, tc.want)
			}
			var er client.ErrorResponse
			if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
				t.Errorf("error body is not JSON: %s", raw)
			}
		})
	}

	// Bad watch ids via the typed client.
	ctx := context.Background()
	cl := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	if _, err := cl.WatchSnapshot(ctx, 999); err == nil {
		t.Error("snapshot of unknown watch succeeded")
	}
	if err := cl.CloseWatch(ctx, 999); err == nil {
		t.Error("close of unknown watch succeeded")
	}
	resp, err := ts.Client().Get(ts.URL + "/watch/notanumber")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /watch/notanumber: %d, want 400", resp.StatusCode)
	}

	// The daemon survived the whole sweep.
	if !cl.Healthy(ctx) {
		t.Fatal("daemon unhealthy after bad-request sweep")
	}
}

// TestNegativeTimeoutErrorBody pins the exact error document of the
// negative-timeout rejection (the satellite bugfix's wire contract): a
// 400 whose message names the field, echoes the value and says what to
// send instead.
func TestNegativeTimeoutErrorBody(t *testing.T) {
	g := testGraph()
	srv := server.New(server.Config{})
	if err := srv.Bind("g", g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)

	body := `{"graph":"g","pattern":"pattern 1\nnode 0 label = L0\n","timeout_ms":-5}`
	status, raw := postRaw(t, ts.Client(), ts.URL, "/match", body)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d (%s), want 400", status, raw)
	}
	want := encodeWire(t, client.ErrorResponse{
		Error: "timeout_ms must be >= 0 (got -5); omit it or send 0 for the server default",
	})
	if !bytes.Equal(raw, want) {
		t.Errorf("error body:\n got %s want %s", raw, want)
	}
}

// TestWatchOpenValidationStays400 pins the e2e half of the
// classification fix: a watch whose pattern the semantics rejects (sim
// requires every edge bound to be 1) is still the caller's fault — 400,
// not 500 — after the engineError routing change.
func TestWatchOpenValidationStays400(t *testing.T) {
	g := testGraph()
	srv := server.New(server.Config{})
	if err := srv.Bind("g", g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)

	// A bound-2 edge: valid for "match", rejected by the sim maintainer.
	bounded := gpm.GeneratePattern(gpm.PatternGenConfig{Nodes: 3, Edges: 3, K: 2, C: 0, PredAttrs: 1, Seed: 4}, g)
	if text := patternText(t, bounded); !strings.Contains(text, " 2\n") {
		t.Fatalf("fixture lost its bound-2 edges:\n%s", text)
	}
	body := encodeWire(t, client.WatchRequest{Graph: "g", Pattern: patternText(t, bounded), Semantics: "sim"})
	status, raw := postRaw(t, ts.Client(), ts.URL, "/watch", string(body))
	if status != http.StatusBadRequest {
		t.Fatalf("sim watch on bounded pattern: status %d (%s), want 400", status, raw)
	}
	var er client.ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
		t.Fatalf("error body is not JSON: %s", raw)
	}
}

// TestCloseDuringWatchOpen is the shutdown-race regression test (run
// under -race): watch opens racing Close must each either complete
// before the drain (200, session readable afterwards) or be refused
// (503) — never register a session after Close has drained, which the
// old code could do because checkAccepting ran before the watcher
// build. Sessions opened before the drain stay readable by contract.
func TestCloseDuringWatchOpen(t *testing.T) {
	g := testGraph()
	srv := server.New(server.Config{})
	if err := srv.Bind("g", g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	ctx := context.Background()
	p := testPattern(g, 4)

	const openers = 16
	var wg sync.WaitGroup
	type result struct {
		id  int64
		err error
	}
	results := make(chan result, openers)
	for i := 0; i < openers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem := []string{"match", "sim", "dual", "strong"}[i%4]
			st, err := c.Watch(ctx, "g", p, sem)
			if err != nil {
				results <- result{err: err}
				return
			}
			results <- result{id: st.ID}
		}(i)
	}
	// Fire Close into the middle of the open storm.
	srv.Close()
	wg.Wait()
	close(results)

	opened := 0
	var maxID int64
	for r := range results {
		if r.err != nil {
			ce := new(client.Error)
			if !errors.As(r.err, &ce) || ce.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("racing open failed with %v, want 503", r.err)
			}
			continue
		}
		opened++
		if r.id > maxID {
			maxID = r.id
		}
		// Every acknowledged session is readable after Close.
		if _, err := c.WatchSnapshot(ctx, r.id); err != nil {
			t.Errorf("session %d acknowledged but unreadable after Close: %v", r.id, err)
		}
	}
	// Refused opens consume no ids: the highest id is exactly the number
	// of successes, so nothing was registered past the drain.
	if maxID != int64(opened) {
		t.Errorf("max session id %d after %d successful opens; a refused open consumed an id", maxID, opened)
	}
}

// TestGraphsAndStats covers the introspection endpoints.
func TestGraphsAndStats(t *testing.T) {
	_, c, ref := boot(t, server.Config{})
	ctx := context.Background()

	infos, err := c.Graphs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	n, m := ref.Size()
	if len(infos) != 1 || infos[0].Name != "g" || infos[0].Nodes != n || infos[0].Edges != m {
		t.Fatalf("graphs = %+v, want one entry for g with %d/%d", infos, n, m)
	}

	p := testPattern(ref.Graph(), 1)
	if _, err := c.Match(ctx, "g", p); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DualSimulate(ctx, "g", p); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Count(ctx, "g", p, client.EnumerateOptions{}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// count must have its own bucket — it used to fall through semIndex's
	// default and inflate the match counter.
	if st.Queries["match"] != 1 || st.Queries["dual"] != 1 || st.Queries["count"] != 1 {
		t.Errorf("stats queries = %+v, want match=1 dual=1 count=1", st.Queries)
	}
	if st.MatchTimeNS <= 0 {
		t.Error("stats match time not accumulated")
	}
	if st.InitialPairs <= 0 {
		t.Error("stats initial pairs not accumulated")
	}
}

// TestPLLOracleBinding pins the wire surface of the PLL oracle: a graph
// bound with WithOracle(OraclePLL) reports "pll" in its info document,
// serves stats stamped "pll", and returns the same relation as the
// default matrix engine.
func TestPLLOracleBinding(t *testing.T) {
	g := testGraph()
	ref := gpm.NewEngine(g.Clone())
	srv := server.New(server.Config{})
	if err := srv.Bind("g", g, gpm.WithOracle(gpm.OraclePLL)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	ctx := context.Background()

	infos, err := c.Graphs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Oracle != "pll" {
		t.Fatalf("graphs = %+v, want one entry with oracle pll", infos)
	}
	p := testPattern(ref.Graph(), 3)
	got, err := c.Match(ctx, "g", p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Oracle != "pll" {
		t.Errorf("match stats oracle = %q, want pll", got.Stats.Oracle)
	}
	want, err := ref.Match(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if got.OK != want.OK() || len(got.Matches) != len(want.Relation()) {
		t.Fatalf("pll relation shape differs from matrix reference")
	}
	for u, row := range want.Relation() {
		if len(got.Matches[u]) != len(row) {
			t.Fatalf("node %d: pll relation differs from matrix reference", u)
		}
		for i := range row {
			if got.Matches[u][i] != row[i] {
				t.Fatalf("node %d: pll relation differs from matrix reference", u)
			}
		}
	}
}

// TestOversizedPLLBindingIs422 pins the daemon-survival contract for a
// graph forced onto PLL past the labelling's addressing limit: Bind
// succeeds (no panic takes the process down), oracle-backed queries
// answer 422 with the exact error document, oracle-less semantics on
// the same binding keep working, and the server stays live throughout.
// MaxNodes is a variable so the test does not need a 16M-node graph;
// not parallel, since it mutates that global.
func TestOversizedPLLBindingIs422(t *testing.T) {
	saved := pll.MaxNodes
	pll.MaxNodes = 64
	defer func() { pll.MaxNodes = saved }()

	g := testGraph() // 300 nodes > the lowered MaxNodes
	srv := server.New(server.Config{})
	if err := srv.Bind("g", g, gpm.WithOracle(gpm.OraclePLL)); err != nil {
		t.Fatalf("Bind on an oversized PLL graph must defer the error, got %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)

	p := testPattern(g, 3)
	body := string(encodeWire(t, client.QueryRequest{Graph: "g", Pattern: patternText(t, p)}))

	code, got := postRaw(t, ts.Client(), ts.URL, "/match", body)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("/match on oversized PLL binding: status %d, want 422 (body %s)", code, got)
	}
	want := encodeWire(t, client.ErrorResponse{Error: fmt.Sprintf(
		"gpm: WithOracle(OraclePLL) on a %d-node graph; PLL labels address at most %d nodes: %v",
		g.N(), pll.MaxNodes, gpm.ErrGraphTooLarge)})
	if !bytes.Equal(got, want) {
		t.Fatalf("/match error body:\n got %s want %s", got, want)
	}

	// The same binding still serves oracle-less semantics...
	if code, got := postRaw(t, ts.Client(), ts.URL, "/simulate", body); code != http.StatusOK {
		t.Fatalf("/simulate on the same binding: status %d, want 200 (body %s)", code, got)
	}
	// ...and the process is alive, not restarted: the old panic here was
	// fatal to every other graph the daemon served.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz after 422: status %d", resp.StatusCode)
	}
}

// TestConcurrentQueriesAndUpdates exercises the locking discipline
// under -race: parallel queries across semantics ride the engine's read
// side while update batches and session churn take the write side.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	_, c, ref := boot(t, server.Config{})
	ctx := context.Background()
	g := ref.Graph()

	const queriers = 4
	const rounds = 8
	var wg sync.WaitGroup
	errCh := make(chan error, queriers+2)

	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			p := testPattern(g, int64(q+1))
			for r := 0; r < rounds; r++ {
				var err error
				switch r % 4 {
				case 0:
					_, err = c.Match(ctx, "g", p)
				case 1:
					_, err = c.Simulate(ctx, "g", p)
				case 2:
					_, err = c.DualSimulate(ctx, "g", p)
				case 3:
					_, err = c.StrongSimulate(ctx, "g", p)
				}
				if err != nil {
					errCh <- fmt.Errorf("querier %d round %d: %v", q, r, err)
					return
				}
			}
		}(q)
	}

	// One updater applying small batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := int64(0); r < rounds; r++ {
			ups := []gpm.Update{gpm.InsertEdge(int(r), int(r+1))}
			if _, _, err := c.Update(ctx, "g", ups); err != nil {
				errCh <- fmt.Errorf("updater round %d: %v", r, err)
				return
			}
			ups = []gpm.Update{gpm.DeleteEdge(int(r), int(r+1))}
			if _, _, err := c.Update(ctx, "g", ups); err != nil {
				errCh <- fmt.Errorf("updater round %d undo: %v", r, err)
				return
			}
		}
	}()

	// One session churner.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := testPattern(g, 9)
		for r := 0; r < rounds; r++ {
			st, err := c.Watch(ctx, "g", p, "dual")
			if err != nil {
				errCh <- fmt.Errorf("churner round %d: %v", r, err)
				return
			}
			if _, err := c.WatchSnapshot(ctx, st.ID); err != nil {
				errCh <- fmt.Errorf("churner snapshot %d: %v", r, err)
				return
			}
			if err := c.CloseWatch(ctx, st.ID); err != nil {
				errCh <- fmt.Errorf("churner close %d: %v", r, err)
				return
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Undone inserts cancel out: the graph is structurally unchanged, so
	// a final query must agree with the untouched reference engine.
	p := testPattern(g, 1)
	rel, err := c.Match(ctx, "g", p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Match(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if rel.OK != want.OK() || rel.Pairs != want.Pairs() {
		t.Errorf("after concurrent churn: ok=%v pairs=%d, want ok=%v pairs=%d",
			rel.OK, rel.Pairs, want.OK(), want.Pairs())
	}
}

// TestGracefulShutdownDrainsFixpoints pins the Close contract: an
// in-flight enumeration observes the base-context cancellation and
// unwinds with its partial result instead of running out its budget.
func TestGracefulShutdownDrainsFixpoints(t *testing.T) {
	g := gpm.GenerateGraph(gpm.GraphGenConfig{Nodes: 1200, Edges: 14000, Attrs: 1, Model: gpm.ModelER, Seed: 3})
	srv := server.New(server.Config{})
	if err := srv.Bind("dense", g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()))

	p := gpm.GeneratePattern(gpm.PatternGenConfig{Nodes: 3, Edges: 3, K: 1, C: 0, PredAttrs: 1, IsoBias: true, Seed: 5}, g)
	done := make(chan *client.Enumeration, 1)
	errs := make(chan error, 1)
	go func() {
		enum, err := c.Enumerate(context.Background(), "dense", p, client.EnumerateOptions{MaxEmbeddings: 1 << 30})
		if err != nil {
			errs <- err
			return
		}
		done <- enum
	}()
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	srv.Close()
	select {
	case enum := <-done:
		if enum.Complete {
			t.Error("enumeration claims completeness after shutdown cancellation")
		}
		if enum.Truncated == "" {
			t.Error("cancelled enumeration carries no context error")
		}
	case err := <-errs:
		t.Fatalf("enumeration failed instead of returning its partial result: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("enumeration did not drain after Close")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("drain took %v", elapsed)
	}

	// After Close the daemon refuses new write-side work (watch opens
	// and update batches start uncancellable engine fixpoints, so the
	// shutdown guarantee is "none started after Close").
	if _, err := c.Watch(context.Background(), "dense", p, "sim"); err == nil {
		t.Error("watch open accepted after Close")
	} else if ce := new(client.Error); !errors.As(err, &ce) || ce.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("watch open after Close: %v, want 503", err)
	}
	if _, _, err := c.Update(context.Background(), "dense", []gpm.Update{gpm.InsertEdge(0, 1)}); err == nil {
		t.Error("update accepted after Close")
	} else if ce := new(client.Error); !errors.As(err, &ce) || ce.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("update after Close: %v, want 503", err)
	}
}
