package server

import (
	"sync/atomic"

	"gpm/client"
)

// statSemantics are the query kinds the counters break down by.
var statSemantics = []string{"match", "sim", "dual", "strong", "enumerate", "count", "batch"}

// stats aggregates MatchStats across every query the server serves.
// All fields are atomics: queries record concurrently from the engine's
// read path.
type stats struct {
	queries       [7]atomic.Int64 // indexed by statSemantics order
	errors        atomic.Int64
	inFlight      atomic.Int64
	updates       atomic.Int64
	updateEdges   atomic.Int64
	watchesOpened atomic.Int64
	snapshots     atomic.Int64 // WAL snapshots taken this process
	matchTimeNS   atomic.Int64
	oracleBuildNS atomic.Int64
	oracleQueries atomic.Int64
	removals      atomic.Int64
	initialPairs  atomic.Int64
}

func semIndex(semantics string) int {
	for i, s := range statSemantics {
		if s == semantics {
			return i
		}
	}
	return 0
}

// record accumulates one served query's stats.
func (st *stats) record(semantics string, ws client.Stats) {
	st.queries[semIndex(semantics)].Add(1)
	st.matchTimeNS.Add(ws.MatchTimeNS)
	st.oracleBuildNS.Add(ws.OracleBuildNS)
	st.oracleQueries.Add(ws.OracleQueries)
	st.removals.Add(ws.Removals)
	st.initialPairs.Add(ws.InitialPairs)
}

// snapshot materialises the counters as the wire schema.
func (st *stats) snapshot() client.ServerStats {
	out := client.ServerStats{
		Queries:       make(map[string]int64, len(statSemantics)),
		Errors:        st.errors.Load(),
		InFlight:      st.inFlight.Load(),
		Updates:       st.updates.Load(),
		UpdateEdges:   st.updateEdges.Load(),
		WatchesOpened: st.watchesOpened.Load(),
		MatchTimeNS:   st.matchTimeNS.Load(),
		OracleBuildNS: st.oracleBuildNS.Load(),
		OracleQueries: st.oracleQueries.Load(),
		Removals:      st.removals.Load(),
		InitialPairs:  st.initialPairs.Load(),
	}
	for i, s := range statSemantics {
		out.Queries[s] = st.queries[i].Load()
	}
	return out
}
